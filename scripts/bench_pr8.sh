#!/usr/bin/env bash
# bench_pr8.sh — distributed serving tier benchmark (BENCH_PR8.json).
#
# Runs the same seeded loadgen workload against three server
# configurations and assembles one artifact:
#
#   single      one instance, journal + warm-start on
#   cluster3    three clustered instances, requests round-robined
#   single-cold one instance, warm-start disabled (miss-cost baseline)
#
# Usage: scripts/bench_pr8.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR8.json}"
WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

REQUESTS=400
VARIANTS=40
CONCURRENCY=8
SEED=7

go build -o "$WORK/netdag-serve" ./cmd/netdag-serve
go build -o "$WORK/netdag-loadgen" ./cmd/netdag-loadgen

# Eight independent weakly-hard pipelines sharing one bus: the round
# assignment search explores thousands of admissible assignments
# (~6.4k per solve), so a miss costs real solver time and cache tiers
# show up in the latency split.
cat >"$WORK/base.json" <<'SPEC'
{
  "mode": "weakly-hard",
  "diameter": 3,
  "tasks": [
    {"name": "p0t0", "node": "n0", "wcet": 847},
    {"name": "p0t1", "node": "n1", "wcet": 4081},
    {"name": "p0t2", "node": "n2", "wcet": 225},
    {"name": "p1t0", "node": "n3", "wcet": 300},
    {"name": "p1t1", "node": "n4", "wcet": 494},
    {"name": "p2t0", "node": "n5", "wcet": 889},
    {"name": "p2t1", "node": "n6", "wcet": 928},
    {"name": "p3t0", "node": "n7", "wcet": 445},
    {"name": "p3t1", "node": "n8", "wcet": 21106},
    {"name": "p3t2", "node": "n9", "wcet": 866},
    {"name": "p4t0", "node": "n10", "wcet": 647},
    {"name": "p4t1", "node": "n11", "wcet": 947},
    {"name": "p5t0", "node": "n12", "wcet": 990},
    {"name": "p5t1", "node": "n13", "wcet": 415},
    {"name": "p6t0", "node": "n14", "wcet": 387},
    {"name": "p6t1", "node": "n15", "wcet": 631},
    {"name": "p7t0", "node": "n16", "wcet": 337},
    {"name": "p7t1", "node": "n17", "wcet": 831}
  ],
  "edges": [
    {"from": "p0t0", "to": "p0t1", "width": 7},
    {"from": "p0t1", "to": "p0t2", "width": 9},
    {"from": "p1t0", "to": "p1t1", "width": 8},
    {"from": "p2t0", "to": "p2t1", "width": 3},
    {"from": "p3t0", "to": "p3t1", "width": 12},
    {"from": "p3t1", "to": "p3t2", "width": 9},
    {"from": "p4t0", "to": "p4t1", "width": 8},
    {"from": "p5t0", "to": "p5t1", "width": 2},
    {"from": "p6t0", "to": "p6t1", "width": 10},
    {"from": "p7t0", "to": "p7t1", "width": 10}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"p0t2": {"misses": 25, "window": 40}, "p1t1": {"misses": 25, "window": 40}, "p2t1": {"misses": 25, "window": 40}, "p3t2": {"misses": 25, "window": 40}, "p4t1": {"misses": 25, "window": 40}, "p5t1": {"misses": 25, "window": 40}, "p6t1": {"misses": 25, "window": 40}, "p7t1": {"misses": 25, "window": 40}}
}
SPEC

wait_healthy() { # url
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server at $1 never became healthy" >&2
  exit 1
}

run_loadgen() { # label targets out
  "$WORK/netdag-loadgen" -target "$2" -spec "$WORK/base.json" \
    -requests $REQUESTS -variants $VARIANTS \
    -concurrency $CONCURRENCY -seed $SEED -label "$1" -out "$3"
}

echo "== single instance (journal + warm) =="
"$WORK/netdag-serve" -addr 127.0.0.1:18080 -journal "$WORK/single.journal" \
  2>"$WORK/single.log" &
SINGLE=$!
wait_healthy http://127.0.0.1:18080
run_loadgen single http://127.0.0.1:18080 "$WORK/single.json"
kill $SINGLE; wait $SINGLE 2>/dev/null || true

echo "== single instance restarted on its journal =="
"$WORK/netdag-serve" -addr 127.0.0.1:18080 -journal "$WORK/single.journal" \
  2>"$WORK/restart.log" &
RESTART=$!
wait_healthy http://127.0.0.1:18080
run_loadgen single-restart http://127.0.0.1:18080 "$WORK/restart.json"
kill $RESTART; wait $RESTART 2>/dev/null || true

echo "== single instance (warm-start disabled) =="
"$WORK/netdag-serve" -addr 127.0.0.1:18080 -warm=false 2>"$WORK/cold.log" &
COLD=$!
wait_healthy http://127.0.0.1:18080
run_loadgen single-cold http://127.0.0.1:18080 "$WORK/cold.json"
kill $COLD; wait $COLD 2>/dev/null || true

echo "== three clustered instances =="
PEERS="a=http://127.0.0.1:18080,b=http://127.0.0.1:18081,c=http://127.0.0.1:18082"
names=(a b c)
for i in 0 1 2; do
  name=${names[$i]}
  "$WORK/netdag-serve" -addr 127.0.0.1:1808$i -peer-name "$name" -peers "$PEERS" \
    -journal "$WORK/peer$name.journal" 2>"$WORK/peer$name.log" &
done
for i in 0 1 2; do wait_healthy http://127.0.0.1:1808$i; done
run_loadgen cluster3 \
  "http://127.0.0.1:18080,http://127.0.0.1:18081,http://127.0.0.1:18082" \
  "$WORK/cluster.json"
kill $(jobs -p) 2>/dev/null || true

cat >"$OUT" <<EOF
{
  "pr": 8,
  "title": "Distributed serving tier: cache sharding, batch API, journal, warm-started reuse",
  "environment": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "cpu": "$(grep -m1 'model name' /proc/cpuinfo | cut -d: -f2- | sed 's/^ //' || echo unknown)",
    "workload": "$REQUESTS requests over $VARIANTS weight-mutated variants of an 8-pipeline weakly-hard app, zipf-skewed, seed $SEED, concurrency $CONCURRENCY"
  },
  "command": "scripts/bench_pr8.sh",
  "runs": {
    "single": $(cat "$WORK/single.json"),
    "single_restart": $(cat "$WORK/restart.json"),
    "single_cold": $(cat "$WORK/cold.json"),
    "cluster3": $(cat "$WORK/cluster.json")
  }
}
EOF
echo "wrote $OUT"
