#!/usr/bin/env bash
# bench_pr10.sh — energy-aware pruning ablation benchmark (BENCH_PR10.json).
#
# Runs BenchmarkParetoEnergyBound (internal/core), which computes the
# full energy/latency Pareto front of a staggered-release four-chain
# instance under two configurations:
#
#   bound    admissible energy lower bound + derived per-placement
#            makespan cap active at both B&B prune points
#   nobound  NoEnergyBound ablation (incumbent-derived pruning off)
#
# The bound is admissible, so both configurations prove the identical
# front (asserted inside the benchmark); the ns/node metric is wall time
# per sweep over the ablated sweep's branch-and-bound node count, so the
# config ratio is a wall-time speedup on identical answers. The script
# asserts bound beats nobound by at least MIN_SPEEDUP (default 1.3 —
# conservative against noisy CI runners; dedicated hardware measures
# ~1.9-2x) and that the front is multi-point, and writes the artifact
# either way.
#
# Usage: scripts/bench_pr10.sh [out.json]
#   BENCHTIME=3x MIN_SPEEDUP=1.3 to override.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-3x}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.3}"

RAW="$(go test ./internal/core/ -run '^$' -bench BenchmarkParetoEnergyBound \
  -benchtime "$BENCHTIME" -count=1)"
echo "$RAW"

OUT="$OUT" MIN_SPEEDUP="$MIN_SPEEDUP" BENCHTIME="$BENCHTIME" RAW="$RAW" \
python3 - <<'PY'
import json, os, re, subprocess, sys

raw = os.environ["RAW"]
configs = {}
for m in re.finditer(
    r"BenchmarkParetoEnergyBound/(\w+)(?:-\d+)?\s+(\d+)\s+(\d+) ns/op"
    r"\s+(\S+) ns/node\s+(\S+) points\s+(\d+) B/op\s+(\d+) allocs/op", raw):
    name, iters, nsop, nsnode, points, bop, allocs = m.groups()
    configs[name] = {
        "iterations": int(iters),
        "ns_per_op": int(nsop),
        "effective_ns_per_node": float(nsnode),
        "front_points": float(points),
        "bytes_per_op": int(bop),
        "allocs_per_op": int(allocs),
    }
want = {"bound", "nobound"}
missing = want - configs.keys()
if missing:
    sys.exit(f"benchmark output missing configs: {sorted(missing)}")

# The benchmark itself fails unless both configs produce the identical
# front, so reaching this point certifies front equality; re-assert the
# reported shape anyway.
if configs["bound"]["front_points"] != configs["nobound"]["front_points"]:
    sys.exit("configs report different front sizes")
if configs["bound"]["front_points"] < 2:
    sys.exit("front is single-point: the instance no longer trades energy for latency")

speedup = round(configs["nobound"]["effective_ns_per_node"]
                / configs["bound"]["effective_ns_per_node"], 3)
min_speedup = float(os.environ["MIN_SPEEDUP"])
gate_pass = speedup >= min_speedup


def goenv(k):
    return subprocess.run(["go", "env", k], capture_output=True,
                          text=True).stdout.strip()


cpu = "unknown"
m = re.search(r"^cpu: (.+)$", raw, re.M)
if m:
    cpu = m.group(1).strip()

artifact = {
    "pr": 10,
    "title": "Energy/lifetime co-optimization: Pareto-front solver "
             "objective with energy-aware pruning",
    "benchmark": "BenchmarkParetoEnergyBound (internal/core)",
    "command": "scripts/bench_pr10.sh",
    "environment": {
        "goos": goenv("GOOS"),
        "goarch": goenv("GOARCH"),
        "cpu": cpu,
        "benchtime": os.environ["BENCHTIME"],
    },
    "metric": "effective ns/node: wall per Pareto sweep / ablated "
              "(nobound) sweep's total B&B node count; both configs "
              "prove the identical front, so the ratio is a wall-time "
              "speedup",
    "front_points": configs["bound"]["front_points"],
    "configs": configs,
    "speedups": {"bound_vs_nobound": speedup},
    "gate": {"min_bound_vs_nobound": min_speedup, "pass": gate_pass},
}
with open(os.environ["OUT"], "w") as f:
    json.dump(artifact, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}: bound vs nobound "
      f"{speedup}x (gate >= {min_speedup})")
if not gate_pass:
    sys.exit("SPEEDUP GATE FAILED")
PY
