#!/usr/bin/env bash
# bench_pr9.sh — multi-rate scale-up ablation benchmark (BENCH_PR9.json).
#
# Runs BenchmarkMultiRateAVHeavy (internal/core), which solves the same
# multi-rate AV instance under four knob settings:
#
#   full      instance-chain symmetry breaking + per-rate χ floors
#   nofloors  symmetry only
#   nosym     floors only
#   disabled  both ablated (the canonical reference)
#
# Every configuration proves the same optimal makespan; the ns/node
# metric is wall time per solve over the canonical search's node count,
# so config ratios are wall-time speedups on identical answers. The
# script asserts full beats disabled by at least MIN_SPEEDUP (default
# 1.5 — conservative against noisy CI runners; dedicated hardware
# measures ~3.5-4x) and writes the artifact either way.
#
# Usage: scripts/bench_pr9.sh [out.json]
#   BENCHTIME=3x MIN_SPEEDUP=1.5 to override.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR9.json}"
BENCHTIME="${BENCHTIME:-3x}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"

RAW="$(go test ./internal/core/ -run '^$' -bench BenchmarkMultiRateAVHeavy \
  -benchtime "$BENCHTIME" -count=1)"
echo "$RAW"

OUT="$OUT" MIN_SPEEDUP="$MIN_SPEEDUP" BENCHTIME="$BENCHTIME" RAW="$RAW" \
python3 - <<'PY'
import json, os, re, subprocess, sys

raw = os.environ["RAW"]
configs = {}
for m in re.finditer(
    r"BenchmarkMultiRateAVHeavy/(\w+)(?:-\d+)?\s+(\d+)\s+(\d+) ns/op\s+(\S+) ns/node"
    r"\s+(\d+) B/op\s+(\d+) allocs/op", raw):
    name, iters, nsop, nsnode, bop, allocs = m.groups()
    configs[name] = {
        "iterations": int(iters),
        "ns_per_op": int(nsop),
        "effective_ns_per_node": float(nsnode),
        "bytes_per_op": int(bop),
        "allocs_per_op": int(allocs),
    }
want = {"full", "nofloors", "nosym", "disabled"}
missing = want - configs.keys()
if missing:
    sys.exit(f"benchmark output missing configs: {sorted(missing)}")

dis = configs["disabled"]["effective_ns_per_node"]
speedups = {f"{k}_vs_disabled": round(dis / configs[k]["effective_ns_per_node"], 3)
            for k in ("full", "nofloors", "nosym")}
min_speedup = float(os.environ["MIN_SPEEDUP"])
gate_pass = speedups["full_vs_disabled"] >= min_speedup


def goenv(k):
    return subprocess.run(["go", "env", k], capture_output=True,
                          text=True).stdout.strip()


cpu = "unknown"
m = re.search(r"^cpu: (.+)$", raw, re.M)
if m:
    cpu = m.group(1).strip()

artifact = {
    "pr": 9,
    "title": "Multi-rate scale-up: hyperperiod symmetry breaking, "
             "per-rate chi floors, and a generated scenario corpus",
    "benchmark": "BenchmarkMultiRateAVHeavy (internal/core)",
    "command": "scripts/bench_pr9.sh",
    "environment": {
        "goos": goenv("GOOS"),
        "goarch": goenv("GOARCH"),
        "cpu": cpu,
        "benchtime": os.environ["BENCHTIME"],
    },
    "metric": "effective ns/node: wall per solve / canonical (disabled) "
              "solver node count; every config proves the same optimal "
              "makespan, so config ratios are wall-time speedups",
    "configs": configs,
    "speedups": speedups,
    "gate": {"min_full_vs_disabled": min_speedup, "pass": gate_pass},
}
with open(os.environ["OUT"], "w") as f:
    json.dump(artifact, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}: full vs disabled "
      f"{speedups['full_vs_disabled']}x (gate >= {min_speedup})")
if not gate_pass:
    sys.exit("SPEEDUP GATE FAILED")
PY
