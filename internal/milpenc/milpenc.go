// Package milpenc emits NETDAG soft-mode scheduling problems in CPLEX LP
// format — the MILP encoding the paper implements with Gurobi, provided
// (like internal/smtenc's SMT-LIB encoding) so the formal model is
// inspectable and externally checkable. The paper notes the weakly-hard
// eq. (9) is NOT expressible under disciplined (quasi-)convexity, which
// is why only the soft paradigm gets a MILP; this encoder enforces the
// same boundary and rejects weakly-hard problems.
//
// Encoding of one round assignment l:
//
//   - continuous start variables per task/round and a makespan objective;
//   - per flood f, binaries sel_f_n ("χ(f) = n") with Σ_n sel_f_n = 1;
//     round durations and per-task log-reliability sums are linear in
//     the binaries (the λ and duration tables are data);
//   - eq. (4) precedences as linear rows; eq. (5) non-overlap via
//     big-M indicator binaries ord_t_r (task before/after round);
//   - eq. (6) per constrained task: Σ_f Σ_n log λ(n)·sel_f_n >= log F.
package milpenc

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
)

// bigM bounds every time value in the encoding; schedules here are
// microseconds within a second-scale hyperperiod.
const bigM = 100_000_000

// logScale converts log-probabilities to integers (micro-nat units).
const logScale = 1_000_000

// Encode writes the LP-format MILP for the soft problem under the fixed
// round assignment (assignment[m] = round of message m).
func Encode(w io.Writer, p *core.Problem, assignment []int) error {
	if p == nil {
		return errors.New("milpenc: nil problem")
	}
	if p.Mode != core.Soft {
		return errors.New("milpenc: only the soft paradigm admits a MILP encoding (paper §III-C)")
	}
	if p.SoftStat == nil {
		return core.ErrNoStatistic
	}
	if err := p.App.Validate(); err != nil {
		return err
	}
	msgs := p.App.Messages()
	if len(assignment) != len(msgs) {
		return fmt.Errorf("milpenc: assignment covers %d messages, app has %d", len(assignment), len(msgs))
	}
	rounds := 0
	for _, r := range assignment {
		if r < 0 {
			return errors.New("milpenc: negative round index")
		}
		if r+1 > rounds {
			rounds = r + 1
		}
	}
	maxNTX := p.MaxNTX
	if maxNTX == 0 {
		maxNTX = core.DefaultMaxNTX
	}

	// Flood naming: msg_<id> and beacon_<r>.
	floodNames := make([]string, 0, len(msgs)+rounds)
	floodWidth := map[string]int{}
	for _, m := range msgs {
		n := fmt.Sprintf("msg_%d", m.ID)
		floodNames = append(floodNames, n)
		floodWidth[n] = m.Width
	}
	for r := 0; r < rounds; r++ {
		n := fmt.Sprintf("beacon_%d", r)
		floodNames = append(floodNames, n)
		floodWidth[n] = p.Params.BeaconWidth
	}
	slotDur := func(f string, n int) int64 {
		return p.Params.SlotDuration(n, floodWidth[f], p.Diameter)
	}
	logLam := func(n int) int64 {
		lam := p.SoftStat.SuccessProb(n)
		if lam <= 0 {
			return -(1 << 40)
		}
		return int64(math.Floor(math.Log(lam) * logScale))
	}

	var b strings.Builder
	b.WriteString("\\ NETDAG soft-mode MILP encoding (Wardega & Li, DATE 2020, eq. 4-6)\n")
	b.WriteString("Minimize\n obj: makespan\n")
	b.WriteString("Subject To\n")

	name := func(t dag.Task) string { return sanitize(t.Name) }

	// Round duration definition rows: dur_r − Σ sel·cost = 0.
	for r := 0; r < rounds; r++ {
		var terms []string
		add := func(f string) {
			for n := 1; n <= maxNTX; n++ {
				terms = append(terms, fmt.Sprintf("- %d sel_%s_%d", slotDur(f, n), f, n))
			}
		}
		add(fmt.Sprintf("beacon_%d", r))
		for _, m := range msgs {
			if assignment[m.ID] == r {
				add(fmt.Sprintf("msg_%d", m.ID))
			}
		}
		fmt.Fprintf(&b, " durdef_%d: dur_%d %s = 0\n", r, r, strings.Join(terms, " "))
	}
	// Exactly one level per flood.
	for _, f := range floodNames {
		var terms []string
		for n := 1; n <= maxNTX; n++ {
			terms = append(terms, fmt.Sprintf("+ sel_%s_%d", f, n))
		}
		fmt.Fprintf(&b, " one_%s: %s = 1\n", f, strings.Join(terms, " "))
	}
	// (4a) precedence: start_succ − start_pred >= wcet + 1.
	for _, t := range p.App.Tasks() {
		for _, s := range p.App.Succs(t.ID) {
			fmt.Fprintf(&b, " prec_%s_%s: start_%s - start_%s >= %d\n",
				name(t), name(p.App.Task(s)), name(p.App.Task(s)), name(t), t.WCET+1)
		}
	}
	// (4b) rounds ordered: rstart_r − rstart_{r-1} − dur_{r-1} >= 1.
	for r := 1; r < rounds; r++ {
		fmt.Fprintf(&b, " rord_%d: rstart_%d - rstart_%d - dur_%d >= 1\n", r, r, r-1, r-1)
	}
	// (4c) producer before round; consumers after.
	for _, m := range msgs {
		r := assignment[m.ID]
		src := p.App.Task(m.Source)
		fmt.Fprintf(&b, " prod_%d: rstart_%d - start_%s >= %d\n", m.ID, r, name(src), src.WCET+1)
		for _, cID := range m.Dests {
			c := p.App.Task(cID)
			fmt.Fprintf(&b, " cons_%d_%s: start_%s - rstart_%d - dur_%d >= 1\n",
				m.ID, name(c), name(c), r, r)
		}
	}
	// (5) non-overlap via indicator ord_t_r (1 = task entirely before
	// round): start_t + wcet + 1 <= rstart_r + M(1−ord), and
	// rstart_r + dur_r + 1 <= start_t + M·ord.
	for _, t := range p.App.Tasks() {
		for r := 0; r < rounds; r++ {
			fmt.Fprintf(&b, " no1_%s_%d: rstart_%d - start_%s + %d ord_%s_%d <= %d\n",
				name(t), r, r, name(t), bigM, name(t), r, bigM-t.WCET-1)
			fmt.Fprintf(&b, " no2_%s_%d: start_%s - rstart_%d - dur_%d - %d ord_%s_%d >= %d\n",
				name(t), r, name(t), r, r, bigM, name(t), r, 1-bigM)
		}
	}
	// Makespan covers everything.
	for _, t := range p.App.Tasks() {
		fmt.Fprintf(&b, " mk_%s: makespan - start_%s >= %d\n", name(t), name(t), t.WCET)
	}
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, " mkr_%d: makespan - rstart_%d - dur_%d >= 0\n", r, r, r)
	}
	// (6) soft reliability rows.
	for _, task := range p.App.Tasks() {
		target, ok := p.SoftCons[task.ID]
		if !ok || target <= 0 {
			continue
		}
		if target >= 1 {
			return fmt.Errorf("milpenc: task %q demands probability 1", task.Name)
		}
		preds := predFloodNames(p.App, assignment, task.ID)
		if len(preds) == 0 {
			continue
		}
		var terms []string
		for _, f := range preds {
			for n := 1; n <= maxNTX; n++ {
				terms = append(terms, fmt.Sprintf("%+d sel_%s_%d", logLam(n), f, n))
			}
		}
		bound := int64(math.Ceil(math.Log(target) * logScale))
		fmt.Fprintf(&b, " rel_%s: %s >= %d\n", name(task), strings.Join(terms, " "), bound)
	}
	// Deadlines / releases.
	for id, d := range p.Deadlines {
		t := p.App.Task(id)
		fmt.Fprintf(&b, " dl_%s: start_%s <= %d\n", name(t), name(t), d-t.WCET)
	}
	for id, rel := range p.ReleaseTimes {
		t := p.App.Task(id)
		fmt.Fprintf(&b, " rel0_%s: start_%s >= %d\n", name(t), name(t), rel)
	}

	b.WriteString("Bounds\n")
	for _, t := range p.App.Tasks() {
		fmt.Fprintf(&b, " 0 <= start_%s <= %d\n", name(t), bigM)
	}
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, " 0 <= rstart_%d <= %d\n", r, bigM)
		fmt.Fprintf(&b, " 0 <= dur_%d <= %d\n", r, bigM)
	}
	fmt.Fprintf(&b, " 0 <= makespan <= %d\n", bigM)
	b.WriteString("Binary\n")
	for _, f := range floodNames {
		for n := 1; n <= maxNTX; n++ {
			fmt.Fprintf(&b, " sel_%s_%d\n", f, n)
		}
	}
	for _, t := range p.App.Tasks() {
		for r := 0; r < rounds; r++ {
			fmt.Fprintf(&b, " ord_%s_%d\n", name(t), r)
		}
	}
	b.WriteString("End\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func predFloodNames(app *dag.Graph, assignment []int, id dag.TaskID) []string {
	var out []string
	seen := map[int]bool{}
	for _, m := range app.MsgAncestors(id) {
		out = append(out, fmt.Sprintf("msg_%d", m))
		r := assignment[m]
		if !seen[r] {
			seen[r] = true
			out = append(out, fmt.Sprintf("beacon_%d", r))
		}
	}
	return out
}

func sanitize(name string) string {
	r := strings.NewReplacer("/", "_", "#", "_", "-", "_", " ", "_")
	return r.Replace(name)
}
