package milpenc

import (
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func softProblem(t testing.TB) (*core.Problem, []int) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3, MaxNTX: 4,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: 0.9},
	}
	lg, err := dag.NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return p, lg.EarliestAssignment()
}

func TestEncodeSoftLP(t *testing.T) {
	p, assign := softProblem(t)
	var b strings.Builder
	if err := Encode(&b, p, assign); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Minimize",
		"obj: makespan",
		"Subject To",
		"one_msg_0:",
		"one_beacon_0:",
		"durdef_0:",
		"rel_stage2:",
		"Binary",
		"sel_msg_0_1",
		"ord_stage0_0",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP missing %q", want)
		}
	}
	// Structural counts: one sel binary per flood per level (4 floods ×
	// 4 levels = 16) and one ord binary per task-round pair (3×2 = 6).
	if got := strings.Count(out, "\n sel_"); got != 16 {
		t.Errorf("sel binaries = %d, want 16", got)
	}
	if got := strings.Count(out, "\n ord_"); got != 6 {
		t.Errorf("ord binaries = %d, want 6", got)
	}
}

func TestEncodeRejectsWeaklyHard(t *testing.T) {
	g, err := apps.Pipeline(2, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage1")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:   core.WeaklyHard,
		WHStat: glossy.SyntheticWH{},
		WHCons: map[dag.TaskID]wh.MissConstraint{last.ID: {Misses: 4, Window: 10}},
	}
	lg, _ := dag.NewLineGraph(g)
	if err := Encode(&strings.Builder{}, p, lg.EarliestAssignment()); err == nil {
		t.Error("weakly-hard problem accepted by the MILP encoder (paper says eq. 9 is not DQCP)")
	}
}

func TestEncodeValidation(t *testing.T) {
	if err := Encode(&strings.Builder{}, nil, nil); err == nil {
		t.Error("nil problem accepted")
	}
	p, _ := softProblem(t)
	if err := Encode(&strings.Builder{}, p, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
}
