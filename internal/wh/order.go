package wh

// This file implements the domination (partial) order on weakly-hard
// constraints. The paper's eq. (7), due to Bernat-Burns, is a closed-form
// test; Implies is an exact decision procedure over infinite sequences
// built on a sliding-window automaton, used as the ground truth in tests
// and in the abstraction-precision ablation.

// PrecedesBB reports x ⪯ y per the paper's eq. (7):
//
//	(α,β) ⪯ (γ,δ)  ⇔  γ ≤ max{ ⌊δ/β⌋·α , δ + ⌈δ/β⌉·(α−β) }
//
// with x = (α,β) and y = (γ,δ) in hit-form. x ⪯ y means x is the harder
// constraint: every sequence satisfying x also satisfies y. The test is a
// closed form valid for arbitrary window sizes, unlike Implies whose cost
// grows exponentially in the window.
func PrecedesBB(x, y Constraint) bool {
	alpha, beta := x.M, x.K
	gamma, delta := y.M, y.K
	if y.Trivial() {
		return true
	}
	if x.Trivial() {
		return false // a trivial constraint only dominates trivial ones
	}
	if x.Hard() {
		return true // an all-hit sequence satisfies every valid constraint
	}
	floor := (delta / beta) * alpha
	ceil := (delta + beta - 1) / beta
	alt := delta + ceil*(alpha-beta)
	bound := floor
	if alt > bound {
		bound = alt
	}
	return gamma <= bound
}

// PrecedesBBMiss is PrecedesBB on miss-form constraints: x ⪯ y iff every
// sequence with at most x.Misses misses per x.Window also has at most
// y.Misses misses per y.Window.
func PrecedesBBMiss(x, y MissConstraint) bool { return PrecedesBB(x.Hit(), y.Hit()) }

// windowAutomatonLimit bounds the window size accepted by the exact
// decision procedures in this file; beyond it the 2^(K-1) state space is
// impractical and callers should fall back to PrecedesBB or the sound
// sufficient check SufficientlyImplies.
const windowAutomatonLimit = 22

// Implies reports whether every infinite sequence satisfying x also
// satisfies y. It is exact: the set of infinite sequences satisfying a
// window constraint is recognized by a sliding-window automaton whose
// states are the last max(x.K, y.K)−1 symbols, and x-valid states can
// always be extended (emitting a hit preserves validity), so x fails to
// imply y exactly when some reachable x-valid transition completes a
// window violating y.
//
// Implies panics if max(x.K, y.K) exceeds 22; use PrecedesBB for larger
// windows.
func Implies(x, y Constraint) bool {
	if y.Trivial() {
		return true
	}
	if x.Trivial() {
		// x admits the all-miss sequence; y is non-trivial.
		return false
	}
	if x.Hard() {
		return true
	}
	if y.Hard() {
		// x is non-hard, so x admits a sequence with a miss, which
		// violates any hard y.
		return false
	}
	l := x.K
	if y.K > l {
		l = y.K
	}
	if l > windowAutomatonLimit {
		panic("wh: Implies window too large for exact check; use PrecedesBB")
	}
	return !violationReachable(x, y, l)
}

// violationReachable performs BFS over sliding-window states. A state is
// a pair (bits, n) where n is the number of symbols seen so far capped at
// l−1 and bits holds the most recent n symbols (bit 0 = most recent).
// Transitions append a symbol; a transition is x-valid if, once at least
// x.K symbols exist, the most recent x.K of them contain at least x.M
// hits. It returns true if some x-valid run completes a window with
// fewer than y.M hits among its most recent y.K symbols.
func violationReachable(x, y Constraint, l int) bool {
	type state struct {
		bits uint32
		n    int
	}
	hist := l - 1 // symbols retained per state
	mask := uint32(1)<<uint(hist) - 1
	seen := make(map[uint64]bool)
	key := func(s state) uint64 { return uint64(s.bits) | uint64(s.n)<<32 }
	start := state{}
	queue := []state{start}
	seen[key(start)] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, hit := range []bool{true, false} {
			nb := s.bits << 1
			if hit {
				nb |= 1
			}
			nn := s.n + 1
			// Total symbols emitted so far along this run is at least nn
			// (n saturates at hist, so nn is a lower bound on run length;
			// window checks below only fire when enough symbols are
			// certainly present, and saturation means nn == hist+1 implies
			// the run is at least that long).
			total := nn
			if nn > hist {
				nn = hist
			}
			if hist > 0 {
				nb &= mask
			} else {
				nb = 0
			}
			// Window of the last k symbols: available iff total >= k. The
			// appended symbol plus the low k−1 bits of the previous state.
			lastHits := func(k int) (int, bool) {
				if total < k {
					return 0, false
				}
				h := 0
				if hit {
					h++
				}
				prev := s.bits
				for i := 0; i < k-1; i++ {
					if prev&(1<<uint(i)) != 0 {
						h++
					}
				}
				return h, true
			}
			if h, ok := lastHits(x.K); ok && h < x.M {
				continue // not x-valid
			}
			// A run is viable only if it extends to an infinite x-valid
			// sequence. The all-ones continuation is maximal (it
			// maximizes hits in every boundary window), so viability is
			// exactly "appending hits forever stays x-valid". Without
			// this check a doomed prefix (e.g. "00" under x = (2,3),
			// whose first complete window must fail) could report
			// spurious y-violations.
			if !viableWithOnes(nb, total, x) {
				continue
			}
			if h, ok := lastHits(y.K); ok && h < y.M {
				return true // x-valid, viable run violating y
			}
			ns := state{bits: nb, n: nn}
			if k := key(ns); !seen[k] {
				seen[k] = true
				queue = append(queue, ns)
			}
		}
	}
	return false
}

// viableWithOnes reports whether a run whose most recent symbols are in
// bits (newest at bit 0, at least min(total, x.K−1) symbols retained) can
// be extended by an all-hit suffix without violating x. total is the run
// length, capped by the caller at one more than the retained history —
// the cap is harmless because once total >= x.K every window start is
// admissible and the loop below considers all of them.
func viableWithOnes(bits uint32, total int, x Constraint) bool {
	maxQ := x.K - 1
	if total < maxQ {
		maxQ = total
	}
	for q := 1; q <= maxQ; q++ {
		// Future window: last q run symbols followed by x.K−q hits.
		h := popcount32(bits & (uint32(1)<<uint(q) - 1))
		if h+(x.K-q) < x.M {
			return false
		}
	}
	return true
}

// SufficientlyImplies is the cheap sound (but incomplete) domination test
// used inside the scheduler, the comparison of paper eq. (10): a derived
// guarantee g implies a requirement r if g promises at least as many hits
// (g.M ≥ r.M) over a window no longer than the requirement's (g.K ≤ r.K).
// Any r.K-window then contains a full g.K-window with ≥ g.M ≥ r.M hits.
func SufficientlyImplies(g, r Constraint) bool {
	if r.Trivial() {
		return true
	}
	return g.M >= r.M && g.K <= r.K
}

// SufficientlyImpliesMiss is the miss-form counterpart of eq. (10)'s
// comparison: a guarantee of at most g.Misses misses per g.Window implies
// a requirement of at most r.Misses per r.Window when g allows no more
// misses (g.Misses ≤ r.Misses) over a window at least as long
// (g.Window ≥ r.Window): any r.Window-window sits inside a g.Window-window
// carrying at most g.Misses ≤ r.Misses misses.
func SufficientlyImpliesMiss(g, r MissConstraint) bool {
	if r.Trivial() {
		return true
	}
	return g.Misses <= r.Misses && g.Window >= r.Window
}

// Comparable reports whether x and y are ordered either way by the exact
// domination relation. Weakly-hard constraints form a partial order; many
// pairs (e.g. (1,2) and (3,5)) are incomparable.
func Comparable(x, y Constraint) bool { return Implies(x, y) || Implies(y, x) }
