package wh

// This file implements the paper's central abstraction: the min-plus
// operator ⊕ for conjunctions ("layers") of weakly-hard constraints,
// paper eq. (8). Given event streams ω_l ⊢ x and ω_r ⊢ y, the
// conjunction ω_l ∧ ω_r (hit only where both hit) satisfies x ⊕ y.
//
// The operator is stated on miss-form constraints: misses add, capped at
// the smaller of the two windows.

// Oplus computes x ⊕ y (paper eq. 8) on miss-form constraints:
//
//	(α, γ)~ ⊕ (β, δ)~ = ( min{α+β, γ, δ} , min{γ, δ} )~
//
// Soundness (paper's lemma): whenever ω_l satisfies x and ω_r satisfies
// y, the conjunction ω_l ∧ ω_r satisfies x ⊕ y. The worst case in any
// min{γ,δ}-window is all α misses of ω_l followed by all β misses of ω_r,
// hence α+β misses, capped by the window length. Tightness: when γ = δ
// the bound is achieved by some pair of sequences, so ⊕ lands in the
// infimum of the sound abstractions Ω⊕(x, y).
//
// ⊕ is commutative and associative up to the equality classes induced by
// ⪯, and monotone in both arguments, which is what lets the scheduler
// fold it over pred(τ) in any order (paper eq. 9).
func Oplus(x, y MissConstraint) MissConstraint {
	w := x.Window
	if y.Window < w {
		w = y.Window
	}
	m := x.Misses + y.Misses
	if m > w {
		m = w
	}
	return MissConstraint{Misses: m, Window: w}
}

// OplusHit is Oplus lifted to hit-form constraints via the exact
// miss/hit conversion.
func OplusHit(x, y Constraint) Constraint { return Oplus(x.Miss(), y.Miss()).Hit() }

// OplusAll folds ⊕ over a non-empty list of miss-form constraints, the
// big-⊕ of paper eq. (9). It panics on an empty list: the neutral element
// would be the no-miss constraint over an infinite window, which has no
// finite representation.
func OplusAll(cs ...MissConstraint) MissConstraint {
	if len(cs) == 0 {
		panic("wh: OplusAll of no constraints")
	}
	acc := cs[0]
	for _, c := range cs[1:] {
		acc = Oplus(acc, c)
	}
	return acc
}

// OplusAllHit folds ⊕ over hit-form constraints.
func OplusAllHit(cs ...Constraint) Constraint {
	if len(cs) == 0 {
		panic("wh: OplusAllHit of no constraints")
	}
	miss := make([]MissConstraint, len(cs))
	for i, c := range cs {
		miss[i] = c.Miss()
	}
	return OplusAll(miss...).Hit()
}

// ConjunctionSatisfies reports whether the ⊕-abstracted conjunction of
// the guarantees implies the requirement, i.e. the scheduler-side check
// of paper eq. (10):
//
//	( ⊕_{x ∈ pred(τ)} λ_WH(χ(x)) )  ⪯_sufficient  F_WH(τ)
//
// using the sound window-containment comparison. An empty guarantee list
// means τ has no networked predecessors and the requirement holds
// trivially (no flood can cause τ to miss).
func ConjunctionSatisfies(guarantees []MissConstraint, requirement MissConstraint) bool {
	if requirement.Trivial() || len(guarantees) == 0 {
		return true
	}
	return SufficientlyImpliesMiss(OplusAll(guarantees...), requirement)
}
