package wh

import (
	"errors"
	"testing"
)

func TestConstraintValidate(t *testing.T) {
	valid := []Constraint{{0, 1}, {1, 1}, {3, 5}, {5, 5}, {0, 100}}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", c, err)
		}
	}
	invalid := []Constraint{{-1, 5}, {6, 5}, {1, 0}, {0, 0}, {0, -3}}
	for _, c := range invalid {
		err := c.Validate()
		if err == nil {
			t.Errorf("Validate(%v) = nil, want error", c)
			continue
		}
		if !errors.Is(err, ErrInvalidConstraint) {
			t.Errorf("Validate(%v) error %v does not wrap ErrInvalidConstraint", c, err)
		}
	}
}

func TestMissConstraintValidate(t *testing.T) {
	if err := (MissConstraint{Misses: 2, Window: 5}).Validate(); err != nil {
		t.Errorf("valid miss constraint rejected: %v", err)
	}
	for _, c := range []MissConstraint{{-1, 5}, {6, 5}, {0, 0}} {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", c)
		}
	}
}

func TestHitMissRoundTrip(t *testing.T) {
	for k := 1; k <= 12; k++ {
		for m := 0; m <= k; m++ {
			c := Constraint{M: m, K: k}
			if got := c.Miss().Hit(); got != c {
				t.Fatalf("round trip %v -> %v -> %v", c, c.Miss(), got)
			}
			mc := MissConstraint{Misses: m, Window: k}
			if got := mc.Hit().Miss(); got != mc {
				t.Fatalf("round trip %v -> %v -> %v", mc, mc.Hit(), got)
			}
		}
	}
}

func TestMissConversionSemantics(t *testing.T) {
	// (6,10) hit-form is the paper's Table I example: at least 6
	// successes per 10 executions, i.e. at most 4 misses per 10.
	c := Constraint{M: 6, K: 10}
	want := MissConstraint{Misses: 4, Window: 10}
	if got := c.Miss(); got != want {
		t.Errorf("Miss(%v) = %v, want %v", c, got, want)
	}
}

func TestTrivialAndHard(t *testing.T) {
	if !(Constraint{0, 5}).Trivial() || (Constraint{1, 5}).Trivial() {
		t.Error("Trivial misclassifies hit-form constraints")
	}
	if !(Constraint{5, 5}).Hard() || (Constraint{4, 5}).Hard() {
		t.Error("Hard misclassifies hit-form constraints")
	}
	if !(MissConstraint{5, 5}).Trivial() || (MissConstraint{4, 5}).Trivial() {
		t.Error("Trivial misclassifies miss-form constraints")
	}
	if !(MissConstraint{0, 5}).Hard() || (MissConstraint{1, 5}).Hard() {
		t.Error("Hard misclassifies miss-form constraints")
	}
}

func TestString(t *testing.T) {
	if got := (Constraint{6, 10}).String(); got != "(6,10)" {
		t.Errorf("String = %q", got)
	}
	if got := (MissConstraint{4, 10}).String(); got != "(4,10)~" {
		t.Errorf("miss String = %q", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want Constraint }{
		{Constraint{0, 7}, Constraint{0, 1}}, // trivial
		{Constraint{7, 7}, Constraint{1, 1}}, // hard
		{Constraint{2, 2}, Constraint{1, 1}}, // hard
		{Constraint{1, 2}, Constraint{1, 2}}, // already canonical
		{Constraint{2, 4}, Constraint{2, 4}}, // no smaller-window equivalent exists
		{Constraint{3, 5}, Constraint{3, 5}}, // canonical
	}
	for _, tc := range cases {
		got := tc.in.Normalize()
		if !got.Equivalent(tc.in) {
			t.Errorf("Normalize(%v) = %v is not equivalent to input", tc.in, got)
		}
		if got != tc.want {
			t.Errorf("Normalize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestEquivalentIsEquivalenceRelation(t *testing.T) {
	cs := allConstraints(6)
	for _, a := range cs {
		if !a.Equivalent(a) {
			t.Fatalf("%v not equivalent to itself", a)
		}
	}
	for _, a := range cs {
		for _, b := range cs {
			if a.Equivalent(b) != b.Equivalent(a) {
				t.Fatalf("Equivalent not symmetric for %v, %v", a, b)
			}
		}
	}
}

// allConstraints returns every valid hit-form constraint with K <= maxK.
func allConstraints(maxK int) []Constraint {
	var out []Constraint
	for k := 1; k <= maxK; k++ {
		for m := 0; m <= k; m++ {
			out = append(out, Constraint{M: m, K: k})
		}
	}
	return out
}
