package wh

import "testing"

func TestEnumerateMatchesCount(t *testing.T) {
	for _, c := range allConstraints(5) {
		for n := 0; n <= 10; n++ {
			seqs := EnumerateSatisfying(c, n)
			cnt, ok := CountSatisfying(c, n)
			if !ok {
				t.Fatalf("CountSatisfying(%v, %d) overflowed", c, n)
			}
			if uint64(len(seqs)) != cnt {
				t.Errorf("enumerate/count mismatch for %v, n=%d: %d vs %d", c, n, len(seqs), cnt)
			}
		}
	}
}

func TestEnumerateAllSatisfy(t *testing.T) {
	c := Constraint{2, 4}
	for _, q := range EnumerateSatisfying(c, 9) {
		if !q.Satisfies(c) {
			t.Fatalf("enumerated %v does not satisfy %v", q, c)
		}
	}
}

func TestEnumerateIsComplete(t *testing.T) {
	// Every satisfying sequence of length 8 must appear: compare against
	// a brute-force scan over all 2^8 sequences.
	c := Constraint{1, 3}
	want := 0
	for bits := 0; bits < 1<<8; bits++ {
		q := make(Seq, 8)
		for i := range q {
			q[i] = bits&(1<<uint(i)) != 0
		}
		if q.Satisfies(c) {
			want++
		}
	}
	if got := len(EnumerateSatisfying(c, 8)); got != want {
		t.Errorf("EnumerateSatisfying found %d sequences, brute force %d", got, want)
	}
}

func TestCountKnownValues(t *testing.T) {
	// (1,2): no two consecutive misses — counts follow the Fibonacci
	// recurrence a(n) = a(n−1) + a(n−2), a(0)=1, a(1)=2.
	c := Constraint{1, 2}
	fib := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for n, want := range fib {
		got, ok := CountSatisfying(c, n)
		if !ok || got != want {
			t.Errorf("CountSatisfying((1,2), %d) = %d, want %d", n, got, want)
		}
	}
	// Hard constraint: exactly one satisfying sequence at every length
	// once windows apply.
	if got, _ := CountSatisfying(Constraint{3, 3}, 10); got != 1 {
		t.Errorf("hard-constraint count = %d, want 1", got)
	}
	// Trivial constraint: all 2^n sequences.
	if got, _ := CountSatisfying(Constraint{0, 4}, 20); got != 1<<20 {
		t.Errorf("trivial count = %d, want 2^20", got)
	}
}

func TestInSynthSet(t *testing.T) {
	c := MissConstraint{Misses: 1, Window: 3}
	// Canonical burst pattern: miss every 3rd slot.
	q := MustParseSeq("011011011011")
	if !InSynthSet(q, c) {
		t.Errorf("canonical pattern %v should be in the eq.12 set of %v", q, c)
	}
	// All hits satisfies (1,3)~ but also the harder (0,3)~.
	if InSynthSet(MustParseSeq("111111111111"), c) {
		t.Error("all-hit sequence must not be in the boundary set")
	}
	// A sequence violating the constraint is excluded.
	if InSynthSet(MustParseSeq("001111111111"), c) {
		t.Error("violating sequence must not be in the boundary set")
	}
	// Hard constraints have an empty synthesis set.
	if InSynthSet(MustParseSeq("1111"), MissConstraint{Misses: 0, Window: 3}) {
		t.Error("hard constraints admit no adversarial pattern")
	}
}

func TestSynthesizeProducesBoundarySequences(t *testing.T) {
	for w := 2; w <= 8; w++ {
		for m := 1; m < w; m++ {
			c := MissConstraint{Misses: m, Window: w}
			q, err := Synthesize(c, 4*w)
			if err != nil {
				t.Fatalf("Synthesize(%v): %v", c, err)
			}
			if !InSynthSet(q, c) {
				t.Errorf("Synthesize(%v) = %v not in the eq.12 boundary set", c, q)
			}
		}
	}
}

func TestSynthesizeHardConstraint(t *testing.T) {
	q, err := Synthesize(MissConstraint{Misses: 0, Window: 5}, 10)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if q.Misses() != 0 {
		t.Errorf("hard-constraint synthesis produced misses: %v", q)
	}
}

func TestSynthesizeRotatedStaysInSet(t *testing.T) {
	c := MissConstraint{Misses: 2, Window: 5}
	for phase := 0; phase < 5; phase++ {
		q, err := SynthesizeRotated(c, 25, phase)
		if err != nil {
			t.Fatalf("SynthesizeRotated: %v", err)
		}
		if !InSynthSet(q, c) {
			t.Errorf("rotation %d of canonical pattern left the boundary set: %v", phase, q)
		}
	}
}

func TestEmbeddable(t *testing.T) {
	x := MissConstraint{Misses: 1, Window: 4}
	// Long segment: ordinary satisfaction.
	if !Embeddable(MustParseSeq("01110111"), x) {
		t.Error("valid long segment reported unembeddable")
	}
	if Embeddable(MustParseSeq("00110111"), x) {
		t.Error("segment with a 2-miss 4-window reported embeddable")
	}
	// Short segment: total misses must fit the budget.
	if !Embeddable(MustParseSeq("01"), x) {
		t.Error("short 1-miss segment reported unembeddable")
	}
	if Embeddable(MustParseSeq("00"), x) {
		t.Error("short 2-miss segment cannot embed under a 1-miss budget")
	}
}

func TestMaxConjMissesAgainstBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force cross-check skipped in -short mode")
	}
	// Compare the DP against explicit enumeration of embeddable segment
	// pairs for small windows.
	cs := []MissConstraint{{1, 3}, {2, 4}, {1, 4}, {0, 3}, {2, 3}}
	for _, x := range cs {
		for _, y := range cs {
			for w := 1; w <= 6; w++ {
				got := MaxConjMisses(x, y, w)
				want := bruteConjMisses(x, y, w)
				if got != want {
					t.Errorf("MaxConjMisses(%v, %v, %d) = %d, brute force %d", x, y, w, got, want)
				}
			}
		}
	}
}

func bruteConjMisses(x, y MissConstraint, w int) int {
	best := -1
	for lb := 0; lb < 1<<uint(w); lb++ {
		ql := bitsToSeq(lb, w)
		if !Embeddable(ql, x) {
			continue
		}
		for rb := 0; rb < 1<<uint(w); rb++ {
			qr := bitsToSeq(rb, w)
			if !Embeddable(qr, y) {
				continue
			}
			if m := ql.And(qr).Misses(); m > best {
				best = m
			}
		}
	}
	return best
}

func bitsToSeq(bits, n int) Seq {
	q := make(Seq, n)
	for i := range q {
		q[i] = bits&(1<<uint(i)) != 0
	}
	return q
}

func TestRandomSatisfyingRespectsConstraint(t *testing.T) {
	rng := newTestRand()
	c := MissConstraint{Misses: 2, Window: 6}
	for trial := 0; trial < 50; trial++ {
		q, err := RandomSatisfying(c, 200, 0.4, rng)
		if err != nil {
			t.Fatalf("RandomSatisfying: %v", err)
		}
		if !q.SatisfiesMiss(c) {
			t.Fatalf("RandomSatisfying produced violating sequence %v", q)
		}
	}
}

func TestBernoulliHitRate(t *testing.T) {
	rng := newTestRand()
	q, err := Bernoulli(0.8, 20000, rng)
	if err != nil {
		t.Fatalf("Bernoulli: %v", err)
	}
	if r := q.HitRate(); r < 0.77 || r > 0.83 {
		t.Errorf("Bernoulli(0.8) hit rate %v far from 0.8", r)
	}
	if _, err := Bernoulli(1.5, 10, rng); err == nil {
		t.Error("Bernoulli accepted p > 1")
	}
	if _, err := Bernoulli(0.5, 10, nil); err == nil {
		t.Error("Bernoulli accepted nil rng")
	}
}
