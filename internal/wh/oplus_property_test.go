package wh

import (
	"math/rand"
	"testing"
)

// TestOplusSoundnessProperty is a randomized property test of the ⊕
// soundness lemma (paper eq. 8) on window sizes the exhaustive tests
// cannot reach: for random (m,K) pairs, brute-force the satisfaction
// sets and check every conjunction of satisfying sequences still
// satisfies x ⊕ y. The rand source is seeded, so a failure reproduces.
func TestOplusSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0b175))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		x := randMissConstraint(rng, 6)
		y := randMissConstraint(rng, 6)
		z := Oplus(x, y)
		// The sequence length must cover the larger input window —
		// shorter sequences satisfy wide constraints vacuously — plus
		// slack so window alignment effects are exercised. maxW keeps
		// the 2^n enumeration tractable.
		n := x.Window
		if y.Window > n {
			n = y.Window
		}
		n += 1 + rng.Intn(3)
		ls := EnumerateSatisfying(x.Hit(), n)
		rs := EnumerateSatisfying(y.Hit(), n)
		for _, ql := range ls {
			for _, qr := range rs {
				if !ql.And(qr).SatisfiesMiss(z) {
					t.Fatalf("trial %d: soundness violated: %v ⊢ %v, %v ⊢ %v, but %v ⊬ %v = %v ⊕ %v",
						trial, ql, x, qr, y, ql.And(qr), z, x, y)
				}
			}
		}
	}
}

// TestOplusNeverUnderApproximates checks the direction of the
// approximation for random pairs: the ⊕ bound must be at least the
// exact worst-case conjunction misses (over-approximation is allowed —
// that is what makes ⊕ an abstraction — under-approximation would make
// the scheduler accept infeasible placements).
func TestOplusNeverUnderApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0b175 + 1))
	trials := 500
	if testing.Short() {
		trials = 100
	}
	for trial := 0; trial < trials; trial++ {
		x := randMissConstraint(rng, 9)
		y := randMissConstraint(rng, 9)
		z := Oplus(x, y)
		worst := MaxConjMisses(x, y, z.Window)
		if worst > z.Misses {
			t.Fatalf("trial %d: ⊕ under-approximates %v ⊕ %v = %v: exact worst-case misses %d",
				trial, x, y, z, worst)
		}
	}
}

// TestHitMissPolarityRegression pins the eq. (10) polarity conversion
// between hit form (m,K) — "at least m hits per K" — and miss form
// (m̄,K̄)~ — "at most m̄ misses per K̄". The two forms count opposite
// events over the same window: m̄ = K − m. This is a regression case for
// the conversion both ways, including the degenerate ends.
func TestHitMissPolarityRegression(t *testing.T) {
	cases := []struct {
		hit  Constraint
		miss MissConstraint
	}{
		{Constraint{M: 30, K: 40}, MissConstraint{Misses: 10, Window: 40}},
		{Constraint{M: 1, K: 1}, MissConstraint{Misses: 0, Window: 1}}, // hard
		{Constraint{M: 0, K: 5}, MissConstraint{Misses: 5, Window: 5}}, // trivial
		{Constraint{M: 5, K: 5}, MissConstraint{Misses: 0, Window: 5}}, // hard, wider
		{Constraint{M: 1, K: 100}, MissConstraint{Misses: 99, Window: 100}},
	}
	for _, tc := range cases {
		if got := tc.hit.Miss(); got != tc.miss {
			t.Errorf("%v.Miss() = %v, want %v", tc.hit, got, tc.miss)
		}
		if got := tc.miss.Hit(); got != tc.hit {
			t.Errorf("%v.Hit() = %v, want %v", tc.miss, got, tc.hit)
		}
	}
	// A sequence's verdict must be identical under either polarity —
	// the forms describe one constraint, not two.
	q := Seq{true, false, true, true, false, true, true, true}
	for _, c := range allMissConstraints(len(q)) {
		if q.SatisfiesMiss(c) != q.Satisfies(c.Hit()) {
			t.Fatalf("polarity mismatch on %v: SatisfiesMiss(%v) != Satisfies(%v)", q, c, c.Hit())
		}
	}
}

// randMissConstraint draws a uniformly random valid miss-form
// constraint with Window in [1, maxW].
func randMissConstraint(rng *rand.Rand, maxW int) MissConstraint {
	w := 1 + rng.Intn(maxW)
	return MissConstraint{Misses: rng.Intn(w + 1), Window: w}
}
