package wh

import "testing"

// TestPrecedesBBMatchesExactImplication cross-validates the paper's
// closed-form eq. (7) against the exact automaton-based decision
// procedure on every pair of constraints with windows up to 8. This is
// the strongest evidence that both implementations are faithful: they
// were derived independently (formula vs. reachability).
func TestPrecedesBBMatchesExactImplication(t *testing.T) {
	cs := allConstraints(8)
	for _, x := range cs {
		for _, y := range cs {
			bb := PrecedesBB(x, y)
			exact := Implies(x, y)
			if bb != exact {
				t.Errorf("PrecedesBB(%v, %v) = %v but exact implication = %v", x, y, bb, exact)
			}
		}
	}
}

func TestImpliesKnownCases(t *testing.T) {
	cases := []struct {
		x, y Constraint
		want bool
	}{
		{Constraint{2, 2}, Constraint{1, 2}, true},  // hard implies everything
		{Constraint{1, 2}, Constraint{1, 3}, true},  // longer window, same hits
		{Constraint{1, 2}, Constraint{2, 3}, false}, // 010101 has a 1-hit 3-window
		{Constraint{2, 3}, Constraint{4, 6}, true},  // two disjoint 3-windows
		{Constraint{2, 3}, Constraint{5, 6}, false}, // 011011 has only 4 hits per 6
		{Constraint{3, 4}, Constraint{1, 2}, true},  // isolated misses
		{Constraint{1, 3}, Constraint{1, 2}, false}, // 100100 has a 00 window
		{Constraint{0, 5}, Constraint{0, 9}, true},  // trivial implies trivial
		{Constraint{0, 5}, Constraint{1, 9}, false}, // trivial admits all-miss
		{Constraint{3, 5}, Constraint{3, 5}, true},  // reflexive
		{Constraint{4, 5}, Constraint{1, 2}, true},  // one miss per 5 separates misses
		{Constraint{2, 5}, Constraint{1, 3}, false}, // 11000 repeated has 000
	}
	for _, tc := range cases {
		if got := Implies(tc.x, tc.y); got != tc.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
		if got := PrecedesBB(tc.x, tc.y); got != tc.want {
			t.Errorf("PrecedesBB(%v, %v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

// TestImpliesWitnessedBySequences checks implication decisions against
// exhaustive finite sequence sets: if x implies y, every length-12
// sequence satisfying x satisfies y.
func TestImpliesWitnessedBySequences(t *testing.T) {
	const n = 12
	cs := allConstraints(5)
	for _, x := range cs {
		seqs := EnumerateSatisfying(x, n)
		for _, y := range cs {
			if !Implies(x, y) {
				continue
			}
			for _, q := range seqs {
				if !q.Satisfies(y) {
					t.Fatalf("Implies(%v, %v) claimed but %v violates %v", x, y, q, y)
				}
			}
		}
	}
}

// TestSufficientlyImpliesIsSound checks the scheduler's cheap comparison
// (paper eq. 10) against exact implication: whenever the sufficient test
// accepts, the exact relation must hold.
func TestSufficientlyImpliesIsSound(t *testing.T) {
	cs := allConstraints(7)
	for _, g := range cs {
		for _, r := range cs {
			if SufficientlyImplies(g, r) && !Implies(g, r) {
				t.Errorf("SufficientlyImplies(%v, %v) accepted but implication is false", g, r)
			}
		}
	}
}

// TestSufficientlyImpliesIsIncomplete pins down that the cheap test is a
// strict under-approximation: (1,2) implies (2,4) exactly but fails the
// window-containment comparison (window 2 < 4 yet 1 < 2 hits promised).
func TestSufficientlyImpliesIsIncomplete(t *testing.T) {
	g, r := Constraint{1, 2}, Constraint{2, 4}
	if !Implies(g, r) {
		t.Fatalf("expected %v to imply %v", g, r)
	}
	if SufficientlyImplies(g, r) {
		t.Fatalf("expected the sufficient test to miss %v => %v", g, r)
	}
}

// TestSufficientlyImpliesMissIsSound checks the miss-form sufficient test
// against exact implication. Note the hit-form and miss-form tests are
// *different* sound under-approximations (hit-form containment shrinks
// the guarantee window into the requirement's; miss-form containment
// grows it around the requirement's), so they are validated
// independently rather than against each other.
func TestSufficientlyImpliesMissIsSound(t *testing.T) {
	cs := allConstraints(7)
	for _, g := range cs {
		for _, r := range cs {
			if SufficientlyImpliesMiss(g.Miss(), r.Miss()) && !Implies(g, r) {
				t.Errorf("SufficientlyImpliesMiss(%v, %v) accepted but implication is false", g.Miss(), r.Miss())
			}
		}
	}
}

func TestPrecedesBBIsPartialOrderOnClasses(t *testing.T) {
	cs := allConstraints(6)
	// Reflexivity.
	for _, a := range cs {
		if !PrecedesBB(a, a) {
			t.Errorf("PrecedesBB not reflexive at %v", a)
		}
	}
	// Transitivity.
	for _, a := range cs {
		for _, b := range cs {
			if !PrecedesBB(a, b) {
				continue
			}
			for _, c := range cs {
				if PrecedesBB(b, c) && !PrecedesBB(a, c) {
					t.Errorf("PrecedesBB not transitive: %v <= %v <= %v", a, b, c)
				}
			}
		}
	}
	// Antisymmetry holds only up to equality classes: mutual domination
	// must coincide with exact equivalence.
	for _, a := range cs {
		for _, b := range cs {
			mutual := PrecedesBB(a, b) && PrecedesBB(b, a)
			if mutual != a.Equivalent(b) {
				t.Errorf("mutual domination and equivalence disagree for %v, %v", a, b)
			}
		}
	}
}

func TestComparableFindsIncomparablePairs(t *testing.T) {
	// (1,2) and (3,5) are classic incomparable constraints: 01010...
	// satisfies (1,2) but not (3,5) is false — check via the library.
	a, b := Constraint{1, 2}, Constraint{3, 5}
	if Comparable(a, b) {
		t.Errorf("expected %v and %v to be incomparable", a, b)
	}
	if !Comparable(a, a) {
		t.Errorf("a constraint must be comparable to itself")
	}
}

func TestImpliesPanicsOnHugeWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Implies on a 30-wide window did not panic")
		}
	}()
	Implies(Constraint{1, 30}, Constraint{1, 31})
}
