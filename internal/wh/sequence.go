package wh

import (
	"fmt"
	"strings"
)

// Seq is a finite binary execution trace — the paper's "k-sequence"
// ω ∈ {0,1}*. By convention a true element is a hit (successful
// execution) and a false element is a miss. Eq. (14) of the paper flips
// the polarity for fault injection; the cartpole package documents that
// conversion explicitly rather than reusing Seq with silent reversal.
type Seq []bool

// ParseSeq builds a sequence from a string of '0' (miss) and '1' (hit)
// characters. Any other character is an error.
func ParseSeq(s string) (Seq, error) {
	out := make(Seq, 0, len(s))
	for i, r := range s {
		switch r {
		case '0':
			out = append(out, false)
		case '1':
			out = append(out, true)
		default:
			return nil, fmt.Errorf("wh: invalid sequence character %q at index %d", r, i)
		}
	}
	return out, nil
}

// MustParseSeq is ParseSeq that panics on error; intended for tests and
// package-level literals.
func MustParseSeq(s string) Seq {
	q, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the sequence as a string of '0's and '1's.
func (q Seq) String() string {
	var b strings.Builder
	b.Grow(len(q))
	for _, v := range q {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Hits counts the true elements of the sequence.
func (q Seq) Hits() int {
	n := 0
	for _, v := range q {
		if v {
			n++
		}
	}
	return n
}

// Misses counts the false elements of the sequence.
func (q Seq) Misses() int { return len(q) - q.Hits() }

// HitRate returns Hits/len as a float; it returns 1 for the empty
// sequence (vacuous success, matching vacuous constraint satisfaction).
func (q Seq) HitRate() float64 {
	if len(q) == 0 {
		return 1
	}
	return float64(q.Hits()) / float64(len(q))
}

// And returns the element-wise conjunction of q and r, the composition
// ω_l ∧ ω_r used throughout the paper: position t of the result is a hit
// only if both inputs hit at t. The sequences must have equal length.
func (q Seq) And(r Seq) Seq {
	if len(q) != len(r) {
		panic(fmt.Sprintf("wh: And on sequences of different lengths %d and %d", len(q), len(r)))
	}
	out := make(Seq, len(q))
	for i := range q {
		out[i] = q[i] && r[i]
	}
	return out
}

// AndAll folds And over one or more sequences. It panics if seqs is
// empty or lengths differ.
func AndAll(seqs ...Seq) Seq {
	if len(seqs) == 0 {
		panic("wh: AndAll of no sequences")
	}
	out := append(Seq(nil), seqs[0]...)
	for _, s := range seqs[1:] {
		out = out.And(s)
	}
	return out
}

// MinWindowHits returns the minimum number of hits over all full windows
// of length k in q, and the starting index of a minimizing window. If q
// has no full window of length k (len(q) < k), it returns (k, -1): no
// window can witness a violation, so callers treat the sequence as
// vacuously satisfying any (m, k) with m <= k.
func (q Seq) MinWindowHits(k int) (minHits, start int) {
	if k < 1 {
		panic("wh: window length must be >= 1")
	}
	if len(q) < k {
		return k, -1
	}
	cur := 0
	for i := 0; i < k; i++ {
		if q[i] {
			cur++
		}
	}
	minHits, start = cur, 0
	for i := k; i < len(q); i++ {
		if q[i] {
			cur++
		}
		if q[i-k] {
			cur--
		}
		if cur < minHits {
			minHits, start = cur, i-k+1
		}
	}
	return minHits, start
}

// MaxWindowMisses returns the maximum number of misses over all full
// windows of length k, and the starting index of a maximizing window. If
// no full window exists it returns (0, -1).
func (q Seq) MaxWindowMisses(k int) (maxMisses, start int) {
	minHits, s := q.MinWindowHits(k)
	if s < 0 {
		return 0, -1
	}
	return k - minHits, s
}

// Satisfies reports whether q ⊢ c: every full window of length c.K in q
// contains at least c.M hits. Sequences shorter than the window satisfy
// vacuously (there is no window that can witness a violation); this is
// the finite-trace reading of the paper's S^κ definition.
func (q Seq) Satisfies(c Constraint) bool {
	if c.Trivial() {
		return true
	}
	minHits, start := q.MinWindowHits(c.K)
	_ = start
	return minHits >= c.M
}

// SatisfiesMiss reports whether q satisfies the miss-form constraint:
// every full window of length c.Window has at most c.Misses misses.
func (q Seq) SatisfiesMiss(c MissConstraint) bool { return q.Satisfies(c.Hit()) }

// FirstViolation returns the starting index of the first window of
// length c.K with fewer than c.M hits, or -1 if q satisfies c.
func (q Seq) FirstViolation(c Constraint) int {
	if c.Trivial() || len(q) < c.K {
		return -1
	}
	cur := 0
	for i := 0; i < c.K; i++ {
		if q[i] {
			cur++
		}
	}
	if cur < c.M {
		return 0
	}
	for i := c.K; i < len(q); i++ {
		if q[i] {
			cur++
		}
		if q[i-c.K] {
			cur--
		}
		if cur < c.M {
			return i - c.K + 1
		}
	}
	return -1
}

// LongestMissBurst returns the length of the longest run of consecutive
// misses in q. Burst length is the statistic used to fit weakly-hard
// network statistics from simulated Glossy traces.
func (q Seq) LongestMissBurst() int {
	best, cur := 0, 0
	for _, v := range q {
		if v {
			cur = 0
			continue
		}
		cur++
		if cur > best {
			best = cur
		}
	}
	return best
}

// Repeat returns q concatenated with itself n times. n <= 0 yields an
// empty sequence.
func (q Seq) Repeat(n int) Seq {
	if n <= 0 {
		return Seq{}
	}
	out := make(Seq, 0, n*len(q))
	for i := 0; i < n; i++ {
		out = append(out, q...)
	}
	return out
}
