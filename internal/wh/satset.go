package wh

// This file provides satisfaction-set machinery: enumeration and counting
// of S^κ((m,K)) and an exact worst-case analysis of conjunctions, used as
// the ground truth against which the ⊕ abstraction is measured
// (soundness/tightness lemmas, and the A1 ablation of DESIGN.md).

// enumerateLimit caps the sequence length accepted by EnumerateSatisfying
// to keep the output set at most a few million sequences.
const enumerateLimit = 24

// EnumerateSatisfying returns every sequence of length n satisfying c, in
// lexicographic order (miss < hit). It panics for n > 24; use
// CountSatisfying for larger κ.
func EnumerateSatisfying(c Constraint, n int) []Seq {
	if n < 0 {
		panic("wh: negative sequence length")
	}
	if n > enumerateLimit {
		panic("wh: EnumerateSatisfying length too large; use CountSatisfying")
	}
	var out []Seq
	cur := make(Seq, 0, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			q := make(Seq, n)
			copy(q, cur)
			out = append(out, q)
			return
		}
		for _, hit := range []bool{false, true} {
			cur = append(cur, hit)
			if windowOK(cur, c) {
				rec()
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return out
}

// windowOK checks only the most recent full window of length c.K (all
// earlier windows were checked when their final symbol was appended).
func windowOK(q Seq, c Constraint) bool {
	if c.Trivial() || len(q) < c.K {
		return true
	}
	h := 0
	for _, v := range q[len(q)-c.K:] {
		if v {
			h++
		}
	}
	return h >= c.M
}

// CountSatisfying returns |S^κ(c)| for sequences of length n, computed by
// dynamic programming over the sliding-window automaton (states are the
// most recent c.K−1 symbols). The count is exact while it fits in a
// uint64; the second result reports overflow.
func CountSatisfying(c Constraint, n int) (count uint64, ok bool) {
	if n < 0 {
		panic("wh: negative sequence length")
	}
	if c.Trivial() {
		if n >= 64 {
			return 0, false
		}
		return 1 << uint(n), true
	}
	if c.K-1 > 30 {
		panic("wh: CountSatisfying window too large")
	}
	hist := c.K - 1
	mask := uint32(1)<<uint(hist) - 1
	// dp maps (recent bits, symbols seen capped at hist) -> count. The
	// cap is handled by running the first hist steps over growing
	// prefixes (no window can be complete yet) and then iterating the
	// full automaton.
	if n <= hist {
		if n >= 64 {
			return 0, false
		}
		return 1 << uint(n), true // vacuous: no full window fits
	}
	dp := make([]uint64, 1<<uint(hist))
	// After hist symbols every bit pattern is reachable exactly once.
	for s := range dp {
		dp[s] = 1
	}
	overflow := false
	for t := hist; t < n; t++ {
		next := make([]uint64, len(dp))
		for s, cnt := range dp {
			if cnt == 0 {
				continue
			}
			for bit := uint32(0); bit <= 1; bit++ {
				h := popcount32(uint32(s)) + int(bit)
				if h < c.M {
					continue
				}
				ns := (uint32(s)<<1 | bit) & mask
				sum := next[ns] + cnt
				if sum < next[ns] {
					overflow = true
				}
				next[ns] = sum
			}
		}
		dp = next
	}
	var total uint64
	for _, cnt := range dp {
		sum := total + cnt
		if sum < total {
			overflow = true
		}
		total = sum
	}
	return total, !overflow
}

// InSynthSet reports whether q lies in the adversarial set of paper
// eq. (12), stated on miss-form constraints (m = permitted misses):
//
//	S^κ((m,K)~) − S^κ((m−1,K)~) − S^κ((m,K+1)~)
//
// The subtracted sets are the two minimally harder constraints — one
// fewer permitted miss, and the same miss budget over a one-longer
// window — and are subsets of S^κ((m,K)~), so the difference keeps
// exactly the boundary sequences: q respects the budget everywhere, some
// K-window saturates it with exactly m misses, and some (K+1)-window
// overflows it with m+1. (Read in hit-form the paper's indices would
// subtract supersets and the set would be empty; eq. 12 only
// type-checks in miss-form, which matches eq. 13's miss-form network
// statistic.) For a hard constraint (m = 0) the set is empty.
func InSynthSet(q Seq, c MissConstraint) bool {
	if c.Misses == 0 {
		return false
	}
	if !q.SatisfiesMiss(c) {
		return false
	}
	if q.SatisfiesMiss(MissConstraint{Misses: c.Misses - 1, Window: c.Window}) {
		return false
	}
	if q.SatisfiesMiss(MissConstraint{Misses: c.Misses, Window: c.Window + 1}) {
		return false
	}
	return true
}

// Embeddable reports whether the finite string s occurs as a contiguous
// segment of some infinite sequence satisfying x (miss-form). For
// len(s) >= x.Window this is ordinary satisfaction; shorter strings embed
// iff their total miss count fits the budget (surrounding them with hits
// completes any window).
func Embeddable(s Seq, x MissConstraint) bool {
	if len(s) >= x.Window {
		return s.SatisfiesMiss(x)
	}
	return s.Misses() <= x.Misses
}

// MaxConjMisses returns the exact worst-case number of misses in a window
// of length w of ω_l ∧ ω_r, maximized over all infinite ω_l satisfying x
// and ω_r satisfying y (miss-form). It is the ground truth that the ⊕
// abstraction bounds from above: MaxConjMisses(x, y, min(γ,δ)) ≤
// Oplus(x, y).Misses, with equality exactly when ⊕ is tight.
//
// The search enumerates pairs of embeddable length-w segments via dynamic
// programming over pairs of sliding-window states; cost grows with
// 2^(x.Window + y.Window), so it is intended for analysis windows up to
// ~12 on each side.
func MaxConjMisses(x, y MissConstraint, w int) int {
	if w <= 0 {
		return 0
	}
	if x.Window+y.Window > 26 {
		panic("wh: MaxConjMisses windows too large for exact search")
	}
	sl, sr := newConjSide(x, w), newConjSide(y, w)
	type key struct{ l, r uint32 }
	best := -1
	cur := map[key]int{{0, 0}: 0}
	for t := 0; t < w; t++ {
		next := make(map[key]int, len(cur)*2)
		for st, misses := range cur {
			for lm := 0; lm <= 1; lm++ { // 1 = left side misses at t
				nl, okL := sl.step(st.l, t, lm == 1)
				if !okL {
					continue
				}
				for rm := 0; rm <= 1; rm++ {
					nr, okR := sr.step(st.r, t, rm == 1)
					if !okR {
						continue
					}
					nm := misses
					if lm == 1 || rm == 1 {
						nm++
					}
					k := key{nl, nr}
					if v, ok := next[k]; !ok || nm > v {
						next[k] = nm
					}
				}
			}
		}
		cur = next
	}
	for _, m := range cur {
		if m > best {
			best = m
		}
	}
	return best
}

// conjSide is one side of the MaxConjMisses DP: it validates that a
// growing segment stays embeddable in an infinite sequence satisfying the
// side's miss constraint.
type conjSide struct {
	k, budget int
	mask      uint32
	capped    bool // w < window: only the total miss count matters
}

func newConjSide(c MissConstraint, w int) conjSide {
	s := conjSide{k: c.Window, budget: c.Misses}
	if w < c.Window {
		s.capped = true
		return s
	}
	s.mask = uint32(1)<<uint(c.Window-1) - 1
	return s
}

// step advances the side's DP state by one symbol. In the capped case the
// state is the running miss count; otherwise it is the last Window−1
// symbols with misses encoded as 1-bits (so popcount counts misses).
func (s conjSide) step(state uint32, t int, miss bool) (uint32, bool) {
	if s.capped {
		if miss {
			state++
		}
		return state, int(state) <= s.budget
	}
	bit := uint32(0)
	if miss {
		bit = 1
	}
	if t+1 >= s.k { // a full window of length k ends at position t
		mcount := popcount32(state & s.mask)
		if miss {
			mcount++
		}
		if mcount > s.budget {
			return 0, false
		}
	}
	return (state<<1 | bit) & s.mask, true
}

func popcount32(v uint32) int {
	cnt := 0
	for v != 0 {
		v &= v - 1
		cnt++
	}
	return cnt
}
