package wh

// Analysis helpers over weakly-hard constraints: closed-form window
// bounds (the quantities inside the paper's eq. 7), burst structure, and
// sound downsampling for multi-rate consumers.

// MinHitsInWindow returns the number of hits guaranteed in ANY window of
// length w by a sequence satisfying the hit-form constraint c — the
// closed form max{⌊w/K⌋·M, w + ⌈w/K⌉·(M−K)} from Bernat-Burns (the RHS
// of the paper's eq. 7), clamped to [0, w]. PrecedesBB(c, (γ, w)) holds
// exactly when γ <= MinHitsInWindow(c, w).
func MinHitsInWindow(c Constraint, w int) int {
	if w <= 0 {
		return 0
	}
	if c.Trivial() {
		return 0
	}
	if c.Hard() {
		return w
	}
	floor := (w / c.K) * c.M
	ceil := (w + c.K - 1) / c.K
	alt := w + ceil*(c.M-c.K)
	best := floor
	if alt > best {
		best = alt
	}
	if best < 0 {
		best = 0
	}
	if best > w {
		best = w
	}
	return best
}

// MaxMissesInWindow returns the largest number of misses any window of
// length w can carry under the miss-form constraint c: the dual of
// MinHitsInWindow.
func MaxMissesInWindow(c MissConstraint, w int) int {
	return w - MinHitsInWindow(c.Hit(), w)
}

// MaxMissBurst returns the longest run of consecutive misses the
// constraint permits. For a miss-form (a, w)~ with a < w this is exactly
// a: a longer burst would overload some window, and the canonical burst
// pattern achieves it. Trivial constraints permit unbounded bursts,
// reported as -1.
func MaxMissBurst(c MissConstraint) int {
	if c.Trivial() {
		return -1
	}
	return c.Misses
}

// MinHitRate returns the guaranteed long-run fraction of hits under the
// hit-form constraint: M/K (each disjoint window contributes at least M
// hits).
func MinHitRate(c Constraint) float64 {
	if c.K == 0 {
		return 0
	}
	return float64(c.M) / float64(c.K)
}

// Infer returns, for each requested window, the tightest miss-form
// constraint the trace exhibits: the maximum miss count over all full
// windows of that length. It is the trace-driven counterpart of the
// profiled network statistics — given enough observed rounds, the
// designer can read λ_WH off a deployment log. Windows longer than the
// trace yield the trivial all-window bound (the trace shows nothing).
func Infer(q Seq, windows []int) []MissConstraint {
	out := make([]MissConstraint, 0, len(windows))
	for _, w := range windows {
		if w < 1 {
			panic("wh: Infer window must be >= 1")
		}
		if len(q) < w {
			out = append(out, MissConstraint{Misses: w, Window: w})
			continue
		}
		worst, _ := q.MaxWindowMisses(w)
		out = append(out, MissConstraint{Misses: worst, Window: w})
	}
	return out
}

// SatisfactionProbability returns the exact probability that a length-n
// sequence of i.i.d. Bernoulli(p) hits satisfies the hit-form constraint
// c — the quantitative bridge between the soft and weakly-hard paradigms
// that Table I contrasts qualitatively (e.g. "how likely is an 84%-soft
// task to also exhibit (6,10) behaviour over n runs?"). Computed by
// dynamic programming over the sliding-window automaton; cost O(n·2^K),
// so intended for windows up to ~20.
func SatisfactionProbability(c Constraint, p float64, n int) float64 {
	if p < 0 || p > 1 {
		panic("wh: hit probability outside [0,1]")
	}
	if n < 0 {
		panic("wh: negative sequence length")
	}
	if c.Trivial() || n < c.K {
		return 1
	}
	if c.K-1 > 24 {
		panic("wh: SatisfactionProbability window too large")
	}
	hist := c.K - 1
	mask := uint32(1)<<uint(hist) - 1
	dp := make([]float64, 1<<uint(hist))
	// Distribute the first hist symbols (no full window yet): state s
	// has probability p^hits(s) · (1−p)^(hist−hits(s)).
	for s := range dp {
		h := popcount32(uint32(s))
		dp[s] = pow(p, h) * pow(1-p, hist-h)
	}
	for t := hist; t < n; t++ {
		next := make([]float64, len(dp))
		for s, mass := range dp {
			if mass == 0 {
				continue
			}
			for bit := uint32(0); bit <= 1; bit++ {
				h := popcount32(uint32(s)) + int(bit)
				if h < c.M {
					continue // window violated: path dies
				}
				ns := (uint32(s)<<1 | bit) & mask
				if bit == 1 {
					next[ns] += mass * p
				} else {
					next[ns] += mass * (1 - p)
				}
			}
		}
		dp = next
	}
	total := 0.0
	for _, mass := range dp {
		total += mass
	}
	return total
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

// Downsample returns a miss-form constraint guaranteed to hold for the
// subsequence obtained by keeping every d-th element of a sequence
// satisfying c — the guarantee a consumer sees when it samples a
// weakly-hard stream at 1/d rate (multi-rate undersampling). Any n
// consecutive samples span (n−1)·d+1 original elements, so with
// n = ⌊(c.Window−1)/d⌋+1 the span fits inside one original window and
// inherits its miss budget (clamped to the new window).
func Downsample(c MissConstraint, d int) MissConstraint {
	if d <= 0 {
		panic("wh: downsample factor must be positive")
	}
	if d == 1 {
		return c
	}
	n := (c.Window-1)/d + 1
	m := c.Misses
	if m > n {
		m = n
	}
	return MissConstraint{Misses: m, Window: n}
}
