package wh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// newTestRand returns a deterministic RNG for tests; the fixed seed keeps
// failures reproducible.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(0x5eed)) }

// quickCfg bounds generated values so window-exponential checks stay fast.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     newTestRand(),
	}
}

// genConstraint maps arbitrary ints onto a valid small constraint.
func genConstraint(a, b int, maxK int) Constraint {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	k := b%maxK + 1
	m := a % (k + 1)
	return Constraint{M: m, K: k}
}

func genSeq(bits uint64, n int) Seq {
	q := make(Seq, n)
	for i := range q {
		q[i] = bits&(1<<uint(i%64)) != 0
	}
	return q
}

// Property: miss/hit conversion is an involution.
func TestQuickHitMissInvolution(t *testing.T) {
	f := func(a, b int) bool {
		c := genConstraint(a, b, 30)
		return c.Miss().Hit() == c
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: satisfaction is monotone in M — requiring fewer hits can only
// admit more sequences.
func TestQuickSatisfactionMonotoneInM(t *testing.T) {
	f := func(bits uint64, a, b int) bool {
		c := genConstraint(a, b, 10)
		if c.M == 0 {
			return true
		}
		q := genSeq(bits, 16)
		weaker := Constraint{M: c.M - 1, K: c.K}
		if q.Satisfies(c) && !q.Satisfies(weaker) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: a sequence satisfying (m, K) also satisfies (m, K+1) — longer
// windows with the same hit demand are weaker in hit-form.
func TestQuickSatisfactionMonotoneInK(t *testing.T) {
	f := func(bits uint64, a, b int) bool {
		c := genConstraint(a, b, 10)
		q := genSeq(bits, 16)
		longer := Constraint{M: c.M, K: c.K + 1}
		if q.Satisfies(c) && !q.Satisfies(longer) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: And is commutative, associative and idempotent, and its
// result satisfies any constraint both operands' conjunction must (spot
// check: result misses wherever either misses).
func TestQuickAndAlgebra(t *testing.T) {
	f := func(x, y, z uint64) bool {
		const n = 20
		a, b, c := genSeq(x, n), genSeq(y, n), genSeq(z, n)
		if a.And(b).String() != b.And(a).String() {
			return false
		}
		if a.And(b.And(c)).String() != a.And(b).And(c).String() {
			return false
		}
		if a.And(a).String() != a.String() {
			return false
		}
		ab := a.And(b)
		for i := range ab {
			if ab[i] && (!a[i] || !b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property (soundness of ⊕ on random data): for random constraints and
// random satisfying sequences drawn by the constrained sampler, the
// conjunction satisfies x ⊕ y.
func TestQuickOplusSoundOnSampledSequences(t *testing.T) {
	rng := newTestRand()
	f := func(a1, b1, a2, b2 int, p1, p2 float64) bool {
		x := genConstraint(a1, b1, 8).Miss()
		y := genConstraint(a2, b2, 8).Miss()
		norm := func(p float64) float64 {
			p = math.Abs(math.Mod(p, 1))
			if math.IsNaN(p) {
				return 0.5
			}
			return p
		}
		ql, err := RandomSatisfying(x, 64, norm(p1), rng)
		if err != nil {
			return false
		}
		qr, err := RandomSatisfying(y, 64, norm(p2), rng)
		if err != nil {
			return false
		}
		return ql.And(qr).SatisfiesMiss(Oplus(x, y))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: PrecedesBB agrees with exact implication on random pairs
// (windows ≤ 10; the exhaustive test covers ≤ 8 systematically).
func TestQuickPrecedesBBExact(t *testing.T) {
	f := func(a1, b1, a2, b2 int) bool {
		x := genConstraint(a1, b1, 10)
		y := genConstraint(a2, b2, 10)
		return PrecedesBB(x, y) == Implies(x, y)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: synthesized adversarial sequences always satisfy their
// constraint and saturate it (boundary membership) for non-hard
// constraints.
func TestQuickSynthesisBoundary(t *testing.T) {
	f := func(a, b int) bool {
		c := genConstraint(a, b, 10).Miss()
		if c.Misses == 0 || c.Misses == c.Window {
			return true // hard or trivial: boundary set empty/degenerate
		}
		q, err := Synthesize(c, 5*c.Window)
		if err != nil {
			return false
		}
		return InSynthSet(q, c)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: CountSatisfying is monotone — weakening a constraint never
// reduces the count.
func TestQuickCountMonotone(t *testing.T) {
	f := func(a, b int) bool {
		c := genConstraint(a, b, 8)
		if c.M == 0 {
			return true
		}
		n := 14
		strong, ok1 := CountSatisfying(c, n)
		weak, ok2 := CountSatisfying(Constraint{M: c.M - 1, K: c.K}, n)
		return ok1 && ok2 && strong <= weak
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
