package wh

import (
	"fmt"
	"math/rand"
)

// This file synthesizes the adversarial miss patterns of paper eq. (12),
// used both by the §IV-A validation harness and by the §IV-C cartpole
// fault-injection experiment. The canonical pattern for a miss-form
// constraint (m, K)~ is the maximally bursty periodic sequence
//
//	(0^m 1^(K−m))^*
//
// in which every K-window carries exactly m misses and every period
// boundary exposes a (K+1)-window with m+1 misses — precisely the
// membership conditions of InSynthSet.

// Synthesize returns the canonical adversarial sequence of the given
// length for the miss-form constraint c: bursts of c.Misses consecutive
// misses separated by c.Window−c.Misses hits. For a hard constraint
// (Misses = 0) it returns the all-hit sequence, the only satisfying
// pattern. It returns an error for invalid constraints or negative
// lengths.
func Synthesize(c MissConstraint, length int) (Seq, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if length < 0 {
		return nil, fmt.Errorf("wh: negative synthesis length %d", length)
	}
	out := make(Seq, length)
	for i := range out {
		out[i] = i%c.Window >= c.Misses
	}
	return out, nil
}

// SynthesizeRotated returns the canonical adversarial pattern rotated by
// the given phase (0 <= phase < c.Window gives distinct alignments).
// Rotations preserve membership in the eq. (12) set for lengths of at
// least two periods, because the pattern is periodic.
func SynthesizeRotated(c MissConstraint, length, phase int) (Seq, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if length < 0 {
		return nil, fmt.Errorf("wh: negative synthesis length %d", length)
	}
	phase %= c.Window
	if phase < 0 {
		phase += c.Window
	}
	out := make(Seq, length)
	for i := range out {
		out[i] = (i+phase)%c.Window >= c.Misses
	}
	return out, nil
}

// SynthesizeRandom draws a random adversarial pattern for c: the
// canonical pattern at a uniformly random phase. rng must be non-nil so
// experiments are reproducible under caller-controlled seeding.
func SynthesizeRandom(c MissConstraint, length int, rng *rand.Rand) (Seq, error) {
	if rng == nil {
		return nil, fmt.Errorf("wh: SynthesizeRandom requires a non-nil rng")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return SynthesizeRotated(c, length, rng.Intn(c.Window))
}

// RandomSatisfying draws a random sequence of the given length that
// satisfies the miss-form constraint c. At each position the sequence
// misses with probability missProb unless doing so would overflow the
// miss budget of the window ending there, in which case it hits. The
// result always satisfies c but is generally not in the eq. (12)
// boundary set; it models well-behaved traffic rather than adversarial
// traffic.
func RandomSatisfying(c MissConstraint, length int, missProb float64, rng *rand.Rand) (Seq, error) {
	if rng == nil {
		return nil, fmt.Errorf("wh: RandomSatisfying requires a non-nil rng")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if missProb < 0 || missProb > 1 {
		return nil, fmt.Errorf("wh: miss probability %v outside [0,1]", missProb)
	}
	out := make(Seq, length)
	window := 0 // misses among the last min(i, Window) symbols
	for i := range out {
		if i >= c.Window && !out[i-c.Window] {
			window--
		}
		if window < c.Misses && rng.Float64() < missProb {
			out[i] = false
			window++
		} else {
			out[i] = true
		}
	}
	return out, nil
}

// Bernoulli draws a length-n sequence whose elements hit independently
// with probability p — the soft-real-time sampling model of paper
// eq. (11), justified by Zimmerling et al.'s observation that Glossy
// floods behave as independent Bernoulli trials.
func Bernoulli(p float64, n int, rng *rand.Rand) (Seq, error) {
	if rng == nil {
		return nil, fmt.Errorf("wh: Bernoulli requires a non-nil rng")
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("wh: hit probability %v outside [0,1]", p)
	}
	if n < 0 {
		return nil, fmt.Errorf("wh: negative sequence length %d", n)
	}
	out := make(Seq, n)
	for i := range out {
		out[i] = rng.Float64() < p
	}
	return out, nil
}
