package wh

import "testing"

func TestParseSeq(t *testing.T) {
	q, err := ParseSeq("10110")
	if err != nil {
		t.Fatalf("ParseSeq: %v", err)
	}
	want := Seq{true, false, true, true, false}
	if len(q) != len(want) {
		t.Fatalf("length %d, want %d", len(q), len(want))
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, q[i], want[i])
		}
	}
	if q.String() != "10110" {
		t.Errorf("String = %q, want 10110", q.String())
	}
	if _, err := ParseSeq("10x"); err == nil {
		t.Error("ParseSeq accepted an invalid character")
	}
}

func TestHitsMissesRate(t *testing.T) {
	q := MustParseSeq("110100")
	if q.Hits() != 3 || q.Misses() != 3 {
		t.Errorf("Hits/Misses = %d/%d, want 3/3", q.Hits(), q.Misses())
	}
	if got := q.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	if got := (Seq{}).HitRate(); got != 1 {
		t.Errorf("empty HitRate = %v, want 1 (vacuous)", got)
	}
}

func TestAnd(t *testing.T) {
	a := MustParseSeq("1101")
	b := MustParseSeq("1011")
	got := a.And(b).String()
	if got != "1001" {
		t.Errorf("And = %q, want 1001", got)
	}
	all := AndAll(a, b, MustParseSeq("1111")).String()
	if all != "1001" {
		t.Errorf("AndAll = %q, want 1001", all)
	}
	defer func() {
		if recover() == nil {
			t.Error("And on mismatched lengths did not panic")
		}
	}()
	_ = a.And(MustParseSeq("10"))
}

func TestMinWindowHits(t *testing.T) {
	q := MustParseSeq("1101011001")
	min, start := q.MinWindowHits(4)
	if min != 2 {
		t.Errorf("MinWindowHits(4) = %d, want 2", min)
	}
	// The window at start must actually achieve the minimum.
	h := 0
	for _, v := range q[start : start+4] {
		if v {
			h++
		}
	}
	if h != min {
		t.Errorf("window at start %d has %d hits, reported min %d", start, h, min)
	}
	// Short sequence: vacuous.
	if m, s := MustParseSeq("10").MinWindowHits(5); m != 5 || s != -1 {
		t.Errorf("short MinWindowHits = (%d,%d), want (5,-1)", m, s)
	}
}

func TestMaxWindowMisses(t *testing.T) {
	q := MustParseSeq("1001001110")
	max, _ := q.MaxWindowMisses(3)
	if max != 2 {
		t.Errorf("MaxWindowMisses(3) = %d, want 2", max)
	}
}

func TestSatisfies(t *testing.T) {
	cases := []struct {
		seq  string
		c    Constraint
		want bool
	}{
		{"1111111111", Constraint{1, 1}, true},
		{"1111011111", Constraint{1, 1}, false},
		{"1101101101", Constraint{2, 3}, true},
		{"1100101101", Constraint{2, 3}, false},
		{"0000000000", Constraint{0, 3}, true}, // trivial constraint
		{"10", Constraint{4, 5}, true},         // vacuous: no full window
		{"0101010101", Constraint{1, 2}, true},
		{"0101010100", Constraint{1, 2}, false}, // trailing 00
	}
	for _, tc := range cases {
		q := MustParseSeq(tc.seq)
		if got := q.Satisfies(tc.c); got != tc.want {
			t.Errorf("%q.Satisfies(%v) = %v, want %v", tc.seq, tc.c, got, tc.want)
		}
	}
}

func TestSatisfiesMissMatchesHitForm(t *testing.T) {
	q := MustParseSeq("110101100111")
	for k := 1; k <= 6; k++ {
		for m := 0; m <= k; m++ {
			hit := Constraint{M: m, K: k}
			if q.Satisfies(hit) != q.SatisfiesMiss(hit.Miss()) {
				t.Fatalf("hit/miss satisfaction disagree for %v", hit)
			}
		}
	}
}

func TestFirstViolation(t *testing.T) {
	q := MustParseSeq("1110100111")
	c := Constraint{2, 3}
	idx := q.FirstViolation(c)
	if idx != 3 { // window "010" starting at index 3 has 1 hit
		t.Errorf("FirstViolation = %d, want 3", idx)
	}
	if got := MustParseSeq("111111").FirstViolation(c); got != -1 {
		t.Errorf("FirstViolation on satisfying seq = %d, want -1", got)
	}
}

func TestLongestMissBurst(t *testing.T) {
	cases := []struct {
		seq  string
		want int
	}{
		{"1111", 0},
		{"0000", 4},
		{"1001101", 2},
		{"0110001", 3},
	}
	for _, tc := range cases {
		if got := MustParseSeq(tc.seq).LongestMissBurst(); got != tc.want {
			t.Errorf("LongestMissBurst(%q) = %d, want %d", tc.seq, got, tc.want)
		}
	}
}

func TestRepeat(t *testing.T) {
	q := MustParseSeq("10")
	if got := q.Repeat(3).String(); got != "101010" {
		t.Errorf("Repeat = %q", got)
	}
	if got := q.Repeat(0); len(got) != 0 {
		t.Errorf("Repeat(0) length = %d", len(got))
	}
}
