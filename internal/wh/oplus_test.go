package wh

import "testing"

func TestOplusFormula(t *testing.T) {
	cases := []struct{ x, y, want MissConstraint }{
		// Paper eq. (8): (α,γ)~ ⊕ (β,δ)~ = (min{α+β,γ,δ}, min{γ,δ})~.
		{MissConstraint{1, 5}, MissConstraint{2, 7}, MissConstraint{3, 5}},
		{MissConstraint{3, 5}, MissConstraint{3, 5}, MissConstraint{5, 5}}, // capped at window
		{MissConstraint{0, 4}, MissConstraint{0, 9}, MissConstraint{0, 4}}, // hard ⊕ hard = hard
		{MissConstraint{2, 10}, MissConstraint{0, 3}, MissConstraint{2, 3}},
	}
	for _, tc := range cases {
		if got := Oplus(tc.x, tc.y); got != tc.want {
			t.Errorf("Oplus(%v, %v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestOplusCommutes(t *testing.T) {
	for _, x := range allMissConstraints(8) {
		for _, y := range allMissConstraints(8) {
			if Oplus(x, y) != Oplus(y, x) {
				t.Fatalf("Oplus(%v,%v) != Oplus(%v,%v)", x, y, y, x)
			}
		}
	}
}

func TestOplusAssociates(t *testing.T) {
	cs := allMissConstraints(5)
	for _, x := range cs {
		for _, y := range cs {
			for _, z := range cs {
				l := Oplus(Oplus(x, y), z)
				r := Oplus(x, Oplus(y, z))
				if l != r {
					t.Fatalf("⊕ not associative at %v,%v,%v: %v vs %v", x, y, z, l, r)
				}
			}
		}
	}
}

// TestOplusSoundnessExhaustive is the paper's Soundness lemma checked by
// brute force: for every pair of small constraints and every pair of
// length-n satisfying sequences, the conjunction satisfies x ⊕ y.
func TestOplusSoundnessExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive soundness check skipped in -short mode")
	}
	const n = 10
	cs := allMissConstraints(4)
	for _, x := range cs {
		ls := EnumerateSatisfying(x.Hit(), n)
		for _, y := range cs {
			z := Oplus(x, y)
			rs := EnumerateSatisfying(y.Hit(), n)
			for _, ql := range ls {
				for _, qr := range rs {
					if !ql.And(qr).SatisfiesMiss(z) {
						t.Fatalf("soundness violated: %v ⊢ %v, %v ⊢ %v, but %v ⊬ %v",
							ql, x, qr, y, ql.And(qr), z)
					}
				}
			}
		}
	}
}

// TestOplusSoundnessViaDP checks soundness with the exact worst-case DP
// on larger windows than the exhaustive test can reach.
func TestOplusSoundnessViaDP(t *testing.T) {
	cs := allMissConstraints(8)
	for _, x := range cs {
		for _, y := range cs {
			if x.Window+y.Window > 16 {
				continue
			}
			z := Oplus(x, y)
			worst := MaxConjMisses(x, y, z.Window)
			if worst > z.Misses {
				t.Errorf("⊕ unsound for %v, %v: worst-case misses %d exceed bound %d", x, y, worst, z.Misses)
			}
		}
	}
}

// TestOplusTightnessEqualWindows is the paper's Tightness lemma: when the
// two windows are equal, the ⊕ bound is achieved exactly.
func TestOplusTightnessEqualWindows(t *testing.T) {
	for w := 2; w <= 8; w++ {
		for a := 0; a <= w; a++ {
			for b := 0; b <= w; b++ {
				x := MissConstraint{Misses: a, Window: w}
				y := MissConstraint{Misses: b, Window: w}
				z := Oplus(x, y)
				worst := MaxConjMisses(x, y, z.Window)
				if worst != z.Misses {
					t.Errorf("⊕ not tight for equal windows %v, %v: worst %d, bound %d", x, y, worst, z.Misses)
				}
			}
		}
	}
}

// TestOplusMonotone checks that ⊕ is monotone w.r.t. the sufficient
// ordering in both arguments: weakening an input never strengthens the
// output. Monotonicity is what allows the scheduler to reason about χ
// increases locally.
func TestOplusMonotone(t *testing.T) {
	cs := allMissConstraints(6)
	for _, x := range cs {
		for _, x2 := range cs {
			if !SufficientlyImpliesMiss(x, x2) {
				continue // x is not stronger than x2
			}
			for _, y := range cs {
				strong := Oplus(x, y)
				weak := Oplus(x2, y)
				if !SufficientlyImpliesMiss(strong, weak) {
					t.Errorf("⊕ not monotone: %v ⪯ %v but %v ⊕ %v = %v does not imply %v",
						x, x2, x, y, strong, weak)
				}
			}
		}
	}
}

func TestOplusAll(t *testing.T) {
	got := OplusAll(
		MissConstraint{1, 10},
		MissConstraint{2, 8},
		MissConstraint{1, 12},
	)
	want := MissConstraint{Misses: 4, Window: 8}
	if got != want {
		t.Errorf("OplusAll = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("OplusAll() of nothing did not panic")
		}
	}()
	OplusAll()
}

func TestOplusHitRoundTrip(t *testing.T) {
	x := Constraint{7, 10} // 3 misses per 10
	y := Constraint{5, 8}  // 3 misses per 8
	got := OplusHit(x, y)
	want := Constraint{M: 2, K: 8} // 6 misses per 8
	if got != want {
		t.Errorf("OplusHit = %v, want %v", got, want)
	}
}

func TestConjunctionSatisfies(t *testing.T) {
	req := MissConstraint{Misses: 4, Window: 10}
	ok := []MissConstraint{{1, 12}, {2, 15}, {1, 20}}
	if !ConjunctionSatisfies(ok, req) {
		t.Errorf("expected %v to satisfy %v via ⊕", ok, req)
	}
	bad := []MissConstraint{{3, 12}, {2, 15}}
	if ConjunctionSatisfies(bad, req) {
		t.Errorf("expected %v to fail %v via ⊕", bad, req)
	}
	// Windows shorter than the requirement's can never pass the
	// sufficient comparison even with zero misses.
	short := []MissConstraint{{0, 5}}
	if ConjunctionSatisfies(short, req) {
		t.Errorf("window-5 guarantee must not pass a window-10 requirement")
	}
	if !ConjunctionSatisfies(nil, req) {
		t.Errorf("a task with no networked predecessors satisfies trivially")
	}
}

// allMissConstraints returns every valid miss-form constraint with
// Window <= maxW.
func allMissConstraints(maxW int) []MissConstraint {
	var out []MissConstraint
	for w := 1; w <= maxW; w++ {
		for m := 0; m <= w; m++ {
			out = append(out, MissConstraint{Misses: m, Window: w})
		}
	}
	return out
}
