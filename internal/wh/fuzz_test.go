package wh

import "testing"

// FuzzParseSeq checks that ParseSeq either errors or round-trips through
// String on arbitrary input.
func FuzzParseSeq(f *testing.F) {
	f.Add("10110")
	f.Add("")
	f.Add("0000000000000000")
	f.Add("1x0")
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseSeq(s)
		if err != nil {
			return
		}
		if q.String() != s {
			t.Fatalf("round trip %q -> %q", s, q.String())
		}
		if q.Hits()+q.Misses() != len(q) {
			t.Fatal("hits + misses != length")
		}
	})
}

// FuzzSatisfactionConsistency cross-checks Satisfies against
// FirstViolation and the online monitor on arbitrary sequences and
// constraint parameters.
func FuzzSatisfactionConsistency(f *testing.F) {
	f.Add(uint64(0b101101), 10, 2, 3)
	f.Add(uint64(0), 8, 1, 2)
	f.Fuzz(func(t *testing.T, bits uint64, n, m, k int) {
		if n < 0 || n > 32 {
			return
		}
		if k < 1 || k > 16 || m < 0 || m > k {
			return
		}
		c := Constraint{M: m, K: k}
		q := genSeq(bits, n)
		sat := q.Satisfies(c)
		if (q.FirstViolation(c) == -1) != sat {
			t.Fatalf("Satisfies and FirstViolation disagree on %v under %v", q, c)
		}
		mon, err := NewMonitor(c)
		if err != nil {
			t.Fatal(err)
		}
		viols := mon.PushSeq(q)
		if (viols == 0) != sat {
			t.Fatalf("monitor and Satisfies disagree on %v under %v", q, c)
		}
	})
}

// FuzzOplusSoundness drives random constraint pairs through ⊕ and checks
// the canonical adversarial witnesses still compose soundly.
func FuzzOplusSoundness(f *testing.F) {
	f.Add(1, 4, 2, 6, 3)
	f.Fuzz(func(t *testing.T, a1, w1, a2, w2, phase int) {
		if w1 < 1 || w1 > 24 || w2 < 1 || w2 > 24 {
			return
		}
		if a1 < 0 || a1 > w1 || a2 < 0 || a2 > w2 {
			return
		}
		x := MissConstraint{Misses: a1, Window: w1}
		y := MissConstraint{Misses: a2, Window: w2}
		z := Oplus(x, y)
		ql, err := SynthesizeRotated(x, 4*w1*w2, phase)
		if err != nil {
			t.Fatal(err)
		}
		qr, err := SynthesizeRotated(y, 4*w1*w2, phase/2)
		if err != nil {
			t.Fatal(err)
		}
		if !ql.And(qr).SatisfiesMiss(z) {
			t.Fatalf("⊕ soundness violated for %v, %v", x, y)
		}
	})
}
