package wh

import "testing"

func TestMonitorBasics(t *testing.T) {
	m, err := NewMonitor(Constraint{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// 1 1 0: window full, 2 hits -> ok.
	if !m.Push(true) || !m.Push(true) || !m.Push(false) {
		t.Fatal("valid prefix reported violating")
	}
	// next 0: window 1 0 0 -> violation.
	if m.Push(false) {
		t.Error("violation not detected")
	}
	if m.OK() || m.Violations() != 1 {
		t.Errorf("violations = %d, want 1", m.Violations())
	}
	if m.Total() != 4 {
		t.Errorf("total = %d", m.Total())
	}
}

func TestMonitorMatchesOfflineSatisfaction(t *testing.T) {
	// The monitor's verdict must agree with Seq.Satisfies on every
	// sequence of length 12 for a grid of constraints.
	for _, c := range allConstraints(5) {
		if c.Trivial() {
			continue
		}
		for bits := 0; bits < 1<<12; bits += 7 { // sampled stride for speed
			q := bitsToSeq(bits, 12)
			m, err := NewMonitor(c)
			if err != nil {
				t.Fatal(err)
			}
			viols := m.PushSeq(q)
			if (viols == 0) != q.Satisfies(c) {
				t.Fatalf("monitor and offline disagree: %v under %v (viols=%d)", q, c, viols)
			}
		}
	}
}

func TestMonitorVacuousBeforeWindowFull(t *testing.T) {
	m, _ := NewMonitor(Constraint{3, 3})
	if !m.Push(false) || !m.Push(false) {
		t.Error("partial windows must not violate")
	}
	// The third push completes the window with zero hits: violation.
	if m.Push(false) {
		t.Error("full all-miss window must violate (3,3)")
	}
}

func TestMonitorHeadroom(t *testing.T) {
	m, _ := NewMonitor(Constraint{2, 4})
	// Empty: headroom = K - M = 2.
	if got := m.HeadroomHits(); got != 2 {
		t.Errorf("initial headroom = %d, want 2", got)
	}
	m.Push(false)
	if got := m.HeadroomHits(); got != 1 {
		t.Errorf("headroom after one miss = %d, want 1", got)
	}
	m.Push(false)
	if got := m.HeadroomHits(); got != 0 {
		t.Errorf("headroom after two misses = %d, want 0", got)
	}
	m.Push(true)
	m.Push(true) // window now 0 0 1 1 -> satisfied, headroom 0
	if got := m.HeadroomHits(); got != 0 {
		t.Errorf("headroom = %d, want 0", got)
	}
	m.Push(true) // window 0 1 1 1 -> headroom 1
	if got := m.HeadroomHits(); got != 1 {
		t.Errorf("headroom = %d, want 1", got)
	}
}

func TestMonitorReset(t *testing.T) {
	m, _ := NewMissMonitor(MissConstraint{Misses: 0, Window: 2})
	m.Push(false)
	m.Push(false)
	if m.OK() {
		t.Fatal("hard constraint with misses should violate")
	}
	m.Reset()
	if !m.OK() || m.Total() != 0 {
		t.Error("Reset did not clear state")
	}
	if !m.Push(true) {
		t.Error("fresh push after reset violated")
	}
}

func TestMonitorRejectsInvalidConstraint(t *testing.T) {
	if _, err := NewMonitor(Constraint{5, 3}); err == nil {
		t.Error("invalid constraint accepted")
	}
	if _, err := NewMissMonitor(MissConstraint{Misses: -1, Window: 3}); err == nil {
		t.Error("invalid miss constraint accepted")
	}
}

func TestMonitorAgainstSynthesizedPatterns(t *testing.T) {
	// Canonical adversarial patterns satisfy their constraint: the
	// monitor must stay green over long streams.
	c := MissConstraint{Misses: 2, Window: 6}
	q, err := Synthesize(c, 600)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMissMonitor(c)
	if v := m.PushSeq(q); v != 0 {
		t.Errorf("monitor flagged %d violations on a satisfying stream", v)
	}
	// A burst of three misses overflows the 2-miss budget of the window
	// containing it.
	m2, _ := NewMissMonitor(c)
	pattern := append(append(Seq{}, q[:6]...), false, false, false)
	if v := m2.PushSeq(pattern); v == 0 {
		t.Error("monitor missed an injected violation")
	}
}
