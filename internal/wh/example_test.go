package wh_test

import (
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/wh"
)

// The basic vocabulary: constraints, sequences, satisfaction.
func ExampleConstraint() {
	c := wh.Constraint{M: 6, K: 10} // Table I: at least 6 hits per 10 runs
	q := wh.MustParseSeq("1101101111011011")
	fmt.Println(c, q.Satisfies(c))
	// Output: (6,10) true
}

// Miss-form and hit-form are exact duals.
func ExampleConstraint_Miss() {
	c := wh.Constraint{M: 6, K: 10}
	fmt.Println(c.Miss())
	// Output: (4,10)~
}

// The ⊕ abstraction composes guarantees of independent event streams
// (paper eq. 8).
func ExampleOplus() {
	link1 := wh.MissConstraint{Misses: 1, Window: 20} // ≤1 miss per 20
	link2 := wh.MissConstraint{Misses: 2, Window: 30} // ≤2 misses per 30
	fmt.Println(wh.Oplus(link1, link2))
	// Output: (3,20)~
}

// The Bernat-Burns domination order (paper eq. 7) compares constraint
// strength.
func ExamplePrecedesBB() {
	harder := wh.Constraint{M: 3, K: 4}
	easier := wh.Constraint{M: 1, K: 2}
	fmt.Println(wh.PrecedesBB(harder, easier), wh.PrecedesBB(easier, harder))
	// Output: true false
}

// Adversarial patterns (paper eq. 12) saturate a guarantee exactly.
func ExampleSynthesize() {
	c := wh.MissConstraint{Misses: 2, Window: 6}
	q, _ := wh.Synthesize(c, 12)
	fmt.Println(q, wh.InSynthSet(q, c))
	// Output: 001111001111 true
}

// The online monitor checks constraints in O(1) per outcome.
func ExampleMonitor() {
	m, _ := wh.NewMissMonitor(wh.MissConstraint{Misses: 1, Window: 3})
	for _, hit := range []bool{true, false, true, true, false, false} {
		m.Push(hit)
	}
	fmt.Println(m.Violations())
	// Output: 1
}

// SatisfactionProbability bridges the soft and weakly-hard paradigms.
func ExampleSatisfactionProbability() {
	p := wh.SatisfactionProbability(wh.Constraint{M: 6, K: 10}, 0.84, 100)
	fmt.Printf("%.2f\n", p)
	// Output: 0.69
}

// RandomSatisfying draws well-behaved traffic under a guarantee.
func ExampleRandomSatisfying() {
	rng := rand.New(rand.NewSource(1))
	c := wh.MissConstraint{Misses: 2, Window: 8}
	q, _ := wh.RandomSatisfying(c, 64, 0.3, rng)
	fmt.Println(q.SatisfiesMiss(c))
	// Output: true
}
