package wh

import "testing"

// TestMinHitsInWindowMatchesExact validates the closed form against the
// exact minimum computed from the automaton-based implication: the
// guaranteed hits in a w-window is the largest γ with Implies(c, (γ,w)).
func TestMinHitsInWindowMatchesExact(t *testing.T) {
	for _, c := range allConstraints(6) {
		for w := 1; w <= 8; w++ {
			got := MinHitsInWindow(c, w)
			exact := 0
			for gamma := w; gamma >= 1; gamma-- {
				if Implies(c, Constraint{M: gamma, K: w}) {
					exact = gamma
					break
				}
			}
			if got != exact {
				t.Errorf("MinHitsInWindow(%v, %d) = %d, exact %d", c, w, got, exact)
			}
		}
	}
}

func TestMinHitsInWindowKnownValues(t *testing.T) {
	cases := []struct {
		c    Constraint
		w    int
		want int
	}{
		{Constraint{2, 3}, 6, 4},  // two disjoint windows
		{Constraint{2, 3}, 4, 2},  // paper-style overlap case
		{Constraint{3, 4}, 2, 1},  // isolated misses
		{Constraint{0, 5}, 10, 0}, // trivial
		{Constraint{4, 4}, 7, 7},  // hard
		{Constraint{1, 2}, 1, 0},  // single element may miss
	}
	for _, tc := range cases {
		if got := MinHitsInWindow(tc.c, tc.w); got != tc.want {
			t.Errorf("MinHitsInWindow(%v, %d) = %d, want %d", tc.c, tc.w, got, tc.want)
		}
	}
}

func TestMaxMissesInWindowDual(t *testing.T) {
	c := MissConstraint{Misses: 1, Window: 3}
	// In any 6-window at most 2 misses can appear.
	if got := MaxMissesInWindow(c, 6); got != 2 {
		t.Errorf("MaxMissesInWindow = %d, want 2", got)
	}
	// Witness: the canonical pattern achieves it.
	q, _ := Synthesize(c, 12)
	worst, _ := q.MaxWindowMisses(6)
	if worst != 2 {
		t.Errorf("canonical pattern worst = %d, want 2", worst)
	}
}

func TestMaxMissBurst(t *testing.T) {
	if got := MaxMissBurst(MissConstraint{Misses: 3, Window: 8}); got != 3 {
		t.Errorf("MaxMissBurst = %d, want 3", got)
	}
	if got := MaxMissBurst(MissConstraint{Misses: 5, Window: 5}); got != -1 {
		t.Errorf("trivial MaxMissBurst = %d, want -1", got)
	}
	// The canonical adversarial pattern realizes the burst.
	c := MissConstraint{Misses: 3, Window: 8}
	q, _ := Synthesize(c, 24)
	if q.LongestMissBurst() != 3 {
		t.Errorf("canonical burst = %d, want 3", q.LongestMissBurst())
	}
}

func TestMinHitRate(t *testing.T) {
	if got := MinHitRate(Constraint{3, 4}); got != 0.75 {
		t.Errorf("MinHitRate = %v", got)
	}
}

// TestDownsampleSound checks by brute force that every satisfying
// sequence's every-d-th subsequence satisfies the downsampled bound.
func TestDownsampleSound(t *testing.T) {
	cons := []MissConstraint{{1, 3}, {2, 4}, {1, 4}, {2, 5}}
	for _, c := range cons {
		for d := 1; d <= 3; d++ {
			down := Downsample(c, d)
			if err := down.Validate(); err != nil {
				t.Fatalf("Downsample(%v, %d) invalid: %v", c, d, err)
			}
			for _, q := range EnumerateSatisfying(c.Hit(), 12) {
				sub := make(Seq, 0, len(q)/d+1)
				for i := 0; i < len(q); i += d {
					sub = append(sub, q[i])
				}
				if !sub.SatisfiesMiss(down) {
					t.Fatalf("Downsample(%v, %d) = %v unsound: %v -> %v", c, d, down, q, sub)
				}
			}
		}
	}
}

func TestInferRoundTrip(t *testing.T) {
	// Inferring from a canonical adversarial trace recovers the
	// generating constraint exactly.
	c := MissConstraint{Misses: 2, Window: 7}
	q, err := Synthesize(c, 10*7)
	if err != nil {
		t.Fatal(err)
	}
	got := Infer(q, []int{7})
	if got[0] != c {
		t.Errorf("Infer = %v, want %v", got[0], c)
	}
	// Inferred constraints are always satisfied by the trace.
	for _, w := range []int{1, 3, 5, 7, 20} {
		inf := Infer(q, []int{w})[0]
		if !q.SatisfiesMiss(inf) {
			t.Errorf("trace violates its own inferred constraint %v", inf)
		}
		// One miss fewer would be violated (tightness), unless the bound
		// is already zero.
		if inf.Misses > 0 {
			tighter := MissConstraint{Misses: inf.Misses - 1, Window: inf.Window}
			if q.SatisfiesMiss(tighter) {
				t.Errorf("inferred %v not tight for window %d", inf, w)
			}
		}
	}
	// Windows beyond the trace yield the trivial bound.
	if got := Infer(MustParseSeq("101"), []int{5})[0]; !got.Trivial() {
		t.Errorf("short-trace inference = %v, want trivial", got)
	}
}

func TestSatisfactionProbabilityMatchesCountAtHalf(t *testing.T) {
	// At p = 0.5 every sequence is equally likely, so the probability is
	// |S^n(c)| / 2^n.
	for _, c := range allConstraints(5) {
		for n := 0; n <= 12; n++ {
			got := SatisfactionProbability(c, 0.5, n)
			cnt, ok := CountSatisfying(c, n)
			if !ok {
				t.Fatal("count overflow")
			}
			want := float64(cnt) / float64(uint64(1)<<uint(n))
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("SatisfactionProbability(%v, 0.5, %d) = %v, want %v", c, n, got, want)
			}
		}
	}
}

func TestSatisfactionProbabilityMonteCarlo(t *testing.T) {
	c := Constraint{6, 10}
	p := 0.84 // Table I's soft example
	n := 50
	exact := SatisfactionProbability(c, p, n)
	rng := newTestRand()
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		q, err := Bernoulli(p, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if q.Satisfies(c) {
			hits++
		}
	}
	mc := float64(hits) / trials
	if diff := exact - mc; diff > 0.02 || diff < -0.02 {
		t.Errorf("exact %v vs Monte Carlo %v diverge", exact, mc)
	}
}

func TestSatisfactionProbabilityEdges(t *testing.T) {
	c := Constraint{2, 3}
	if got := SatisfactionProbability(c, 1, 100); got != 1 {
		t.Errorf("p=1 probability = %v, want 1", got)
	}
	if got := SatisfactionProbability(c, 0, 100); got != 0 {
		t.Errorf("p=0 probability = %v, want 0", got)
	}
	if got := SatisfactionProbability(Constraint{0, 3}, 0.1, 100); got != 1 {
		t.Errorf("trivial constraint probability = %v, want 1", got)
	}
	// Short sequences satisfy vacuously.
	if got := SatisfactionProbability(c, 0.1, 2); got != 1 {
		t.Errorf("vacuous probability = %v, want 1", got)
	}
	// Longer horizons can only lower the probability.
	prev := 1.0
	for _, n := range []int{5, 10, 20, 40, 80} {
		cur := SatisfactionProbability(c, 0.9, n)
		if cur > prev+1e-12 {
			t.Errorf("satisfaction probability rose with horizon at n=%d", n)
		}
		prev = cur
	}
}

func TestDownsampleIdentity(t *testing.T) {
	c := MissConstraint{Misses: 2, Window: 7}
	if Downsample(c, 1) != c {
		t.Error("Downsample by 1 changed the constraint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Downsample by 0 did not panic")
		}
	}()
	Downsample(c, 0)
}
