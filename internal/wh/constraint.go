// Package wh implements the weakly-hard real-time constraint algebra used
// by NETDAG (Wardega & Li, DATE 2020), following the (m, K) model of
// Bernat, Burns and Llamosí ("Weakly hard real-time systems", IEEE ToC
// 2001).
//
// A weakly-hard constraint bounds the non-determinism of a recurring
// event: out of any K consecutive occurrences, at least M must succeed
// (hit-form), or equivalently at most K−M may fail (miss-form). The paper
// uses both polarities; this package makes the polarity explicit and
// converts exactly between the two.
//
// The package provides:
//
//   - Constraint (hit-form) and MissConstraint (miss-form) with exact
//     round-trip conversion.
//   - Satisfaction of constraints by finite binary sequences (Seq).
//   - The Bernat-Burns domination relation (paper eq. 7, PrecedesBB) and
//     an exact implication decision procedure over infinite sequences
//     (Implies), implemented as reachability on a sliding-window
//     automaton.
//   - The ⊕ min-plus abstraction for conjunctions of weakly-hard
//     constraints (paper eq. 8), with exhaustive tools for checking its
//     soundness and tightness on small windows.
//   - Satisfaction-set enumeration and counting (S^κ), and the
//     adversarial-sequence synthesis of paper eq. 12 used for validation
//     and fault injection.
package wh

import (
	"errors"
	"fmt"
)

// Constraint is a hit-form weakly-hard constraint (m, K): every window of
// K consecutive executions must contain at least M successful ones.
//
// Valid constraints have 0 <= M <= K and K >= 1. M = 0 is the trivial
// constraint satisfied by every sequence; M = K demands every execution
// succeed (a hard real-time constraint).
type Constraint struct {
	M int // minimum number of hits per window
	K int // window length
}

// MissConstraint is a miss-form weakly-hard constraint (m̄, K̄): every
// window of Window consecutive executions may contain at most Misses
// failed ones. The paper writes these with an overline.
type MissConstraint struct {
	Misses int // maximum number of misses per window
	Window int // window length
}

// ErrInvalidConstraint is returned (wrapped) by Validate for constraints
// whose parameters are out of range.
var ErrInvalidConstraint = errors.New("wh: invalid weakly-hard constraint")

// Validate reports whether the constraint parameters are in range.
func (c Constraint) Validate() error {
	if c.K < 1 || c.M < 0 || c.M > c.K {
		return fmt.Errorf("%w: (%d, %d) requires 0 <= M <= K and K >= 1", ErrInvalidConstraint, c.M, c.K)
	}
	return nil
}

// Validate reports whether the miss-form parameters are in range.
func (c MissConstraint) Validate() error {
	if c.Window < 1 || c.Misses < 0 || c.Misses > c.Window {
		return fmt.Errorf("%w: miss-form (%d, %d) requires 0 <= Misses <= Window and Window >= 1", ErrInvalidConstraint, c.Misses, c.Window)
	}
	return nil
}

// Miss converts the hit-form constraint to the equivalent miss-form.
func (c Constraint) Miss() MissConstraint {
	return MissConstraint{Misses: c.K - c.M, Window: c.K}
}

// Hit converts the miss-form constraint to the equivalent hit-form.
func (c MissConstraint) Hit() Constraint {
	return Constraint{M: c.Window - c.Misses, K: c.Window}
}

// String renders the constraint in the paper's (m, K) notation.
func (c Constraint) String() string { return fmt.Sprintf("(%d,%d)", c.M, c.K) }

// String renders the miss-form constraint in the paper's overline
// notation, approximated in ASCII as (m,K)~.
func (c MissConstraint) String() string { return fmt.Sprintf("(%d,%d)~", c.Misses, c.Window) }

// Trivial reports whether every sequence satisfies the constraint.
func (c Constraint) Trivial() bool { return c.M <= 0 }

// Hard reports whether the constraint demands that every execution
// succeed (no miss is ever tolerated).
func (c Constraint) Hard() bool { return c.M == c.K }

// Trivial reports whether every sequence satisfies the constraint.
func (c MissConstraint) Trivial() bool { return c.Misses >= c.Window }

// Hard reports whether no miss is ever tolerated.
func (c MissConstraint) Hard() bool { return c.Misses == 0 }

// Equivalent reports whether c and d admit exactly the same infinite
// sequences. Two constraints are equivalent iff each dominates the other
// (they are in the same equality class [(m,K)] induced by the partial
// order ⪯, see the paper's glossary).
func (c Constraint) Equivalent(d Constraint) bool {
	return Implies(c, d) && Implies(d, c)
}

// Normalize returns the canonical representative of the constraint's
// equality class: the constraint with the smallest window K (and then the
// smallest M) that is equivalent to c. For example (2,2) demands an
// all-hit sequence and normalizes to (1,1).
//
// Normalization is computed by exact equivalence checks; its cost grows
// with 2^K, so it is intended for the small windows that occur in LWB
// scheduling (K up to ~20).
func (c Constraint) Normalize() Constraint {
	if err := c.Validate(); err != nil {
		return c
	}
	if c.Trivial() {
		return Constraint{M: 0, K: 1}
	}
	if c.Hard() {
		return Constraint{M: 1, K: 1}
	}
	for k := 1; k < c.K; k++ {
		for m := 1; m <= k; m++ {
			d := Constraint{M: m, K: k}
			if c.Equivalent(d) {
				return d
			}
		}
	}
	return c
}
