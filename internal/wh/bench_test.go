package wh

import "testing"

func BenchmarkSatisfies(b *testing.B) {
	q, _ := Synthesize(MissConstraint{Misses: 3, Window: 10}, 10000)
	c := Constraint{M: 7, K: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.Satisfies(c) {
			b.Fatal("unexpected violation")
		}
	}
}

func BenchmarkOplusFold(b *testing.B) {
	cons := make([]MissConstraint, 12)
	for i := range cons {
		cons[i] = MissConstraint{Misses: 2 + i%3, Window: 20 * (1 + i%4)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = OplusAll(cons...)
	}
}

func BenchmarkPrecedesBB(b *testing.B) {
	x := Constraint{M: 35, K: 40}
	y := Constraint{M: 12, K: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrecedesBB(x, y)
	}
}

func BenchmarkImpliesExact(b *testing.B) {
	x := Constraint{M: 7, K: 10}
	y := Constraint{M: 5, K: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Implies(x, y)
	}
}

func BenchmarkCountSatisfying(b *testing.B) {
	c := Constraint{M: 6, K: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := CountSatisfying(c, 64); !ok {
			b.Fatal("overflow")
		}
	}
}

func BenchmarkMaxConjMisses(b *testing.B) {
	x := MissConstraint{Misses: 2, Window: 8}
	y := MissConstraint{Misses: 3, Window: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxConjMisses(x, y, 8)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	c := MissConstraint{Misses: 3, Window: 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(c, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
