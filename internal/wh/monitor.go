package wh

import "fmt"

// Monitor is an online checker for one weakly-hard constraint: push
// hit/miss outcomes as they happen and learn immediately when a window
// violates the constraint. Weakly-hard runtime monitoring is the
// deployment-side complement of NETDAG's design-time guarantees (cf. the
// runtime verification line of work the paper cites via [10]).
//
// The monitor keeps a ring buffer of the last K outcomes and a running
// hit count, so Push is O(1).
type Monitor struct {
	c     Constraint
	ring  []bool
	next  int
	count int // outcomes seen, saturating at len(ring)
	hits  int // hits among the buffered outcomes
	total int // outcomes pushed overall
	viols int // completed windows that violated the constraint
}

// NewMonitor builds a monitor for the hit-form constraint c.
func NewMonitor(c Constraint) (*Monitor, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{c: c, ring: make([]bool, c.K)}, nil
}

// NewMissMonitor builds a monitor for a miss-form constraint.
func NewMissMonitor(c MissConstraint) (*Monitor, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return NewMonitor(c.Hit())
}

// Push records the next outcome (true = hit) and reports whether the
// window ending at this outcome satisfies the constraint. Windows are
// only judged once full (the finite-trace vacuity convention of Seq).
func (m *Monitor) Push(hit bool) bool {
	if m.count == len(m.ring) {
		// Evict the oldest outcome.
		if m.ring[m.next] {
			m.hits--
		}
	} else {
		m.count++
	}
	m.ring[m.next] = hit
	if hit {
		m.hits++
	}
	m.next = (m.next + 1) % len(m.ring)
	m.total++
	ok := m.count < m.c.K || m.hits >= m.c.M
	if !ok {
		m.viols++
	}
	return ok
}

// PushSeq pushes a whole sequence and returns the number of violating
// windows it completed.
func (m *Monitor) PushSeq(q Seq) int {
	before := m.viols
	for _, hit := range q {
		m.Push(hit)
	}
	return m.viols - before
}

// OK reports whether no completed window has violated the constraint so
// far.
func (m *Monitor) OK() bool { return m.viols == 0 }

// Violations returns the number of completed windows that violated the
// constraint.
func (m *Monitor) Violations() int { return m.viols }

// Total returns the number of outcomes pushed.
func (m *Monitor) Total() int { return m.total }

// HeadroomHits returns how many of the next outcomes may miss before the
// current window (once full) violates the constraint — the "slack" a
// runtime adaptation layer can spend. For a not-yet-full window it
// reports the slack as if the missing history were hits.
func (m *Monitor) HeadroomHits() int {
	effHits := m.hits + (m.c.K - m.count)
	h := effHits - m.c.M
	if h < 0 {
		return 0
	}
	return h
}

// Reset clears the monitor's history.
func (m *Monitor) Reset() {
	for i := range m.ring {
		m.ring[i] = false
	}
	m.next, m.count, m.hits, m.total, m.viols = 0, 0, 0, 0, 0
}

// String summarizes the monitor state.
func (m *Monitor) String() string {
	return fmt.Sprintf("monitor %v: %d pushed, %d violations", m.c, m.total, m.viols)
}
