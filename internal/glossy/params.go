// Package glossy models the Glossy flooding protocol (Ferrari et al.,
// IPSN 2011) as used by the Low-Power Wireless Bus: the timing estimate
// that reconciles event-triggered floods with the time-triggered bus
// (paper eq. 3), an event-triggered flood simulator over lossy
// topologies, and the "network statistics" λ that summarize flood
// reliability as a function of the retransmission parameter N_TX — a
// success probability for the soft real-time paradigm and a weakly-hard
// miss constraint for the weakly-hard paradigm.
package glossy

import (
	"errors"
	"fmt"
)

// Params are the hardware profiling constants a, b, c, d of paper
// eq. (3). The duration of the Glossy flood carrying a w-byte payload
// with retransmission parameter χ on a network of diameter D is
//
//	a + (2χ + b)(c + d·w)    with    b = D − 1 + BHW,
//
// i.e. the flood lasts for 2χ + D − 1 + BHW hop slots (the lower bound on
// the maximum relay counter: D hops to cross the network plus 2χ
// alternating RX/TX phases, §II-A) and each hop slot costs a fixed
// per-transmission overhead c plus d per payload byte; a is the per-slot
// scheduling/wake-up overhead paid once.
//
// All times are in microseconds. The defaults are calibrated to
// CC2420-class radios at 250 kbit/s (32 µs/byte) with software-profiled
// overheads in the range the Glossy paper reports; the paper itself
// treats these as opaque profiling outputs, so only the linear shape
// matters for the experiments.
type Params struct {
	A   int64 // per-flood fixed overhead (radio wake-up, sync guard)
	BHW int64 // hardware slack added to the relay-counter bound
	C   int64 // per-hop-slot fixed cost (header, turnaround, software gap)
	D   int64 // per-byte on-air cost

	BeaconWidth int // γ: width in bytes of a round beacon payload
}

// DefaultParams returns the CC2420-class calibration used throughout the
// experiments.
func DefaultParams() Params {
	return Params{A: 300, BHW: 1, C: 400, D: 32, BeaconWidth: 16}
}

// Validate reports whether the constants are usable.
func (p Params) Validate() error {
	if p.A < 0 || p.BHW < 0 || p.C <= 0 || p.D < 0 || p.BeaconWidth <= 0 {
		return fmt.Errorf("glossy: invalid params %+v", p)
	}
	return nil
}

// HopSlots returns the relay-counter bound 2χ + D(N) − 1 + BHW: the
// number of hop slots the time-triggered schedule reserves for a flood.
func (p Params) HopSlots(ntx, diameter int) int64 {
	if ntx < 1 {
		panic(fmt.Sprintf("glossy: N_TX must be >= 1, got %d", ntx))
	}
	if diameter < 1 {
		panic(fmt.Sprintf("glossy: diameter must be >= 1, got %d", diameter))
	}
	return 2*int64(ntx) + int64(diameter) - 1 + p.BHW
}

// SlotDuration returns the reserved duration in microseconds of a
// contention-free slot flooding a width-byte message (paper eq. 3, the
// per-message term).
func (p Params) SlotDuration(ntx, width, diameter int) int64 {
	if width < 0 {
		panic(fmt.Sprintf("glossy: negative message width %d", width))
	}
	return p.A + p.HopSlots(ntx, diameter)*(p.C+p.D*int64(width))
}

// BeaconDuration returns the reserved duration of a round beacon (paper
// eq. 3, the δ_r term) with retransmission parameter ntx.
func (p Params) BeaconDuration(ntx, diameter int) int64 {
	return p.SlotDuration(ntx, p.BeaconWidth, diameter)
}

// ErrBadNTX is returned when a retransmission parameter is out of range.
var ErrBadNTX = errors.New("glossy: N_TX out of range")
