package glossy

import (
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/network"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(0x61055)) }

func TestSimulateFloodPerfectClique(t *testing.T) {
	topo := network.Clique(5, 1)
	res, err := SimulateFlood(topo, 0, 1, -1, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if !res.All {
		t.Fatalf("perfect clique flood failed: %+v", res)
	}
	for v, r := range res.Received {
		if !r {
			t.Errorf("node %d did not receive", v)
		}
	}
	// Everyone transmits exactly once with N_TX = 1.
	for v, c := range res.TXCounts {
		if c != 1 {
			t.Errorf("node %d transmitted %d times, want 1", v, c)
		}
	}
}

func TestSimulateFloodPerfectLine(t *testing.T) {
	const n = 6
	topo := network.Line(n, 1)
	res, err := SimulateFlood(topo, 0, 1, -1, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if !res.All {
		t.Fatalf("perfect line flood failed: %+v", res)
	}
	// The payload needs at least diameter hop slots to cross.
	if res.HopSlots < n-1 {
		t.Errorf("flood crossed a %d-hop line in %d slots", n-1, res.HopSlots)
	}
}

func TestSimulateFloodRespectsReservation(t *testing.T) {
	// With the reservation from eq. (3) and perfect links, the flood
	// always completes within the reserved hop slots.
	p := DefaultParams()
	topo := network.Line(5, 1)
	diam, _ := topo.Diameter()
	for ntx := 1; ntx <= 3; ntx++ {
		maxSlots := int(p.HopSlots(ntx, diam))
		res, err := SimulateFlood(topo, 0, ntx, maxSlots, testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if !res.All {
			t.Errorf("perfect-link flood with ntx=%d missed nodes within its reservation", ntx)
		}
		if res.HopSlots > maxSlots {
			t.Errorf("flood used %d slots, reservation %d", res.HopSlots, maxSlots)
		}
	}
}

func TestActiveSlotsAccounting(t *testing.T) {
	topo := network.Clique(5, 1)
	res, err := SimulateFlood(topo, 0, 1, 10, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for v, a := range res.ActiveSlots {
		if a > res.HopSlots {
			t.Errorf("node %d active %d slots, flood lasted %d", v, a, res.HopSlots)
		}
		if a <= 0 {
			t.Errorf("node %d never active", v)
		}
	}
	// The initiator spends its single transmission in slot 0 and turns
	// off, while receivers stay on through slot 1.
	if res.ActiveSlots[0] != 1 {
		t.Errorf("initiator active %d slots, want 1 (radio off after N_TX)", res.ActiveSlots[0])
	}
	if dc := res.MeanDutyCycle(10); dc <= 0 || dc > 1 {
		t.Errorf("duty cycle %v outside (0,1]", dc)
	}
	if got := (FloodResult{}).MeanDutyCycle(0); got != 0 {
		t.Errorf("degenerate duty cycle = %v", got)
	}
}

func TestFloodCharge(t *testing.T) {
	topo := network.Clique(4, 1)
	p := DefaultParams()
	res, err := SimulateFlood(topo, 0, 2, 10, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	charges := FloodCharge(res, p, 8, 17.4, 18.8)
	if len(charges) != 4 {
		t.Fatalf("charges for %d nodes", len(charges))
	}
	for v, c := range charges {
		if c <= 0 {
			t.Errorf("node %d charge %v", v, c)
		}
		// Upper bound: all active slots at the dearer current.
		maxC := float64(res.ActiveSlots[v]) * 18.8 * float64(p.C+p.D*8) / 1000
		if c > maxC+1e-9 {
			t.Errorf("node %d charge %v exceeds bound %v", v, c, maxC)
		}
	}
	// A node that turned off early pays less than one that stayed on.
	resBig, err := SimulateFlood(network.Line(5, 1), 0, 1, 20, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	ch := FloodCharge(resBig, p, 8, 17.4, 18.8)
	// Node 0 transmits once then sleeps; node 4 (far end) listens the
	// whole flood before receiving.
	if ch[0] >= ch[4] {
		t.Errorf("early-off node pays %v, long listener %v", ch[0], ch[4])
	}
}

func TestSimulateFloodNTXBudget(t *testing.T) {
	topo := network.Clique(4, 1)
	res, err := SimulateFlood(topo, 0, 3, -1, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.TXCounts {
		if c > 3 {
			t.Errorf("node %d transmitted %d > N_TX = 3 times", v, c)
		}
	}
}

func TestSimulateFloodValidation(t *testing.T) {
	topo := network.Clique(3, 1)
	if _, err := SimulateFlood(topo, 0, 1, -1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := SimulateFlood(topo, -1, 1, -1, testRNG()); err == nil {
		t.Error("negative initiator accepted")
	}
	if _, err := SimulateFlood(topo, 3, 1, -1, testRNG()); err == nil {
		t.Error("out-of-range initiator accepted")
	}
	if _, err := SimulateFlood(topo, 0, 0, -1, testRNG()); err == nil {
		t.Error("N_TX = 0 accepted")
	}
}

func TestSimulateFloodDeterministicUnderSeed(t *testing.T) {
	topo := network.Grid(3, 3, 0.7)
	a, err := SimulateFlood(topo, 0, 2, 10, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateFlood(topo, 0, 2, 10, rand.New(rand.NewSource(42)))
	for v := range a.Received {
		if a.Received[v] != b.Received[v] {
			t.Fatalf("flood not deterministic under fixed seed at node %d", v)
		}
	}
}

func TestSimulateFloodLossyCanFail(t *testing.T) {
	// Very lossy single link with one transmission: failures must occur.
	topo := network.Line(2, 0.05)
	rng := testRNG()
	failures := 0
	for i := 0; i < 200; i++ {
		res, err := SimulateFlood(topo, 0, 1, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.All {
			failures++
		}
	}
	if failures == 0 {
		t.Error("5% links never failed in 200 floods")
	}
}

func TestFloodSuccessRateIncreasesWithNTX(t *testing.T) {
	topo := network.Line(4, 0.6)
	p := DefaultParams()
	rng := testRNG()
	r1, err := FloodSuccessRate(topo, 0, 1, 3000, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := FloodSuccessRate(topo, 0, 4, 3000, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r4 <= r1 {
		t.Errorf("success rate did not improve with N_TX: λ(1)=%v, λ(4)=%v", r1, r4)
	}
	if r4 < 0.8 {
		t.Errorf("λ(4) = %v suspiciously low for 60%% links", r4)
	}
}

func TestFloodSuccessRateValidation(t *testing.T) {
	topo := network.Line(3, 0.9)
	p := DefaultParams()
	if _, err := FloodSuccessRate(topo, 0, 1, 0, p, testRNG()); err == nil {
		t.Error("zero trials accepted")
	}
	disc := network.NewTopology(3)
	if _, err := FloodSuccessRate(disc, 0, 1, 10, p, testRNG()); err == nil {
		t.Error("disconnected topology accepted")
	}
}
