package glossy

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/network"
)

// FloodResult reports one simulated Glossy flood.
type FloodResult struct {
	Received []bool // per node: did it receive the payload
	TXCounts []int  // per node: how many times it transmitted
	// ActiveSlots counts, per node, the hop slots its radio stayed on:
	// §II-A, a node turns its radio off once it has transmitted N_TX
	// times (or when the reservation ends). The flood-level energy
	// accounting uses this.
	ActiveSlots []int
	HopSlots    int  // hop slots elapsed until the flood went quiet
	All         bool // every node received
}

// MeanDutyCycle returns the average over nodes of ActiveSlots divided by
// the reservation length; it is 0 for an empty reservation.
func (r FloodResult) MeanDutyCycle(reservedSlots int) float64 {
	if reservedSlots <= 0 || len(r.ActiveSlots) == 0 {
		return 0
	}
	sum := 0
	for _, a := range r.ActiveSlots {
		sum += a
	}
	return float64(sum) / float64(len(r.ActiveSlots)) / float64(reservedSlots)
}

// SimulateFlood runs one event-triggered Glossy flood over a lossy
// topology, following §II-A of the paper:
//
//   - In hop slot 0 the initiator transmits; everyone else listens.
//   - A node that received the payload for the first time in slot t
//     transmits in slot t+1, then alternates RX/TX until it has
//     transmitted ntx times (the N_TX parameter) — Glossy's relay rule.
//   - A listening node hears the payload if at least one neighbor is
//     transmitting; concurrent transmissions are constructively
//     interfering identical packets, so reception succeeds with
//     probability 1 − Π(1 − PRR_i) over transmitting neighbors i.
//   - The flood ends when nobody transmits or after maxSlots.
//
// maxSlots is the schedule's reservation (Params.HopSlots); pass a
// negative value for "until quiet".
func SimulateFlood(topo *network.Topology, initiator, ntx, maxSlots int, rng *rand.Rand) (FloodResult, error) {
	if rng == nil {
		return FloodResult{}, errors.New("glossy: SimulateFlood requires a non-nil rng")
	}
	n := topo.NumNodes()
	if initiator < 0 || initiator >= n {
		return FloodResult{}, fmt.Errorf("glossy: initiator %d out of range [0,%d)", initiator, n)
	}
	if ntx < 1 {
		return FloodResult{}, fmt.Errorf("%w: %d", ErrBadNTX, ntx)
	}
	res := FloodResult{
		Received:    make([]bool, n),
		TXCounts:    make([]int, n),
		ActiveSlots: make([]int, n),
	}
	off := make([]bool, n)
	res.Received[initiator] = true
	// willTX[v] = true when v transmits in the current hop slot.
	willTX := make([]bool, n)
	willTX[initiator] = true
	res.TXCounts[initiator] = 0 // counted when the slot executes
	for slot := 0; ; slot++ {
		if maxSlots >= 0 && slot >= maxSlots {
			break
		}
		anyTX := false
		for v := 0; v < n; v++ {
			if willTX[v] {
				anyTX = true
			}
		}
		if !anyTX {
			res.HopSlots = slot
			break
		}
		res.HopSlots = slot + 1
		// Every node with its radio still on spends this slot active.
		for v := 0; v < n; v++ {
			if !off[v] {
				res.ActiveSlots[v]++
			}
		}
		// Resolve receptions for this slot.
		newlyReceived := make([]bool, n)
		for v := 0; v < n; v++ {
			if res.Received[v] || willTX[v] || off[v] {
				continue
			}
			pLoss := 1.0
			for _, u := range topo.Neighbors(v) {
				if willTX[u] {
					pLoss *= 1 - topo.PRR(u, v)
				}
			}
			if pLoss < 1 && rng.Float64() < 1-pLoss {
				newlyReceived[v] = true
			}
		}
		// Account transmissions and compute next slot's transmitter set:
		// Glossy alternates TX (on reception or after own TX) with RX;
		// here we use the standard simplification that a node transmits
		// in consecutive eligible slots until its N_TX budget is spent,
		// which preserves the relay-counter bound of eq. (3).
		nextTX := make([]bool, n)
		for v := 0; v < n; v++ {
			if willTX[v] {
				res.TXCounts[v]++
				if res.TXCounts[v] < ntx {
					nextTX[v] = true
				} else {
					off[v] = true // N_TX budget spent: radio off (§II-A)
				}
			}
		}
		for v := 0; v < n; v++ {
			if newlyReceived[v] {
				res.Received[v] = true
				if res.TXCounts[v] < ntx {
					nextTX[v] = true
				}
			}
		}
		willTX = nextTX
	}
	res.All = true
	for _, r := range res.Received {
		if !r {
			res.All = false
			break
		}
	}
	return res, nil
}

// FloodCharge returns the per-node radio charge (µC) of one simulated
// flood, splitting each node's active slots into its transmissions (at
// txCurrentMA) and listening time (rxCurrentMA). The hop-slot airtime is
// the eq. (3) per-hop term for the given payload width.
func FloodCharge(res FloodResult, p Params, width int, txCurrentMA, rxCurrentMA float64) []float64 {
	hopUS := float64(p.C + p.D*int64(width))
	out := make([]float64, len(res.ActiveSlots))
	for v := range out {
		tx := float64(res.TXCounts[v])
		rx := float64(res.ActiveSlots[v]) - tx
		if rx < 0 {
			rx = 0
		}
		out[v] = (tx*txCurrentMA + rx*rxCurrentMA) * hopUS / 1000
	}
	return out
}

// FloodSuccessRate estimates the probability that a flood from initiator
// reaches every node, over the given number of independent trials. It is
// the empirical counterpart of the soft network statistic λ_s(N_TX).
func FloodSuccessRate(topo *network.Topology, initiator, ntx, trials int, p Params, rng *rand.Rand) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("glossy: trials must be positive, got %d", trials)
	}
	diam, err := topo.Diameter()
	if err != nil {
		return 0, err
	}
	maxSlots := int(p.HopSlots(ntx, diam))
	ok := 0
	for i := 0; i < trials; i++ {
		res, err := SimulateFlood(topo, initiator, ntx, maxSlots, rng)
		if err != nil {
			return 0, err
		}
		if res.All {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}
