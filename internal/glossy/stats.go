package glossy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/wh"
)

// SoftStatistic is the soft network statistic λ_s of §III-B: a
// monotonically increasing map from the retransmission parameter N_TX to
// the success probability of a Glossy flood. The paper assumes the
// designer knows it a priori (from profiling); this package provides
// analytic families and a profiling-by-simulation constructor.
type SoftStatistic interface {
	// SuccessProb returns the flood success probability under N_TX = n.
	// n must be >= 1.
	SuccessProb(n int) float64
}

// WHStatistic is the weakly-hard network statistic λ_WH of §III-C: a map
// from N_TX to a miss-form weakly-hard constraint bounding flood
// failures, monotonically increasing w.r.t. the domination order ⪯
// (larger N_TX gives a harder guarantee).
type WHStatistic interface {
	// MissConstraint returns the bounded failure behaviour under
	// N_TX = n. n must be >= 1.
	MissConstraint(n int) wh.MissConstraint
}

// BernoulliSoft is the independent-transmissions model justified by
// Zimmerling et al. (MASCOTS 2013): with per-transmission success
// probability p, a flood with N_TX = n fails only if all n chances fail,
// so λ(n) = 1 − (1−p)^n.
type BernoulliSoft struct {
	PerTX float64 // per-transmission success probability in (0, 1)
}

// SuccessProb implements SoftStatistic.
func (b BernoulliSoft) SuccessProb(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("glossy: N_TX must be >= 1, got %d", n))
	}
	return 1 - math.Pow(1-b.PerTX, float64(n))
}

// SigmoidSoft is the paper's eq. (15) soft statistic parameterized by the
// profiled worst-case mean filtered signal strength:
//
//	λ_i(n) = 2 / (1 + e^(−fSS̄_i · n)) − 1
//
// with co-domain [0, 1), monotonically increasing in n for positive fSS̄.
type SigmoidSoft struct {
	FSS float64 // worst-case mean filtered signal strength fSS̄_i
}

// SuccessProb implements SoftStatistic.
func (s SigmoidSoft) SuccessProb(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("glossy: N_TX must be >= 1, got %d", n))
	}
	return 2/(1+math.Exp(-s.FSS*float64(n))) - 1
}

// TableSoft is a profiled statistic: success probabilities per N_TX
// value, clamped monotone (profiling noise must not produce a
// non-monotone statistic, which would break the scheduler's pruning).
// Queries beyond the table reuse the last entry.
type TableSoft struct {
	probs []float64 // probs[i] is λ(i+1)
}

// NewTableSoft builds a table statistic, enforcing monotonicity with a
// conservative suffix-minimum envelope: λ(n) = min over k >= n of the
// profiled entry for k. The envelope never exceeds the measured
// probability at any n — a running maximum would promise success rates
// profiling never observed, which is unsound for a scheduler that treats
// the statistic as a guarantee. The table must be non-empty with entries
// in [0, 1].
func NewTableSoft(probs []float64) (TableSoft, error) {
	if len(probs) == 0 {
		return TableSoft{}, errors.New("glossy: empty soft statistic table")
	}
	out := make([]float64, len(probs))
	for i := len(probs) - 1; i >= 0; i-- {
		p := probs[i]
		if p < 0 || p > 1 {
			return TableSoft{}, fmt.Errorf("glossy: probability %v outside [0,1]", p)
		}
		out[i] = p
		if i+1 < len(probs) && out[i+1] < p {
			out[i] = out[i+1]
		}
	}
	return TableSoft{probs: out}, nil
}

// SuccessProb implements SoftStatistic.
func (t TableSoft) SuccessProb(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("glossy: N_TX must be >= 1, got %d", n))
	}
	if n > len(t.probs) {
		n = len(t.probs)
	}
	return t.probs[n-1]
}

// ProfileSoft estimates a TableSoft statistic by simulating floods from
// the given initiator for every N_TX in 1..maxNTX — the in-simulation
// stand-in for the testbed profiling the paper assumes.
func ProfileSoft(topo *network.Topology, initiator, maxNTX, trials int, p Params, rng *rand.Rand) (TableSoft, error) {
	if maxNTX < 1 {
		return TableSoft{}, fmt.Errorf("%w: maxNTX %d", ErrBadNTX, maxNTX)
	}
	probs := make([]float64, maxNTX)
	for n := 1; n <= maxNTX; n++ {
		rate, err := FloodSuccessRate(topo, initiator, n, trials, p, rng)
		if err != nil {
			return TableSoft{}, err
		}
		probs[n-1] = rate
	}
	return NewTableSoft(probs)
}

// SyntheticWH is the paper's eq. (13) synthetic weakly-hard statistic:
//
//	λ(n) = ( ⌈10·e^(−n/2)⌉ + 1 , 20·n )~
//
// read in miss-form: at most ⌈10e^(−n/2)⌉+1 flood failures in any window
// of 20n consecutive rounds. It satisfies the required monotonicity
// (n < k ⇒ λ(k) ⪯ λ(n)): misses shrink and the window grows with n.
type SyntheticWH struct{}

// MissConstraint implements WHStatistic.
func (SyntheticWH) MissConstraint(n int) wh.MissConstraint {
	if n < 1 {
		panic(fmt.Sprintf("glossy: N_TX must be >= 1, got %d", n))
	}
	m := int(math.Ceil(10*math.Exp(-0.5*float64(n)))) + 1
	return wh.MissConstraint{Misses: m, Window: 20 * n}
}

// TableWH is a profiled weakly-hard statistic with one miss-form
// constraint per N_TX value; queries beyond the table reuse the last
// entry. Construction enforces ⪯-monotonicity.
type TableWH struct {
	cons []wh.MissConstraint // cons[i] is λ(i+1)
}

// NewTableWH builds a table statistic. Each constraint must be valid and
// each successive entry must dominate (be at least as hard as) its
// predecessor under the sufficient order: misses non-increasing and
// window non-decreasing, the shape profiling naturally produces. Entries
// violating monotonicity are repaired by *weakening* the earlier entries
// (raising their miss allowance, shrinking their window) — never by
// strengthening a later entry beyond what its profiling data supports,
// which would let the scheduler promise guarantees nothing measured.
func NewTableWH(cons []wh.MissConstraint) (TableWH, error) {
	if len(cons) == 0 {
		return TableWH{}, errors.New("glossy: empty weakly-hard statistic table")
	}
	out := make([]wh.MissConstraint, len(cons))
	for i, c := range cons {
		if err := c.Validate(); err != nil {
			return TableWH{}, err
		}
		out[i] = c
	}
	for i := len(out) - 2; i >= 0; i-- {
		if out[i].Misses < out[i+1].Misses {
			out[i].Misses = out[i+1].Misses
		}
		if out[i].Window > out[i+1].Window {
			out[i].Window = out[i+1].Window
		}
		// The weakened pair can leave misses above the window; cap it at
		// the (vacuous) trivial constraint for that window.
		if out[i].Misses > out[i].Window {
			out[i].Misses = out[i].Window
		}
	}
	return TableWH{cons: out}, nil
}

// MissConstraint implements WHStatistic.
func (t TableWH) MissConstraint(n int) wh.MissConstraint {
	if n < 1 {
		panic(fmt.Sprintf("glossy: N_TX must be >= 1, got %d", n))
	}
	if n > len(t.cons) {
		n = len(t.cons)
	}
	return t.cons[n-1]
}

// GilbertElliott is a two-state burst-loss channel applied at flood
// granularity: in the good state a transmission succeeds with PerTXGood,
// in the bad state with PerTXBad; the state evolves per round. It
// produces the correlated loss patterns that motivate weakly-hard (rather
// than i.i.d. probabilistic) modeling.
type GilbertElliott struct {
	PGB       float64 // P(good -> bad) per round
	PBG       float64 // P(bad -> good) per round
	PerTXGood float64
	PerTXBad  float64
}

// Validate checks parameter ranges.
func (g GilbertElliott) Validate() error {
	for _, p := range []float64{g.PGB, g.PBG, g.PerTXGood, g.PerTXBad} {
		if p < 0 || p > 1 {
			return fmt.Errorf("glossy: Gilbert-Elliott parameter %v outside [0,1]", p)
		}
	}
	return nil
}

// Trace simulates `length` consecutive rounds of floods with N_TX = ntx
// and returns the hit/miss sequence of flood outcomes (hit = flood
// delivered everywhere, modeled as all-transmissions-fail otherwise,
// following the Bernoulli flood abstraction per state).
func (g GilbertElliott) Trace(ntx, length int, rng *rand.Rand) (wh.Seq, error) {
	if rng == nil {
		return nil, errors.New("glossy: Trace requires a non-nil rng")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if ntx < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadNTX, ntx)
	}
	out := make(wh.Seq, length)
	bad := false
	for i := range out {
		perTX := g.PerTXGood
		if bad {
			perTX = g.PerTXBad
		}
		succ := 1 - math.Pow(1-perTX, float64(ntx))
		out[i] = rng.Float64() < succ
		if bad {
			if rng.Float64() < g.PBG {
				bad = false
			}
		} else if rng.Float64() < g.PGB {
			bad = true
		}
	}
	return out, nil
}

// ProfileWH estimates a TableWH statistic from Gilbert-Elliott traces:
// for each N_TX it simulates a long outcome trace and records the
// worst-case miss count over sliding windows of the given length, plus a
// one-miss safety margin (profiling observes a sample, not the true
// worst case).
func ProfileWH(ch GilbertElliott, maxNTX, traceLen, window int, rng *rand.Rand) (TableWH, error) {
	if maxNTX < 1 {
		return TableWH{}, fmt.Errorf("%w: maxNTX %d", ErrBadNTX, maxNTX)
	}
	if window < 1 || traceLen < window {
		return TableWH{}, fmt.Errorf("glossy: need traceLen >= window >= 1, got %d, %d", traceLen, window)
	}
	cons := make([]wh.MissConstraint, maxNTX)
	for n := 1; n <= maxNTX; n++ {
		trace, err := ch.Trace(n, traceLen, rng)
		if err != nil {
			return TableWH{}, err
		}
		worst, _ := trace.MaxWindowMisses(window)
		m := worst + 1 // safety margin
		if m > window {
			m = window
		}
		cons[n-1] = wh.MissConstraint{Misses: m, Window: window}
	}
	return NewTableWH(cons)
}

// CheckSoftMonotone verifies λ(n) is non-decreasing on 1..maxN — the
// property §III-B requires of any soft statistic.
func CheckSoftMonotone(s SoftStatistic, maxN int) error {
	prev := -1.0
	for n := 1; n <= maxN; n++ {
		p := s.SuccessProb(n)
		if p < 0 || p > 1 {
			return fmt.Errorf("glossy: λ(%d) = %v outside [0,1]", n, p)
		}
		if p < prev {
			return fmt.Errorf("glossy: soft statistic not monotone at n=%d (%v < %v)", n, p, prev)
		}
		prev = p
	}
	return nil
}

// CheckWHMonotone verifies n < k ⇒ λ(k) ⪯ λ(n) on 1..maxN using the
// exact Bernat-Burns order — the property §III-C requires of any
// weakly-hard statistic (and which eq. 13 is stated to satisfy).
func CheckWHMonotone(s WHStatistic, maxN int) error {
	for n := 1; n < maxN; n++ {
		a := s.MissConstraint(n)
		b := s.MissConstraint(n + 1)
		if err := a.Validate(); err != nil {
			return err
		}
		if err := b.Validate(); err != nil {
			return err
		}
		if !wh.PrecedesBBMiss(b, a) {
			return fmt.Errorf("glossy: weakly-hard statistic not monotone: λ(%d)=%v does not dominate λ(%d)=%v",
				n+1, b, n, a)
		}
	}
	return nil
}
