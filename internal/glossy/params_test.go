package glossy

import "testing"

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{A: -1, BHW: 1, C: 400, D: 32, BeaconWidth: 16},
		{A: 300, BHW: -1, C: 400, D: 32, BeaconWidth: 16},
		{A: 300, BHW: 1, C: 0, D: 32, BeaconWidth: 16},
		{A: 300, BHW: 1, C: 400, D: -5, BeaconWidth: 16},
		{A: 300, BHW: 1, C: 400, D: 32, BeaconWidth: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestHopSlots(t *testing.T) {
	p := Params{A: 0, BHW: 1, C: 1, D: 0, BeaconWidth: 1}
	// 2χ + D − 1 + BHW.
	if got := p.HopSlots(2, 3); got != 7 {
		t.Errorf("HopSlots(2,3) = %d, want 7", got)
	}
	if got := p.HopSlots(1, 1); got != 3 {
		t.Errorf("HopSlots(1,1) = %d, want 3", got)
	}
}

func TestSlotDurationFormula(t *testing.T) {
	p := Params{A: 300, BHW: 1, C: 400, D: 32, BeaconWidth: 16}
	// χ=2, D=3, w=16: 300 + (4+3-1+1)(400+512) = 300 + 7*912 = 6684.
	if got := p.SlotDuration(2, 16, 3); got != 6684 {
		t.Errorf("SlotDuration = %d, want 6684", got)
	}
	// Beacon duration uses BeaconWidth.
	if got := p.BeaconDuration(2, 3); got != 6684 {
		t.Errorf("BeaconDuration = %d, want 6684", got)
	}
}

func TestSlotDurationMonotone(t *testing.T) {
	p := DefaultParams()
	// Increasing χ, width, or diameter must increase the reservation.
	base := p.SlotDuration(2, 16, 3)
	if p.SlotDuration(3, 16, 3) <= base {
		t.Error("duration not increasing in N_TX")
	}
	if p.SlotDuration(2, 17, 3) <= base {
		t.Error("duration not increasing in width")
	}
	if p.SlotDuration(2, 16, 4) <= base {
		t.Error("duration not increasing in diameter")
	}
}

func TestSlotDurationPanics(t *testing.T) {
	p := DefaultParams()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ntx=0", func() { p.SlotDuration(0, 8, 2) })
	mustPanic("diam=0", func() { p.SlotDuration(1, 8, 0) })
	mustPanic("width<0", func() { p.SlotDuration(1, -1, 2) })
}
