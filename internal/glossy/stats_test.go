package glossy

import (
	"math"
	"testing"

	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/wh"
)

func TestBernoulliSoft(t *testing.T) {
	b := BernoulliSoft{PerTX: 0.9}
	if got := b.SuccessProb(1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("λ(1) = %v, want 0.9", got)
	}
	if got := b.SuccessProb(2); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("λ(2) = %v, want 0.99", got)
	}
	if err := CheckSoftMonotone(b, 10); err != nil {
		t.Errorf("BernoulliSoft not monotone: %v", err)
	}
}

func TestSigmoidSoftEq15(t *testing.T) {
	s := SigmoidSoft{FSS: 1.2}
	// λ(n) = 2/(1+e^(−fSS·n)) − 1.
	for n := 1; n <= 5; n++ {
		want := 2/(1+math.Exp(-1.2*float64(n))) - 1
		if got := s.SuccessProb(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("λ(%d) = %v, want %v", n, got, want)
		}
	}
	if err := CheckSoftMonotone(s, 12); err != nil {
		t.Errorf("SigmoidSoft not monotone: %v", err)
	}
	// Higher signal strength gives a uniformly better statistic — the
	// premise of the fig. 4 power exploration.
	weak, strong := SigmoidSoft{FSS: 0.5}, SigmoidSoft{FSS: 1.5}
	for n := 1; n <= 8; n++ {
		if strong.SuccessProb(n) <= weak.SuccessProb(n) {
			t.Errorf("stronger signal not better at n=%d", n)
		}
	}
}

func TestTableSoft(t *testing.T) {
	// Profiling noise (dip at n=3) must be monotonized conservatively:
	// the dip pulls earlier entries DOWN (suffix-min); it must never be
	// papered over by raising λ(3) above what was measured.
	meas := []float64{0.5, 0.8, 0.75, 0.9}
	tab, err := NewTableSoft(meas)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.SuccessProb(2); got != 0.75 {
		t.Errorf("monotonized λ(2) = %v, want 0.75 (pulled down by the dip)", got)
	}
	if got := tab.SuccessProb(3); got != 0.75 {
		t.Errorf("monotonized λ(3) = %v, want the measured 0.75", got)
	}
	// Soundness: the table never promises more than the measurement.
	for n := 1; n <= len(meas); n++ {
		if got := tab.SuccessProb(n); got > meas[n-1] {
			t.Errorf("λ(%d) = %v exceeds measured %v", n, got, meas[n-1])
		}
	}
	if got := tab.SuccessProb(99); got != 0.9 {
		t.Errorf("beyond-table query = %v, want last entry 0.9", got)
	}
	if err := CheckSoftMonotone(tab, 20); err != nil {
		t.Errorf("TableSoft not monotone: %v", err)
	}
	if _, err := NewTableSoft(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewTableSoft([]float64{1.5}); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestProfileSoft(t *testing.T) {
	topo := network.Line(4, 0.7)
	tab, err := ProfileSoft(topo, 0, 5, 400, DefaultParams(), testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSoftMonotone(tab, 5); err != nil {
		t.Errorf("profiled statistic not monotone: %v", err)
	}
	if tab.SuccessProb(5) <= tab.SuccessProb(1) {
		t.Errorf("profiled statistic flat: λ(1)=%v λ(5)=%v",
			tab.SuccessProb(1), tab.SuccessProb(5))
	}
}

func TestSyntheticWHEq13Values(t *testing.T) {
	s := SyntheticWH{}
	want := []wh.MissConstraint{
		{Misses: 8, Window: 20},  // ⌈10e^-0.5⌉+1 = 7+1
		{Misses: 5, Window: 40},  // ⌈10e^-1⌉+1 = 4+1
		{Misses: 4, Window: 60},  // ⌈10e^-1.5⌉+1 = 3+1
		{Misses: 3, Window: 80},  // ⌈10e^-2⌉+1 = 2+1
		{Misses: 2, Window: 100}, // ⌈10e^-2.5⌉+1 = 1+1
	}
	for i, w := range want {
		if got := s.MissConstraint(i + 1); got != w {
			t.Errorf("λ(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestSyntheticWHMonotone(t *testing.T) {
	// Eq. (13) is stated to satisfy n < k ⇒ λ(k) ⪯ λ(n); verify with the
	// exact Bernat-Burns order.
	if err := CheckWHMonotone(SyntheticWH{}, 12); err != nil {
		t.Errorf("eq. 13 statistic not monotone: %v", err)
	}
}

func TestTableWH(t *testing.T) {
	meas := []wh.MissConstraint{
		{Misses: 5, Window: 20},
		{Misses: 6, Window: 18}, // violates monotonicity; earlier entries weaken
		{Misses: 2, Window: 30},
	}
	tab, err := NewTableWH(meas)
	if err != nil {
		t.Fatal(err)
	}
	// Monotonization must weaken earlier entries to absorb the n=2 dip,
	// never strengthen the dip itself past its measurement.
	if got := tab.MissConstraint(1); got != (wh.MissConstraint{Misses: 6, Window: 18}) {
		t.Errorf("entry 1 = %v, want the weakened (6,18)~", got)
	}
	if got := tab.MissConstraint(2); got != (wh.MissConstraint{Misses: 6, Window: 18}) {
		t.Errorf("entry 2 = %v, want the measured (6,18)~", got)
	}
	if got := tab.MissConstraint(3); got != (wh.MissConstraint{Misses: 2, Window: 30}) {
		t.Errorf("entry 3 = %v, want the measured (2,30)~", got)
	}
	// Soundness: each published guarantee is implied by its measurement —
	// the table never claims more than was observed.
	for n := 1; n <= len(meas); n++ {
		if !wh.PrecedesBBMiss(meas[n-1], tab.MissConstraint(n)) {
			t.Errorf("entry %d = %v not implied by measured %v", n, tab.MissConstraint(n), meas[n-1])
		}
	}
	if err := CheckWHMonotone(tab, 3); err != nil {
		t.Errorf("monotonized table not monotone: %v", err)
	}
	if got := tab.MissConstraint(99); got != tab.MissConstraint(3) {
		t.Errorf("beyond-table query = %v", got)
	}
	if _, err := NewTableWH(nil); err == nil {
		t.Error("empty table accepted")
	}
}

func TestGilbertElliottTrace(t *testing.T) {
	ch := GilbertElliott{PGB: 0.05, PBG: 0.3, PerTXGood: 0.95, PerTXBad: 0.1}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	tr, err := ch.Trace(2, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 5000 {
		t.Fatalf("trace length %d", len(tr))
	}
	// The channel spends most time good, so the hit rate is high but
	// bursts of misses exist.
	if tr.HitRate() < 0.7 {
		t.Errorf("hit rate %v implausibly low", tr.HitRate())
	}
	if tr.LongestMissBurst() < 2 {
		t.Errorf("expected bursty losses, longest burst %d", tr.LongestMissBurst())
	}
	// More retransmissions help.
	tr4, _ := ch.Trace(6, 5000, rng)
	if tr4.HitRate() <= tr.HitRate() {
		t.Errorf("hit rate did not improve with N_TX: %v vs %v", tr.HitRate(), tr4.HitRate())
	}
	if _, err := ch.Trace(0, 10, rng); err == nil {
		t.Error("N_TX = 0 accepted")
	}
	if _, err := ch.Trace(1, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := GilbertElliott{PGB: 1.5}
	if _, err := bad.Trace(1, 10, rng); err == nil {
		t.Error("invalid channel accepted")
	}
}

func TestProfileWH(t *testing.T) {
	ch := GilbertElliott{PGB: 0.05, PBG: 0.3, PerTXGood: 0.95, PerTXBad: 0.1}
	tab, err := ProfileWH(ch, 6, 20000, 50, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWHMonotone(tab, 6); err != nil {
		t.Errorf("profiled WH statistic not monotone: %v", err)
	}
	// Profiled guarantee must actually bound a fresh trace most of the
	// time (it includes a safety margin).
	c := tab.MissConstraint(4)
	fresh, _ := ch.Trace(4, 5000, testRNG())
	worst, _ := fresh.MaxWindowMisses(c.Window)
	if worst > c.Misses+2 {
		t.Errorf("profiled constraint %v far from fresh-trace worst case %d", c, worst)
	}
	if _, err := ProfileWH(ch, 0, 100, 10, testRNG()); err == nil {
		t.Error("maxNTX = 0 accepted")
	}
	if _, err := ProfileWH(ch, 2, 5, 10, testRNG()); err == nil {
		t.Error("traceLen < window accepted")
	}
}
