package glossy

import (
	"testing"

	"github.com/netdag/netdag/internal/network"
)

func BenchmarkSimulateFloodGrid(b *testing.B) {
	topo := network.Grid(4, 4, 0.8)
	rng := testRNG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateFlood(topo, 0, 3, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFloodClique(b *testing.B) {
	topo := network.Clique(16, 0.9)
	rng := testRNG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateFlood(topo, 0, 2, 10, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGilbertElliottTrace(b *testing.B) {
	ch := GilbertElliott{PGB: 0.05, PBG: 0.3, PerTXGood: 0.95, PerTXBad: 0.1}
	rng := testRNG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Trace(3, 1000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlotDuration(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		_ = p.SlotDuration(3, 16, 4)
	}
}
