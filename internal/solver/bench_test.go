package solver

import (
	"math/rand"
	"testing"
)

// lwbLikeInstance models the structure the NETDAG core generates: a
// layered task DAG plus a chain of rounds, with task-round disjunctions.
func lwbLikeInstance(tasks, rounds int) *Problem {
	p := NewProblem(1)
	rng := rand.New(rand.NewSource(3))
	taskIDs := make([]ActID, tasks)
	for i := range taskIDs {
		taskIDs[i] = p.AddActivity("t", int64(rng.Intn(1000)+100))
		if i > 0 && rng.Float64() < 0.5 {
			p.Precede(taskIDs[rng.Intn(i)], taskIDs[i])
		}
	}
	roundIDs := make([]ActID, rounds)
	for r := range roundIDs {
		roundIDs[r] = p.AddActivity("round", int64(5000+1000*r))
		if r > 0 {
			p.Precede(roundIDs[r-1], roundIDs[r])
		}
	}
	for _, t := range taskIDs {
		for _, r := range roundIDs {
			p.Disjoint(t, r)
		}
	}
	return p
}

func BenchmarkMinimizeLWBLike(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := lwbLikeInstance(10, 3)
		if _, err := p.Minimize(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimizeLWBLikeHeavy is the B&B-heavy instance: more tasks and
// rounds mean thousands of explored nodes per solve, so per-node solver
// cost dominates and instance construction is noise. It reports ns and
// allocations per explored node, the metrics the incremental STN engine
// is meant to shrink.
func BenchmarkMinimizeLWBLikeHeavy(b *testing.B) {
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		p := lwbLikeInstance(14, 4)
		res, err := p.Minimize(100000)
		if err != nil {
			b.Fatal(err)
		}
		nodes += int64(res.Nodes)
	}
	if b.N > 0 && nodes > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(nodes), "ns/node")
	}
}

func BenchmarkGreedyLWBLike(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := lwbLikeInstance(10, 3)
		if _, err := p.Greedy(); err != nil {
			b.Fatal(err)
		}
	}
}
