package solver

import "math"

// Path-based makespan lower bound ("Longer Is Shorter", He et al.): on
// NETDAG instances the communication rounds form a chain of bus blackout
// slots that every task is declared Disjoint from. At a search node, pick
// any activity a outside the chain; its start is at least est(a) and a
// longest duration path (its "tail") must still run after it, none of
// which can overlap any chain slot. A measure argument over the interval
// [S(a), makespan] then gives
//
//	makespan >= est(a) + tail(a) + Σ_c max(0, min(dur_c, est_c+dur_c-est(a)))
//
// where c ranges over the chain. Monotonicity in S(a) >= est(a) holds
// because the chain members' execution windows (est_c, est_c+dur_c) are
// pairwise disjoint — guaranteed by the chain's internal precedences,
// which the STN propagates at every node. The STN's own critical path
// cannot see this bound: it only learns that a task excludes a round
// once the search imposes that specific ordering.

// pathBoundState is the per-search static part of the path bound.
type pathBoundState struct {
	chain []ActID // the declared blackout chain
	q     []ActID // activities disjoint from every chain member
	tail  []int64 // indexed by ActID: longest duration path within q
	cap   int64   // tightest imposed MakespanBound, or -1
}

// SetBlackoutChain declares chain as a sequence of blackout activities:
// consecutive members must already be ordered by Precede. The chain
// enables the path-based lower bound for searches run with
// RaceOpts.PathBound; activities not Disjoint from every chain member
// are simply ignored by the bound. An unqualified chain (missing
// precedences) silently disables the bound — it is an optimization, not
// a constraint.
func (p *Problem) SetBlackoutChain(chain []ActID) {
	for _, c := range chain {
		p.check(c)
	}
	p.chain = append([]ActID(nil), chain...)
}

// buildPathBound derives the static bound state, or nil when the chain
// is absent or does not qualify.
func (p *Problem) buildPathBound() *pathBoundState {
	n := len(p.start)
	if len(p.chain) == 0 || len(p.chain) >= n {
		return nil
	}
	// Consecutive chain members must be precedence-ordered, otherwise the
	// disjoint-windows argument above is unsound.
	direct := make(map[[2]ActID]bool, len(p.ops))
	for _, o := range p.ops {
		if o.kind == opPrec {
			direct[[2]ActID{o.a, o.b}] = true
		}
	}
	inChain := make([]bool, n)
	for i, c := range p.chain {
		if inChain[c] {
			return nil // duplicate chain member
		}
		inChain[c] = true
		if i > 0 && !direct[[2]ActID{p.chain[i-1], c}] {
			return nil
		}
	}
	// Qualifying set: activities with a Disjoint pair against every chain
	// member (count distinct chain partners per activity).
	seen := make(map[[2]ActID]bool, len(p.disj))
	cnt := make([]int, n)
	for _, d := range p.disj {
		a, b := d[0], d[1]
		if inChain[a] == inChain[b] {
			continue
		}
		if inChain[a] {
			a, b = b, a
		}
		if k := [2]ActID{a, b}; !seen[k] {
			seen[k] = true
			cnt[a]++
		}
	}
	pb := &pathBoundState{chain: p.chain, tail: make([]int64, n), cap: -1}
	inQ := make([]bool, n)
	for a := 0; a < n; a++ {
		if !inChain[a] && cnt[a] == len(p.chain) {
			inQ[a] = true
			pb.q = append(pb.q, ActID(a))
		}
	}
	if len(pb.q) == 0 {
		return nil
	}
	for _, o := range p.ops {
		if o.kind == opMSB && (pb.cap < 0 || o.t < pb.cap) {
			pb.cap = o.t
		}
	}
	// tail[a] = longest sum of durations over base-precedence paths from a
	// staying within the qualifying set (duration-only: the gaps between
	// path activities are idle time a chain slot could in principle use,
	// so they must not be counted against the chain's occupancy).
	succ := make([][]ActID, n)
	for _, o := range p.ops {
		if o.kind == opPrec && inQ[o.a] && inQ[o.b] {
			succ[o.a] = append(succ[o.a], o.b)
		}
	}
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	var cyclic bool
	var dfs func(a ActID) int64
	dfs = func(a ActID) int64 {
		switch state[a] {
		case 1:
			cyclic = true
			return 0
		case 2:
			return pb.tail[a]
		}
		state[a] = 1
		var best int64
		for _, b := range succ[a] {
			if t := dfs(b); t > best {
				best = t
			}
		}
		state[a] = 2
		pb.tail[a] = p.dur[a] + best
		return pb.tail[a]
	}
	for _, a := range pb.q {
		dfs(a)
		if cyclic {
			return nil // degenerate instance; bound disabled
		}
	}
	return pb
}

// pathLB evaluates the bound at the current STN state: O(|q| + |chain|)
// with zero allocations, cheap enough for every prune point.
func (p *Problem) pathLB(pb *pathBoundState) int64 {
	net := p.net
	bestA := ActID(-1)
	bestV := int64(math.MinInt64)
	for _, a := range pb.q {
		if v := net.Dist(p.start[a]) + pb.tail[a]; v > bestV {
			bestV, bestA = v, a
		}
	}
	if bestA < 0 {
		return math.MinInt64
	}
	t0 := net.Dist(p.start[bestA])
	lb := bestV
	for _, c := range pb.chain {
		e := net.Dist(p.start[c])
		d := p.dur[c]
		if e >= t0 {
			lb += d
		} else if e+d > t0 {
			lb += e + d - t0
		}
	}
	return lb
}
