package solver

import "math"

// Path-based makespan lower bound ("Longer Is Shorter", He et al.): on
// NETDAG instances the communication rounds form a chain of bus blackout
// slots that every task is declared Disjoint from. At a search node, pick
// any activity a outside the chain; its start is at least est(a) and a
// longest duration path (its "tail") must still run after it, none of
// which can overlap any chain slot. A measure argument over the interval
// [S(a), makespan] then gives
//
//	makespan >= est(a) + tail(a) + Σ_c max(0, min(dur_c, est_c+dur_c-est(a)))
//
// where c ranges over the chain. Monotonicity in S(a) >= est(a) holds
// because the chain members' execution windows (est_c, est_c+dur_c) are
// pairwise disjoint — guaranteed by the chain's internal precedences,
// which the STN propagates at every node. The STN's own critical path
// cannot see this bound: it only learns that a task excludes a round
// once the search imposes that specific ordering.

// pathBoundState is the per-search static part of the path bound.
type pathBoundState struct {
	chain    []ActID // the declared blackout chain
	q        []ActID // activities disjoint from every chain member
	tail     []int64 // indexed by ActID: longest duration path within q
	cap      int64   // tightest imposed MakespanBound, or -1
	totalDur int64   // sum of chain durations: cap on any blackout clip
	chainEst []int64 // scratch: chain ests cached per evaluation
}

// SetBlackoutChain declares chain as a sequence of blackout activities:
// consecutive members must already be ordered by Precede. The chain
// enables the path-based lower bound for searches run with
// RaceOpts.PathBound; activities not Disjoint from every chain member
// are simply ignored by the bound. An unqualified chain (missing
// precedences) silently disables the bound — it is an optimization, not
// a constraint.
func (p *Problem) SetBlackoutChain(chain []ActID) {
	for _, c := range chain {
		p.check(c)
	}
	p.chain = append([]ActID(nil), chain...)
}

// buildPathBound derives the static bound state, or nil when the chain
// is absent or does not qualify.
func (p *Problem) buildPathBound() *pathBoundState {
	n := len(p.start)
	if len(p.chain) == 0 || len(p.chain) >= n {
		return nil
	}
	// Consecutive chain members must be precedence-ordered, otherwise the
	// disjoint-windows argument above is unsound.
	direct := make(map[[2]ActID]bool, len(p.ops))
	for _, o := range p.ops {
		if o.kind == opPrec {
			direct[[2]ActID{o.a, o.b}] = true
		}
	}
	inChain := make([]bool, n)
	for i, c := range p.chain {
		if inChain[c] {
			return nil // duplicate chain member
		}
		inChain[c] = true
		if i > 0 && !direct[[2]ActID{p.chain[i-1], c}] {
			return nil
		}
	}
	// Qualifying set: activities with a Disjoint pair against every chain
	// member (count distinct chain partners per activity).
	seen := make(map[[2]ActID]bool, len(p.disj))
	cnt := make([]int, n)
	for _, d := range p.disj {
		a, b := d[0], d[1]
		if inChain[a] == inChain[b] {
			continue
		}
		if inChain[a] {
			a, b = b, a
		}
		if k := [2]ActID{a, b}; !seen[k] {
			seen[k] = true
			cnt[a]++
		}
	}
	pb := &pathBoundState{
		chain:    p.chain,
		tail:     make([]int64, n),
		cap:      -1,
		chainEst: make([]int64, len(p.chain)),
	}
	for _, c := range p.chain {
		pb.totalDur += p.dur[c]
	}
	inQ := make([]bool, n)
	for a := 0; a < n; a++ {
		if !inChain[a] && cnt[a] == len(p.chain) {
			inQ[a] = true
			pb.q = append(pb.q, ActID(a))
		}
	}
	if len(pb.q) == 0 {
		return nil
	}
	for _, o := range p.ops {
		if o.kind == opMSB && (pb.cap < 0 || o.t < pb.cap) {
			pb.cap = o.t
		}
	}
	// tail[a] = longest sum of durations over base-precedence paths from a
	// staying within the qualifying set (duration-only: the gaps between
	// path activities are idle time a chain slot could in principle use,
	// so they must not be counted against the chain's occupancy).
	succ := make([][]ActID, n)
	for _, o := range p.ops {
		if o.kind == opPrec && inQ[o.a] && inQ[o.b] {
			succ[o.a] = append(succ[o.a], o.b)
		}
	}
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	var cyclic bool
	var dfs func(a ActID) int64
	dfs = func(a ActID) int64 {
		switch state[a] {
		case 1:
			cyclic = true
			return 0
		case 2:
			return pb.tail[a]
		}
		state[a] = 1
		var best int64
		for _, b := range succ[a] {
			if t := dfs(b); t > best {
				best = t
			}
		}
		state[a] = 2
		pb.tail[a] = p.dur[a] + best
		return pb.tail[a]
	}
	for _, a := range pb.q {
		dfs(a)
		if cyclic {
			return nil // degenerate instance; bound disabled
		}
	}
	return pb
}

// pathLB evaluates the bound at the current STN state, maximizing the
// full expression est(a) + tail(a) + clip(est(a)) over every qualifying
// activity rather than only the est+tail argmax: an activity with a
// shorter tail but an earlier start can trap strictly more of the chain
// behind it. Zero allocations; the common cost stays O(|q| + |chain|)
// because an activity is only evaluated in full when est+tail plus the
// *entire* chain duration — an upper bound on any clip — could still
// beat the incumbent value, and the argmax seed makes that incumbent
// tight from the start.
func (p *Problem) pathLB(pb *pathBoundState) int64 {
	net := p.net
	bestA := ActID(-1)
	bestV := int64(math.MinInt64)
	for _, a := range pb.q {
		if v := net.Dist(p.start[a]) + pb.tail[a]; v > bestV {
			bestV, bestA = v, a
		}
	}
	if bestA < 0 {
		return math.MinInt64
	}
	for i, c := range pb.chain {
		pb.chainEst[i] = net.Dist(p.start[c])
	}
	// clip(t0) = Σ_c max(0, min(dur_c, est_c+dur_c-t0)): the chain bus
	// time that must still run at or after t0. Never exceeds totalDur.
	clip := func(t0 int64) int64 {
		var s int64
		for i, e := range pb.chainEst {
			d := p.dur[pb.chain[i]]
			if e >= t0 {
				s += d
			} else if e+d > t0 {
				s += e + d - t0
			}
		}
		return s
	}
	lb := bestV + clip(bestV-pb.tail[bestA])
	for _, a := range pb.q {
		if a == bestA {
			continue
		}
		t0 := net.Dist(p.start[a])
		v := t0 + pb.tail[a]
		if v+pb.totalDur <= lb {
			continue // even trapping the whole chain cannot beat lb
		}
		if b := v + clip(t0); b > lb {
			lb = b
		}
	}
	return lb
}
