package solver

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
)

// Order selects the violated-disjunction ordering strategy of a search.
// All orders are exact — they change which disjunction is branched on
// first, not which subtrees are provably prunable — so racing several of
// them against a shared incumbent keeps the portfolio's result optimal.
type Order int

const (
	// OrderCyclic is the canonical order: scan from the disjunction
	// branched on last, wrapping around. This is the order MinimizeContext
	// uses and the one the deterministic reconstruction pass replays.
	OrderCyclic Order = iota
	// OrderMostConstrained branches on the violated disjunction with the
	// largest pairwise overlap under the earliest schedule.
	OrderMostConstrained
	// OrderRandom walks a seeded random permutation of the disjunctions
	// cyclically. Distinct seeds give distinct (deterministic) restarts.
	OrderRandom
)

// RaceOpts configures one strategy run of a shared-incumbent race.
type RaceOpts struct {
	Order Order
	// Seed drives OrderRandom's permutation; ignored by the other orders.
	Seed int64
	// Shared, when non-nil, is the incumbent the strategy publishes
	// feasible makespans to and prunes against (strictly: only subtrees
	// that cannot even match the shared bound are cut, so completing the
	// search still proves optimality of min(local best, shared bound)).
	Shared *Incumbent
	// PathBound enables the path-based lower bound; it takes effect only
	// when SetBlackoutChain declared a qualifying chain.
	PathBound bool
	// FirstFeasible stops the search at the first feasible leaf instead of
	// continuing to prove optimality; the Result carries Optimal = false.
	// Its intended use is reconstruction: under a MakespanBound equal to a
	// makespan already proven optimal elsewhere, every feasible leaf
	// achieves exactly that makespan, so the first one reached in the
	// canonical order *is* the schedule the full canonical search would
	// return — without re-paying for the optimality proof.
	FirstFeasible bool
}

// raceConfig is the resolved, internal form of RaceOpts.
type raceConfig struct {
	order         Order
	perm          []int
	shared        *Incumbent
	pathBound     *pathBoundState
	firstFeasible bool
}

// MinimizeRace is MinimizeContext parameterized for portfolio racing: a
// branching order, an optional shared incumbent, and the optional
// path-based bound. With a zero RaceOpts it is exactly MinimizeContext.
// Error semantics are unchanged: ErrBounded still means "nothing within
// the imposed MakespanBound", never "another strategy won the race".
func (p *Problem) MinimizeRace(ctx context.Context, maxNodes int, o RaceOpts) (Result, error) {
	cfg := raceConfig{order: o.Order, shared: o.Shared, firstFeasible: o.FirstFeasible}
	if o.Order == OrderRandom {
		cfg.perm = rand.New(rand.NewSource(o.Seed)).Perm(len(p.disj))
	}
	if o.PathBound {
		cfg.pathBound = p.buildPathBound()
	}
	return p.minimize(ctx, maxNodes, cfg)
}

// Incumbent is a makespan upper bound shared between racing searches.
// Strategies publish every feasible makespan they reach and prune
// subtrees whose lower bound strictly exceeds the published minimum.
type Incumbent struct {
	v atomic.Int64
}

// NewIncumbent returns an empty incumbent (no bound yet).
func NewIncumbent() *Incumbent {
	inc := &Incumbent{}
	inc.v.Store(math.MaxInt64)
	return inc
}

// Load returns the current bound, or math.MaxInt64 when none was
// published yet.
func (inc *Incumbent) Load() int64 { return inc.v.Load() }

// Publish lowers the bound to m if m improves it and reports whether it
// did. Lock-free CAS-min: concurrent publishers converge on the minimum.
func (inc *Incumbent) Publish(m int64) bool {
	for {
		cur := inc.v.Load()
		if m >= cur {
			return false
		}
		if inc.v.CompareAndSwap(cur, m) {
			return true
		}
	}
}
