package solver

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countdownCtx is a context whose Err flips to DeadlineExceeded after a
// fixed number of Err() polls — a deterministic way to cancel the search
// mid-flight, since MinimizeContext polls at its prune points.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// denseInstance is n mutually-disjoint activities: a factorial search
// space that cannot finish within a handful of context polls.
func denseInstance(n int) *Problem {
	p := NewProblem(1)
	var ids []ActID
	for i := 0; i < n; i++ {
		ids = append(ids, p.AddActivity("t", int64(i+1)))
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			p.Disjoint(ids[i], ids[j])
		}
	}
	return p
}

func TestMinimizeContextAlreadyCanceled(t *testing.T) {
	p := denseInstance(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.MinimizeContext(ctx, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res.Makespan != -1 {
		t.Errorf("pre-canceled search produced makespan %d", res.Makespan)
	}
}

func TestMinimizeContextMidSearchKeepsIncumbent(t *testing.T) {
	// Let enough polls through for the first dives to find a feasible
	// ordering, then cancel. With 8 mutually-disjoint activities the
	// full search is far beyond a few poll windows.
	for _, after := range []int64{2, 5, 20} {
		p := denseInstance(8)
		ctx := &countdownCtx{Context: context.Background(), after: after}
		res, err := p.MinimizeContext(ctx, 0)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("after=%d: err = %v, want ErrCanceled", after, err)
		}
		if res.Optimal {
			t.Errorf("after=%d: canceled search claims optimality", after)
		}
		if res.Makespan >= 0 {
			// The incumbent must be a genuinely feasible makespan: at
			// least the sum of durations (all activities are disjoint).
			var sum int64
			for a := ActID(0); int(a) < p.NumActivities(); a++ {
				sum += p.Duration(a) + 1
			}
			if res.Makespan < sum-1 {
				t.Errorf("after=%d: incumbent makespan %d below the disjoint lower bound %d",
					after, res.Makespan, sum-1)
			}
		}
	}
}

// TestMinimizeContextCompleteSearchUnaffected: a context that never
// expires leaves results bit-identical to Minimize.
func TestMinimizeContextCompleteSearchUnaffected(t *testing.T) {
	p1 := denseInstance(5)
	r1, err1 := p1.Minimize(0)
	p2 := denseInstance(5)
	r2, err2 := p2.MinimizeContext(context.Background(), 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if r1.Makespan != r2.Makespan || r1.Optimal != r2.Optimal || r1.Nodes != r2.Nodes {
		t.Errorf("Minimize (%d,%v,%d) != MinimizeContext (%d,%v,%d)",
			r1.Makespan, r1.Optimal, r1.Nodes, r2.Makespan, r2.Optimal, r2.Nodes)
	}
}
