package solver

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// chainInstance builds the benchmark's LWB-like shape with the blackout
// chain declared, so the path bound qualifies.
func chainInstance(tasks, rounds int) (*Problem, []ActID) {
	p := lwbLikeInstance(tasks, rounds)
	var chain []ActID
	for a := ActID(0); int(a) < p.NumActivities(); a++ {
		if p.Name(a) == "round" {
			chain = append(chain, a)
		}
	}
	p.SetBlackoutChain(chain)
	return p, chain
}

func TestCloneEquivalence(t *testing.T) {
	p, _ := chainInstance(10, 3)
	p.Release(2, 50)
	p.Deadline(3, 40000)
	q := p.Clone()

	r1, err1 := p.Minimize(0)
	r2, err2 := q.Minimize(0)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("clone result %+v != original %+v", r2, r1)
	}

	// A clone taken *after* a search still reproduces the instance: the
	// branch orderings the search imposed must not leak into the replay
	// log (they go through the unlogged precede).
	r3, err3 := p.Clone().Minimize(0)
	if err3 != nil || !reflect.DeepEqual(r1, r3) {
		t.Errorf("post-search clone: %+v, %v; want %+v, nil", r3, err3, r1)
	}
}

func TestCloneCarriesBound(t *testing.T) {
	p := NewProblem(1)
	a := p.AddActivity("a", 5)
	b := p.AddActivity("b", 5)
	p.Disjoint(a, b)
	p.MakespanBound(7) // serializing 5+1+5 = 11 > 7: bounded-infeasible
	if _, err := p.Clone().Minimize(0); err != ErrBounded {
		t.Errorf("cloned bounded instance: err = %v, want ErrBounded", err)
	}
}

// TestPathBoundExactness: the path bound is a pruning aid, never a
// constraint — enabling it must not change the optimum, and the
// canonical order with the bound returns the identical schedule (the
// bound only removes subtrees that provably cannot contain the first
// optimal leaf).
func TestPathBoundExactness(t *testing.T) {
	p1, _ := chainInstance(12, 4)
	base, err := p1.MinimizeContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := chainInstance(12, 4)
	pb, err := p2.MinimizeRace(context.Background(), 0, RaceOpts{PathBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if pb.Makespan != base.Makespan || !pb.Optimal {
		t.Fatalf("path bound changed the optimum: %d vs %d", pb.Makespan, base.Makespan)
	}
	if !reflect.DeepEqual(pb.Starts, base.Starts) {
		t.Errorf("path bound changed the returned schedule:\n%v\n%v", pb.Starts, base.Starts)
	}
	if pb.Nodes > base.Nodes {
		t.Errorf("path bound explored more nodes (%d) than the plain search (%d)", pb.Nodes, base.Nodes)
	}
}

// TestPathBoundPrunes: on the LWB-like shape the bound must actually cut
// the tree, not just break even — this pins the benchmark's mechanism.
func TestPathBoundPrunes(t *testing.T) {
	p1, _ := chainInstance(14, 4)
	base, err := p1.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := chainInstance(14, 4)
	pb, err := p2.MinimizeRace(context.Background(), 0, RaceOpts{PathBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if pb.Nodes >= base.Nodes {
		t.Errorf("path bound did not prune: %d nodes vs %d", pb.Nodes, base.Nodes)
	}
}

// TestPathBoundPerActivityTighter pins the per-activity evaluation: the
// est+tail argmax (a late release with a trivial tail) sees none of the
// chain, while an earlier activity with a long tail traps all of it —
// the bound must take the maximum of the full expression, not clip only
// at the argmax.
func TestPathBoundPerActivityTighter(t *testing.T) {
	p := NewProblem(0)
	r1 := p.AddActivity("round", 20)
	r2 := p.AddActivity("round", 20)
	p.Precede(r1, r2)
	a := p.AddActivity("a", 2)
	p.Release(a, 100)
	b := p.AddActivity("b", 50)
	b2 := p.AddActivity("b2", 50)
	p.Precede(b, b2)
	for _, x := range []ActID{a, b, b2} {
		p.Disjoint(x, r1)
		p.Disjoint(x, r2)
	}
	p.SetBlackoutChain([]ActID{r1, r2})
	pb := p.buildPathBound()
	if pb == nil {
		t.Fatal("chain did not qualify")
	}
	// argmax(est+tail) is a: 100+2 = 102 with an empty clip. The winner
	// is b: 0+100 plus the whole 40-slot chain trapped after est(b)=0.
	if lb := p.pathLB(pb); lb != 140 {
		t.Fatalf("pathLB = %d, want 140 (b's full expression), not 102 (a's argmax)", lb)
	}
}

// TestPathBoundRequiresOrderedChain: a chain without internal precedences
// must disable the bound (its soundness argument needs disjoint blackout
// windows), not corrupt the search.
func TestPathBoundRequiresOrderedChain(t *testing.T) {
	p := NewProblem(1)
	a := p.AddActivity("a", 10)
	r1 := p.AddActivity("round", 5)
	r2 := p.AddActivity("round", 5) // not ordered against r1
	p.Disjoint(a, r1)
	p.Disjoint(a, r2)
	p.SetBlackoutChain([]ActID{r1, r2})
	if pb := p.buildPathBound(); pb != nil {
		t.Fatal("unordered chain must not qualify for the path bound")
	}
	res, err := p.MinimizeRace(context.Background(), 0, RaceOpts{PathBound: true})
	if err != nil || !res.Optimal {
		t.Fatalf("search with disabled bound: %+v, %v", res, err)
	}
}

// TestOrdersAreExact: every ordering strategy proves the same optimal
// makespan; OrderCyclic with zero extras is bit-identical to
// MinimizeContext.
func TestOrdersAreExact(t *testing.T) {
	ref, err := lwbLikeInstance(10, 3).Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []RaceOpts{
		{},
		{Order: OrderMostConstrained},
		{Order: OrderRandom, Seed: 1},
		{Order: OrderRandom, Seed: 2},
	} {
		res, err := lwbLikeInstance(10, 3).MinimizeRace(context.Background(), 0, o)
		if err != nil {
			t.Fatalf("order %v seed %d: %v", o.Order, o.Seed, err)
		}
		if !res.Optimal || res.Makespan != ref.Makespan {
			t.Errorf("order %v seed %d: makespan %d optimal %v, want %d, true",
				o.Order, o.Seed, res.Makespan, res.Optimal, ref.Makespan)
		}
		if o == (RaceOpts{}) && !reflect.DeepEqual(res, ref) {
			t.Errorf("zero RaceOpts diverged from MinimizeContext: %+v vs %+v", res, ref)
		}
	}
}

// TestFirstFeasibleReconstruction: under a MakespanBound equal to the
// optimum, the first feasible leaf of the canonical bounded walk is the
// schedule the full canonical search returns — in far fewer nodes. This
// is the portfolio's reconstruction pass.
func TestFirstFeasibleReconstruction(t *testing.T) {
	full, err := chainFirst(14, 4).MinimizeContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := chainFirst(14, 4)
	p.MakespanBound(full.Makespan)
	dive, err := p.MinimizeRace(context.Background(), 0, RaceOpts{FirstFeasible: true, PathBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if dive.Optimal {
		t.Error("a first-feasible dive must not claim an optimality proof")
	}
	if dive.Makespan != full.Makespan || !reflect.DeepEqual(dive.Starts, full.Starts) {
		t.Errorf("dive schedule (makespan %d) != canonical optimum (makespan %d)",
			dive.Makespan, full.Makespan)
	}
	if dive.Nodes >= full.Nodes {
		t.Errorf("dive explored %d nodes, full search %d — reconstruction saved nothing",
			dive.Nodes, full.Nodes)
	}
}

func chainFirst(tasks, rounds int) *Problem {
	p, _ := chainInstance(tasks, rounds)
	return p
}

func TestIncumbentPublish(t *testing.T) {
	inc := NewIncumbent()
	if inc.Load() != math.MaxInt64 {
		t.Fatalf("fresh incumbent holds %d", inc.Load())
	}
	if !inc.Publish(100) || inc.Load() != 100 {
		t.Error("publish 100 failed")
	}
	if inc.Publish(100) || inc.Publish(150) {
		t.Error("non-improving publish reported an improvement")
	}
	if !inc.Publish(40) || inc.Load() != 40 {
		t.Error("improving publish failed")
	}
}

// TestSharedIncumbentPreservesOptimality: a search running against a
// pre-published shared bound equal to the optimum must still find and
// prove the optimum (strict pruning), and a bound below the optimum
// turns the search into a proof that nothing better exists — without
// touching the instance's own error semantics.
func TestSharedIncumbentPreservesOptimality(t *testing.T) {
	ref, err := lwbLikeInstance(10, 3).Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncumbent()
	inc.Publish(ref.Makespan)
	res, err := lwbLikeInstance(10, 3).MinimizeRace(context.Background(), 0, RaceOpts{Shared: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != ref.Makespan || !res.Optimal {
		t.Errorf("shared-bound search: makespan %d optimal %v, want %d, true",
			res.Makespan, res.Optimal, ref.Makespan)
	}
	if res.Nodes > ref.Nodes {
		t.Errorf("shared bound increased the tree: %d vs %d nodes", res.Nodes, ref.Nodes)
	}
}
