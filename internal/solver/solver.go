// Package solver provides an exact disjunctive scheduler on top of the
// simple-temporal-network substrate: activities with fixed durations,
// precedence constraints, release times, deadlines, and pairwise
// non-overlap disjunctions, minimized for makespan by branch and bound.
//
// This is the role Z3/Gurobi play in the paper's implementation: the
// NETDAG feasibility conditions (eq. 4, 5) are difference constraints
// plus binary non-overlap disjunctions, exactly the fragment this solver
// decides. The branch-and-bound search is exact; Greedy provides the
// polynomial heuristic used in the A3 ablation and as a fallback for
// instances beyond the exact solver's budget.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/netdag/netdag/internal/stn"
)

// ActID identifies an activity within a Problem.
type ActID int

// Problem is a disjunctive scheduling instance under construction.
type Problem struct {
	net     *stn.STN
	start   []stn.VarID
	dur     []int64
	name    []string
	end     stn.VarID
	disj    [][2]ActID
	gap     int64
	bounded bool // a MakespanBound was imposed externally

	// ops replays the base constraints (precedences, releases, deadlines,
	// makespan bounds) so Clone can rebuild an identical instance. Search
	// branching bypasses the log via precede, so the log only ever holds
	// the instance itself, never transient branch orderings.
	ops []baseOp
	// chain is the declared blackout chain (see SetBlackoutChain), used by
	// the optional path-based lower bound.
	chain []ActID
}

// baseOp is one replayable base constraint.
type baseOp struct {
	kind uint8
	a, b ActID
	t    int64
}

const (
	opPrec uint8 = iota
	opRel
	opDL
	opMSB
)

// Result is a schedule: start times per activity and the achieved
// makespan.
type Result struct {
	Starts   []int64 // indexed by ActID
	Makespan int64
	Optimal  bool // true when the search proved optimality
	Nodes    int  // branch-and-bound nodes explored
}

// Errors returned by the solver.
var (
	ErrInfeasible = errors.New("solver: no feasible schedule")
	ErrBudget     = errors.New("solver: node budget exhausted before any feasible schedule")
	// ErrBounded is returned instead of ErrInfeasible when a MakespanBound
	// was imposed on the instance: the instance might be feasible without
	// the bound, so callers running a bounded search (e.g. branch-and-bound
	// with a shared incumbent) must treat it as a pruning outcome, not as
	// proof of infeasibility.
	ErrBounded = errors.New("solver: no feasible schedule within the imposed makespan bound")
	// ErrCanceled is returned by MinimizeContext when the context expires
	// mid-search. The accompanying Result still carries the incumbent
	// schedule (Makespan >= 0, Optimal = false) when one was found before
	// the cancellation, so deadline-bound callers can use the best-so-far.
	ErrCanceled = errors.New("solver: search canceled")
)

// cancelCheckMask spaces the context polls in the branch-and-bound loop:
// the context is consulted once every cancelCheckMask+1 nodes, keeping the
// check off the per-node hot path while still bounding the reaction time
// to a cancellation by a few hundred STN propagations.
const cancelCheckMask = 0x3f

// NewProblem returns an empty instance. gap is the minimum separation
// inserted between ordered activities (the paper's strict inequalities in
// eq. 4-5 become ">= gap" in integer time; NETDAG uses gap = 1 µs).
func NewProblem(gap int64) *Problem {
	if gap < 0 {
		panic(fmt.Sprintf("solver: negative gap %d", gap))
	}
	p := &Problem{net: stn.New(), gap: gap}
	p.end = p.net.NewVar("makespan")
	return p
}

// AddActivity declares an activity with the given duration and returns
// its ID. Durations must be non-negative.
func (p *Problem) AddActivity(name string, dur int64) ActID {
	if dur < 0 {
		panic(fmt.Sprintf("solver: negative duration %d for %q", dur, name))
	}
	id := ActID(len(p.start))
	v := p.net.NewVar(name)
	p.start = append(p.start, v)
	p.dur = append(p.dur, dur)
	p.name = append(p.name, name)
	// Makespan covers every activity.
	p.net.AddMin(p.end, v, dur)
	return id
}

// NumActivities returns the activity count.
func (p *Problem) NumActivities() int { return len(p.start) }

// Duration returns the duration of a.
func (p *Problem) Duration(a ActID) int64 { return p.dur[a] }

// Name returns the name of a.
func (p *Problem) Name(a ActID) string { return p.name[a] }

// Precede imposes start(b) >= start(a) + dur(a) + gap: b strictly after a
// completes.
func (p *Problem) Precede(a, b ActID) {
	p.check(a)
	p.check(b)
	p.ops = append(p.ops, baseOp{kind: opPrec, a: a, b: b})
	p.precede(a, b)
}

// precede is Precede without the replay log: the branch-and-bound search
// and the greedy dispatcher impose transient orderings through it, so
// Clone never observes half-explored branches.
func (p *Problem) precede(a, b ActID) {
	p.net.AddMin(p.start[b], p.start[a], p.dur[a]+p.gap)
}

// Release imposes start(a) >= t.
func (p *Problem) Release(a ActID, t int64) {
	p.check(a)
	p.ops = append(p.ops, baseOp{kind: opRel, a: a, t: t})
	p.net.AddMin(p.start[a], stn.Zero, t)
}

// Deadline imposes start(a) + dur(a) <= t.
func (p *Problem) Deadline(a ActID, t int64) {
	p.check(a)
	p.ops = append(p.ops, baseOp{kind: opDL, a: a, t: t})
	p.net.AddMax(p.start[a], stn.Zero, t-p.dur[a])
}

// MakespanBound imposes makespan <= t, tightening the search a priori.
// Once a bound is imposed, infeasibility is reported as ErrBounded rather
// than ErrInfeasible, since it may be an artifact of the bound.
func (p *Problem) MakespanBound(t int64) {
	p.bounded = true
	p.ops = append(p.ops, baseOp{kind: opMSB, t: t})
	p.net.AddMax(p.end, stn.Zero, t)
}

// Clone returns an independent copy of the instance: same activities,
// base constraints, disjunctions, and blackout chain, with a fresh STN in
// its initial (pre-search) state. Activity IDs and the Starts layout of
// results carry over unchanged. Clone only reads the receiver, so any
// number of clones may be taken concurrently — the racing portfolio takes
// one per strategy.
func (p *Problem) Clone() *Problem {
	q := NewProblem(p.gap)
	for i := range p.start {
		q.AddActivity(p.name[i], p.dur[i])
	}
	for _, o := range p.ops {
		switch o.kind {
		case opPrec:
			q.Precede(o.a, o.b)
		case opRel:
			q.Release(o.a, o.t)
		case opDL:
			q.Deadline(o.a, o.t)
		case opMSB:
			q.MakespanBound(o.t)
		}
	}
	q.disj = append([][2]ActID(nil), p.disj...)
	q.chain = append([]ActID(nil), p.chain...)
	return q
}

// Disjoint declares that a and b must not overlap in time (in either
// order, separated by gap) — the paper's eq. (5) between a task and a
// communication round.
func (p *Problem) Disjoint(a, b ActID) {
	p.check(a)
	p.check(b)
	if a == b {
		panic("solver: activity cannot be disjoint from itself")
	}
	p.disj = append(p.disj, [2]ActID{a, b})
}

func (p *Problem) check(a ActID) {
	if a < 0 || int(a) >= len(p.start) {
		panic(fmt.Sprintf("solver: unknown activity %d", a))
	}
}

// overlapsNow reports whether a and b overlap (or violate the gap) at
// the STN's currently maintained earliest times. Zero-allocation: it
// reads the incremental engine's distances directly instead of taking a
// snapshot.
func (p *Problem) overlapsNow(a, b ActID) bool {
	sa, sb := p.net.Dist(p.start[a]), p.net.Dist(p.start[b])
	return sa+p.dur[a]+p.gap > sb && sb+p.dur[b]+p.gap > sa
}

// Minimize runs exact branch and bound over the non-overlap disjunctions
// and returns a makespan-minimal schedule. maxNodes bounds the search; if
// a branch had to be abandoned because the budget ran out, the best
// schedule found so far is returned with Optimal = false, or ErrBudget if
// none was found. A search that completes exactly at the budget is still
// optimal. maxNodes <= 0 means unlimited.
func (p *Problem) Minimize(maxNodes int) (Result, error) {
	return p.MinimizeContext(context.Background(), maxNodes)
}

// MinimizeContext is Minimize with cooperative cancellation: the context
// is polled at the search's prune points, and when it expires the search
// unwinds immediately and returns ErrCanceled. The Result accompanying
// ErrCanceled holds the incumbent found so far (Makespan >= 0,
// Optimal = false) or Makespan = -1 when cancellation struck before any
// feasible schedule was reached.
func (p *Problem) MinimizeContext(ctx context.Context, maxNodes int) (Result, error) {
	return p.minimize(ctx, maxNodes, raceConfig{})
}

// minimize is the branch-and-bound engine behind MinimizeContext and
// MinimizeRace. With a zero raceConfig it is bit-identical to the
// canonical search (same branch decisions, same node count); the config
// hooks add a violated-disjunction ordering strategy, a shared incumbent
// to publish to and prune against, and the path-based lower bound.
func (p *Problem) minimize(ctx context.Context, maxNodes int, o raceConfig) (Result, error) {
	res := Result{Makespan: -1}
	nodes := 0
	// truncated records that the budget actually cut the search short — a
	// branch was abandoned unexplored. Node count alone cannot tell this
	// apart from a search that finished exactly on budget.
	truncated := false
	canceled := false
	// settled is the FirstFeasible stop signal: the first feasible leaf
	// was recorded, so the whole search unwinds without visiting (or
	// counting) any further node.
	settled := false
	budget := func() bool { return maxNodes > 0 && nodes >= maxNodes }
	net := p.net
	pb := o.pathBound // nil unless enabled and a blackout chain qualifies
	var rec func(from int)
	rec = func(from int) {
		if canceled || settled {
			return
		}
		if nodes&cancelCheckMask == 0 && ctx.Err() != nil {
			canceled = true
			return
		}
		if budget() {
			truncated = true
			return
		}
		nodes++
		if !net.Consistent() {
			return // inconsistent branch (detected incrementally on precede)
		}
		lb := net.Dist(p.end)
		if res.Makespan >= 0 && lb >= res.Makespan {
			return // bound: cannot improve
		}
		if o.shared != nil && lb > o.shared.Load() {
			// Another racing strategy already holds a schedule at least as
			// good as anything below this node. Strictly greater only: a
			// subtree that could *match* the shared bound must survive so
			// the race still proves optimality of the published makespan.
			return
		}
		if pb != nil && (res.Makespan >= 0 || pb.cap >= 0 ||
			(o.shared != nil && o.shared.Load() != math.MaxInt64)) {
			// Second-chance prune: the path bound sees the blackout chain's
			// global bus occupancy, which the STN's critical path cannot.
			plb := p.pathLB(pb)
			if plb > lb {
				if res.Makespan >= 0 && plb >= res.Makespan {
					return
				}
				if o.shared != nil && plb > o.shared.Load() {
					return
				}
				if pb.cap >= 0 && plb > pb.cap {
					return // cannot meet the imposed MakespanBound
				}
			}
		}
		// Find a violated disjunction under the earliest schedule. The
		// default scan resumes cyclically from the disjunction branched on
		// last: the ordering just imposed rarely disturbs the disjunctions
		// already passed over, so the next violation is usually a near
		// neighbor — but a shifted schedule *can* re-violate an earlier
		// pair, so the scan still wraps around and covers all of p.disj
		// before the node may be declared feasible. OrderRandom walks the
		// same cycle through a seeded permutation; OrderMostConstrained
		// scans everything and branches on the largest overlap.
		nd := len(p.disj)
		branch := -1 // disjunction index to branch on
		next := 0    // the `from` passed down to child nodes
		switch {
		case o.order == OrderMostConstrained:
			var worst int64
			for i := 0; i < nd; i++ {
				pair := p.disj[i]
				a, b := pair[0], pair[1]
				sa, sb := net.Dist(p.start[a]), net.Dist(p.start[b])
				ea, eb := sa+p.dur[a]+p.gap, sb+p.dur[b]+p.gap
				if ea <= sb || eb <= sa {
					continue
				}
				ov := ea
				if eb < ov {
					ov = eb
				}
				if sa > sb {
					ov -= sa
				} else {
					ov -= sb
				}
				if branch < 0 || ov > worst {
					branch, worst = i, ov
				}
			}
		case o.order == OrderRandom:
			for k := 0; k < nd; k++ {
				pos := from + k
				if pos >= nd {
					pos -= nd
				}
				i := o.perm[pos]
				pair := p.disj[i]
				if p.overlapsNow(pair[0], pair[1]) {
					branch, next = i, pos
					break
				}
			}
		default: // OrderCyclic
			for k := 0; k < nd; k++ {
				i := from + k
				if i >= nd {
					i -= nd
				}
				pair := p.disj[i]
				if p.overlapsNow(pair[0], pair[1]) {
					branch, next = i, i
					break
				}
			}
		}
		if branch >= 0 {
			pair := p.disj[branch]
			a, b := pair[0], pair[1]
			// Branch on the order of a and b. Try the order suggested by
			// the earliest times first (better first incumbent).
			first, second := a, b
			if net.Dist(p.start[b]) < net.Dist(p.start[a]) {
				first, second = b, a
			}
			mark := net.Mark()
			p.precede(first, second)
			rec(next)
			net.Reset(mark)
			if canceled || settled {
				return
			}
			if budget() {
				truncated = true
				return
			}
			mark = net.Mark()
			p.precede(second, first)
			rec(next)
			net.Reset(mark)
			return
		}
		// No violated disjunction: the earliest schedule is feasible.
		if res.Makespan < 0 || lb < res.Makespan {
			if res.Starts == nil {
				res.Starts = make([]int64, len(p.start))
			}
			for i, v := range p.start {
				res.Starts[i] = net.Dist(v)
			}
			res.Makespan = lb
			if o.shared != nil {
				o.shared.Publish(lb)
			}
			if o.firstFeasible {
				settled = true
			}
		}
	}
	rec(0)
	res.Nodes = nodes
	if canceled {
		// The incumbent (if any) rides along with the error so callers
		// under a deadline are not left empty-handed.
		return res, ErrCanceled
	}
	if res.Makespan < 0 {
		if truncated {
			return res, ErrBudget
		}
		if p.bounded {
			return res, ErrBounded
		}
		return res, ErrInfeasible
	}
	res.Optimal = !truncated && !settled
	return res, nil
}

// Greedy resolves each violated disjunction in earliest-start order
// (ties: shorter activity first) and returns the resulting feasible
// schedule. It is polynomial and typically near-optimal on LWB-style
// instances where rounds already carry most of the ordering; the A3
// ablation quantifies the gap to Minimize.
func (p *Problem) Greedy() (Result, error) {
	net := p.net
	mark := net.Mark()
	defer net.Reset(mark)
	nodes := 0
	for {
		nodes++
		if !net.Consistent() {
			if p.bounded {
				return Result{Makespan: -1}, ErrBounded
			}
			return Result{Makespan: -1}, ErrInfeasible
		}
		resolved := true
		// Pick the violated disjunction whose earliest involved start is
		// smallest, to mimic chronological dispatching.
		bestIdx, bestKey := -1, int64(0)
		for i, pair := range p.disj {
			if !p.overlapsNow(pair[0], pair[1]) {
				continue
			}
			resolved = false
			key := net.Dist(p.start[pair[0]])
			if k := net.Dist(p.start[pair[1]]); k < key {
				key = k
			}
			if bestIdx < 0 || key < bestKey {
				bestIdx, bestKey = i, key
			}
		}
		if resolved {
			starts := make([]int64, len(p.start))
			for i, v := range p.start {
				starts[i] = net.Dist(v)
			}
			return Result{Starts: starts, Makespan: net.Dist(p.end), Nodes: nodes}, nil
		}
		a, b := p.disj[bestIdx][0], p.disj[bestIdx][1]
		first, second := a, b
		sa, sb := net.Dist(p.start[a]), net.Dist(p.start[b])
		if sb < sa || (sb == sa && p.dur[b] < p.dur[a]) {
			first, second = b, a
		}
		p.precede(first, second)
	}
}
