// Package solver provides an exact disjunctive scheduler on top of the
// simple-temporal-network substrate: activities with fixed durations,
// precedence constraints, release times, deadlines, and pairwise
// non-overlap disjunctions, minimized for makespan by branch and bound.
//
// This is the role Z3/Gurobi play in the paper's implementation: the
// NETDAG feasibility conditions (eq. 4, 5) are difference constraints
// plus binary non-overlap disjunctions, exactly the fragment this solver
// decides. The branch-and-bound search is exact; Greedy provides the
// polynomial heuristic used in the A3 ablation and as a fallback for
// instances beyond the exact solver's budget.
package solver

import (
	"context"
	"errors"
	"fmt"

	"github.com/netdag/netdag/internal/stn"
)

// ActID identifies an activity within a Problem.
type ActID int

// Problem is a disjunctive scheduling instance under construction.
type Problem struct {
	net     *stn.STN
	start   []stn.VarID
	dur     []int64
	name    []string
	end     stn.VarID
	disj    [][2]ActID
	gap     int64
	bounded bool // a MakespanBound was imposed externally
}

// Result is a schedule: start times per activity and the achieved
// makespan.
type Result struct {
	Starts   []int64 // indexed by ActID
	Makespan int64
	Optimal  bool // true when the search proved optimality
	Nodes    int  // branch-and-bound nodes explored
}

// Errors returned by the solver.
var (
	ErrInfeasible = errors.New("solver: no feasible schedule")
	ErrBudget     = errors.New("solver: node budget exhausted before any feasible schedule")
	// ErrBounded is returned instead of ErrInfeasible when a MakespanBound
	// was imposed on the instance: the instance might be feasible without
	// the bound, so callers running a bounded search (e.g. branch-and-bound
	// with a shared incumbent) must treat it as a pruning outcome, not as
	// proof of infeasibility.
	ErrBounded = errors.New("solver: no feasible schedule within the imposed makespan bound")
	// ErrCanceled is returned by MinimizeContext when the context expires
	// mid-search. The accompanying Result still carries the incumbent
	// schedule (Makespan >= 0, Optimal = false) when one was found before
	// the cancellation, so deadline-bound callers can use the best-so-far.
	ErrCanceled = errors.New("solver: search canceled")
)

// cancelCheckMask spaces the context polls in the branch-and-bound loop:
// the context is consulted once every cancelCheckMask+1 nodes, keeping the
// check off the per-node hot path while still bounding the reaction time
// to a cancellation by a few hundred STN propagations.
const cancelCheckMask = 0x3f

// NewProblem returns an empty instance. gap is the minimum separation
// inserted between ordered activities (the paper's strict inequalities in
// eq. 4-5 become ">= gap" in integer time; NETDAG uses gap = 1 µs).
func NewProblem(gap int64) *Problem {
	if gap < 0 {
		panic(fmt.Sprintf("solver: negative gap %d", gap))
	}
	p := &Problem{net: stn.New(), gap: gap}
	p.end = p.net.NewVar("makespan")
	return p
}

// AddActivity declares an activity with the given duration and returns
// its ID. Durations must be non-negative.
func (p *Problem) AddActivity(name string, dur int64) ActID {
	if dur < 0 {
		panic(fmt.Sprintf("solver: negative duration %d for %q", dur, name))
	}
	id := ActID(len(p.start))
	v := p.net.NewVar(name)
	p.start = append(p.start, v)
	p.dur = append(p.dur, dur)
	p.name = append(p.name, name)
	// Makespan covers every activity.
	p.net.AddMin(p.end, v, dur)
	return id
}

// NumActivities returns the activity count.
func (p *Problem) NumActivities() int { return len(p.start) }

// Duration returns the duration of a.
func (p *Problem) Duration(a ActID) int64 { return p.dur[a] }

// Name returns the name of a.
func (p *Problem) Name(a ActID) string { return p.name[a] }

// Precede imposes start(b) >= start(a) + dur(a) + gap: b strictly after a
// completes.
func (p *Problem) Precede(a, b ActID) {
	p.check(a)
	p.check(b)
	p.net.AddMin(p.start[b], p.start[a], p.dur[a]+p.gap)
}

// Release imposes start(a) >= t.
func (p *Problem) Release(a ActID, t int64) {
	p.check(a)
	p.net.AddMin(p.start[a], stn.Zero, t)
}

// Deadline imposes start(a) + dur(a) <= t.
func (p *Problem) Deadline(a ActID, t int64) {
	p.check(a)
	p.net.AddMax(p.start[a], stn.Zero, t-p.dur[a])
}

// MakespanBound imposes makespan <= t, tightening the search a priori.
// Once a bound is imposed, infeasibility is reported as ErrBounded rather
// than ErrInfeasible, since it may be an artifact of the bound.
func (p *Problem) MakespanBound(t int64) {
	p.bounded = true
	p.net.AddMax(p.end, stn.Zero, t)
}

// Disjoint declares that a and b must not overlap in time (in either
// order, separated by gap) — the paper's eq. (5) between a task and a
// communication round.
func (p *Problem) Disjoint(a, b ActID) {
	p.check(a)
	p.check(b)
	if a == b {
		panic("solver: activity cannot be disjoint from itself")
	}
	p.disj = append(p.disj, [2]ActID{a, b})
}

func (p *Problem) check(a ActID) {
	if a < 0 || int(a) >= len(p.start) {
		panic(fmt.Sprintf("solver: unknown activity %d", a))
	}
}

// overlapsNow reports whether a and b overlap (or violate the gap) at
// the STN's currently maintained earliest times. Zero-allocation: it
// reads the incremental engine's distances directly instead of taking a
// snapshot.
func (p *Problem) overlapsNow(a, b ActID) bool {
	sa, sb := p.net.Dist(p.start[a]), p.net.Dist(p.start[b])
	return sa+p.dur[a]+p.gap > sb && sb+p.dur[b]+p.gap > sa
}

// Minimize runs exact branch and bound over the non-overlap disjunctions
// and returns a makespan-minimal schedule. maxNodes bounds the search; if
// a branch had to be abandoned because the budget ran out, the best
// schedule found so far is returned with Optimal = false, or ErrBudget if
// none was found. A search that completes exactly at the budget is still
// optimal. maxNodes <= 0 means unlimited.
func (p *Problem) Minimize(maxNodes int) (Result, error) {
	return p.MinimizeContext(context.Background(), maxNodes)
}

// MinimizeContext is Minimize with cooperative cancellation: the context
// is polled at the search's prune points, and when it expires the search
// unwinds immediately and returns ErrCanceled. The Result accompanying
// ErrCanceled holds the incumbent found so far (Makespan >= 0,
// Optimal = false) or Makespan = -1 when cancellation struck before any
// feasible schedule was reached.
func (p *Problem) MinimizeContext(ctx context.Context, maxNodes int) (Result, error) {
	res := Result{Makespan: -1}
	nodes := 0
	// truncated records that the budget actually cut the search short — a
	// branch was abandoned unexplored. Node count alone cannot tell this
	// apart from a search that finished exactly on budget.
	truncated := false
	canceled := false
	budget := func() bool { return maxNodes > 0 && nodes >= maxNodes }
	net := p.net
	var rec func(from int)
	rec = func(from int) {
		if canceled {
			return
		}
		if nodes&cancelCheckMask == 0 && ctx.Err() != nil {
			canceled = true
			return
		}
		if budget() {
			truncated = true
			return
		}
		nodes++
		if !net.Consistent() {
			return // inconsistent branch (detected incrementally on Precede)
		}
		lb := net.Dist(p.end)
		if res.Makespan >= 0 && lb >= res.Makespan {
			return // bound: cannot improve
		}
		// Find a violated disjunction under the earliest schedule. The scan
		// resumes cyclically from the disjunction branched on last: the
		// ordering just imposed rarely disturbs the disjunctions already
		// passed over, so the next violation is usually a near neighbor —
		// but a shifted schedule *can* re-violate an earlier pair, so the
		// scan still wraps around and covers all of p.disj before the node
		// may be declared feasible.
		nd := len(p.disj)
		for k := 0; k < nd; k++ {
			i := from + k
			if i >= nd {
				i -= nd
			}
			pair := p.disj[i]
			a, b := pair[0], pair[1]
			if !p.overlapsNow(a, b) {
				continue
			}
			// Branch on the order of a and b. Try the order suggested by
			// the earliest times first (better first incumbent).
			first, second := a, b
			if net.Dist(p.start[b]) < net.Dist(p.start[a]) {
				first, second = b, a
			}
			mark := net.Mark()
			p.Precede(first, second)
			rec(i)
			net.Reset(mark)
			if canceled {
				return
			}
			if budget() {
				truncated = true
				return
			}
			mark = net.Mark()
			p.Precede(second, first)
			rec(i)
			net.Reset(mark)
			return
		}
		// No violated disjunction: the earliest schedule is feasible.
		if res.Makespan < 0 || lb < res.Makespan {
			if res.Starts == nil {
				res.Starts = make([]int64, len(p.start))
			}
			for i, v := range p.start {
				res.Starts[i] = net.Dist(v)
			}
			res.Makespan = lb
		}
	}
	rec(0)
	res.Nodes = nodes
	if canceled {
		// The incumbent (if any) rides along with the error so callers
		// under a deadline are not left empty-handed.
		return res, ErrCanceled
	}
	if res.Makespan < 0 {
		if truncated {
			return res, ErrBudget
		}
		if p.bounded {
			return res, ErrBounded
		}
		return res, ErrInfeasible
	}
	res.Optimal = !truncated
	return res, nil
}

// Greedy resolves each violated disjunction in earliest-start order
// (ties: shorter activity first) and returns the resulting feasible
// schedule. It is polynomial and typically near-optimal on LWB-style
// instances where rounds already carry most of the ordering; the A3
// ablation quantifies the gap to Minimize.
func (p *Problem) Greedy() (Result, error) {
	net := p.net
	mark := net.Mark()
	defer net.Reset(mark)
	nodes := 0
	for {
		nodes++
		if !net.Consistent() {
			if p.bounded {
				return Result{Makespan: -1}, ErrBounded
			}
			return Result{Makespan: -1}, ErrInfeasible
		}
		resolved := true
		// Pick the violated disjunction whose earliest involved start is
		// smallest, to mimic chronological dispatching.
		bestIdx, bestKey := -1, int64(0)
		for i, pair := range p.disj {
			if !p.overlapsNow(pair[0], pair[1]) {
				continue
			}
			resolved = false
			key := net.Dist(p.start[pair[0]])
			if k := net.Dist(p.start[pair[1]]); k < key {
				key = k
			}
			if bestIdx < 0 || key < bestKey {
				bestIdx, bestKey = i, key
			}
		}
		if resolved {
			starts := make([]int64, len(p.start))
			for i, v := range p.start {
				starts[i] = net.Dist(v)
			}
			return Result{Starts: starts, Makespan: net.Dist(p.end), Nodes: nodes}, nil
		}
		a, b := p.disj[bestIdx][0], p.disj[bestIdx][1]
		first, second := a, b
		sa, sb := net.Dist(p.start[a]), net.Dist(p.start[b])
		if sb < sa || (sb == sa && p.dur[b] < p.dur[a]) {
			first, second = b, a
		}
		p.Precede(first, second)
	}
}
