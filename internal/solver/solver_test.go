package solver

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTwoDisjointActivities(t *testing.T) {
	p := NewProblem(1)
	a := p.AddActivity("a", 10)
	b := p.AddActivity("b", 20)
	p.Disjoint(a, b)
	res, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	// One must follow the other with a 1-tick gap: makespan 31.
	if res.Makespan != 31 {
		t.Errorf("makespan = %d, want 31", res.Makespan)
	}
	if !res.Optimal {
		t.Error("unlimited search must prove optimality")
	}
	sa, sb := res.Starts[a], res.Starts[b]
	if sa < sb {
		if sa+10+1 > sb {
			t.Errorf("activities overlap: a@%d, b@%d", sa, sb)
		}
	} else if sb+20+1 > sa {
		t.Errorf("activities overlap: a@%d, b@%d", sa, sb)
	}
}

func TestPrecedenceChain(t *testing.T) {
	p := NewProblem(1)
	a := p.AddActivity("a", 5)
	b := p.AddActivity("b", 7)
	c := p.AddActivity("c", 3)
	p.Precede(a, b)
	p.Precede(b, c)
	res, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 1 + 7 + 1 + 3 = 17.
	if res.Makespan != 17 {
		t.Errorf("makespan = %d, want 17", res.Makespan)
	}
	if res.Starts[b] != 6 || res.Starts[c] != 14 {
		t.Errorf("starts = %v", res.Starts)
	}
}

func TestReleaseAndDeadline(t *testing.T) {
	p := NewProblem(0)
	a := p.AddActivity("a", 10)
	p.Release(a, 100)
	res, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts[a] != 100 || res.Makespan != 110 {
		t.Errorf("release ignored: %+v", res)
	}
	p.Deadline(a, 105)
	if _, err := p.Minimize(0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible deadline not detected: %v", err)
	}
}

func TestParallelismExploited(t *testing.T) {
	// Two independent activities with no disjunction run concurrently.
	p := NewProblem(1)
	a := p.AddActivity("a", 50)
	b := p.AddActivity("b", 60)
	_ = a
	_ = b
	res, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 60 {
		t.Errorf("makespan = %d, want 60 (parallel)", res.Makespan)
	}
}

func TestThreeWayMutualExclusion(t *testing.T) {
	// Three pairwise-disjoint unit tasks serialize: the optimum orders
	// them back to back.
	p := NewProblem(1)
	ids := []ActID{
		p.AddActivity("x", 4),
		p.AddActivity("y", 6),
		p.AddActivity("z", 5),
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			p.Disjoint(ids[i], ids[j])
		}
	}
	res, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4+6+5+2 {
		t.Errorf("makespan = %d, want 17", res.Makespan)
	}
}

func TestMinimizeBeatsOrEqualsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		p := randomInstance(rng, 6, 4)
		exact, errE := p.Minimize(0)
		greedy, errG := p.Greedy()
		if errE != nil {
			// If the exact solver proves infeasibility, greedy must not
			// find a schedule.
			if errG == nil {
				t.Fatalf("trial %d: exact infeasible but greedy found %v", trial, greedy)
			}
			continue
		}
		if errG == nil && greedy.Makespan < exact.Makespan {
			t.Fatalf("trial %d: greedy %d beat exact %d", trial, greedy.Makespan, exact.Makespan)
		}
		validateSchedule(t, p, exact)
		if errG == nil {
			validateSchedule(t, p, greedy)
		}
	}
}

func TestMinimizeMatchesBruteForceOrder(t *testing.T) {
	// For a fully disjoint set, optimum = sum of durations + gaps
	// regardless of order; check against the analytic optimum.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p := NewProblem(1)
		n := 4
		var total int64
		var ids []ActID
		for i := 0; i < n; i++ {
			d := int64(rng.Intn(20) + 1)
			total += d
			ids = append(ids, p.AddActivity("t", d))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				p.Disjoint(ids[i], ids[j])
			}
		}
		res, err := p.Minimize(0)
		if err != nil {
			t.Fatal(err)
		}
		want := total + int64(n-1)
		if res.Makespan != want {
			t.Errorf("trial %d: makespan %d, want %d", trial, res.Makespan, want)
		}
	}
}

func TestNodeBudget(t *testing.T) {
	p := NewProblem(1)
	var ids []ActID
	for i := 0; i < 8; i++ {
		ids = append(ids, p.AddActivity("t", int64(i+1)))
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			p.Disjoint(ids[i], ids[j])
		}
	}
	res, err := p.Minimize(3)
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatalf("unexpected error: %v", err)
	}
	if err == nil && res.Optimal {
		t.Error("budget-limited search must not claim optimality on this instance")
	}
}

func TestGreedyFeasible(t *testing.T) {
	p := NewProblem(1)
	a := p.AddActivity("a", 10)
	b := p.AddActivity("b", 10)
	c := p.AddActivity("c", 10)
	p.Precede(a, c)
	p.Disjoint(a, b)
	p.Disjoint(b, c)
	res, err := p.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	validateSchedule(t, p, res)
}

// TestMinimizeMatchesExhaustiveOrderings cross-checks the branch-and-
// bound optimum against explicit enumeration of all total orders of the
// disjoint activities on small random instances.
func TestMinimizeMatchesExhaustiveOrderings(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(2) // 3-4 mutually disjoint activities
		durs := make([]int64, n)
		for i := range durs {
			durs[i] = int64(rng.Intn(20) + 1)
		}
		build := func() (*Problem, []ActID) {
			p := NewProblem(1)
			ids := make([]ActID, n)
			for i := range ids {
				ids[i] = p.AddActivity("t", durs[i])
			}
			// A random release forces interesting alignment.
			p.Release(ids[0], int64(rng.Intn(10)))
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					p.Disjoint(ids[i], ids[j])
				}
			}
			return p, ids
		}
		p, _ := build()
		res, err := p.Minimize(0)
		if err != nil {
			t.Fatal(err)
		}
		// Exhaustive: try every permutation as a chain.
		best := int64(-1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var permute func(k int)
		permute = func(k int) {
			if k == n {
				q, qids := build()
				for i := 0; i+1 < n; i++ {
					q.Precede(qids[perm[i]], qids[perm[i+1]])
				}
				r, err := q.Minimize(0)
				if err != nil {
					return
				}
				if best < 0 || r.Makespan < best {
					best = r.Makespan
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				permute(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		permute(0)
		if res.Makespan != best {
			t.Errorf("trial %d: B&B %d, exhaustive %d", trial, res.Makespan, best)
		}
	}
}

// validateSchedule re-checks a Result against the instance's disjunctions
// (precedences are enforced by the STN itself, but the disjunctions are
// resolved by search, so validate them independently).
func validateSchedule(t *testing.T, p *Problem, res Result) {
	t.Helper()
	for _, pair := range p.disj {
		a, b := pair[0], pair[1]
		sa, sb := res.Starts[a], res.Starts[b]
		okAB := sa+p.dur[a]+p.gap <= sb
		okBA := sb+p.dur[b]+p.gap <= sa
		if !okAB && !okBA {
			t.Errorf("disjunction %s/%s violated: %d+%d vs %d+%d",
				p.name[a], p.name[b], sa, p.dur[a], sb, p.dur[b])
		}
	}
	var maxEnd int64
	for i := range res.Starts {
		if e := res.Starts[i] + p.dur[i]; e > maxEnd {
			maxEnd = e
		}
	}
	if maxEnd != res.Makespan {
		t.Errorf("makespan %d does not match schedule end %d", res.Makespan, maxEnd)
	}
}

// randomInstance builds a random DAG of activities with some disjoint
// pairs and occasional deadlines.
func randomInstance(rng *rand.Rand, nAct, nDisj int) *Problem {
	p := NewProblem(1)
	var ids []ActID
	for i := 0; i < nAct; i++ {
		ids = append(ids, p.AddActivity("t", int64(rng.Intn(15)+1)))
	}
	for i := 1; i < nAct; i++ {
		if rng.Float64() < 0.5 {
			p.Precede(ids[rng.Intn(i)], ids[i])
		}
	}
	for k := 0; k < nDisj; k++ {
		i, j := rng.Intn(nAct), rng.Intn(nAct)
		if i != j {
			p.Disjoint(ids[i], ids[j])
		}
	}
	if rng.Float64() < 0.3 {
		p.Deadline(ids[nAct-1], int64(rng.Intn(60)+20))
	}
	return p
}

// TestMinimizeOptimalAtExactBudget pins the boundary semantics of
// maxNodes: a search that finishes using exactly its budget explored
// everything it needed to, so it must still claim optimality. Only an
// actually abandoned branch may clear Optimal.
func TestMinimizeOptimalAtExactBudget(t *testing.T) {
	build := func() (*Problem, []ActID) {
		p := NewProblem(1)
		var ids []ActID
		for i := 0; i < 4; i++ {
			ids = append(ids, p.AddActivity("t", int64(i+1)))
		}
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				p.Disjoint(ids[i], ids[j])
			}
		}
		return p, ids
	}
	ref, _ := build()
	unlimited, err := ref.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !unlimited.Optimal {
		t.Fatal("unlimited search must be optimal")
	}
	// Re-run the identical instance with the budget set to the exact node
	// count the search needs.
	p, _ := build()
	exact, err := p.Minimize(unlimited.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Nodes != unlimited.Nodes {
		t.Fatalf("budgeted run explored %d nodes, unlimited %d", exact.Nodes, unlimited.Nodes)
	}
	if !exact.Optimal {
		t.Errorf("search completing exactly at its %d-node budget must stay Optimal", unlimited.Nodes)
	}
	if exact.Makespan != unlimited.Makespan {
		t.Errorf("budgeted makespan %d != unlimited %d", exact.Makespan, unlimited.Makespan)
	}
	// One node fewer must actually truncate.
	p2, _ := build()
	short, err := p2.Minimize(unlimited.Nodes - 1)
	if err == nil && short.Optimal {
		t.Error("search truncated one node early must not claim optimality")
	}
}

// TestMakespanBoundInfeasibleIsErrBounded distinguishes bound-induced
// infeasibility from genuine infeasibility: incumbent-pruned searches
// need to know the instance might still be feasible without the bound.
func TestMakespanBoundInfeasibleIsErrBounded(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(1)
		a := p.AddActivity("a", 10)
		b := p.AddActivity("b", 20)
		p.Disjoint(a, b)
		return p
	}
	// Optimum is 31; a bound of 30 kills every ordering.
	p := build()
	p.MakespanBound(30)
	if _, err := p.Minimize(0); !errors.Is(err, ErrBounded) {
		t.Errorf("Minimize under a killing bound: %v, want ErrBounded", err)
	}
	if errors.Is(ErrBounded, ErrInfeasible) {
		t.Error("ErrBounded must not alias ErrInfeasible")
	}
	g := build()
	g.MakespanBound(30)
	if _, err := g.Greedy(); !errors.Is(err, ErrBounded) {
		t.Errorf("Greedy under a killing bound: %v, want ErrBounded", err)
	}
	// A bound equal to the optimum stays feasible and optimal.
	q := build()
	q.MakespanBound(31)
	res, err := q.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 31 || !res.Optimal {
		t.Errorf("bound-at-optimum: makespan %d optimal %v, want 31 true", res.Makespan, res.Optimal)
	}
	// Without any bound the same contradiction reports ErrInfeasible.
	r := NewProblem(1)
	a := r.AddActivity("a", 10)
	r.Release(a, 5)
	r.Deadline(a, 10) // cannot fit 10 µs after t=5 before t=10
	if _, err := r.Minimize(0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unbounded contradiction: %v, want ErrInfeasible", err)
	}
}

// TestMinimizeIsRepeatable pins the trail discipline: a full search must
// leave the underlying STN exactly as it found it, so solving the same
// Problem again — or interleaving Greedy and Minimize — yields identical
// results. The core layer relies on this when it probes one instance
// with several strategies.
func TestMinimizeIsRepeatable(t *testing.T) {
	mk := func() *Problem {
		p := NewProblem(1)
		var acts []ActID
		for i := 0; i < 6; i++ {
			acts = append(acts, p.AddActivity("a", int64(10+3*i)))
		}
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				if (i+j)%2 == 0 {
					p.Disjoint(acts[i], acts[j])
				}
			}
		}
		p.Precede(acts[0], acts[3])
		return p
	}
	p := mk()
	r1, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Optimal != r2.Optimal || r1.Nodes != r2.Nodes {
		t.Errorf("re-solve drifted: first %+v, second %+v", r1, r2)
	}
	for i := range r1.Starts {
		if r1.Starts[i] != r2.Starts[i] {
			t.Errorf("Starts[%d] drifted: %d vs %d", i, r1.Starts[i], r2.Starts[i])
		}
	}
	if g.Makespan < r1.Makespan {
		t.Errorf("greedy %d beat exact %d", g.Makespan, r1.Makespan)
	}
}
