// Package figures computes the data behind every table and figure of the
// paper's evaluation (§IV) plus the DESIGN.md ablations, in one place
// shared by the experiment binaries, the runnable examples and the
// benchmark harness. Each function returns structured results; rendering
// belongs to the callers (internal/expt provides the table/series kit).
//
// Experiment index (see DESIGN.md §5):
//
//	E1  Table I    — soft vs weakly-hard scheduling of the same app
//	E2  §IV-A      — schedule validation (eq. 11 soft, eq. 12 weakly hard)
//	E3  Fig. 2     — MIMO makespan vs incremental weakly-hard constraints
//	E4  Fig. 3     — cartpole performance under (m,K) fault injection
//	E5  Fig. 4     — transmission-power design-space exploration
//	A1             — ⊕ abstraction precision vs exact conjunction
//	A2             — per-flood χ tuning vs global-N_TX baseline
//	A3             — exact vs greedy placement
package figures

import (
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/cartpole"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/dse"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/tdma"
	"github.com/netdag/netdag/internal/validate"
	"github.com/netdag/netdag/internal/wh"
)

// Workers is the round-assignment search worker count applied to every
// scheduling problem the experiments build (core.Problem.Workers: 0 =
// GOMAXPROCS, 1 = sequential). The experiment binaries expose it as
// their -workers flag.
var Workers int

// Portfolio enables the racing solver portfolio (core.Problem.Portfolio)
// on every scheduling problem the experiments build. The experiment
// binaries expose it as their -portfolio flag; results are unchanged —
// the portfolio is deterministic and exact.
var Portfolio bool

// solve runs core.Solve with the package-wide Workers and Portfolio
// settings applied.
func solve(p *core.Problem) (*core.Schedule, error) {
	p.Workers = Workers
	p.Portfolio = Portfolio
	return core.Solve(p)
}

// mimoProblem builds the A_MIMO weakly-hard problem with the given
// per-actuator constraints (nil entries mean unconstrained).
func mimoProblem(cons map[dag.TaskID]wh.MissConstraint) (*core.Problem, *dag.Graph, error) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		return nil, nil, err
	}
	p := &core.Problem{
		App:      g,
		Params:   glossy.DefaultParams(),
		Diameter: 4,
		Mode:     core.WeaklyHard,
		WHStat:   glossy.SyntheticWH{},
		WHCons:   cons,
	}
	return p, g, nil
}

// --- E3: Fig. 2 -------------------------------------------------------

// Fig2Point is one bar of fig. 2: the minimum feasible makespan of
// A_MIMO with the first `Constrained` actuators carrying the weakly-hard
// constraint of the given strictness level.
type Fig2Point struct {
	Level       wh.MissConstraint
	Constrained int
	Makespan    int64
}

// Fig2Levels are the strictness levels swept (tightening miss budgets
// over a fixed window; smaller budget = stricter).
func Fig2Levels() []wh.MissConstraint {
	return []wh.MissConstraint{
		{Misses: 32, Window: 40},
		{Misses: 28, Window: 40},
		{Misses: 24, Window: 40},
		{Misses: 20, Window: 40},
	}
}

// Fig2 computes the fig. 2 sweep: for every strictness level, makespan
// as weakly-hard constraints are incrementally applied to 0..4 actuator
// tasks.
func Fig2() ([]Fig2Point, error) {
	var out []Fig2Point
	for _, level := range Fig2Levels() {
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			return nil, err
		}
		acts := apps.Actuators(g)
		for k := 0; k <= len(acts); k++ {
			cons := make(map[dag.TaskID]wh.MissConstraint)
			for _, a := range acts[:k] {
				cons[a] = level
			}
			p, _, err := mimoProblem(cons)
			if err != nil {
				return nil, err
			}
			p.Workers = Workers
			p.Portfolio = Portfolio
			m, err := core.MinMakespan(p)
			if err != nil {
				return nil, fmt.Errorf("figures: fig2 level %v, %d actuators: %w", level, k, err)
			}
			out = append(out, Fig2Point{Level: level, Constrained: k, Makespan: m})
		}
	}
	return out, nil
}

// --- E4: Fig. 3 -------------------------------------------------------

// Fig3Windows and Fig3MaxMisses define the (m, K) grid of fig. 3.
var Fig3Windows = []int{5, 10, 15, 20}

// Fig3MaxMisses is the largest miss budget per window injected.
const Fig3MaxMisses = 6

// Fig3 trains (or reuses) the NN controller and measures mean balanced
// steps per grid cell over the given number of episodes.
func Fig3(episodes int, seed int64) ([]cartpole.Cell, error) {
	ctl, err := cartpole.TrainedController()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	return cartpole.FaultGrid(ctl, cartpole.DefaultParams(), Fig3Windows, Fig3MaxMisses, episodes, rng)
}

// --- E5: Fig. 4 -------------------------------------------------------

// Fig4 runs the §IV-D exploration on A_MIMO with 0.9 soft targets on all
// actuators.
func Fig4() ([]dse.Point, error) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		return nil, err
	}
	cons := make(map[dag.TaskID]float64)
	for _, a := range apps.Actuators(g) {
		cons[a] = 0.9
	}
	cfg := dse.DefaultConfig(g, cons)
	cfg.MobileNodes = 13 // one mobile node per task
	cfg.Workers = Workers
	cfg.Portfolio = Portfolio
	return dse.Explore(cfg)
}

// Fig4Pareto is Fig4 with the Pareto objective: the same sweep, but
// every feasible power setting carries its full energy/latency front —
// the fig. 4 rows extended with the energy axis (DESIGN.md §15). The
// Point summaries are identical to Fig4's.
func Fig4Pareto() ([]dse.QFront, error) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		return nil, err
	}
	cons := make(map[dag.TaskID]float64)
	for _, a := range apps.Actuators(g) {
		cons[a] = 0.9
	}
	cfg := dse.DefaultConfig(g, cons)
	cfg.MobileNodes = 13 // one mobile node per task
	cfg.Workers = Workers
	cfg.Portfolio = Portfolio
	return dse.ExploreFronts(cfg)
}

// --- E5b: diameter sensitivity ------------------------------------------

// DiameterRow is one point of the network-density sensitivity sweep: the
// diameter bound D(N) enters every flood reservation linearly (eq. 3),
// so sparser networks pay for every slot.
type DiameterRow struct {
	Diameter int
	Makespan int64
	BusTime  int64
}

// DiameterSweep schedules A_MIMO under a fixed weakly-hard load across
// diameter bounds — the connectivity half of the fig. 4 tradeoff
// isolated from the statistic.
func DiameterSweep() ([]DiameterRow, error) {
	var out []DiameterRow
	for d := 1; d <= 6; d++ {
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			return nil, err
		}
		cons := make(map[dag.TaskID]wh.MissConstraint)
		for _, a := range apps.Actuators(g) {
			cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
		}
		p := &core.Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: d,
			Mode: core.WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
			GreedyChi: true,
		}
		s, err := solve(p)
		if err != nil {
			return nil, err
		}
		out = append(out, DiameterRow{Diameter: d, Makespan: s.Makespan, BusTime: s.BusTime})
	}
	return out, nil
}

// --- E2: §IV-A validation ---------------------------------------------

// ValidationResult bundles the §IV-A reports for a soft pipeline and the
// weakly-hard A_MIMO.
type ValidationResult struct {
	Soft []validate.SoftReport
	WH   []validate.WHReport
}

// Validation schedules a 3-stage soft pipeline (targets 0.95/0.9) and
// the weakly-hard A_MIMO (budget 20 misses per 40 on each actuator), then
// validates both per eq. (11) and eq. (12).
func Validation(runs int, seed int64) (*ValidationResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &ValidationResult{}

	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		return nil, err
	}
	mid, _ := g.TaskByName("stage1")
	last, _ := g.TaskByName("stage2")
	soft := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{mid.ID: 0.95, last.ID: 0.9},
	}
	ss, err := solve(soft)
	if err != nil {
		return nil, err
	}
	res.Soft, err = validate.SoftAll(soft, ss, runs, rng)
	if err != nil {
		return nil, err
	}

	cons := make(map[dag.TaskID]wh.MissConstraint)
	gm, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		return nil, err
	}
	for _, a := range apps.Actuators(gm) {
		cons[a] = wh.MissConstraint{Misses: 20, Window: 40}
	}
	whp, _, err := mimoProblem(cons)
	if err != nil {
		return nil, err
	}
	ws, err := solve(whp)
	if err != nil {
		return nil, err
	}
	res.WH, err = validate.WHAll(whp, ws, runs, rng)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// --- E1: Table I ------------------------------------------------------

// TableIRow is one paradigm's scheduling outcome for the same pipeline.
type TableIRow struct {
	Paradigm  string
	Guarantee string
	Makespan  int64
	BusTime   int64
}

// TableI schedules the same sense→act pipeline under the Table I example
// constraints — soft "succeeds 84% of the time" vs weakly hard "at least
// 6 in every 10" — and reports both outcomes. (A two-stage app keeps the
// (6,10) budget reachable under the eq. 13 statistic, whose floods
// contribute at least 2 misses each: one message plus one beacon exactly
// saturates the 4-miss budget.)
func TableI() ([]TableIRow, error) {
	g, err := apps.Pipeline(2, 500, 8)
	if err != nil {
		return nil, err
	}
	last, _ := g.TaskByName("stage1")

	soft := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: 0.84},
	}
	ss, err := solve(soft)
	if err != nil {
		return nil, err
	}

	g2, err := apps.Pipeline(2, 500, 8)
	if err != nil {
		return nil, err
	}
	last2, _ := g2.TaskByName("stage1")
	hard := &core.Problem{
		App: g2, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:   core.WeaklyHard,
		WHStat: glossy.SyntheticWH{},
		// Table I: "at least 6 times in every 10" = hit-form (6,10).
		WHCons: map[dag.TaskID]wh.MissConstraint{last2.ID: (wh.Constraint{M: 6, K: 10}).Miss()},
	}
	ws, err := solve(hard)
	if err != nil {
		return nil, err
	}
	return []TableIRow{
		{Paradigm: "soft", Guarantee: "P(success) >= 0.84", Makespan: ss.Makespan, BusTime: ss.BusTime},
		{Paradigm: "weakly hard", Guarantee: "(6,10): >= 6 hits per 10 runs", Makespan: ws.Makespan, BusTime: ws.BusTime},
	}, nil
}

// BridgeRow quantifies the Table I comparison: the probability that a
// task meeting the soft example target (84% i.i.d. success) also
// exhibits the weakly-hard example behaviour ((6,10): at least 6 hits
// per 10 consecutive runs) over a given horizon.
type BridgeRow struct {
	Horizon     int
	Probability float64
}

// TableIBridge computes the soft→weakly-hard bridge with the exact
// automaton DP (wh.SatisfactionProbability): soft guarantees erode over
// long horizons — precisely why the paper argues safety-critical
// applications need weakly-hard constraints enforced by construction
// rather than implied probabilistically.
func TableIBridge() []BridgeRow {
	c := wh.Constraint{M: 6, K: 10} // Table I's weakly-hard example
	const p = 0.84                  // Table I's soft example
	var out []BridgeRow
	for _, n := range []int{10, 50, 100, 500, 1000, 5000} {
		out = append(out, BridgeRow{Horizon: n, Probability: wh.SatisfactionProbability(c, p, n)})
	}
	return out
}

// --- A2: per-flood vs global N_TX --------------------------------------

// A2Row compares NETDAG against the global-N_TX baseline at one
// reliability target.
type A2Row struct {
	Target       float64
	NETDAGBus    int64
	BaselineBus  int64
	NETDAGSpan   int64
	BaselineSpan int64
}

// AblationA2 sweeps soft targets on the A_MIMO actuators and compares bus
// time and makespan against the baseline.
func AblationA2() ([]A2Row, error) {
	var out []A2Row
	for _, target := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			return nil, err
		}
		cons := make(map[dag.TaskID]float64)
		for _, a := range apps.Actuators(g) {
			cons[a] = target
		}
		p := &core.Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 4,
			Mode:     core.Soft,
			SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
			SoftCons: cons,
		}
		nd, err := solve(p)
		if err != nil {
			return nil, err
		}
		base, err := core.GlobalNTXBaseline(p)
		if err != nil {
			return nil, err
		}
		out = append(out, A2Row{
			Target:       target,
			NETDAGBus:    nd.BusTime,
			BaselineBus:  base.BusTime,
			NETDAGSpan:   nd.Makespan,
			BaselineSpan: base.Makespan,
		})
	}
	return out, nil
}

// --- A3: exact vs greedy placement -------------------------------------

// A3Row compares the exact and greedy timing searches on one instance.
type A3Row struct {
	Instance   string
	ExactSpan  int64
	GreedySpan int64
}

// AblationA3 runs both placement strategies on the paper's instances and
// random layered DAGs.
func AblationA3() ([]A3Row, error) {
	var out []A3Row
	run := func(name string, mk func() (*core.Problem, error)) error {
		pe, err := mk()
		if err != nil {
			return err
		}
		se, err := solve(pe)
		if err != nil {
			return err
		}
		pg, err := mk()
		if err != nil {
			return err
		}
		pg.GreedyPlacement = true
		sg, err := solve(pg)
		if err != nil {
			return err
		}
		out = append(out, A3Row{Instance: name, ExactSpan: se.Makespan, GreedySpan: sg.Makespan})
		return nil
	}
	if err := run("mimo", func() (*core.Problem, error) {
		cons := make(map[dag.TaskID]wh.MissConstraint)
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			return nil, err
		}
		for _, a := range apps.Actuators(g) {
			cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
		}
		p, _, err := mimoProblem(cons)
		return p, err
	}); err != nil {
		return nil, err
	}
	for seed := int64(1); seed <= 3; seed++ {
		s := seed
		if err := run(fmt.Sprintf("layered-%d", s), func() (*core.Problem, error) {
			g, err := apps.RandomLayered(3, 3, 2, s)
			if err != nil {
				return nil, err
			}
			return &core.Problem{
				App: g, Params: glossy.DefaultParams(), Diameter: 3,
				Mode:      core.Soft,
				SoftStat:  glossy.BernoulliSoft{PerTX: 0.9},
				SoftCons:  map[dag.TaskID]float64{g.Sinks()[0]: 0.9},
				GreedyChi: true,
			}, nil
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- A4: exact vs greedy χ optimization ---------------------------------

// A4Row compares the exact (branch-and-bound) and greedy χ optimizers on
// one instance: the quality axis complementing A3's placement
// comparison.
type A4Row struct {
	Level     wh.MissConstraint
	ExactBus  int64
	GreedyBus int64
}

// AblationA4 sweeps fig. 2 strictness levels on the fully-constrained
// A_MIMO and reports the reserved bus time under both χ optimizers.
func AblationA4() ([]A4Row, error) {
	var out []A4Row
	for _, level := range Fig2Levels() {
		run := func(greedy bool) (int64, error) {
			g, err := apps.MIMO(apps.DefaultMIMO())
			if err != nil {
				return 0, err
			}
			cons := make(map[dag.TaskID]wh.MissConstraint)
			for _, a := range apps.Actuators(g) {
				cons[a] = level
			}
			p, _, err := mimoProblem(cons)
			if err != nil {
				return 0, err
			}
			p.GreedyChi = greedy
			s, err := solve(p)
			if err != nil {
				return 0, err
			}
			return s.BusTime, nil
		}
		exact, err := run(false)
		if err != nil {
			return nil, err
		}
		greedy, err := run(true)
		if err != nil {
			return nil, err
		}
		out = append(out, A4Row{Level: level, ExactBus: exact, GreedyBus: greedy})
	}
	return out, nil
}

// --- A5: abstract vs clock-accurate bus execution -----------------------

// A5Row reports the deployed end-task hit rate under one guard-time
// provision, against the abstract (clock-free) executor's reference.
type A5Row struct {
	GuardUS    float64 // -1 marks the abstract executor reference row
	HitRate    float64
	BeaconRate float64
	DesyncRate float64
}

// AblationA5 deploys a scheduled pipeline on a lossy line and sweeps the
// guard-time provisioning of the clock-accurate simulator, quantifying
// when the paper's clock-free scheduling abstraction is faithful (ample
// guards) and when it breaks (guards below the drift accumulated between
// beacon captures).
func AblationA5(runs int, seed int64) ([]A5Row, error) {
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		return nil, err
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: 0.85},
	}
	s, err := solve(p)
	if err != nil {
		return nil, err
	}
	topo := network.Line(3, 0.9)
	d, err := lwb.NewDeployment(g, s, topo, p.Params)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var out []A5Row
	// Reference: the abstract executor.
	seqs, err := d.Run(runs, rng)
	if err != nil {
		return nil, err
	}
	out = append(out, A5Row{GuardUS: -1, HitRate: seqs[last.ID].HitRate(), BeaconRate: 1})
	period := s.Makespan + 500_000
	for _, guard := range []float64{0, 25, 100, 500} {
		r, err := sim.NewRunner(d, sim.ClockConfig{DriftPPM: 60, SyncJitterUS: 2, GuardUS: guard}, period)
		if err != nil {
			return nil, err
		}
		res, err := r.Run(runs, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, A5Row{
			GuardUS:    guard,
			HitRate:    res.TaskSeqs[last.ID].HitRate(),
			BeaconRate: res.BeaconCaptureRate,
			DesyncRate: res.DesyncRate,
		})
	}
	return out, nil
}

// --- A6: topology dependence — flooding (LWB) vs routing (TDMA) ---------

// A6Row compares end-to-end delivery of the same application under the
// two communication stacks, on the topology each schedule was designed
// for and on a mutated topology (one link degraded, one new link).
type A6Row struct {
	Stack       string
	DesignRate  float64
	MutatedRate float64
}

// AblationA6 reproduces the paper's motivational claim from §I: TDMA
// schedules are bound to the topology they were computed on, while
// Glossy-flood-based schedules are topology-agnostic.
func AblationA6(runs int, seed int64) ([]A6Row, error) {
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		return nil, err
	}
	design := network.Line(3, 0.9)
	mutated := network.NewTopology(3)
	if err := mutated.AddLink(0, 1, 0.9); err != nil {
		return nil, err
	}
	if err := mutated.AddLink(1, 2, 0.05); err != nil { // node walked away
		return nil, err
	}
	if err := mutated.AddLink(0, 2, 0.9); err != nil { // ...toward n0
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// TDMA stack.
	tdmaSched, err := tdma.Build(g, design, tdma.DefaultParams())
	if err != nil {
		return nil, err
	}
	tdmaDesign, err := tdmaSched.DeliveryRate(design, runs, rng)
	if err != nil {
		return nil, err
	}
	tdmaMutated, err := tdmaSched.DeliveryRate(mutated, runs, rng)
	if err != nil {
		return nil, err
	}

	// LWB/NETDAG stack: schedule once, deploy on both topologies; the
	// end task's hit rate is the comparable end-to-end statistic.
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: 0.95},
	}
	s, err := solve(p)
	if err != nil {
		return nil, err
	}
	lwbRate := func(topo *network.Topology) (float64, error) {
		d, err := lwb.NewDeployment(g, s, topo, p.Params)
		if err != nil {
			return 0, err
		}
		seqs, err := d.Run(runs, rng)
		if err != nil {
			return 0, err
		}
		return seqs[last.ID].HitRate(), nil
	}
	lwbDesign, err := lwbRate(design)
	if err != nil {
		return nil, err
	}
	lwbMutated, err := lwbRate(mutated)
	if err != nil {
		return nil, err
	}
	return []A6Row{
		{Stack: "TDMA (routed)", DesignRate: tdmaDesign, MutatedRate: tdmaMutated},
		{Stack: "LWB (flooded)", DesignRate: lwbDesign, MutatedRate: lwbMutated},
	}, nil
}

// --- A1: ⊕ precision ----------------------------------------------------

// A1Row measures the ⊕ abstraction against the exact worst case for one
// constraint pair.
type A1Row struct {
	X, Y        wh.MissConstraint
	OplusMisses int
	ExactMisses int
}

// AblationA1 compares ⊕ against exact worst-case conjunction analysis on
// a grid of small constraint pairs.
func AblationA1() []A1Row {
	var out []A1Row
	pairs := [][2]wh.MissConstraint{
		{{Misses: 1, Window: 5}, {Misses: 1, Window: 5}},
		{{Misses: 2, Window: 6}, {Misses: 1, Window: 6}},
		{{Misses: 1, Window: 4}, {Misses: 2, Window: 8}},
		{{Misses: 2, Window: 5}, {Misses: 2, Window: 9}},
		{{Misses: 3, Window: 7}, {Misses: 1, Window: 5}},
		{{Misses: 2, Window: 8}, {Misses: 2, Window: 4}},
	}
	for _, pr := range pairs {
		z := wh.Oplus(pr[0], pr[1])
		exact := wh.MaxConjMisses(pr[0], pr[1], z.Window)
		out = append(out, A1Row{X: pr[0], Y: pr[1], OplusMisses: z.Misses, ExactMisses: exact})
	}
	return out
}
