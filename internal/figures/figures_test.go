package figures

import (
	"testing"

	"github.com/netdag/netdag/internal/wh"
)

func TestFig2Shapes(t *testing.T) {
	points, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	levels := Fig2Levels()
	if len(points) != len(levels)*5 {
		t.Fatalf("fig2 has %d points, want %d", len(points), len(levels)*5)
	}
	// Within each level, makespan is non-decreasing in the number of
	// constrained actuators (the paper's first trend).
	byLevel := make(map[wh.MissConstraint][]Fig2Point)
	for _, p := range points {
		byLevel[p.Level] = append(byLevel[p.Level], p)
	}
	for level, ps := range byLevel {
		for i := 1; i < len(ps); i++ {
			if ps[i].Constrained != ps[i-1].Constrained+1 {
				t.Fatalf("level %v: points out of order", level)
			}
			if ps[i].Makespan < ps[i-1].Makespan {
				t.Errorf("level %v: makespan dropped from %d to %d when constraining actuator %d",
					level, ps[i-1].Makespan, ps[i].Makespan, ps[i].Constrained)
			}
		}
	}
	// Across levels at full constraint coverage, stricter levels cost at
	// least as much (the paper's second trend). Levels are ordered
	// loosest first.
	var fullSpan []int64
	for _, level := range levels {
		for _, p := range byLevel[level] {
			if p.Constrained == 4 {
				fullSpan = append(fullSpan, p.Makespan)
			}
		}
	}
	for i := 1; i < len(fullSpan); i++ {
		if fullSpan[i] < fullSpan[i-1] {
			t.Errorf("stricter level got cheaper: %v", fullSpan)
		}
	}
	// The sweep must not be flat: the strictest full assignment must
	// cost strictly more than the unconstrained baseline.
	base := byLevel[levels[0]][0].Makespan
	strictest := fullSpan[len(fullSpan)-1]
	if strictest <= base {
		t.Errorf("constraints never moved the makespan: base %d, strictest %d", base, strictest)
	}
}

func TestFig3Shapes(t *testing.T) {
	cells, err := Fig3(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Index cells by (window, misses).
	grid := make(map[[2]int]float64)
	for _, c := range cells {
		grid[[2]int{c.Window, c.Misses}] = c.MeanSteps
	}
	// Fixed K: performance degrades as m grows (allow small sampling
	// slack; require the ends of each row to be well separated).
	for _, k := range Fig3Windows {
		clean, okC := grid[[2]int{k, 0}]
		worst, okW := grid[[2]int{k, min(Fig3MaxMisses, k-1)}]
		if !okC || !okW {
			t.Fatalf("grid missing ends for window %d", k)
		}
		if worst >= clean {
			t.Errorf("window %d: max faults (%f) not worse than fault-free (%f)", k, worst, clean)
		}
	}
	// Fixed m (use the largest injected budget present in all windows):
	// performance improves as K grows from the smallest to the largest
	// window.
	m := 4
	smallK, bigK := Fig3Windows[0], Fig3Windows[len(Fig3Windows)-1]
	if grid[[2]int{bigK, m}] <= grid[[2]int{smallK, m}] {
		t.Errorf("m=%d: window %d (%f) not better than window %d (%f)",
			m, bigK, grid[[2]int{bigK, m}], smallK, grid[[2]int{smallK, m}])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFig4Shapes(t *testing.T) {
	points, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	var lastLat int64 = -1
	for i, p := range points {
		if i > 0 && p.WorstFSS < points[i-1].WorstFSS-1e-12 {
			t.Errorf("fSS not monotone at Q=%v", p.Q)
		}
		if p.Feasible {
			feasible++
			if lastLat >= 0 && p.Latency > lastLat {
				t.Errorf("latency rose with power at Q=%v", p.Q)
			}
			lastLat = p.Latency
		}
	}
	if feasible < 2 {
		t.Fatalf("only %d feasible power settings; sweep uninformative", feasible)
	}
}

func TestValidationAllPass(t *testing.T) {
	res, err := Validation(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Soft) == 0 || len(res.WH) == 0 {
		t.Fatal("validation produced no reports")
	}
	for _, r := range res.Soft {
		if !r.Pass {
			t.Errorf("soft validation failed for %s: v=%v target=%v", r.Name, r.Statistic, r.Target)
		}
	}
	for _, r := range res.WH {
		if !r.Pass {
			t.Errorf("weakly-hard validation failed for %s: worst %d budget %d",
				r.Name, r.WorstMisses, r.Requirement.Misses)
		}
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("TableI rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Makespan <= 0 || r.BusTime <= 0 {
			t.Errorf("row %s has degenerate schedule: %+v", r.Paradigm, r)
		}
	}
}

func TestTableIBridge(t *testing.T) {
	rows := TableIBridge()
	if len(rows) == 0 {
		t.Fatal("empty bridge")
	}
	prev := 1.0
	for _, r := range rows {
		if r.Probability < 0 || r.Probability > 1 {
			t.Errorf("horizon %d: probability %v out of range", r.Horizon, r.Probability)
		}
		if r.Probability > prev+1e-12 {
			t.Errorf("probability rose with horizon at %d", r.Horizon)
		}
		prev = r.Probability
	}
	// The punchline: over long horizons a soft-0.84 task almost surely
	// violates (6,10) at least once.
	last := rows[len(rows)-1]
	if last.Probability > 0.1 {
		t.Errorf("horizon %d: probability %v still high; bridge shows nothing", last.Horizon, last.Probability)
	}
}

func TestAblationA2NETDAGWins(t *testing.T) {
	rows, err := AblationA2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NETDAGBus > r.BaselineBus {
			t.Errorf("target %v: NETDAG bus %d worse than baseline %d", r.Target, r.NETDAGBus, r.BaselineBus)
		}
	}
	// At some target the per-flood tuning must strictly win, otherwise
	// the ablation shows nothing.
	won := false
	for _, r := range rows {
		if r.NETDAGBus < r.BaselineBus {
			won = true
		}
	}
	if !won {
		t.Error("per-flood tuning never beat the global baseline across the sweep")
	}
}

func TestAblationA3GreedyWithinBounds(t *testing.T) {
	rows, err := AblationA3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GreedySpan < r.ExactSpan {
			t.Errorf("%s: greedy %d beat exact %d (exactness bug)", r.Instance, r.GreedySpan, r.ExactSpan)
		}
		if r.ExactSpan > 0 && float64(r.GreedySpan) > 1.5*float64(r.ExactSpan) {
			t.Errorf("%s: greedy %d more than 1.5x exact %d", r.Instance, r.GreedySpan, r.ExactSpan)
		}
	}
}

func TestAblationA4ExactNeverWorse(t *testing.T) {
	rows, err := AblationA4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig2Levels()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Fig2Levels()))
	}
	for _, r := range rows {
		// The exact optimizer is seeded with the greedy incumbent, so it
		// can never reserve more bus time.
		if r.ExactBus > r.GreedyBus {
			t.Errorf("level %v: exact bus %d worse than greedy %d", r.Level, r.ExactBus, r.GreedyBus)
		}
	}
}

func TestAblationA5GuardSweep(t *testing.T) {
	rows, err := AblationA5(600, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0].GuardUS != -1 {
		t.Fatal("first row must be the abstract reference")
	}
	ref := rows[0].HitRate
	// Generous guards approach the abstract executor; zero guard
	// collapses.
	last := rows[len(rows)-1]
	if last.HitRate < ref-0.15 {
		t.Errorf("500 µs guard hit rate %v far below abstract %v", last.HitRate, ref)
	}
	zero := rows[1]
	if zero.GuardUS != 0 {
		t.Fatalf("second row guard = %v, want 0", zero.GuardUS)
	}
	if zero.HitRate >= last.HitRate {
		t.Errorf("zero guard (%v) not worse than ample guard (%v)", zero.HitRate, last.HitRate)
	}
	// Hit rate is non-decreasing in guard size across the sweep.
	for i := 2; i < len(rows); i++ {
		if rows[i].HitRate < rows[i-1].HitRate-0.05 {
			t.Errorf("hit rate dropped materially from guard %v to %v", rows[i-1].GuardUS, rows[i].GuardUS)
		}
	}
}

func TestDiameterSweepMonotone(t *testing.T) {
	rows, err := DiameterSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Makespan < rows[i-1].Makespan {
			t.Errorf("makespan fell when diameter rose to %d", rows[i].Diameter)
		}
		if rows[i].BusTime <= rows[i-1].BusTime {
			t.Errorf("bus time did not grow when diameter rose to %d", rows[i].Diameter)
		}
	}
}

func TestAblationA6TopologyDependence(t *testing.T) {
	rows, err := AblationA6(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	tdmaRow, lwbRow := rows[0], rows[1]
	// Both stacks work on their design topology.
	if tdmaRow.DesignRate < 0.9 || lwbRow.DesignRate < 0.9 {
		t.Errorf("design-topology rates too low: %+v", rows)
	}
	// The mutation must hurt TDMA badly and LWB barely — the paper's §I
	// claim.
	if tdmaRow.MutatedRate > tdmaRow.DesignRate-0.3 {
		t.Errorf("TDMA insufficiently topology-dependent: %v -> %v", tdmaRow.DesignRate, tdmaRow.MutatedRate)
	}
	if lwbRow.MutatedRate < lwbRow.DesignRate-0.1 {
		t.Errorf("LWB should be topology-agnostic: %v -> %v", lwbRow.DesignRate, lwbRow.MutatedRate)
	}
	if lwbRow.MutatedRate <= tdmaRow.MutatedRate {
		t.Errorf("flooding (%v) should beat routing (%v) after the topology change",
			lwbRow.MutatedRate, tdmaRow.MutatedRate)
	}
}

func TestAblationA1SoundAndTight(t *testing.T) {
	rows := AblationA1()
	tight := 0
	for _, r := range rows {
		if r.ExactMisses > r.OplusMisses {
			t.Errorf("⊕ unsound for %v, %v: exact %d > bound %d", r.X, r.Y, r.ExactMisses, r.OplusMisses)
		}
		if r.ExactMisses == r.OplusMisses {
			tight++
		}
	}
	if tight == 0 {
		t.Error("⊕ never tight on the sample grid")
	}
}
