package validate

import (
	"testing"

	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
)

func TestDeployedSoftValidation(t *testing.T) {
	p, s := solvedSoft(t)
	// A strong topology comfortably carries the schedule's targets.
	topo := network.Line(3, 0.97)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Deployed(p, d, 4000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("task %s failed deployed validation: rate %v target %v (p=%v)",
				r.Name, r.HitRate, r.SoftTarget, r.PValue)
		}
	}
}

func TestDeployedDetectsWeakTopology(t *testing.T) {
	// Deploy the same schedule over much weaker links than it was
	// designed for: the end task must fail its test.
	p, s := solvedSoft(t)
	topo := network.Line(3, 0.45)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Deployed(p, d, 4000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range reports {
		if !r.Pass {
			failed++
		}
	}
	if failed == 0 {
		t.Error("deployed validation passed on a topology far below design assumptions")
	}
}

func TestDeployedWeaklyHard(t *testing.T) {
	p, s := solvedWH(t)
	topo := network.Grid(4, 4, 0.95)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Deployed(p, d, 2000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("actuator %s violated %v on a strong grid: worst %d",
				r.Name, r.WHTarget, r.WorstMisses)
		}
		if r.WorstMisses > r.WHTarget.Misses {
			t.Errorf("bookkeeping: worst %d > budget %d but Pass=%v",
				r.WorstMisses, r.WHTarget.Misses, r.Pass)
		}
	}
}

func TestDeployedValidation(t *testing.T) {
	p, s := solvedSoft(t)
	topo := network.Line(3, 0.9)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deployed(nil, d, 10, testRNG()); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := Deployed(p, d, 0, testRNG()); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := Deployed(p, d, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
