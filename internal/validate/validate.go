// Package validate implements the paper's §IV-A simulation-based
// validation of NETDAG schedules: given a schedule (ζ, χ, l), it samples
// per-predecessor behaviour sequences from the network statistic — i.i.d.
// Bernoulli draws for the soft paradigm (eq. 11), adversarially
// synthesized boundary miss-patterns for the weakly-hard paradigm
// (eq. 12) — composes them by conjunction (ω_τ = ∧_x ω_x), and checks
// the task-level constraints against the composed behaviour.
package validate

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/stats"
	"github.com/netdag/netdag/internal/wh"
)

// SoftReport is the validation outcome for one soft-constrained task.
type SoftReport struct {
	Task      dag.TaskID
	Name      string
	Target    float64 // F_s(τ)
	Scheduled float64 // the guarantee the schedule promises (eq. 6 LHS)
	Statistic float64 // the empirical test statistic v = Σ ω_τ / κ
	Runs      int
	// PValue is the one-sided binomial p-value of H0: P(success) >=
	// Target — the "test for v >= F_s(τ)" the paper's §IV-A constructs.
	PValue float64
	// Pass is true unless H0 is rejected at the 1% level (strong
	// evidence the schedule misses its target).
	Pass bool
}

// WHReport is the validation outcome for one weakly-hard-constrained
// task.
type WHReport struct {
	Task        dag.TaskID
	Name        string
	Requirement wh.MissConstraint // F_WH(τ)
	Guarantee   wh.MissConstraint // ⊕ over pred(τ) (eq. 9 LHS)
	WorstMisses int               // observed worst window misses in ω_τ
	Runs        int
	Pass        bool // ω_τ ⊢ F_WH(τ)
}

// predNTX collects the χ values of pred(τ): ancestor message slots plus
// the beacons of their rounds.
func predNTX(p *core.Problem, s *core.Schedule, id dag.TaskID) []int {
	var out []int
	roundSeen := make(map[int]bool)
	for _, m := range p.App.MsgAncestors(id) {
		ntx, ok := s.SlotNTX(m)
		if !ok {
			continue
		}
		out = append(out, ntx)
		r := s.Assign[m]
		if !roundSeen[r] {
			roundSeen[r] = true
			out = append(out, s.Rounds[r].BeaconNTX)
		}
	}
	return out
}

// SoftTask validates one task over `runs` independent runs per eq. (11).
func SoftTask(p *core.Problem, s *core.Schedule, id dag.TaskID, runs int, rng *rand.Rand) (SoftReport, error) {
	if rng == nil {
		return SoftReport{}, errors.New("validate: nil rng")
	}
	if runs <= 0 {
		return SoftReport{}, fmt.Errorf("validate: runs must be positive, got %d", runs)
	}
	target, ok := p.SoftCons[id]
	if !ok {
		return SoftReport{}, fmt.Errorf("validate: task %d has no soft constraint", id)
	}
	scheduled, err := core.SatisfiedSoft(p, s, id)
	if err != nil {
		return SoftReport{}, err
	}
	rep := SoftReport{
		Task: id, Name: p.App.Task(id).Name,
		Target:    target,
		Scheduled: scheduled,
		Runs:      runs,
	}
	ntxs := predNTX(p, s, id)
	conj := make(wh.Seq, runs)
	for i := range conj {
		conj[i] = true
	}
	for _, n := range ntxs {
		seq, err := wh.Bernoulli(p.SoftStat.SuccessProb(n), runs, rng)
		if err != nil {
			return SoftReport{}, err
		}
		conj = conj.And(seq)
	}
	rep.Statistic = conj.HitRate()
	test, err := stats.TestBelowTarget(conj.Hits(), runs, target, 0.01)
	if err != nil {
		return SoftReport{}, err
	}
	rep.PValue = test.PValue
	rep.Pass = !test.Reject
	return rep, nil
}

// SoftAll validates every soft-constrained task.
func SoftAll(p *core.Problem, s *core.Schedule, runs int, rng *rand.Rand) ([]SoftReport, error) {
	var out []SoftReport
	for _, t := range p.App.Tasks() {
		if _, ok := p.SoftCons[t.ID]; !ok {
			continue
		}
		rep, err := SoftTask(p, s, t.ID, runs, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// WHTask validates one task against adversarial predecessor behaviour:
// each predecessor flood's miss pattern is drawn from the eq. (12)
// boundary set of its scheduled guarantee λ_WH(χ(x)), so the composed
// behaviour is as hostile as the guarantees permit.
func WHTask(p *core.Problem, s *core.Schedule, id dag.TaskID, runs int, rng *rand.Rand) (WHReport, error) {
	if rng == nil {
		return WHReport{}, errors.New("validate: nil rng")
	}
	if runs <= 0 {
		return WHReport{}, fmt.Errorf("validate: runs must be positive, got %d", runs)
	}
	req, ok := p.WHCons[id]
	if !ok {
		return WHReport{}, fmt.Errorf("validate: task %d has no weakly-hard constraint", id)
	}
	rep := WHReport{
		Task: id, Name: p.App.Task(id).Name,
		Requirement: req,
		Runs:        runs,
	}
	guar, has, err := core.SatisfiedWH(p, s, id)
	if err != nil {
		return WHReport{}, err
	}
	if !has {
		// No networked dependencies: the task trivially satisfies.
		rep.Pass = true
		return rep, nil
	}
	rep.Guarantee = guar
	conj := make(wh.Seq, runs)
	for i := range conj {
		conj[i] = true
	}
	for _, n := range predNTX(p, s, id) {
		c := p.WHStat.MissConstraint(n)
		seq, err := wh.SynthesizeRandom(c, runs, rng)
		if err != nil {
			return WHReport{}, err
		}
		conj = conj.And(seq)
	}
	rep.WorstMisses, _ = conj.MaxWindowMisses(req.Window)
	rep.Pass = conj.SatisfiesMiss(req)
	return rep, nil
}

// WHAll validates every weakly-hard-constrained task.
func WHAll(p *core.Problem, s *core.Schedule, runs int, rng *rand.Rand) ([]WHReport, error) {
	var out []WHReport
	for _, t := range p.App.Tasks() {
		if _, ok := p.WHCons[t.ID]; !ok {
			continue
		}
		rep, err := WHTask(p, s, t.ID, runs, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
