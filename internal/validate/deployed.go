package validate

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/stats"
	"github.com/netdag/netdag/internal/wh"
)

// DeployedReport is the end-to-end counterpart of SoftReport/WHReport:
// instead of sampling predecessor behaviour from the network statistic,
// it executes the schedule over a simulated lossy topology and judges the
// observed per-task traces.
type DeployedReport struct {
	Task    dag.TaskID
	Name    string
	HitRate float64
	Runs    int

	// Soft mode: the one-sided binomial test of H0: rate >= target.
	SoftTarget float64
	PValue     float64

	// Weakly-hard mode: worst observed window misses vs the budget.
	WHTarget    wh.MissConstraint
	WorstMisses int

	Pass bool
}

// Deployed runs the deployment `runs` times and validates every
// constrained task of the problem against its target — soft targets via
// the §IV-A hypothesis test at the 1% level, weakly-hard targets via the
// online monitor over the observed trace.
func Deployed(p *core.Problem, d *lwb.Deployment, runs int, rng *rand.Rand) ([]DeployedReport, error) {
	if p == nil || d == nil {
		return nil, errors.New("validate: nil problem or deployment")
	}
	if rng == nil {
		return nil, errors.New("validate: nil rng")
	}
	if runs <= 0 {
		return nil, fmt.Errorf("validate: runs must be positive, got %d", runs)
	}
	seqs, err := d.Run(runs, rng)
	if err != nil {
		return nil, err
	}
	var out []DeployedReport
	for _, t := range p.App.Tasks() {
		switch p.Mode {
		case core.Soft:
			target, ok := p.SoftCons[t.ID]
			if !ok || target <= 0 || target >= 1 {
				continue
			}
			q := seqs[t.ID]
			test, err := stats.TestBelowTarget(q.Hits(), runs, target, 0.01)
			if err != nil {
				return nil, err
			}
			out = append(out, DeployedReport{
				Task: t.ID, Name: t.Name,
				HitRate: q.HitRate(), Runs: runs,
				SoftTarget: target, PValue: test.PValue,
				Pass: !test.Reject,
			})
		case core.WeaklyHard:
			target, ok := p.WHCons[t.ID]
			if !ok || target.Trivial() {
				continue
			}
			q := seqs[t.ID]
			worst, _ := q.MaxWindowMisses(target.Window)
			out = append(out, DeployedReport{
				Task: t.ID, Name: t.Name,
				HitRate: q.HitRate(), Runs: runs,
				WHTarget: target, WorstMisses: worst,
				Pass: q.SatisfiesMiss(target),
			})
		}
	}
	return out, nil
}
