package validate

import (
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(0x7a11d)) }

func solvedSoft(t testing.TB) (*core.Problem, *core.Schedule) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	mid, _ := g.TaskByName("stage1")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{mid.ID: 0.95, last.ID: 0.9},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func solvedWH(t testing.TB) (*core.Problem, *core.Schedule) {
	t.Helper()
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = wh.MissConstraint{Misses: 20, Window: 40}
	}
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: core.WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestSoftValidationPasses(t *testing.T) {
	p, s := solvedSoft(t)
	reports, err := SoftAll(p, s, 20000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("task %s failed soft validation: statistic %v, target %v", r.Name, r.Statistic, r.Target)
		}
		if r.Scheduled < r.Target {
			t.Errorf("task %s scheduled guarantee %v below target %v", r.Name, r.Scheduled, r.Target)
		}
		// The empirical statistic should be near the scheduled product,
		// not just above the (weaker) target.
		if r.Statistic < r.Scheduled-0.05 {
			t.Errorf("task %s statistic %v far below scheduled %v", r.Name, r.Statistic, r.Scheduled)
		}
	}
}

func TestSoftValidationDetectsUnderprovisioning(t *testing.T) {
	// Tamper with the schedule: force every flood to χ=1, which cannot
	// carry a 0.9 end-to-end target through four floods at 0.9 each.
	p, s := solvedSoft(t)
	for i := range s.Rounds {
		s.Rounds[i].BeaconNTX = 1
		for j := range s.Rounds[i].Slots {
			s.Rounds[i].Slots[j].NTX = 1
		}
	}
	last, _ := p.App.TaskByName("stage2")
	rep, err := SoftTask(p, s, last.ID, 20000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Errorf("validation passed a sabotaged schedule: statistic %v, target %v", rep.Statistic, rep.Target)
	}
}

func TestWHValidationPasses(t *testing.T) {
	p, s := solvedWH(t)
	reports, err := WHAll(p, s, 4000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4 actuators", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("actuator %s failed weakly-hard validation under adversarial patterns: worst %d misses per %d, budget %d",
				r.Name, r.WorstMisses, r.Requirement.Window, r.Requirement.Misses)
		}
		if r.WorstMisses > r.Requirement.Misses {
			t.Errorf("actuator %s: worst misses %d exceed budget %d but Pass=%v",
				r.Name, r.WorstMisses, r.Requirement.Misses, r.Pass)
		}
	}
}

func TestWHValidationIsAdversariallyTight(t *testing.T) {
	// The synthesized patterns saturate the guarantees: the observed
	// worst-case miss count should be a substantial fraction of the
	// budget, not ~0 (otherwise the validation would prove nothing).
	p, s := solvedWH(t)
	reports, err := WHAll(p, s, 4000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.WorstMisses == 0 {
			t.Errorf("actuator %s: adversarial validation produced no misses", r.Name)
		}
	}
}

func TestWHValidationDetectsSabotage(t *testing.T) {
	// Force χ=1 everywhere: with the eq. 13 statistic each flood may
	// miss 8 per 20-window; conjunction over several floods blows the
	// 20-per-40 budget.
	p, s := solvedWH(t)
	for i := range s.Rounds {
		s.Rounds[i].BeaconNTX = 1
		for j := range s.Rounds[i].Slots {
			s.Rounds[i].Slots[j].NTX = 1
		}
	}
	failures := 0
	for _, a := range apps.Actuators(p.App) {
		rep, err := WHTask(p, s, a, 4000, testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			failures++
		}
	}
	if failures == 0 {
		t.Error("adversarial validation passed a sabotaged weakly-hard schedule for every actuator")
	}
}

func TestValidationInputChecks(t *testing.T) {
	p, s := solvedSoft(t)
	last, _ := p.App.TaskByName("stage2")
	if _, err := SoftTask(p, s, last.ID, 0, testRNG()); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := SoftTask(p, s, last.ID, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	first, _ := p.App.TaskByName("stage0")
	if _, err := SoftTask(p, s, first.ID, 10, testRNG()); err == nil {
		t.Error("unconstrained task accepted")
	}
}
