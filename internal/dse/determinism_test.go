package dse

import (
	"math"
	"reflect"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
)

// smallExploreConfig builds a sweep sized for CI: a 6-task MIMO app,
// three power settings, a short mobility trace. Small enough to run the
// whole worker/portfolio matrix in seconds, large enough that the
// scheduler has real placement choices to disagree on if determinism
// ever breaks.
func smallExploreConfig(t testing.TB) Config {
	t.Helper()
	g, err := apps.MIMO(apps.MIMOConfig{
		Sensors: 2, Controllers: 2, Actuators: 2,
		SensorWCET: 400, CtrlWCET: 800, ActWCET: 300,
		SensorWidth: 8, CtrlWidth: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]float64)
	for _, a := range apps.Actuators(g) {
		cons[a] = 0.9
	}
	cfg := DefaultConfig(g, cons)
	cfg.MobileNodes = 6
	cfg.Steps = 30
	cfg.Qs = []float64{0.4, 0.7, 1.0}
	return cfg
}

// TestExploreDeterministicAcrossWorkersAndPortfolio pins that the DSE
// sweep is a pure function of (Config minus Workers/Portfolio): the
// parallel outer search and the racing portfolio change how fast the
// answer arrives, never which answer.
func TestExploreDeterministicAcrossWorkersAndPortfolio(t *testing.T) {
	base := smallExploreConfig(t)
	ref, err := Explore(base)
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	for _, p := range ref {
		if p.Feasible {
			feasible++
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible power setting; the variant comparison would be vacuous")
	}
	variants := []struct {
		name      string
		workers   int
		portfolio bool
	}{
		{"workers4", 4, false},
		{"workers1-portfolio", 1, true},
		{"workers4-portfolio", 4, true},
	}
	for _, v := range variants {
		cfg := base
		cfg.Workers = v.workers
		cfg.Portfolio = v.portfolio
		got, err := Explore(cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d points, want %d", v.name, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Errorf("%s: point %d differs:\n got %+v\nwant %+v", v.name, i, got[i], ref[i])
			}
		}
	}
}

// TestExploreFrontsMatchesExplore checks the upgrade contract: the
// QFront summaries are exactly Explore's rows, feasible settings carry a
// valid front anchored at the minimal-latency point, and unusable or
// infeasible settings carry none.
func TestExploreFrontsMatchesExplore(t *testing.T) {
	cfg := smallExploreConfig(t)
	points, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fronts, err := ExploreFronts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fronts) != len(points) {
		t.Fatalf("%d fronts for %d points", len(fronts), len(points))
	}
	for i, qf := range fronts {
		if qf.Point != points[i] {
			t.Errorf("summary %d differs from Explore:\n got %+v\nwant %+v", i, qf.Point, points[i])
		}
		if !qf.Point.Feasible {
			if qf.Front != nil {
				t.Errorf("Q=%v infeasible but carries a front", qf.Point.Q)
			}
			continue
		}
		if len(qf.Front) == 0 {
			t.Errorf("Q=%v feasible but front empty", qf.Point.Q)
			continue
		}
		if qf.Front[0].LatencyUS != qf.Point.Latency {
			t.Errorf("Q=%v: front starts at %d µs, summary latency %d µs",
				qf.Point.Q, qf.Front[0].LatencyUS, qf.Point.Latency)
		}
		// Strictly ascending latency and strictly descending energy —
		// the definition of a dominated-point-free front.
		for j := 1; j < len(qf.Front); j++ {
			if qf.Front[j].LatencyUS <= qf.Front[j-1].LatencyUS {
				t.Errorf("Q=%v: front latency not strictly ascending at %d", qf.Point.Q, j)
			}
			if qf.Front[j].EnergyPC >= qf.Front[j-1].EnergyPC {
				t.Errorf("Q=%v: front energy not strictly descending at %d", qf.Point.Q, j)
			}
		}
		for j, fp := range qf.Front {
			if fp.EnergyPC <= 0 {
				t.Errorf("Q=%v point %d: non-positive EnergyPC %d", qf.Point.Q, j, fp.EnergyPC)
			}
			if fp.ChargeUC <= 0 {
				t.Errorf("Q=%v point %d: non-positive ChargeUC %v", qf.Point.Q, j, fp.ChargeUC)
			}
			// Feasible schedules never leave negative constraint margin.
			if fp.Slack < 0 || math.IsNaN(fp.Slack) {
				t.Errorf("Q=%v point %d: invalid slack %v", qf.Point.Q, j, fp.Slack)
			}
		}
	}
}

// TestExploreFrontsDeterministicAcrossWorkers extends the determinism
// pin to the Pareto path: the full per-setting fronts must be identical
// whether the ε-constraint sweep's inner solves run sequentially, with
// four workers, or under the racing portfolio.
func TestExploreFrontsDeterministicAcrossWorkers(t *testing.T) {
	base := smallExploreConfig(t)
	ref, err := ExploreFronts(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name      string
		workers   int
		portfolio bool
	}{
		{"workers4", 4, false},
		{"workers4-portfolio", 4, true},
	}
	for _, v := range variants {
		cfg := base
		cfg.Workers = v.workers
		cfg.Portfolio = v.portfolio
		got, err := ExploreFronts(cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: fronts differ from sequential reference", v.name)
		}
	}
}
