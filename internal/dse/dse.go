// Package dse implements the paper's §IV-D transmission-power
// design-space exploration workflow (fig. 4): simulate mobile nodes in
// the unit square, profile the worst-case mean filtered signal strength
// fSS̄_i and network diameter D(N)_i per power setting Q_i, build the
// eq. (15) soft statistic from the profile, and query NETDAG for the
// end-to-end latency of the application under each setting — letting the
// designer pick the minimum power that meets a latency requirement.
package dse

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
)

// Config parameterizes an exploration run.
type Config struct {
	App      *dag.Graph             // application to schedule
	SoftCons map[dag.TaskID]float64 // task-level soft constraints F_s
	Params   glossy.Params
	MaxNTX   int

	MobileNodes int     // nodes in the mobility simulation
	Steps       int     // mobility snapshots profiled
	Speed       float64 // random-waypoint speed per step
	Qs          []float64
	Seed        int64
	Workers     int  // scheduler worker count (core.Problem.Workers)
	Portfolio   bool // racing solver portfolio (core.Problem.Portfolio)
}

// DefaultConfig explores ten power settings over a 10-node mobile
// deployment.
func DefaultConfig(app *dag.Graph, cons map[dag.TaskID]float64) Config {
	qs := make([]float64, 10)
	for i := range qs {
		qs[i] = 0.1 * float64(i+1)
	}
	return Config{
		App: app, SoftCons: cons,
		Params:      glossy.DefaultParams(),
		MobileNodes: 10,
		Steps:       60,
		Speed:       0.03,
		Qs:          qs,
		Seed:        2020,
	}
}

// Point is one row of the fig. 4 workflow: the profile of a power setting
// and the application latency NETDAG reports under it, plus the per-node
// radio charge of one schedule execution (the energy axis of the
// power/latency tradeoff §IV-D explores; the radio's TX current scales
// with Q in real hardware, which RadioChargeUC deliberately excludes so
// the two effects — fewer retransmissions vs costlier transmissions —
// can be studied separately).
type Point struct {
	Q             float64
	WorstFSS      float64
	Diameter      int
	Usable        bool  // every mobility snapshot connected
	Latency       int64 // minimal feasible makespan; valid when Feasible
	Feasible      bool
	RadioChargeUC float64 // per-node charge per execution; valid when Feasible
	DutyCycle     float64 // radio-on fraction of the makespan
}

// Explore profiles every power setting over one shared mobility trace and
// queries the scheduler per setting.
func Explore(cfg Config) ([]Point, error) {
	points, _, err := explore(cfg)
	return points, err
}

// explore is the shared sweep behind Explore and ExploreFronts: it
// returns the fig. 4 rows plus, aligned by index, the solved
// core.Problem of each feasible setting (nil for unusable or infeasible
// ones) so front extraction can reuse the exact problem instance.
func explore(cfg Config) ([]Point, []*core.Problem, error) {
	if cfg.App == nil {
		return nil, nil, errors.New("dse: nil application")
	}
	if len(cfg.Qs) == 0 {
		return nil, nil, errors.New("dse: no power settings to explore")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	walker, err := network.NewRandomWaypoint(cfg.MobileNodes, cfg.Speed, rng)
	if err != nil {
		return nil, nil, err
	}
	trace := walker.Walk(cfg.Steps)
	out := make([]Point, 0, len(cfg.Qs))
	probs := make([]*core.Problem, 0, len(cfg.Qs))
	for _, q := range cfg.Qs {
		if q <= 0 || q > 1 {
			return nil, nil, fmt.Errorf("dse: power setting %v outside (0,1]", q)
		}
		prof, err := network.Profile(trace, q)
		if err != nil {
			return nil, nil, err
		}
		pt := Point{Q: q, WorstFSS: prof.WorstFSS, Diameter: prof.Diameter, Usable: prof.AlwaysOK}
		if !prof.AlwaysOK || prof.Diameter < 1 {
			out = append(out, pt) // setting unusable: no latency query
			probs = append(probs, nil)
			continue
		}
		prob := &core.Problem{
			App:       cfg.App,
			Params:    cfg.Params,
			Diameter:  prof.Diameter,
			Mode:      core.Soft,
			SoftStat:  glossy.SigmoidSoft{FSS: prof.WorstFSS},
			SoftCons:  cfg.SoftCons,
			MaxNTX:    cfg.MaxNTX,
			GreedyChi: true, // DSE sweeps many settings; speed over the last µs
			Workers:   cfg.Workers,
			Portfolio: cfg.Portfolio,
		}
		sched, err := core.Solve(prob)
		if err != nil {
			out = append(out, pt)
			probs = append(probs, nil)
			continue
		}
		pt.Latency = sched.Makespan
		pt.Feasible = true
		if rep, err := lwb.DefaultEnergyModel().Evaluate(sched, cfg.Params, prof.Diameter); err == nil {
			pt.RadioChargeUC = rep.ChargeUC
			pt.DutyCycle = rep.RadioDutyCycle
		}
		out = append(out, pt)
		probs = append(probs, prob)
	}
	return out, probs, nil
}

// FrontPoint is one point of a power setting's energy/latency Pareto
// front: the exact (makespan, charge) tradeoff plus the guarantee slack
// the schedule leaves on the task-level constraints — trading latency
// for energy never breaks feasibility, but it can consume margin, and
// the designer wants to see how much.
type FrontPoint struct {
	LatencyUS int64
	EnergyPC  int64   // exact integer charge (core energy accounting)
	ChargeUC  float64 // float reporting model (lwb.EnergyModel)
	// Slack is the tightest constraint margin (core.GuaranteeSlack);
	// +Inf when no constraint binds.
	Slack float64
}

// QFront is one power setting's profile together with its full Pareto
// front — the §IV-D figure extended with the energy axis. Front is nil
// when the setting is unusable or infeasible.
type QFront struct {
	Point Point // the makespan-minimal summary row, as Explore reports it
	Front []FrontPoint
}

// ExploreFronts is Explore with ObjectivePareto: per usable power
// setting it computes the full energy/latency front instead of only the
// minimal-latency point. The Point summaries are identical to
// Explore's (the front's makespan-minimal end is the minimal feasible
// latency), so callers can upgrade without changing the fig. 4 rows.
func ExploreFronts(cfg Config) ([]QFront, error) {
	points, probs, err := explore(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]QFront, len(points))
	for i, pt := range points {
		out[i] = QFront{Point: pt}
		if !pt.Feasible {
			continue
		}
		prob := probs[i]
		prob.Objective = core.ObjectivePareto
		front, err := core.ParetoFront(prob)
		if err != nil {
			return nil, fmt.Errorf("dse: front at Q=%v: %w", pt.Q, err)
		}
		for _, fp := range front {
			rec := FrontPoint{LatencyUS: fp.Makespan, EnergyPC: fp.EnergyPC}
			if rep, err := lwb.DefaultEnergyModel().Evaluate(fp.Sched, cfg.Params, prob.Diameter); err == nil {
				rec.ChargeUC = rep.ChargeUC
			}
			slack, err := core.GuaranteeSlack(prob, fp.Sched)
			if err != nil {
				return nil, fmt.Errorf("dse: slack at Q=%v: %w", pt.Q, err)
			}
			rec.Slack = slack
			out[i].Front = append(out[i].Front, rec)
		}
	}
	return out, nil
}

// MinPowerForLatency returns the smallest explored power setting whose
// latency meets the deadline, or false when none does — the designer's
// final query in the §IV-D workflow.
func MinPowerForLatency(points []Point, deadline int64) (Point, bool) {
	best := Point{}
	found := false
	for _, p := range points {
		if !p.Feasible || p.Latency > deadline {
			continue
		}
		if !found || p.Q < best.Q {
			best = p
			found = true
		}
	}
	return best, found
}
