package dse

import (
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
)

func exploreMIMO(t testing.TB) []Point {
	t.Helper()
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]float64)
	for _, a := range apps.Actuators(g) {
		cons[a] = 0.9
	}
	cfg := DefaultConfig(g, cons)
	cfg.MobileNodes = 13 // one per task, as deployed
	points, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestExploreShapes(t *testing.T) {
	points := exploreMIMO(t)
	if len(points) != 10 {
		t.Fatalf("explored %d settings, want 10", len(points))
	}
	// fSS̄ non-decreasing in Q (fig. 4 left panel).
	for i := 1; i < len(points); i++ {
		if points[i].WorstFSS < points[i-1].WorstFSS-1e-12 {
			t.Errorf("fSS decreased from Q=%v to Q=%v", points[i-1].Q, points[i].Q)
		}
	}
	// Diameter non-increasing over usable settings (fig. 4 middle).
	for i := 1; i < len(points); i++ {
		if points[i-1].Usable && points[i].Usable &&
			points[i].Diameter > points[i-1].Diameter {
			t.Errorf("diameter rose with power at Q=%v", points[i].Q)
		}
	}
	// Latency non-increasing over feasible settings (fig. 4 right).
	var lastLat int64 = -1
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		if lastLat >= 0 && p.Latency > lastLat {
			t.Errorf("latency rose with power at Q=%v: %d after %d", p.Q, p.Latency, lastLat)
		}
		lastLat = p.Latency
	}
	// At least one setting must be feasible — otherwise the workflow
	// demonstrates nothing.
	feasible := 0
	for _, p := range points {
		if p.Feasible {
			feasible++
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible power setting in the sweep")
	}
}

func TestExploreReportsEnergy(t *testing.T) {
	points := exploreMIMO(t)
	var lastCharge float64 = -1
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		if p.RadioChargeUC <= 0 {
			t.Errorf("Q=%v: missing radio charge", p.Q)
		}
		if p.DutyCycle <= 0 || p.DutyCycle > 1 {
			t.Errorf("Q=%v: duty cycle %v outside (0,1]", p.Q, p.DutyCycle)
		}
		// Radio charge tracks bus time, which shrinks with power (at
		// fixed TX current — see the Point doc comment).
		if lastCharge >= 0 && p.RadioChargeUC > lastCharge+1e-9 {
			t.Errorf("radio charge rose with power at Q=%v", p.Q)
		}
		lastCharge = p.RadioChargeUC
	}
}

func TestMinPowerForLatency(t *testing.T) {
	points := exploreMIMO(t)
	// A generous deadline: the minimum feasible Q should be selected.
	best, ok := MinPowerForLatency(points, 1<<40)
	if !ok {
		t.Fatal("no setting meets an effectively unbounded deadline")
	}
	for _, p := range points {
		if p.Feasible && p.Q < best.Q {
			t.Errorf("MinPowerForLatency skipped cheaper feasible Q=%v", p.Q)
		}
	}
	// An impossible deadline.
	if _, ok := MinPowerForLatency(points, 1); ok {
		t.Error("1 µs deadline reported satisfiable")
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	g, _ := apps.Pipeline(2, 100, 4)
	cfg := DefaultConfig(g, nil)
	cfg.Qs = []float64{2}
	if _, err := Explore(cfg); err == nil {
		t.Error("out-of-range power setting accepted")
	}
	cfg2 := DefaultConfig(g, nil)
	cfg2.Qs = nil
	if _, err := Explore(cfg2); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestExploreDeterministicUnderSeed(t *testing.T) {
	a := exploreMIMO(t)
	b := exploreMIMO(t)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("exploration not deterministic at point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
