package sim

import (
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/network"
)

func TestLoadScenario(t *testing.T) {
	sc, err := LoadScenario(strings.NewReader(`{
		"name": "mixed",
		"fades": [{"a": -1, "b": -1, "pGoodBad": 0.1, "pBadGood": 0.5, "badScale": 0.2}],
		"crashes": [{"node": 1, "fromUS": 100, "toUS": 200}],
		"blackouts": [{"fromUS": 0, "toUS": 50}],
		"bursts": [{"fromUS": 10, "toUS": 20, "scale": 0.5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mixed" || len(sc.Fades) != 1 || len(sc.Crashes) != 1 || len(sc.Blackouts) != 1 || len(sc.Bursts) != 1 {
		t.Errorf("scenario not fully parsed: %+v", sc)
	}
	if sc.Empty() {
		t.Error("parsed scenario reported empty")
	}
	if err := sc.Validate(3); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	if _, err := LoadScenario(strings.NewReader(`{"fades": [{"a": 0, "b": 1, "pGoodBad": 0.1, "pBadGood": 0.5, "badScale": 0, "bogus": 1}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{Fades: []LinkFade{{A: 0, B: 3, PBadGood: 1}}},                // link outside topology
		{Fades: []LinkFade{{A: 1, B: 1, PBadGood: 1}}},                // self-link
		{Fades: []LinkFade{{A: 0, B: 1, PGoodBad: 1.5, PBadGood: 1}}}, // probability > 1
		{Fades: []LinkFade{{A: 0, B: 1, PBadGood: 1, BadScale: 1}}},   // badScale must be < 1
		{Crashes: []NodeCrash{{Node: 5, FromUS: 0, ToUS: 10}}},        // node outside topology
		{Crashes: []NodeCrash{{Node: 0, FromUS: 10, ToUS: 10}}},       // empty window
		{Blackouts: []Blackout{{FromUS: -1, ToUS: 10}}},               // negative start
		{Bursts: []InterferenceBurst{{FromUS: 0, ToUS: 5, Scale: 2}}}, // scale must be < 1
	}
	for i, sc := range bad {
		if err := sc.Validate(3); err == nil {
			t.Errorf("case %d: invalid scenario accepted: %+v", i, sc)
		}
	}
	ok := Scenario{Fades: []LinkFade{{A: -1, B: -1, PGoodBad: 0.2, PBadGood: 0.3, BadScale: 0}}}
	if err := ok.Validate(3); err != nil {
		t.Errorf("wildcard fade rejected: %v", err)
	}
	var nilSc *Scenario
	if !nilSc.Empty() {
		t.Error("nil scenario not empty")
	}
}

func TestBlackoutSuppressesEverything(t *testing.T) {
	d := deploy(t, 0.95)
	r, err := NewRunner(d, DefaultClockConfig(), d.Sched.Makespan+10_000)
	if err != nil {
		t.Fatal(err)
	}
	r.Faults = &Scenario{Blackouts: []Blackout{{FromUS: 0, ToUS: 1 << 60}}}
	res, err := r.RunSeeded(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.BeaconCaptureRate != 0 {
		t.Errorf("beacon capture %v under a total blackout", res.BeaconCaptureRate)
	}
	for id, q := range res.TaskSeqs {
		// Source tasks with no networked predecessors still "run"; any
		// task consuming a message must always miss.
		if len(d.App.Preds(id)) > 0 && q.Hits() != 0 {
			t.Errorf("task %v scored %d hits under a total blackout", id, q.Hits())
		}
	}
}

func TestCrashDegradesAndRecovers(t *testing.T) {
	d := deploy(t, 0.95)
	period := d.Sched.Makespan + 10_000
	r, err := NewRunner(d, DefaultClockConfig(), period)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 200
	// Crash the middle relay of the 3-node line for the first half of
	// the timeline; it must rejoin afterwards by capturing a beacon.
	r.Faults = &Scenario{Crashes: []NodeCrash{{Node: 1, FromUS: 0, ToUS: int64(runs/2) * period}}}
	res, err := r.RunSeeded(runs, 7)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := d.App.TaskByName("stage2")
	q := res.TaskSeqs[last.ID]
	crashed, after := q[:runs/2], q[runs/2:]
	if hr := crashed.HitRate(); hr > 0.05 {
		t.Errorf("end task hit rate %v while its relay is down", hr)
	}
	if hr := after.HitRate(); hr < 0.7 {
		t.Errorf("end task hit rate %v after the relay rejoined", hr)
	}
}

func TestFadeBreaksWeaklyHardWindows(t *testing.T) {
	d := deploy(t, 0.95)
	r, err := NewRunner(d, DefaultClockConfig(), d.Sched.Makespan+10_000)
	if err != nil {
		t.Fatal(err)
	}
	// A network-wide chain that is bad a third of the time in ~20-round
	// bursts, fading every link completely.
	r.Faults = &Scenario{Fades: []LinkFade{{A: -1, B: -1, PGoodBad: 0.1, PBadGood: 0.05, BadScale: 0}}}
	res, err := r.RunSeeded(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := d.App.TaskByName("stage2")
	q := res.TaskSeqs[last.ID]
	worst, _ := q.MaxWindowMisses(20)
	// Correlated bursts average 20 rounds: some window of 20 must be
	// nearly all misses — the failure shape independent-loss analysis
	// never predicts at these hit rates.
	if worst < 15 {
		t.Errorf("worst 20-window misses %d; expected a deep correlated burst", worst)
	}
	if q.HitRate() > 0.85 {
		t.Errorf("hit rate %v despite a 1/3 duty-cycle total fade", q.HitRate())
	}
}

func TestFaultedTopology(t *testing.T) {
	topo := network.Line(3, 0.8)
	// Nil masks: identical links and PRRs.
	out := faultedTopology(topo, nil, nil)
	for i := 0; i < 3; i++ {
		for _, j := range topo.Neighbors(i) {
			if out.PRR(i, j) != topo.PRR(i, j) {
				t.Errorf("PRR(%d,%d) = %v, want %v", i, j, out.PRR(i, j), topo.PRR(i, j))
			}
		}
	}
	// Deactivating the middle node removes both its links.
	out = faultedTopology(topo, []bool{true, false, true}, nil)
	if len(out.Neighbors(0)) != 0 || len(out.Neighbors(2)) != 0 {
		t.Errorf("links to a deactivated node survived: %v / %v", out.Neighbors(0), out.Neighbors(2))
	}
	// Zero scale removes links; scale above 1 clamps.
	out = faultedTopology(topo, nil, func(a, b int) float64 { return 0 })
	if len(out.Neighbors(1)) != 0 {
		t.Error("fully faded links survived")
	}
	out = faultedTopology(topo, nil, func(a, b int) float64 { return 10 })
	if got := out.PRR(0, 1); got != 1 {
		t.Errorf("scaled PRR %v not clamped to 1", got)
	}
}

func TestReplicationSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for rep := 0; rep < 1000; rep++ {
		s := ReplicationSeed(42, rep)
		if prev, dup := seen[s]; dup {
			t.Fatalf("replications %d and %d share seed %d", prev, rep, s)
		}
		seen[s] = rep
	}
	if ReplicationSeed(1, 0) == ReplicationSeed(2, 0) {
		t.Error("different master seeds produced the same replication seed")
	}
}
