package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/wh"
)

// Runner executes a deployed schedule repeatedly on a global timeline
// with per-node clocks. The model, following LWB practice:
//
//   - Beacon floods are receivable by every node — a node that has lost
//     synchronization keeps its radio listening to rejoin, so capturing
//     a beacon is how it resynchronizes.
//   - Contention-free slots demand tight alignment: a node participates
//     in a slot flood (as initiator or relay/receiver) only while its
//     clock error fits the guard window.
//   - Clock error accumulates at the node's drift rate between
//     successful beacon captures.
type Runner struct {
	D      *lwb.Deployment
	Clocks ClockConfig
	// PeriodUS is the schedule repetition period; it must cover the
	// makespan.
	PeriodUS int64
}

// NewRunner validates and builds a timing-aware runner.
func NewRunner(d *lwb.Deployment, cfg ClockConfig, periodUS int64) (*Runner, error) {
	if d == nil {
		return nil, errors.New("sim: nil deployment")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if periodUS < d.Sched.Makespan {
		return nil, fmt.Errorf("sim: period %d µs below makespan %d µs", periodUS, d.Sched.Makespan)
	}
	return &Runner{D: d, Clocks: cfg, PeriodUS: periodUS}, nil
}

// Result aggregates a timed simulation.
type Result struct {
	// TaskSeqs is the per-task hit/miss trace across executions.
	TaskSeqs map[dag.TaskID]wh.Seq
	// BeaconCaptureRate is the fraction of (node, round) pairs that
	// captured the beacon.
	BeaconCaptureRate float64
	// DesyncRate is the fraction of (node, round) pairs that entered a
	// round outside the guard window.
	DesyncRate float64
}

// Run executes the schedule `runs` times back to back.
func (r *Runner) Run(runs int, rng *rand.Rand) (*Result, error) {
	if rng == nil {
		return nil, errors.New("sim: Run requires a non-nil rng")
	}
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be positive, got %d", runs)
	}
	d := r.D
	n := d.Topo.NumNodes()
	diam, err := d.Topo.Diameter()
	if err != nil {
		return nil, err
	}
	clocks := make([]*clock, n)
	for i := range clocks {
		clocks[i] = newClock(r.Clocks, rng)
	}
	// Nodes boot synchronized at t=0 (deployment-time sync), matching
	// how an LWB host starts a network.
	for _, c := range clocks {
		c.synced = true
	}
	res := &Result{TaskSeqs: make(map[dag.TaskID]wh.Seq, d.App.NumTasks())}
	for _, t := range d.App.Tasks() {
		res.TaskSeqs[t.ID] = make(wh.Seq, runs)
	}
	var beaconPairs, capturedPairs, desyncPairs int

	for k := 0; k < runs; k++ {
		base := int64(k) * r.PeriodUS
		beaconHeard := make([][]bool, len(d.Sched.Rounds))
		msgDelivered := make(map[dag.MsgID][]bool)
		for ri, round := range d.Sched.Rounds {
			t := base + round.Start
			inGuard := make([]bool, n)
			for v, c := range clocks {
				c.advance(t)
				inGuard[v] = c.inGuard()
				if !inGuard[v] {
					desyncPairs++
				}
			}
			// Beacon flood: receivable by everyone (rejoin path).
			maxSlots := int(d.Params.HopSlots(round.BeaconNTX, diam))
			fr, err := glossy.SimulateFlood(d.Topo, d.Host, round.BeaconNTX, maxSlots, rng)
			if err != nil {
				return nil, err
			}
			beaconHeard[ri] = fr.Received
			beaconPairs += n
			for v, got := range fr.Received {
				if got {
					capturedPairs++
					clocks[v].resync(t, rng)
					inGuard[v] = clocks[v].inGuard()
				}
			}
			// Slot floods over the guard-masked topology.
			masked := maskTopology(d.Topo, inGuard)
			for _, slot := range round.Slots {
				m := d.App.Message(slot.Msg)
				src := d.NodeIndex[d.App.Task(m.Source).Node]
				if !beaconHeard[ri][src] || !inGuard[src] {
					msgDelivered[m.ID] = make([]bool, n)
					continue
				}
				sm := int(d.Params.HopSlots(slot.NTX, diam))
				sf, err := glossy.SimulateFlood(masked, src, slot.NTX, sm, rng)
				if err != nil {
					return nil, err
				}
				// A receiver out of guard cannot capture its slot even
				// if radio waves reached it.
				recv := make([]bool, n)
				for v := range recv {
					recv[v] = sf.Received[v] && inGuard[v]
				}
				msgDelivered[m.ID] = recv
			}
		}
		// Task success, as in the abstract executor.
		order, err := d.App.TopoOrder()
		if err != nil {
			return nil, err
		}
		taskOK := make(map[dag.TaskID]bool, d.App.NumTasks())
		for _, id := range order {
			ok := true
			node := d.NodeIndex[d.App.Task(id).Node]
			for _, p := range d.App.Preds(id) {
				if d.App.OrderOnly(p, id) {
					continue
				}
				if !taskOK[p] {
					ok = false
					break
				}
				if !d.App.ConsumesMessage(p, id) {
					continue
				}
				m, _ := d.App.MessageOf(p)
				if got := msgDelivered[m.ID]; got == nil || !got[node] {
					ok = false
					break
				}
			}
			taskOK[id] = ok
			res.TaskSeqs[id][k] = ok
		}
	}
	if beaconPairs > 0 {
		res.BeaconCaptureRate = float64(capturedPairs) / float64(beaconPairs)
		res.DesyncRate = float64(desyncPairs) / float64(beaconPairs)
	}
	return res, nil
}

// maskTopology returns a copy of topo keeping only links between nodes
// in guard.
func maskTopology(topo *network.Topology, inGuard []bool) *network.Topology {
	n := topo.NumNodes()
	out := network.NewTopology(n)
	for i := 0; i < n; i++ {
		if !inGuard[i] {
			continue
		}
		for _, j := range topo.Neighbors(i) {
			if j > i && inGuard[j] {
				// PRR returns the original quality.
				if err := out.AddLink(i, j, topo.PRR(i, j)); err != nil {
					panic(err) // both endpoints validated above
				}
			}
		}
	}
	return out
}
