package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/wh"
)

// Runner executes a deployed schedule repeatedly on a global timeline
// with per-node clocks. The model, following LWB practice:
//
//   - Beacon floods are receivable by every node — a node that has lost
//     synchronization keeps its radio listening to rejoin, so capturing
//     a beacon is how it resynchronizes.
//   - Contention-free slots demand tight alignment: a node participates
//     in a slot flood (as initiator or relay/receiver) only while its
//     clock error fits the guard window.
//   - Clock error accumulates at the node's drift rate between
//     successful beacon captures.
type Runner struct {
	D      *lwb.Deployment
	Clocks ClockConfig
	// PeriodUS is the schedule repetition period; it must cover the
	// makespan.
	PeriodUS int64
	// Faults optionally injects the deterministic fault scenario into
	// every flood (see faults.go). Nil injects nothing, and the
	// simulation is then draw-for-draw identical to the pre-fault
	// runner. The scenario is read-only during Run and may be shared
	// across concurrently running replications.
	Faults *Scenario
}

// NewRunner validates and builds a timing-aware runner.
func NewRunner(d *lwb.Deployment, cfg ClockConfig, periodUS int64) (*Runner, error) {
	if d == nil {
		return nil, errors.New("sim: nil deployment")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if periodUS < d.Sched.Makespan {
		return nil, fmt.Errorf("sim: period %d µs below makespan %d µs", periodUS, d.Sched.Makespan)
	}
	return &Runner{D: d, Clocks: cfg, PeriodUS: periodUS}, nil
}

// Result aggregates a timed simulation.
type Result struct {
	// TaskSeqs is the per-task hit/miss trace across executions.
	TaskSeqs map[dag.TaskID]wh.Seq
	// BeaconCaptureRate is the fraction of (node, round) pairs that
	// captured the beacon.
	BeaconCaptureRate float64
	// DesyncRate is the fraction of (node, round) pairs that entered a
	// round outside the guard window.
	DesyncRate float64
}

// RunSeeded executes the schedule `runs` times on a fresh PRNG seeded
// with seed. Two RunSeeded calls with equal seeds produce bit-identical
// results; this is the entry point campaign replications use so that no
// PRNG is ever shared between replications.
func (r *Runner) RunSeeded(runs int, seed int64) (*Result, error) {
	return r.Run(runs, rand.New(rand.NewSource(seed)))
}

// Run executes the schedule `runs` times back to back. The rng must not
// be shared with concurrent work: all draws for clocks, floods and fault
// processes come from it in a fixed order, which is what makes the
// result a pure function of the seed.
func (r *Runner) Run(runs int, rng *rand.Rand) (*Result, error) {
	if rng == nil {
		return nil, errors.New("sim: Run requires a non-nil rng")
	}
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs must be positive, got %d", runs)
	}
	d := r.D
	n := d.Topo.NumNodes()
	diam, err := d.Topo.Diameter()
	if err != nil {
		return nil, err
	}
	var inj *injector
	if !r.Faults.Empty() {
		if err := r.Faults.Validate(n); err != nil {
			return nil, err
		}
		inj = newInjector(r.Faults)
	}
	clocks := make([]*clock, n)
	for i := range clocks {
		clocks[i] = newClock(r.Clocks, rng)
	}
	// Nodes boot synchronized at t=0 (deployment-time sync), matching
	// how an LWB host starts a network.
	for _, c := range clocks {
		c.synced = true
	}
	res := &Result{TaskSeqs: make(map[dag.TaskID]wh.Seq, d.App.NumTasks())}
	for _, t := range d.App.Tasks() {
		res.TaskSeqs[t.ID] = make(wh.Seq, runs)
	}
	var beaconPairs, capturedPairs, desyncPairs int

	for k := 0; k < runs; k++ {
		base := int64(k) * r.PeriodUS
		beaconHeard := make([][]bool, len(d.Sched.Rounds))
		msgDelivered := make(map[dag.MsgID][]bool)
		for ri, round := range d.Sched.Rounds {
			t := base + round.Start
			// Fault environment for this round: advance the burst-loss
			// chains, resolve crashed nodes and PRR scaling. A node that
			// is down loses its synchronization state — after the crash
			// window it rejoins the way any desynchronized LWB node does,
			// by capturing a beacon.
			var up []bool                    // nil: everyone up
			var scale func(a, b int) float64 // nil: no PRR scaling
			blackout := false
			if inj != nil {
				inj.roundStart(rng)
				up = make([]bool, n)
				for v := range up {
					up[v] = !inj.nodeDown(v, t)
					if !up[v] {
						clocks[v].synced = false
					}
				}
				scale = func(a, b int) float64 { return inj.linkScale(a, b, t) }
				blackout = inj.blackout(t) || !up[d.Host]
			}
			inGuard := make([]bool, n)
			for v, c := range clocks {
				c.advance(t)
				inGuard[v] = c.inGuard()
				if !inGuard[v] {
					desyncPairs++
				}
			}
			// Beacon flood: receivable by everyone still powered (the
			// rejoin path) — unless the beacon is blacked out or the host
			// itself is down, in which case nobody hears the round layout.
			beaconPairs += n
			if blackout {
				beaconHeard[ri] = make([]bool, n)
			} else {
				btopo := d.Topo
				if inj != nil {
					btopo = faultedTopology(d.Topo, up, scale)
				}
				maxSlots := int(d.Params.HopSlots(round.BeaconNTX, diam))
				fr, err := glossy.SimulateFlood(btopo, d.Host, round.BeaconNTX, maxSlots, rng)
				if err != nil {
					return nil, err
				}
				beaconHeard[ri] = fr.Received
				for v, got := range fr.Received {
					if got && (up == nil || up[v]) {
						capturedPairs++
						clocks[v].resync(t, rng)
						inGuard[v] = clocks[v].inGuard()
					}
				}
			}
			// Slot floods over the guard-masked topology. Crashed nodes
			// are never in guard (their sync state was wiped above), so
			// the guard mask subsumes the crash mask here.
			masked := maskTopology(d.Topo, inGuard, scale)
			for _, slot := range round.Slots {
				m := d.App.Message(slot.Msg)
				src := d.NodeIndex[d.App.Task(m.Source).Node]
				if !beaconHeard[ri][src] || !inGuard[src] {
					msgDelivered[m.ID] = make([]bool, n)
					continue
				}
				sm := int(d.Params.HopSlots(slot.NTX, diam))
				sf, err := glossy.SimulateFlood(masked, src, slot.NTX, sm, rng)
				if err != nil {
					return nil, err
				}
				// A receiver out of guard cannot capture its slot even
				// if radio waves reached it.
				recv := make([]bool, n)
				for v := range recv {
					recv[v] = sf.Received[v] && inGuard[v]
				}
				msgDelivered[m.ID] = recv
			}
		}
		// Task success, as in the abstract executor.
		order, err := d.App.TopoOrder()
		if err != nil {
			return nil, err
		}
		taskOK := make(map[dag.TaskID]bool, d.App.NumTasks())
		for _, id := range order {
			ok := true
			node := d.NodeIndex[d.App.Task(id).Node]
			for _, p := range d.App.Preds(id) {
				if d.App.OrderOnly(p, id) {
					continue
				}
				if !taskOK[p] {
					ok = false
					break
				}
				if !d.App.ConsumesMessage(p, id) {
					continue
				}
				m, _ := d.App.MessageOf(p)
				if got := msgDelivered[m.ID]; got == nil || !got[node] {
					ok = false
					break
				}
			}
			taskOK[id] = ok
			res.TaskSeqs[id][k] = ok
		}
	}
	if beaconPairs > 0 {
		res.BeaconCaptureRate = float64(capturedPairs) / float64(beaconPairs)
		res.DesyncRate = float64(desyncPairs) / float64(beaconPairs)
	}
	return res, nil
}

// maskTopology returns a copy of topo keeping only links between nodes
// in guard, with link PRRs optionally scaled by the fault environment.
func maskTopology(topo *network.Topology, inGuard []bool, scale func(a, b int) float64) *network.Topology {
	return faultedTopology(topo, inGuard, scale)
}
