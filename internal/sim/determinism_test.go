package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunSeededDeterministic guards the campaign engine's replayability
// claim: the same seed must produce bit-identical hit/miss sequences
// across repeated runs — with and without an active fault scenario —
// and across GOMAXPROCS settings, since nothing in a single replication
// may depend on scheduler interleaving.
func TestRunSeededDeterministic(t *testing.T) {
	d := deploy(t, 0.9)
	scenarios := map[string]*Scenario{
		"fault-free": nil,
		"faulted": {
			Fades:   []LinkFade{{A: -1, B: -1, PGoodBad: 0.1, PBadGood: 0.2, BadScale: 0.1}},
			Crashes: []NodeCrash{{Node: 2, FromUS: 50_000, ToUS: 500_000}},
			Bursts:  []InterferenceBurst{{FromUS: 100_000, ToUS: 400_000, Scale: 0.5}},
		},
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			r, err := NewRunner(d, DefaultClockConfig(), d.Sched.Makespan+10_000)
			if err != nil {
				t.Fatal(err)
			}
			r.Faults = sc
			const seed, runs = 0xD5, 120
			ref, err := r.RunSeeded(runs, seed)
			if err != nil {
				t.Fatal(err)
			}
			again, err := r.RunSeeded(runs, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.TaskSeqs, again.TaskSeqs) {
				t.Fatal("same seed, different hit/miss sequences across two runs")
			}
			if ref.BeaconCaptureRate != again.BeaconCaptureRate || ref.DesyncRate != again.DesyncRate {
				t.Fatal("same seed, different aggregate rates")
			}
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			serial, err := r.RunSeeded(runs, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.TaskSeqs, serial.TaskSeqs) {
				t.Fatal("hit/miss sequences changed under GOMAXPROCS=1")
			}
			// A different seed must actually change something, or the
			// determinism above is vacuous.
			other, err := r.RunSeeded(runs, seed+1)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(ref.TaskSeqs, other.TaskSeqs) &&
				ref.BeaconCaptureRate == other.BeaconCaptureRate &&
				ref.DesyncRate == other.DesyncRate {
				t.Error("different seeds produced identical results")
			}
		})
	}
}
