// Package sim adds the timing dimension the abstract bus executor
// (internal/lwb) elides: per-node clock drift, Glossy-based
// resynchronization, and guard times. Glossy's sub-microsecond time
// synchronization is what makes the time-triggered LWB possible at all
// (Ferrari et al., IPSN 2011); this package simulates the failure mode
// the paper's schedules implicitly rely on avoiding — a node whose clock
// has drifted past the guard window can neither transmit in its slot nor
// capture the next beacon, and must rejoin once a beacon gets through.
package sim

import (
	"fmt"
	"math/rand"
)

// ClockConfig models one node population's oscillator quality and the
// host's guard-time provisioning.
type ClockConfig struct {
	// DriftPPM is the worst-case systematic rate error in parts per
	// million (crystal oscillators on sensor nodes are typically
	// 20-100 ppm).
	DriftPPM float64
	// SyncJitterUS is the standard deviation of the residual offset
	// right after a successful beacon resynchronization (Glossy achieves
	// sub-microsecond sync; the default is conservative).
	SyncJitterUS float64
	// GuardUS is the tolerance the round layout budgets around slot
	// boundaries: a node participates in a round only if its clock
	// error is within the guard.
	GuardUS float64
}

// DefaultClockConfig is a CC2420-class deployment: 40 ppm crystals,
// 2 µs post-sync jitter, 500 µs guards.
func DefaultClockConfig() ClockConfig {
	return ClockConfig{DriftPPM: 40, SyncJitterUS: 2, GuardUS: 500}
}

// Validate checks the parameters.
func (c ClockConfig) Validate() error {
	if c.DriftPPM < 0 || c.SyncJitterUS < 0 || c.GuardUS < 0 {
		return fmt.Errorf("sim: invalid clock config %+v", c)
	}
	return nil
}

// RequiredGuardUS returns the guard window that keeps a node within
// alignment even after it misses `missTolerance` consecutive beacons at
// the given schedule period: the drift accumulated over
// (missTolerance+1) periods plus a 4-sigma jitter allowance. The LWB
// host would provision slots with this guard to make the weakly-hard
// beacon bound survivable.
func RequiredGuardUS(cfg ClockConfig, periodUS int64, missTolerance int) float64 {
	if missTolerance < 0 {
		missTolerance = 0
	}
	horizon := float64(periodUS) * float64(missTolerance+1)
	return horizon*cfg.DriftPPM/1e6 + 4*cfg.SyncJitterUS
}

// clock is one node's clock state against global time.
type clock struct {
	cfg      ClockConfig
	drift    float64 // this node's actual rate error (ppm, signed)
	offsetUS float64 // current error vs global time
	lastUS   int64   // global time of the last update
	synced   bool    // has ever synchronized
}

// newClock draws a node clock with a uniformly random signed drift up to
// the configured worst case.
func newClock(cfg ClockConfig, rng *rand.Rand) *clock {
	return &clock{
		cfg:   cfg,
		drift: (rng.Float64()*2 - 1) * cfg.DriftPPM,
	}
}

// advance moves the clock to global time t, accumulating drift.
func (c *clock) advance(t int64) {
	if t < c.lastUS {
		panic("sim: clock moved backwards")
	}
	elapsed := float64(t - c.lastUS)
	c.offsetUS += elapsed * c.drift / 1e6
	c.lastUS = t
}

// errorUS returns the absolute clock error.
func (c *clock) errorUS() float64 {
	if c.offsetUS < 0 {
		return -c.offsetUS
	}
	return c.offsetUS
}

// inGuard reports whether the node's clock error fits the guard window
// (an unsynchronized node never does).
func (c *clock) inGuard() bool {
	return c.synced && c.errorUS() <= c.cfg.GuardUS
}

// resync models a successful beacon capture at global time t.
func (c *clock) resync(t int64, rng *rand.Rand) {
	c.advance(t)
	c.offsetUS = rng.NormFloat64() * c.cfg.SyncJitterUS
	c.synced = true
}
