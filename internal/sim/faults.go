package sim

// This file is the deterministic fault-injection layer: scenario
// primitives composing the correlated failure modes that actually break
// weakly-hard (m,K) guarantees in deployed LWB networks — bursty link
// fades (a Gilbert–Elliott two-state chain), node crash with
// rejoin-after-beacon, host-side beacon blackouts, and wideband
// interference bursts pinned to wall-clock intervals. TTW (Jacob et al.)
// validates time-triggered schedules against exactly these runtime
// effects; here they are injected into the Runner's flood path so the
// campaign engine (internal/campaign) can certify empirical miss streams
// against the constraints the solver promised.
//
// Everything is seeded and fully deterministic: given the same scenario,
// topology, schedule and PRNG seed, a run produces a bit-identical
// hit/miss trace — which is what makes certifier findings replayable
// from the reported seed alone.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"github.com/netdag/netdag/internal/network"
)

// Scenario composes fault primitives. The zero value injects nothing.
// Scenarios are read-only during simulation and safe to share across
// concurrently running replications; all mutable state lives in the
// per-run injector.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Fades are Gilbert–Elliott burst-loss processes on links.
	Fades []LinkFade `json:"fades,omitempty"`
	// Crashes take nodes down over wall-clock windows; a recovered node
	// has lost synchronization and rejoins only by capturing a beacon.
	Crashes []NodeCrash `json:"crashes,omitempty"`
	// Blackouts suppress entire beacon floods over wall-clock windows
	// (host-side jamming or failure: nobody resynchronizes).
	Blackouts []Blackout `json:"blackouts,omitempty"`
	// Bursts scale every link's PRR over wall-clock windows (wideband
	// interference).
	Bursts []InterferenceBurst `json:"bursts,omitempty"`
}

// LinkFade is a correlated burst-loss process following the classic
// Gilbert–Elliott model: a two-state (good/bad) Markov chain advanced
// once per communication round. While the chain is bad, the PRR of every
// covered link is multiplied by BadScale — a window of correlated deep
// fade rather than independent per-packet loss, which is the failure
// shape that defeats (m,K) reasoning based on independent floods.
type LinkFade struct {
	// A, B are topology node indices naming one link; A = B = -1 covers
	// every link (one shared chain: fully correlated network-wide fade).
	A int `json:"a"`
	B int `json:"b"`
	// PGoodBad and PBadGood are the per-round transition probabilities.
	// Their ratio sets the fade duty cycle; PBadGood sets mean burst
	// length (1/PBadGood rounds).
	PGoodBad float64 `json:"pGoodBad"`
	PBadGood float64 `json:"pBadGood"`
	// BadScale in [0, 1) multiplies covered link PRRs while bad
	// (0 = total fade).
	BadScale float64 `json:"badScale"`
}

// NodeCrash takes one node down for [FromUS, ToUS) of the replication's
// global timeline. A down node's radio is silent: it relays nothing,
// receives nothing, and misses beacons. Recovery does not restore
// synchronization — the node rejoins like any desynchronized LWB node,
// by capturing a beacon flood.
type NodeCrash struct {
	Node   int   `json:"node"`
	FromUS int64 `json:"fromUS"`
	ToUS   int64 `json:"toUS"`
}

// Blackout suppresses beacon floods whose round starts in [FromUS, ToUS):
// no node captures the beacon, so no slot in the round is usable and no
// clock resynchronizes.
type Blackout struct {
	FromUS int64 `json:"fromUS"`
	ToUS   int64 `json:"toUS"`
}

// InterferenceBurst scales every link's PRR by Scale for rounds starting
// in [FromUS, ToUS) — an external interferer pinned to wall-clock time.
type InterferenceBurst struct {
	FromUS int64   `json:"fromUS"`
	ToUS   int64   `json:"toUS"`
	Scale  float64 `json:"scale"`
}

// LoadScenario parses a scenario from JSON, rejecting unknown fields.
// Structural validation against a concrete topology happens in Validate
// (called by the Runner), since node counts are not known here.
func LoadScenario(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("sim: parsing fault scenario: %w", err)
	}
	return &sc, nil
}

// Validate checks the scenario against an n-node topology.
func (sc *Scenario) Validate(n int) error {
	for i, f := range sc.Fades {
		wild := f.A == -1 && f.B == -1
		if !wild && (f.A < 0 || f.A >= n || f.B < 0 || f.B >= n || f.A == f.B) {
			return fmt.Errorf("sim: fade %d names invalid link %d-%d in %d-node topology", i, f.A, f.B, n)
		}
		if f.PGoodBad < 0 || f.PGoodBad > 1 || f.PBadGood < 0 || f.PBadGood > 1 {
			return fmt.Errorf("sim: fade %d transition probabilities (%v, %v) outside [0,1]", i, f.PGoodBad, f.PBadGood)
		}
		if f.BadScale < 0 || f.BadScale >= 1 {
			return fmt.Errorf("sim: fade %d badScale %v outside [0,1)", i, f.BadScale)
		}
	}
	for i, c := range sc.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("sim: crash %d names node %d outside [0,%d)", i, c.Node, n)
		}
		if c.FromUS < 0 || c.ToUS <= c.FromUS {
			return fmt.Errorf("sim: crash %d window [%d,%d) is empty or negative", i, c.FromUS, c.ToUS)
		}
	}
	for i, b := range sc.Blackouts {
		if b.FromUS < 0 || b.ToUS <= b.FromUS {
			return fmt.Errorf("sim: blackout %d window [%d,%d) is empty or negative", i, b.FromUS, b.ToUS)
		}
	}
	for i, b := range sc.Bursts {
		if b.FromUS < 0 || b.ToUS <= b.FromUS {
			return fmt.Errorf("sim: burst %d window [%d,%d) is empty or negative", i, b.FromUS, b.ToUS)
		}
		if b.Scale < 0 || b.Scale >= 1 {
			return fmt.Errorf("sim: burst %d scale %v outside [0,1)", i, b.Scale)
		}
	}
	return nil
}

// Empty reports whether the scenario injects nothing.
func (sc *Scenario) Empty() bool {
	return sc == nil || (len(sc.Fades) == 0 && len(sc.Crashes) == 0 &&
		len(sc.Blackouts) == 0 && len(sc.Bursts) == 0)
}

// injector is the per-run mutable fault state. It owns no PRNG of its
// own: it draws from the run's PRNG in a fixed order (one draw per fade
// per round, unconditionally), so the consumption pattern — and hence
// every downstream flood outcome — is a pure function of the seed.
type injector struct {
	sc  *Scenario
	bad []bool // Gilbert–Elliott state per fade entry
}

func newInjector(sc *Scenario) *injector {
	return &injector{sc: sc, bad: make([]bool, len(sc.Fades))}
}

// roundStart advances every fade chain one step. Exactly one uniform
// draw per fade keeps the PRNG stream aligned regardless of chain state.
func (in *injector) roundStart(rng *rand.Rand) {
	for i, f := range in.sc.Fades {
		u := rng.Float64()
		if in.bad[i] {
			in.bad[i] = u >= f.PBadGood
		} else {
			in.bad[i] = u < f.PGoodBad
		}
	}
}

// nodeDown reports whether v is crashed at global time t.
func (in *injector) nodeDown(v int, t int64) bool {
	for _, c := range in.sc.Crashes {
		if c.Node == v && t >= c.FromUS && t < c.ToUS {
			return true
		}
	}
	return false
}

// blackout reports whether a beacon flood starting at t is suppressed.
func (in *injector) blackout(t int64) bool {
	for _, b := range in.sc.Blackouts {
		if t >= b.FromUS && t < b.ToUS {
			return true
		}
	}
	return false
}

// linkScale returns the PRR multiplier for link a-b at global time t:
// the product of every bad fade chain covering the link and every active
// interference burst.
func (in *injector) linkScale(a, b int, t int64) float64 {
	s := 1.0
	for i, f := range in.sc.Fades {
		if !in.bad[i] {
			continue
		}
		if (f.A == -1 && f.B == -1) || (f.A == a && f.B == b) || (f.A == b && f.B == a) {
			s *= f.BadScale
		}
	}
	for _, bu := range in.sc.Bursts {
		if t >= bu.FromUS && t < bu.ToUS {
			s *= bu.Scale
		}
	}
	return s
}

// faultedTopology returns topo restricted to active nodes with each
// surviving link's PRR scaled by scale(a, b); links whose scaled PRR
// drops to zero disappear. A nil active mask keeps every node; a nil
// scale keeps every PRR.
func faultedTopology(topo *network.Topology, active []bool, scale func(a, b int) float64) *network.Topology {
	n := topo.NumNodes()
	out := network.NewTopology(n)
	for i := 0; i < n; i++ {
		if active != nil && !active[i] {
			continue
		}
		for _, j := range topo.Neighbors(i) {
			if j <= i || (active != nil && !active[j]) {
				continue
			}
			prr := topo.PRR(i, j)
			if scale != nil {
				prr *= scale(i, j)
			}
			if prr <= 0 {
				continue
			}
			if prr > 1 {
				prr = 1
			}
			if err := out.AddLink(i, j, prr); err != nil {
				panic(err) // endpoints validated, PRR clamped to (0,1]
			}
		}
	}
	return out
}

// ReplicationSeed derives the PRNG seed of replication rep of a campaign
// with the given master seed, via a SplitMix64 mix. Each replication
// gets an independently seeded PRNG — replications never share a PRNG,
// so parallel campaigns neither race nor perturb determinism, and any
// single replication can be replayed in isolation from (seed, rep).
func ReplicationSeed(seed int64, rep int) int64 {
	z := uint64(seed) + uint64(rep+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
