package sim

import (
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(0x51a)) }

func deploy(t testing.TB, prr float64) *lwb.Deployment {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: prr},
		SoftCons: map[dag.TaskID]float64{last.ID: 0.8},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := lwb.NewDeployment(g, s, network.Line(3, prr), p.Params)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestClockDriftAccumulatesAndResyncs(t *testing.T) {
	rng := testRNG()
	cfg := ClockConfig{DriftPPM: 100, SyncJitterUS: 0, GuardUS: 50}
	c := newClock(cfg, rng)
	c.synced = true
	// Drift magnitude is at most 100 ppm: after 1 s, error <= 100 µs.
	c.advance(1_000_000)
	if c.errorUS() > 100+1e-9 {
		t.Errorf("error %v µs exceeds the drift bound", c.errorUS())
	}
	// Resync clears the offset (zero jitter).
	c.resync(1_000_000, rng)
	if c.errorUS() != 0 {
		t.Errorf("post-resync error %v, want 0", c.errorUS())
	}
	if !c.inGuard() {
		t.Error("freshly synced clock must be in guard")
	}
}

func TestClockMonotonicity(t *testing.T) {
	rng := testRNG()
	c := newClock(DefaultClockConfig(), rng)
	c.advance(10)
	defer func() {
		if recover() == nil {
			t.Error("backwards clock advance did not panic")
		}
	}()
	c.advance(5)
}

func TestNewRunnerValidation(t *testing.T) {
	d := deploy(t, 0.9)
	if _, err := NewRunner(nil, DefaultClockConfig(), 1_000_000); err == nil {
		t.Error("nil deployment accepted")
	}
	if _, err := NewRunner(d, ClockConfig{DriftPPM: -1}, 1_000_000); err == nil {
		t.Error("invalid clocks accepted")
	}
	if _, err := NewRunner(d, DefaultClockConfig(), d.Sched.Makespan-1); err == nil {
		t.Error("period below makespan accepted")
	}
}

func TestTimedRunMatchesAbstractUnderGoodClocks(t *testing.T) {
	// With generous guards, frequent rounds, and strong links, clocking
	// must not change the picture: hit rates stay near the abstract
	// executor's.
	d := deploy(t, 0.95)
	r, err := NewRunner(d, DefaultClockConfig(), d.Sched.Makespan+10_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(1500, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if res.BeaconCaptureRate < 0.9 {
		t.Errorf("beacon capture rate %v suspiciously low", res.BeaconCaptureRate)
	}
	if res.DesyncRate > 0.01 {
		t.Errorf("desync rate %v with healthy clocks", res.DesyncRate)
	}
	last, _ := d.App.TaskByName("stage2")
	if rate := res.TaskSeqs[last.ID].HitRate(); rate < 0.75 {
		t.Errorf("end task hit rate %v under healthy clocks", rate)
	}
}

func TestZeroGuardBreaksSlots(t *testing.T) {
	// A guard of zero with drifting clocks means nodes fall out of
	// alignment as soon as a beacon is missed or jitter lands; end-task
	// success must suffer relative to generous guards.
	d := deploy(t, 0.9)
	period := d.Sched.Makespan + 100_000
	healthy, err := NewRunner(d, ClockConfig{DriftPPM: 40, SyncJitterUS: 2, GuardUS: 500}, period)
	if err != nil {
		t.Fatal(err)
	}
	broken, err := NewRunner(d, ClockConfig{DriftPPM: 40, SyncJitterUS: 2, GuardUS: 0}, period)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := healthy.Run(800, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := broken.Run(800, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	last, _ := d.App.TaskByName("stage2")
	if rb.TaskSeqs[last.ID].HitRate() >= rh.TaskSeqs[last.ID].HitRate() {
		t.Errorf("zero guard (%v) not worse than healthy guard (%v)",
			rb.TaskSeqs[last.ID].HitRate(), rh.TaskSeqs[last.ID].HitRate())
	}
	if rb.DesyncRate <= rh.DesyncRate {
		t.Errorf("zero guard desync rate %v not above healthy %v", rb.DesyncRate, rh.DesyncRate)
	}
}

func TestLongPeriodNeedsBiggerGuard(t *testing.T) {
	// Stretching the period (more drift between beacons) with a tight
	// guard must raise the desync rate.
	d := deploy(t, 0.95)
	cfg := ClockConfig{DriftPPM: 80, SyncJitterUS: 2, GuardUS: 40}
	short, err := NewRunner(d, cfg, d.Sched.Makespan+50_000)
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewRunner(d, cfg, d.Sched.Makespan+3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := short.Run(600, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := long.Run(600, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if rl.DesyncRate <= rs.DesyncRate {
		t.Errorf("long period desync %v not above short period %v", rl.DesyncRate, rs.DesyncRate)
	}
}

func TestRequiredGuard(t *testing.T) {
	cfg := ClockConfig{DriftPPM: 40, SyncJitterUS: 2}
	// One period at 40 ppm over 1 s = 40 µs drift + 8 µs jitter margin.
	if got := RequiredGuardUS(cfg, 1_000_000, 0); got != 48 {
		t.Errorf("RequiredGuardUS = %v, want 48", got)
	}
	// Tolerating 2 missed beacons triples the drift horizon.
	if got := RequiredGuardUS(cfg, 1_000_000, 2); got != 128 {
		t.Errorf("RequiredGuardUS(miss=2) = %v, want 128", got)
	}
	if RequiredGuardUS(cfg, 1_000_000, -5) != RequiredGuardUS(cfg, 1_000_000, 0) {
		t.Error("negative tolerance not clamped")
	}
}

// TestProvisionedGuardSurvivesBeaconLoss closes the loop: provision the
// guard for a 3-miss tolerance with RequiredGuardUS and verify the timed
// simulation stays synchronized even over lossy links that drop beacons.
func TestProvisionedGuardSurvivesBeaconLoss(t *testing.T) {
	d := deploy(t, 0.8) // lossy: beacons will be missed sometimes
	period := d.Sched.Makespan + 1_000_000
	cfg := ClockConfig{DriftPPM: 60, SyncJitterUS: 2}
	cfg.GuardUS = RequiredGuardUS(cfg, period, 3)
	r, err := NewRunner(d, cfg, period)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(800, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if res.DesyncRate > 0.02 {
		t.Errorf("desync rate %v despite provisioned guard %v µs", res.DesyncRate, cfg.GuardUS)
	}
}

func TestRunValidation(t *testing.T) {
	d := deploy(t, 0.9)
	r, err := NewRunner(d, DefaultClockConfig(), d.Sched.Makespan+1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0, testRNG()); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := r.Run(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
