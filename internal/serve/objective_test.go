package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/spec"
)

// objectiveSpec is pipelineSpec with an explicit objective field.
func objectiveSpec(objective string) string {
	base := pipelineSpec(3)
	return strings.Replace(base, `"mode": "weakly-hard",`,
		`"mode": "weakly-hard",
  "objective": "`+objective+`",`, 1)
}

func TestSolveObjectiveSeparatesCacheEntries(t *testing.T) {
	s := New(Config{})
	rm := postSolve(t, s, pipelineSpec(3), "")
	if rm.Code != http.StatusOK {
		t.Fatalf("makespan solve: status %d, body %s", rm.Code, rm.Body)
	}
	re := postSolve(t, s, objectiveSpec("energy"), "")
	if re.Code != http.StatusOK {
		t.Fatalf("energy solve: status %d, body %s", re.Code, re.Body)
	}
	// Different objective ⇒ different fingerprint ⇒ both solves are
	// misses; the cached makespan body must never serve the energy ask.
	if rm.Header().Get(fingerprintHdr) == re.Header().Get(fingerprintHdr) {
		t.Error("energy objective fingerprints identically to makespan")
	}
	if got := re.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("energy solve cache header = %q, want miss", got)
	}
	var out spec.ScheduleOut
	if err := json.Unmarshal(re.Body.Bytes(), &out); err != nil {
		t.Fatalf("energy response is not a ScheduleOut: %v", err)
	}
	if out.EnergyPC <= 0 {
		t.Errorf("energy solve exported EnergyPC %d, want positive", out.EnergyPC)
	}
}

func TestSolveParetoObjectiveServesFront(t *testing.T) {
	s := New(Config{})
	r := postSolve(t, s, objectiveSpec("pareto"), "")
	if r.Code != http.StatusOK {
		t.Fatalf("pareto solve: status %d, body %s", r.Code, r.Body)
	}
	var out spec.ScheduleOut
	if err := json.Unmarshal(r.Body.Bytes(), &out); err != nil {
		t.Fatalf("response is not a ScheduleOut: %v", err)
	}
	if len(out.Front) == 0 {
		t.Fatal("pareto solve returned no front")
	}
	// The body is the front's makespan-minimal point.
	if out.MakespanUS != out.Front[0].MakespanUS || out.EnergyPC != out.Front[0].EnergyPC {
		t.Errorf("body (%d, %d) is not the front's first point (%d, %d)",
			out.MakespanUS, out.EnergyPC, out.Front[0].MakespanUS, out.Front[0].EnergyPC)
	}
	// Non-domination across the served front.
	for i, a := range out.Front {
		if a.Schedule == nil {
			t.Errorf("front point %d carries no schedule", i)
		}
		for j, b := range out.Front {
			if i != j && b.MakespanUS <= a.MakespanUS && b.EnergyPC <= a.EnergyPC {
				t.Errorf("front point %d dominated by point %d", i, j)
			}
		}
	}

	// A repeat is a cache hit with the identical body.
	r2 := postSolve(t, s, objectiveSpec("pareto"), "")
	if got := r2.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("repeat pareto solve cache header = %q, want hit", got)
	}
	if !bytes.Equal(r.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("cached pareto body differs from the original")
	}
}

func TestSolveRejectsUnknownObjective(t *testing.T) {
	s := New(Config{})
	r := postSolve(t, s, objectiveSpec("latency"), "")
	if r.Code != http.StatusBadRequest {
		t.Fatalf("unknown objective: status %d, want 400", r.Code)
	}
}
