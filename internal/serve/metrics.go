package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, log-spaced from "cache-adjacent" to "deadline territory".
var latencyBuckets = [...]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60}

// metrics is the server's observability surface, rendered in Prometheus
// text exposition format by writeProm. Everything is lock-free atomics;
// the histogram tolerates the usual scrape-time skew between bucket
// counts and sum.
type metrics struct {
	cacheHits         atomic.Int64 // served straight from the LRU
	cacheMisses       atomic.Int64 // led a fresh solve (flight leader)
	coalesced         atomic.Int64 // piggybacked on an in-flight identical solve
	admissionRejected atomic.Int64 // 429: queue full
	deadlineExpired   atomic.Int64 // 504: deadline with no incumbent
	solveErrors       atomic.Int64 // 422: infeasible / unsat specs
	badRequests       atomic.Int64 // 400: malformed specs
	incomplete        atomic.Int64 // 200 with a non-optimal incumbent

	certifyRequests      atomic.Int64 // POST /v1/certify requests received
	certifyViolations    atomic.Int64 // constraints flagged as violated across reports
	campaignReplications atomic.Int64 // cumulative campaign replications simulated

	batchRequests atomic.Int64 // POST /v1/solve-batch envelopes accepted
	batchItems    atomic.Int64 // items across accepted batches
	batchDeduped  atomic.Int64 // items answered by another item's solve

	forwarded     atomic.Int64 // solves relayed to their owning peer
	forwardFailed atomic.Int64 // forwards that fell back to a local solve

	warmSeeded atomic.Int64 // solves seeded with a structural-twin warm bound

	journalReplayed  atomic.Int64 // records restored from the journal at startup
	journalSkipped   atomic.Int64 // corrupt journal records dropped during replay
	journalTruncated atomic.Int64 // torn journal tails healed at startup
	journalAppended  atomic.Int64 // complete solves appended to the journal
	journalErrors    atomic.Int64 // journal append failures (solve still served)

	inflight          atomic.Int64 // solves currently running
	queued            atomic.Int64 // solves waiting for a worker slot
	inflightCampaigns atomic.Int64 // certification campaigns currently running

	exploredAssignments atomic.Int64 // cumulative Schedule.Explored
	solverNodes         atomic.Int64 // cumulative Schedule.SolverNodes

	latencyCount atomic.Int64
	latencySumUS atomic.Int64
	latencyBkt   [len(latencyBuckets) + 1]atomic.Int64 // +Inf tail

	// Session re-solve latencies (each solve attempt a live session runs,
	// including safe-table precomputation), same bucket layout.
	resolveCount atomic.Int64
	resolveSumUS atomic.Int64
	resolveBkt   [len(latencyBuckets) + 1]atomic.Int64
}

// observeSolve records one completed (or canceled) solve's wall time.
func (m *metrics) observeSolve(d time.Duration) {
	m.latencyCount.Add(1)
	m.latencySumUS.Add(d.Microseconds())
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.latencyBkt[i].Add(1)
			return
		}
	}
	m.latencyBkt[len(latencyBuckets)].Add(1)
}

// observeSessionResolve records one session re-solve attempt's wall
// time (the session.Config.ObserveResolve hook).
func (m *metrics) observeSessionResolve(d time.Duration) {
	m.resolveCount.Add(1)
	m.resolveSumUS.Add(d.Microseconds())
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.resolveBkt[i].Add(1)
			return
		}
	}
	m.resolveBkt[len(latencyBuckets)].Add(1)
}

// writeProm renders the metrics in Prometheus text exposition format.
// cacheLen and sess are sampled at scrape time.
func (m *metrics) writeProm(w io.Writer, cacheLen int, sess sessionAgg) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("netdag_cache_hits_total", "Solve requests served from the solution cache.", m.cacheHits.Load())
	counter("netdag_cache_misses_total", "Solve requests that led a fresh solve.", m.cacheMisses.Load())
	counter("netdag_solves_coalesced_total", "Solve requests coalesced onto an identical in-flight solve.", m.coalesced.Load())
	counter("netdag_admission_rejected_total", "Solve requests rejected with 429 because the queue was full.", m.admissionRejected.Load())
	counter("netdag_deadline_expired_total", "Solve requests that hit their deadline with no incumbent (504).", m.deadlineExpired.Load())
	counter("netdag_solve_errors_total", "Solve requests whose spec was valid but unsolvable (422).", m.solveErrors.Load())
	counter("netdag_bad_requests_total", "Requests with malformed specs (400).", m.badRequests.Load())
	counter("netdag_solves_incomplete_total", "Solves that returned a non-optimal incumbent at the deadline.", m.incomplete.Load())
	counter("netdag_explored_assignments_total", "Cumulative round assignments examined across solves.", m.exploredAssignments.Load())
	counter("netdag_solver_nodes_total", "Cumulative branch-and-bound nodes spent on winning placements.", m.solverNodes.Load())
	counter("netdag_batch_requests_total", "Batch solve envelopes accepted.", m.batchRequests.Load())
	counter("netdag_batch_items_total", "Items across accepted batch requests.", m.batchItems.Load())
	counter("netdag_batch_deduped_total", "Batch items deduplicated onto another item's solve.", m.batchDeduped.Load())
	counter("netdag_cluster_forwarded_total", "Solves forwarded to their owning peer.", m.forwarded.Load())
	counter("netdag_cluster_forward_failed_total", "Forwards that fell back to a local solve.", m.forwardFailed.Load())
	counter("netdag_warm_seeded_total", "Solves warm-started from a structurally identical cached schedule.", m.warmSeeded.Load())
	counter("netdag_journal_replayed_total", "Cache entries restored from the journal at startup.", m.journalReplayed.Load())
	counter("netdag_journal_skipped_total", "Corrupt journal records dropped during replay.", m.journalSkipped.Load())
	counter("netdag_journal_truncated_total", "Torn journal tails healed at startup.", m.journalTruncated.Load())
	counter("netdag_journal_appended_total", "Complete solves appended to the journal.", m.journalAppended.Load())
	counter("netdag_journal_errors_total", "Journal append failures (the solve was still served).", m.journalErrors.Load())
	counter("netdag_certify_requests_total", "Certification requests received.", m.certifyRequests.Load())
	counter("netdag_certify_violations_total", "Constraints flagged as empirically violated across certification reports.", m.certifyViolations.Load())
	counter("netdag_campaign_replications_total", "Cumulative fault-campaign replications simulated.", m.campaignReplications.Load())
	counter("netdag_session_events_total", "Events applied to scheduler sessions (all outcomes).", sess.stats.Events)
	counter("netdag_session_applied_total", "Session events that committed with a proven replacement schedule.", sess.stats.Applied)
	counter("netdag_session_rejected_total", "Session events rejected (malformed or unprovable workload changes).", sess.stats.Rejected)
	counter("netdag_session_rejected_swaps_total", "Unproven incumbents a session refused to install.", sess.stats.RejectedSwaps)
	counter("netdag_session_fallbacks_total", "Safe-mode installations after failed re-solves.", sess.stats.Fallbacks)
	counter("netdag_session_mode_switches_total", "Transitions between active and degraded operation.", sess.stats.ModeSwitches)
	counter("netdag_session_recoveries_total", "Re-solve successes that retired a degraded mode.", sess.stats.Recoveries)
	counter("netdag_session_resolves_total", "Session re-solve attempts.", sess.stats.Resolves)
	counter("netdag_session_warm_hits_total", "Re-solves whose warm-start bound admitted the new optimum.", sess.stats.WarmHits)
	gauge("netdag_inflight_solves", "Solves currently running.", m.inflight.Load())
	gauge("netdag_inflight_campaigns", "Certification campaigns currently running.", m.inflightCampaigns.Load())
	gauge("netdag_queue_depth", "Solves waiting for a worker slot.", m.queued.Load())
	gauge("netdag_cache_entries", "Entries resident in the solution cache.", int64(cacheLen))
	gauge("netdag_sessions", "Live scheduler sessions.", sess.live)

	fmt.Fprintf(w, "# HELP netdag_solve_seconds Wall time of solves (cache misses only).\n")
	fmt.Fprintf(w, "# TYPE netdag_solve_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.latencyBkt[i].Load()
		fmt.Fprintf(w, "netdag_solve_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.latencyBkt[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "netdag_solve_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "netdag_solve_seconds_sum %g\n", float64(m.latencySumUS.Load())/1e6)
	fmt.Fprintf(w, "netdag_solve_seconds_count %d\n", m.latencyCount.Load())

	fmt.Fprintf(w, "# HELP netdag_session_resolve_seconds Wall time of session re-solve attempts.\n")
	fmt.Fprintf(w, "# TYPE netdag_session_resolve_seconds histogram\n")
	cum = 0
	for i, ub := range latencyBuckets {
		cum += m.resolveBkt[i].Load()
		fmt.Fprintf(w, "netdag_session_resolve_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.resolveBkt[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "netdag_session_resolve_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "netdag_session_resolve_seconds_sum %g\n", float64(m.resolveSumUS.Load())/1e6)
	fmt.Fprintf(w, "netdag_session_resolve_seconds_count %d\n", m.resolveCount.Load())
}

// trimFloat renders a bucket bound without trailing zeros ("0.05", "1").
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
