package serve

// POST /v1/certify: solve a spec, deploy it onto a simulated topology,
// run a deterministic fault-injection campaign against it and answer
// with the certification report (campaign.Report). The endpoint is the
// service-shaped twin of `netdag-sim -campaign -certify`: same campaign
// engine, same certifier, with the server's admission control and
// deadline plumbing wrapped around it.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/netdag/netdag/internal/campaign"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
)

// certifyRequest is the POST /v1/certify body: a problem spec plus
// campaign parameters. Zero-valued knobs get defaults; the topology is a
// clique over the app's nodes at the given PRR.
type certifyRequest struct {
	Spec         spec.File     `json:"spec"`
	Replications int           `json:"replications,omitempty"` // default 100
	Runs         int           `json:"runs,omitempty"`         // default: max(100, largest WH window)
	Seed         int64         `json:"seed,omitempty"`
	PRR          float64       `json:"prr,omitempty"` // default 0.9
	Scenario     *sim.Scenario `json:"scenario,omitempty"`
	Confidence   float64       `json:"confidence,omitempty"` // default campaign.DefaultConfidence
}

// Campaign work is bounded so one request cannot monopolize the server:
// replications × runs is the number of simulated schedule periods.
const (
	maxReplications     = 5000
	maxRunsPerRep       = 50000
	maxSimulatedPeriods = 2_000_000
)

// handleCertify is POST /v1/certify.
func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.certifyRequests.Add(1)

	var req certifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid certify request: %v", err))
		return
	}
	key, err := spec.Fingerprint(&req.Spec)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set(fingerprintHdr, key)
	p, err := spec.Build(&req.Spec)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.cfg.SolveWorkers > 0 {
		p.Workers = s.cfg.SolveWorkers
	}
	if req.Replications == 0 {
		req.Replications = 100
	}
	if req.Runs == 0 {
		req.Runs = 100
		for _, c := range p.WHCons {
			if c.Window > req.Runs {
				req.Runs = c.Window
			}
		}
	}
	if req.PRR == 0 {
		req.PRR = 0.9
	}
	switch {
	case req.Replications < 0 || req.Replications > maxReplications:
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("replications %d outside [1,%d]", req.Replications, maxReplications))
		return
	case req.Runs < 0 || req.Runs > maxRunsPerRep:
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("runs %d outside [1,%d]", req.Runs, maxRunsPerRep))
		return
	case req.Replications*req.Runs > maxSimulatedPeriods:
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("replications × runs %d exceeds budget %d", req.Replications*req.Runs, maxSimulatedPeriods))
		return
	case req.PRR < 0 || req.PRR > 1:
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("prr %v outside [0,1]", req.PRR))
		return
	}

	deadline, err := s.requestDeadline(r)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := s.baseCtx
	cancel := func() {}
	if deadline > 0 {
		ctx, cancel = context.WithDeadline(s.baseCtx, start.Add(deadline))
	}
	defer cancel()

	// Admission: a certification occupies one worker slot end to end
	// (solve + campaign), sharing the solve budget and queue bounds.
	if res, ok := s.admit(ctx); !ok {
		s.relay(w, res, "")
		return
	}
	defer func() { <-s.sem }()

	s.metrics.inflightCampaigns.Add(1)
	defer s.metrics.inflightCampaigns.Add(-1)

	sched, err := s.solve(ctx, p)
	if err != nil {
		// Unlike /v1/solve, a deadline-interrupted incumbent is not
		// acceptable here: certifying a non-final schedule would pin the
		// report to a schedule the solver would not actually emit.
		s.metrics.solveErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	topo := network.Clique(len(p.App.Nodes()), req.PRR)
	d, err := lwb.NewDeployment(p.App, sched, topo, p.Params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := campaign.RunContext(ctx, d, campaign.Config{
		Replications: req.Replications,
		Runs:         req.Runs,
		Seed:         req.Seed,
		Workers:      s.cfg.SolveWorkers,
		Scenario:     req.Scenario,
		Clocks:       sim.DefaultClockConfig(),
	})
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.deadlineExpired.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline expired during the campaign")
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.campaignReplications.Add(int64(req.Replications))
	rep, err := campaign.Certify(p, res, req.Confidence)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.certifyViolations.Add(int64(rep.Violations))
	body, err := json.Marshal(rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body, "")
}

// admit takes a worker slot, or queues for one within the server's
// bounds. On failure it returns the result to relay (429 or 504) and
// false; on success the caller owns one sem slot.
func (s *Server) admit(ctx context.Context) (solveResult, bool) {
	select {
	case s.sem <- struct{}{}:
		s.admitted()
		return solveResult{}, true
	default:
	}
	if q := s.metrics.queued.Add(1); q > int64(s.cfg.QueueDepth) {
		s.metrics.queued.Add(-1)
		s.metrics.admissionRejected.Add(1)
		return solveResult{status: http.StatusTooManyRequests,
			body: errorBody("solve queue full; retry later")}, false
	}
	select {
	case s.sem <- struct{}{}:
		s.metrics.queued.Add(-1)
		s.admitted()
		return solveResult{}, true
	case <-ctx.Done():
		s.metrics.queued.Add(-1)
		s.metrics.deadlineExpired.Add(1)
		return errorResult(http.StatusGatewayTimeout, "deadline expired while queued"), false
	}
}
