package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/cluster"
	"github.com/netdag/netdag/internal/spec"
)

// testCluster wires n Servers into a consistent-hash cluster over
// httptest listeners. The listener URLs must exist before the serve
// Configs can name them, so each listener dispatches through a slot
// that is filled in once its Server is built.
type testCluster struct {
	names   []string
	servers []*Server
	https   []*httptest.Server
}

func newTestCluster(t *testing.T, n int, mut func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	slots := make([]*Server, n)
	peers := map[string]string{}
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			slots[i].ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		tc.https = append(tc.https, ts)
		name := fmt.Sprintf("peer%d", i)
		tc.names = append(tc.names, name)
		peers[name] = ts.URL
	}
	for i := 0; i < n; i++ {
		cfg := Config{Cluster: cluster.Config{Self: tc.names[i], Peers: peers}}
		if mut != nil {
			mut(i, &cfg)
		}
		slots[i] = New(cfg)
		tc.servers = append(tc.servers, slots[i])
	}
	return tc
}

// specOwnedBy scans diameters until it finds a pipeline spec whose
// fingerprint the ring assigns to the wanted peer, returning the spec
// and its fingerprint.
func (tc *testCluster) specOwnedBy(t *testing.T, want string) (string, string) {
	t.Helper()
	ring := cluster.NewRing(cluster.DefaultReplicas, tc.names...)
	for d := 3; d < 80; d++ {
		body := pipelineSpec(d)
		var f spec.File
		if err := json.Unmarshal([]byte(body), &f); err != nil {
			t.Fatal(err)
		}
		key, err := spec.Fingerprint(&f)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == want {
			return body, key
		}
	}
	t.Fatalf("no pipeline spec owned by %s in diameter range", want)
	return "", ""
}

// TestClusterForwardsToOwner: a solve posted to a non-owner is relayed
// one hop to the owning peer, lands in the owner's cache (not the
// relay's), and the response names the peer that served it.
func TestClusterForwardsToOwner(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	body, key := tc.specOwnedBy(t, "peer1")

	r := postSolve(t, tc.servers[0], body, "")
	if r.Code != http.StatusOK {
		t.Fatalf("forwarded solve: status %d, body %s", r.Code, r.Body)
	}
	if got := r.Header().Get(cacheHeader); got != "remote" {
		t.Errorf("cache header = %q, want remote", got)
	}
	if got := r.Header().Get(peerHeader); got != "peer1" {
		t.Errorf("peer header = %q, want peer1", got)
	}
	if tc.servers[0].metrics.forwarded.Load() != 1 {
		t.Error("relay did not count the forward")
	}
	if _, ok := tc.servers[0].cache.get(key); ok {
		t.Error("relay cached a remotely owned result")
	}
	remoteBody, ok := tc.servers[1].cache.get(key)
	if !ok {
		t.Fatal("owner did not cache the solve")
	}
	if string(remoteBody) != r.Body.String() {
		t.Error("relayed body differs from the owner's cached body")
	}
	if tc.servers[1].metrics.cacheMisses.Load() != 1 {
		t.Error("owner did not lead the solve")
	}

	// Asking the relay again re-forwards and hits the owner's cache.
	r2 := postSolve(t, tc.servers[0], body, "")
	if r2.Code != http.StatusOK || r2.Body.String() != r.Body.String() {
		t.Fatalf("second forwarded solve: status %d", r2.Code)
	}
	if tc.servers[1].metrics.cacheHits.Load() != 1 {
		t.Error("owner did not serve the repeat from cache")
	}
	// Asking the owner directly yields the byte-identical schedule.
	r3 := postSolve(t, tc.servers[1], body, "")
	if r3.Body.String() != r.Body.String() {
		t.Error("owner-direct body differs from forwarded body")
	}
}

// TestClusterSingleHop: a request that already took its cluster hop is
// never forwarded again, even when this instance does not own the key —
// routing cannot loop while peers disagree about membership.
func TestClusterSingleHop(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	body, _ := tc.specOwnedBy(t, "peer1")

	// Post to the NON-owner with the forwarded marker already set, as a
	// confused peer would.
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	req.Header.Set(forwardedHeader, "peer1")
	r := httptest.NewRecorder()
	tc.servers[0].ServeHTTP(r, req)
	if r.Code != http.StatusOK {
		t.Fatalf("marked request: status %d, body %s", r.Code, r.Body)
	}
	if got := r.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("cache header = %q, want miss (solved locally, no second hop)", got)
	}
	if r.Header().Get(peerHeader) != "" {
		t.Error("single-hop request still carries a peer header")
	}
	if tc.servers[0].metrics.forwarded.Load() != 0 {
		t.Error("marked request was forwarded again")
	}
	if tc.servers[1].metrics.cacheMisses.Load() != 0 {
		t.Error("owner saw traffic for a request that must stay local")
	}
}

// TestClusterPeerDownFallsBackLocal: an unreachable owner degrades to a
// local solve (counted as a failed forward), and the result enters the
// local cache so repeats during the outage are hits.
func TestClusterPeerDownFallsBackLocal(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	body, key := tc.specOwnedBy(t, "peer1")
	tc.https[1].Close() // owner down

	r := postSolve(t, tc.servers[0], body, "")
	if r.Code != http.StatusOK {
		t.Fatalf("fallback solve: status %d, body %s", r.Code, r.Body)
	}
	if got := r.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("cache header = %q, want miss (local fallback)", got)
	}
	if tc.servers[0].metrics.forwardFailed.Load() != 1 {
		t.Error("failed forward not counted")
	}
	if _, ok := tc.servers[0].cache.get(key); !ok {
		t.Fatal("fallback solve not cached locally")
	}
	// Repeat during the outage: local read-through, no forwarding
	// attempt against the dead peer.
	r2 := postSolve(t, tc.servers[0], body, "")
	if got := r2.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("repeat cache header = %q, want hit", got)
	}
	if tc.servers[0].metrics.forwardFailed.Load() != 1 {
		t.Error("cache hit still attempted a forward")
	}
}

// TestClusterOwnerSolvesLocally: the owner of a key serves it without
// any relaying, whether or not the cluster is configured.
func TestClusterOwnerSolvesLocally(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	body, _ := tc.specOwnedBy(t, "peer0")

	r := postSolve(t, tc.servers[0], body, "")
	if r.Code != http.StatusOK {
		t.Fatalf("owner solve: status %d", r.Code)
	}
	if got := r.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("cache header = %q, want miss", got)
	}
	if tc.servers[0].metrics.forwarded.Load() != 0 {
		t.Error("owner forwarded its own key")
	}
}

// TestClusterForwardedDeadline: the relay hands the owner the remaining
// deadline budget, so owner-side incumbent-at-deadline semantics reach
// the caller (here: an expired budget surfaces as the relay's own 504
// without a wire hop).
func TestClusterForwardedDeadline(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	body, _ := tc.specOwnedBy(t, "peer1")

	r := postSolve(t, tc.servers[0], body, "?deadline=1ns")
	if r.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline forward: status %d, want 504", r.Code)
	}
	if tc.servers[1].metrics.cacheMisses.Load() != 0 {
		t.Error("expired request still reached the owner")
	}
}

// TestClusterBatchRoutesPerItem: batch items route independently — each
// unique spec is served by its owner and the response labels remote
// items with the serving peer.
func TestClusterBatchRoutesPerItem(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	local, _ := tc.specOwnedBy(t, "peer0")
	remote, _ := tc.specOwnedBy(t, "peer1")

	out := decodeBatch(t, postBatch(t, tc.servers[0], batchOf(local, remote), ""))
	byPeer := map[string]int{}
	for i, item := range out.Items {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, item.Status, item.Error)
		}
		byPeer[item.Peer]++
	}
	if byPeer[""] != 1 || byPeer["peer1"] != 1 {
		t.Fatalf("peer labels = %v, want one local and one peer1", byPeer)
	}
	if tc.servers[0].metrics.forwarded.Load() != 1 {
		t.Errorf("forwarded = %d, want 1", tc.servers[0].metrics.forwarded.Load())
	}
}

// TestClusterInvalidConfigRunsUnclustered: a ring whose Self is not a
// member is refused at construction; the server still serves, just
// without forwarding.
func TestClusterInvalidConfigRunsUnclustered(t *testing.T) {
	s := New(Config{Cluster: cluster.Config{
		Self:  "ghost",
		Peers: map[string]string{"a": "http://localhost:1"},
	}})
	if s.clust != nil {
		t.Fatal("invalid cluster config was accepted")
	}
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Code != http.StatusOK {
		t.Fatalf("unclustered fallback: status %d", r.Code)
	}
}
