package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/spec"
)

// TestLRUEvictionOrder is a table-driven check of the cache's eviction
// policy, including the degenerate capacity-1 cache where every distinct
// put evicts the previous entry.
func TestLRUEvictionOrder(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		ops      []string // "put:K" or "get:K"
		want     []string // keys that must be resident afterwards
		wantGone []string // keys that must have been evicted
	}{
		{
			name:     "capacity 1 keeps only the newest",
			capacity: 1,
			ops:      []string{"put:a", "put:b", "put:c"},
			want:     []string{"c"},
			wantGone: []string{"a", "b"},
		},
		{
			name:     "capacity 1 re-put refreshes in place",
			capacity: 1,
			ops:      []string{"put:a", "put:a", "put:a"},
			want:     []string{"a"},
		},
		{
			name:     "get refreshes recency before eviction",
			capacity: 2,
			ops:      []string{"put:a", "put:b", "get:a", "put:c"},
			want:     []string{"a", "c"},
			wantGone: []string{"b"}, // b was least recently used, not a
		},
		{
			name:     "untouched oldest entry is the victim",
			capacity: 2,
			ops:      []string{"put:a", "put:b", "put:c"},
			want:     []string{"b", "c"},
			wantGone: []string{"a"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newLRUCache(tc.capacity)
			for _, op := range tc.ops {
				key := op[4:]
				switch op[:4] {
				case "put:":
					c.put(key, "", 0, []byte(key))
				case "get:":
					c.get(key)
				}
			}
			if c.len() > tc.capacity {
				t.Fatalf("cache holds %d entries, capacity %d", c.len(), tc.capacity)
			}
			for _, k := range tc.want {
				if _, ok := c.get(k); !ok {
					t.Errorf("key %q missing", k)
				}
			}
			for _, k := range tc.wantGone {
				if _, ok := c.get(k); ok {
					t.Errorf("key %q not evicted", k)
				}
			}
		})
	}
}

// TestCapacityOneServerEviction drives the eviction through the HTTP
// layer: with one cache slot, alternating distinct specs never hit.
func TestCapacityOneServerEviction(t *testing.T) {
	s := New(Config{CacheEntries: 1})
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("first spec: header %q, want miss", r.Header().Get(cacheHeader))
	}
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("repeat while resident: header %q, want hit", r.Header().Get(cacheHeader))
	}
	if r := postSolve(t, s, pipelineSpec(4), ""); r.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("second spec: header %q, want miss", r.Header().Get(cacheHeader))
	}
	// The first spec was evicted by the second: full solve again.
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("evicted spec: header %q, want miss", r.Header().Get(cacheHeader))
	}
	if s.cache.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", s.cache.len())
	}
}

// TestCoalescedFollowersSeeLeaderCancellation: followers that coalesced
// onto a flight whose leader's solve is canceled mid-flight (deadline,
// no incumbent) must all receive the leader's 504 — and the flight must
// be cleaned up so the next identical request starts fresh.
func TestCoalescedFollowersSeeLeaderCancellation(t *testing.T) {
	entered := make(chan struct{})
	var once sync.Once
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			once.Do(func() { close(entered) })
			<-ctx.Done() // canceled mid-flight by the leader's deadline
			return nil, core.ErrCanceled
		},
	})
	var wg sync.WaitGroup
	var leaderCode int
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := postSolve(t, s, pipelineSpec(3), "?deadline=100ms")
		leaderCode = r.Code
	}()
	<-entered // leader owns the flight and is inside the solve

	const followers = 2
	codes := make([]int, followers)
	headers := make([]string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := postSolve(t, s, pipelineSpec(3), "")
			codes[i], headers[i] = r.Code, r.Header().Get(cacheHeader)
		}(i)
	}
	waitFor(t, func() bool { return s.metrics.coalesced.Load() == followers })
	wg.Wait()

	if leaderCode != http.StatusGatewayTimeout {
		t.Fatalf("leader: status %d, want 504", leaderCode)
	}
	for i := 0; i < followers; i++ {
		if codes[i] != http.StatusGatewayTimeout {
			t.Errorf("follower %d: status %d, want the leader's 504", i, codes[i])
		}
		if headers[i] != "coalesced" {
			t.Errorf("follower %d: cache header %q, want coalesced", i, headers[i])
		}
	}
	if s.cache.len() != 0 {
		t.Error("canceled solve left a cache entry")
	}
	// The flight is gone: a new identical request leads its own flight
	// (and is canceled the same way) rather than hanging on a dead one.
	s.flights.mu.Lock()
	inflight := len(s.flights.m)
	s.flights.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d flights still registered after the leader finished", inflight)
	}
	if r := postSolve(t, s, pipelineSpec(3), "?deadline=50ms"); r.Code != http.StatusGatewayTimeout {
		t.Errorf("fresh request after canceled flight: status %d, want 504", r.Code)
	}
}

// TestFingerprintStability is a table-driven check that the canonical
// fingerprint ignores JSON presentation — task order, edge order, key
// order, whitespace — and changes for any semantic difference.
func TestFingerprintStability(t *testing.T) {
	base := pipelineSpec(3)
	sameAs := func(a, b string) (bool, error) {
		var fa, fb spec.File
		if err := json.Unmarshal([]byte(a), &fa); err != nil {
			return false, err
		}
		if err := json.Unmarshal([]byte(b), &fb); err != nil {
			return false, err
		}
		ka, err := spec.Fingerprint(&fa)
		if err != nil {
			return false, err
		}
		kb, err := spec.Fingerprint(&fb)
		if err != nil {
			return false, err
		}
		return ka == kb, nil
	}
	cases := []struct {
		name string
		body string
		same bool
	}{
		{
			name: "task order reversed",
			same: true,
			body: `{"mode": "weakly-hard", "diameter": 3,
			  "tasks": [
			    {"name": "act",   "node": "n2", "wcet": 300},
			    {"name": "ctrl",  "node": "n1", "wcet": 2000},
			    {"name": "sense", "node": "n0", "wcet": 500}
			  ],
			  "edges": [
			    {"from": "sense", "to": "ctrl", "width": 8},
			    {"from": "ctrl",  "to": "act",  "width": 4}
			  ],
			  "whStatistic": {"type": "synthetic"},
			  "whConstraints": {"act": {"misses": 10, "window": 40}}}`,
		},
		{
			name: "edge order reversed",
			same: true,
			body: `{"mode": "weakly-hard", "diameter": 3,
			  "tasks": [
			    {"name": "sense", "node": "n0", "wcet": 500},
			    {"name": "ctrl",  "node": "n1", "wcet": 2000},
			    {"name": "act",   "node": "n2", "wcet": 300}
			  ],
			  "edges": [
			    {"from": "ctrl",  "to": "act",  "width": 4},
			    {"from": "sense", "to": "ctrl", "width": 8}
			  ],
			  "whStatistic": {"type": "synthetic"},
			  "whConstraints": {"act": {"misses": 10, "window": 40}}}`,
		},
		{
			name: "both reordered, keys shuffled",
			same: true,
			body: `{"whConstraints": {"act": {"window": 40, "misses": 10}},
			  "whStatistic": {"type": "synthetic"},
			  "edges": [
			    {"width": 4, "to": "act", "from": "ctrl"},
			    {"width": 8, "to": "ctrl", "from": "sense"}
			  ],
			  "tasks": [
			    {"wcet": 2000, "name": "ctrl", "node": "n1"},
			    {"wcet": 300, "name": "act", "node": "n2"},
			    {"wcet": 500, "name": "sense", "node": "n0"}
			  ],
			  "diameter": 3, "mode": "weakly-hard"}`,
		},
		{name: "diameter changed", same: false, body: pipelineSpec(4)},
		{
			name: "edge width changed",
			same: false,
			body: strings.Replace(base, `"width": 8`, `"width": 9`, 1),
		},
		{
			name: "constraint changed",
			same: false,
			body: strings.Replace(base, `"misses": 10`, `"misses": 9`, 1),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			same, err := sameAs(base, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			if same != tc.same {
				t.Errorf("fingerprint equality = %v, want %v", same, tc.same)
			}
		})
	}
}
