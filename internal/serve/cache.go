package serve

import (
	"container/list"
	"sync"
)

// lruCache is the content-addressed solution cache: spec fingerprint →
// rendered ScheduleOut JSON. Values are immutable byte slices, so a hit
// is served without re-marshaling (the cache-hit hot path is one map
// lookup, one list splice and one memcpy into the response writer).
//
// Entries are only ever complete, proven solves — deadline-interrupted
// incumbents are never cached (see handleSolve) — so a hit is always as
// good as re-solving.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body for key and refreshes its recency.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put installs body under key, evicting the least recently used entry
// when over capacity. Re-putting an existing key refreshes its body and
// recency.
func (c *lruCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
