package serve

import (
	"container/list"
	"sync"

	"github.com/netdag/netdag/internal/journal"
)

// lruCache is the content-addressed solution cache: spec fingerprint →
// rendered ScheduleOut JSON. Values are immutable byte slices, so a hit
// is served without re-marshaling (the cache-hit hot path is one map
// lookup, one list splice and one memcpy into the response writer).
//
// Entries are only ever complete, proven solves — deadline-interrupted
// incumbents are never cached (see handleSolve) — so a hit is always as
// good as re-solving.
//
// Alongside the exact index the cache maintains a structural index:
// entries sharing a spec.StructuralFingerprint (same DAG shape, free
// weights/periods) are linked in put order, so a miss can warm-start
// its solve from the makespan of the nearest — most recently cached —
// structural twin (warmHint). The index never serves bodies; it only
// seeds core.Problem.WarmMakespan, which is sound under any hint.
type lruCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	byStruct map[string]*list.List // structural fingerprint → entries, front = newest put
}

type cacheEntry struct {
	key       string
	structKey string
	makespan  int64
	body      []byte
	structEl  *list.Element // this entry's node in byStruct[structKey]; nil if unindexed
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		byStruct: make(map[string]*list.List),
	}
}

// get returns the cached body for key and refreshes its recency.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put installs body under key, evicting the least recently used entry
// when over capacity. Re-putting an existing key refreshes its body,
// warm metadata and recency. structKey may be empty (entry stays out
// of the warm index); makespan is the warm hint structural twins will
// be seeded with.
func (c *lruCache) put(key, structKey string, makespan int64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.body = body
		e.makespan = makespan
		if e.structKey != structKey {
			c.structRemove(e)
			e.structKey = structKey
			c.structAdd(e)
		} else if e.structEl != nil {
			c.byStruct[e.structKey].MoveToFront(e.structEl)
		}
		return
	}
	e := &cacheEntry{key: key, structKey: structKey, makespan: makespan, body: body}
	c.items[key] = c.ll.PushFront(e)
	c.structAdd(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ev := oldest.Value.(*cacheEntry)
		c.structRemove(ev)
		delete(c.items, ev.key)
	}
}

// warmHint returns the largest makespan among cached entries sharing
// structKey, excluding the (missing) key itself. The maximum — not the
// most recent — because WarmMakespan is a virtual incumbent: a hint at
// or above the new optimum prunes and costs nothing, while a hint
// below it excludes every assignment and forces core to redo the whole
// search cold, which is strictly worse than no hint. Across weight
// variants of one shape, the class maximum is the estimate least
// likely to undershoot. Callers add headroom on top (see runFlight).
func (c *lruCache) warmHint(structKey, excludeKey string) (int64, bool) {
	if structKey == "" {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ll, ok := c.byStruct[structKey]
	if !ok {
		return 0, false
	}
	var best int64
	for el := ll.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry); e.key != excludeKey && e.makespan > best {
			best = e.makespan
		}
	}
	return best, best > 0
}

// snapshot renders the live cache as journal records, oldest first, so
// replaying them in order reproduces both the bodies and the recency
// order (each replayed put lands at the front, like the live path).
func (c *lruCache) snapshot() []journal.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := make([]journal.Record, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		recs = append(recs, journal.Record{
			Key: e.key, Struct: e.structKey, MakespanUS: e.makespan, Body: e.body,
		})
	}
	return recs
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// structAdd links e at the front of its structural class (newest
// first). Caller holds c.mu.
func (c *lruCache) structAdd(e *cacheEntry) {
	if e.structKey == "" {
		e.structEl = nil
		return
	}
	ll, ok := c.byStruct[e.structKey]
	if !ok {
		ll = list.New()
		c.byStruct[e.structKey] = ll
	}
	e.structEl = ll.PushFront(e)
}

// structRemove unlinks e from its structural class, dropping the class
// when it empties. Caller holds c.mu.
func (c *lruCache) structRemove(e *cacheEntry) {
	if e.structEl == nil {
		return
	}
	ll := c.byStruct[e.structKey]
	ll.Remove(e.structEl)
	e.structEl = nil
	if ll.Len() == 0 {
		delete(c.byStruct, e.structKey)
	}
}
