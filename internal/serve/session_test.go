package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/session"
)

// blockingSolve parks every solve until block closes (or the solve's
// context expires), for saturating the admission queue.
func blockingSolve(block chan struct{}) func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
	return func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, core.ErrCanceled
	}
}

func sessionBody(diameter int) string {
	return fmt.Sprintf(`{"spec": %s, "safeDiameters": [%d, %d]}`,
		pipelineSpec(diameter), diameter, diameter+2)
}

func doJSON(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func createSession(t *testing.T, s *Server) string {
	t.Helper()
	rec := doJSON(t, s, http.MethodPost, "/v1/session", sessionBody(3))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create session: status %d, body %s", rec.Code, rec.Body)
	}
	var created sessionCreated
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Status.State != session.StateActive || !created.Status.Optimal {
		t.Fatalf("created = %+v", created)
	}
	return created.ID
}

func TestSessionEndpoints(t *testing.T) {
	s := New(Config{})
	id := createSession(t, s)

	// Status.
	rec := doJSON(t, s, http.MethodGet, "/v1/session/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}
	var view session.StatusView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Seq != 1 || view.Tasks != 3 {
		t.Errorf("status view = %+v", view)
	}

	// Apply a diameter event; the answer is the journal entry.
	rec = doJSON(t, s, http.MethodPost, "/v1/session/"+id+"/events", `{"kind": "diameter", "diameter": 4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("event: %d %s", rec.Code, rec.Body)
	}
	var entry session.Entry
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Outcome != session.OutcomeApplied || entry.Seq != 2 {
		t.Errorf("event entry = %+v", entry)
	}

	// A rejected event is still HTTP 200 — the rejection IS the result.
	rec = doJSON(t, s, http.MethodPost, "/v1/session/"+id+"/events", `{"kind": "placement", "task": "ghost", "node": "n0"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("rejected event: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Outcome != session.OutcomeRejected {
		t.Errorf("rejected entry = %+v", entry)
	}

	// A malformed body is a 400, not a journaled rejection.
	rec = doJSON(t, s, http.MethodPost, "/v1/session/"+id+"/events", `{"kind": "diameter", "bogus": 1}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed event: %d", rec.Code)
	}

	// Journal with since.
	rec = doJSON(t, s, http.MethodGet, "/v1/session/"+id+"/journal?since=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("journal: %d", rec.Code)
	}
	var entries []session.Entry
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 2 || entries[1].Seq != 3 {
		t.Errorf("journal since=1 = %+v", entries)
	}

	// Metrics carry the session aggregates.
	rec = doJSON(t, s, http.MethodGet, "/metrics", "")
	for _, want := range []string{
		"netdag_sessions 1",
		"netdag_session_events_total 2",
		"netdag_session_applied_total 1",
		"netdag_session_rejected_total 1",
		"netdag_session_resolve_seconds_count",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Delete answers the final counters and frees the slot; the counters
	// survive into the scrape aggregates.
	rec = doJSON(t, s, http.MethodDelete, "/v1/session/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	var final session.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &final); err != nil {
		t.Fatal(err)
	}
	if final.Events != 2 {
		t.Errorf("final stats = %+v", final)
	}
	rec = doJSON(t, s, http.MethodGet, "/v1/session/"+id, "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("status after delete: %d", rec.Code)
	}
	rec = doJSON(t, s, http.MethodGet, "/metrics", "")
	if !strings.Contains(rec.Body.String(), "netdag_sessions 0") ||
		!strings.Contains(rec.Body.String(), "netdag_session_events_total 2") {
		t.Error("closed-session counters fell out of the metrics aggregate")
	}
}

func TestSessionLimit(t *testing.T) {
	s := New(Config{MaxSessions: 1, RetrySeed: 0})
	createSession(t, s)
	rec := doJSON(t, s, http.MethodPost, "/v1/session", sessionBody(3))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
}

func TestSessionFeedStreams(t *testing.T) {
	s := New(Config{})
	id := createSession(t, s)
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/session/" + id + "/feed?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan session.Entry, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		if sc.Scan() {
			var e session.Entry
			if json.Unmarshal(sc.Bytes(), &e) == nil {
				done <- e
			}
		}
		close(done)
	}()

	time.Sleep(50 * time.Millisecond) // let the feed subscribe
	rec := doJSON(t, s, http.MethodPost, "/v1/session/"+id+"/events", `{"kind": "link-quality", "minNTX": 2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("event: %d %s", rec.Code, rec.Body)
	}
	select {
	case e, ok := <-done:
		if !ok || e.Seq != 2 || e.Event.Kind != session.KindLink {
			t.Fatalf("feed entry = %+v (ok=%v)", e, ok)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("feed never delivered the entry")
	}
}

// TestRetryAfterBackoff pins the jittered exponential Retry-After
// contract: consecutive 429 hints follow the policy envelope
// (deterministically with no jitter seed, within [env/2, env] with one)
// and a successful admission resets the sequence.
func TestRetryAfterBackoff(t *testing.T) {
	s := New(Config{})
	want := []int{1, 2, 4, 8, 16, 30, 30}
	for i, w := range want {
		if got := s.retryAfterHint(); got != w {
			t.Errorf("hint %d = %d, want %d", i, got, w)
		}
	}
	s.admitted()
	if got := s.retryAfterHint(); got != 1 {
		t.Errorf("hint after reset = %d, want 1", got)
	}

	j := New(Config{RetrySeed: 7})
	for i := 0; i < 10; i++ {
		got := j.retryAfterHint()
		env := j.cfg.RetryPolicy.Delay(i, nil).Seconds()
		if float64(got) < env/2-1 || float64(got) > env+1 {
			t.Errorf("jittered hint %d = %d outside [%g, %g]", i, got, env/2, env)
		}
	}
}

// TestRetryAfterOn429 checks the wired path: a saturated queue answers
// 429 with a growing hint.
func TestRetryAfterOn429(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, SolveFn: blockingSolve(block)})
	defer close(block)

	go postSolve(t, s, pipelineSpec(3), "") // occupies the worker
	waitFor(t, func() bool { return s.metrics.inflight.Load() == 1 })
	go postSolve(t, s, pipelineSpec(4), "") // occupies the queue slot
	waitFor(t, func() bool { return s.metrics.queued.Load() == 1 })

	var hints []int
	for i := 0; i < 3; i++ {
		rec := postSolve(t, s, pipelineSpec(5+i), "")
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, rec.Code)
		}
		n, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", rec.Header().Get("Retry-After"), err)
		}
		hints = append(hints, n)
	}
	if !(hints[0] == 1 && hints[1] == 2 && hints[2] == 4) {
		t.Errorf("429 hints = %v, want [1 2 4]", hints)
	}
}
