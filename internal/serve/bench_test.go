package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/spec"
)

// BenchmarkServeCacheHit measures the hot path: parse → fingerprint →
// LRU lookup → serve cached bytes. No solver work at all.
func BenchmarkServeCacheHit(b *testing.B) {
	s := New(Config{})
	body := pipelineSpec(3)
	warm := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup solve: %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "hit" {
			b.Fatalf("iteration %d: status %d cache %q", i, rec.Code, rec.Header().Get(cacheHeader))
		}
	}
}

// BenchmarkServeCacheMiss measures the miss-path overhead around the
// solver — fingerprint, flight bookkeeping, admission, export — with the
// solve itself stubbed to a precomputed schedule so the solver's own
// cost (benchmarked in internal/core) doesn't drown the serving layer.
func BenchmarkServeCacheMiss(b *testing.B) {
	var sched *core.Schedule
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			if sched == nil {
				var err error
				sched, err = core.SolveContext(ctx, p)
				if err != nil {
					return nil, err
				}
			}
			return sched, nil
		},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh diameter per iteration defeats the cache; the first
		// line of the spec varies, the rest is shared.
		body := pipelineSpec(3 + i)
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "miss" {
			b.Fatalf("iteration %d: status %d cache %q body %s", i, rec.Code, rec.Header().Get(cacheHeader), rec.Body)
		}
	}
}

// BenchmarkFingerprint isolates the canonical-hash cost on a mid-sized
// spec (32 tasks in a chain).
func BenchmarkFingerprint(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`{"mode": "weakly-hard", "diameter": 3, "tasks": [`)
	for i := 0; i < 32; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"name": "t%d", "node": "n%d", "wcet": %d}`, i, i%4, 100+i)
	}
	sb.WriteString(`], "edges": [`)
	for i := 1; i < 32; i++ {
		if i > 1 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"from": "t%d", "to": "t%d", "width": 8}`, i-1, i)
	}
	sb.WriteString(`], "whStatistic": {"type": "synthetic"}}`)
	body := sb.String()

	var f spec.File
	if err := json.Unmarshal([]byte(body), &f); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Fingerprint(&f); err != nil {
			b.Fatal(err)
		}
	}
}
