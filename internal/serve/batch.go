package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/netdag/netdag/internal/spec"
)

// batchRequest is the POST /v1/solve-batch envelope: an array of
// independent problem specs. Items are raw so one malformed spec
// fails only its own slot, never the envelope.
type batchRequest struct {
	Specs []json.RawMessage `json:"specs"`
}

// BatchItem is one slot of the batch response. Exactly one of
// Schedule/Error is set, according to Status, which follows the same
// contract as /v1/solve:
//
//	200 solved (Incomplete: deadline-interrupted incumbent, uncached)
//	400 malformed spec
//	422 valid but unsolvable spec
//	429 admission rejected (the global solve budget was saturated)
//	504 deadline expired with no incumbent
//
// One bad item never fails the batch: the envelope is 200 whenever it
// parsed, and each item carries its own status.
type BatchItem struct {
	Index       int             `json:"index"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Status      int             `json:"status"`
	Cache       string          `json:"cache,omitempty"` // hit | miss | coalesced | remote | dedup
	Incomplete  bool            `json:"incomplete,omitempty"`
	WarmUS      int64           `json:"warmUS,omitempty"` // warm-start hint the solve was seeded with
	Peer        string          `json:"peer,omitempty"`   // owning peer, when served remotely
	Schedule    json.RawMessage `json:"schedule,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/solve-batch reply.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
	// Unique counts distinct fingerprints actually scheduled; Deduped
	// counts items answered by another item's solve.
	Unique  int `json:"unique"`
	Deduped int `json:"deduped"`
}

// handleSolveBatch is POST /v1/solve-batch: dedup the items by
// canonical fingerprint, schedule the unique set concurrently through
// the same admission budget (admit) every other solve uses, and answer
// per-item statuses. Duplicate items — common when a fleet manager
// submits one spec per device and many devices share a configuration —
// cost one solve and one cache entry.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()

	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid batch: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Specs) > s.cfg.MaxBatchItems {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds the %d item limit", len(req.Specs), s.cfg.MaxBatchItems))
		return
	}
	deadline, err := s.requestDeadline(r)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.batchRequests.Add(1)
	s.metrics.batchItems.Add(int64(len(req.Specs)))
	forwardable := r.Header.Get(forwardedHeader) == ""

	out := BatchResponse{Items: make([]BatchItem, len(req.Specs))}
	// Dedup pass: parse and fingerprint every item; the first item of
	// each fingerprint leads, later ones copy its result.
	type lead struct {
		f     *spec.File
		key   string
		index int
	}
	leads := make(map[string]*lead) // fingerprint → leading item
	order := make([]*lead, 0, len(req.Specs))
	for i, raw := range req.Specs {
		item := &out.Items[i]
		item.Index = i
		var f spec.File
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&f); err != nil {
			s.metrics.badRequests.Add(1)
			item.Status = http.StatusBadRequest
			item.Error = fmt.Sprintf("invalid spec: %v", err)
			continue
		}
		key, err := spec.Fingerprint(&f)
		if err != nil {
			s.metrics.badRequests.Add(1)
			item.Status = http.StatusBadRequest
			item.Error = err.Error()
			continue
		}
		item.Fingerprint = key
		if _, dup := leads[key]; dup {
			continue // filled from the lead after the solve pass
		}
		l := &lead{f: &f, key: key, index: i}
		leads[key] = l
		order = append(order, l)
	}

	// Solve pass: every unique spec concurrently. Parallelism is
	// bounded by the worker budget inside solveOne → admit, exactly as
	// concurrent /v1/solve requests would be: a batch enjoys no more
	// of the server than its items arriving individually.
	results := make(map[string]BatchItem, len(order))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, l := range order {
		wg.Add(1)
		go func(l *lead) {
			defer wg.Done()
			res, cacheState := s.solveOne(r.Context(), l.f, l.key, start, deadline, forwardable)
			item := BatchItem{
				Status:     res.status,
				Cache:      cacheState,
				Incomplete: res.incomplete,
				WarmUS:     res.warm,
				Peer:       res.peer,
			}
			if res.status == 0 { // client gone; body will never be read
				item.Status = http.StatusGatewayTimeout
				item.Error = "request canceled"
			} else if res.status == http.StatusOK {
				item.Schedule = res.body
			} else {
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(res.body, &e) == nil && e.Error != "" {
					item.Error = e.Error
				} else {
					item.Error = http.StatusText(res.status)
				}
			}
			mu.Lock()
			results[l.key] = item
			mu.Unlock()
		}(l)
	}
	wg.Wait()

	for i := range out.Items {
		item := &out.Items[i]
		if item.Status != 0 || item.Fingerprint == "" {
			continue // per-item parse failure already filled in
		}
		res := results[item.Fingerprint]
		res.Index = i
		res.Fingerprint = item.Fingerprint
		if leads[item.Fingerprint].index != i {
			res.Cache = "dedup"
			out.Deduped++
			s.metrics.batchDeduped.Add(1)
		}
		*item = res
	}
	out.Unique = len(order)

	body, err := json.Marshal(&out)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body, "")
}
