package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/campaign"
)

func postCertify(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/certify", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func certifyBody(extra string) string {
	return fmt.Sprintf(`{"spec": %s, "replications": 10, "runs": 40, "seed": 7%s}`,
		pipelineSpec(3), extra)
}

func TestCertifyEndpointCleanSpec(t *testing.T) {
	s := New(Config{})
	r := postCertify(t, s, certifyBody(""))
	if r.Code != http.StatusOK {
		t.Fatalf("certify: status %d, body %s", r.Code, r.Body)
	}
	var rep campaign.Report
	if err := json.Unmarshal(r.Body.Bytes(), &rep); err != nil {
		t.Fatalf("response is not a campaign.Report: %v", err)
	}
	if rep.Violations != 0 {
		t.Errorf("clean spec reported %d violations: %+v", rep.Violations, rep.Tasks)
	}
	if rep.Replications != 10 || rep.Runs != 40 || len(rep.Tasks) != 1 {
		t.Errorf("report shape off: %+v", rep)
	}
	if r.Header().Get(fingerprintHdr) == "" {
		t.Error("certify response missing the spec fingerprint header")
	}
	// The responses are deterministic: same request, same report.
	r2 := postCertify(t, s, certifyBody(""))
	if r2.Code != http.StatusOK || r2.Body.String() != r.Body.String() {
		t.Error("identical certify requests produced different reports")
	}
}

func TestCertifyEndpointFlagsScenario(t *testing.T) {
	s := New(Config{})
	r := postCertify(t, s, certifyBody(`, "scenario": {"name": "blackout", "blackouts": [{"fromUS": 0, "toUS": 1000000000000}]}`))
	if r.Code != http.StatusOK {
		t.Fatalf("certify: status %d, body %s", r.Code, r.Body)
	}
	var rep campaign.Report
	if err := json.Unmarshal(r.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatalf("blackout scenario certified clean: %+v", rep.Tasks)
	}
	if rep.Scenario != "blackout" {
		t.Errorf("scenario name %q not in the report", rep.Scenario)
	}
	if rep.Tasks[0].WorstSeed == 0 && rep.Tasks[0].WorstRep == 0 && rep.Tasks[0].WorstWindow == "" {
		t.Error("violation carries no replay handle")
	}
}

func TestCertifyEndpointRejects(t *testing.T) {
	s := New(Config{})
	for name, body := range map[string]string{
		"not json":            "{",
		"unknown field":       `{"spec": {"mode": "soft"}, "bogus": 1}`,
		"replications capped": fmt.Sprintf(`{"spec": %s, "replications": 999999}`, pipelineSpec(3)),
		"budget exceeded":     fmt.Sprintf(`{"spec": %s, "replications": 5000, "runs": 50000}`, pipelineSpec(3)),
		"bad prr":             fmt.Sprintf(`{"spec": %s, "replications": 2, "runs": 40, "prr": 1.5}`, pipelineSpec(3)),
		"vacuous runs":        fmt.Sprintf(`{"spec": %s, "replications": 2, "runs": 10}`, pipelineSpec(3)),
	} {
		r := postCertify(t, s, body)
		if name == "vacuous runs" {
			// Too few runs for the declared window is caught by the
			// certifier, not request validation.
			if r.Code != http.StatusUnprocessableEntity {
				t.Errorf("%s: status %d, want 422; body %s", name, r.Code, r.Body)
			}
			continue
		}
		if r.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, r.Code, r.Body)
		}
	}
}

func TestCertifyMetrics(t *testing.T) {
	s := New(Config{})
	if r := postCertify(t, s, certifyBody("")); r.Code != http.StatusOK {
		t.Fatalf("certify: %d", r.Code)
	}
	postCertify(t, s, certifyBody(`, "scenario": {"blackouts": [{"fromUS": 0, "toUS": 1000000000000}]}`))

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, want := range []string{
		"netdag_certify_requests_total 2",
		"netdag_certify_violations_total 1",
		"netdag_campaign_replications_total 20",
		"netdag_inflight_campaigns 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
