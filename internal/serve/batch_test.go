package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/solver"
)

func postBatch(t *testing.T, s *Server, body, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve-batch"+query, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func batchOf(specs ...string) string {
	return `{"specs":[` + strings.Join(specs, ",") + `]}`
}

func decodeBatch(t *testing.T, rec *httptest.ResponseRecorder) BatchResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("batch envelope: status %d, body %s", rec.Code, rec.Body)
	}
	var out BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	return out
}

// TestBatchDedupsByFingerprint: duplicate items — including textually
// different renderings of the same spec — cost one solve; later twins
// answer with cache "dedup" and the identical schedule.
func TestBatchDedupsByFingerprint(t *testing.T) {
	s := New(Config{})
	// Item 2 is item 0 with tasks and edges reordered: same fingerprint.
	reordered := `{
	  "mode": "weakly-hard", "diameter": 3,
	  "tasks": [
	    {"name": "act",   "node": "n2", "wcet": 300},
	    {"name": "ctrl",  "node": "n1", "wcet": 2000},
	    {"name": "sense", "node": "n0", "wcet": 500}
	  ],
	  "edges": [
	    {"from": "ctrl",  "to": "act",  "width": 4},
	    {"from": "sense", "to": "ctrl", "width": 8}
	  ],
	  "whStatistic": {"type": "synthetic"},
	  "whConstraints": {"act": {"misses": 10, "window": 40}}
	}`
	out := decodeBatch(t, postBatch(t, s, batchOf(pipelineSpec(3), pipelineSpec(4), reordered), ""))
	if out.Unique != 2 || out.Deduped != 1 {
		t.Fatalf("unique=%d deduped=%d, want 2/1", out.Unique, out.Deduped)
	}
	for i, item := range out.Items {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s)", i, item.Status, item.Error)
		}
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
	}
	if out.Items[2].Cache != "dedup" {
		t.Errorf("duplicate item cache = %q, want dedup", out.Items[2].Cache)
	}
	if out.Items[0].Fingerprint != out.Items[2].Fingerprint {
		t.Error("reordered twin fingerprinted differently")
	}
	if string(out.Items[0].Schedule) != string(out.Items[2].Schedule) {
		t.Error("deduped item received a different schedule than its twin")
	}
	if m := s.metrics.cacheMisses.Load(); m != 2 {
		t.Errorf("cacheMisses = %d, want 2 (one per unique spec)", m)
	}
	if d := s.metrics.batchDeduped.Load(); d != 1 {
		t.Errorf("batchDeduped = %d, want 1", d)
	}
	// A follow-up single solve of a batch-cached spec hits.
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Header().Get(cacheHeader) != "hit" {
		t.Errorf("post-batch solve cache header = %q, want hit", r.Header().Get(cacheHeader))
	}
}

// TestBatchOneBadItemDoesNotFailTheBatch: malformed and unsolvable
// items answer 400/422 in their own slots while the rest solve.
func TestBatchOneBadItemDoesNotFailTheBatch(t *testing.T) {
	s := New(Config{})
	unsat := `{
	  "mode": "soft", "diameter": 3,
	  "tasks": [
	    {"name": "a", "node": "n0", "wcet": 100},
	    {"name": "b", "node": "n1", "wcet": 100}
	  ],
	  "edges": [{"from": "a", "to": "b", "width": 4}],
	  "softStatistic": {"type": "bernoulli", "perTX": 0.9},
	  "softConstraints": {"b": 1.0}
	}`
	out := decodeBatch(t, postBatch(t, s, batchOf(
		pipelineSpec(3),
		`{"mode": "soft", "bogus": 1}`, // unknown field → malformed
		unsat,
		`"not an object"`,
	), ""))
	wantStatus := []int{http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusBadRequest}
	for i, want := range wantStatus {
		if out.Items[i].Status != want {
			t.Errorf("item %d: status %d, want %d (error %q)", i, out.Items[i].Status, want, out.Items[i].Error)
		}
	}
	if out.Items[0].Schedule == nil {
		t.Error("good item lost its schedule")
	}
	for _, i := range []int{1, 2, 3} {
		if out.Items[i].Error == "" {
			t.Errorf("failed item %d carries no error", i)
		}
		if out.Items[i].Schedule != nil {
			t.Errorf("failed item %d carries a schedule", i)
		}
	}
	if out.Unique != 2 { // the solvable spec + the unsat spec
		t.Errorf("unique = %d, want 2", out.Unique)
	}
}

// TestBatchErrorContract pins the ErrCanceled-vs-ErrBounded mapping at
// the batch boundary with an instrumented solver: a canceled solve
// with an incumbent is a 200 + incomplete (never cached), a canceled
// solve without one is that item's 504, and ErrBounded — like every
// non-cancellation solver error — is a 422, exactly as /v1/solve maps
// them.
func TestBatchErrorContract(t *testing.T) {
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			switch p.Diameter {
			case 5: // deadline with no incumbent
				return nil, core.ErrCanceled
			case 6: // deadline with an incumbent in hand
				sched, err := core.SolveContext(context.Background(), p)
				if err != nil {
					return nil, err
				}
				sched.Optimal = false
				return sched, core.ErrCanceled
			case 7: // externally-bounded search exhausted its bound
				return nil, solver.ErrBounded
			}
			return core.SolveContext(ctx, p)
		},
	})
	out := decodeBatch(t, postBatch(t, s, batchOf(
		pipelineSpec(3), pipelineSpec(5), pipelineSpec(6), pipelineSpec(7),
	), ""))

	if got := out.Items[0].Status; got != http.StatusOK {
		t.Errorf("plain item: status %d, want 200", got)
	}
	if got := out.Items[1].Status; got != http.StatusGatewayTimeout {
		t.Errorf("canceled-no-incumbent item: status %d, want 504", got)
	}
	if got := out.Items[2]; got.Status != http.StatusOK || !got.Incomplete {
		t.Errorf("canceled-with-incumbent item: status %d incomplete %v, want 200/true", got.Status, got.Incomplete)
	}
	if got := out.Items[3].Status; got != http.StatusUnprocessableEntity {
		t.Errorf("ErrBounded item: status %d, want 422", got)
	}
	// Only the complete, proven solve entered the cache.
	if n := s.cache.len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1 (incumbents and failures are uncacheable)", n)
	}
}

// TestBatchAdmissionRejection: a batch saturating the worker budget has
// its overflow item answer 429 in place while the admitted items
// complete — the batch shares the global admit() budget rather than
// bypassing it.
func TestBatchAdmissionRejection(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			<-release
			return core.SolveContext(ctx, p)
		},
	})
	done := make(chan BatchResponse, 1)
	go func() {
		rec := postBatch(t, s, batchOf(pipelineSpec(3), pipelineSpec(4), pipelineSpec(5)), "")
		var out BatchResponse
		json.Unmarshal(rec.Body.Bytes(), &out)
		done <- out
	}()
	waitFor(t, func() bool { return s.metrics.admissionRejected.Load() == 1 })
	close(release)
	out := <-done

	counts := map[int]int{}
	for _, item := range out.Items {
		counts[item.Status]++
	}
	if counts[http.StatusOK] != 2 || counts[http.StatusTooManyRequests] != 1 {
		t.Fatalf("status counts = %v, want two 200s and one 429", counts)
	}
}

// TestBatchEnvelopeRejections: only envelope-level problems fail the
// whole request.
func TestBatchEnvelopeRejections(t *testing.T) {
	s := New(Config{MaxBatchItems: 2})
	for name, body := range map[string]string{
		"not json":      "{",
		"empty":         `{"specs": []}`,
		"missing specs": `{}`,
		"over limit":    batchOf(pipelineSpec(3), pipelineSpec(4), pipelineSpec(5)),
		"unknown field": `{"specs": [{}], "mode": "x"}`,
	} {
		if r := postBatch(t, s, body, ""); r.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, r.Code)
		}
	}
	if r := postBatch(t, s, batchOf(pipelineSpec(3)), "?deadline=bogus"); r.Code != http.StatusBadRequest {
		t.Errorf("bad deadline: status %d, want 400", r.Code)
	}
}

// TestBatchItemsShareFlights: identical specs split across a batch and
// a concurrent single request coalesce onto one solve.
func TestBatchItemsShareFlights(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	first := true
	s := New(Config{
		MaxConcurrent: 4,
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			if first {
				first = false
				close(entered)
				<-release
			}
			return core.SolveContext(ctx, p)
		},
	})
	soloDone := make(chan int, 1)
	go func() {
		r := postSolve(t, s, pipelineSpec(3), "")
		soloDone <- r.Code
	}()
	<-entered // the single request leads the flight

	batchDone := make(chan BatchResponse, 1)
	go func() {
		batchDone <- decodeBatch(t, postBatch(t, s, batchOf(pipelineSpec(3)), ""))
	}()
	waitFor(t, func() bool { return s.metrics.coalesced.Load() == 1 })
	close(release)
	if code := <-soloDone; code != http.StatusOK {
		t.Fatalf("solo request: status %d", code)
	}
	out := <-batchDone
	if out.Items[0].Status != http.StatusOK || out.Items[0].Cache != "coalesced" {
		t.Errorf("batch item = %d/%q, want 200/coalesced", out.Items[0].Status, out.Items[0].Cache)
	}
	if m := s.metrics.cacheMisses.Load(); m != 1 {
		t.Errorf("cacheMisses = %d, want 1 (batch coalesced onto the in-flight solve)", m)
	}
}

// sanity-check the helper: batchOf builds valid envelopes
func TestBatchOfHelper(t *testing.T) {
	var req batchRequest
	if err := json.Unmarshal([]byte(batchOf(pipelineSpec(3), pipelineSpec(4))), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Specs) != 2 {
		t.Fatal(fmt.Errorf("helper built %d specs", len(req.Specs)))
	}
}
