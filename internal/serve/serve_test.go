package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/spec"
)

// pipelineSpec is a small solvable weakly-hard spec; diameter varies the
// fingerprint without changing the shape.
func pipelineSpec(diameter int) string {
	return fmt.Sprintf(`{
  "mode": "weakly-hard",
  "diameter": %d,
  "tasks": [
    {"name": "sense", "node": "n0", "wcet": 500},
    {"name": "ctrl",  "node": "n1", "wcet": 2000},
    {"name": "act",   "node": "n2", "wcet": 300}
  ],
  "edges": [
    {"from": "sense", "to": "ctrl", "width": 8},
    {"from": "ctrl",  "to": "act",  "width": 4}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"act": {"misses": 10, "window": 40}}
}`, diameter)
}

func postSolve(t *testing.T, s *Server, body, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve"+query, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestSolveThenCacheHit(t *testing.T) {
	s := New(Config{})
	r1 := postSolve(t, s, pipelineSpec(3), "")
	if r1.Code != http.StatusOK {
		t.Fatalf("first solve: status %d, body %s", r1.Code, r1.Body)
	}
	if got := r1.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("first solve cache header = %q, want miss", got)
	}
	var out spec.ScheduleOut
	if err := json.Unmarshal(r1.Body.Bytes(), &out); err != nil {
		t.Fatalf("response is not a ScheduleOut: %v", err)
	}
	if !out.Optimal || out.MakespanUS <= 0 || len(out.Rounds) == 0 {
		t.Errorf("implausible schedule: optimal=%v makespan=%d rounds=%d",
			out.Optimal, out.MakespanUS, len(out.Rounds))
	}

	r2 := postSolve(t, s, pipelineSpec(3), "")
	if r2.Code != http.StatusOK {
		t.Fatalf("second solve: status %d", r2.Code)
	}
	if got := r2.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("second solve cache header = %q, want hit", got)
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("cache hit served a different body than the original solve")
	}
	if h, m := s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, m)
	}
}

// TestCacheKeyIsCanonical: reordering tasks and edges (and whitespace)
// must hit the same cache entry.
func TestCacheKeyIsCanonical(t *testing.T) {
	s := New(Config{})
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Code != http.StatusOK {
		t.Fatalf("seed solve: status %d", r.Code)
	}
	reordered := `{
  "mode": "weakly-hard", "diameter": 3,
  "tasks": [
    {"name": "act",   "node": "n2", "wcet": 300},
    {"name": "ctrl",  "node": "n1", "wcet": 2000},
    {"name": "sense", "node": "n0", "wcet": 500}
  ],
  "edges": [
    {"from": "ctrl",  "to": "act",  "width": 4},
    {"from": "sense", "to": "ctrl", "width": 8}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"act": {"misses": 10, "window": 40}}
}`
	r := postSolve(t, s, reordered, "")
	if r.Code != http.StatusOK {
		t.Fatalf("reordered solve: status %d", r.Code)
	}
	if got := r.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("reordered spec cache header = %q, want hit (canonicalization broken)", got)
	}
}

// TestConcurrentIdenticalRequestsCoalesce is the acceptance criterion:
// two concurrent identical POSTs perform exactly one solve, observable
// via the miss/coalesced counters.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	var solves atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			solves.Add(1)
			close(started)
			<-release
			return core.SolveContext(ctx, p)
		},
	})

	const followers = 3
	var wg sync.WaitGroup
	codes := make([]int, followers+1)
	headers := make([]string, followers+1)
	bodies := make([][]byte, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := postSolve(t, s, pipelineSpec(3), "")
		codes[0], headers[0], bodies[0] = r.Code, r.Header().Get(cacheHeader), r.Body.Bytes()
	}()
	<-started // the leader owns the flight before any follower arrives
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := postSolve(t, s, pipelineSpec(3), "")
			codes[i], headers[i], bodies[i] = r.Code, r.Header().Get(cacheHeader), r.Body.Bytes()
		}(i)
	}
	// Let the followers reach the flight before releasing the solve.
	waitFor(t, func() bool { return s.metrics.coalesced.Load() == followers })
	close(release)
	wg.Wait()

	if n := solves.Load(); n != 1 {
		t.Fatalf("%d solves for %d concurrent identical requests, want 1", n, followers+1)
	}
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: body differs from leader's", i)
		}
	}
	if headers[0] != "miss" {
		t.Errorf("leader cache header = %q, want miss", headers[0])
	}
	for i := 1; i <= followers; i++ {
		if headers[i] != "coalesced" {
			t.Errorf("follower %d cache header = %q, want coalesced", i, headers[i])
		}
	}
	if m, c := s.metrics.cacheMisses.Load(), s.metrics.coalesced.Load(); m != 1 || c != followers {
		t.Errorf("misses=%d coalesced=%d, want 1/%d", m, c, followers)
	}
}

// TestDeadlineReturnsIncumbent: a solve interrupted at its deadline with
// an incumbent in hand answers 200 + optimal=false and is not cached.
func TestDeadlineReturnsIncumbent(t *testing.T) {
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			sched, err := core.SolveContext(context.Background(), p)
			if err != nil {
				return nil, err
			}
			sched.Optimal = false
			return sched, core.ErrCanceled
		},
	})
	r := postSolve(t, s, pipelineSpec(3), "?deadline=50ms")
	if r.Code != http.StatusOK {
		t.Fatalf("incumbent response: status %d, body %s", r.Code, r.Body)
	}
	if got := r.Header().Get(incompleteHeader); got != "deadline" {
		t.Errorf("%s = %q, want deadline", incompleteHeader, got)
	}
	var out spec.ScheduleOut
	if err := json.Unmarshal(r.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Optimal {
		t.Error("deadline-interrupted incumbent claims optimality")
	}
	if s.cache.len() != 0 {
		t.Error("incomplete solve was cached")
	}
	if s.metrics.incomplete.Load() != 1 {
		t.Errorf("incomplete counter = %d, want 1", s.metrics.incomplete.Load())
	}
}

// TestDeadlineWithoutIncumbentIs504.
func TestDeadlineWithoutIncumbentIs504(t *testing.T) {
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			<-ctx.Done()
			return nil, core.ErrCanceled
		},
	})
	start := time.Now()
	r := postSolve(t, s, pipelineSpec(3), "?deadline=30ms")
	if r.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", r.Code, r.Body)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("504 took %v; deadline not honored promptly", el)
	}
	if s.metrics.deadlineExpired.Load() != 1 {
		t.Errorf("deadlineExpired = %d, want 1", s.metrics.deadlineExpired.Load())
	}
}

// TestRealDeadlineOnRealSolver drives the actual core.SolveContext with
// a deadline that has already expired: the server must respond promptly
// rather than solve to completion.
func TestRealDeadlineOnRealSolver(t *testing.T) {
	s := New(Config{})
	r := postSolve(t, s, pipelineSpec(3), "?deadline=1ns")
	switch r.Code {
	case http.StatusGatewayTimeout:
		// no incumbent in time — the common case for a 1 ns budget
	case http.StatusOK:
		if got := r.Header().Get(incompleteHeader); got != "deadline" {
			t.Errorf("200 under an expired deadline must be marked incomplete, header %q", got)
		}
	default:
		t.Fatalf("status %d, want 200 (incumbent) or 504", r.Code)
	}
}

// TestPortfolioSolveCachesOptimalWinner: with the portfolio enabled the
// race's winner is a proven optimum — the response says optimal=true,
// matches the single-strategy schedule, and is cached like any complete
// solve (miss, then hit with an identical body).
func TestPortfolioSolveCachesOptimalWinner(t *testing.T) {
	single := New(Config{})
	rs := postSolve(t, single, pipelineSpec(3), "")
	if rs.Code != http.StatusOK {
		t.Fatalf("single-strategy solve: status %d, body %s", rs.Code, rs.Body)
	}
	var sOut spec.ScheduleOut
	if err := json.Unmarshal(rs.Body.Bytes(), &sOut); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Portfolio: true, PortfolioSeed: 9})
	r1 := postSolve(t, s, pipelineSpec(3), "")
	if r1.Code != http.StatusOK {
		t.Fatalf("portfolio solve: status %d, body %s", r1.Code, r1.Body)
	}
	if got := r1.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("first portfolio solve cache header = %q, want miss", got)
	}
	var out spec.ScheduleOut
	if err := json.Unmarshal(r1.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Optimal {
		t.Error("portfolio winner not marked optimal — a canceled loser leaked into the result")
	}
	if out.MakespanUS != sOut.MakespanUS {
		t.Errorf("portfolio makespan %d != single-strategy %d", out.MakespanUS, sOut.MakespanUS)
	}

	r2 := postSolve(t, s, pipelineSpec(3), "")
	if got := r2.Header().Get(cacheHeader); got != "hit" {
		t.Errorf("second portfolio solve cache header = %q, want hit (optimal result not cached)", got)
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("cache hit served a different body than the portfolio solve")
	}
}

// TestPortfolioDeadlineNeverBoundedNorCached: an expired deadline on a
// portfolio solve surfaces exactly like the single-strategy path — 504
// without an incumbent or 200+incomplete with one — never a 4xx from the
// internal race cancellation, and nothing enters the cache.
func TestPortfolioDeadlineNeverBoundedNorCached(t *testing.T) {
	s := New(Config{Portfolio: true})
	r := postSolve(t, s, pipelineSpec(3), "?deadline=1ns")
	switch r.Code {
	case http.StatusGatewayTimeout:
		// no incumbent in time — the common case for a 1 ns budget
	case http.StatusOK:
		if got := r.Header().Get(incompleteHeader); got != "deadline" {
			t.Errorf("200 under an expired deadline must be marked incomplete, header %q", got)
		}
	default:
		t.Fatalf("status %d, want 200 (incumbent) or 504 — a race cancellation leaked as a client error: %s",
			r.Code, r.Body)
	}
	if s.cache.len() != 0 {
		t.Error("deadline-expired portfolio solve was cached")
	}
}

// TestAdmissionControl: with a budget of one solve and a queue of one,
// a third distinct concurrent request is turned away with 429.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := New(Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			entered <- struct{}{}
			<-release
			return core.SolveContext(ctx, p)
		},
	})
	var wg sync.WaitGroup
	// Distinct specs so nothing coalesces or hits the cache.
	wg.Add(1)
	go func() { defer wg.Done(); postSolve(t, s, pipelineSpec(3), "") }()
	<-entered // first request holds the only worker slot
	wg.Add(1)
	go func() { defer wg.Done(); postSolve(t, s, pipelineSpec(4), "") }()
	waitFor(t, func() bool { return s.metrics.queued.Load() == 1 })

	r := postSolve(t, s, pipelineSpec(5), "")
	if r.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429", r.Code)
	}
	if r.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	wg.Wait()
	if s.metrics.admissionRejected.Load() != 1 {
		t.Errorf("admissionRejected = %d, want 1", s.metrics.admissionRejected.Load())
	}
}

func TestBadSpecIs400(t *testing.T) {
	s := New(Config{})
	for name, body := range map[string]string{
		"not json":         "{",
		"unknown field":    `{"mode": "soft", "bogus": 1}`,
		"no tasks":         `{"mode": "soft", "diameter": 3, "softStatistic": {"type": "bernoulli", "perTX": 0.9}}`,
		"duplicate task":   `{"mode": "weakly-hard", "diameter": 3, "tasks": [{"name": "a", "node": "n", "wcet": 1}, {"name": "a", "node": "n", "wcet": 2}], "whStatistic": {"type": "synthetic"}}`,
		"duplicate edge":   `{"mode": "weakly-hard", "diameter": 3, "tasks": [{"name": "a", "node": "n0", "wcet": 1}, {"name": "b", "node": "n1", "wcet": 2}], "edges": [{"from": "a", "to": "b", "width": 4}, {"from": "a", "to": "b", "width": 8}], "whStatistic": {"type": "synthetic"}}`,
		"invalid deadline": pipelineSpec(3),
	} {
		query := ""
		if name == "invalid deadline" {
			query = "?deadline=yesterday"
		}
		if r := postSolve(t, s, body, query); r.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, r.Code)
		}
	}
}

func TestUnsolvableSpecIs422(t *testing.T) {
	s := New(Config{})
	// Probability-1 over a lossy bus is structurally unsatisfiable.
	unsat := `{
  "mode": "soft", "diameter": 3,
  "tasks": [
    {"name": "a", "node": "n0", "wcet": 100},
    {"name": "b", "node": "n1", "wcet": 100}
  ],
  "edges": [{"from": "a", "to": "b", "width": 4}],
  "softStatistic": {"type": "bernoulli", "perTX": 0.9},
  "softConstraints": {"b": 1.0}
}`
	r := postSolve(t, s, unsat, "")
	if r.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unsat spec: status %d, want 422; body %s", r.Code, r.Body)
	}
	if s.metrics.solveErrors.Load() != 1 {
		t.Errorf("solveErrors = %d, want 1", s.metrics.solveErrors.Load())
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	s.SetDraining()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	if r := postSolve(t, s, pipelineSpec(3), ""); r.Code != http.StatusOK {
		t.Fatalf("solve: %d", r.Code)
	}
	postSolve(t, s, pipelineSpec(3), "")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"netdag_cache_hits_total 1",
		"netdag_cache_misses_total 1",
		"netdag_solves_coalesced_total 0",
		"netdag_cache_entries 1",
		"netdag_solve_seconds_count 1",
		"netdag_solve_seconds_bucket{le=\"+Inf\"} 1",
		"netdag_solver_nodes_total",
		"netdag_explored_assignments_total",
		"netdag_queue_depth 0",
		"netdag_inflight_solves 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// waitFor polls cond for up to ~5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
