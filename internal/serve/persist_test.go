package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/journal"
)

// variantSpec is pipelineSpec's DAG with free task weights: any two
// variants share a StructuralFingerprint but (almost surely) not a
// Fingerprint.
func variantSpec(sense, ctrl, act int) string {
	return fmt.Sprintf(`{
  "mode": "weakly-hard",
  "diameter": 3,
  "tasks": [
    {"name": "sense", "node": "n0", "wcet": %d},
    {"name": "ctrl",  "node": "n1", "wcet": %d},
    {"name": "act",   "node": "n2", "wcet": %d}
  ],
  "edges": [
    {"from": "sense", "to": "ctrl", "width": 8},
    {"from": "ctrl",  "to": "act",  "width": 4}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"act": {"misses": 10, "window": 40}}
}`, sense, ctrl, act)
}

// TestJournalRestoreServesByteIdentical: a restarted instance replays
// its journal and serves the previous process's schedules as cache
// hits, byte for byte.
func TestJournalRestoreServesByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")

	s1 := New(Config{})
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	bodies := map[int]string{}
	for _, d := range []int{3, 4, 5} {
		r := postSolve(t, s1, pipelineSpec(d), "")
		if r.Code != http.StatusOK {
			t.Fatalf("diameter %d: status %d", d, r.Code)
		}
		bodies[d] = r.Body.String()
	}
	if got := s1.metrics.journalAppended.Load(); got != 3 {
		t.Fatalf("journalAppended = %d, want 3", got)
	}
	if err := s1.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server, same journal.
	s2 := New(Config{})
	stats, err := s2.AttachJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 3 || stats.Skipped != 0 || stats.Truncated {
		t.Fatalf("replay stats = %+v, want 3 clean replays", stats)
	}
	if s2.metrics.journalReplayed.Load() != 3 {
		t.Error("replay not surfaced in metrics")
	}
	for _, d := range []int{3, 4, 5} {
		r := postSolve(t, s2, pipelineSpec(d), "")
		if got := r.Header().Get(cacheHeader); got != "hit" {
			t.Errorf("diameter %d after restart: cache header %q, want hit", d, got)
		}
		if r.Body.String() != bodies[d] {
			t.Errorf("diameter %d after restart: body differs from the original solve", d)
		}
	}
	if s2.metrics.cacheMisses.Load() != 0 {
		t.Error("restart re-solved journaled specs")
	}
	s2.CloseJournal()
}

// TestJournalRestoreRebuildsWarmIndex: replay restores not just bodies
// but the structural warm index — the first miss after a restart is
// warm-started from a pre-restart structural twin.
func TestJournalRestoreRebuildsWarmIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")

	s1 := New(Config{})
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	if r := postSolve(t, s1, variantSpec(500, 2000, 300), ""); r.Code != http.StatusOK {
		t.Fatalf("prime solve: status %d", r.Code)
	}
	s1.CloseJournal()

	s2 := New(Config{})
	if _, err := s2.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	r := postSolve(t, s2, variantSpec(600, 1900, 350), "")
	if r.Code != http.StatusOK {
		t.Fatalf("variant solve: status %d, body %s", r.Code, r.Body)
	}
	if r.Header().Get(warmHeader) == "" {
		t.Error("post-restart variant was not warm-started from the replayed twin")
	}
	if s2.metrics.warmSeeded.Load() != 1 {
		t.Errorf("warmSeeded = %d, want 1", s2.metrics.warmSeeded.Load())
	}
	s2.CloseJournal()
}

// TestJournalAttachCompacts: replay applies the cache's LRU bound, and
// attach rewrites the journal down to the resident set — the file does
// not grow without bound across restarts.
func TestJournalAttachCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")

	s1 := New(Config{})
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{3, 4, 5} {
		postSolve(t, s1, pipelineSpec(d), "")
	}
	s1.CloseJournal()

	s2 := New(Config{CacheEntries: 1})
	stats, err := s2.AttachJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 3 {
		t.Fatalf("replayed = %d, want 3 (LRU applies after replay, not during read)", stats.Replayed)
	}
	if s2.cache.len() != 1 {
		t.Fatalf("resident = %d, want 1", s2.cache.len())
	}
	// The newest record (diameter 5) survives the bound.
	if got := postSolve(t, s2, pipelineSpec(5), "").Header().Get(cacheHeader); got != "hit" {
		t.Errorf("newest journaled entry: cache header %q, want hit", got)
	}
	s2.CloseJournal()

	var keys []string
	st, err := journal.Replay(path, func(rec journal.Record) { keys = append(keys, rec.Key) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 1 || len(keys) != 1 {
		t.Fatalf("compacted journal holds %d records, want 1", st.Replayed)
	}
}

// TestJournalCorruptionSurvivesThroughServe: flipping a byte mid-file
// and tearing the tail costs exactly the damaged records; the rest
// replay and serve, and the damage is visible in metrics.
func TestJournalCorruptionSurvivesThroughServe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")

	s1 := New(Config{})
	if _, err := s1.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	r3 := postSolve(t, s1, pipelineSpec(3), "")
	postSolve(t, s1, pipelineSpec(4), "")
	postSolve(t, s1, pipelineSpec(5), "")
	s1.CloseJournal()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF // corrupt a middle record
	raw = raw[:len(raw)-7]  // tear the tail mid-record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{})
	stats, err := s2.AttachJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == 0 || !stats.Truncated {
		t.Fatalf("replay stats = %+v, want skipped records and a healed tail", stats)
	}
	if s2.metrics.journalSkipped.Load() == 0 || s2.metrics.journalTruncated.Load() != 1 {
		t.Error("journal damage not surfaced in metrics")
	}
	// The first record predates the damage and must serve byte-identical.
	r := postSolve(t, s2, pipelineSpec(3), "")
	if got := r.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("undamaged record: cache header %q, want hit", got)
	}
	if r.Body.String() != r3.Body.String() {
		t.Error("undamaged record served different bytes after crash recovery")
	}
	s2.CloseJournal()
}

// TestWarmStartSeedsSolver: the second solve of a structural shape is
// seeded with the first's makespan — observed both in the Problem
// handed to the solver and in the response's warm header.
func TestWarmStartSeedsSolver(t *testing.T) {
	var seeds []int64
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			seeds = append(seeds, p.WarmMakespan)
			return core.SolveContext(ctx, p)
		},
	})
	r1 := postSolve(t, s, variantSpec(500, 2000, 300), "")
	if r1.Code != http.StatusOK {
		t.Fatalf("prime: status %d", r1.Code)
	}
	if r1.Header().Get(warmHeader) != "" {
		t.Error("first solve of a shape claims a warm seed")
	}
	r2 := postSolve(t, s, variantSpec(450, 2100, 320), "")
	if r2.Code != http.StatusOK {
		t.Fatalf("variant: status %d", r2.Code)
	}
	if r2.Header().Get(warmHeader) == "" {
		t.Error("structural twin was not warm-started")
	}
	if len(seeds) != 2 || seeds[0] != 0 || seeds[1] <= 0 {
		t.Fatalf("solver saw WarmMakespan seeds %v, want [0, >0]", seeds)
	}
	if s.metrics.warmSeeded.Load() != 1 {
		t.Errorf("warmSeeded = %d, want 1", s.metrics.warmSeeded.Load())
	}
	// A structurally different spec must not inherit the hint.
	postSolve(t, s, pipelineSpec(4), "")
	if seeds[2] != 0 {
		t.Errorf("different shape inherited WarmMakespan %d", seeds[2])
	}
}

// TestWarmStartBitIdenticalSchedules: warm-started solves return the
// exact bytes a cold server produces for the same spec — the hint
// prunes the search, never the answer.
func TestWarmStartBitIdenticalSchedules(t *testing.T) {
	specs := []string{
		variantSpec(500, 2000, 300),
		variantSpec(700, 1500, 200),  // cheaper ctrl: optimum below the hint
		variantSpec(900, 2500, 1200), // heavier everything: optimum above the hint
		variantSpec(100, 100, 100),
	}
	warm := New(Config{})
	cold := New(Config{DisableWarmStart: true})
	for i, sp := range specs {
		rw := postSolve(t, warm, sp, "")
		rc := postSolve(t, cold, sp, "")
		if rw.Code != http.StatusOK || rc.Code != http.StatusOK {
			t.Fatalf("variant %d: warm %d cold %d", i, rw.Code, rc.Code)
		}
		if rw.Body.String() != rc.Body.String() {
			t.Errorf("variant %d: warm-started schedule differs from cold solve", i)
		}
		if i > 0 && rw.Header().Get(warmHeader) == "" {
			t.Errorf("variant %d was not warm-started", i)
		}
		if rc.Header().Get(warmHeader) != "" {
			t.Errorf("variant %d: DisableWarmStart still seeded a hint", i)
		}
	}
	if got := warm.metrics.warmSeeded.Load(); got != int64(len(specs)-1) {
		t.Errorf("warmSeeded = %d, want %d", got, len(specs)-1)
	}
	if cold.metrics.warmSeeded.Load() != 0 {
		t.Error("cold server counted warm seeds")
	}
}

// TestWarmHintNotTakenFromIncompleteResults: deadline-interrupted
// incumbents are never cached, so they can never seed later solves with
// an unproven bound.
func TestWarmHintNotTakenFromIncompleteResults(t *testing.T) {
	first := true
	s := New(Config{
		SolveFn: func(ctx context.Context, p *core.Problem) (*core.Schedule, error) {
			if first {
				first = false
				sched, err := core.SolveContext(context.Background(), p)
				if err != nil {
					return nil, err
				}
				sched.Optimal = false
				return sched, core.ErrCanceled // incumbent at deadline
			}
			return core.SolveContext(ctx, p)
		},
	})
	r1 := postSolve(t, s, variantSpec(500, 2000, 300), "")
	if r1.Code != http.StatusOK || r1.Header().Get(incompleteHeader) == "" {
		t.Fatalf("prime: status %d incomplete %q", r1.Code, r1.Header().Get(incompleteHeader))
	}
	r2 := postSolve(t, s, variantSpec(450, 2100, 320), "")
	if r2.Header().Get(warmHeader) != "" {
		t.Error("an unproven incumbent seeded a warm hint")
	}
	if s.metrics.warmSeeded.Load() != 0 {
		t.Error("warmSeeded counted a hint from an uncached incumbent")
	}
}
