// Package serve is the NETDAG scheduling service: a net/http JSON API
// that accepts problem specs (spec.File) on POST /v1/solve and answers
// with solved schedules (spec.ScheduleOut).
//
// The batch CLIs re-solve from scratch on every invocation; a serving
// layer exploits the workload's read-heavy shape instead. Three
// mechanisms make it production-shaped rather than a thin HTTP wrapper:
//
//   - a content-addressed LRU solution cache keyed by spec.Fingerprint,
//     so repeated identical problems are one map lookup, and
//     singleflight-style coalescing so concurrent identical requests
//     share one solve;
//   - admission control: a global worker budget with a bounded wait
//     queue, answering 429 + Retry-After when saturated instead of
//     letting solves pile up;
//   - real deadlines: each request's deadline is plumbed as a context
//     into core.SolveContext, which interrupts the search at its prune
//     points and hands back the incumbent (served with optimal=false)
//     or nothing (504).
//
// Observability: GET /healthz (503 while draining), GET /metrics in
// Prometheus text format, and structured JSON access logs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netdag/netdag/internal/backoff"
	"github.com/netdag/netdag/internal/cluster"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/journal"
	"github.com/netdag/netdag/internal/session"
	"github.com/netdag/netdag/internal/spec"
)

// Config tunes a Server. The zero value is usable: every knob has a
// default applied by New.
type Config struct {
	// CacheEntries bounds the solution cache (default 256).
	CacheEntries int
	// MaxConcurrent is the global solve budget: how many solves may run
	// at once across all requests (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds how many solves may wait for a worker slot
	// before new work is rejected with 429 (default 64).
	QueueDepth int
	// SolveWorkers is Problem.Workers for each solve (default 0 =
	// GOMAXPROCS inside the solver).
	SolveWorkers int
	// Portfolio enables the racing solver portfolio for every solve
	// (core.Problem.Portfolio). The portfolio is deterministic, so cached
	// bodies stay reproducible; PortfolioSeed feeds its seeded restart
	// strategy without affecting the result.
	Portfolio     bool
	PortfolioSeed int64
	// DefaultDeadline applies to requests that name no deadline; zero
	// means solve without a deadline.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadline; zero means uncapped.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Logger receives structured access and lifecycle logs (default: a
	// JSON logger is NOT installed; logs are discarded).
	Logger *slog.Logger
	// MaxSessions bounds concurrently live scheduler sessions
	// (default 8); creation beyond it answers 429.
	MaxSessions int
	// SessionDeadline bounds each session re-solve attempt (0 = none:
	// deterministic single-attempt re-solves).
	SessionDeadline time.Duration
	// SessionAttempts bounds deadline-expired re-solve retries per
	// session event (0 = the session default).
	SessionAttempts int
	// RetryPolicy shapes the jittered exponential Retry-After hint on
	// 429 responses: consecutive rejections push the hint out, a
	// successful admission resets it. The zero value selects
	// {Base: 1s, Max: 30s}.
	RetryPolicy backoff.Policy
	// RetrySeed seeds the Retry-After jitter (0 = no jitter: hints are
	// the deterministic envelope).
	RetrySeed int64
	// Cluster shards the cache tier across peers (internal/cluster):
	// each fingerprint has one owning instance, computed on the
	// consistent-hash ring; non-owners forward misses a single hop to
	// the owner and fall back to solving locally when it is down. The
	// zero value runs unclustered.
	Cluster cluster.Config
	// DisableWarmStart turns off near-neighbor warm-starting: by
	// default a cache miss seeds core.Problem.WarmMakespan from the
	// most recently cached schedule with the same
	// spec.StructuralFingerprint (same DAG shape, different
	// weights/periods), which prunes the new solve without changing
	// its result.
	DisableWarmStart bool
	// MaxBatchItems bounds the specs accepted by one /v1/solve-batch
	// request (default 256).
	MaxBatchItems int
	// MaxBatchBytes bounds batch request bodies (default 16 MiB —
	// batch envelopes legitimately exceed MaxBodyBytes).
	MaxBatchBytes int64
	// BaseContext is the server's lifetime: canceling it drains the
	// server — running solves are interrupted, /healthz turns 503
	// (default context.Background()).
	BaseContext context.Context
	// SolveFn replaces core.SolveContext, for tests that need a
	// deterministic or instrumented solver.
	SolveFn func(ctx context.Context, p *core.Problem) (*core.Schedule, error)
}

// Server is the scheduling service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg      Config
	log      *slog.Logger
	baseCtx  context.Context
	cache    *lruCache
	sem      chan struct{} // worker budget; acquired per solve
	flights  flightGroup
	metrics  metrics
	draining atomic.Bool
	solve    func(ctx context.Context, p *core.Problem) (*core.Schedule, error)
	mux      *http.ServeMux

	// clust is non-nil when the server participates in a cache-sharding
	// cluster; journal is non-nil after AttachJournal. Both are wired at
	// startup, before traffic, and read-only afterwards.
	clust   *clusterState
	journal *journal.Journal

	sessions sessionRegistry

	// Retry-After backoff state: consecutive 429s (any endpoint) widen
	// the hint; a successful admission resets it.
	retryMu  sync.Mutex
	retryRng *rand.Rand // nil = deterministic envelope
	rejected int        // consecutive 429s
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 8
	}
	if cfg.RetryPolicy.Base <= 0 {
		cfg.RetryPolicy.Base = time.Second
	}
	if cfg.RetryPolicy.Max <= 0 {
		cfg.RetryPolicy.Max = 30 * time.Second
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 16 << 20
	}
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		baseCtx: cfg.BaseContext,
		cache:   newLRUCache(cfg.CacheEntries),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		solve:   cfg.SolveFn,
	}
	if s.solve == nil {
		s.solve = core.SolveContext
	}
	if cfg.RetrySeed != 0 {
		s.retryRng = rand.New(rand.NewSource(cfg.RetrySeed))
	}
	s.sessions.m = make(map[string]*session.Session)
	s.flights.m = make(map[string]*flight)
	if cfg.Cluster.Enabled() {
		if err := cfg.Cluster.Validate(); err != nil {
			// Refuse to guess at membership: a misconfigured ring routes
			// keys to the wrong owner on every peer. Run unclustered and
			// say so.
			s.log.Error("cluster config rejected; running unclustered", "err", err)
		} else {
			s.clust = newClusterState(cfg.Cluster)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve-batch", s.handleSolveBatch)
	s.mux.HandleFunc("POST /v1/certify", s.handleCertify)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("POST /v1/session/{id}/events", s.handleSessionEvent)
	s.mux.HandleFunc("GET /v1/session/{id}/journal", s.handleSessionJournal)
	s.mux.HandleFunc("GET /v1/session/{id}/feed", s.handleSessionFeed)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP dispatches to the API and emits one structured access-log
// line per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"bytes", rec.bytes,
		"durMS", time.Since(start).Milliseconds(),
		"cache", rec.Header().Get(cacheHeader),
		"remote", r.RemoteAddr,
	)
}

// statusRecorder captures the response status and size for access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the
// session event feed) can push entries through the access-log wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Response headers describing how the request was served.
const (
	cacheHeader      = "X-Netdag-Cache"      // hit | miss | coalesced | remote
	incompleteHeader = "X-Netdag-Incomplete" // "deadline": body is a non-optimal incumbent
	fingerprintHdr   = "X-Netdag-Spec"       // the spec's canonical fingerprint
	forwardedHeader  = "X-Netdag-Forwarded"  // origin peer name; present ⇒ never forward again
	peerHeader       = "X-Netdag-Peer"       // owning peer that served a forwarded request
	warmHeader       = "X-Netdag-Warm"       // WarmMakespan hint the solve was seeded with
)

// solveResult is the outcome of one flight, relayed to the leader and
// every coalesced follower. A zero status means "nothing to write"
// (the waiting client disconnected).
type solveResult struct {
	status     int    // HTTP status to relay
	body       []byte // JSON payload (ScheduleOut or {"error": ...})
	incomplete bool   // 200 carrying a deadline-interrupted incumbent
	warm       int64  // >0: the WarmMakespan hint that seeded the solve
	peer       string // non-empty: the peer that served this result
}

// flight is one in-progress solve that concurrent identical requests
// wait on instead of solving again.
type flight struct {
	done chan struct{}
	res  solveResult
}

// flightGroup is a minimal singleflight: at most one flight per
// fingerprint is in progress at a time.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the in-progress flight for key, or registers a new one
// (leader = true) that the caller must finish.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	return fl, true
}

// finish publishes the result and wakes every follower.
func (g *flightGroup) finish(key string, fl *flight, res solveResult) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	fl.res = res
	close(fl.done)
}

// handleSolve is POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()

	var f spec.File
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid spec: %v", err))
		return
	}
	key, err := spec.Fingerprint(&f)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set(fingerprintHdr, key)

	deadline, err := s.requestDeadline(r)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	res, cacheState := s.solveOne(r.Context(), &f, key, start, deadline,
		r.Header.Get(forwardedHeader) == "")
	if res.status == 0 {
		return // client gone while waiting; nothing to write
	}
	s.relay(w, res, cacheState)
}

// solveOne serves one fingerprinted spec through the full read path —
// local cache, cluster forwarding, coalescing, admission, solve — and
// is shared by /v1/solve and every /v1/solve-batch item. waitCtx
// bounds how long a coalesced follower (or a forward) may wait: the
// originating request's context. forwardable is false for requests
// that already took their single cluster hop.
func (s *Server) solveOne(waitCtx context.Context, f *spec.File, key string, start time.Time, deadline time.Duration, forwardable bool) (solveResult, string) {
	// Hot path: an identical problem was already solved here. Checked
	// before ownership — the local read-through that keeps previously
	// owned (or fallback-solved) entries serving after ring changes.
	if body, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		return solveResult{status: http.StatusOK, body: body}, "hit"
	}

	if forwardable && s.clust != nil {
		if owner, url, remote := s.clust.ownerOf(key); remote {
			if res, ok := s.forward(waitCtx, owner, url, f, start, deadline); ok {
				return res, "remote"
			}
			// The owner is unreachable: solve locally rather than fail the
			// request. The result lands in the local cache (read-through),
			// so repeated requests during the outage still hit.
			s.metrics.forwardFailed.Add(1)
		}
	}

	fl, leader := s.flights.join(key)
	if !leader {
		// Coalesce: wait for the identical in-flight solve, bounded by
		// this request's own deadline budget.
		s.metrics.coalesced.Add(1)
		return s.awaitFlight(waitCtx, fl, start, deadline), "coalesced"
	}
	s.metrics.cacheMisses.Add(1)
	res := s.runFlight(f, key, start, deadline)
	s.flights.finish(key, fl, res)
	return res, "miss"
}

// awaitFlight returns an in-flight solve's result to a follower, giving
// up at the follower's own deadline. A zero-status result means the
// follower's client disconnected first.
func (s *Server) awaitFlight(waitCtx context.Context, fl *flight, start time.Time, deadline time.Duration) solveResult {
	var expired <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline - time.Since(start))
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-fl.done:
		return fl.res
	case <-expired:
		s.metrics.deadlineExpired.Add(1)
		return errorResult(http.StatusGatewayTimeout, "deadline expired waiting for the coalesced solve")
	case <-waitCtx.Done():
		return solveResult{} // client gone; nothing to write
	}
}

// runFlight validates, queues, and solves one problem, producing the
// result every requester of this fingerprint receives.
func (s *Server) runFlight(f *spec.File, key string, start time.Time, deadline time.Duration) solveResult {
	p, err := spec.Build(f)
	if err != nil {
		s.metrics.badRequests.Add(1)
		return errorResult(http.StatusBadRequest, err.Error())
	}
	if s.cfg.SolveWorkers > 0 {
		p.Workers = s.cfg.SolveWorkers
	}
	if s.cfg.Portfolio {
		p.Portfolio = true
		p.PortfolioSeed = s.cfg.PortfolioSeed
	}

	// Warm-start: seed the search from structurally identical cached
	// schedules (same DAG shape, different weights/periods).
	// WarmMakespan is a hint, never a constraint — the core redoes the
	// search cold when the hint excludes every assignment — so the
	// schedule stays bit-identical to an unhinted solve. The 25%
	// headroom over the class maximum keeps the hint admissible when
	// this variant's optimum modestly exceeds every cached twin's;
	// undershooting costs a full cold redo, overshooting only weakens
	// pruning.
	var structKey string
	var warm int64
	if !s.cfg.DisableWarmStart {
		if sk, err := spec.StructuralFingerprint(f); err == nil {
			structKey = sk
			if hint, ok := s.cache.warmHint(sk, key); ok {
				warm = hint + hint/4
				p.WarmMakespan = warm
				s.metrics.warmSeeded.Add(1)
			}
		}
	}

	// The solve's context: the server's lifetime (drain interrupts all
	// solves) plus the leader's deadline budget. Deliberately NOT the
	// request context — if the leader disconnects, coalesced followers
	// still want the result.
	ctx := s.baseCtx
	cancel := func() {}
	if deadline > 0 {
		ctx, cancel = context.WithDeadline(s.baseCtx, start.Add(deadline))
	}
	defer cancel()

	// Admission: take a worker slot, or queue for one within bounds.
	if res, ok := s.admit(ctx); !ok {
		return res
	}
	defer func() { <-s.sem }()

	s.metrics.inflight.Add(1)
	solveStart := time.Now()
	var sched *core.Schedule
	var front []core.ParetoPoint
	if p.Objective == core.ObjectivePareto {
		// "pareto" asks for the full energy/latency front: an
		// epsilon-constraint sweep of objective-scalarized solves rather
		// than one solve, so the SolveFn instrumentation hook does not
		// apply. A deadline-truncated sweep serves its partial front (the
		// energy-minimal prefix) as an incomplete, never-cached body.
		front, err = core.ParetoFrontContext(ctx, p)
		if len(front) > 0 {
			sched = front[0].Sched
		}
	} else {
		sched, err = s.solve(ctx, p)
	}
	s.metrics.inflight.Add(-1)
	s.metrics.observeSolve(time.Since(solveStart))

	canceled := errors.Is(err, core.ErrCanceled)
	switch {
	case err == nil, canceled && sched != nil:
		var out *spec.ScheduleOut
		var xerr error
		if front != nil {
			out, xerr = spec.ExportFront(p, front)
		} else {
			out, xerr = spec.Export(p, sched)
		}
		if xerr != nil {
			return errorResult(http.StatusInternalServerError, xerr.Error())
		}
		body, merr := json.Marshal(out)
		if merr != nil {
			return errorResult(http.StatusInternalServerError, merr.Error())
		}
		s.metrics.exploredAssignments.Add(int64(sched.Explored))
		s.metrics.solverNodes.Add(int64(sched.SolverNodes))
		if canceled {
			// A deadline-interrupted incumbent is feasible but not
			// proven optimal: serve it, never cache it.
			s.metrics.incomplete.Add(1)
			return solveResult{status: http.StatusOK, body: body, incomplete: true, warm: warm}
		}
		s.cache.put(key, structKey, out.MakespanUS, body)
		s.journalAppend(journal.Record{Key: key, Struct: structKey, MakespanUS: out.MakespanUS, Body: body})
		return solveResult{status: http.StatusOK, body: body, warm: warm}
	case canceled:
		s.metrics.deadlineExpired.Add(1)
		return errorResult(http.StatusGatewayTimeout, "deadline expired before any schedule was found")
	default:
		s.metrics.solveErrors.Add(1)
		return errorResult(http.StatusUnprocessableEntity, err.Error())
	}
}

// requestDeadline resolves the effective deadline budget for a request
// from its ?deadline=<duration> query parameter, the server default, and
// the server cap.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	d := s.cfg.DefaultDeadline
	if raw := r.URL.Query().Get("deadline"); raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("invalid deadline %q: %v", raw, err)
		}
		if parsed <= 0 {
			return 0, fmt.Errorf("deadline %q must be positive", raw)
		}
		d = parsed
	}
	if s.cfg.MaxDeadline > 0 && (d == 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// SetDraining marks the server as draining: /healthz answers 503 so
// load balancers stop routing here, while in-flight solves continue
// until the base context is canceled.
func (s *Server) SetDraining() {
	s.draining.Store(true)
}

// handleHealthz is GET /healthz: 200 while serving, 503 once draining
// begins (SetDraining) or the base context is canceled.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.baseCtx.Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, []byte(`{"status":"draining"}`), "")
		return
	}
	writeJSON(w, http.StatusOK, []byte(`{"status":"ok"}`), "")
}

// handleMetrics is GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w, s.cache.len(), s.sessionAggregate())
}

// relay writes a flight's outcome, attaching admission hints and
// provenance headers.
func (s *Server) relay(w http.ResponseWriter, res solveResult, cache string) {
	if res.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
	}
	if res.incomplete {
		w.Header().Set(incompleteHeader, "deadline")
	}
	if res.warm > 0 {
		w.Header().Set(warmHeader, strconv.FormatInt(res.warm, 10))
	}
	if res.peer != "" {
		w.Header().Set(peerHeader, res.peer)
	}
	writeJSON(w, res.status, res.body, cache)
}

// retryAfterHint is the Retry-After value on 429s: a jittered
// exponential backoff over consecutive rejections (internal/backoff,
// the same policy shape the session re-solve retry loop uses), so that
// under sustained overload, retrying clients spread out instead of
// stampeding back in lockstep every fixed second. A successful
// admission (admitted) resets the sequence.
func (s *Server) retryAfterHint() int {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	h := s.cfg.RetryPolicy.HintSeconds(s.rejected, s.retryRng)
	s.rejected++
	return h
}

// admitted resets the Retry-After backoff: capacity exists again.
func (s *Server) admitted() {
	s.retryMu.Lock()
	s.rejected = 0
	s.retryMu.Unlock()
}

func errorResult(status int, msg string) solveResult {
	return solveResult{status: status, body: errorBody(msg)}
}

func errorBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return b
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody(msg), "")
}

func writeJSON(w http.ResponseWriter, status int, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	if cache != "" {
		w.Header().Set(cacheHeader, cache)
	}
	w.WriteHeader(status)
	w.Write(body)
}
