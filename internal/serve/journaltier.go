package serve

import (
	"github.com/netdag/netdag/internal/journal"
)

// AttachJournal gives the solution cache a persistent tier: the
// append-only checksummed journal at path is replayed into the cache
// (so a restarted instance serves its corpus — including the
// warm-start index — without re-solving it), compacted down to the
// live entries, and then kept appended with every complete solve.
//
// Call before serving traffic: the journal pointer is read without
// synchronization on the solve path. Replay applies the cache's own
// LRU policy, so a journal larger than CacheEntries replays into the
// newest CacheEntries records; compaction then shrinks the file to
// exactly the resident set, bounding journal growth across restarts.
// Torn tails are healed and corrupt records skipped (see package
// journal); both are surfaced in the returned stats and the
// netdag_journal_* metrics.
func (s *Server) AttachJournal(path string) (journal.Stats, error) {
	j, stats, err := journal.OpenReplay(path, func(rec journal.Record) {
		s.cache.put(rec.Key, rec.Struct, rec.MakespanUS, []byte(rec.Body))
	})
	if err != nil {
		return stats, err
	}
	s.metrics.journalReplayed.Add(int64(stats.Replayed))
	s.metrics.journalSkipped.Add(int64(stats.Skipped))
	if stats.Truncated {
		s.metrics.journalTruncated.Add(1)
	}
	if err := j.Rewrite(s.cache.snapshot()); err != nil {
		j.Close()
		return stats, err
	}
	s.journal = j
	s.log.Info("journal attached", "path", path,
		"replayed", stats.Replayed, "skipped", stats.Skipped, "truncated", stats.Truncated,
		"resident", s.cache.len())
	return stats, nil
}

// journalAppend records one complete solve in the persistent tier, if
// one is attached. Append failures are counted and logged, never
// propagated: the response was already computed and the journal is a
// cache of a cache.
func (s *Server) journalAppend(rec journal.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.metrics.journalErrors.Add(1)
		s.log.Error("journal append failed", "key", rec.Key, "err", err)
		return
	}
	s.metrics.journalAppended.Add(1)
}

// CloseJournal syncs and closes the persistent cache tier (no-op when
// none is attached). Call after draining.
func (s *Server) CloseJournal() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}
