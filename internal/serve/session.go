package serve

// The online session API: long-lived scheduler sessions (internal/session)
// exposed over HTTP. A session is created from a spec, fed a stream of
// delta events, and observed through its status, its replayable event
// journal, and a streaming feed:
//
//	POST   /v1/session             {"spec": {...}, "safeDiameters": [...]}
//	GET    /v1/session/{id}        status snapshot
//	POST   /v1/session/{id}/events one session.Event; answers the journal entry
//	GET    /v1/session/{id}/journal?since=N
//	GET    /v1/session/{id}/feed?since=N   long-poll JSONL stream
//	DELETE /v1/session/{id}        close; answers the final counters
//
// Event solves run under the server's admission control — a session
// re-solve takes a worker slot like any POST /v1/solve — and re-solve
// latencies land in the netdag_session_resolve_seconds histogram.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/netdag/netdag/internal/session"
	"github.com/netdag/netdag/internal/spec"
)

// sessionRegistry tracks the server's live sessions and accumulates the
// counters of closed ones, so scrape-time aggregates never go backwards.
type sessionRegistry struct {
	mu           sync.Mutex
	m            map[string]*session.Session
	nextID       int64
	closedTotals session.Stats
}

// sessionAgg is the scrape-time view: live session count plus counters
// summed over live and closed sessions.
type sessionAgg struct {
	live  int64
	stats session.Stats
}

func addStats(a *session.Stats, b session.Stats) {
	a.Events += b.Events
	a.Applied += b.Applied
	a.Rejected += b.Rejected
	a.RejectedSwaps += b.RejectedSwaps
	a.Fallbacks += b.Fallbacks
	a.ModeSwitches += b.ModeSwitches
	a.Recoveries += b.Recoveries
	a.Resolves += b.Resolves
	a.WarmHits += b.WarmHits
}

func (s *Server) sessionAggregate() sessionAgg {
	s.sessions.mu.Lock()
	defer s.sessions.mu.Unlock()
	agg := sessionAgg{live: int64(len(s.sessions.m)), stats: s.sessions.closedTotals}
	for _, sess := range s.sessions.m {
		addStats(&agg.stats, sess.Stats())
	}
	return agg
}

// sessionRequest is the POST /v1/session body.
type sessionRequest struct {
	Spec spec.File `json:"spec"`
	// SafeDiameters configures the degraded-mode table (default: the
	// spec's diameter only).
	SafeDiameters []int `json:"safeDiameters,omitempty"`
}

// sessionCreated is the POST /v1/session response.
type sessionCreated struct {
	ID     string             `json:"id"`
	Status session.StatusView `json:"status"`
}

// handleSessionCreate is POST /v1/session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid session request: %v", err))
		return
	}

	s.sessions.mu.Lock()
	if len(s.sessions.m) >= s.cfg.MaxSessions {
		s.sessions.mu.Unlock()
		s.metrics.admissionRejected.Add(1)
		s.relay(w, errorResult(http.StatusTooManyRequests,
			fmt.Sprintf("session limit (%d) reached; close one or retry later", s.cfg.MaxSessions)), "")
		return
	}
	s.sessions.mu.Unlock()

	// The initial solve and safe-table precomputation run under the same
	// worker budget as any solve.
	ctx, cancel := s.sessionSolveContext(r)
	defer cancel()
	if res, ok := s.admit(ctx); !ok {
		s.relay(w, res, "")
		return
	}
	sess, err := session.New(ctx, &req.Spec, session.Config{
		Workers:         s.cfg.SolveWorkers,
		Portfolio:       s.cfg.Portfolio,
		PortfolioSeed:   s.cfg.PortfolioSeed,
		ResolveDeadline: s.cfg.SessionDeadline,
		MaxAttempts:     s.cfg.SessionAttempts,
		BackoffSeed:     s.cfg.PortfolioSeed,
		SafeDiameters:   req.SafeDiameters,
		ObserveResolve:  s.metrics.observeSessionResolve,
	})
	<-s.sem
	if err != nil {
		s.metrics.solveErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	s.sessions.mu.Lock()
	s.sessions.nextID++
	id := fmt.Sprintf("s%d", s.sessions.nextID)
	s.sessions.m[id] = sess
	s.sessions.mu.Unlock()
	s.log.Info("session created", "session", id, "tasks", sess.Status().Tasks)

	body, _ := json.Marshal(sessionCreated{ID: id, Status: sess.Status()})
	writeJSON(w, http.StatusCreated, body, "")
}

// lookupSession resolves {id}, answering 404 itself when absent.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*session.Session, string, bool) {
	id := r.PathValue("id")
	s.sessions.mu.Lock()
	sess, ok := s.sessions.m[id]
	s.sessions.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return nil, id, false
	}
	return sess, id, true
}

// handleSessionStatus is GET /v1/session/{id}.
func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	body, _ := json.Marshal(sess.Status())
	writeJSON(w, http.StatusOK, body, "")
}

// handleSessionEvent is POST /v1/session/{id}/events: apply one delta.
// The response is the event's journal entry — a rejected event is still
// a 200 (the rejection is the session working as designed); only a
// closed session (410) or an expired solve budget (504) are errors.
func (s *Server) handleSessionEvent(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var ev session.Event
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid event: %v", err))
		return
	}

	ctx, cancel := s.sessionSolveContext(r)
	defer cancel()
	if res, ok := s.admit(ctx); !ok {
		s.relay(w, res, "")
		return
	}
	entry, err := sess.Apply(ctx, ev)
	<-s.sem
	switch {
	case errors.Is(err, session.ErrClosed):
		writeError(w, http.StatusGone, fmt.Sprintf("session %q is closed", id))
		return
	case err != nil:
		s.metrics.deadlineExpired.Add(1)
		writeError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("solve budget expired; event not journaled, re-apply: %v", err))
		return
	}
	body, _ := json.Marshal(entry)
	writeJSON(w, http.StatusOK, body, "")
}

// handleSessionJournal is GET /v1/session/{id}/journal?since=N.
func (s *Server) handleSessionJournal(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	entries := sess.Journal(since)
	if entries == nil {
		entries = []session.Entry{}
	}
	body, _ := json.Marshal(entries)
	writeJSON(w, http.StatusOK, body, "")
}

// handleSessionFeed is GET /v1/session/{id}/feed?since=N: a streaming
// JSONL event feed. Each journal entry is written (and flushed) as one
// line as it lands; the stream ends when the session closes, the client
// disconnects, or the server drains.
func (s *Server) handleSessionFeed(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the header out before blocking: the client's request does
		// not complete until it sees the status line.
		flusher.Flush()
	}

	ctx, cancel := contextJoin(s.baseCtx, r.Context())
	defer cancel()
	for {
		entries, err := sess.Wait(ctx, since)
		if err != nil {
			return // closed session or gone client: the stream just ends
		}
		for _, e := range entries {
			b, merr := json.Marshal(e)
			if merr != nil {
				return
			}
			if _, werr := w.Write(append(b, '\n')); werr != nil {
				return
			}
			since = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSessionDelete is DELETE /v1/session/{id}: close the session and
// answer its final counters.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	final := sess.Close()
	s.sessions.mu.Lock()
	delete(s.sessions.m, id)
	addStats(&s.sessions.closedTotals, final)
	s.sessions.mu.Unlock()
	s.log.Info("session closed", "session", id, "events", final.Events)
	body, _ := json.Marshal(final)
	writeJSON(w, http.StatusOK, body, "")
}

// sessionSolveContext is the context session work runs under: the
// server's lifetime (drain interrupts re-solves) bounded by the request's
// deadline budget. Like runFlight, deliberately not the request context —
// an Apply's outcome is journaled state, not just this response.
func (s *Server) sessionSolveContext(r *http.Request) (ctx context.Context, cancel func()) {
	d, err := s.requestDeadline(r)
	if err != nil || d == 0 {
		return s.baseCtx, func() {}
	}
	return context.WithTimeout(s.baseCtx, d)
}

// contextJoin derives a context canceled when either parent is.
func contextJoin(a, b context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

func sinceParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid since %q: a non-negative integer is required", raw)
	}
	return n, nil
}

// CloseSessions closes every live session (server shutdown).
func (s *Server) CloseSessions() {
	s.sessions.mu.Lock()
	defer s.sessions.mu.Unlock()
	for id, sess := range s.sessions.m {
		addStats(&s.sessions.closedTotals, sess.Close())
		delete(s.sessions.m, id)
	}
}
