package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/netdag/netdag/internal/cluster"
	"github.com/netdag/netdag/internal/spec"
)

// maxRelayBytes bounds what a forwarding peer will buffer of the
// owner's response before giving up on the relay.
const maxRelayBytes = 64 << 20

// clusterState is the server's view of the cache-sharding cluster:
// the membership ring plus the HTTP client used to forward solves to
// the owning peer.
type clusterState struct {
	cfg    cluster.Config
	ring   *cluster.Ring
	client *http.Client
}

func newClusterState(cfg cluster.Config) *clusterState {
	return &clusterState{
		cfg:  cfg,
		ring: cfg.Ring(),
		client: &http.Client{
			// No global timeout: forwarded requests carry the caller's
			// deadline in their context (and in the ?deadline= they hand
			// the owner); an undeadlined solve may legitimately run long.
			Transport: &http.Transport{
				MaxIdleConnsPerHost:   4,
				IdleConnTimeout:       90 * time.Second,
				ResponseHeaderTimeout: 0,
			},
		},
	}
}

// ownerOf resolves a fingerprint to its owning peer. remote is false
// when this instance owns the key (or the ring is degenerate).
func (c *clusterState) ownerOf(key string) (name, baseURL string, remote bool) {
	name = c.ring.Owner(key)
	if name == "" || name == c.cfg.Self {
		return name, "", false
	}
	return name, c.cfg.Peers[name], true
}

// forward relays one spec to its owning peer's /v1/solve and returns
// the owner's answer. ok is false when the owner could not be reached
// or answered 5xx — the caller then solves locally so a dead peer
// degrades throughput, not availability. The forwarded request carries
// forwardedHeader, which the owner honors by never forwarding again:
// routing is single-hop by construction, even while peers briefly
// disagree about membership.
func (s *Server) forward(waitCtx context.Context, owner, base string, f *spec.File, start time.Time, deadline time.Duration) (solveResult, bool) {
	body, err := json.Marshal(f)
	if err != nil {
		return solveResult{}, false
	}
	target := base + "/v1/solve"
	ctx := waitCtx
	if deadline > 0 {
		rem := deadline - time.Since(start)
		if rem <= 0 {
			s.metrics.deadlineExpired.Add(1)
			return errorResult(http.StatusGatewayTimeout, "deadline expired before forwarding"), true
		}
		// The owner gets the remaining budget so its incumbent-at-deadline
		// semantics apply remotely too; the local context mirrors it (with
		// slack for the response to travel back).
		target += "?deadline=" + url.QueryEscape(rem.String())
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(waitCtx, start.Add(deadline+2*time.Second))
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return solveResult{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, s.clust.cfg.Self)
	resp, err := s.clust.client.Do(req)
	if err != nil {
		return solveResult{}, false
	}
	defer resp.Body.Close()
	relayed, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	if err != nil || resp.StatusCode >= http.StatusInternalServerError {
		// A sick owner (5xx) is treated like an unreachable one: the
		// caller's local solve produces a correct answer regardless.
		return solveResult{}, false
	}
	s.metrics.forwarded.Add(1)
	return solveResult{
		status:     resp.StatusCode,
		body:       relayed,
		incomplete: resp.Header.Get(incompleteHeader) != "",
		peer:       owner,
	}, true
}

// Peers reports the cluster membership this instance routes over
// (empty when unclustered) — surfaced for CLIs and tests.
func (s *Server) Peers() []string {
	if s.clust == nil {
		return nil
	}
	return s.clust.ring.Peers()
}
