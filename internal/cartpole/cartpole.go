// Package cartpole implements the classic cartpole balancing environment
// (Barto, Sutton & Anderson 1983, with the parameterization popularized
// by the OpenAI Gym CartPole task) together with the weakly-hard fault
// injection of the paper's §IV-C: on a miss, the actuator holds the
// previous control output (eq. 14), and miss patterns are drawn from the
// eq. (12) adversarial boundary sets.
package cartpole

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/netdag/netdag/internal/wh"
)

// State is the cartpole state vector.
type State struct {
	X        float64 // cart position (m)
	XDot     float64 // cart velocity (m/s)
	Theta    float64 // pole angle (rad, 0 = upright)
	ThetaDot float64 // pole angular velocity (rad/s)
}

// Vector returns the state as a slice for function approximators.
func (s State) Vector() []float64 { return []float64{s.X, s.XDot, s.Theta, s.ThetaDot} }

// Params are the physical constants of the environment.
type Params struct {
	Gravity  float64
	MassCart float64
	MassPole float64
	HalfPole float64 // half the pole length (m)
	ForceMag float64 // magnitude applied per action unit (N)
	Tau      float64 // integration step (s)
	XLimit   float64 // |x| beyond which the episode fails
	ThetaLim float64 // |theta| beyond which the episode fails (rad)
	MaxSteps int     // episode cap ("solved" horizon)
}

// DefaultParams is the standard CartPole-v1 parameterization.
func DefaultParams() Params {
	return Params{
		Gravity:  9.8,
		MassCart: 1.0,
		MassPole: 0.1,
		HalfPole: 0.5,
		ForceMag: 10.0,
		Tau:      0.02,
		XLimit:   2.4,
		ThetaLim: 12 * math.Pi / 180,
		MaxSteps: 500,
	}
}

// Env is a cartpole instance.
type Env struct {
	P     Params
	state State
	steps int
	done  bool
}

// New returns an environment with the given parameters.
func New(p Params) *Env { return &Env{P: p} }

// Reset draws a fresh initial state with each component uniform in
// [-0.05, 0.05], the Gym convention. rng must be non-nil.
func (e *Env) Reset(rng *rand.Rand) (State, error) {
	if rng == nil {
		return State{}, errors.New("cartpole: Reset requires a non-nil rng")
	}
	u := func() float64 { return rng.Float64()*0.1 - 0.05 }
	e.state = State{X: u(), XDot: u(), Theta: u(), ThetaDot: u()}
	e.steps = 0
	e.done = false
	return e.state, nil
}

// State returns the current state.
func (e *Env) State() State { return e.state }

// Steps returns the number of steps taken since Reset.
func (e *Env) Steps() int { return e.steps }

// Done reports whether the episode has ended (failure or step cap).
func (e *Env) Done() bool { return e.done }

// Step applies a control in [-1, 1] (scaled by ForceMag) and advances the
// dynamics by one Euler step. The boolean reports whether the episode
// has ended (failure or step cap).
func (e *Env) Step(control float64) (State, bool, error) {
	if e.done {
		return e.state, false, errors.New("cartpole: Step on finished episode")
	}
	if math.IsNaN(control) || math.IsInf(control, 0) {
		return e.state, false, fmt.Errorf("cartpole: non-finite control %v", control)
	}
	if control > 1 {
		control = 1
	} else if control < -1 {
		control = -1
	}
	p := e.P
	force := control * p.ForceMag
	s := e.state
	cosT, sinT := math.Cos(s.Theta), math.Sin(s.Theta)
	totalMass := p.MassCart + p.MassPole
	poleMassLength := p.MassPole * p.HalfPole
	temp := (force + poleMassLength*s.ThetaDot*s.ThetaDot*sinT) / totalMass
	thetaAcc := (p.Gravity*sinT - cosT*temp) /
		(p.HalfPole * (4.0/3.0 - p.MassPole*cosT*cosT/totalMass))
	xAcc := temp - poleMassLength*thetaAcc*cosT/totalMass
	s.X += p.Tau * s.XDot
	s.XDot += p.Tau * xAcc
	s.Theta += p.Tau * s.ThetaDot
	s.ThetaDot += p.Tau * thetaAcc
	e.state = s
	e.steps++
	if math.Abs(s.X) > p.XLimit || math.Abs(s.Theta) > p.ThetaLim || e.steps >= p.MaxSteps {
		e.done = true
	}
	return e.state, e.done, nil
}

// Failed reports whether the episode ended by constraint violation
// rather than by reaching the step cap.
func (e *Env) Failed() bool {
	return e.done && e.steps < e.P.MaxSteps
}

// Controller maps an observed state to a control in [-1, 1].
type Controller interface {
	Act(s State) float64
}

// ControllerFunc adapts a function to the Controller interface.
type ControllerFunc func(State) float64

// Act implements Controller.
func (f ControllerFunc) Act(s State) float64 { return f(s) }

// RunEpisode runs one fault-free episode and returns the number of steps
// the pole stayed balanced.
func RunEpisode(env *Env, c Controller, rng *rand.Rand) (int, error) {
	return RunEpisodeWithFaults(env, c, nil, rng)
}

// RunEpisodeWithFaults runs one episode injecting the given miss pattern
// per the paper's eq. (14): at step t, if misses[t] is true the actuator
// holds the previous control output (y(t) = y(t−1)); otherwise it applies
// the fresh controller output. The initial output y(0-) is 0. A nil or
// exhausted pattern means no further misses. It returns the balanced
// step count.
//
// Polarity note: the paper samples ω from weakly-hard satisfaction sets
// where a 1 marks a *miss* in eq. (14); this function takes the pattern
// as an explicit miss mask to keep the polarity unambiguous (use
// MissMask to derive one from a wh.Seq).
func RunEpisodeWithFaults(env *Env, c Controller, misses []bool, rng *rand.Rand) (int, error) {
	if c == nil {
		return 0, errors.New("cartpole: nil controller")
	}
	if _, err := env.Reset(rng); err != nil {
		return 0, err
	}
	y := 0.0
	for t := 0; !env.Done(); t++ {
		if t < len(misses) && misses[t] {
			// hold y
		} else {
			y = c.Act(env.State())
		}
		if _, _, err := env.Step(y); err != nil {
			return 0, err
		}
	}
	return env.Steps(), nil
}

// MissMask converts a weakly-hard hit sequence (true = flood success)
// into the eq. (14) miss mask (true = hold the previous output).
func MissMask(seq wh.Seq) []bool {
	out := make([]bool, len(seq))
	for i, hit := range seq {
		out[i] = !hit
	}
	return out
}
