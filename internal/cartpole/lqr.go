package cartpole

import "math"

// LQRController is a classical infinite-horizon state-feedback
// controller for the cartpole's linearization around the upright
// equilibrium: u = −(k_x·x + k_ẋ·ẋ + k_θ·θ + k_θ̇·θ̇) / ForceMag,
// clipped to [-1, 1] by the environment. It is the classical baseline
// against which the paper's "state-of-the-art neural network controller"
// is compared in our fig. 3 reproduction: both must balance fault-free,
// and both must degrade under injected (m, K) faults.
type LQRController struct {
	KX, KXDot, KTheta, KThetaDot float64
	ForceMag                     float64
}

// DefaultLQR returns gains solved offline for the standard environment
// (solving the discrete algebraic Riccati equation for the linearized
// dynamics with Q = diag(1, 1, 10, 1), R = 0.1; the rounded gains below
// are well within the attraction basin and balance indefinitely).
func DefaultLQR(p Params) LQRController {
	return LQRController{
		KX:        -1.8,
		KXDot:     -3.7,
		KTheta:    -42.0,
		KThetaDot: -7.5,
		ForceMag:  p.ForceMag,
	}
}

// Act implements Controller.
func (c LQRController) Act(s State) float64 {
	u := -(c.KX*s.X + c.KXDot*s.XDot + c.KTheta*s.Theta + c.KThetaDot*s.ThetaDot)
	u /= c.ForceMag
	return math.Max(-1, math.Min(1, u))
}
