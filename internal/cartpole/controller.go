package cartpole

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/netdag/netdag/internal/nn"
)

// NNController drives the cart with a trained MLP (4 inputs, tanh output
// in [-1, 1]).
type NNController struct {
	Net *nn.MLP
}

// Act implements Controller.
func (c NNController) Act(s State) float64 {
	out, err := c.Net.Forward(s.Vector())
	if err != nil {
		// The network is constructed with 4 inputs; a failure here is a
		// programming error, surfaced loudly rather than silently zeroed.
		panic(fmt.Sprintf("cartpole: controller forward pass: %v", err))
	}
	return out[0]
}

// TrainController trains a fresh NN controller with the cross-entropy
// method, deterministic under cfg.Seed. The objective is the mean
// balanced-step count over several random episodes.
func TrainController(p Params, cfg nn.CEMConfig) (NNController, float64, error) {
	net, err := nn.NewMLP(4, 8, 1)
	if err != nil {
		return NNController{}, 0, err
	}
	objective := func(m *nn.MLP, rng *rand.Rand) float64 {
		const episodes = 5
		total := 0
		ctl := NNController{Net: m}
		env := New(p)
		for e := 0; e < episodes; e++ {
			steps, err := RunEpisode(env, ctl, rng)
			if err != nil {
				return 0
			}
			total += steps
		}
		return float64(total) / episodes
	}
	_, score, err := nn.CEM(net, cfg, objective)
	if err != nil {
		return NNController{}, 0, err
	}
	return NNController{Net: net}, score, nil
}

var (
	trainedOnce sync.Once
	trainedCtl  NNController
	trainedErr  error
)

// TrainedController returns the process-wide pretrained controller
// (trained once with the default CEM configuration and cached). It is the
// "state-of-the-art neural network controller" of the fig. 3
// reproduction; DESIGN.md records the substitution.
func TrainedController() (NNController, error) {
	trainedOnce.Do(func() {
		trainedCtl, _, trainedErr = TrainController(DefaultParams(), nn.DefaultCEM())
	})
	return trainedCtl, trainedErr
}
