package cartpole

import (
	"math"
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/wh"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(0xca47)) }

func TestResetDistribution(t *testing.T) {
	env := New(DefaultParams())
	rng := testRNG()
	for i := 0; i < 100; i++ {
		s, err := env.Reset(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range s.Vector() {
			if v < -0.05 || v > 0.05 {
				t.Fatalf("initial state component %v outside [-0.05, 0.05]", v)
			}
		}
	}
	if _, err := env.Reset(nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestUncontrolledPoleFalls(t *testing.T) {
	env := New(DefaultParams())
	rng := testRNG()
	if _, err := env.Reset(rng); err != nil {
		t.Fatal(err)
	}
	for !env.Done() {
		if _, _, err := env.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if !env.Failed() {
		t.Error("zero control should drop the pole before the step cap")
	}
	if env.Steps() >= DefaultParams().MaxSteps {
		t.Errorf("uncontrolled pole survived %d steps", env.Steps())
	}
}

func TestStepValidation(t *testing.T) {
	env := New(DefaultParams())
	if _, _, err := env.Step(math.NaN()); err == nil {
		t.Error("NaN control accepted")
	}
	rng := testRNG()
	if _, err := env.Reset(rng); err != nil {
		t.Fatal(err)
	}
	for !env.Done() {
		if _, _, err := env.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := env.Step(0); err == nil {
		t.Error("Step after episode end accepted")
	}
}

func TestEnergyConservationSanity(t *testing.T) {
	// With gravity off, an upright stationary pole under zero control
	// must stay put.
	p := DefaultParams()
	p.Gravity = 0
	env := New(p)
	rng := testRNG()
	if _, err := env.Reset(rng); err != nil {
		t.Fatal(err)
	}
	env.state = State{} // perfectly upright, at rest
	for i := 0; i < 100; i++ {
		s, _, err := env.Step(0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Theta) > 1e-12 || math.Abs(s.X) > 1e-12 {
			t.Fatalf("state drifted without forces: %+v", s)
		}
	}
}

func TestForcePushesCart(t *testing.T) {
	env := New(DefaultParams())
	rng := testRNG()
	if _, err := env.Reset(rng); err != nil {
		t.Fatal(err)
	}
	env.state = State{}
	s, _, err := env.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.XDot <= 0 {
		t.Errorf("positive force produced cart velocity %v", s.XDot)
	}
	// Pushing the cart right tips the pole left (reaction).
	if s2, _, _ := env.Step(1); s2.ThetaDot >= 0 {
		t.Errorf("positive force should produce negative pole acceleration, thetadot %v", s2.ThetaDot)
	}
}

func TestControlSaturation(t *testing.T) {
	env := New(DefaultParams())
	rng := testRNG()
	if _, err := env.Reset(rng); err != nil {
		t.Fatal(err)
	}
	env.state = State{}
	s1, _, err := env.Step(5) // clamped to 1
	if err != nil {
		t.Fatal(err)
	}
	env2 := New(DefaultParams())
	if _, err := env2.Reset(testRNG()); err != nil {
		t.Fatal(err)
	}
	env2.state = State{}
	s2, _, err := env2.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.XDot != s2.XDot {
		t.Errorf("control not saturated: %v vs %v", s1.XDot, s2.XDot)
	}
}

func TestTrainedControllerBalances(t *testing.T) {
	ctl, err := TrainedController()
	if err != nil {
		t.Fatal(err)
	}
	env := New(DefaultParams())
	rng := testRNG()
	total := 0
	const episodes = 20
	for e := 0; e < episodes; e++ {
		steps, err := RunEpisode(env, ctl, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += steps
	}
	mean := float64(total) / episodes
	if mean < 400 {
		t.Errorf("trained controller balances only %.0f/500 steps on average", mean)
	}
}

func TestFaultsDegradePerformance(t *testing.T) {
	ctl, err := TrainedController()
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	rng := testRNG()
	clean, err := EvaluateWeaklyHard(ctl, p, wh.MissConstraint{Misses: 0, Window: 10}, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := EvaluateWeaklyHard(ctl, p, wh.MissConstraint{Misses: 6, Window: 10}, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.MeanSteps >= clean.MeanSteps {
		t.Errorf("heavy faults did not degrade performance: %.0f vs %.0f",
			faulty.MeanSteps, clean.MeanSteps)
	}
}

func TestMissMaskPolarity(t *testing.T) {
	seq := wh.MustParseSeq("101")
	mask := MissMask(seq)
	want := []bool{false, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("MissMask(%v) = %v, want %v", seq, mask, want)
		}
	}
}

func TestRunEpisodeWithFaultsHoldsOutput(t *testing.T) {
	// A controller that counts calls: on miss steps it must not be
	// consulted.
	calls := 0
	ctl := ControllerFunc(func(State) float64 {
		calls++
		return 0
	})
	env := New(DefaultParams())
	misses := make([]bool, DefaultParams().MaxSteps)
	for i := range misses {
		misses[i] = i%2 == 1 // miss every other step
	}
	steps, err := RunEpisodeWithFaults(env, ctl, misses, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	wantCalls := (steps + 1) / 2
	if calls != wantCalls {
		t.Errorf("controller consulted %d times over %d steps with alternating misses, want %d",
			calls, steps, wantCalls)
	}
}

func TestFaultGridShape(t *testing.T) {
	ctl := ControllerFunc(func(s State) float64 {
		// A decent hand-written policy keeps the grid test fast.
		return -(2.0*s.Theta + 0.5*s.ThetaDot + 0.1*s.X + 0.3*s.XDot) * 3
	})
	cells, err := FaultGrid(ctl, DefaultParams(), []int{5, 10}, 3, 5, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	// Windows 5 and 10, m = 0..3 each: 8 cells.
	if len(cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(cells))
	}
	if _, err := FaultGrid(ctl, DefaultParams(), []int{0}, 2, 5, testRNG()); err == nil {
		t.Error("invalid window accepted")
	}
}
