package cartpole

import (
	"testing"

	"github.com/netdag/netdag/internal/wh"
)

func TestLQRBalancesPerfectly(t *testing.T) {
	p := DefaultParams()
	ctl := DefaultLQR(p)
	env := New(p)
	rng := testRNG()
	for e := 0; e < 25; e++ {
		steps, err := RunEpisode(env, ctl, rng)
		if err != nil {
			t.Fatal(err)
		}
		if steps != p.MaxSteps {
			t.Fatalf("episode %d balanced only %d/%d steps", e, steps, p.MaxSteps)
		}
	}
}

func TestLQRControlDirection(t *testing.T) {
	ctl := DefaultLQR(DefaultParams())
	// Pole leaning right (positive theta): push right (positive u).
	if u := ctl.Act(State{Theta: 0.1}); u <= 0 {
		t.Errorf("lean right -> control %v, want positive", u)
	}
	if u := ctl.Act(State{Theta: -0.1}); u >= 0 {
		t.Errorf("lean left -> control %v, want negative", u)
	}
	// Output clipped to [-1, 1].
	if u := ctl.Act(State{Theta: 2}); u > 1 || u < -1 {
		t.Errorf("control %v outside [-1,1]", u)
	}
}

func TestLQRDegradesUnderFaults(t *testing.T) {
	// The classical controller tolerates much longer hold bursts than
	// the learned one (it breaks near 14-step holds vs the NN's ~3) —
	// but sufficiently dense faults must still destroy it.
	p := DefaultParams()
	ctl := DefaultLQR(p)
	rng := testRNG()
	clean, err := EvaluateWeaklyHard(ctl, p, wh.MissConstraint{Misses: 0, Window: 15}, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := EvaluateWeaklyHard(ctl, p, wh.MissConstraint{Misses: 14, Window: 15}, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanSteps >= clean.MeanSteps/2 {
		t.Errorf("14/15 faults did not collapse LQR: %.0f vs %.0f", heavy.MeanSteps, clean.MeanSteps)
	}
}

// TestControllerComparisonShapes runs the fig. 3 mechanism for both the
// learned and the classical controller: the qualitative trends must be
// controller-independent (the paper's observation is about weakly-hard
// actuation, not about a specific policy) — though the miss budget at
// which each controller collapses differs, which is itself a useful
// input to weakly-hard constraint selection.
func TestControllerComparisonShapes(t *testing.T) {
	p := DefaultParams()
	nn, err := TrainedController()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name          string
		ctl           Controller
		dense, sparse wh.MissConstraint
	}{
		// Each controller probed at its own breaking density.
		{"nn", nn, wh.MissConstraint{Misses: 4, Window: 5}, wh.MissConstraint{Misses: 4, Window: 20}},
		{"lqr", DefaultLQR(p), wh.MissConstraint{Misses: 16, Window: 18}, wh.MissConstraint{Misses: 16, Window: 60}},
	}
	for _, tc := range cases {
		rng := testRNG()
		clean, err := EvaluateWeaklyHard(tc.ctl, p, wh.MissConstraint{Misses: 0, Window: 5}, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := EvaluateWeaklyHard(tc.ctl, p, tc.dense, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := EvaluateWeaklyHard(tc.ctl, p, tc.sparse, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		if dense.MeanSteps >= clean.MeanSteps {
			t.Errorf("%s: dense faults (%.0f) not worse than clean (%.0f)", tc.name, dense.MeanSteps, clean.MeanSteps)
		}
		if sparse.MeanSteps <= dense.MeanSteps {
			t.Errorf("%s: sparser faults (%.0f) not better than dense (%.0f)", tc.name, sparse.MeanSteps, dense.MeanSteps)
		}
	}
}

// TestLQROutlastsNNUnderBursts pins the robustness ordering: at a
// moderate burst length the classical controller survives where the
// learned policy fails.
func TestLQROutlastsNNUnderBursts(t *testing.T) {
	p := DefaultParams()
	nn, err := TrainedController()
	if err != nil {
		t.Fatal(err)
	}
	c := wh.MissConstraint{Misses: 4, Window: 5}
	rng := testRNG()
	nnCell, err := EvaluateWeaklyHard(nn, p, c, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	lqrCell, err := EvaluateWeaklyHard(DefaultLQR(p), p, c, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lqrCell.MeanSteps <= nnCell.MeanSteps {
		t.Errorf("expected LQR (%.0f) to outlast the NN (%.0f) at %v",
			lqrCell.MeanSteps, nnCell.MeanSteps, c)
	}
}
