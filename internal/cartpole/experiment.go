package cartpole

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/wh"
)

// Cell is one grid point of the fig. 3 experiment: the mean balanced-step
// count of the controller under injected (m, K) weakly-hard faults.
type Cell struct {
	Misses    int // m: permitted misses per window
	Window    int // K
	Episodes  int
	MeanSteps float64
}

// EvaluateWeaklyHard measures controller performance under adversarial
// (m, K) fault injection: each episode draws a miss pattern from the
// eq. (12) boundary set of the miss-form constraint and applies eq. (14)
// hold-last-output faults. m = 0 reproduces fault-free behaviour.
func EvaluateWeaklyHard(ctl Controller, p Params, c wh.MissConstraint, episodes int, rng *rand.Rand) (Cell, error) {
	if rng == nil {
		return Cell{}, errors.New("cartpole: EvaluateWeaklyHard requires a non-nil rng")
	}
	if episodes <= 0 {
		return Cell{}, fmt.Errorf("cartpole: episodes must be positive, got %d", episodes)
	}
	if err := c.Validate(); err != nil {
		return Cell{}, err
	}
	env := New(p)
	total := 0
	for e := 0; e < episodes; e++ {
		pattern, err := wh.SynthesizeRandom(c, p.MaxSteps, rng)
		if err != nil {
			return Cell{}, err
		}
		steps, err := RunEpisodeWithFaults(env, ctl, MissMask(pattern), rng)
		if err != nil {
			return Cell{}, err
		}
		total += steps
	}
	return Cell{
		Misses: c.Misses, Window: c.Window,
		Episodes: episodes, MeanSteps: float64(total) / float64(episodes),
	}, nil
}

// FaultGrid runs the full fig. 3 sweep: for every window K and every miss
// budget m in 0..maxMisses (capped at K−1), it evaluates the controller
// and returns the grid of cells in (K, m) order.
func FaultGrid(ctl Controller, p Params, windows []int, maxMisses, episodes int, rng *rand.Rand) ([]Cell, error) {
	var out []Cell
	for _, k := range windows {
		if k < 1 {
			return nil, fmt.Errorf("cartpole: invalid window %d", k)
		}
		for m := 0; m <= maxMisses && m < k; m++ {
			cell, err := EvaluateWeaklyHard(ctl, p, wh.MissConstraint{Misses: m, Window: k}, episodes, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}
