package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelayEnvelopeGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for a, w := range want {
		if got := p.Delay(a, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", a, got, w)
		}
	}
	// The cap must hold even for attempts large enough to overflow a
	// naive integer power.
	if got := p.Delay(200, nil); got != 2*time.Second {
		t.Errorf("Delay(200) = %v, want the 2s cap", got)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	for a := 0; a < 8; a++ {
		env := p.Delay(a, nil)
		varied := false
		var prev time.Duration = -1
		for i := 0; i < 64; i++ {
			d := p.Delay(a, rng)
			if d < env/2 || d > env {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", a, d, env/2, env)
			}
			if prev >= 0 && d != prev {
				varied = true
			}
			prev = d
		}
		if !varied {
			t.Errorf("Delay(%d) never varied under jitter", a)
		}
	}
}

func TestNilRngIsDeterministicEnvelope(t *testing.T) {
	p := Policy{Jitter: 1}
	for a := 0; a < 5; a++ {
		if p.Delay(a, nil) != p.Delay(a, nil) {
			t.Fatalf("nil-rng delay not deterministic at attempt %d", a)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0, nil); got != DefaultBase {
		t.Errorf("zero policy Delay(0) = %v, want %v", got, DefaultBase)
	}
	if got := p.Delay(1000, nil); got != DefaultMax {
		t.Errorf("zero policy Delay(1000) = %v, want the %v cap", got, DefaultMax)
	}
}

func TestHintSecondsRoundsUpAndFloorsAtOne(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0}
	if got := p.HintSeconds(0, nil); got != 1 {
		t.Errorf("HintSeconds(0) = %d, want 1 (sub-second delays floor at 1)", got)
	}
	// 100ms * 2^4 = 1.6s rounds up to 2.
	if got := p.HintSeconds(4, nil); got != 2 {
		t.Errorf("HintSeconds(4) = %d, want 2", got)
	}
	if got := p.HintSeconds(100, nil); got != 10 {
		t.Errorf("HintSeconds(100) = %d, want the 10s cap", got)
	}
}
