// Package backoff implements the jittered exponential backoff policy
// shared by the serving layer's overload hints (the 429 Retry-After
// header) and the session re-solve retry loop: delays grow geometrically
// from Base to Max, and a configurable fraction of each delay is
// randomized so synchronized clients — or re-solve attempts racing the
// same churn — spread out instead of retrying in lockstep.
package backoff

import (
	"math/rand"
	"time"
)

// Defaults substituted by Policy for zero-valued fields.
const (
	DefaultBase   = 100 * time.Millisecond
	DefaultMax    = 30 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

// Policy describes an exponential backoff schedule. The zero value is
// usable and selects the defaults above.
type Policy struct {
	Base   time.Duration // delay envelope before the first retry
	Max    time.Duration // cap on the grown envelope
	Factor float64       // geometric growth per attempt (>= 1)
	Jitter float64       // fraction of each delay re-drawn uniformly, in [0, 1]
}

// withDefaults resolves zero and out-of-range fields to usable values.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	return p
}

// Delay returns the backoff before retry attempt (0-based): the envelope
// min(Max, Base·Factor^attempt) with its Jitter fraction re-drawn
// uniformly from rng, so the result lies in
// [envelope·(1−Jitter), envelope]. A nil rng disables the jitter and
// returns the full envelope — the deterministic worst case, which is
// what the session journal's reproducibility across runs relies on.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 && rng != nil {
		d = d*(1-p.Jitter) + rng.Float64()*d*p.Jitter
	}
	return time.Duration(d)
}

// HintSeconds converts the delay for attempt into a whole-second
// Retry-After hint, rounding up and never below 1 — a 0-second hint
// would invite an immediate retry, defeating the backoff.
func (p Policy) HintSeconds(attempt int, rng *rand.Rand) int {
	d := p.Delay(attempt, rng)
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
