// Package campaign runs deterministic fault-injection campaigns over a
// deployed schedule and certifies the resulting empirical miss streams
// against the constraints the scheduler promised.
//
// A campaign is N seeded replications of the clock-accurate simulator
// (internal/sim), each with an independently derived PRNG
// (sim.ReplicationSeed), optionally under a fault scenario
// (sim.Scenario). Replications run in parallel on a worker pool, but the
// result is a pure function of (deployment, config): replication i's
// trace depends only on the master seed and i, never on worker
// interleaving — so a certifier finding is replayable from the reported
// replication seed alone.
//
// The certifier (certify.go) checks every soft constraint's pooled
// empirical success rate with a Wilson confidence bound
// (internal/stats), and every weakly-hard constraint's worst observed
// window against the declared (m, K).
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/wh"
)

// Config tunes a campaign.
type Config struct {
	// Replications is N, the number of independently seeded simulator
	// replications (required, positive).
	Replications int
	// Runs is how many schedule periods each replication executes; it
	// must cover the largest weakly-hard window for the certification to
	// be non-vacuous (Certify checks this).
	Runs int
	// Seed is the campaign master seed; replication i draws its own PRNG
	// seed via sim.ReplicationSeed(Seed, i).
	Seed int64
	// Workers bounds the replications running concurrently. Zero selects
	// runtime.GOMAXPROCS(0); any value produces identical results.
	Workers int
	// Scenario optionally injects faults (nil: fault-free).
	Scenario *sim.Scenario
	// Clocks configures the per-node clock model.
	Clocks sim.ClockConfig
	// PeriodUS is the schedule repetition period; zero selects the
	// makespan plus 100 ms, matching the netdag-sim default.
	PeriodUS int64
}

// Replication is one seeded simulator run of the campaign.
type Replication struct {
	// Rep is the replication index in [0, Replications).
	Rep int
	// Seed is the replication's own PRNG seed — enough, together with
	// the deployment and scenario, to replay this exact trace.
	Seed int64
	// TaskSeqs is the per-task hit/miss trace across the replication's
	// runs.
	TaskSeqs map[dag.TaskID]wh.Seq
	// BeaconCaptureRate and DesyncRate mirror sim.Result.
	BeaconCaptureRate float64
	DesyncRate        float64
}

// Result is a completed campaign.
type Result struct {
	Cfg Config
	// Reps holds every replication, indexed by replication number.
	Reps []Replication
	// PeriodUS is the effective schedule period used.
	PeriodUS int64
}

// MeanBeaconCapture averages the beacon capture rate over replications.
func (r *Result) MeanBeaconCapture() float64 {
	if len(r.Reps) == 0 {
		return 0
	}
	s := 0.0
	for i := range r.Reps {
		s += r.Reps[i].BeaconCaptureRate
	}
	return s / float64(len(r.Reps))
}

// MeanDesyncRate averages the desynchronization rate over replications.
func (r *Result) MeanDesyncRate() float64 {
	if len(r.Reps) == 0 {
		return 0
	}
	s := 0.0
	for i := range r.Reps {
		s += r.Reps[i].DesyncRate
	}
	return s / float64(len(r.Reps))
}

// Run executes the campaign to completion; see RunContext.
func Run(d *lwb.Deployment, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext executes cfg.Replications seeded replications of the
// deployed schedule on a worker pool, reusing the producer/worker idiom
// of the round-assignment search (internal/core/parallel.go): a producer
// feeds replication indices to workers over a channel, each worker owns
// an independently seeded PRNG per replication, and results land in a
// slice slot owned exclusively by that replication — no shared mutable
// state, so the campaign is race-free and bit-identical across Workers
// settings and GOMAXPROCS.
//
// Cancellation: when ctx is canceled, no new replications start and
// RunContext returns ctx.Err(). Campaigns are all-or-nothing — a partial
// campaign would certify against fewer trials than requested.
func RunContext(ctx context.Context, d *lwb.Deployment, cfg Config) (*Result, error) {
	if d == nil {
		return nil, errors.New("campaign: nil deployment")
	}
	if cfg.Replications <= 0 {
		return nil, fmt.Errorf("campaign: Replications must be positive, got %d", cfg.Replications)
	}
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("campaign: Runs must be positive, got %d", cfg.Runs)
	}
	period := cfg.PeriodUS
	if period == 0 {
		period = d.Sched.Makespan + 100_000
	}
	runner, err := sim.NewRunner(d, cfg.Clocks, period)
	if err != nil {
		return nil, err
	}
	runner.Faults = cfg.Scenario

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Replications {
		workers = cfg.Replications
	}

	res := &Result{Cfg: cfg, Reps: make([]Replication, cfg.Replications), PeriodUS: period}
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < cfg.Replications; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// firstErr keeps the error of the lowest-indexed failing replication,
	// so the reported error is deterministic too.
	var mu sync.Mutex
	errRep := -1
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				seed := sim.ReplicationSeed(cfg.Seed, i)
				r, err := runner.RunSeeded(cfg.Runs, seed)
				if err != nil {
					mu.Lock()
					if errRep < 0 || i < errRep {
						errRep, firstErr = i, err
					}
					mu.Unlock()
					continue
				}
				res.Reps[i] = Replication{
					Rep:               i,
					Seed:              seed,
					TaskSeqs:          r.TaskSeqs,
					BeaconCaptureRate: r.BeaconCaptureRate,
					DesyncRate:        r.DesyncRate,
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("campaign: replication %d: %w", errRep, firstErr)
	}
	return res, nil
}
