package campaign

// The certifier: checks a campaign's empirical miss streams against the
// task-level constraints the scheduler promised. Soft constraints are
// checked statistically — the pooled success rate's Wilson interval at
// the configured confidence decides between a certified pass, a
// certified violation, and a marginal result. Weakly-hard constraints
// are checked combinatorially — the worst observed window of any
// replication either fits the declared (m, K) budget or it does not —
// and every violation carries the offending replication's seed and the
// miss pattern of the worst window, so it can be replayed exactly with
// sim.Runner.RunSeeded.

import (
	"errors"
	"fmt"
	"sort"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/stats"
	"github.com/netdag/netdag/internal/wh"
)

// Status classifies one constraint's certification outcome.
type Status string

const (
	// Pass: the empirical evidence is consistent with the constraint (for
	// soft constraints, the Wilson lower bound is at or above the target;
	// for weakly-hard, no window anywhere exceeded the miss budget).
	Pass Status = "pass"
	// Marginal (soft only): the point estimate is below the target but
	// the Wilson interval still contains it — not enough trials to call a
	// violation at the configured confidence.
	Marginal Status = "marginal"
	// Violation: the constraint is empirically broken — a soft target
	// above the Wilson upper bound, or a weakly-hard window over budget.
	Violation Status = "violation"
)

// TaskReport is one constraint's certification.
type TaskReport struct {
	Task   string `json:"task"`
	Status Status `json:"status"`

	// Soft-mode fields.
	Target   float64 `json:"target,omitempty"`   // F_s(τ)
	HitRate  float64 `json:"hitRate,omitempty"`  // pooled successes / trials
	WilsonLo float64 `json:"wilsonLo,omitempty"` // confidence interval on the true rate
	WilsonHi float64 `json:"wilsonHi,omitempty"`
	Trials   int     `json:"trials,omitempty"`

	// Weakly-hard-mode fields.
	Misses      int `json:"misses,omitempty"`      // declared budget m̄
	Window      int `json:"window,omitempty"`      // declared window K̄
	WorstMisses int `json:"worstMisses,omitempty"` // worst observed window

	// Replay handle: the replication exhibiting the worst behaviour (the
	// worst window for weakly-hard, the lowest hit rate for soft), its
	// PRNG seed, the run index its worst window starts at, and the
	// window's miss pattern. Replaying sim.Runner.RunSeeded(runs,
	// WorstSeed) under the same deployment and scenario reproduces the
	// trace bit-exactly.
	WorstRep         int    `json:"worstRep"`
	WorstSeed        int64  `json:"worstSeed"`
	WorstWindowStart int    `json:"worstWindowStart,omitempty"`
	WorstWindow      string `json:"worstWindow,omitempty"`
}

// Report is a campaign certification.
type Report struct {
	Mode         string       `json:"mode"`
	Confidence   float64      `json:"confidence"`
	Replications int          `json:"replications"`
	Runs         int          `json:"runs"`
	Seed         int64        `json:"seed"`
	Scenario     string       `json:"scenario,omitempty"`
	Tasks        []TaskReport `json:"tasks"`
	Violations   int          `json:"violations"`
	Marginals    int          `json:"marginals"`

	BeaconCaptureRate float64 `json:"beaconCaptureRate"`
	DesyncRate        float64 `json:"desyncRate"`
}

// DefaultConfidence is the certifier's confidence level when none is
// given.
const DefaultConfidence = 0.95

// Certify checks every constraint of p against the campaign's empirical
// traces. confidence in (0,1) sets the Wilson interval level for soft
// constraints (zero selects DefaultConfidence). Task reports are sorted
// by task name, so the report is deterministic.
func Certify(p *core.Problem, res *Result, confidence float64) (*Report, error) {
	if p == nil || res == nil {
		return nil, errors.New("campaign: Certify requires a problem and a campaign result")
	}
	if confidence == 0 {
		confidence = DefaultConfidence
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("campaign: confidence %v outside (0,1)", confidence)
	}
	rep := &Report{
		Mode:              p.Mode.String(),
		Confidence:        confidence,
		Replications:      res.Cfg.Replications,
		Runs:              res.Cfg.Runs,
		Seed:              res.Cfg.Seed,
		Tasks:             []TaskReport{},
		BeaconCaptureRate: res.MeanBeaconCapture(),
		DesyncRate:        res.MeanDesyncRate(),
	}
	if res.Cfg.Scenario != nil {
		rep.Scenario = res.Cfg.Scenario.Name
	}
	switch p.Mode {
	case core.Soft:
		for id, target := range p.SoftCons {
			tr, err := certifySoft(p.App.Task(id).Name, target, id, res, confidence)
			if err != nil {
				return nil, err
			}
			rep.Tasks = append(rep.Tasks, tr)
		}
	case core.WeaklyHard:
		for id, c := range p.WHCons {
			tr, err := certifyWH(p.App.Task(id).Name, c, id, res)
			if err != nil {
				return nil, err
			}
			rep.Tasks = append(rep.Tasks, tr)
		}
	default:
		return nil, fmt.Errorf("campaign: unknown mode %v", p.Mode)
	}
	sort.Slice(rep.Tasks, func(i, j int) bool { return rep.Tasks[i].Task < rep.Tasks[j].Task })
	for _, t := range rep.Tasks {
		switch t.Status {
		case Violation:
			rep.Violations++
		case Marginal:
			rep.Marginals++
		}
	}
	return rep, nil
}

func certifySoft(name string, target float64, id dag.TaskID, res *Result, confidence float64) (TaskReport, error) {
	hits, trials := 0, 0
	worstRep, worstRate := 0, 2.0
	for i := range res.Reps {
		q, ok := res.Reps[i].TaskSeqs[id]
		if !ok {
			return TaskReport{}, fmt.Errorf("campaign: task %q missing from replication %d", name, i)
		}
		hits += q.Hits()
		trials += len(q)
		if r := q.HitRate(); r < worstRate {
			worstRate, worstRep = r, i
		}
	}
	if trials == 0 {
		return TaskReport{}, fmt.Errorf("campaign: task %q has no trials", name)
	}
	lo, hi, err := stats.WilsonInterval(hits, trials, confidence)
	if err != nil {
		return TaskReport{}, err
	}
	tr := TaskReport{
		Task:      name,
		Target:    target,
		HitRate:   float64(hits) / float64(trials),
		WilsonLo:  lo,
		WilsonHi:  hi,
		Trials:    trials,
		WorstRep:  worstRep,
		WorstSeed: res.Reps[worstRep].Seed,
	}
	switch {
	case hi < target:
		// Even the optimistic end of the interval misses the target: the
		// deployment certifiably violates F_s at this confidence.
		tr.Status = Violation
	case lo >= target:
		tr.Status = Pass
	case tr.HitRate < target:
		tr.Status = Marginal
	default:
		// Point estimate meets the target but the lower bound does not:
		// consistent with the constraint, certified pass not yet earned —
		// report it as marginal rather than overclaim.
		tr.Status = Marginal
	}
	return tr, nil
}

func certifyWH(name string, c wh.MissConstraint, id dag.TaskID, res *Result) (TaskReport, error) {
	if res.Cfg.Runs < c.Window {
		return TaskReport{}, fmt.Errorf(
			"campaign: %d runs per replication cannot exercise task %q's window %d (certification would be vacuous)",
			res.Cfg.Runs, name, c.Window)
	}
	tr := TaskReport{
		Task:        name,
		Misses:      c.Misses,
		Window:      c.Window,
		WorstMisses: -1,
	}
	for i := range res.Reps {
		q, ok := res.Reps[i].TaskSeqs[id]
		if !ok {
			return TaskReport{}, fmt.Errorf("campaign: task %q missing from replication %d", name, i)
		}
		misses, start := q.MaxWindowMisses(c.Window)
		if start < 0 {
			continue
		}
		if misses > tr.WorstMisses {
			tr.WorstMisses = misses
			tr.WorstRep = i
			tr.WorstSeed = res.Reps[i].Seed
			tr.WorstWindowStart = start
			tr.WorstWindow = q[start : start+c.Window].String()
		}
	}
	if tr.WorstMisses < 0 {
		return TaskReport{}, fmt.Errorf("campaign: no full window of length %d observed for task %q", c.Window, name)
	}
	if tr.WorstMisses > c.Misses {
		tr.Status = Violation
	} else {
		tr.Status = Pass
	}
	return tr, nil
}

// Violated returns the names of the tasks whose constraints the campaign
// empirically broke, in the report's deterministic (name-sorted) order.
// It is the feedback signal of the online session loop: a non-empty list
// means the deployed schedule's link-quality assumptions no longer hold
// and the session should raise its retransmission floor.
func (r *Report) Violated() []string {
	var out []string
	for _, t := range r.Tasks {
		if t.Status == Violation {
			out = append(out, t.Task)
		}
	}
	return out
}
