package campaign

import (
	"context"
	"reflect"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/wh"
)

// deployWH schedules a 3-stage pipeline under a weakly-hard constraint
// on the end task and deploys it onto a 3-node line.
func deployWH(t testing.TB, prr float64, cons wh.MissConstraint) (*core.Problem, *lwb.Deployment) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:   core.WeaklyHard,
		WHStat: glossy.SyntheticWH{},
		WHCons: map[dag.TaskID]wh.MissConstraint{last.ID: cons},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := lwb.NewDeployment(g, s, network.Line(3, prr), p.Params)
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

// deploySoft is the soft-mode twin with a success-rate target on the
// end task.
func deploySoft(t testing.TB, prr, target float64) (*core.Problem, *lwb.Deployment) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: prr},
		SoftCons: map[dag.TaskID]float64{last.ID: target},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := lwb.NewDeployment(g, s, network.Line(3, prr), p.Params)
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestCampaignValidation(t *testing.T) {
	_, d := deployWH(t, 0.9, wh.MissConstraint{Misses: 10, Window: 40})
	if _, err := Run(nil, Config{Replications: 1, Runs: 1}); err == nil {
		t.Error("nil deployment accepted")
	}
	if _, err := Run(d, Config{Replications: 0, Runs: 10}); err == nil {
		t.Error("zero replications accepted")
	}
	if _, err := Run(d, Config{Replications: 10, Runs: 0}); err == nil {
		t.Error("zero runs accepted")
	}
}

// TestCampaignDeterministicAcrossWorkers is the acceptance criterion:
// a fixed-seed campaign is bit-identical across runs and worker counts.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	_, d := deployWH(t, 0.9, wh.MissConstraint{Misses: 10, Window: 40})
	sc := &sim.Scenario{
		Fades:     []sim.LinkFade{{A: -1, B: -1, PGoodBad: 0.05, PBadGood: 0.2, BadScale: 0.2}},
		Blackouts: []sim.Blackout{{FromUS: 500_000, ToUS: 900_000}},
	}
	base := Config{Replications: 12, Runs: 50, Seed: 99, Scenario: sc, Clocks: sim.DefaultClockConfig()}
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Reps, res.Reps) {
			t.Fatalf("campaign with %d workers differs from the 1-worker reference", workers)
		}
	}
	// And bit-identical on a straight re-run.
	again, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Reps, again.Reps) {
		t.Fatal("same configuration, different campaign results across runs")
	}
}

func TestCampaignCancellation(t *testing.T) {
	_, d := deployWH(t, 0.9, wh.MissConstraint{Misses: 10, Window: 40})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, d, Config{Replications: 50, Runs: 50}); err == nil {
		t.Error("canceled campaign returned no error")
	}
}

// TestCertifyCleanDeployment: a healthy deployment certifies clean, and
// the reported worst seed replays to the exact trace the campaign saw.
func TestCertifyCleanDeployment(t *testing.T) {
	p, d := deployWH(t, 0.95, wh.MissConstraint{Misses: 10, Window: 40})
	cfg := Config{Replications: 20, Runs: 40, Seed: 5, Clocks: sim.DefaultClockConfig()}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Certify(p, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("healthy deployment flagged: %+v", rep.Tasks)
	}
	if rep.Confidence != DefaultConfidence {
		t.Errorf("zero confidence not defaulted: %v", rep.Confidence)
	}
	// Replay: the reported seed alone must reproduce the replication.
	tr := rep.Tasks[0]
	runner, err := sim.NewRunner(d, cfg.Clocks, res.PeriodUS)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := runner.RunSeeded(cfg.Runs, tr.WorstSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay.TaskSeqs, res.Reps[tr.WorstRep].TaskSeqs) {
		t.Fatal("replaying the reported seed did not reproduce the replication")
	}
}

// TestCertifyFlagsInjectedViolation: burst loss exceeding the declared
// (m,K) is flagged, and the reported seed + window replay exactly.
func TestCertifyFlagsInjectedViolation(t *testing.T) {
	p, d := deployWH(t, 0.95, wh.MissConstraint{Misses: 10, Window: 40})
	sc := &sim.Scenario{
		Name:  "deep-fade",
		Fades: []sim.LinkFade{{A: -1, B: -1, PGoodBad: 0.1, PBadGood: 0.05, BadScale: 0}},
	}
	cfg := Config{Replications: 10, Runs: 80, Seed: 3, Scenario: sc, Clocks: sim.DefaultClockConfig()}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Certify(p, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatal("correlated deep fades not flagged against (10,40)~")
	}
	if rep.Scenario != "deep-fade" {
		t.Errorf("scenario name %q not carried into the report", rep.Scenario)
	}
	tr := rep.Tasks[0]
	if tr.Status != Violation || tr.WorstMisses <= tr.Misses {
		t.Fatalf("violation record inconsistent: %+v", tr)
	}
	// Replay from the report alone: seed → trace → same worst window.
	runner, err := sim.NewRunner(d, cfg.Clocks, res.PeriodUS)
	if err != nil {
		t.Fatal(err)
	}
	runner.Faults = sc
	replay, err := runner.RunSeeded(cfg.Runs, tr.WorstSeed)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := p.App.TaskByName(tr.Task)
	window := replay.TaskSeqs[last.ID][tr.WorstWindowStart : tr.WorstWindowStart+tr.Window]
	if window.String() != tr.WorstWindow {
		t.Fatalf("replayed window %q != reported %q", window.String(), tr.WorstWindow)
	}
	if misses := len(window) - window.Hits(); misses != tr.WorstMisses {
		t.Fatalf("replayed window has %d misses, report says %d", len(window)-window.Hits(), tr.WorstMisses)
	}
}

func TestCertifyVacuousWindowRejected(t *testing.T) {
	p, d := deployWH(t, 0.95, wh.MissConstraint{Misses: 10, Window: 40})
	res, err := Run(d, Config{Replications: 2, Runs: 20, Clocks: sim.DefaultClockConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(p, res, 0); err == nil {
		t.Error("20 runs against a 40-window constraint certified (vacuously)")
	}
}

func TestCertifySoftMode(t *testing.T) {
	p, d := deploySoft(t, 0.95, 0.5)
	cfg := Config{Replications: 10, Runs: 100, Seed: 11, Clocks: sim.DefaultClockConfig()}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Certify(p, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("modest soft target flagged: %+v", rep.Tasks)
	}
	tr := rep.Tasks[0]
	if tr.Status != Pass || tr.Trials != cfg.Replications*cfg.Runs {
		t.Errorf("soft pass record inconsistent: %+v", tr)
	}
	if !(tr.WilsonLo <= tr.HitRate && tr.HitRate <= tr.WilsonHi) {
		t.Errorf("Wilson interval [%v,%v] does not bracket rate %v", tr.WilsonLo, tr.WilsonHi, tr.HitRate)
	}
	// The same deployment under a total blackout must be a certified
	// soft violation, not merely marginal.
	sc := &sim.Scenario{Blackouts: []sim.Blackout{{FromUS: 0, ToUS: 1 << 60}}}
	cfg.Scenario = sc
	res, err = Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = Certify(p, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatalf("blacked-out deployment certified clean: %+v", rep.Tasks)
	}
}

func TestCertifyValidation(t *testing.T) {
	p, d := deployWH(t, 0.9, wh.MissConstraint{Misses: 10, Window: 40})
	res, err := Run(d, Config{Replications: 2, Runs: 40, Clocks: sim.DefaultClockConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(nil, res, 0); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := Certify(p, nil, 0); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Certify(p, res, 1.5); err == nil {
		t.Error("confidence 1.5 accepted")
	}
}
