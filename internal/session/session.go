// Package session implements long-lived scheduler sessions for online
// adaptive rescheduling: a session owns the current certified schedule
// and accepts a stream of deltas — task join/leave, placement changes,
// diameter changes from mobility profiles, degraded link quality fed
// back from fault-campaign certification — re-solving incrementally by
// warm-starting the search with the previous schedule's makespan
// (core.Problem.WarmMakespan).
//
// Robustness is the contract:
//
//   - The last proven schedule stays active until a replacement is
//     itself proven: a re-solve that returns a truncated or unproven
//     incumbent is counted as a rejected swap, never installed.
//   - Re-solves run under a per-attempt deadline with jittered
//     exponential backoff between attempts (internal/backoff); only
//     deadline expiry is retried — deterministic failures (infeasible,
//     empty χ domain) fail fast.
//   - When a re-solve fails for an environment fact the session cannot
//     refuse (the network changed whether the solver likes it or not),
//     a precomputed degraded "safe mode" — a TTW-style mode table of
//     schedules with the retransmission parameter pinned to its maximum
//     over a set of covering diameters — is installed within the bounded
//     latency of a table lookup.
//   - Every transition is recorded in an event journal whose entries
//     carry no timing or work accounting, so journals are bit-identical
//     across worker counts and repeat runs with the same seed; latencies
//     go to metrics instead.
package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/netdag/netdag/internal/backoff"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/spec"
)

// State is the session's position in the active → resolving → degraded →
// recovered machine. "Recovered" is not a resting state: a recovery is
// journaled as OutcomeRecovered and the session returns to StateActive.
type State string

const (
	// StateActive: the current schedule was proven optimal and valid for
	// the current problem description.
	StateActive State = "active"
	// StateResolving: a re-solve is in flight; the previous schedule
	// remains the one exposed.
	StateResolving State = "resolving"
	// StateDegraded: re-solving failed for a committed environment fact;
	// a safe-mode schedule is installed until a re-solve succeeds.
	StateDegraded State = "degraded"
)

// Outcome classifies one journal entry.
type Outcome string

const (
	// OutcomeInit is the first entry: the initial certified schedule.
	OutcomeInit Outcome = "init"
	// OutcomeApplied: the event committed and a replacement schedule was
	// proven and installed.
	OutcomeApplied Outcome = "applied"
	// OutcomeRecovered: as applied, from a degraded session — the
	// re-solve succeeded again and safe mode was retired.
	OutcomeRecovered Outcome = "recovered"
	// OutcomeRejected: the event did not commit (malformed, or a
	// workload event whose re-solve failed); the previous schedule and
	// description stand.
	OutcomeRejected Outcome = "rejected"
	// OutcomeDegraded: an environment fact committed but re-solving
	// failed; a safe-mode schedule was installed.
	OutcomeDegraded Outcome = "degraded"
)

// Entry is one journal record. Entries deliberately exclude latencies,
// node counts and attempt timings — everything in an Entry is a
// deterministic function of the spec and the event stream, which is what
// makes journals comparable byte-for-byte across runs and worker counts.
type Entry struct {
	Seq      int     `json:"seq"`
	Event    Event   `json:"event"`
	Outcome  Outcome `json:"outcome"`
	State    State   `json:"state"` // state after the event
	Makespan int64   `json:"makespanUS"`
	Rounds   int     `json:"rounds"`
	BusTime  int64   `json:"busTimeUS"`
	// Attempts is how many solve attempts the event consumed (0 when no
	// solve ran, e.g. malformed events).
	Attempts int `json:"attempts,omitempty"`
	// WarmHit records that the warm-start bound admitted the new optimum
	// (the re-solve did not regress past the previous makespan).
	WarmHit bool `json:"warmHit,omitempty"`
	// SafeDiameter is the installed safe mode's diameter (degraded
	// entries only).
	SafeDiameter int    `json:"safeDiameter,omitempty"`
	Error        string `json:"error,omitempty"`
	Note         string `json:"note,omitempty"`
}

// Stats are the session's monotonic counters, snapshotted under lock.
type Stats struct {
	Events        int64 `json:"events"`
	Applied       int64 `json:"applied"`
	Rejected      int64 `json:"rejected"`
	RejectedSwaps int64 `json:"rejectedSwaps"`
	Fallbacks     int64 `json:"fallbacks"`
	ModeSwitches  int64 `json:"modeSwitches"`
	Recoveries    int64 `json:"recoveries"`
	Resolves      int64 `json:"resolves"`
	WarmHits      int64 `json:"warmHits"`
}

// Config tunes a session.
type Config struct {
	// Workers / Portfolio / PortfolioSeed configure every solve the
	// session runs, exactly as on core.Problem.
	Workers       int
	Portfolio     bool
	PortfolioSeed int64
	// ResolveDeadline bounds each re-solve attempt (0 = none; with no
	// deadline there are no transient failures, so every event resolves
	// in one attempt and the journal is deterministic).
	ResolveDeadline time.Duration
	// MaxAttempts bounds deadline-expired retries per event (default 3).
	// Deterministic failures are never retried.
	MaxAttempts int
	// Backoff spaces the retries; the zero value selects the
	// backoff defaults.
	Backoff backoff.Policy
	// BackoffSeed seeds the retry jitter. Zero disables jitter: delays
	// are the deterministic envelope.
	BackoffSeed int64
	// SafeDiameters are the network diameters the safe-mode table
	// covers; empty means just the spec's diameter. A degraded session
	// installs the smallest tabled mode covering the current diameter.
	SafeDiameters []int
	// ObserveResolve, when set, receives each solve attempt's wall-clock
	// latency (the serve layer's histogram hook).
	ObserveResolve func(time.Duration)
	// Sleep replaces time.Sleep in the retry loop (tests, simulations).
	Sleep func(time.Duration)
}

// ErrClosed reports use of a closed session.
var ErrClosed = errors.New("session: closed")

// safeMode is one row of the precomputed TTW-style mode table: a proven
// schedule for the task set at a covering diameter with χ pinned to
// MaxNTX — the most conservative retransmission setting the hardware
// supports, so it stays valid under any link quality the statistic can
// express.
type safeMode struct {
	diameter int
	file     *spec.File
	prob     *core.Problem
	sched    *core.Schedule
}

// Session is a long-lived scheduler session. All methods are safe for
// concurrent use; Apply calls serialize.
type Session struct {
	cfg Config
	rng *rand.Rand // retry jitter; nil = deterministic envelope

	applyMu sync.Mutex // serializes Apply / Close

	mu        sync.RWMutex
	file      *spec.File     // current problem description (committed facts)
	prob      *core.Problem  // the problem the active schedule proves
	active    *core.Schedule // never unproven: Optimal && Validate'd
	state     State
	resolving bool
	safe      []safeMode // sorted by diameter
	journal   []Entry
	stats     Stats
	notify    chan struct{} // closed and replaced on every journal append
	closed    bool
}

// New solves the spec cold, precomputes the safe-mode table and returns
// an active session. It fails when the initial problem cannot be proven
// or when no safe mode is solvable — a session without a fallback could
// not honor the degraded-operation contract.
func New(ctx context.Context, f *spec.File, cfg Config) (*Session, error) {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	s := &Session{cfg: cfg, notify: make(chan struct{})}
	if cfg.BackoffSeed != 0 {
		s.rng = rand.New(rand.NewSource(cfg.BackoffSeed))
	}
	file := cloneFile(f)
	prob, err := buildProblem(file, cfg)
	if err != nil {
		return nil, err
	}
	sched, _, err := s.solveProven(ctx, prob, 0)
	if err != nil {
		return nil, fmt.Errorf("session: initial solve: %w", err)
	}
	safe, err := computeSafeTable(ctx, file, cfg)
	if err != nil {
		return nil, err
	}
	s.file = file
	s.prob = prob
	s.active = sched
	s.state = StateActive
	s.safe = safe
	s.mu.Lock()
	s.appendLocked(&Entry{
		Event:    Event{Kind: KindInit},
		Outcome:  OutcomeInit,
		State:    StateActive,
		Makespan: sched.Makespan,
		Rounds:   len(sched.Rounds),
		BusTime:  sched.BusTime,
	})
	s.mu.Unlock()
	return s, nil
}

// buildProblem converts the description into a solvable core.Problem
// with the session's solver knobs applied.
func buildProblem(f *spec.File, cfg Config) (*core.Problem, error) {
	p, err := spec.Build(f)
	if err != nil {
		return nil, err
	}
	p.Workers = cfg.Workers
	p.Portfolio = cfg.Portfolio
	p.PortfolioSeed = cfg.PortfolioSeed
	return p, nil
}

// computeSafeTable solves the description once per covering diameter
// with χ pinned to MaxNTX. Diameters that fail to solve are skipped; an
// empty table is an error.
func computeSafeTable(ctx context.Context, f *spec.File, cfg Config) ([]safeMode, error) {
	ds := append([]int(nil), cfg.SafeDiameters...)
	if len(ds) == 0 {
		ds = []int{f.Diameter}
	}
	sort.Ints(ds)
	var table []safeMode
	for i, d := range ds {
		if d < 1 || (i > 0 && d == ds[i-1]) {
			continue
		}
		sf := cloneFile(f)
		sf.Diameter = d
		maxNTX := sf.MaxNTX
		if maxNTX == 0 {
			maxNTX = core.DefaultMaxNTX
		}
		sf.MinNTX = maxNTX
		prob, err := buildProblem(sf, cfg)
		if err != nil {
			continue
		}
		sched, err := core.SolveContext(ctx, prob)
		if err != nil || !sched.Optimal || sched.Validate(prob.App) != nil {
			continue
		}
		table = append(table, safeMode{diameter: d, file: sf, prob: prob, sched: sched})
	}
	if len(table) == 0 {
		return nil, errors.New("session: no safe mode solvable for any configured diameter")
	}
	return table, nil
}

// pickSafe returns the smallest tabled mode covering the diameter, or
// the widest mode (with a note) when none does.
func pickSafe(table []safeMode, diameter int) (safeMode, string) {
	for _, m := range table {
		if m.diameter >= diameter {
			return m, ""
		}
	}
	w := table[len(table)-1]
	return w, fmt.Sprintf("no safe mode covers diameter %d; installed widest (%d)", diameter, w.diameter)
}

// Apply validates, commits and re-solves one event, returning its
// journal entry. Malformed events and failed workload events are
// journaled as rejected (entry, nil error); Apply only errors when the
// session is closed or ctx expires mid-solve — in the latter case the
// event is not journaled and may be re-applied.
func (s *Session) Apply(ctx context.Context, e Event) (Entry, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()

	s.mu.RLock()
	closed := s.closed
	file := s.file
	prevState := s.state
	var warm int64
	if s.active != nil {
		warm = s.active.Makespan
	}
	s.mu.RUnlock()
	if closed {
		return Entry{}, ErrClosed
	}

	entry := Entry{Event: e}
	nf, err := applyToFile(file, e)
	if err != nil {
		return s.commitRejected(entry, err), nil
	}
	var sched *core.Schedule
	var attempts int
	var warmHit bool
	prob, err := buildProblem(nf, s.cfg)
	if err == nil {
		sched, attempts, warmHit, err = s.resolve(ctx, prob, warm)
	}
	entry.Attempts = attempts
	if sched != nil {
		entry.WarmHit = warmHit
		// The safe table must cover the new task set before the workload
		// commits: a session whose fallback cannot host the admitted work
		// would violate the degraded-operation contract at the worst time.
		var safe []safeMode
		if e.workload() {
			var serr error
			safe, serr = computeSafeTable(ctx, nf, s.cfg)
			if serr != nil {
				return s.commitRejected(entry, fmt.Errorf("schedule proven but %w", serr)), nil
			}
		}
		return s.commitApplied(entry, nf, prob, sched, safe, prevState), nil
	}
	if ctx.Err() != nil {
		return Entry{}, ctx.Err()
	}
	if !e.environment() {
		return s.commitRejected(entry, err), nil
	}
	return s.commitDegraded(entry, nf, prevState, err), nil
}

// resolve runs the re-solve retry loop: warm-started attempts under the
// per-attempt deadline, backoff between retries, deterministic failures
// surfaced immediately. Only a schedule that is proven optimal AND
// revalidates against the application is ever returned — anything less
// counts as a rejected swap.
func (s *Session) resolve(ctx context.Context, p *core.Problem, warm int64) (*core.Schedule, int, bool, error) {
	s.mu.Lock()
	s.resolving = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.resolving = false
		s.mu.Unlock()
	}()
	var lastErr error
	for a := 0; a < s.cfg.MaxAttempts; a++ {
		if a > 0 {
			s.cfg.Sleep(s.cfg.Backoff.Delay(a-1, s.rng))
		}
		if ctx.Err() != nil {
			return nil, a, false, ctx.Err()
		}
		sched, retryable, err := s.solveProven(ctx, p, warm)
		if err == nil {
			return sched, a + 1, warm > 0 && sched.Makespan <= warm, nil
		}
		lastErr = err
		if !retryable {
			return nil, a + 1, false, lastErr
		}
	}
	return nil, s.cfg.MaxAttempts, false, lastErr
}

// solveProven runs one solve attempt and enforces the never-swap-to-
// unproven invariant. retryable is true only for per-attempt deadline
// expiry — the single transient failure mode.
func (s *Session) solveProven(ctx context.Context, p *core.Problem, warm int64) (*core.Schedule, bool, error) {
	actx := ctx
	cancel := func() {}
	if s.cfg.ResolveDeadline > 0 {
		actx, cancel = context.WithTimeout(ctx, s.cfg.ResolveDeadline)
	}
	p.WarmMakespan = warm
	start := time.Now()
	sched, err := core.SolveContext(actx, p)
	cancel()
	if s.cfg.ObserveResolve != nil {
		s.cfg.ObserveResolve(time.Since(start))
	}
	s.mu.Lock()
	s.stats.Resolves++
	s.mu.Unlock()
	switch {
	case err == nil && sched.Optimal:
		if verr := sched.Validate(p.App); verr != nil {
			s.bumpRejectedSwaps()
			return nil, false, fmt.Errorf("session: proven schedule failed revalidation: %w", verr)
		}
		return sched, false, nil
	case err == nil:
		// A budget-truncated search handed back an unproven incumbent.
		// Same budget next attempt, same truncation: not retryable.
		s.bumpRejectedSwaps()
		return nil, false, fmt.Errorf("session: re-solve truncated by node budget; incumbent (makespan %d) not proven", sched.Makespan)
	case errors.Is(err, core.ErrCanceled):
		if sched != nil {
			s.bumpRejectedSwaps()
		}
		return nil, ctx.Err() == nil, err
	default:
		return nil, false, err
	}
}

func (s *Session) bumpRejectedSwaps() {
	s.mu.Lock()
	s.stats.RejectedSwaps++
	s.mu.Unlock()
}

func (s *Session) commitRejected(entry Entry, cause error) Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry.Outcome = OutcomeRejected
	entry.State = s.state
	if cause != nil {
		entry.Error = cause.Error()
	}
	if s.active != nil {
		entry.Makespan = s.active.Makespan
		entry.Rounds = len(s.active.Rounds)
		entry.BusTime = s.active.BusTime
	}
	s.stats.Events++
	s.stats.Rejected++
	s.appendLocked(&entry)
	return entry
}

func (s *Session) commitApplied(entry Entry, nf *spec.File, prob *core.Problem, sched *core.Schedule, safe []safeMode, prevState State) Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.file = nf
	s.prob = prob
	s.active = sched
	s.state = StateActive
	if safe != nil {
		s.safe = safe
	}
	entry.Outcome = OutcomeApplied
	if prevState == StateDegraded {
		entry.Outcome = OutcomeRecovered
		s.stats.Recoveries++
		s.stats.ModeSwitches++
	}
	entry.State = StateActive
	entry.Makespan = sched.Makespan
	entry.Rounds = len(sched.Rounds)
	entry.BusTime = sched.BusTime
	s.stats.Events++
	s.stats.Applied++
	if entry.WarmHit {
		s.stats.WarmHits++
	}
	s.appendLocked(&entry)
	return entry
}

func (s *Session) commitDegraded(entry Entry, nf *spec.File, prevState State, cause error) Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	mode, note := pickSafe(s.safe, nf.Diameter)
	s.file = nf // the fact commits regardless
	s.prob = mode.prob
	s.active = mode.sched
	s.state = StateDegraded
	entry.Outcome = OutcomeDegraded
	entry.State = StateDegraded
	entry.Makespan = mode.sched.Makespan
	entry.Rounds = len(mode.sched.Rounds)
	entry.BusTime = mode.sched.BusTime
	entry.SafeDiameter = mode.diameter
	entry.Note = note
	if cause != nil {
		entry.Error = cause.Error()
	}
	s.stats.Events++
	s.stats.Fallbacks++
	if prevState != StateDegraded {
		s.stats.ModeSwitches++
	}
	s.appendLocked(&entry)
	return entry
}

// appendLocked journals the entry (assigning its Seq) and wakes feed
// subscribers. Callers hold s.mu.
func (s *Session) appendLocked(e *Entry) {
	e.Seq = len(s.journal) + 1
	s.journal = append(s.journal, *e)
	close(s.notify)
	s.notify = make(chan struct{})
}

// StatusView is the session's externally visible state.
type StatusView struct {
	State         State `json:"state"`
	Seq           int   `json:"seq"`
	Makespan      int64 `json:"makespanUS"`
	Rounds        int   `json:"rounds"`
	BusTime       int64 `json:"busTimeUS"`
	Diameter      int   `json:"diameter"`
	MinNTX        int   `json:"minNTX,omitempty"`
	Tasks         int   `json:"tasks"`
	SafeDiameters []int `json:"safeDiameters"`
	Stats         Stats `json:"stats"`
	Optimal       bool  `json:"optimal"`
}

// Status snapshots the session.
func (s *Session) Status() StatusView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.state
	if s.resolving && st == StateActive {
		st = StateResolving
	}
	v := StatusView{
		State:    st,
		Seq:      len(s.journal),
		Diameter: s.file.Diameter,
		MinNTX:   s.file.MinNTX,
		Tasks:    len(s.file.Tasks),
		Stats:    s.stats,
	}
	for _, m := range s.safe {
		v.SafeDiameters = append(v.SafeDiameters, m.diameter)
	}
	if s.active != nil {
		v.Makespan = s.active.Makespan
		v.Rounds = len(s.active.Rounds)
		v.BusTime = s.active.BusTime
		v.Optimal = s.active.Optimal
	}
	return v
}

// Current returns the problem and schedule the session currently
// exposes (in degraded state: the safe mode's), plus the state. The
// returned values are never mutated by the session; treat them as
// read-only.
func (s *Session) Current() (*core.Problem, *core.Schedule, State) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.prob, s.active, s.state
}

// File returns a deep copy of the current problem description.
func (s *Session) File() *spec.File {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return cloneFile(s.file)
}

// Stats snapshots the counters.
func (s *Session) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Journal returns the entries with Seq > since.
func (s *Session) Journal(since int) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if since < 0 {
		since = 0
	}
	if since >= len(s.journal) {
		return nil
	}
	return append([]Entry(nil), s.journal[since:]...)
}

// Wait blocks until entries beyond since exist and returns them; it
// unblocks with ErrClosed when the session closes and ctx.Err() when the
// context expires. The event-feed streaming endpoint is built on it.
func (s *Session) Wait(ctx context.Context, since int) ([]Entry, error) {
	if since < 0 {
		since = 0
	}
	for {
		s.mu.RLock()
		if len(s.journal) > since {
			out := append([]Entry(nil), s.journal[since:]...)
			s.mu.RUnlock()
			return out, nil
		}
		if s.closed {
			s.mu.RUnlock()
			return nil, ErrClosed
		}
		ch := s.notify
		s.mu.RUnlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// WriteJournal renders the full journal as JSON Lines — the replay and
// bit-identity format.
func (s *Session) WriteJournal(w io.Writer) error {
	for _, e := range s.Journal(0) {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Close marks the session closed, wakes all feed subscribers and
// returns the final counters. Further Applies fail with ErrClosed;
// reads keep working.
func (s *Session) Close() Stats {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.notify)
		s.notify = make(chan struct{})
	}
	return s.stats
}
