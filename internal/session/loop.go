package session

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/campaign"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
)

// The closed loop: fault campaigns and mobility drive the session's
// event stream. Each iteration deploys the session's *currently exposed*
// schedule (in degraded state: the safe mode) onto the current topology,
// runs a seeded fault-injection campaign against it, certifies the
// traces, and feeds the verdict back as events — certification
// violations raise the retransmission floor, clean certifications lower
// it back, mobility profiles emit diameter changes, and an optional
// churn task joins and leaves periodically. Every per-iteration seed
// derives from the master seed via sim.ReplicationSeed, and no event
// depends on wall-clock timing, so the resulting journal is
// bit-identical across worker counts and repeat runs with the same
// seed.

// LoopConfig tunes RunLoop.
type LoopConfig struct {
	// Events stops the loop once the journal holds at least this many
	// entries beyond the init record (default 50).
	Events int
	// Seed is the master seed for campaigns, mobility and jitter.
	Seed int64
	// Scenario optionally injects faults into every campaign.
	Scenario *sim.Scenario
	// Replications and Runs size each iteration's campaign (defaults 8
	// and 40; Runs is raised to cover the largest weakly-hard window).
	Replications int
	Runs         int
	// Workers bounds campaign parallelism (0 = GOMAXPROCS). The journal
	// does not depend on it.
	Workers int
	// Confidence is the certifier's Wilson level (0 = default).
	Confidence float64
	// PRR is the clique link quality used when mobility is off
	// (default 0.9).
	PRR float64
	// Mobility enables the random-waypoint walker: each iteration
	// advances it, profiles the trace and emits a diameter event when
	// the worst-case diameter changed.
	Mobility       bool
	MobilitySpeed  float64 // default 0.05
	MobilityPower  float64 // default 0.5
	MobilitySteps  int     // walker snapshots per iteration, default 5
	// Churn optionally names a task that leaves and rejoins every
	// ChurnEvery-th iteration (default every 7), exercising the
	// workload-event path.
	Churn      string
	ChurnEvery int
	// Clocks and PeriodUS configure the timed simulator.
	Clocks   sim.ClockConfig
	PeriodUS int64
}

// LoopResult summarizes a closed-loop run.
type LoopResult struct {
	Iterations         int   `json:"iterations"`
	Events             int   `json:"events"`
	ViolatedIterations int   `json:"violatedIterations"`
	Stats              Stats `json:"stats"`
}

// churnSpec captures everything needed to re-admit the churn task after
// it leaves: its task spec, incident edges, constraints and rate, taken
// from the description at loop start.
type churnSpec struct {
	task  spec.TaskSpec
	edges []spec.EdgeSpec
	soft  *float64
	wh    *spec.WHSpec
	rate  int
}

func captureChurn(f *spec.File, name string) *churnSpec {
	for _, t := range f.Tasks {
		if t.Name != name {
			continue
		}
		c := &churnSpec{task: t}
		for _, e := range f.Edges {
			if e.From == name || e.To == name {
				c.edges = append(c.edges, e)
			}
		}
		if v, ok := f.SoftConstraints[name]; ok {
			v := v
			c.soft = &v
		}
		if w, ok := f.WHConstraints[name]; ok {
			w := w
			c.wh = &w
		}
		c.rate = f.Rates[name]
		return c
	}
	return nil
}

// RunLoop drives the session with campaign- and mobility-generated
// events until cfg.Events entries are journaled or ctx expires. It
// returns the partial result with ctx.Err() on early cancellation.
func RunLoop(ctx context.Context, s *Session, cfg LoopConfig) (*LoopResult, error) {
	if cfg.Events <= 0 {
		cfg.Events = 50
	}
	if cfg.Replications <= 0 {
		cfg.Replications = 8
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 40
	}
	if cfg.PRR <= 0 {
		cfg.PRR = 0.9
	}
	if cfg.MobilitySpeed <= 0 {
		cfg.MobilitySpeed = 0.05
	}
	if cfg.MobilityPower <= 0 {
		cfg.MobilityPower = 0.5
	}
	if cfg.MobilitySteps <= 0 {
		cfg.MobilitySteps = 5
	}
	if cfg.ChurnEvery <= 0 {
		cfg.ChurnEvery = 7
	}

	res := &LoopResult{}
	var churn *churnSpec
	if cfg.Churn != "" {
		if churn = captureChurn(s.File(), cfg.Churn); churn == nil {
			return nil, fmt.Errorf("session: churn task %q not in the spec", cfg.Churn)
		}
	}

	// The walker's node count is pinned to the initial application: churn
	// only removes and re-adds tasks on existing nodes, and the
	// deployment tolerates a topology wider than the task set.
	prob, _, _ := s.Current()
	nodes := len(prob.App.Nodes())
	var walker *network.RandomWaypoint
	var placement network.Placement
	if cfg.Mobility {
		w, err := network.NewRandomWaypoint(nodes, cfg.MobilitySpeed, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		walker = w
	}

	apply := func(e Event) error {
		if _, err := s.Apply(ctx, e); err != nil {
			return err
		}
		res.Events++
		return nil
	}

	for i := 0; res.Events < cfg.Events; i++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Iterations = i + 1
		applied := res.Events

		// Mobility: advance the walker, profile the new trace and report
		// a changed worst-case diameter as an environment fact.
		if walker != nil {
			trace := walker.Walk(cfg.MobilitySteps)
			placement = trace[len(trace)-1]
			prof, err := network.Profile(trace, cfg.MobilityPower)
			if err != nil {
				return res, err
			}
			if prof.AlwaysOK && prof.Diameter >= 1 && prof.Diameter != s.File().Diameter {
				if err := apply(Event{Kind: KindDiameter, Diameter: prof.Diameter}); err != nil {
					return res, err
				}
			}
		}

		// Campaign against the currently exposed schedule — never against
		// anything unproven.
		prob, sched, _ := s.Current()
		var topo *network.Topology
		if walker != nil {
			topo = network.FromPlacement(placement, cfg.MobilityPower)
		} else {
			topo = network.Clique(nodes, cfg.PRR)
		}
		d, err := lwb.NewDeployment(prob.App, sched, topo, prob.Params)
		if err != nil {
			return res, err
		}
		runs := cfg.Runs
		for _, c := range prob.WHCons {
			if c.Window > runs {
				runs = c.Window
			}
		}
		camp, err := campaign.RunContext(ctx, d, campaign.Config{
			Replications: cfg.Replications,
			Runs:         runs,
			Seed:         sim.ReplicationSeed(cfg.Seed, i),
			Workers:      cfg.Workers,
			Scenario:     cfg.Scenario,
			Clocks:       cfg.Clocks,
			PeriodUS:     cfg.PeriodUS,
		})
		if err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			return res, err
		}
		report, err := campaign.Certify(prob, camp, cfg.Confidence)
		if err != nil {
			return res, err
		}

		// Feedback: violations raise the retransmission floor (one step
		// past MaxNTX at most — enough to trip the safe-mode fallback);
		// clean certifications relax it back toward 1.
		cur := s.File()
		maxNTX := cur.MaxNTX
		if maxNTX == 0 {
			maxNTX = prob.MaxNTX
		}
		minNTX := cur.MinNTX
		if minNTX == 0 {
			minNTX = 1
		}
		if len(report.Violated()) > 0 {
			res.ViolatedIterations++
			if minNTX <= maxNTX {
				if err := apply(Event{Kind: KindLink, MinNTX: minNTX + 1}); err != nil {
					return res, err
				}
			}
		} else if minNTX > 1 {
			if err := apply(Event{Kind: KindLink, MinNTX: minNTX - 1}); err != nil {
				return res, err
			}
		}

		// Churn: periodically retire and re-admit the designated task.
		if churn != nil && i > 0 && i%cfg.ChurnEvery == 0 {
			present := captureChurn(s.File(), churn.task.Name) != nil
			var e Event
			if present {
				e = Event{Kind: KindTaskLeave, Task: churn.task.Name}
			} else {
				e = Event{
					Kind: KindTaskJoin, Task: churn.task.Name, Node: churn.task.Node,
					WCET: churn.task.WCET, Edges: churn.edges,
					Soft: churn.soft, WH: churn.wh, Rate: churn.rate,
				}
			}
			if err := apply(e); err != nil {
				return res, err
			}
		}

		// Heartbeat: keep the journal moving even on a quiet iteration —
		// a same-node placement event is a semantic no-op whose re-solve
		// exercises the warm-start fast path.
		if res.Events == applied {
			hb := s.File().Tasks[0]
			if err := apply(Event{Kind: KindPlacement, Task: hb.Name, Node: hb.Node}); err != nil {
				return res, err
			}
		}
	}
	res.Stats = s.Stats()
	return res, nil
}
