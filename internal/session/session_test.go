package session

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/netdag/netdag/internal/backoff"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
)

// testFile is a three-task soft-mode pipeline across three nodes — small
// enough that every re-solve is milliseconds, rich enough to exercise
// joins, leaves, placement moves and constraint bookkeeping.
func testFile() *spec.File {
	return &spec.File{
		Mode:     "soft",
		Diameter: 2,
		Tasks: []spec.TaskSpec{
			{Name: "sense", Node: "n0", WCET: 400},
			{Name: "fuse", Node: "n1", WCET: 400},
			{Name: "act", Node: "n2", WCET: 400},
		},
		Edges: []spec.EdgeSpec{
			{From: "sense", To: "fuse", Width: 4},
			{From: "fuse", To: "act", Width: 4},
		},
		SoftStatistic:   &spec.StatSpec{Type: "bernoulli", PerTX: 0.9},
		SoftConstraints: map[string]float64{"act": 0.9},
	}
}

func newTestSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	s, err := New(context.Background(), testFile(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSessionLifecycle(t *testing.T) {
	ctx := context.Background()
	s := newTestSession(t, Config{})

	j := s.Journal(0)
	if len(j) != 1 || j[0].Outcome != OutcomeInit || j[0].State != StateActive || j[0].Seq != 1 {
		t.Fatalf("init journal = %+v", j)
	}
	initMakespan := j[0].Makespan

	// A placement move re-solves and commits.
	e, err := s.Apply(ctx, Event{Kind: KindPlacement, Task: "fuse", Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeApplied || e.State != StateActive || e.Seq != 2 || e.Attempts != 1 {
		t.Fatalf("placement entry = %+v", e)
	}
	if !e.WarmHit {
		t.Errorf("co-locating two pipeline stages should not regress the makespan; entry = %+v", e)
	}

	// A malformed event is journaled as rejected, not an error.
	e, err = s.Apply(ctx, Event{Kind: KindPlacement, Task: "ghost", Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeRejected || !errorsContains(e.Error, "unknown task") {
		t.Fatalf("ghost placement entry = %+v", e)
	}
	if e.Makespan == 0 {
		t.Error("rejected entry should report the standing schedule's makespan")
	}

	// Join, then leave: the task set round-trips.
	e, err = s.Apply(ctx, Event{
		Kind: KindTaskJoin, Task: "log", Node: "n1", WCET: 300,
		Edges: []spec.EdgeSpec{{From: "fuse", To: "log", Width: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeApplied {
		t.Fatalf("join entry = %+v", e)
	}
	if f := s.File(); len(f.Tasks) != 4 || len(f.Edges) != 3 {
		t.Fatalf("after join: %d tasks, %d edges", len(f.Tasks), len(f.Edges))
	}
	e, err = s.Apply(ctx, Event{Kind: KindTaskLeave, Task: "log"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeApplied {
		t.Fatalf("leave entry = %+v", e)
	}
	if f := s.File(); len(f.Tasks) != 3 || len(f.Edges) != 2 {
		t.Fatalf("after leave: %d tasks, %d edges", len(f.Tasks), len(f.Edges))
	}

	st := s.Stats()
	if st.Events != 4 || st.Applied != 3 || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
	if v := s.Status(); v.State != StateActive || v.Seq != 5 || v.Tasks != 3 || !v.Optimal {
		t.Errorf("status = %+v", v)
	}
	_ = initMakespan
}

func errorsContains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestSessionDegradedAndRecovery walks the full state machine: an
// environment fact that makes the problem unsolvable commits anyway and
// installs the safe mode; lowering the retransmission floor again
// re-solves and retires it as a recovery.
func TestSessionDegradedAndRecovery(t *testing.T) {
	ctx := context.Background()
	s := newTestSession(t, Config{SafeDiameters: []int{2, 4}})

	// MinNTX beyond MaxNTX: the χ domain is empty, every re-solve reports
	// ErrUnsat, but the fact commits and safe mode takes over.
	e, err := s.Apply(ctx, Event{Kind: KindLink, MinNTX: core.DefaultMaxNTX + 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeDegraded || e.State != StateDegraded || e.SafeDiameter != 2 {
		t.Fatalf("degrade entry = %+v", e)
	}
	if e.Attempts != 1 {
		t.Errorf("deterministic failure took %d attempts, want 1 (never retried)", e.Attempts)
	}
	if f := s.File(); f.MinNTX != core.DefaultMaxNTX+1 {
		t.Errorf("environment fact did not commit: MinNTX = %d", f.MinNTX)
	}
	prob, sched, state := s.Current()
	if state != StateDegraded || !sched.Optimal || sched.Validate(prob.App) != nil {
		t.Fatal("degraded session must still expose a proven safe-mode schedule")
	}
	// The safe mode is the most conservative χ: every flood at MaxNTX.
	for _, r := range sched.Rounds {
		if r.BeaconNTX != core.DefaultMaxNTX {
			t.Errorf("safe-mode beacon NTX = %d, want %d", r.BeaconNTX, core.DefaultMaxNTX)
		}
		for _, sl := range r.Slots {
			if sl.NTX != core.DefaultMaxNTX {
				t.Errorf("safe-mode slot NTX = %d, want %d", sl.NTX, core.DefaultMaxNTX)
			}
		}
	}

	// Degraded events while degraded do not re-count a mode switch.
	if _, err := s.Apply(ctx, Event{Kind: KindLink, MinNTX: core.DefaultMaxNTX + 2}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ModeSwitches != 1 || st.Fallbacks != 2 {
		t.Errorf("stats after second degrade = %+v", st)
	}

	// A diameter the table does not cover installs the widest mode with a
	// note.
	e, err = s.Apply(ctx, Event{Kind: KindDiameter, Diameter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeDegraded || e.SafeDiameter != 4 || e.Note == "" {
		t.Fatalf("uncovered-diameter entry = %+v", e)
	}

	// Recovery: the floor drops back into the domain, the re-solve
	// succeeds, safe mode retires.
	e, err = s.Apply(ctx, Event{Kind: KindLink, MinNTX: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeRecovered || e.State != StateActive {
		t.Fatalf("recovery entry = %+v", e)
	}
	st := s.Stats()
	if st.Recoveries != 1 || st.ModeSwitches != 2 || st.Fallbacks != 3 {
		t.Errorf("stats after recovery = %+v", st)
	}
}

// TestSessionWorkloadRejected pins the asymmetry between workload and
// environment events: a join the solver cannot prove is refused and
// leaves both the schedule and the description untouched.
func TestSessionWorkloadRejected(t *testing.T) {
	ctx := context.Background()
	s := newTestSession(t, Config{})
	_, before, _ := s.Current()

	// Push the session into the unsolvable regime first, then try to
	// admit work: environment degrades, workload is rejected.
	if _, err := s.Apply(ctx, Event{Kind: KindLink, MinNTX: core.DefaultMaxNTX + 1}); err != nil {
		t.Fatal(err)
	}
	e, err := s.Apply(ctx, Event{
		Kind: KindTaskJoin, Task: "log", Node: "n1", WCET: 300,
		Edges: []spec.EdgeSpec{{From: "fuse", To: "log", Width: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeRejected {
		t.Fatalf("unsolvable join entry = %+v", e)
	}
	if f := s.File(); len(f.Tasks) != 3 {
		t.Error("rejected join leaked into the description")
	}
	_, after, _ := s.Current()
	if after.Makespan != before.Makespan && !after.Optimal {
		t.Error("rejected join displaced the active schedule")
	}
}

// TestSessionRetryBackoff forces per-attempt deadline expiry and checks
// the retry loop: MaxAttempts solves, jitter-free exponential backoff
// between them, then safe-mode fallback for the environment fact.
func TestSessionRetryBackoff(t *testing.T) {
	ctx := context.Background()
	s := newTestSession(t, Config{MaxAttempts: 3})
	var slept []time.Duration
	// White-box: tighten the deadline after the initial solve so every
	// subsequent attempt's context is born expired.
	s.cfg.ResolveDeadline = time.Nanosecond
	s.cfg.Sleep = func(d time.Duration) { slept = append(slept, d) }

	e, err := s.Apply(ctx, Event{Kind: KindPlacement, Task: "fuse", Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeDegraded || e.Attempts != 3 {
		t.Fatalf("timed-out placement entry = %+v", e)
	}
	var p backoff.Policy
	want := []time.Duration{p.Delay(0, nil), p.Delay(1, nil)}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff sleeps = %v, want %v", slept, want)
	}

	// An expired outer context is the caller's problem: no journal entry,
	// the event stays re-appliable.
	seq := s.Status().Seq
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Apply(cctx, Event{Kind: KindDiameter, Diameter: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired-context Apply err = %v", err)
	}
	if s.Status().Seq != seq {
		t.Error("expired-context Apply was journaled")
	}
}

func TestSessionWaitAndClose(t *testing.T) {
	ctx := context.Background()
	s := newTestSession(t, Config{})

	got := make(chan []Entry, 1)
	go func() {
		es, err := s.Wait(ctx, 1) // past the init entry
		if err != nil {
			got <- nil
			return
		}
		got <- es
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Apply(ctx, Event{Kind: KindDiameter, Diameter: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case es := <-got:
		if len(es) != 1 || es[0].Seq != 2 {
			t.Fatalf("Wait returned %+v", es)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not unblock on journal append")
	}

	s.Close()
	if _, err := s.Wait(ctx, 99); !errors.Is(err, ErrClosed) {
		t.Errorf("Wait on closed session err = %v", err)
	}
	if _, err := s.Apply(ctx, Event{Kind: KindDiameter, Diameter: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply on closed session err = %v", err)
	}
	if len(s.Journal(0)) != 2 {
		t.Error("journal must stay readable after Close")
	}
}

// TestSessionJournalDeterminism replays one event script under different
// worker counts and again under the same seed: the JSONL journals must
// be byte-identical — the session's core reproducibility claim.
func TestSessionJournalDeterminism(t *testing.T) {
	script := []Event{
		{Kind: KindPlacement, Task: "fuse", Node: "n0"},
		{Kind: KindTaskJoin, Task: "log", Node: "n1", WCET: 300,
			Edges: []spec.EdgeSpec{{From: "fuse", To: "log", Width: 2}}},
		{Kind: KindLink, MinNTX: 3},
		{Kind: KindDiameter, Diameter: 4},
		{Kind: KindLink, MinNTX: core.DefaultMaxNTX + 1},
		{Kind: KindPlacement, Task: "ghost", Node: "n1"},
		{Kind: KindLink, MinNTX: 2},
		{Kind: KindTaskLeave, Task: "log"},
	}
	run := func(workers int) []byte {
		s, err := New(context.Background(), testFile(), Config{Workers: workers, SafeDiameters: []int{2, 4}})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for _, e := range script {
			if _, err := s.Apply(context.Background(), e); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := s.WriteJournal(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	j1 := run(1)
	j4 := run(4)
	j1b := run(1)
	if !bytes.Equal(j1, j4) {
		t.Errorf("journal differs between Workers=1 and Workers=4:\n%s\n---\n%s", j1, j4)
	}
	if !bytes.Equal(j1, j1b) {
		t.Errorf("journal differs between identical runs:\n%s\n---\n%s", j1, j1b)
	}
}

// TestSessionSoak is the CI soak: a session under the examples/faults
// mixed campaign closed loop for hundreds of events, with mobility and
// churn, run twice at different worker counts. The journals must be
// byte-identical and the process must not leak goroutines after Close.
func TestSessionSoak(t *testing.T) {
	events := 200
	if testing.Short() {
		events = 30
	}
	sf, err := os.Open("../../examples/faults/mixed.json")
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := sim.LoadScenario(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	run := func(workers int) ([]byte, *LoopResult, Stats) {
		s, err := New(context.Background(), testFile(), Config{Workers: workers, SafeDiameters: []int{2, 3, 4}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLoop(context.Background(), s, LoopConfig{
			Events:       events,
			Seed:         42,
			Scenario:     scenario,
			Replications: 2,
			Runs:         8,
			Workers:      workers,
			Mobility:     true,
			Churn:        "act",
			ChurnEvery:   5,
		})
		if err != nil {
			s.Close()
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteJournal(&buf); err != nil {
			t.Fatal(err)
		}
		st := s.Close()
		return buf.Bytes(), res, st
	}

	j1, res1, st1 := run(1)
	j4, res4, _ := run(4)

	if res1.Events < events {
		t.Errorf("loop drove %d events, want >= %d", res1.Events, events)
	}
	if !bytes.Equal(j1, j4) {
		d1, d4 := firstDiffLine(j1, j4)
		t.Errorf("soak journal differs between Workers=1 and Workers=4:\nW1: %s\nW4: %s", d1, d4)
	}
	if res1.Iterations != res4.Iterations || res1.ViolatedIterations != res4.ViolatedIterations {
		t.Errorf("loop results diverge: %+v vs %+v", res1, res4)
	}
	if st1.Events == 0 || st1.Resolves == 0 {
		t.Errorf("soak stats look empty: %+v", st1)
	}
	t.Logf("soak: %d events over %d iterations, %d violated, stats %+v",
		res1.Events, res1.Iterations, res1.ViolatedIterations, st1)

	// Drain check: give solver/campaign pools a moment to exit, then
	// require the goroutine count back at (or below) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak after drain: %d > %d\n%s", n, before, buf[:runtime.Stack(buf, true)])
	}
}

func firstDiffLine(a, b []byte) (string, string) {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return string(la[i]), string(lb[i])
		}
	}
	return fmt.Sprintf("len %d", len(la)), fmt.Sprintf("len %d", len(lb))
}
