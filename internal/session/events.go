package session

import (
	"errors"
	"fmt"
	"maps"

	"github.com/netdag/netdag/internal/spec"
)

// Kind names a session event.
type Kind string

const (
	// KindInit is the synthetic first journal entry recording the
	// session's initial certified schedule. It is never accepted by
	// Apply.
	KindInit Kind = "init"
	// KindTaskJoin adds a task (with its incident edges and optional
	// constraint) to the application — LWB's dynamic stream submission.
	KindTaskJoin Kind = "task-join"
	// KindTaskLeave removes a task, its incident edges and constraints.
	KindTaskLeave Kind = "task-leave"
	// KindPlacement moves a task to another node.
	KindPlacement Kind = "placement"
	// KindDiameter updates the worst-case network diameter, typically
	// from a mobility profile (network.Profile).
	KindDiameter Kind = "diameter"
	// KindLink updates the retransmission floor MinNTX, the uniform
	// response to degraded link quality reported by campaign
	// certification. A floor beyond MaxNTX is accepted as a fact — the
	// re-solve then fails and the session degrades to safe mode.
	KindLink Kind = "link-quality"
)

// Event is one delta against the session's problem description.
// Workload events (task-join, task-leave) admit or retire work and are
// rejected when no replacement schedule can be proven; environment
// events (placement, diameter, link-quality) report facts about the
// world and always commit — when the re-solve fails, the session
// degrades to a precomputed safe mode instead of refusing the fact.
type Event struct {
	Kind Kind `json:"kind"`

	// Task names the subject of task-join / task-leave / placement.
	Task string `json:"task,omitempty"`
	// Node is the joining task's placement, or the placement event's new
	// node.
	Node string `json:"node,omitempty"`
	// WCET is the joining task's worst-case execution time.
	WCET int64 `json:"wcet,omitempty"`
	// Edges are the joining task's incident dependency edges; each must
	// reference the joining task on one end.
	Edges []spec.EdgeSpec `json:"edges,omitempty"`
	// Soft optionally constrains the joining task (soft mode).
	Soft *float64 `json:"soft,omitempty"`
	// WH optionally constrains the joining task (weakly-hard mode).
	WH *spec.WHSpec `json:"wh,omitempty"`
	// Rate optionally makes the joining task multi-rate.
	Rate int `json:"rate,omitempty"`

	// Diameter is the new worst-case hop diameter (diameter events).
	Diameter int `json:"diameter,omitempty"`
	// MinNTX is the new retransmission floor (link-quality events).
	MinNTX int `json:"minNTX,omitempty"`
}

// environment reports whether the event states a fact about the network
// or deployment that the session must commit even when it cannot prove a
// replacement schedule.
func (e Event) environment() bool {
	switch e.Kind {
	case KindPlacement, KindDiameter, KindLink:
		return true
	}
	return false
}

// workload reports whether the event changes the task set — after which
// the precomputed safe-mode table no longer covers the application and
// must be rebuilt.
func (e Event) workload() bool {
	return e.Kind == KindTaskJoin || e.Kind == KindTaskLeave
}

// ErrEvent wraps all event-level validation failures. Such events are
// journaled as rejected; they never abort the session.
var ErrEvent = errors.New("session: invalid event")

// cloneFile deep-copies the mutable parts of a problem spec. Statistic
// and Glossy parameter specs are immutable after decoding and are
// shared.
func cloneFile(f *spec.File) *spec.File {
	c := *f
	c.Tasks = append([]spec.TaskSpec(nil), f.Tasks...)
	c.Edges = append([]spec.EdgeSpec(nil), f.Edges...)
	c.Rates = maps.Clone(f.Rates)
	c.SoftConstraints = maps.Clone(f.SoftConstraints)
	c.WHConstraints = maps.Clone(f.WHConstraints)
	return &c
}

// applyToFile validates e against the current problem description and
// returns a new description with the delta applied. The input is never
// mutated — a failed re-solve must leave the session's description
// untouched for workload events.
func applyToFile(f *spec.File, e Event) (*spec.File, error) {
	n := cloneFile(f)
	taskAt := func(name string) int {
		for i, t := range n.Tasks {
			if t.Name == name {
				return i
			}
		}
		return -1
	}
	switch e.Kind {
	case KindTaskJoin:
		if e.Task == "" || e.Node == "" {
			return nil, fmt.Errorf("%w: task-join needs task and node", ErrEvent)
		}
		if e.WCET <= 0 {
			return nil, fmt.Errorf("%w: task-join %q needs a positive wcet", ErrEvent, e.Task)
		}
		if taskAt(e.Task) >= 0 {
			return nil, fmt.Errorf("%w: task %q already present", ErrEvent, e.Task)
		}
		n.Tasks = append(n.Tasks, spec.TaskSpec{Name: e.Task, Node: e.Node, WCET: e.WCET})
		seen := make(map[[2]string]bool, len(n.Edges))
		for _, ex := range n.Edges {
			seen[[2]string{ex.From, ex.To}] = true
		}
		for _, ed := range e.Edges {
			if ed.From != e.Task && ed.To != e.Task {
				return nil, fmt.Errorf("%w: join edge %s -> %s does not touch %q", ErrEvent, ed.From, ed.To, e.Task)
			}
			other := ed.From
			if other == e.Task {
				other = ed.To
			}
			if taskAt(other) < 0 {
				return nil, fmt.Errorf("%w: join edge references unknown task %q", ErrEvent, other)
			}
			if seen[[2]string{ed.From, ed.To}] {
				return nil, fmt.Errorf("%w: duplicate join edge %s -> %s", ErrEvent, ed.From, ed.To)
			}
			seen[[2]string{ed.From, ed.To}] = true
			n.Edges = append(n.Edges, ed)
		}
		if e.Soft != nil {
			if n.Mode != "soft" {
				return nil, fmt.Errorf("%w: soft constraint on a %q-mode session", ErrEvent, n.Mode)
			}
			if n.SoftConstraints == nil {
				n.SoftConstraints = map[string]float64{}
			}
			n.SoftConstraints[e.Task] = *e.Soft
		}
		if e.WH != nil {
			if n.Mode != "weakly-hard" {
				return nil, fmt.Errorf("%w: weakly-hard constraint on a %q-mode session", ErrEvent, n.Mode)
			}
			if n.WHConstraints == nil {
				n.WHConstraints = map[string]spec.WHSpec{}
			}
			n.WHConstraints[e.Task] = *e.WH
		}
		if e.Rate > 0 {
			if n.Rates == nil {
				n.Rates = map[string]int{}
			}
			n.Rates[e.Task] = e.Rate
		}
		return n, nil
	case KindTaskLeave:
		i := taskAt(e.Task)
		if i < 0 {
			return nil, fmt.Errorf("%w: task-leave of unknown task %q", ErrEvent, e.Task)
		}
		if len(n.Tasks) == 1 {
			return nil, fmt.Errorf("%w: cannot remove the last task %q", ErrEvent, e.Task)
		}
		n.Tasks = append(n.Tasks[:i], n.Tasks[i+1:]...)
		kept := n.Edges[:0]
		for _, ed := range n.Edges {
			if ed.From != e.Task && ed.To != e.Task {
				kept = append(kept, ed)
			}
		}
		n.Edges = kept
		delete(n.SoftConstraints, e.Task)
		delete(n.WHConstraints, e.Task)
		delete(n.Rates, e.Task)
		return n, nil
	case KindPlacement:
		i := taskAt(e.Task)
		if i < 0 {
			return nil, fmt.Errorf("%w: placement of unknown task %q", ErrEvent, e.Task)
		}
		if e.Node == "" {
			return nil, fmt.Errorf("%w: placement of %q needs a node", ErrEvent, e.Task)
		}
		n.Tasks[i].Node = e.Node
		return n, nil
	case KindDiameter:
		if e.Diameter < 1 {
			return nil, fmt.Errorf("%w: diameter %d must be >= 1", ErrEvent, e.Diameter)
		}
		n.Diameter = e.Diameter
		return n, nil
	case KindLink:
		if e.MinNTX < 1 {
			return nil, fmt.Errorf("%w: minNTX %d must be >= 1", ErrEvent, e.MinNTX)
		}
		n.MinNTX = e.MinNTX
		return n, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrEvent, e.Kind)
	}
}
