package spec

import (
	"bytes"
	"os"
	"testing"

	"github.com/netdag/netdag/internal/core"
)

// goldenFront pins one example spec's Pareto front: the exact
// (makespan, energy) points the ε-constraint sweep must reproduce.
// These are regression pins in the spirit of core's golden makespans —
// update them only for a deliberate solver change, with the new values
// cross-checked against an independent re-derivation.
type goldenFront struct {
	name string
	path string
	want []core.ParetoPoint // Sched left nil; only the objectives pin
}

func goldenFronts() []goldenFront {
	return []goldenFront{
		{
			name: "online-pipeline",
			path: "../../examples/online/pipeline.json",
			want: []core.ParetoPoint{{Makespan: 19684, EnergyPC: 339384080}},
		},
		{
			name: "corpus-scenario-000",
			path: "../../examples/corpus/scenario-000.json",
			want: []core.ParetoPoint{{Makespan: 14831, EnergyPC: 213303500}},
		},
	}
}

// solveGoldenFront loads the spec, switches it to the Pareto objective
// and returns the problem with its solved front.
func solveGoldenFront(t *testing.T, path string, workers int) (*core.Problem, []core.ParetoPoint) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	p.Objective = core.ObjectivePareto
	p.Workers = workers
	front, err := core.ParetoFront(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, front
}

// assertNonDominated is the O(n²) checker: no front point may weakly
// dominate another in both objectives.
func assertNonDominated(t *testing.T, front []core.ParetoPoint) {
	t.Helper()
	for i, a := range front {
		for j, b := range front {
			if i != j && b.Makespan <= a.Makespan && b.EnergyPC <= a.EnergyPC {
				t.Errorf("front point %d (%d µs, %d pC) dominated by point %d (%d µs, %d pC)",
					i, a.Makespan, a.EnergyPC, j, b.Makespan, b.EnergyPC)
			}
		}
	}
}

func TestGoldenParetoFronts(t *testing.T) {
	for _, g := range goldenFronts() {
		t.Run(g.name, func(t *testing.T) {
			p, front := solveGoldenFront(t, g.path, 1)
			assertNonDominated(t, front)
			if len(front) != len(g.want) {
				t.Fatalf("front has %d points, want %d", len(front), len(g.want))
			}
			for i, pt := range front {
				if pt.Makespan != g.want[i].Makespan || pt.EnergyPC != g.want[i].EnergyPC {
					t.Errorf("point %d = (%d µs, %d pC), want (%d µs, %d pC)",
						i, pt.Makespan, pt.EnergyPC, g.want[i].Makespan, g.want[i].EnergyPC)
				}
				if pt.Sched == nil {
					t.Fatalf("point %d carries no schedule", i)
				}
				if err := pt.Sched.Validate(p.App); err != nil {
					t.Errorf("point %d schedule invalid: %v", i, err)
				}
				if got := pt.Sched.EnergyPC; got != pt.EnergyPC {
					t.Errorf("point %d: schedule energy %d pC != point energy %d pC", i, got, pt.EnergyPC)
				}
			}
		})
	}
}

// TestGoldenParetoFrontsByteIdenticalAcrossWorkers pins the exported
// artifact, not just the objective values: the full WriteFrontJSON
// rendering (schedules, slots, χ, slack) must be byte-identical whether
// the sweep's solves ran sequentially or with four workers.
func TestGoldenParetoFrontsByteIdenticalAcrossWorkers(t *testing.T) {
	for _, g := range goldenFronts() {
		t.Run(g.name, func(t *testing.T) {
			render := func(workers int) []byte {
				p, front := solveGoldenFront(t, g.path, workers)
				var buf bytes.Buffer
				if err := WriteFrontJSON(&buf, p, front); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			seq := render(1)
			par := render(4)
			if !bytes.Equal(seq, par) {
				t.Errorf("front JSON differs between 1 and 4 workers:\n--- workers=1\n%s\n--- workers=4\n%s", seq, par)
			}
		})
	}
}
