package spec

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/core"
)

func TestBuildRejectsDuplicateTask(t *testing.T) {
	doc := strings.Replace(validWH,
		`{"name": "sense", "node": "n0", "wcet": 500},`,
		`{"name": "sense", "node": "n0", "wcet": 500},
    {"name": "sense", "node": "n9", "wcet": 100},`, 1)
	_, err := Load(strings.NewReader(doc))
	if !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("duplicate task: %v, want ErrDuplicateTask", err)
	}
	if !errors.Is(err, ErrSpec) {
		t.Error("ErrDuplicateTask does not wrap ErrSpec")
	}
}

func TestBuildRejectsDuplicateEdge(t *testing.T) {
	// The same (from, to) edge twice — even with differing widths, which
	// dag.Connect would otherwise silently merge by max width.
	doc := strings.Replace(validWH,
		`{"from": "sense", "to": "ctrl", "width": 8},`,
		`{"from": "sense", "to": "ctrl", "width": 8},
    {"from": "sense", "to": "ctrl", "width": 16},`, 1)
	_, err := Load(strings.NewReader(doc))
	if !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate edge: %v, want ErrDuplicateEdge", err)
	}
	if !errors.Is(err, ErrSpec) {
		t.Error("ErrDuplicateEdge does not wrap ErrSpec")
	}
}

// exportImportCycle solves doc, exports the schedule to JSON, re-imports
// it against a freshly built problem, and asserts the re-imported
// schedule validates against the original application — the contract the
// scheduling service relies on when clients feed ScheduleOut back.
func exportImportCycle(t *testing.T, doc string) {
	t.Helper()
	p, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p, s); err != nil {
		t.Fatal(err)
	}
	// Re-import against an independently built problem, as a client
	// would after receiving the JSON over the wire.
	p2, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Import(p2, &buf)
	if err != nil {
		t.Fatalf("re-import: %v", err)
	}
	if err := got.Validate(p2.App); err != nil {
		t.Fatalf("re-imported schedule fails validation against the original problem: %v", err)
	}
	if got.Makespan != s.Makespan || got.BusTime != s.BusTime {
		t.Errorf("round-trip changed timing: (%d,%d) vs (%d,%d)",
			got.Makespan, got.BusTime, s.Makespan, s.BusTime)
	}
	if got.Optimal != s.Optimal || got.Explored != s.Explored || got.SolverNodes != s.SolverNodes {
		t.Errorf("round-trip dropped solve provenance: (%v,%d,%d) vs (%v,%d,%d)",
			got.Optimal, got.Explored, got.SolverNodes, s.Optimal, s.Explored, s.SolverNodes)
	}
	if len(got.Rounds) != len(s.Rounds) || len(got.Tasks) != len(s.Tasks) {
		t.Errorf("round-trip changed shape: %d/%d rounds, %d/%d tasks",
			len(got.Rounds), len(s.Rounds), len(got.Tasks), len(s.Tasks))
	}
}

func TestExportImportRoundTripValidates(t *testing.T) {
	exportImportCycle(t, validWH)
}

func TestExportImportRoundTripMultiRate(t *testing.T) {
	doc := strings.Replace(validWH, `"whStatistic"`,
		`"rates": {"act": 2, "ctrl": 2}, "whStatistic"`, 1)
	exportImportCycle(t, doc)
}

func TestFingerprintCanonicalization(t *testing.T) {
	base := &File{
		Mode: "weakly-hard", Diameter: 3,
		Tasks: []TaskSpec{
			{Name: "a", Node: "n0", WCET: 100},
			{Name: "b", Node: "n1", WCET: 200},
		},
		Edges:         []EdgeSpec{{From: "a", To: "b", Width: 8}},
		WHStatistic:   &StatSpec{Type: "synthetic"},
		WHConstraints: map[string]WHSpec{"b": {Misses: 4, Window: 40}},
	}
	h1, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}

	// Task order is not identity.
	reordered := *base
	reordered.Tasks = []TaskSpec{base.Tasks[1], base.Tasks[0]}
	h2, err := Fingerprint(&reordered)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("task order changed the fingerprint")
	}
	// Fingerprint must not mutate its argument.
	if reordered.Tasks[0].Name != "b" {
		t.Error("Fingerprint reordered the caller's slice")
	}

	// Content is identity.
	widened := *base
	widened.Edges = []EdgeSpec{{From: "a", To: "b", Width: 16}}
	h3, err := Fingerprint(&widened)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Error("changing an edge width kept the fingerprint")
	}

	constrained := *base
	constrained.WHConstraints = map[string]WHSpec{"b": {Misses: 2, Window: 40}}
	h4, err := Fingerprint(&constrained)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h4 {
		t.Error("tightening a constraint kept the fingerprint")
	}

	if _, err := Fingerprint(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("nil spec: %v, want ErrSpec", err)
	}
}
