// Package spec loads NETDAG scheduling problems from JSON, the interface
// of the cmd/netdag binary. A spec describes the application graph, the
// Glossy profile, the network statistic and the task-level constraints:
//
//	{
//	  "mode": "weakly-hard",
//	  "diameter": 3,
//	  "tasks": [{"name": "sense", "node": "n0", "wcet": 500}, ...],
//	  "edges": [{"from": "sense", "to": "ctrl", "width": 8}, ...],
//	  "whStatistic": {"type": "synthetic"},
//	  "whConstraints": {"act": {"misses": 4, "window": 40}}
//	}
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/multirate"
	"github.com/netdag/netdag/internal/wh"
)

// File is the JSON document shape.
type File struct {
	Mode      string `json:"mode"` // "soft" or "weakly-hard"
	Diameter  int    `json:"diameter"`
	MaxNTX    int    `json:"maxNTX,omitempty"`
	MinNTX    int    `json:"minNTX,omitempty"` // χ domain floor (degraded-link margin); 0 = unconstrained
	MaxRounds int    `json:"maxRounds,omitempty"`

	Params *ParamsSpec `json:"glossy,omitempty"`

	Tasks []TaskSpec `json:"tasks"`
	Edges []EdgeSpec `json:"edges"`

	// Rates optionally makes the application multi-rate: the named tasks
	// run that many times per hyperperiod and the graph is unrolled
	// (internal/multirate) before scheduling. Constraints on a task
	// spread to all of its instances.
	Rates map[string]int `json:"rates,omitempty"`

	SoftStatistic   *StatSpec          `json:"softStatistic,omitempty"`
	WHStatistic     *StatSpec          `json:"whStatistic,omitempty"`
	SoftConstraints map[string]float64 `json:"softConstraints,omitempty"`
	WHConstraints   map[string]WHSpec  `json:"whConstraints,omitempty"`

	// Objective selects what the solver minimizes: "makespan" (the
	// default), "energy", or "pareto" for the full energy/latency front.
	// Omitted or empty keeps the paper's makespan objective, so existing
	// specs hash and solve exactly as before; a non-empty value folds
	// into Fingerprint, so cached solutions never cross objectives.
	Objective string `json:"objective,omitempty"`
}

// TaskSpec declares one task.
type TaskSpec struct {
	Name string `json:"name"`
	Node string `json:"node"`
	WCET int64  `json:"wcet"`
}

// EdgeSpec declares one dependency edge.
type EdgeSpec struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Width int    `json:"width"`
}

// ParamsSpec overrides the default Glossy constants.
type ParamsSpec struct {
	A           int64 `json:"a"`
	BHW         int64 `json:"bhw"`
	C           int64 `json:"c"`
	D           int64 `json:"d"`
	BeaconWidth int   `json:"beaconWidth"`
}

// StatSpec selects a network statistic.
type StatSpec struct {
	Type  string  `json:"type"`            // bernoulli | sigmoid | synthetic
	PerTX float64 `json:"perTX,omitempty"` // bernoulli
	FSS   float64 `json:"fss,omitempty"`   // sigmoid
}

// WHSpec is a miss-form weakly-hard constraint.
type WHSpec struct {
	Misses int `json:"misses"`
	Window int `json:"window"`
}

// ErrSpec wraps all spec-level validation failures.
var ErrSpec = errors.New("spec: invalid problem specification")

// Named rejections for duplicated spec entries. Both wrap ErrSpec, so
// errors.Is(err, ErrSpec) keeps matching. They exist for more than
// hygiene: the content-addressed solution cache (internal/serve) keys on
// a canonical hash of the sorted task and edge lists, and duplicates
// would let two textually different specs of the same problem hash
// differently (e.g. the same edge listed twice with different widths,
// which dag.Connect would silently merge by max width).
var (
	// ErrDuplicateTask reports a task name declared more than once.
	ErrDuplicateTask = fmt.Errorf("%w: duplicate task name", ErrSpec)
	// ErrDuplicateEdge reports a (from, to) dependency declared more than
	// once.
	ErrDuplicateEdge = fmt.Errorf("%w: duplicate edge", ErrSpec)
)

// Decode parses a JSON problem spec into its File form without building
// the core.Problem — for callers that need the mutable document itself,
// like the online session layer, which applies delta events to the File
// and rebuilds the Problem per re-solve.
func Decode(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return &f, nil
}

// Load parses a JSON problem spec and builds the core.Problem.
func Load(r io.Reader) (*core.Problem, error) {
	f, err := Decode(r)
	if err != nil {
		return nil, err
	}
	return Build(f)
}

// Build converts a parsed File into a core.Problem.
func Build(f *File) (*core.Problem, error) {
	if len(f.Tasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrSpec)
	}
	g := dag.New()
	ids := make(map[string]dag.TaskID, len(f.Tasks))
	for _, t := range f.Tasks {
		if _, dup := ids[t.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateTask, t.Name)
		}
		id, err := g.AddTask(t.Name, t.Node, t.WCET)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		ids[t.Name] = id
	}
	seenEdge := make(map[[2]string]bool, len(f.Edges))
	for _, e := range f.Edges {
		src, ok := ids[e.From]
		if !ok {
			return nil, fmt.Errorf("%w: edge from unknown task %q", ErrSpec, e.From)
		}
		dst, ok := ids[e.To]
		if !ok {
			return nil, fmt.Errorf("%w: edge to unknown task %q", ErrSpec, e.To)
		}
		if seenEdge[[2]string{e.From, e.To}] {
			return nil, fmt.Errorf("%w: %s -> %s", ErrDuplicateEdge, e.From, e.To)
		}
		seenEdge[[2]string{e.From, e.To}] = true
		if err := g.Connect(src, dst, e.Width); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
	}
	// Multi-rate specs are unrolled before scheduling; instJTable maps an
	// original task to the instances its constraints spread over (the
	// identity for single-rate specs). The unroll's instance chains feed
	// the solver's interchange symmetry breaking.
	instances := func(id dag.TaskID) []dag.TaskID { return []dag.TaskID{id} }
	var chains [][]dag.TaskID
	if len(f.Rates) > 0 {
		rates := make(map[dag.TaskID]int, len(f.Rates))
		for name, r := range f.Rates {
			id, ok := ids[name]
			if !ok {
				return nil, fmt.Errorf("%w: rate on unknown task %q", ErrSpec, name)
			}
			if r <= 0 {
				return nil, fmt.Errorf("%w: task %q rate %d must be positive", ErrSpec, name, r)
			}
			rates[id] = r
		}
		res, err := multirate.Unroll(multirate.Spec{App: g, Rates: rates})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		g = res.Graph
		instances = func(id dag.TaskID) []dag.TaskID { return res.Instances[id] }
		chains = res.Chains()
	}
	objective, err := core.ParseObjective(f.Objective)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	p := &core.Problem{
		App:            g,
		Params:         glossy.DefaultParams(),
		Diameter:       f.Diameter,
		MaxNTX:         f.MaxNTX,
		MinNTX:         f.MinNTX,
		MaxRounds:      f.MaxRounds,
		InstanceChains: chains,
		Objective:      objective,
	}
	if f.Params != nil {
		p.Params = glossy.Params{
			A: f.Params.A, BHW: f.Params.BHW, C: f.Params.C, D: f.Params.D,
			BeaconWidth: f.Params.BeaconWidth,
		}
	}
	switch f.Mode {
	case "soft":
		p.Mode = core.Soft
		stat, err := buildSoftStat(f.SoftStatistic)
		if err != nil {
			return nil, err
		}
		p.SoftStat = stat
		p.SoftCons = make(map[dag.TaskID]float64, len(f.SoftConstraints))
		for name, v := range f.SoftConstraints {
			id, ok := ids[name]
			if !ok {
				return nil, fmt.Errorf("%w: constraint on unknown task %q", ErrSpec, name)
			}
			for _, inst := range instances(id) {
				p.SoftCons[inst] = v
			}
		}
	case "weakly-hard":
		p.Mode = core.WeaklyHard
		stat, err := buildWHStat(f.WHStatistic)
		if err != nil {
			return nil, err
		}
		p.WHStat = stat
		p.WHCons = make(map[dag.TaskID]wh.MissConstraint, len(f.WHConstraints))
		for name, c := range f.WHConstraints {
			id, ok := ids[name]
			if !ok {
				return nil, fmt.Errorf("%w: constraint on unknown task %q", ErrSpec, name)
			}
			for _, inst := range instances(id) {
				p.WHCons[inst] = wh.MissConstraint{Misses: c.Misses, Window: c.Window}
			}
		}
	default:
		return nil, fmt.Errorf("%w: mode must be \"soft\" or \"weakly-hard\", got %q", ErrSpec, f.Mode)
	}
	return p, nil
}

func buildSoftStat(s *StatSpec) (glossy.SoftStatistic, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: soft mode needs softStatistic", ErrSpec)
	}
	switch s.Type {
	case "bernoulli":
		if s.PerTX <= 0 || s.PerTX >= 1 {
			return nil, fmt.Errorf("%w: bernoulli perTX %v outside (0,1)", ErrSpec, s.PerTX)
		}
		return glossy.BernoulliSoft{PerTX: s.PerTX}, nil
	case "sigmoid":
		if s.FSS <= 0 {
			return nil, fmt.Errorf("%w: sigmoid fss %v must be positive", ErrSpec, s.FSS)
		}
		return glossy.SigmoidSoft{FSS: s.FSS}, nil
	default:
		return nil, fmt.Errorf("%w: unknown soft statistic %q", ErrSpec, s.Type)
	}
}

func buildWHStat(s *StatSpec) (glossy.WHStatistic, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: weakly-hard mode needs whStatistic", ErrSpec)
	}
	switch s.Type {
	case "synthetic":
		return glossy.SyntheticWH{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown weakly-hard statistic %q", ErrSpec, s.Type)
	}
}
