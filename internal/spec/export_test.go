package spec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/core"
)

func TestExportRoundTrip(t *testing.T) {
	p, err := Load(strings.NewReader(validWH))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Export(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != "weakly-hard" {
		t.Errorf("mode = %q", out.Mode)
	}
	if out.MakespanUS != s.Makespan || out.BusTimeUS != s.BusTime {
		t.Errorf("exported timing mismatch: %+v", out)
	}
	if len(out.Rounds) != len(s.Rounds) {
		t.Errorf("rounds = %d, want %d", len(out.Rounds), len(s.Rounds))
	}
	if len(out.Tasks) != p.App.NumTasks() {
		t.Errorf("tasks = %d, want %d", len(out.Tasks), p.App.NumTasks())
	}
	// Tasks sorted by start time.
	for i := 1; i < len(out.Tasks); i++ {
		if out.Tasks[i].StartUS < out.Tasks[i-1].StartUS {
			t.Error("exported tasks not sorted by start")
		}
	}
	if out.Energy == nil || out.Energy.ChargeUC <= 0 {
		t.Error("energy summary missing")
	}
	// Slots carry resolvable source names.
	for _, r := range out.Rounds {
		for _, sl := range r.Slots {
			if _, ok := p.App.TaskByName(sl.Source); !ok {
				t.Errorf("slot source %q not a task", sl.Source)
			}
		}
	}
}

func TestWriteJSONIsValidJSON(t *testing.T) {
	p, err := Load(strings.NewReader(validSoft))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p, s); err != nil {
		t.Fatal(err)
	}
	var parsed ScheduleOut
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if parsed.MakespanUS != s.Makespan {
		t.Errorf("parsed makespan %d, want %d", parsed.MakespanUS, s.Makespan)
	}
}

func TestImportRoundTrip(t *testing.T) {
	p, err := Load(strings.NewReader(validWH))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p, s); err != nil {
		t.Fatal(err)
	}
	back, err := Import(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Makespan != s.Makespan || back.BusTime != s.BusTime {
		t.Errorf("imported timing differs: %d/%d vs %d/%d", back.Makespan, back.BusTime, s.Makespan, s.BusTime)
	}
	// The imported schedule passes the independent feasibility audit.
	if err := back.Validate(p.App); err != nil {
		t.Fatalf("imported schedule fails audit: %v", err)
	}
	// χ values survive the trip.
	for _, m := range p.App.Messages() {
		a, _ := s.SlotNTX(m.ID)
		b, _ := back.SlotNTX(m.ID)
		if a != b {
			t.Errorf("message %d χ changed: %d vs %d", m.ID, a, b)
		}
	}
	// Round assignment survives.
	for i := range s.Assign {
		if s.Assign[i] != back.Assign[i] {
			t.Errorf("assignment for message %d changed", i)
		}
	}
}

func TestImportRejectsCorrupt(t *testing.T) {
	p, err := Load(strings.NewReader(validWH))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"bad json":     `{`,
		"bad mode":     `{"mode":"firm","makespanUS":1,"busTimeUS":1,"rounds":[],"tasks":[]}`,
		"unknown task": `{"mode":"soft","makespanUS":1,"busTimeUS":1,"rounds":[],"tasks":[{"name":"ghost","node":"n","startUS":0,"finishUS":1}]}`,
		"missing msgs": `{"mode":"weakly-hard","makespanUS":1,"busTimeUS":1,"rounds":[],"tasks":[]}`,
	}
	for name, doc := range cases {
		if _, err := Import(p, strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestExportNilArgs(t *testing.T) {
	if _, err := Export(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
}
