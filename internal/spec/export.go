package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/lwb"
)

// ScheduleOut is the machine-readable rendering of a NETDAG schedule —
// what a deployment tool would flash onto the LWB host.
type ScheduleOut struct {
	Mode       string `json:"mode"`
	MakespanUS int64  `json:"makespanUS"`
	BusTimeUS  int64  `json:"busTimeUS"`
	// Optimal records whether the search proved makespan optimality;
	// deadline-interrupted solves (core.SolveContext) export their
	// incumbent with Optimal = false.
	Optimal bool `json:"optimal"`
	// Explored and SolverNodes are observability figures: round
	// assignments examined by the outer search and branch-and-bound
	// nodes spent on the winning placement.
	Explored    int        `json:"explored,omitempty"`
	SolverNodes int        `json:"solverNodes,omitempty"`
	Rounds      []RoundOut `json:"rounds"`
	Tasks       []TaskOut  `json:"tasks"`
	Energy      *EnergyOut `json:"energy,omitempty"`
	// EnergyPC is the solver's exact integer charge accounting for this
	// schedule (picocoulombs per execution) — the scalar the energy
	// objective minimizes. The float Energy block remains the reporting
	// surface; this field is the bit-exact value golden tests pin.
	EnergyPC int64 `json:"energyPC,omitempty"`
	// Front carries the energy/latency Pareto front when the problem was
	// solved under the "pareto" objective: one summary entry per
	// non-dominated point, in ascending makespan order. The enclosing
	// schedule is the front's makespan-minimal point.
	Front []FrontPointOut `json:"front,omitempty"`
}

// FrontPointOut is one point of an exported Pareto front. Inside
// ScheduleOut.Front the Schedule field is nil (the summary identifies the
// point; re-solving with objective "energy" and makespanCapUS set to
// MakespanUS reproduces it); ExportFront embeds the full schedules.
type FrontPointOut struct {
	MakespanUS int64 `json:"makespanUS"`
	EnergyPC   int64 `json:"energyPC"`
	// ChargeUC is the float reporting-model charge (lwb.EnergyModel).
	ChargeUC float64 `json:"chargeUC"`
	// GuaranteeSlack is the tightest constraint margin of the point's
	// schedule (see core.GuaranteeSlack); null when no constraint binds.
	GuaranteeSlack *float64     `json:"guaranteeSlack,omitempty"`
	Schedule       *ScheduleOut `json:"schedule,omitempty"`
}

// RoundOut is one communication round.
type RoundOut struct {
	Index      int       `json:"index"`
	StartUS    int64     `json:"startUS"`
	DurationUS int64     `json:"durationUS"`
	BeaconNTX  int       `json:"beaconNTX"`
	Slots      []SlotOut `json:"slots"`
}

// SlotOut is one contention-free slot.
type SlotOut struct {
	Message    int    `json:"message"`
	Source     string `json:"source"`
	NTX        int    `json:"ntx"`
	WidthBytes int    `json:"widthBytes"`
	DurationUS int64  `json:"durationUS"`
}

// TaskOut is one task placement.
type TaskOut struct {
	Name     string `json:"name"`
	Node     string `json:"node"`
	StartUS  int64  `json:"startUS"`
	FinishUS int64  `json:"finishUS"`
}

// EnergyOut summarizes the per-node radio cost.
type EnergyOut struct {
	ChargeUC   float64 `json:"chargeUC"`
	AvgPowerMW float64 `json:"avgPowerMW"`
	DutyCycle  float64 `json:"dutyCycle"`
}

// Export renders a solved schedule for the given problem.
func Export(p *core.Problem, s *core.Schedule) (*ScheduleOut, error) {
	if p == nil || s == nil {
		return nil, errors.New("spec: nil problem or schedule")
	}
	out := &ScheduleOut{
		Mode:        s.Mode.String(),
		MakespanUS:  s.Makespan,
		BusTimeUS:   s.BusTime,
		Optimal:     s.Optimal,
		Explored:    s.Explored,
		SolverNodes: s.SolverNodes,
	}
	for _, r := range s.Rounds {
		ro := RoundOut{
			Index: r.Index, StartUS: r.Start, DurationUS: r.Duration,
			BeaconNTX: r.BeaconNTX,
		}
		for _, sl := range r.Slots {
			m := p.App.Message(sl.Msg)
			ro.Slots = append(ro.Slots, SlotOut{
				Message:    int(sl.Msg),
				Source:     p.App.Task(m.Source).Name,
				NTX:        sl.NTX,
				WidthBytes: sl.Width,
				DurationUS: sl.Duration,
			})
		}
		out.Rounds = append(out.Rounds, ro)
	}
	for _, t := range p.App.Tasks() {
		tt := s.Tasks[t.ID]
		out.Tasks = append(out.Tasks, TaskOut{
			Name: t.Name, Node: t.Node, StartUS: tt.Start, FinishUS: tt.Finish,
		})
	}
	sort.Slice(out.Tasks, func(i, j int) bool { return out.Tasks[i].StartUS < out.Tasks[j].StartUS })
	if rep, err := lwb.DefaultEnergyModel().Evaluate(s, p.Params, p.Diameter); err == nil {
		out.Energy = &EnergyOut{
			ChargeUC:   rep.ChargeUC,
			AvgPowerMW: rep.AvgPowerMW,
			DutyCycle:  rep.RadioDutyCycle,
		}
	}
	out.EnergyPC = s.EnergyPC
	return out, nil
}

// frontPoint renders one Pareto point's summary (no embedded schedule).
func frontPoint(p *core.Problem, pt core.ParetoPoint) FrontPointOut {
	fp := FrontPointOut{MakespanUS: pt.Makespan, EnergyPC: pt.EnergyPC}
	if rep, err := lwb.DefaultEnergyModel().Evaluate(pt.Sched, p.Params, p.Diameter); err == nil {
		fp.ChargeUC = rep.ChargeUC
	}
	if slack, err := core.GuaranteeSlack(p, pt.Sched); err == nil && !math.IsInf(slack, 1) {
		fp.GuaranteeSlack = &slack
	}
	return fp
}

// ExportFront renders a Pareto front as the makespan-minimal point's
// schedule with the front summary attached (ScheduleOut.Front), each
// point additionally carrying its full schedule.
func ExportFront(p *core.Problem, front []core.ParetoPoint) (*ScheduleOut, error) {
	if p == nil || len(front) == 0 {
		return nil, errors.New("spec: nil problem or empty front")
	}
	out, err := Export(p, front[0].Sched)
	if err != nil {
		return nil, err
	}
	for _, pt := range front {
		fp := frontPoint(p, pt)
		sched, err := Export(p, pt.Sched)
		if err != nil {
			return nil, err
		}
		fp.Schedule = sched
		out.Front = append(out.Front, fp)
	}
	return out, nil
}

// WriteFrontJSON exports a Pareto front as indented JSON.
func WriteFrontJSON(w io.Writer, p *core.Problem, front []core.ParetoPoint) error {
	out, err := ExportFront(p, front)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteJSON exports the schedule as indented JSON.
func WriteJSON(w io.Writer, p *core.Problem, s *core.Schedule) error {
	out, err := Export(p, s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Import reconstructs a core.Schedule from its JSON export, resolving
// task and message identities against the problem's application. The
// result passes Schedule.Validate iff the original did, so exported
// schedules can be re-audited, re-simulated and re-validated without
// re-running the solver.
func Import(p *core.Problem, r io.Reader) (*core.Schedule, error) {
	if p == nil {
		return nil, errors.New("spec: nil problem")
	}
	var in ScheduleOut
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, err
	}
	mode := core.Soft
	switch in.Mode {
	case "soft":
	case "weakly-hard":
		mode = core.WeaklyHard
	default:
		return nil, errors.New("spec: unknown mode " + in.Mode)
	}
	s := &core.Schedule{
		Mode:        mode,
		Makespan:    in.MakespanUS,
		BusTime:     in.BusTimeUS,
		Optimal:     in.Optimal,
		Explored:    in.Explored,
		SolverNodes: in.SolverNodes,
		EnergyPC:    in.EnergyPC,
		Tasks:       make(map[dag.TaskID]core.TaskTime, len(in.Tasks)),
		Assign:      make([]int, p.App.NumMessages()),
	}
	for _, to := range in.Tasks {
		task, ok := p.App.TaskByName(to.Name)
		if !ok {
			return nil, errors.New("spec: schedule names unknown task " + to.Name)
		}
		s.Tasks[task.ID] = core.TaskTime{Task: task.ID, Start: to.StartUS, Finish: to.FinishUS}
	}
	seen := make([]bool, p.App.NumMessages())
	for _, ro := range in.Rounds {
		round := core.Round{
			Index:     ro.Index,
			Start:     ro.StartUS,
			Duration:  ro.DurationUS,
			BeaconNTX: ro.BeaconNTX,
		}
		for _, so := range ro.Slots {
			src, ok := p.App.TaskByName(so.Source)
			if !ok {
				return nil, errors.New("spec: slot names unknown task " + so.Source)
			}
			m, ok := p.App.MessageOf(src.ID)
			if !ok {
				return nil, errors.New("spec: slot source emits no message: " + so.Source)
			}
			if int(m.ID) >= len(seen) || seen[m.ID] {
				return nil, errors.New("spec: duplicate or invalid slot for " + so.Source)
			}
			seen[m.ID] = true
			s.Assign[m.ID] = ro.Index
			round.Slots = append(round.Slots, core.Slot{
				Msg: m.ID, NTX: so.NTX, Width: so.WidthBytes, Duration: so.DurationUS,
			})
		}
		s.Rounds = append(s.Rounds, round)
	}
	for mid, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("spec: message %d missing from the schedule", mid)
		}
	}
	return s, nil
}
