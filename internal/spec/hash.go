package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Fingerprint returns a content-addressed identity for a problem spec:
// the hex SHA-256 of a canonical JSON rendering. Two specs that describe
// the same scheduling problem — same tasks, edges, rates, statistics and
// constraints — fingerprint identically regardless of the order their
// tasks and edges are listed in or how their JSON was formatted, so the
// fingerprint is a sound cache key for solved schedules: any solution of
// one spec is a solution of the other (task and message identities are
// resolved by name, not by declaration index).
//
// Canonicalization: tasks are sorted by name, edges by (from, to), and
// maps marshal with sorted keys (encoding/json's guarantee). Defaulted
// knobs are NOT normalized to their effective values — a spec that says
// "maxNTX": 8 explicitly hashes differently from one that omits it —
// because defaults may change between versions and a stale cache must
// never serve a schedule produced under different effective knobs.
//
// The input is not validated; hash a spec that Build accepts if the
// fingerprint is meant to name a solvable problem. (Build's rejection of
// duplicate tasks and edges is what makes the sort canonical: without
// it, the same edge listed twice with different widths would fingerprint
// differently from its silently-merged equivalent.)
func Fingerprint(f *File) (string, error) {
	if f == nil {
		return "", fmt.Errorf("%w: nil spec", ErrSpec)
	}
	c := *f // shallow copy; slices are re-sorted on copies below
	c.Tasks = append([]TaskSpec(nil), f.Tasks...)
	sort.Slice(c.Tasks, func(i, j int) bool { return c.Tasks[i].Name < c.Tasks[j].Name })
	c.Edges = append([]EdgeSpec(nil), f.Edges...)
	sort.Slice(c.Edges, func(i, j int) bool {
		if c.Edges[i].From != c.Edges[j].From {
			return c.Edges[i].From < c.Edges[j].From
		}
		return c.Edges[i].To < c.Edges[j].To
	})
	b, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
