package spec

import (
	"strings"
	"testing"
)

// FuzzLoad ensures the spec loader never panics on arbitrary documents —
// it must either build a problem or return ErrSpec-class errors.
func FuzzLoad(f *testing.F) {
	f.Add(validWH)
	f.Add(validSoft)
	f.Add(`{`)
	f.Add(`{"mode":"soft"}`)
	f.Add(`{"mode":"weakly-hard","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[],"whStatistic":{"type":"synthetic"},"rates":{"a":3}}`)
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		// A successfully loaded problem must carry a validated graph.
		if p.App == nil || p.App.NumTasks() == 0 {
			t.Fatal("loaded problem with empty application")
		}
	})
}
