package spec

import (
	"errors"
	"math/rand"
	"testing"
)

// structBase is a representative weakly-hard multi-rate spec the
// structural-fingerprint properties mutate.
func structBase() *File {
	return &File{
		Mode:     "weakly-hard",
		Diameter: 3,
		MaxNTX:   6,
		Tasks: []TaskSpec{
			{Name: "sense", Node: "n0", WCET: 500},
			{Name: "ctrl", Node: "n1", WCET: 2000},
			{Name: "act", Node: "n2", WCET: 300},
		},
		Edges: []EdgeSpec{
			{From: "sense", To: "ctrl", Width: 8},
			{From: "ctrl", To: "act", Width: 4},
		},
		Rates:         map[string]int{"sense": 2},
		WHStatistic:   &StatSpec{Type: "synthetic"},
		WHConstraints: map[string]WHSpec{"act": {Misses: 4, Window: 40}},
	}
}

func structFP(t *testing.T, f *File) string {
	t.Helper()
	h, err := StructuralFingerprint(f)
	if err != nil {
		t.Fatalf("StructuralFingerprint: %v", err)
	}
	return h
}

// TestStructuralPreservedUnderWeightChanges: every weight mutation —
// WCETs, widths, constraint values, statistic parameters, Glossy
// constants — leaves the structural hash unchanged. Rates are not on
// this list: they change the unrolled graph and are structural.
func TestStructuralPreservedUnderWeightChanges(t *testing.T) {
	base := structFP(t, structBase())
	mutations := map[string]func(*File){
		"wcet": func(f *File) { f.Tasks[1].WCET = 9999 },
		"all wcets": func(f *File) {
			for i := range f.Tasks {
				f.Tasks[i].WCET *= 7
			}
		},
		"edge width": func(f *File) { f.Edges[0].Width = 64 },
		"wh misses":  func(f *File) { f.WHConstraints["act"] = WHSpec{Misses: 1, Window: 40} },
		"wh window":     func(f *File) { f.WHConstraints["act"] = WHSpec{Misses: 4, Window: 100} },
		"glossy params": func(f *File) { f.Params = &ParamsSpec{A: 100, BHW: 4, C: 9, D: 2, BeaconWidth: 4} },
		"task order":    func(f *File) { f.Tasks[0], f.Tasks[2] = f.Tasks[2], f.Tasks[0] },
		"edge order":    func(f *File) { f.Edges[0], f.Edges[1] = f.Edges[1], f.Edges[0] },
	}
	for name, mutate := range mutations {
		f := structBase()
		mutate(f)
		if got := structFP(t, f); got != base {
			t.Errorf("%s: structural fingerprint changed (weights/periods must not matter)", name)
		}
	}

	// Soft mode: statistic parameters and constraint floors are weights.
	soft := func() *File {
		f := structBase()
		f.Mode = "soft"
		f.WHStatistic, f.WHConstraints = nil, nil
		f.SoftStatistic = &StatSpec{Type: "bernoulli", PerTX: 0.9}
		f.SoftConstraints = map[string]float64{"act": 0.99}
		return f
	}
	softBase := structFP(t, soft())
	for name, mutate := range map[string]func(*File){
		"perTX":      func(f *File) { f.SoftStatistic.PerTX = 0.5 },
		"soft floor": func(f *File) { f.SoftConstraints["act"] = 0.5 },
	} {
		f := soft()
		mutate(f)
		if got := structFP(t, f); got != softBase {
			t.Errorf("%s: structural fingerprint changed", name)
		}
	}
}

// TestStructuralBrokenByShapeChanges: topology and constraint-shape
// mutations all produce distinct hashes.
func TestStructuralBrokenByShapeChanges(t *testing.T) {
	base := structFP(t, structBase())
	mutations := map[string]func(*File){
		"task added":   func(f *File) { f.Tasks = append(f.Tasks, TaskSpec{Name: "log", Node: "n3", WCET: 10}) },
		"task removed": func(f *File) { f.Tasks = f.Tasks[:2]; f.Edges = f.Edges[:1]; delete(f.WHConstraints, "act") },
		"task renamed": func(f *File) {
			f.Tasks[2].Name = "actuate"
			f.Edges[1].To = "actuate"
			f.WHConstraints = map[string]WHSpec{"actuate": {Misses: 4, Window: 40}}
		},
		"task moved":         func(f *File) { f.Tasks[2].Node = "n9" },
		"edge added":         func(f *File) { f.Edges = append(f.Edges, EdgeSpec{From: "sense", To: "act", Width: 2}) },
		"edge removed":       func(f *File) { f.Edges = f.Edges[:1] },
		"edge reversed":      func(f *File) { f.Edges[1] = EdgeSpec{From: "act", To: "ctrl", Width: 4} },
		"mode":               func(f *File) { f.Mode = "soft" },
		"diameter":           func(f *File) { f.Diameter = 4 },
		"maxNTX":             func(f *File) { f.MaxNTX = 8 },
		"minNTX":             func(f *File) { f.MinNTX = 2 },
		"maxRounds":          func(f *File) { f.MaxRounds = 7 },
		"rate value":         func(f *File) { f.Rates["sense"] = 5 },
		"rate added":         func(f *File) { f.Rates["ctrl"] = 2 },
		"rates removed":      func(f *File) { f.Rates = nil },
		"statistic type":     func(f *File) { f.WHStatistic.Type = "other" },
		"constrained task":   func(f *File) { f.WHConstraints = map[string]WHSpec{"ctrl": {Misses: 4, Window: 40}} },
		"constraint added":   func(f *File) { f.WHConstraints["ctrl"] = WHSpec{Misses: 2, Window: 10} },
		"constraint dropped": func(f *File) { f.WHConstraints = nil },
		"soft cons appears":  func(f *File) { f.SoftConstraints = map[string]float64{"act": 0.9} },
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutations {
		f := structBase()
		mutate(f)
		got := structFP(t, f)
		if got == base {
			t.Errorf("%s: structural fingerprint unchanged (shape must matter)", name)
			continue
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[got] = name
	}
}

// TestStructuralRandomizedWeights: random weight assignments over a
// fixed shape always hash to one class; the matching check for
// Fingerprint confirms the two hashes separate exactly along the
// weight/shape axis.
func TestStructuralRandomizedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := structFP(t, structBase())
	full := make(map[string]bool)
	for i := 0; i < 50; i++ {
		f := structBase()
		for j := range f.Tasks {
			f.Tasks[j].WCET = 1 + rng.Int63n(10000)
		}
		for j := range f.Edges {
			f.Edges[j].Width = 1 + rng.Intn(64)
		}
		f.WHConstraints["act"] = WHSpec{Misses: 1 + rng.Intn(9), Window: 10 + rng.Intn(90)}
		if got := structFP(t, f); got != base {
			t.Fatalf("iteration %d: random weights changed the structural class", i)
		}
		fp, err := Fingerprint(f)
		if err != nil {
			t.Fatal(err)
		}
		full[fp] = true
	}
	if len(full) < 45 {
		t.Errorf("only %d/50 distinct full fingerprints; weight mutations should separate them", len(full))
	}
}

// TestStructuralRatesAreStructural: every distinct rate vector is its
// own structural class (the unroll produces a different task/edge set
// the solver actually schedules, so a warm hint must not cross rate
// vectors), while weight mutations within one rate vector stay in it.
func TestStructuralRatesAreStructural(t *testing.T) {
	classes := make(map[string]string)
	for _, tc := range []struct {
		name  string
		rates map[string]int
	}{
		{"none", nil},
		{"sense2", map[string]int{"sense": 2}},
		{"sense4", map[string]int{"sense": 4}},
		{"sense2-ctrl2", map[string]int{"sense": 2, "ctrl": 2}},
	} {
		f := structBase()
		f.Rates = tc.rates
		h := structFP(t, f)
		if prev, dup := classes[h]; dup {
			t.Errorf("rate vector %s shares a structural class with %s", tc.name, prev)
		}
		classes[h] = tc.name

		// Weight twin: same rates, different WCETs/widths — same class.
		g := structBase()
		g.Rates = tc.rates
		for i := range g.Tasks {
			g.Tasks[i].WCET = g.Tasks[i].WCET*3 + 17
		}
		g.Edges[0].Width = 63
		if structFP(t, g) != h {
			t.Errorf("rate vector %s: weight mutation left the structural class", tc.name)
		}
	}
}

// TestStructuralErrors mirrors Fingerprint's nil contract and adds the
// duplicate rejections that weight erasure makes necessary.
func TestStructuralErrors(t *testing.T) {
	if _, err := StructuralFingerprint(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("nil spec: err = %v, want ErrSpec", err)
	}
	dupTask := structBase()
	dupTask.Tasks = append(dupTask.Tasks, TaskSpec{Name: "sense", Node: "n7", WCET: 1})
	if _, err := StructuralFingerprint(dupTask); !errors.Is(err, ErrDuplicateTask) || !errors.Is(err, ErrSpec) {
		t.Errorf("duplicate task: err = %v, want ErrDuplicateTask (wrapping ErrSpec)", err)
	}
	dupEdge := structBase()
	dupEdge.Edges = append(dupEdge.Edges, EdgeSpec{From: "sense", To: "ctrl", Width: 1})
	if _, err := StructuralFingerprint(dupEdge); !errors.Is(err, ErrDuplicateEdge) || !errors.Is(err, ErrSpec) {
		t.Errorf("duplicate edge: err = %v, want ErrDuplicateEdge (wrapping ErrSpec)", err)
	}
}

// TestStructuralSeparatorInjection: the canonical form joins names with
// separators; task/node and from/to pairs that concatenate identically
// must still hash differently.
func TestStructuralSeparatorInjection(t *testing.T) {
	a := &File{Mode: "soft", Diameter: 1,
		Tasks:         []TaskSpec{{Name: "ab", Node: "c", WCET: 1}},
		SoftStatistic: &StatSpec{Type: "bernoulli", PerTX: 0.5}}
	b := &File{Mode: "soft", Diameter: 1,
		Tasks:         []TaskSpec{{Name: "a", Node: "bc", WCET: 1}},
		SoftStatistic: &StatSpec{Type: "bernoulli", PerTX: 0.5}}
	if structFP(t, a) == structFP(t, b) {
		t.Error("task name/node concatenation aliases distinct shapes")
	}
}
