package spec

import (
	"errors"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/core"
)

const validWH = `{
  "mode": "weakly-hard",
  "diameter": 3,
  "tasks": [
    {"name": "sense", "node": "n0", "wcet": 500},
    {"name": "ctrl",  "node": "n1", "wcet": 2000},
    {"name": "act",   "node": "n2", "wcet": 300}
  ],
  "edges": [
    {"from": "sense", "to": "ctrl", "width": 8},
    {"from": "ctrl",  "to": "act",  "width": 4}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"act": {"misses": 10, "window": 40}}
}`

func TestLoadValidWeaklyHard(t *testing.T) {
	p, err := Load(strings.NewReader(validWH))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != core.WeaklyHard {
		t.Errorf("mode = %v", p.Mode)
	}
	if p.App.NumTasks() != 3 || p.App.NumMessages() != 2 {
		t.Errorf("graph shape %d/%d", p.App.NumTasks(), p.App.NumMessages())
	}
	// The loaded problem must actually schedule.
	s, err := core.Solve(p)
	if err != nil {
		t.Fatalf("loaded problem unschedulable: %v", err)
	}
	if s.Makespan <= 0 {
		t.Error("degenerate schedule")
	}
}

const validSoft = `{
  "mode": "soft",
  "diameter": 2,
  "maxNTX": 6,
  "tasks": [
    {"name": "a", "node": "n0", "wcet": 100},
    {"name": "b", "node": "n1", "wcet": 100}
  ],
  "edges": [{"from": "a", "to": "b", "width": 4}],
  "softStatistic": {"type": "bernoulli", "perTX": 0.9},
  "softConstraints": {"b": 0.95}
}`

func TestLoadValidSoft(t *testing.T) {
	p, err := Load(strings.NewReader(validSoft))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != core.Soft || p.MaxNTX != 6 {
		t.Errorf("mode/maxNTX = %v/%d", p.Mode, p.MaxNTX)
	}
	if _, err := core.Solve(p); err != nil {
		t.Fatalf("loaded problem unschedulable: %v", err)
	}
}

func TestLoadRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"no tasks":        `{"mode":"soft","diameter":1,"tasks":[],"edges":[]}`,
		"bad mode":        `{"mode":"firm","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[]}`,
		"unknown field":   `{"mode":"soft","diameter":1,"bogus":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[]}`,
		"unknown edge":    `{"mode":"soft","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[{"from":"x","to":"a","width":1}],"softStatistic":{"type":"bernoulli","perTX":0.9}}`,
		"missing stat":    `{"mode":"soft","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[]}`,
		"bad stat type":   `{"mode":"soft","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[],"softStatistic":{"type":"magic"}}`,
		"bad perTX":       `{"mode":"soft","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[],"softStatistic":{"type":"bernoulli","perTX":1.0}}`,
		"bad sigmoid fss": `{"mode":"soft","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[],"softStatistic":{"type":"sigmoid","fss":0}}`,
		"cons on unknown": `{"mode":"soft","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[],"softStatistic":{"type":"bernoulli","perTX":0.9},"softConstraints":{"zzz":0.5}}`,
		"bad wh stat":     `{"mode":"weakly-hard","diameter":1,"tasks":[{"name":"a","node":"n","wcet":1}],"edges":[],"whStatistic":{"type":"nope"}}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); !errors.Is(err, ErrSpec) {
			t.Errorf("%s: error %v, want ErrSpec", name, err)
		}
	}
}

func TestLoadSigmoidStatistic(t *testing.T) {
	doc := strings.Replace(validSoft,
		`"softStatistic": {"type": "bernoulli", "perTX": 0.9}`,
		`"softStatistic": {"type": "sigmoid", "fss": 1.4}`, 1)
	p, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Solve(p); err != nil {
		t.Fatalf("sigmoid spec unschedulable: %v", err)
	}
}

func TestLoadMultirateSpec(t *testing.T) {
	doc := strings.Replace(validWH, `"whStatistic"`,
		`"rates": {"act": 2, "ctrl": 2}, "whStatistic"`, 1)
	p, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// sense + 2×ctrl + 2×act = 5 instances.
	if p.App.NumTasks() != 5 {
		t.Errorf("unrolled tasks = %d, want 5", p.App.NumTasks())
	}
	// The actuator constraint spreads to both instances.
	if len(p.WHCons) != 2 {
		t.Errorf("spread constraints = %d, want 2", len(p.WHCons))
	}
	// The unroll's instance chains reach the solver (symmetry metadata):
	// one chain per base task, in base-ID order, instance counts matching
	// the rates.
	if got := len(p.InstanceChains); got != 3 {
		t.Errorf("instance chains = %d, want 3", got)
	} else if len(p.InstanceChains[0]) != 1 || len(p.InstanceChains[1]) != 2 || len(p.InstanceChains[2]) != 2 {
		t.Errorf("chain lengths = %d/%d/%d, want 1/2/2",
			len(p.InstanceChains[0]), len(p.InstanceChains[1]), len(p.InstanceChains[2]))
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatalf("multirate spec unschedulable: %v", err)
	}
	if err := s.Validate(p.App); err != nil {
		t.Fatalf("multirate schedule audit: %v", err)
	}
	// Bad rates rejected.
	bad := strings.Replace(validWH, `"whStatistic"`,
		`"rates": {"act": 0}, "whStatistic"`, 1)
	if _, err := Load(strings.NewReader(bad)); !errors.Is(err, ErrSpec) {
		t.Errorf("zero rate: %v, want ErrSpec", err)
	}
	unknown := strings.Replace(validWH, `"whStatistic"`,
		`"rates": {"ghost": 2}, "whStatistic"`, 1)
	if _, err := Load(strings.NewReader(unknown)); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown rated task: %v, want ErrSpec", err)
	}
}

func TestLoadCustomGlossyParams(t *testing.T) {
	doc := strings.Replace(validSoft, `"maxNTX": 6,`,
		`"maxNTX": 6, "glossy": {"a": 100, "bhw": 1, "c": 200, "d": 16, "beaconWidth": 8},`, 1)
	p, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Params.C != 200 || p.Params.BeaconWidth != 8 {
		t.Errorf("glossy params not applied: %+v", p.Params)
	}
}
