package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// structuralForm is the canonical rendering StructuralFingerprint
// hashes: the spec with every numeric "weight" stripped and only the
// shape-determining fields kept. Its own JSON tags keep the hash
// independent of File's wire format evolving.
type structuralForm struct {
	Mode      string   `json:"mode"`
	Diameter  int      `json:"diameter"`
	MaxNTX    int      `json:"maxNTX"`
	MinNTX    int      `json:"minNTX"`
	MaxRounds int      `json:"maxRounds"`
	Tasks     []string `json:"tasks"`           // "name@node", sorted
	Edges     []string `json:"edges"`           // "from>to", sorted
	Rates     []string `json:"rates,omitempty"` // "task=rate", sorted; omitempty keeps single-rate hashes stable
	SoftStat  string   `json:"softStat,omitempty"`
	WHStat    string   `json:"whStat,omitempty"`
	SoftCons  []string `json:"softCons,omitempty"` // constrained task names, sorted
	WHCons    []string `json:"whCons,omitempty"`
}

// StructuralFingerprint returns a content-addressed identity for a
// spec's shape: the hex SHA-256 of the problem with all weights and
// periods erased. Two specs fingerprint identically iff they have the
// same tasks on the same nodes, the same dependency edges, the same
// mode and solver-domain knobs (diameter, χ bounds, round budget), the
// same statistic type, the same per-task rates and the same set of
// constrained tasks — while WCETs, edge widths, statistic parameters
// (perTX, fss), constraint values (probability floors, misses/window)
// and Glossy timing constants are free to differ.
//
// Rates are structural, not weights: the multi-rate unroll runs before
// scheduling, so a different rate vector yields a different task and
// edge set in the problem the solver actually sees — a warm hint
// carried across rates would compare makespans of different graphs.
// Rate-free specs render the field away entirely (omitempty), so every
// single-rate fingerprint is unchanged by its introduction.
//
// This is the warm-start index key of the serving tier: on a cache
// miss, a cached schedule for a structurally identical spec bounds the
// new solve (core.Problem.WarmMakespan seeded from its makespan) the
// same way the online session layer reuses the previous schedule
// across weight deltas. It is deliberately NOT a cache key — only
// Fingerprint is sound for serving bodies — because structural twins
// generally have different optima; WarmMakespan tolerates that (the
// solver transparently redoes cold when the hint excludes everything),
// a cache hit would not.
//
// Like Fingerprint, a nil spec returns ErrSpec; unlike Fingerprint,
// duplicate task names and duplicate (from, to) edges are rejected
// here (ErrDuplicateTask, ErrDuplicateEdge) — erasing weights merges
// duplicates that hash differently under Fingerprint, so accepting
// them would alias distinct specs onto one structural class.
func StructuralFingerprint(f *File) (string, error) {
	if f == nil {
		return "", fmt.Errorf("%w: nil spec", ErrSpec)
	}
	sf := structuralForm{
		Mode:      f.Mode,
		Diameter:  f.Diameter,
		MaxNTX:    f.MaxNTX,
		MinNTX:    f.MinNTX,
		MaxRounds: f.MaxRounds,
	}
	seenTask := make(map[string]bool, len(f.Tasks))
	for _, t := range f.Tasks {
		if seenTask[t.Name] {
			return "", fmt.Errorf("%w: %q", ErrDuplicateTask, t.Name)
		}
		seenTask[t.Name] = true
		sf.Tasks = append(sf.Tasks, t.Name+"@"+t.Node)
	}
	sort.Strings(sf.Tasks)
	seenEdge := make(map[[2]string]bool, len(f.Edges))
	for _, e := range f.Edges {
		k := [2]string{e.From, e.To}
		if seenEdge[k] {
			return "", fmt.Errorf("%w: %s -> %s", ErrDuplicateEdge, e.From, e.To)
		}
		seenEdge[k] = true
		sf.Edges = append(sf.Edges, e.From+">"+e.To)
	}
	sort.Strings(sf.Edges)
	// Statistic types are shape (they select the constraint algebra);
	// their parameters are weights.
	if f.SoftStatistic != nil {
		sf.SoftStat = f.SoftStatistic.Type
	}
	if f.WHStatistic != nil {
		sf.WHStat = f.WHStatistic.Type
	}
	for name, r := range f.Rates {
		sf.Rates = append(sf.Rates, fmt.Sprintf("%s=%d", name, r))
	}
	sort.Strings(sf.Rates)
	// Which tasks are constrained is shape; the constraint values
	// (probability floors, misses/window) are weights.
	for name := range f.SoftConstraints {
		sf.SoftCons = append(sf.SoftCons, name)
	}
	sort.Strings(sf.SoftCons)
	for name := range f.WHConstraints {
		sf.WHCons = append(sf.WHCons, name)
	}
	sort.Strings(sf.WHCons)

	b, err := json.Marshal(&sf)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
