package apps

import (
	"testing"

	"github.com/netdag/netdag/internal/dag"
)

func TestMIMOShape(t *testing.T) {
	g, err := MIMO(DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 13 {
		t.Errorf("A_MIMO tasks = %d, want 13 (6+3+4)", g.NumTasks())
	}
	if len(Actuators(g)) != 4 || len(Controllers(g)) != 3 {
		t.Errorf("actuators/controllers = %d/%d", len(Actuators(g)), len(Controllers(g)))
	}
	// Every sensor emits a message; every controller emits a message.
	msgs := g.NumMessages()
	if msgs != 9 {
		t.Errorf("A_MIMO messages = %d, want 9 (6 sensors + 3 controllers)", msgs)
	}
	// Every actuator has at least one controller ancestor.
	for _, a := range Actuators(g) {
		if len(g.MsgAncestors(a)) == 0 {
			t.Errorf("actuator %d is not driven", a)
		}
	}
	// Structure: sources are sensors, sinks are actuators.
	if len(g.Sources()) != 6 {
		t.Errorf("sources = %d, want 6", len(g.Sources()))
	}
	if len(g.Sinks()) != 4 {
		t.Errorf("sinks = %d, want 4", len(g.Sinks()))
	}
}

func TestMIMODeterministicUnderSeed(t *testing.T) {
	a, err := MIMO(DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MIMO(DefaultMIMO())
	if a.NumMessages() != b.NumMessages() {
		t.Fatal("MIMO not deterministic")
	}
	for _, m := range a.Messages() {
		bm := b.Message(m.ID)
		if bm.Source != m.Source || len(bm.Dests) != len(m.Dests) {
			t.Fatalf("message %d differs between identical seeds", m.ID)
		}
	}
	cfg := DefaultMIMO()
	cfg.Seed = 999
	c, err := MIMO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed must still validate
}

func TestMIMOValidation(t *testing.T) {
	cfg := DefaultMIMO()
	cfg.Sensors = 0
	if _, err := MIMO(cfg); err == nil {
		t.Error("zero sensors accepted")
	}
}

func TestSwitchedShape(t *testing.T) {
	g, err := Switched(DefaultSwitched())
	if err != nil {
		t.Fatal(err)
	}
	// 2 sensors + 3 controllers + 1 actuator.
	if g.NumTasks() != 6 {
		t.Errorf("switched tasks = %d, want 6", g.NumTasks())
	}
	act, ok := g.TaskByName("act0")
	if !ok {
		t.Fatal("actuator missing")
	}
	// All controllers message the same actuator.
	if got := len(g.Preds(act.ID)); got != 3 {
		t.Errorf("actuator fan-in = %d, want 3", got)
	}
	if _, err := Switched(SwitchedConfig{}); err == nil {
		t.Error("empty switched config accepted")
	}
}

func TestPipeline(t *testing.T) {
	g, err := Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 4 || g.NumMessages() != 3 {
		t.Errorf("pipeline shape %d/%d, want 4/3", g.NumTasks(), g.NumMessages())
	}
	if _, err := Pipeline(1, 500, 8); err == nil {
		t.Error("1-stage pipeline accepted")
	}
}

func TestRandomLayeredValidates(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := RandomLayered(3, 3, 2, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.NumTasks() != 9 {
			t.Errorf("seed %d: tasks = %d", seed, g.NumTasks())
		}
		if _, err := g.TopoOrder(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
	if _, err := RandomLayered(0, 3, 2, 1); err == nil {
		t.Error("zero layers accepted")
	}
}

func TestActuatorsOnNonMIMOGraph(t *testing.T) {
	g := dag.New()
	g.MustAddTask("foo", "n0", 10)
	if got := Actuators(g); len(got) != 0 {
		t.Errorf("Actuators on plain graph = %v", got)
	}
}
