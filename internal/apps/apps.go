// Package apps builds the networked applications used across the NETDAG
// experiments, examples and benchmarks: the paper's A_MIMO instance
// (§IV-B: six sensing tasks, three control tasks, four actuation tasks,
// randomly selected links), switched-controller applications, simple
// sense-compute-actuate pipelines, and random layered DAGs for stress
// tests. All generators are deterministic under a caller-provided seed;
// DESIGN.md records the seeds used for the published-figure
// reproductions.
package apps

import (
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/dag"
)

// MIMOConfig parameterizes the MIMO generator. The zero value is not
// valid; use DefaultMIMO for the paper's instance shape.
type MIMOConfig struct {
	Sensors     int
	Controllers int
	Actuators   int
	SensorWCET  int64
	CtrlWCET    int64
	ActWCET     int64
	SensorWidth int // bytes per sensor message
	CtrlWidth   int // bytes per control message
	Seed        int64
}

// DefaultMIMO is the paper's A_MIMO shape: 6 sensing, 3 control, 4
// actuation tasks with randomly selected links (seed fixed for
// reproducibility; the paper does not publish its instance).
func DefaultMIMO() MIMOConfig {
	return MIMOConfig{
		Sensors:     6,
		Controllers: 3,
		Actuators:   4,
		SensorWCET:  500,
		CtrlWCET:    2000,
		ActWCET:     300,
		SensorWidth: 8,
		CtrlWidth:   4,
		Seed:        2020,
	}
}

// MIMO builds a MIMO application: each controller reads a random
// non-empty subset of sensors and drives a random non-empty subset of
// actuators; every sensor feeds at least one controller and every
// actuator is driven by at least one controller. Each task runs on its
// own node (sensing and actuation are physically bound, §II-B).
func MIMO(cfg MIMOConfig) (*dag.Graph, error) {
	if cfg.Sensors < 1 || cfg.Controllers < 1 || cfg.Actuators < 1 {
		return nil, fmt.Errorf("apps: MIMO needs at least one of each task kind, got %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := dag.New()
	sensors := make([]dag.TaskID, cfg.Sensors)
	for i := range sensors {
		sensors[i] = g.MustAddTask(fmt.Sprintf("sense%d", i), fmt.Sprintf("ns%d", i), cfg.SensorWCET)
	}
	ctrls := make([]dag.TaskID, cfg.Controllers)
	for i := range ctrls {
		ctrls[i] = g.MustAddTask(fmt.Sprintf("ctrl%d", i), fmt.Sprintf("nc%d", i), cfg.CtrlWCET)
	}
	acts := make([]dag.TaskID, cfg.Actuators)
	for i := range acts {
		acts[i] = g.MustAddTask(fmt.Sprintf("act%d", i), fmt.Sprintf("na%d", i), cfg.ActWCET)
	}
	// Random sensor -> controller links; then patch uncovered sensors.
	for _, c := range ctrls {
		picked := false
		for _, s := range sensors {
			if rng.Float64() < 0.5 {
				g.MustConnect(s, c, cfg.SensorWidth)
				picked = true
			}
		}
		if !picked {
			g.MustConnect(sensors[rng.Intn(len(sensors))], c, cfg.SensorWidth)
		}
	}
	for _, s := range sensors {
		if _, ok := g.MessageOf(s); !ok {
			g.MustConnect(s, ctrls[rng.Intn(len(ctrls))], cfg.SensorWidth)
		}
	}
	// Random controller -> actuator links; every actuator driven.
	covered := make(map[dag.TaskID]bool)
	for _, c := range ctrls {
		picked := false
		for _, a := range acts {
			if rng.Float64() < 0.5 {
				g.MustConnect(c, a, cfg.CtrlWidth)
				covered[a] = true
				picked = true
			}
		}
		if !picked {
			a := acts[rng.Intn(len(acts))]
			g.MustConnect(c, a, cfg.CtrlWidth)
			covered[a] = true
		}
	}
	for _, a := range acts {
		if !covered[a] {
			g.MustConnect(ctrls[rng.Intn(len(ctrls))], a, cfg.CtrlWidth)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Actuators returns the actuator task IDs of a MIMO/switched application
// built by this package (tasks named act0, act1, ...).
func Actuators(g *dag.Graph) []dag.TaskID {
	var out []dag.TaskID
	for i := 0; ; i++ {
		t, ok := g.TaskByName(fmt.Sprintf("act%d", i))
		if !ok {
			return out
		}
		out = append(out, t.ID)
	}
}

// Controllers returns the controller task IDs (tasks named ctrl0, ...).
func Controllers(g *dag.Graph) []dag.TaskID {
	var out []dag.TaskID
	for i := 0; ; i++ {
		t, ok := g.TaskByName(fmt.Sprintf("ctrl%d", i))
		if !ok {
			return out
		}
		out = append(out, t.ID)
	}
}

// SwitchedConfig parameterizes the switched-control generator of §IV-B:
// several controllers of different quality (and WCET) all drive the same
// actuator.
type SwitchedConfig struct {
	Sensors   int
	CtrlWCETs []int64 // one controller per entry; larger = higher quality
	ActWCET   int64
	Width     int
}

// DefaultSwitched gives two sensors and three controllers of increasing
// cost driving one actuator.
func DefaultSwitched() SwitchedConfig {
	return SwitchedConfig{
		Sensors:   2,
		CtrlWCETs: []int64{800, 2000, 5000},
		ActWCET:   300,
		Width:     8,
	}
}

// Switched builds a switched-control application: every controller reads
// every sensor and messages the single actuator task.
func Switched(cfg SwitchedConfig) (*dag.Graph, error) {
	if cfg.Sensors < 1 || len(cfg.CtrlWCETs) < 1 {
		return nil, fmt.Errorf("apps: switched app needs sensors and controllers, got %+v", cfg)
	}
	g := dag.New()
	sensors := make([]dag.TaskID, cfg.Sensors)
	for i := range sensors {
		sensors[i] = g.MustAddTask(fmt.Sprintf("sense%d", i), fmt.Sprintf("ns%d", i), 500)
	}
	act := g.MustAddTask("act0", "na0", cfg.ActWCET)
	for i, wcet := range cfg.CtrlWCETs {
		c := g.MustAddTask(fmt.Sprintf("ctrl%d", i), fmt.Sprintf("nc%d", i), wcet)
		for _, s := range sensors {
			g.MustConnect(s, c, cfg.Width)
		}
		g.MustConnect(c, act, 4)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Pipeline builds a linear sense -> stage1 -> ... -> act chain across
// distinct nodes — the quickstart application.
func Pipeline(stages int, wcet int64, width int) (*dag.Graph, error) {
	if stages < 2 {
		return nil, fmt.Errorf("apps: pipeline needs at least 2 stages, got %d", stages)
	}
	g := dag.New()
	prev := g.MustAddTask("stage0", "n0", wcet)
	for i := 1; i < stages; i++ {
		cur := g.MustAddTask(fmt.Sprintf("stage%d", i), fmt.Sprintf("n%d", i), wcet)
		g.MustConnect(prev, cur, width)
		prev = cur
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// RandomLayered builds a random layered DAG: `layers` layers of `width`
// tasks each, every task on its own node, each task reading 1..fanin
// random tasks of the previous layer. Deterministic under seed.
func RandomLayered(layers, width, fanin int, seed int64) (*dag.Graph, error) {
	if layers < 1 || width < 1 || fanin < 1 {
		return nil, fmt.Errorf("apps: bad layered config %d/%d/%d", layers, width, fanin)
	}
	rng := rand.New(rand.NewSource(seed))
	g := dag.New()
	prev := make([]dag.TaskID, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]dag.TaskID, 0, width)
		for w := 0; w < width; w++ {
			id := g.MustAddTask(fmt.Sprintf("t%d_%d", l, w), fmt.Sprintf("n%d_%d", l, w), int64(200+rng.Intn(800)))
			cur = append(cur, id)
			if l > 0 {
				k := 1 + rng.Intn(fanin)
				for j := 0; j < k; j++ {
					g.MustConnect(prev[rng.Intn(len(prev))], id, 4+rng.Intn(12))
				}
			}
		}
		prev = cur
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
