package core_test

import (
	"fmt"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// Solve schedules a sense→control→actuate pipeline under a weakly-hard
// actuation constraint.
func ExampleSolve() {
	app := dag.New()
	sense := app.MustAddTask("sense", "n0", 500)
	ctrl := app.MustAddTask("ctrl", "n1", 2000)
	act := app.MustAddTask("act", "n2", 300)
	app.MustConnect(sense, ctrl, 8)
	app.MustConnect(ctrl, act, 4)
	if err := app.Validate(); err != nil {
		panic(err)
	}
	p := &core.Problem{
		App:      app,
		Params:   glossy.DefaultParams(),
		Diameter: 3,
		Mode:     core.WeaklyHard,
		WHStat:   glossy.SyntheticWH{},
		WHCons:   map[dag.TaskID]wh.MissConstraint{act: {Misses: 10, Window: 40}},
	}
	s, err := core.Solve(p)
	if err != nil {
		panic(err)
	}
	guar, _, err := core.SatisfiedWH(p, s, act)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(s.Rounds), "rounds; guarantee", guar)
	// Output: 2 rounds; guarantee (10,60)~
}
