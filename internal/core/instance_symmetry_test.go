package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/multirate"
	"github.com/netdag/netdag/internal/wh"
)

// avMultiRateProblem builds the multi-rate AV-style fixture of the
// instance-symmetry tests: three identical cameras at rate 2 (an
// interchange class of three two-phase chains) plus a lidar, a rate-2
// fusion stage, a planner and a rate-2 controller under weakly-hard
// constraints, unrolled over the hyperperiod with the instance metadata
// plumbed into InstanceChains.
func avMultiRateProblem(t testing.TB) *Problem {
	t.Helper()
	g := dag.New()
	cams := make([]dag.TaskID, 3)
	for i := range cams {
		cams[i] = g.MustAddTask(fmt.Sprintf("cam%d", i), fmt.Sprintf("ncam%d", i), 400)
	}
	lidar := g.MustAddTask("lidar", "nlidar", 600)
	fuse := g.MustAddTask("fuse", "nfuse", 900)
	plan := g.MustAddTask("plan", "nplan", 1200)
	ctrl := g.MustAddTask("ctrl", "nctrl", 200)
	for _, c := range cams {
		g.MustConnect(c, fuse, 8)
	}
	g.MustConnect(lidar, fuse, 12)
	g.MustConnect(fuse, plan, 8)
	g.MustConnect(plan, ctrl, 4)
	res, err := multirate.Unroll(multirate.Spec{App: g, Rates: map[dag.TaskID]int{
		cams[0]: 2, cams[1]: 2, cams[2]: 2, fuse: 2, ctrl: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	cons := multirate.SpreadConstraints(res, map[dag.TaskID]wh.MissConstraint{
		ctrl: {Misses: 24, Window: 40},
	})
	return &Problem{
		App:            res.Graph,
		Params:         glossy.DefaultParams(),
		Diameter:       3,
		Mode:           WeaklyHard,
		WHStat:         glossy.SyntheticWH{},
		WHCons:         cons,
		InstanceChains: res.Chains(),
	}
}

// TestInstanceChainClasses pins the chain-tuple detection: the three
// camera chains form one interchange class of three two-phase tuples;
// the fusion/planner/controller chains (message predecessors, or
// single-member signatures) form none.
func TestInstanceChainClasses(t *testing.T) {
	p := avMultiRateProblem(t)
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(p.iclasses) != 1 {
		t.Fatalf("iclasses = %v, want exactly the camera-chain class", p.iclasses)
	}
	cls := p.iclasses[0]
	if len(cls) != 3 {
		t.Fatalf("camera class has %d members, want 3", len(cls))
	}
	for i, tup := range cls {
		if len(tup) != 2 {
			t.Fatalf("member %d = %v, want a two-phase tuple", i, tup)
		}
		for _, m := range tup {
			src := p.App.Task(p.App.Message(m).Source)
			if src.WCET != 400 {
				t.Errorf("member %d message %d sourced by %q, want a camera instance", i, m, src.Name)
			}
		}
	}

	// Descending member vectors with per-phase chi equality: dominated.
	assign := make([]int, p.App.NumMessages())
	chi := make([]int, p.App.NumMessages()+3)
	for i := range chi {
		chi[i] = 2
	}
	assign[cls[0][0]], assign[cls[1][0]] = 1, 0
	if !p.dominatedAssignment(assign, chi) {
		t.Error("descending chain vectors with symmetric chi not flagged as dominated")
	}
	// Asymmetric chi on a later phase disables the skip.
	chi[cls[1][1]] = 3
	if p.dominatedAssignment(assign, chi) {
		t.Error("per-phase chi asymmetry must disable the symmetry skip")
	}
	// Ascending vectors are the representatives.
	assign[cls[0][0]], assign[cls[1][0]], assign[cls[2][0]] = 0, 1, 2
	chi[cls[1][1]] = 2
	if p.dominatedAssignment(assign, chi) {
		t.Error("ascending chain vectors flagged as dominated")
	}

	// NoSymmetry drops the classes entirely.
	q := avMultiRateProblem(t)
	q.NoSymmetry = true
	if err := q.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(q.iclasses) != 0 {
		t.Errorf("NoSymmetry left iclasses = %v", q.iclasses)
	}

	// Metadata is advisory: garbage chains must be ignored, not trusted.
	r := avMultiRateProblem(t)
	r.InstanceChains = append(r.InstanceChains, []dag.TaskID{999, 1000}, nil, []dag.TaskID{0, 0})
	if err := r.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(r.iclasses) != 1 {
		t.Errorf("garbage chain metadata changed the classes: %v", r.iclasses)
	}
}

// TestInstanceSymmetryEquivalence is the makespan-preservation
// differential: with the symmetry skip and the chi-floor bound enabled
// (default) and disabled (the ablation knobs), the solved schedules are
// bit-identical — across worker counts and with and without the
// portfolio. Only SolverNodes, the work accounting, is documented as
// outside the schedule identity.
func TestInstanceSymmetryEquivalence(t *testing.T) {
	var ref *Schedule
	for _, workers := range []int{1, 4} {
		for _, usePortfolio := range []bool{false, true} {
			for _, disabled := range []bool{false, true} {
				p := avMultiRateProblem(t)
				p.Workers = workers
				p.Portfolio = usePortfolio
				p.NoSymmetry = disabled
				p.NoChiFloors = disabled
				s, err := Solve(p)
				if err != nil {
					t.Fatalf("workers=%d portfolio=%v disabled=%v: %v", workers, usePortfolio, disabled, err)
				}
				if !s.Optimal {
					t.Fatalf("workers=%d portfolio=%v disabled=%v: not optimal", workers, usePortfolio, disabled)
				}
				norm := *s
				norm.SolverNodes = 0
				if ref == nil {
					r := norm
					ref = &r
					if err := s.Validate(p.App); err != nil {
						t.Fatalf("reference schedule invalid: %v", err)
					}
					for id, c := range p.WHCons {
						guar, ok, err := SatisfiedWH(p, s, id)
						if err != nil || !ok {
							t.Fatalf("audit of task %d: ok=%v err=%v", id, ok, err)
						}
						if !wh.SufficientlyImpliesMiss(guar, c) {
							t.Errorf("task %d guarantee %v misses requirement %v", id, guar, c)
						}
					}
					continue
				}
				if !reflect.DeepEqual(&norm, ref) {
					t.Errorf("workers=%d portfolio=%v disabled=%v: schedule differs from reference\ngot:  %+v\nwant: %+v",
						workers, usePortfolio, disabled, norm, *ref)
				}
			}
		}
	}
}

// TestChiFloorDPMatchesLegacy cross-checks the reverse-topological
// chi-floor DP in newSearch against the definition it replaced: for the
// AV fixture and the golden MIMO shape, chiFloor[m] must equal the
// maximum window floor over constrained tasks m reaches via data edges.
func TestChiFloorDPMatchesLegacy(t *testing.T) {
	check := func(name string, p *Problem) {
		t.Helper()
		if err := p.normalize(); err != nil {
			t.Fatal(err)
		}
		lg, err := dag.NewLineGraph(p.App)
		if err != nil {
			t.Fatal(err)
		}
		s := newSearch(nil, p, lg, lg.MinRounds())
		want := make([]int, p.App.NumMessages())
		for m := range want {
			want[m] = p.MinNTX
		}
		for _, task := range p.App.Tasks() {
			target, has := p.WHCons[task.ID]
			if !has || target.Trivial() {
				continue
			}
			minN, ok := p.minNTXForWindow(target.Window)
			if !ok {
				minN = p.MaxNTX
			}
			for _, m := range p.App.MsgAncestors(task.ID) {
				if minN > want[m] {
					want[m] = minN
				}
			}
		}
		for m := range want {
			if s.chiFloor[m] != want[m] {
				t.Errorf("%s: chiFloor[%d] = %d, want %d", name, m, s.chiFloor[m], want[m])
			}
		}
	}
	check("av", avMultiRateProblem(t))

	p := avMultiRateProblem(t)
	p.NoChiFloors = true
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	lg, err := dag.NewLineGraph(p.App)
	if err != nil {
		t.Fatal(err)
	}
	s := newSearch(nil, p, lg, lg.MinRounds())
	for m, f := range s.chiFloor {
		if f != p.MinNTX {
			t.Errorf("NoChiFloors: chiFloor[%d] = %d, want the MinNTX floor %d", m, f, p.MinNTX)
		}
	}
}
