package core

import (
	"testing"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// paretoBenchProblem scales paretoProblem's staggered-release shape to a
// benchmark-sized instance: four independent sense→ctrl→act chains with
// progressively later sensor releases. The round structure is the only
// real energy/latency lever under global blackouts (DESIGN.md §15), so
// staggered releases make the front genuinely multi-point — merging a
// late producer's message into an earlier round saves a beacon but
// stalls the early chains, splitting pipelines them at a beacon's
// charge. Eight messages over up to four rounds gives the outer search a
// real assignment space for the energy lower bound to prune.
func paretoBenchProblem(tb testing.TB, noBound bool) *Problem {
	tb.Helper()
	g := dag.New()
	cons := make(map[dag.TaskID]wh.MissConstraint)
	releases := make(map[dag.TaskID]int64)
	actWCET := []int64{14000, 9000, 4000, 300}
	for i := 0; i < 4; i++ {
		d := rune('0' + i)
		sense := g.MustAddTask("sense"+string(d), "ns"+string(d), 400)
		ctrl := g.MustAddTask("ctrl"+string(d), "nc"+string(d), 700)
		act := g.MustAddTask("act"+string(d), "na"+string(d), actWCET[i])
		g.MustConnect(sense, ctrl, 8)
		g.MustConnect(ctrl, act, 4)
		cons[act] = wh.MissConstraint{Misses: 26, Window: 40}
		if i > 0 {
			releases[sense] = int64(i) * 9000
		}
	}
	if err := g.Validate(); err != nil {
		tb.Fatal(err)
	}
	return &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{},
		WHCons:        cons,
		ReleaseTimes:  releases,
		MaxRounds:     4,
		Objective:     ObjectivePareto,
		NoEnergyBound: noBound,
	}
}

// BenchmarkParetoEnergyBound measures the energy-aware pruning: the
// ε-constraint Pareto sweep with the admissible energy lower bound and
// the derived per-placement makespan cap active ("bound") against the
// NoEnergyBound ablation ("nobound", incumbent-derived pruning off).
// Both configurations must produce the identical front — the bound is
// admissible, so it only skips work — making the ns/node ratio a pure
// wall-time speedup. Node counts are the ablated sweep's total
// branch-and-bound nodes across all front points.
func BenchmarkParetoEnergyBound(b *testing.B) {
	canon, err := ParetoFront(paretoBenchProblem(b, true))
	if err != nil {
		b.Fatal(err)
	}
	if len(canon) < 2 {
		b.Fatalf("reference front has %d points; the benchmark needs a real tradeoff", len(canon))
	}
	canonNodes := 0
	for _, pt := range canon {
		canonNodes += pt.Sched.SolverNodes
	}
	for _, cfg := range []struct {
		name    string
		noBound bool
	}{
		{"bound", false},
		{"nobound", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var front []ParetoPoint
			for i := 0; i < b.N; i++ {
				front, err = ParetoFront(paretoBenchProblem(b, cfg.noBound))
				if err != nil {
					b.Fatal(err)
				}
				if len(front) != len(canon) {
					b.Fatalf("front has %d points, want %d (ablated reference)", len(front), len(canon))
				}
				for j := range front {
					if front[j].Makespan != canon[j].Makespan || front[j].EnergyPC != canon[j].EnergyPC {
						b.Fatalf("point %d = (%d, %d), want (%d, %d): configurations disagree",
							j, front[j].Makespan, front[j].EnergyPC, canon[j].Makespan, canon[j].EnergyPC)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(canonNodes), "ns/node")
			b.ReportMetric(float64(len(front)), "points")
		})
	}
}
