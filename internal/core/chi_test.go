package core

import (
	"errors"
	"math/rand"
	"testing"
)

// mkChi builds a chiInstance with linear costs and geometric deficits.
func mkChi(n, upper int, budgetPerTask float64, tasks [][]int) *chiInstance {
	ci := &chiInstance{n: n, upper: upper, lower: make([]int, n)}
	for f := 0; f < n; f++ {
		ci.lower[f] = 1
		def := make([]float64, upper)
		cost := make([]int64, upper)
		d := 8.0
		for i := 0; i < upper; i++ {
			def[i] = d
			d /= 2
			cost[i] = int64(100 * (i + 1))
		}
		ci.def = append(ci.def, def)
		ci.cost = append(ci.cost, cost)
	}
	for i, floods := range tasks {
		ci.cons = append(ci.cons, chiConstraint{
			task:   string(rune('A' + i)),
			floods: floods,
			budget: budgetPerTask,
		})
	}
	return ci
}

func TestChiExactFindsMinimum(t *testing.T) {
	// Two floods, one constraint with budget 6: deficits per level are
	// 8,4,2,1. Options: (2,2): 4+4=8 > 6; (3,2): 2+4=6 OK cost 300+200;
	// (2,3): same by symmetry. Exact must find cost 500.
	ci := mkChi(2, 4, 6, [][]int{{0, 1}})
	chi, err := ci.solveExact()
	if err != nil {
		t.Fatal(err)
	}
	if got := ci.totalCost(chi); got != 500 {
		t.Errorf("exact cost = %d (chi=%v), want 500", got, chi)
	}
	if ci.violated(chi) >= 0 {
		t.Errorf("exact solution violates a constraint: %v", chi)
	}
}

func TestChiGreedyFeasible(t *testing.T) {
	ci := mkChi(4, 6, 5, [][]int{{0, 1}, {1, 2, 3}})
	chi, err := ci.solveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if ci.violated(chi) >= 0 {
		t.Errorf("greedy solution violates a constraint: %v", chi)
	}
}

func TestChiExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		var tasks [][]int
		for k := 0; k < 1+rng.Intn(3); k++ {
			var fl []int
			for f := 0; f < n; f++ {
				if rng.Float64() < 0.6 {
					fl = append(fl, f)
				}
			}
			if len(fl) == 0 {
				fl = []int{rng.Intn(n)}
			}
			tasks = append(tasks, fl)
		}
		ci := mkChi(n, 5, 4+rng.Float64()*8, tasks)
		exact, errE := ci.solveExact()
		greedy, errG := ci.solveGreedy()
		if errE != nil {
			if errG == nil {
				t.Fatalf("trial %d: exact unsat, greedy found %v", trial, greedy)
			}
			continue
		}
		if errG != nil {
			t.Fatalf("trial %d: greedy failed on feasible instance: %v", trial, errG)
		}
		if ci.totalCost(exact) > ci.totalCost(greedy) {
			t.Fatalf("trial %d: exact %d worse than greedy %d", trial,
				ci.totalCost(exact), ci.totalCost(greedy))
		}
	}
}

func TestChiInfeasibleDetected(t *testing.T) {
	// Budget below the deficit floor at max level (deficit 1 per flood).
	ci := mkChi(3, 4, 0.5, [][]int{{0, 1, 2}})
	if _, err := ci.solve(false); !errors.Is(err, ErrUnsat) {
		t.Errorf("infeasible instance: %v, want ErrUnsat", err)
	}
}

func TestChiRespectsLowerBounds(t *testing.T) {
	ci := mkChi(2, 4, 100, nil) // no constraints: lower bounds dominate
	ci.lower[1] = 3
	chi, err := ci.solve(false)
	if err != nil {
		t.Fatal(err)
	}
	if chi[0] != 1 || chi[1] != 3 {
		t.Errorf("chi = %v, want [1 3]", chi)
	}
}

func TestChiLowerBoundAboveUpperIsUnsat(t *testing.T) {
	ci := mkChi(1, 3, 100, nil)
	ci.lower[0] = 4
	if _, err := ci.solve(false); !errors.Is(err, ErrUnsat) {
		t.Errorf("lower > upper: %v, want ErrUnsat", err)
	}
}

func TestChiSharedFloodSavesCost(t *testing.T) {
	// Two tasks share flood 1; raising the shared flood should satisfy
	// both more cheaply than raising the private floods. Exact search
	// must exploit this.
	ci := mkChi(3, 6, 9, [][]int{{0, 1}, {1, 2}})
	chi, err := ci.solveExact()
	if err != nil {
		t.Fatal(err)
	}
	if !(chi[1] >= chi[0] && chi[1] >= chi[2]) {
		t.Errorf("expected the shared flood to carry the investment: %v", chi)
	}
}
