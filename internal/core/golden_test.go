package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// Golden regression values. The incremental STN engine maintains the same
// unique least solution the seed's batch Bellman-Ford computed, so solver
// results — and everything downstream in core — must stay bit-identical
// across engine changes. These pins were captured from the seed
// implementation; a drift in any of them means the engine no longer
// computes the least solution (or search order leaked into results).
func TestGoldenSolutionsStable(t *testing.T) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
	}

	check := func(name string, s *Schedule, makespan, bustime int64, optimal bool, rounds int) {
		t.Helper()
		if s.Makespan != makespan || s.BusTime != bustime || s.Optimal != optimal || len(s.Rounds) != rounds {
			t.Errorf("%s: makespan=%d bustime=%d optimal=%v rounds=%d, want %d/%d/%v/%d",
				name, s.Makespan, s.BusTime, s.Optimal, len(s.Rounds),
				makespan, bustime, optimal, rounds)
		}
	}

	s, err := Solve(&Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("MIMO exact-chi", s, 100760, 97956, true, 2)

	g2, err := apps.Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	sink := g2.Sinks()[0]
	s2, err := Solve(&Problem{
		App: g2, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{sink: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	check("Soft pipeline", s2, 36734, 34728, true, 3)

	s3, err := Solve(&Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
		GreedyChi: true, GreedyPlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("MIMO greedy", s3, 101624, 98820, false, 2)
}

// TestWarmStartEquivalence pins the session re-solve contract: a solve
// warm-started with a previous schedule's makespan (Problem.WarmMakespan)
// must return a schedule bit-identical to a cold solve of the same
// delta'd problem — whether the warm bound still holds (the delta kept or
// improved the optimum), is exactly tight, or is beaten (the optimum
// regressed past it and SolveContext's cold redo kicks in). Only
// SolverNodes — work accounting, documented as outside the schedule
// identity — may differ.
func TestWarmStartEquivalence(t *testing.T) {
	g, err := apps.Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	sink := g.Sinks()[0]
	base := func() *Problem {
		return &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 3,
			Mode:     Soft,
			SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
			SoftCons: map[dag.TaskID]float64{sink: 0.9},
		}
	}
	prev, err := Solve(base())
	if err != nil {
		t.Fatal(err)
	}

	warmEq := func(name string, mutate func(*Problem), workers int) {
		t.Helper()
		cold := base()
		mutate(cold)
		cold.Workers = workers
		warm := base()
		mutate(warm)
		warm.Workers = workers
		warm.WarmMakespan = prev.Makespan
		cs, cerr := Solve(cold)
		ws, werr := Solve(warm)
		if (cerr == nil) != (werr == nil) {
			t.Fatalf("%s: cold err = %v, warm err = %v", name, cerr, werr)
		}
		if cerr != nil {
			if cerr.Error() != werr.Error() {
				t.Errorf("%s: cold err %q != warm err %q", name, cerr, werr)
			}
			return
		}
		nc, nw := *cs, *ws
		nc.SolverNodes, nw.SolverNodes = 0, 0
		if !reflect.DeepEqual(&nc, &nw) {
			t.Errorf("%s: warm-started schedule differs from cold solve\ncold: %+v\nwarm: %+v", name, nc, nw)
		}
	}

	warmEq("unchanged", func(p *Problem) {}, 1)
	warmEq("unchanged parallel", func(p *Problem) {}, 4)
	warmEq("diameter shrink", func(p *Problem) { p.Diameter = 2 }, 1)
	warmEq("diameter shrink parallel", func(p *Problem) { p.Diameter = 2 }, 4)
	warmEq("diameter grow: bound beaten, cold redo", func(p *Problem) { p.Diameter = 5 }, 1)
	warmEq("diameter grow parallel", func(p *Problem) { p.Diameter = 5 }, 4)
	warmEq("link floor raised", func(p *Problem) { p.MinNTX = 3 }, 1)
	warmEq("link floor raised parallel", func(p *Problem) { p.MinNTX = 3 }, 4)
	warmEq("tighter constraint", func(p *Problem) { p.SoftCons[sink] = 0.95 }, 1)
}

// TestMinNTXFloor pins the χ-domain floor semantics: every flood —
// message slots and round beacons alike — respects MinNTX, the makespan
// can only grow under a raised floor, and an empty domain
// (MinNTX > MaxNTX) reports ErrUnsat so the session layer treats it as a
// failed re-solve, not a configuration bug.
func TestMinNTXFloor(t *testing.T) {
	g, err := apps.Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	sink := g.Sinks()[0]
	mk := func(minNTX int) *Problem {
		return &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 3,
			Mode:     Soft,
			SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
			SoftCons: map[dag.TaskID]float64{sink: 0.9},
			MinNTX:   minNTX,
		}
	}
	loose, err := Solve(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Solve(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tight.Rounds {
		if r.BeaconNTX < 4 {
			t.Errorf("round %d beacon NTX = %d under MinNTX 4", r.Index, r.BeaconNTX)
		}
		for _, sl := range r.Slots {
			if sl.NTX < 4 {
				t.Errorf("message %d slot NTX = %d under MinNTX 4", sl.Msg, sl.NTX)
			}
		}
	}
	if tight.Makespan < loose.Makespan {
		t.Errorf("raising the χ floor shrank the makespan: %d < %d", tight.Makespan, loose.Makespan)
	}
	if _, err := Solve(mk(DefaultMaxNTX + 1)); !errors.Is(err, ErrUnsat) {
		t.Errorf("MinNTX > MaxNTX err = %v, want ErrUnsat", err)
	}
}
