package core

import (
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// Golden regression values. The incremental STN engine maintains the same
// unique least solution the seed's batch Bellman-Ford computed, so solver
// results — and everything downstream in core — must stay bit-identical
// across engine changes. These pins were captured from the seed
// implementation; a drift in any of them means the engine no longer
// computes the least solution (or search order leaked into results).
func TestGoldenSolutionsStable(t *testing.T) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
	}

	check := func(name string, s *Schedule, makespan, bustime int64, optimal bool, rounds int) {
		t.Helper()
		if s.Makespan != makespan || s.BusTime != bustime || s.Optimal != optimal || len(s.Rounds) != rounds {
			t.Errorf("%s: makespan=%d bustime=%d optimal=%v rounds=%d, want %d/%d/%v/%d",
				name, s.Makespan, s.BusTime, s.Optimal, len(s.Rounds),
				makespan, bustime, optimal, rounds)
		}
	}

	s, err := Solve(&Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("MIMO exact-chi", s, 100760, 97956, true, 2)

	g2, err := apps.Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	sink := g2.Sinks()[0]
	s2, err := Solve(&Problem{
		App: g2, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{sink: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	check("Soft pipeline", s2, 36734, 34728, true, 3)

	s3, err := Solve(&Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
		GreedyChi: true, GreedyPlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("MIMO greedy", s3, 101624, 98820, false, 2)
}
