// Package core implements NETDAG, the application-aware time-triggered
// scheduler for networked applications over the Low-Power Wireless Bus
// (Wardega & Li, DATE 2020).
//
// Given an application task-dependency graph with WCETs, placements and
// message widths (internal/dag), the Glossy timing model and a network
// statistic (internal/glossy), and task-level real-time constraints —
// soft success probabilities or weakly-hard (m,K) bounds — the scheduler
// produces a makespan-minimal feasible schedule (ζ, χ, l):
//
//   - l assigns every unique-source message to an LWB communication
//     round (a topological partial order of the application line graph,
//     paper eq. 2),
//   - χ picks the Glossy retransmission parameter N_TX for every message
//     slot and round beacon so the task-level constraints hold (paper
//     eq. 6 for soft, eq. 9/10 via the ⊕ abstraction for weakly hard),
//   - ζ places tasks and rounds in time so precedence holds and no task
//     overlaps any communication round (paper eq. 4, 5), minimized for
//     makespan by the branch-and-bound solver in internal/solver.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// Mode selects the real-time paradigm of a scheduling problem.
type Mode int

const (
	// Soft schedules under probabilistic task-level constraints
	// (§III-B): each constrained task succeeds with at least the given
	// probability over independent runs.
	Soft Mode = iota
	// WeaklyHard schedules under (m,K) task-level constraints (§III-C):
	// bounded non-determinism suitable for safety-critical control.
	WeaklyHard
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Soft:
		return "soft"
	case WeaklyHard:
		return "weakly-hard"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Problem is a complete NETDAG scheduling instance.
type Problem struct {
	App      *dag.Graph    // the application (validated)
	Params   glossy.Params // hardware profiling constants of eq. (3)
	Diameter int           // bound on the network diameter D(N)

	Mode Mode

	// Objective selects what the solver minimizes: ObjectiveMakespan
	// (the zero value, the paper's latency objective) or ObjectiveEnergy
	// (per-node radio charge, with makespan and enumeration order as
	// deterministic tie-breaks). ObjectivePareto is rejected by Solve;
	// ParetoFront runs the epsilon-constraint sweep instead.
	Objective Objective

	// EnergyParams are the integer radio currents the energy objective
	// and the Schedule.EnergyPC accounting use. The zero value selects
	// DefaultEnergyParams (the CC2420-class profile of internal/lwb).
	EnergyParams EnergyParams

	// MakespanCap, when positive, is a hard feasibility constraint:
	// only schedules with makespan <= MakespanCap are admissible. It is
	// the epsilon-constraint of the Pareto sweep and — unlike the
	// incumbent-derived bound — deterministic, so it is never stripped
	// by the reproducibility redo in place. A cap below the instance's
	// optimum makes the solve fail with ErrUnsat.
	MakespanCap int64

	// NoEnergyBound disables the admissible energy lower bound at both
	// prune points of the energy-objective search (the outer χ-floor
	// charge bound and the incumbent-derived makespan cap on the timing
	// search) — the ablation knob of the PR-10 benchmark. Results are
	// identical either way — the bound is exact pruning — so the knob
	// only changes how much work the search does.
	NoEnergyBound bool

	// SoftStat and SoftCons configure Soft mode: the network statistic
	// λ_s and the per-task minimum success probabilities F_s. Tasks
	// absent from the map are unconstrained.
	SoftStat glossy.SoftStatistic
	SoftCons map[dag.TaskID]float64

	// WHStat and WHCons configure WeaklyHard mode: the network statistic
	// λ_WH and the per-task miss-form constraints F_WH.
	WHStat glossy.WHStatistic
	WHCons map[dag.TaskID]wh.MissConstraint

	// Deadlines optionally bounds task completion times (ζ(τ) <= d):
	// the task-level deadline constraints the §IV-D workflow feeds into
	// NETDAG. Tasks absent from the map are unconstrained. Deadlines
	// restrict feasibility but not the makespan objective.
	Deadlines map[dag.TaskID]int64

	// ReleaseTimes optionally forbids tasks from starting before the
	// given instant (e.g. sensor data not available until a phase
	// reference). Tasks absent from the map may start at time 0.
	ReleaseTimes map[dag.TaskID]int64

	// MaxNTX bounds the retransmission parameter per flood (χ domain is
	// MinNTX..MaxNTX). Zero selects DefaultMaxNTX.
	MaxNTX int
	// MinNTX raises the χ domain floor for every flood, beacons included.
	// It is the uniform degraded-link response of the online session
	// layer: when empirical certification reports a link worse than the
	// design statistic assumed, forcing extra retransmissions everywhere
	// restores margin without re-profiling the statistic. Zero and 1 both
	// mean the unconstrained floor; MinNTX > MaxNTX leaves no χ domain
	// and solves fail with ErrUnsat.
	MinNTX int
	// MaxRounds bounds the round assignments explored. Zero selects the
	// line graph's minimum plus DefaultExtraRounds.
	MaxRounds int
	// SolverNodes bounds the branch-and-bound timing search per round
	// assignment. Zero selects DefaultSolverNodes.
	SolverNodes int
	// Workers sets how many round assignments Solve evaluates
	// concurrently. Zero selects runtime.GOMAXPROCS(0); 1 forces the
	// purely sequential search. Any value returns the same schedule: the
	// parallel reduction breaks ties deterministically (makespan, then
	// enumeration order), so results are byte-identical across Workers
	// settings whenever the timing search completes within SolverNodes —
	// raise SolverNodes if Optimal comes back false and bit-exact
	// reproducibility across worker counts matters.
	//
	// With Workers > 1, user-supplied SoftStat / WHStat implementations
	// must be safe for concurrent use; every statistic shipped in
	// internal/glossy is (they are immutable after construction).
	Workers int
	// GreedyChi forces the greedy χ optimizer even on small instances
	// (used by the ablations; the default picks exact search when the
	// flood count permits).
	GreedyChi bool
	// GreedyPlacement replaces the exact branch-and-bound timing search
	// with the polynomial chronological-dispatch heuristic (the A3
	// ablation measures the optimality gap this costs).
	GreedyPlacement bool
	// Portfolio races heterogeneous exact strategies per timing search
	// (internal/portfolio): canonical branch-and-bound, a greedy-seeded
	// variant, and restart variants with different disjunction orderings,
	// all sharing one atomic incumbent, plus the path-based makespan
	// lower bound over the round blackout chain and symmetry breaking
	// over interchangeable floods in the outer enumeration. The returned
	// schedule is bit-identical to the single-strategy search: a
	// deterministic reconstruction pass replays the canonical order under
	// the proven optimum, so Portfolio changes solve time, never results.
	// Ignored when GreedyPlacement is set (there is no exact search to
	// race).
	Portfolio bool
	// PortfolioSeed seeds the portfolio's randomized restart strategy.
	// The result does not depend on it (see Portfolio); it only shifts
	// which subtrees the randomized strategy explores first.
	PortfolioSeed int64

	// InstanceChains optionally declares groups of tasks that are
	// phase-shifted job instances of one base task — the metadata
	// multirate.Result.Chains emits when unrolling a multi-rate spec:
	// each entry lists the instance task IDs of one base task in phase
	// order. normalize uses it to extend symmetry breaking from single
	// interchangeable floods to whole instance chains (see symmetry.go),
	// collapsing the factorial orbit of identical job chains to one
	// representative. The metadata is advisory: chains that fail the
	// structural interchange conditions are ignored, so passing it is
	// always safe and never changes results — only search effort.
	InstanceChains [][]dag.TaskID

	// NoSymmetry disables interchange-class dominance skipping in the
	// outer enumeration (the ablation knob of the multi-rate benchmarks).
	// Results are identical either way — the skip is exact — so the knob
	// only changes how much work the search does.
	NoSymmetry bool

	// NoChiFloors disables the weakly-hard per-flood window floors in
	// the admissibility lower bound (search.chiFloor), the second
	// ablation knob. Only the bound loosens: the window floors inside
	// the per-assignment χ instance are correctness constraints and
	// always apply, so results are again identical, just slower.
	NoChiFloors bool

	// WarmMakespan warm-starts the outer search with the makespan of a
	// previously solved, closely related instance (the online session's
	// re-solve path): it acts as a virtual incumbent — assignments whose
	// lower bound exceeds it are skipped and timing searches are capped
	// by it — so a re-solve whose optimum is no worse than the previous
	// schedule proves it at a fraction of the cold node count. The value
	// is a hint, never a constraint: when the bound excludes every
	// assignment (the delta'd optimum regressed past it), the search
	// transparently re-runs cold, so the returned schedule is always
	// bit-identical to an unhinted solve of the same problem — only
	// SolverNodes (work accounting) may differ. Zero disables it.
	WarmMakespan int64

	// iclasses are the interchange classes of message tuples (equal
	// width, identical destination sets, interchangeable sources or
	// instance chains) computed by normalize for exact placements; see
	// interchangeClasses.
	iclasses [][][]dag.MsgID

	// chiMemo caches the solved χ vector (or solve error) per interchange
	// orbit, keyed by the canonicalized round assignment (see
	// canonicalAssignKey). With canonical predFloods ordering every orbit
	// member builds the literally identical χ instance, so the cache is a
	// pure-function memo: a non-representative assignment skips the χ
	// search — the dominant cost on multi-rate instances — and goes
	// straight to the dominance check and placement with the
	// representative's vector. A pointer (not an embedded sync.Map) so
	// shallow Problem copies in tests do not copy the lock. Reset by
	// normalize, nil when symmetry is off.
	chiMemo *sync.Map

	// Search caches computed by normalize, shared read-only by every
	// per-assignment χ instance and by the outer search's admissibility
	// bound (safe across parallel workers):
	//
	//   - ancestors: MsgAncestors per constrained task, so the hot path
	//     stops re-walking the graph once per task per assignment;
	//   - defCol: the per-level deficit column, identical for every
	//     flood (it depends only on χ, not width);
	//   - costByWidth: the per-level slot-duration column per distinct
	//     message width (beacon width included);
	//   - chargeByWidth: the per-level flood-charge column (pC) per
	//     distinct width — the χ cost columns of the energy objective
	//     and the terms of its admissibility bound;
	//   - windowFloor: minNTXForWindow memoized per distinct window, so
	//     a rate-r task's instances share one floor computed once, not r
	//     times (-1 records an unsatisfiable window);
	//   - msgs: one immutable copy of App.Messages(), so the two
	//     per-assignment hot-path consumers (χ instance build and
	//     placement) stop deep-copying the message list per call.
	ancestors     map[dag.TaskID][]dag.MsgID
	msgs          []dag.Message
	defCol        []float64
	costByWidth   map[int][]int64
	chargeByWidth map[int][]int64
	windowFloor   map[int]int
}

// Defaults for optional Problem knobs.
const (
	DefaultMaxNTX      = 8
	DefaultExtraRounds = 1
	DefaultSolverNodes = 200000
	// exactChiFloodLimit is the largest flood count for which the exact
	// χ search runs by default.
	exactChiFloodLimit = 14
)

// Errors reported by the scheduler.
var (
	ErrNoStatistic   = errors.New("core: missing network statistic for the selected mode")
	ErrBadConstraint = errors.New("core: invalid task-level constraint")
	ErrStructure     = errors.New("core: constraints violate the structure induced by the dependency graph")
	ErrUnsat         = errors.New("core: no feasible schedule satisfies the task-level constraints")
)

// normalize fills defaults and performs cheap validation shared by both
// modes.
func (p *Problem) normalize() error {
	if p.App == nil {
		return errors.New("core: nil application")
	}
	if err := p.App.Validate(); err != nil {
		return err
	}
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.Diameter < 1 {
		return fmt.Errorf("core: diameter bound must be >= 1, got %d", p.Diameter)
	}
	if p.MaxNTX == 0 {
		p.MaxNTX = DefaultMaxNTX
	}
	if p.MaxNTX < 1 {
		return fmt.Errorf("core: MaxNTX must be >= 1, got %d", p.MaxNTX)
	}
	if p.MinNTX == 0 {
		p.MinNTX = 1
	}
	if p.MinNTX < 1 {
		return fmt.Errorf("core: MinNTX must be >= 0, got %d", p.MinNTX)
	}
	if p.MinNTX > p.MaxNTX {
		// ErrUnsat, not a config error: the session layer raises MinNTX in
		// response to degraded links and treats an empty χ domain as a
		// failed re-solve (falling back to safe mode), not as a bug.
		return fmt.Errorf("%w: MinNTX %d exceeds MaxNTX %d (empty χ domain)",
			ErrUnsat, p.MinNTX, p.MaxNTX)
	}
	if p.WarmMakespan < 0 {
		return fmt.Errorf("core: WarmMakespan must be >= 0, got %d", p.WarmMakespan)
	}
	switch p.Objective {
	case ObjectiveMakespan, ObjectiveEnergy:
	case ObjectivePareto:
		return fmt.Errorf("core: ObjectivePareto is not a single-schedule objective; use ParetoFront")
	default:
		return fmt.Errorf("core: unknown objective %v", p.Objective)
	}
	if p.EnergyParams.zero() {
		p.EnergyParams = DefaultEnergyParams()
	}
	if err := p.EnergyParams.Validate(); err != nil {
		return err
	}
	if p.MakespanCap < 0 {
		return fmt.Errorf("core: MakespanCap must be >= 0, got %d", p.MakespanCap)
	}
	if p.Objective != ObjectiveMakespan {
		// The warm hint is a makespan incumbent; under any other
		// objective it neither prunes soundly nor breaks ties in the
		// right order. It is a hint, never a constraint, so dropping it
		// is always safe.
		p.WarmMakespan = 0
	}
	if p.SolverNodes == 0 {
		p.SolverNodes = DefaultSolverNodes
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", p.Workers)
	}
	for id, d := range p.Deadlines {
		if t := p.App.Task(id); d < t.WCET {
			return fmt.Errorf("%w: task %q deadline %d below its WCET %d",
				ErrBadConstraint, t.Name, d, t.WCET)
		}
	}
	for id, r := range p.ReleaseTimes {
		if r < 0 {
			return fmt.Errorf("%w: task %q release time %d negative",
				ErrBadConstraint, p.App.Task(id).Name, r)
		}
	}
	// Interchange classes apply to every exact placement — single
	// strategy or portfolio — since the dominance argument only needs
	// the placement optimum; the greedy dispatcher does not compute one.
	if !p.GreedyPlacement && !p.NoSymmetry {
		p.iclasses = p.interchangeClasses()
	} else {
		p.iclasses = nil
	}
	if len(p.iclasses) > 0 {
		p.chiMemo = &sync.Map{}
	} else {
		p.chiMemo = nil
	}
	switch p.Mode {
	case Soft:
		if p.SoftStat == nil {
			return ErrNoStatistic
		}
		for id, f := range p.SoftCons {
			if f < 0 || f > 1 {
				return fmt.Errorf("%w: task %q probability %v outside [0,1]",
					ErrBadConstraint, p.App.Task(id).Name, f)
			}
		}
		if err := p.validateSoftStructure(); err != nil {
			return err
		}
	case WeaklyHard:
		if p.WHStat == nil {
			return ErrNoStatistic
		}
		for id, c := range p.WHCons {
			if err := c.Validate(); err != nil {
				return fmt.Errorf("%w: task %q: %v", ErrBadConstraint, p.App.Task(id).Name, err)
			}
		}
		if err := p.validateWHStructure(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown mode %v", p.Mode)
	}
	p.buildSearchCaches()
	return nil
}

// buildSearchCaches precomputes the per-solve read-only tables the
// per-assignment hot path consults: message ancestors per constrained
// task, the shared deficit column, slot-cost columns per width, and the
// per-window χ floor memo. All are immutable after normalize, so the
// parallel workers share them freely.
func (p *Problem) buildSearchCaches() {
	p.msgs = p.App.Messages()
	p.ancestors = make(map[dag.TaskID][]dag.MsgID, len(p.SoftCons)+len(p.WHCons))
	record := func(id dag.TaskID) {
		if _, ok := p.ancestors[id]; !ok {
			p.ancestors[id] = p.App.MsgAncestors(id)
		}
	}
	for id := range p.SoftCons {
		record(id)
	}
	for id := range p.WHCons {
		record(id)
	}
	p.defCol = make([]float64, p.MaxNTX)
	for n := 1; n <= p.MaxNTX; n++ {
		switch p.Mode {
		case Soft:
			lam := p.SoftStat.SuccessProb(n)
			if lam <= 0 {
				p.defCol[n-1] = math.Inf(1)
			} else {
				p.defCol[n-1] = -math.Log(lam)
			}
		case WeaklyHard:
			p.defCol[n-1] = float64(p.WHStat.MissConstraint(n).Misses)
		}
	}
	p.costByWidth = make(map[int][]int64)
	p.chargeByWidth = make(map[int][]int64)
	addWidth := func(w int) {
		if _, ok := p.costByWidth[w]; ok {
			return
		}
		col := make([]int64, p.MaxNTX)
		charge := make([]int64, p.MaxNTX)
		for n := 1; n <= p.MaxNTX; n++ {
			col[n-1] = p.Params.SlotDuration(n, w, p.Diameter)
			charge[n-1] = p.floodChargePC(n, w)
		}
		p.costByWidth[w] = col
		p.chargeByWidth[w] = charge
	}
	addWidth(p.Params.BeaconWidth)
	for _, m := range p.App.Messages() {
		addWidth(m.Width)
	}
	p.windowFloor = make(map[int]int, len(p.WHCons))
	if p.Mode == WeaklyHard {
		for _, c := range p.WHCons {
			if _, ok := p.windowFloor[c.Window]; ok {
				continue
			}
			if n, ok := p.minNTXForWindow(c.Window); ok {
				p.windowFloor[c.Window] = n
			} else {
				p.windowFloor[c.Window] = -1
			}
		}
	}
}

// validateSoftStructure enforces the §III-B structure: along every
// dependency edge between two constrained tasks, the upstream requirement
// must be at least as strong (F_s(τ) >= F_s(μ) for τ -> μ) — a weaker
// upstream task could never support a stronger downstream guarantee over
// a lossy bus.
func (p *Problem) validateSoftStructure() error {
	for _, t := range p.App.Tasks() {
		fs, ok := p.SoftCons[t.ID]
		if !ok {
			continue
		}
		for _, s := range p.App.Succs(t.ID) {
			fd, ok := p.SoftCons[s]
			if !ok {
				continue
			}
			if fs < fd {
				return fmt.Errorf("%w: soft F(%s)=%v < F(%s)=%v along %s -> %s",
					ErrStructure, t.Name, fs, p.App.Task(s).Name, fd, t.Name, p.App.Task(s).Name)
			}
		}
	}
	return nil
}

// validateWHStructure enforces the §III-C structure: along every edge
// between constrained tasks, F_WH(τ) ⪯ F_WH(μ) — the upstream constraint
// dominates (is at least as hard as) the downstream one, checked with the
// exact Bernat-Burns order on miss forms.
func (p *Problem) validateWHStructure() error {
	for _, t := range p.App.Tasks() {
		fu, ok := p.WHCons[t.ID]
		if !ok {
			continue
		}
		for _, s := range p.App.Succs(t.ID) {
			fd, ok := p.WHCons[s]
			if !ok {
				continue
			}
			if !wh.PrecedesBBMiss(fu, fd) {
				return fmt.Errorf("%w: weakly-hard F(%s)=%v does not dominate F(%s)=%v",
					ErrStructure, t.Name, fu, p.App.Task(s).Name, fd)
			}
		}
	}
	return nil
}
