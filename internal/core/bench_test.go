package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func benchMIMOProblem(b *testing.B, greedy bool) *Problem {
	b.Helper()
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		b.Fatal(err)
	}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
	}
	return &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
		GreedyChi: greedy,
	}
}

func BenchmarkSolveMIMOExactChi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchMIMOProblem(b, false)
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveMIMOGreedyChi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchMIMOProblem(b, true)
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSoftPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := apps.Pipeline(4, 500, 8)
		if err != nil {
			b.Fatal(err)
		}
		sink := g.Sinks()[0]
		p := &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 3,
			Mode:     Soft,
			SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
			SoftCons: map[dag.TaskID]float64{sink: 0.9},
		}
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveParallel measures the outer-search speedup from the
// worker pool on the MIMO instance, widening MaxRounds by one so the
// assignment space is large enough to matter. The workers=N sub-benches
// report their wall-clock speedup over the workers=1 baseline measured
// in the same run.
func BenchmarkSolveParallel(b *testing.B) {
	mk := func(workers int) *Problem {
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			b.Fatal(err)
		}
		cons := make(map[dag.TaskID]wh.MissConstraint)
		for _, a := range apps.Actuators(g) {
			cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
		}
		lg, err := dag.NewLineGraph(g)
		if err != nil {
			b.Fatal(err)
		}
		return &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 4,
			Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
			GreedyChi: true,
			MaxRounds: lg.MinRounds() + 1,
			Workers:   workers,
		}
	}
	maxW := runtime.GOMAXPROCS(0)
	workerSet := []int{1, 2}
	if maxW > 2 {
		workerSet = append(workerSet, maxW)
	}
	var baseline time.Duration
	for _, w := range workerSet {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(mk(w)); err != nil {
					b.Fatal(err)
				}
			}
			perOp := time.Duration(int64(time.Since(start)) / int64(b.N))
			if w == 1 {
				baseline = perOp
			} else if baseline > 0 {
				b.ReportMetric(float64(baseline)/float64(perOp), "speedup")
			}
		})
	}
}

func BenchmarkGlobalNTXBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchMIMOProblem(b, false)
		if _, err := GlobalNTXBaseline(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleValidate(b *testing.B) {
	p := benchMIMOProblem(b, true)
	s, err := Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(p.App); err != nil {
			b.Fatal(err)
		}
	}
}
