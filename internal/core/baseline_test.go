package core

import (
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func TestGlobalNTXBaselineFeasible(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	s, err := GlobalNTXBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("baseline schedule invalid: %v", err)
	}
	// All floods share one N_TX.
	first := s.Rounds[0].BeaconNTX
	for _, r := range s.Rounds {
		if r.BeaconNTX != first {
			t.Errorf("baseline beacon χ differs: %d vs %d", r.BeaconNTX, first)
		}
		for _, sl := range r.Slots {
			if sl.NTX != first {
				t.Errorf("baseline slot χ differs: %d vs %d", sl.NTX, first)
			}
		}
	}
	last, _ := g.TaskByName("stage2")
	if got, err := SatisfiedSoft(p, s, last.ID); err != nil || got < 0.9 {
		t.Errorf("baseline misses the soft target: %v (err %v)", got, err)
	}
}

func TestNETDAGNeverWorseThanBaselineSoft(t *testing.T) {
	for _, target := range []float64{0.5, 0.8, 0.9, 0.99, 0.999} {
		p, _ := softPipeline(t, target)
		netdag, err := Solve(p)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		base, err := GlobalNTXBaseline(p)
		if err != nil {
			t.Fatalf("target %v baseline: %v", target, err)
		}
		if netdag.Makespan > base.Makespan {
			t.Errorf("target %v: NETDAG %d worse than baseline %d", target, netdag.Makespan, base.Makespan)
		}
		if netdag.BusTime > base.BusTime {
			t.Errorf("target %v: NETDAG bus %d worse than baseline %d", target, netdag.BusTime, base.BusTime)
		}
	}
}

func TestNETDAGNeverWorseThanBaselineWH(t *testing.T) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
	}
	p := &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
		GreedyChi: true,
	}
	netdag, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := GlobalNTXBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if netdag.BusTime > base.BusTime {
		t.Errorf("NETDAG bus time %d worse than global-N_TX baseline %d", netdag.BusTime, base.BusTime)
	}
}

func TestBaselineUnsat(t *testing.T) {
	p, _ := softPipeline(t, 0.9999999)
	p.SoftStat = glossy.BernoulliSoft{PerTX: 0.3}
	p.MaxNTX = 2
	if _, err := GlobalNTXBaseline(p); err == nil {
		t.Error("baseline satisfied an unreachable target")
	}
}
