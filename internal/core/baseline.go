package core

import (
	"context"
	"fmt"
	"math"

	"github.com/netdag/netdag/internal/dag"
)

// GlobalNTXBaseline schedules the application the way pre-NETDAG LWB
// deployments are configured: one network-wide N_TX shared by every flood
// (beacons and slots), chosen as the smallest value meeting every
// task-level constraint, with the canonical ASAP round assignment. It is
// the comparison point of the A2 ablation: NETDAG's per-flood χ tuning
// can spend retransmissions only where a constraint needs them, so it
// never reserves more bus time than this baseline at equal reliability.
func GlobalNTXBaseline(p *Problem) (*Schedule, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	lg, err := dag.NewLineGraph(p.App)
	if err != nil {
		return nil, err
	}
	assign := lg.EarliestAssignment()
	msgs := p.App.Messages()
	nMsgs := len(msgs)
	rounds := lg.MinRounds()

	for n := 1; n <= p.MaxNTX; n++ {
		if !p.globalNTXFeasible(assign, nMsgs, n) {
			continue
		}
		chi := make([]int, nMsgs+rounds)
		for i := range chi {
			chi[i] = n
		}
		return p.place(context.Background(), assign, chi, rounds, -1)
	}
	return nil, fmt.Errorf("%w: no global N_TX within 1..%d meets the constraints", ErrUnsat, p.MaxNTX)
}

// globalNTXFeasible checks every task-level constraint under a uniform
// χ = n.
func (p *Problem) globalNTXFeasible(assign []int, nMsgs, n int) bool {
	switch p.Mode {
	case Soft:
		lam := p.SoftStat.SuccessProb(n)
		for id, target := range p.SoftCons {
			floods := predFloods(p.ancestors[id], assign, nMsgs)
			if len(floods) == 0 || target <= 0 {
				continue
			}
			if target >= 1 {
				return false
			}
			if math.Pow(lam, float64(len(floods))) < target-chiEps {
				return false
			}
		}
		return true
	case WeaklyHard:
		g := p.WHStat.MissConstraint(n)
		for id, target := range p.WHCons {
			floods := predFloods(p.ancestors[id], assign, nMsgs)
			if len(floods) == 0 || target.Trivial() {
				continue
			}
			if g.Window < target.Window {
				return false
			}
			if len(floods)*g.Misses > target.Misses {
				return false
			}
		}
		return true
	default:
		return false
	}
}
