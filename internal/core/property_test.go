package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// TestRandomInstancesScheduleAndAudit is the core property test: across
// random layered applications, modes and targets, every schedule the
// solver emits passes the independent eq. 4/5 audit and meets its
// declared guarantees; infeasibility is reported as ErrUnsat rather than
// a bogus schedule.
func TestRandomInstancesScheduleAndAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	solved, unsat := 0, 0
	for trial := 0; trial < 40; trial++ {
		layers := 2 + rng.Intn(2)
		width := 1 + rng.Intn(3)
		g, err := apps.RandomLayered(layers, width, 2, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		sinks := g.Sinks()
		p := &Problem{
			App:       g,
			Params:    glossy.DefaultParams(),
			Diameter:  1 + rng.Intn(4),
			MaxNTX:    4 + rng.Intn(5),
			GreedyChi: rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			p.Mode = Soft
			p.SoftStat = glossy.BernoulliSoft{PerTX: 0.6 + 0.35*rng.Float64()}
			p.SoftCons = map[dag.TaskID]float64{}
			for _, s := range sinks {
				p.SoftCons[s] = 0.5 + 0.45*rng.Float64()
			}
		} else {
			p.Mode = WeaklyHard
			p.WHStat = glossy.SyntheticWH{}
			p.WHCons = map[dag.TaskID]wh.MissConstraint{}
			for _, s := range sinks {
				p.WHCons[s] = wh.MissConstraint{Misses: 10 + rng.Intn(25), Window: 40}
			}
		}
		s, err := Solve(p)
		if err != nil {
			if !errors.Is(err, ErrUnsat) {
				t.Fatalf("trial %d: unexpected error class: %v", trial, err)
			}
			unsat++
			continue
		}
		solved++
		if err := s.Validate(g); err != nil {
			t.Fatalf("trial %d: schedule audit failed: %v", trial, err)
		}
		switch p.Mode {
		case Soft:
			for id, target := range p.SoftCons {
				got, err := SatisfiedSoft(p, s, id)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if got < target-1e-9 {
					t.Errorf("trial %d: task %d guaranteed %v < target %v", trial, id, got, target)
				}
			}
		case WeaklyHard:
			for id, target := range p.WHCons {
				guar, ok, err := SatisfiedWH(p, s, id)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if ok && !wh.SufficientlyImpliesMiss(guar, target) {
					t.Errorf("trial %d: task %d guarantee %v misses %v", trial, id, guar, target)
				}
			}
		}
	}
	if solved == 0 {
		t.Fatal("no random instance was solvable; generator parameters degenerate")
	}
	t.Logf("random instances: %d solved, %d unsat", solved, unsat)
}

// TestSolveIsDeterministic re-solves the same instance and expects
// byte-identical outcomes — the scheduler must not depend on map
// iteration order.
func TestSolveIsDeterministic(t *testing.T) {
	mk := func() *Problem {
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			t.Fatal(err)
		}
		cons := make(map[dag.TaskID]wh.MissConstraint)
		for _, a := range apps.Actuators(g) {
			cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
		}
		return &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 4,
			Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
		}
	}
	a, err := Solve(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := Solve(mk())
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan != b.Makespan || a.BusTime != b.BusTime {
			t.Fatalf("nondeterministic solve: %d/%d vs %d/%d", a.Makespan, a.BusTime, b.Makespan, b.BusTime)
		}
		for r := range a.Rounds {
			if a.Rounds[r].BeaconNTX != b.Rounds[r].BeaconNTX || a.Rounds[r].Start != b.Rounds[r].Start {
				t.Fatalf("nondeterministic round %d", r)
			}
			for sl := range a.Rounds[r].Slots {
				if a.Rounds[r].Slots[sl] != b.Rounds[r].Slots[sl] {
					t.Fatalf("nondeterministic slot %d/%d", r, sl)
				}
			}
		}
	}
}
