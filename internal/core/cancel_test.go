package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
)

// TestSolveContextBackgroundMatchesSolve: the context-free entry point
// and an unexpiring context produce identical schedules.
func TestSolveContextBackgroundMatchesSolve(t *testing.T) {
	p1, _ := softPipeline(t, 0.9)
	p2, _ := softPipeline(t, 0.9)
	a, err := Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveContext(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Optimal != b.Optimal || a.Explored != b.Explored {
		t.Errorf("Solve and SolveContext diverge: (%d,%v,%d) vs (%d,%v,%d)",
			a.Makespan, a.Optimal, a.Explored, b.Makespan, b.Optimal, b.Explored)
	}
}

// TestSolveContextAlreadyCanceled: a canceled context returns promptly
// with ErrCanceled for both the sequential and the parallel search.
func TestSolveContextAlreadyCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, _ := softPipeline(t, 0.9)
		p.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		s, err := SolveContext(ctx, p)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if s != nil {
			t.Errorf("workers=%d: pre-canceled solve returned a schedule", workers)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("workers=%d: canceled solve took %v", workers, el)
		}
	}
}

// bigProblem is an instance whose full search takes long enough that a
// short deadline reliably strikes mid-search: a wide multi-rate-ish DAG
// with several extra rounds to enumerate.
func bigProblem(t testing.TB) *Problem {
	t.Helper()
	g, err := apps.RandomLayered(4, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := g.Tasks()[g.NumTasks()-1]
	return &Problem{
		App:       g,
		Params:    glossy.DefaultParams(),
		Diameter:  3,
		Mode:      Soft,
		SoftStat:  glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons:  map[dag.TaskID]float64{last.ID: 0.9},
		MaxRounds: 6,
	}
}

// TestSolveContextDeadlineReturnsIncumbent: once at least one schedule
// exists, a mid-search cancellation surfaces it with Optimal = false and
// ErrCanceled, and the incumbent still passes the feasibility audit.
func TestSolveContextDeadlineReturnsIncumbent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		// Find a deadline that interrupts: start tiny and grow until the
		// solve returns an incumbent (or completes, in which case the
		// machine is too fast for the instance and the test is moot).
		interrupted := false
		for budget := 2 * time.Millisecond; budget < 10*time.Second; budget *= 2 {
			p := bigProblem(t)
			p.Workers = workers
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			s, err := SolveContext(ctx, p)
			cancel()
			if err == nil {
				break // completed inside the budget; nothing to observe
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("workers=%d: err = %v, want ErrCanceled or nil", workers, err)
			}
			if s == nil {
				continue // canceled before any incumbent; raise the budget
			}
			interrupted = true
			if s.Optimal {
				t.Errorf("workers=%d: canceled solve claims optimality", workers)
			}
			if verr := s.Validate(p.App); verr != nil {
				t.Errorf("workers=%d: incumbent fails feasibility audit: %v", workers, verr)
			}
			break
		}
		_ = interrupted // informational: completing early is not a failure
	}
}
