package core

import (
	"errors"
	"math"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func TestParseObjectiveRoundTrip(t *testing.T) {
	for _, o := range []Objective{ObjectiveMakespan, ObjectiveEnergy, ObjectivePareto} {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", o.String(), got, err, o)
		}
	}
	if got, err := ParseObjective(""); err != nil || got != ObjectiveMakespan {
		t.Errorf("empty spelling: %v, %v; want ObjectiveMakespan", got, err)
	}
	if _, err := ParseObjective("latency"); err == nil {
		t.Error("unknown spelling should error")
	}
}

func TestSolveRejectsParetoObjective(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	p.Objective = ObjectivePareto
	if _, err := Solve(p); err == nil {
		t.Fatal("Solve accepted ObjectivePareto; want an error directing to ParetoFront")
	}
}

func TestEnergyPCComputedUnderMakespanObjective(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.EnergyPC <= 0 {
		t.Fatalf("EnergyPC = %d, want positive", s.EnergyPC)
	}
	if got := p.scheduleEnergyPC(s); got != s.EnergyPC {
		t.Errorf("EnergyPC %d does not match recomputation %d", s.EnergyPC, got)
	}
	// Cross-check the integer model against first principles: radio-on
	// charge is bounded by BusTime at the larger current, and total charge
	// by makespan at the larger current.
	maxI := p.EnergyParams.RXCurrentUA
	if p.EnergyParams.TXCurrentUA > maxI {
		maxI = p.EnergyParams.TXCurrentUA
	}
	if s.EnergyPC > s.Makespan*maxI {
		t.Errorf("EnergyPC %d exceeds makespan × max current %d", s.EnergyPC, s.Makespan*maxI)
	}
}

// TestEnergyObjectiveNeverWorseThanMakespanObjective: the energy-optimal
// schedule's charge is a lower bound on any feasible schedule's charge,
// in particular the makespan-optimal one's.
func TestEnergyObjectiveNeverWorseThanMakespanObjective(t *testing.T) {
	for name, mk := range map[string]func(testing.TB) *Problem{
		"soft-pipeline": func(tb testing.TB) *Problem {
			p, _ := softPipeline(tb.(*testing.T), 0.9)
			return p
		},
		"wh-pipeline": func(tb testing.TB) *Problem {
			p, _ := whPipeline(tb.(*testing.T), wh.MissConstraint{Misses: 10, Window: 40})
			return p
		},
		"mimo": func(tb testing.TB) *Problem {
			g, err := apps.MIMO(apps.MIMOConfig{
				Sensors: 2, Controllers: 2, Actuators: 2,
				SensorWCET: 400, CtrlWCET: 800, ActWCET: 300,
				SensorWidth: 8, CtrlWidth: 4, Seed: 7,
			})
			if err != nil {
				tb.Fatal(err)
			}
			cons := map[dag.TaskID]wh.MissConstraint{}
			for _, task := range g.Tasks() {
				if len(g.Succs(task.ID)) == 0 {
					cons[task.ID] = wh.MissConstraint{Misses: 12, Window: 40}
				}
			}
			return &Problem{
				App: g, Params: glossy.DefaultParams(), Diameter: 3,
				Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			pm := mk(t)
			sm, err := Solve(pm)
			if err != nil {
				t.Fatal(err)
			}
			pe := mk(t)
			pe.Objective = ObjectiveEnergy
			se, err := Solve(pe)
			if err != nil {
				t.Fatal(err)
			}
			if err := se.Validate(pe.App); err != nil {
				t.Fatalf("energy-optimal schedule fails feasibility audit: %v", err)
			}
			if se.EnergyPC > sm.EnergyPC {
				t.Errorf("energy objective found charge %d pC, worse than makespan objective's %d pC",
					se.EnergyPC, sm.EnergyPC)
			}
			if se.Makespan < sm.Makespan {
				t.Errorf("energy-optimal makespan %d beats the proven makespan optimum %d",
					se.Makespan, sm.Makespan)
			}
		})
	}
}

// TestEnergyObjectiveDeterministicAcrossWorkers: the winner under
// ObjectiveEnergy is identical for sequential and parallel searches, with
// and without the portfolio, and with the energy bound ablated — the
// bound (and parallelism) changes speed only.
func TestEnergyObjectiveDeterministicAcrossWorkers(t *testing.T) {
	g, err := apps.MIMO(apps.MIMOConfig{
		Sensors: 2, Controllers: 2, Actuators: 2,
		SensorWCET: 400, CtrlWCET: 800, ActWCET: 300,
		SensorWidth: 8, CtrlWidth: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons := map[dag.TaskID]wh.MissConstraint{}
	for _, task := range g.Tasks() {
		if len(g.Succs(task.ID)) == 0 {
			cons[task.ID] = wh.MissConstraint{Misses: 12, Window: 40}
		}
	}
	mk := func(workers int, portfolio, noBound bool) *Schedule {
		p := &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 3,
			Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
			Objective: ObjectiveEnergy, Workers: workers,
			Portfolio: portfolio, NoEnergyBound: noBound,
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := mk(1, false, false)
	for _, cfg := range []struct {
		name      string
		workers   int
		portfolio bool
		noBound   bool
	}{
		{"workers4", 4, false, false},
		{"workers4-portfolio", 4, true, false},
		{"workers1-nobound", 1, false, true},
		{"workers4-nobound", 4, false, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			s := mk(cfg.workers, cfg.portfolio, cfg.noBound)
			if s.EnergyPC != ref.EnergyPC || s.Makespan != ref.Makespan {
				t.Errorf("(energy, makespan) = (%d, %d); sequential reference (%d, %d)",
					s.EnergyPC, s.Makespan, ref.EnergyPC, ref.Makespan)
			}
			if len(s.Assign) != len(ref.Assign) {
				t.Fatalf("assignment length %d vs %d", len(s.Assign), len(ref.Assign))
			}
			for m := range s.Assign {
				if s.Assign[m] != ref.Assign[m] {
					t.Errorf("message %d assigned to round %d, reference %d", m, s.Assign[m], ref.Assign[m])
				}
			}
		})
	}
}

func TestMakespanCapConstrains(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	opt, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Cap at the optimum: still feasible (the cap is inclusive).
	pAt, _ := softPipeline(t, 0.9)
	pAt.MakespanCap = opt.Makespan
	sAt, err := Solve(pAt)
	if err != nil {
		t.Fatalf("cap at the proven optimum must stay feasible: %v", err)
	}
	if sAt.Makespan != opt.Makespan {
		t.Errorf("capped solve found %d, want the optimum %d", sAt.Makespan, opt.Makespan)
	}
	// Cap below the optimum: unsat.
	pBelow, _ := softPipeline(t, 0.9)
	pBelow.MakespanCap = opt.Makespan - 1
	if _, err := Solve(pBelow); !errors.Is(err, ErrUnsat) {
		t.Errorf("cap below the optimum: %v, want ErrUnsat", err)
	}
	// Negative cap is rejected.
	pNeg, _ := softPipeline(t, 0.9)
	pNeg.MakespanCap = -1
	if _, err := Solve(pNeg); err == nil {
		t.Error("negative MakespanCap accepted")
	}
}

func TestGuaranteeSlack(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	slack, err := GuaranteeSlack(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if slack < 0 {
		t.Errorf("feasible schedule reports negative slack %v", slack)
	}
	if math.IsInf(slack, 1) {
		t.Error("constrained task should yield finite slack")
	}
	// Unconstrained problem: +Inf.
	pu := &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode: Soft, SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
	}
	su, err := Solve(pu)
	if err != nil {
		t.Fatal(err)
	}
	if slack, err := GuaranteeSlack(pu, su); err != nil || !math.IsInf(slack, 1) {
		t.Errorf("unconstrained slack = %v, %v; want +Inf", slack, err)
	}
}

func TestWarmHintClearedUnderEnergyObjective(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	p.Objective = ObjectiveEnergy
	p.WarmMakespan = 1 // absurdly tight; must be ignored, not constrain
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("warm hint under energy objective must not constrain: %v", err)
	}
	if s.EnergyPC <= 0 {
		t.Errorf("EnergyPC = %d, want positive", s.EnergyPC)
	}
}
