package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"github.com/netdag/netdag/internal/dag"
)

// Symmetry breaking over interchangeable floods (cf. TTW's symmetry
// constraints, Jacob et al., DATE 2018): two message tuples are
// interchangeable when swapping their round assignments yields a
// scheduling instance isomorphic to the original — same χ optimization,
// same placement optimum. The enumeration then only needs one
// representative per orbit: the lexicographic enumeration emits the
// member with ascending round vectors (in MsgID order) first, so any
// assignment where a class's round vectors descend is a later,
// never-better duplicate.
//
// A class member is an ordered tuple of messages. The original flood
// interchange (PR 6) is the tuple-length-1 case: messages of equal width
// with identical destination sets and mutually indistinguishable pure
// producer sources. The multi-rate generalization takes tuples from
// Problem.InstanceChains — the phase-ordered instances of one base task
// emitted by multirate.Unroll — so the r! orderings of r identical job
// chains (three cameras at rate 2, say) collapse to one.
//
// Interchangeability is structural and verified here, never assumed from
// the metadata. For a chain tuple every member chain must be pure — the
// first instance has no predecessors, each later instance's only
// predecessor is the previous one via an order-only serialization edge,
// and each instance's successors are exactly its message destinations
// plus the next instance — and phase-aligned across the class: equal
// WCET, equal width, literally identical destination task sets, equal
// task-level constraints, no deadlines or release times, with the same
// phases emitting. Under these conditions the χ instance of a swapped
// image is literally identical to the original's: all members feed the
// same consumers, so every constraint's flood set is unchanged by
// permuting the members' rounds, and predFloods renders each set in a
// canonical order (messages by MsgID, then beacons by round) independent
// of which member carries which round. Identical instances mean the χ
// solver — whose tie-breaking depends on flood-list positions — returns
// the same vector for both, which is also what lets scheduleForAssignment
// memoize one solved χ vector per orbit (Problem.chiMemo). The placement instances are isomorphic under
// relabeling the chains *only if* the solved χ values coincide per phase
// across members (otherwise the images put different slot durations into
// the rounds); the skip therefore verifies per-phase χ equality at
// runtime and explores the image normally when the solver broke the tie
// asymmetrically. This keeps the pruning unconditionally exact.
//
// Soundness of "earlier": class tuple messages all sit at line-graph
// depth 0 (their sources consume nothing — order-only serialization
// edges are invisible to the line graph), so their enumeration positions
// are in MsgID order. Construction additionally requires MsgID-ordering
// consistency — within a member, phase k's MsgID precedes phase k+1's;
// across adjacent members, every phase-k MsgID of the earlier member
// precedes the later member's — and drops any class violating it. Under
// consistency, swapping a descending adjacent pair of member vectors
// first differs from the original at the earlier member's first
// differing phase, where the image's round is strictly smaller: the
// image is enumerated earlier. By induction down the lexicographic
// order, an undominated equal-makespan representative is always
// enumerated earlier, so it wins the (makespan, idx) total order.
//
// Only used when the placement is exact (the duplicate-makespan argument
// relies on the placement optimum, which the greedy dispatcher does not
// compute); Problem.NoSymmetry turns it off for ablation.

// interchangeClasses groups message tuples into interchange classes
// (size >= 2, members in ascending MsgID-tuple order). Each class is a
// slice of members; each member a phase-ordered MsgID tuple.
func (p *Problem) interchangeClasses() [][][]dag.MsgID {
	app := p.App
	preds := make([]int, app.NumTasks())
	for _, t := range app.Tasks() {
		for _, s := range app.Succs(t.ID) {
			preds[s]++
		}
	}
	groups := make(map[string][][]dag.MsgID)
	// Chain tuples from the multi-rate instance metadata. Sources claimed
	// by a qualifying chain are excluded from the singleton pass below so
	// no message lands in two classes.
	claimed := make(map[dag.MsgID]bool)
	for _, chain := range p.InstanceChains {
		key, msgs, ok := p.chainTuple(chain, preds)
		if !ok {
			continue
		}
		groups[key] = append(groups[key], msgs)
		for _, m := range msgs {
			claimed[m] = true
		}
	}
	// Singleton tuples: the original flood-interchange conditions.
	for _, m := range app.Messages() {
		if claimed[m.ID] {
			continue
		}
		src := app.Task(m.Source)
		// The source must be indistinguishable from another class member's:
		// a pure producer whose only successors are the message's
		// destinations, with no timing constraints of its own.
		if preds[m.Source] != 0 || len(app.Succs(m.Source)) != len(m.Dests) {
			continue
		}
		if _, ok := p.Deadlines[m.Source]; ok {
			continue
		}
		if _, ok := p.ReleaseTimes[m.Source]; ok {
			continue
		}
		dests := make([]int, len(m.Dests))
		for i, d := range m.Dests {
			dests[i] = int(d)
		}
		sort.Ints(dests)
		soft, hasSoft := p.SoftCons[m.Source]
		whc, hasWH := p.WHCons[m.Source]
		key := fmt.Sprintf("w%d|c%d|%v|s%v,%t|h%v,%t",
			m.Width, src.WCET, dests, soft, hasSoft, whc, hasWH)
		groups[key] = append(groups[key], []dag.MsgID{m.ID})
	}
	keys := make([]string, 0, len(groups))
	for k, ms := range groups {
		if len(ms) < 2 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	classes := make([][][]dag.MsgID, 0, len(keys))
	for _, k := range keys {
		ms := groups[k]
		sort.Slice(ms, func(i, j int) bool { return tupleLess(ms[i], ms[j]) })
		if !orderingConsistent(ms) {
			continue // cannot prove "earlier"; skip the class, stay exact
		}
		classes = append(classes, ms)
	}
	return classes
}

// chainTuple validates one instance chain against the structural
// interchange conditions and renders its per-phase signature key plus
// its phase-ordered message tuple. ok is false when the chain does not
// qualify (wrong shape, constrained timing, nothing emitted) — the
// metadata is advisory, never trusted.
func (p *Problem) chainTuple(chain []dag.TaskID, preds []int) (string, []dag.MsgID, bool) {
	app := p.App
	if len(chain) < 2 {
		return "", nil, false // singleton pass covers length-1 chains
	}
	var key strings.Builder
	var msgs []dag.MsgID
	fmt.Fprintf(&key, "chain%d", len(chain))
	for k, tid := range chain {
		if int(tid) < 0 || int(tid) >= app.NumTasks() {
			return "", nil, false
		}
		pr := app.Preds(tid)
		if k == 0 {
			if len(pr) != 0 {
				return "", nil, false
			}
		} else if len(pr) != 1 || pr[0] != chain[k-1] || !app.OrderOnly(chain[k-1], tid) {
			return "", nil, false
		}
		if _, ok := p.Deadlines[tid]; ok {
			return "", nil, false
		}
		if _, ok := p.ReleaseTimes[tid]; ok {
			return "", nil, false
		}
		m, emits := app.MessageOf(tid)
		want := 0
		if k < len(chain)-1 {
			want++
		}
		if emits {
			want += len(m.Dests)
		}
		if len(app.Succs(tid)) != want {
			return "", nil, false
		}
		soft, hasSoft := p.SoftCons[tid]
		whc, hasWH := p.WHCons[tid]
		fmt.Fprintf(&key, "|p%d:c%d,s%v,%t,h%v,%t", k, app.Task(tid).WCET, soft, hasSoft, whc, hasWH)
		if emits {
			dests := make([]int, len(m.Dests))
			for i, d := range m.Dests {
				dests[i] = int(d)
			}
			sort.Ints(dests)
			fmt.Fprintf(&key, ",w%d,d%v", m.Width, dests)
			msgs = append(msgs, m.ID)
		} else {
			key.WriteString(",noemit")
		}
	}
	if len(msgs) == 0 {
		return "", nil, false
	}
	return key.String(), msgs, true
}

// tupleLess is lexicographic MsgID order over equal-length tuples.
func tupleLess(a, b []dag.MsgID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// orderingConsistent verifies the MsgID-ordering precondition of the
// "enumerated earlier" argument: within every member the phase MsgIDs
// ascend, and across members (already tuple-sorted) every phase's MsgID
// strictly ascends member to member.
func orderingConsistent(members [][]dag.MsgID) bool {
	for i, m := range members {
		for k := 1; k < len(m); k++ {
			if m[k-1] >= m[k] {
				return false
			}
		}
		if i == 0 {
			continue
		}
		prev := members[i-1]
		if len(prev) != len(m) {
			return false
		}
		for k := range m {
			if prev[k] >= m[k] {
				return false
			}
		}
	}
	return true
}

// dominatedAssignment reports whether assign is a provable duplicate of
// an earlier-enumerated image: some interchange class's member round
// vectors descend (an adjacent pair compares lexicographically
// downward) and the solved χ values of the class's members coincide per
// phase. Swapping the descending pair's vectors yields a
// lexicographically earlier assignment (see the ordering-consistency
// argument above) whose χ instance is literally identical and whose
// placement instance is isomorphic — identical round durations, chains
// relabeled — so its exact optimum is the same makespan. A class whose χ
// tie the solver broke asymmetrically never triggers a skip: those
// images put different slot durations into the rounds and must be
// explored.
// chiMemoEntry is one record of the per-orbit χ memo: the solved vector
// — or the solve's error — of the orbit's shared χ instance. Exactly one
// of chi/err is set. Entries are immutable after store; place only reads
// chi, so sharing the slice across the orbit's assignments is safe.
type chiMemoEntry struct {
	chi []int
	err error
}

// canonicalAssignKey renders the orbit-canonical form of a round
// assignment as a memo key: per interchange class, the member round
// vectors sorted lexicographically ascending — exactly the arrangement
// of the orbit's earliest-enumerated representative (members are in
// ascending MsgID-tuple order and the representative pairs ascending
// vectors with ascending tuples). Positions outside the classes are
// untouched, so two assignments share a key iff they are in the same
// interchange orbit. rep reports whether assign already is its own
// representative (every class ascending). ok is false when the
// assignment cannot be keyed compactly — a round index above 255, which
// no realistic round budget reaches; the memo then just stays cold.
func (p *Problem) canonicalAssignKey(assign []int) (key string, rep, ok bool) {
	buf := make([]byte, len(assign))
	for i, r := range assign {
		if r < 0 || r > 255 {
			return "", false, false
		}
		buf[i] = byte(r)
	}
	rep = true
	for _, cls := range p.iclasses {
		sorted := true
		for i := 1; i < len(cls); i++ {
			if memberVecGreater(buf, cls[i-1], cls[i]) {
				sorted = false
				break
			}
		}
		if sorted {
			// Adjacent-pair ≤ implies the whole class is sorted
			// (lexicographic comparison is a total order).
			continue
		}
		rep = false
		vecs := make([][]byte, len(cls))
		for i, mem := range cls {
			v := make([]byte, len(mem))
			for k, m := range mem {
				v[k] = buf[m]
			}
			vecs[i] = v
		}
		sort.Slice(vecs, func(i, j int) bool { return bytes.Compare(vecs[i], vecs[j]) < 0 })
		for i, mem := range cls {
			for k, m := range mem {
				buf[m] = vecs[i][k]
			}
		}
	}
	return string(buf), rep, true
}

// memberVecGreater compares two members' round vectors under buf
// lexicographically: true iff a's vector is strictly greater than b's.
func memberVecGreater(buf []byte, a, b []dag.MsgID) bool {
	for k := range a {
		if buf[a[k]] != buf[b[k]] {
			return buf[a[k]] > buf[b[k]]
		}
	}
	return false
}

func (p *Problem) dominatedAssignment(assign []int, chi []int) bool {
	for _, cls := range p.iclasses {
		descends := false
		for i := 1; i < len(cls); i++ {
			a, b := cls[i-1], cls[i]
			for k := range a {
				if assign[a[k]] != assign[b[k]] {
					descends = assign[a[k]] > assign[b[k]]
					break
				}
			}
			if descends {
				break
			}
		}
		if !descends {
			continue
		}
		equal := true
		for i := 1; i < len(cls) && equal; i++ {
			a, b := cls[i-1], cls[i]
			for k := range a {
				if chi[a[k]] != chi[b[k]] {
					equal = false
					break
				}
			}
		}
		if equal {
			return true
		}
	}
	return false
}
