package core

import (
	"fmt"
	"sort"

	"github.com/netdag/netdag/internal/dag"
)

// Symmetry breaking over interchangeable floods (cf. TTW's symmetry
// constraints, Jacob et al., DATE 2018): two messages are interchangeable
// when swapping their round assignments yields a scheduling instance
// isomorphic to the original — same χ optimization, same placement
// optimum. The enumeration then only needs one representative per orbit:
// the lexicographic enumeration emits the member with ascending rounds
// (in MsgID order) first, so any assignment where a class's rounds
// descend is a later, never-better duplicate.
//
// Interchangeability is structural: equal width, identical destination
// sets, and sources that are mutually indistinguishable (equal WCET, no
// predecessors, no extra successors, no deadlines/releases, identical
// task-level constraints). Under these conditions the χ instance —
// costs, defect columns, covering constraints, window floors — is
// literally identical across the orbit, so the χ solver returns the same
// vector for every image. The placement instances of two images are
// isomorphic under relabeling the sources *only if* the class members'
// χ values coincide (otherwise the images put different slot durations
// into the rounds); the skip therefore verifies χ equality at runtime
// and explores the image normally when the solver broke the tie
// asymmetrically. This keeps the pruning unconditionally exact.

// interchangeClasses groups messages into interchange classes (size >= 2,
// members in ascending MsgID order). Only called when Portfolio is set
// and the placement is exact: the duplicate-makespan argument relies on
// the placement optimum, which the greedy dispatcher does not compute.
func (p *Problem) interchangeClasses() [][]dag.MsgID {
	app := p.App
	preds := make([]int, app.NumTasks())
	for _, t := range app.Tasks() {
		for _, s := range app.Succs(t.ID) {
			preds[s]++
		}
	}
	groups := make(map[string][]dag.MsgID)
	for _, m := range app.Messages() {
		src := app.Task(m.Source)
		// The source must be indistinguishable from another class member's:
		// a pure producer whose only successors are the message's
		// destinations, with no timing constraints of its own.
		if preds[m.Source] != 0 || len(app.Succs(m.Source)) != len(m.Dests) {
			continue
		}
		if _, ok := p.Deadlines[m.Source]; ok {
			continue
		}
		if _, ok := p.ReleaseTimes[m.Source]; ok {
			continue
		}
		dests := make([]int, len(m.Dests))
		for i, d := range m.Dests {
			dests[i] = int(d)
		}
		sort.Ints(dests)
		soft, hasSoft := p.SoftCons[m.Source]
		whc, hasWH := p.WHCons[m.Source]
		key := fmt.Sprintf("w%d|c%d|%v|s%v,%t|h%v,%t",
			m.Width, src.WCET, dests, soft, hasSoft, whc, hasWH)
		groups[key] = append(groups[key], m.ID)
	}
	keys := make([]string, 0, len(groups))
	for k, ms := range groups {
		if len(ms) < 2 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	classes := make([][]dag.MsgID, 0, len(keys))
	for _, k := range keys {
		ms := groups[k]
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		classes = append(classes, ms)
	}
	return classes
}

// dominatedAssignment reports whether assign is a provable duplicate of
// an earlier-enumerated image: some interchange class's rounds descend
// and the solved χ values of that class's members coincide. Sorting just
// that class's rounds ascending yields a lexicographically earlier
// assignment (class members share line-graph depth 0, so their
// enumeration positions are in MsgID order) whose placement instance is
// isomorphic — identical round durations, sources relabeled — and whose
// exact optimum is therefore the same makespan. By induction down the
// lexicographic order, an undominated equal-makespan representative is
// always enumerated earlier, so it wins the (makespan, idx) total order
// and the skip is exact. A class whose χ tie the solver broke
// asymmetrically never triggers a skip: those images put different slot
// durations into the rounds and must be explored.
func (p *Problem) dominatedAssignment(assign []int, chi []int) bool {
	for _, cls := range p.iclasses {
		descends := false
		for k := 1; k < len(cls); k++ {
			if assign[cls[k-1]] > assign[cls[k]] {
				descends = true
				break
			}
		}
		if !descends {
			continue
		}
		equal := true
		for k := 1; k < len(cls); k++ {
			if chi[cls[k-1]] != chi[cls[k]] {
				equal = false
				break
			}
		}
		if equal {
			return true
		}
	}
	return false
}
