package core

import (
	"errors"
	"math"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// softPipeline returns a 3-stage pipeline problem under a Bernoulli soft
// statistic.
func softPipeline(t testing.TB, target float64) (*Problem, *dag.Graph) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &Problem{
		App:      g,
		Params:   glossy.DefaultParams(),
		Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: target},
	}
	return p, g
}

func TestSolveSoftPipeline(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("schedule fails its own feasibility audit: %v", err)
	}
	if len(s.Rounds) < 2 {
		t.Errorf("3-stage pipeline needs 2 rounds, got %d", len(s.Rounds))
	}
	last, _ := g.TaskByName("stage2")
	if got, err := SatisfiedSoft(p, s, last.ID); err != nil || got < 0.9 {
		t.Errorf("guaranteed probability %v below target 0.9 (err %v)", got, err)
	}
	if !s.Optimal {
		t.Error("paper-scale instance should be solved to optimality")
	}
}

func TestSolveSoftTightTargetsRaiseNTX(t *testing.T) {
	loose, _ := softPipeline(t, 0.5)
	tight, _ := softPipeline(t, 0.999)
	sLoose, err := Solve(loose)
	if err != nil {
		t.Fatal(err)
	}
	sTight, err := Solve(tight)
	if err != nil {
		t.Fatal(err)
	}
	if sTight.Makespan <= sLoose.Makespan {
		t.Errorf("tighter soft target should cost makespan: %d vs %d", sTight.Makespan, sLoose.Makespan)
	}
	if sTight.BusTime <= sLoose.BusTime {
		t.Errorf("tighter soft target should cost bus time: %d vs %d", sTight.BusTime, sLoose.BusTime)
	}
}

func TestSolveSoftUnsatProbabilityOne(t *testing.T) {
	p, _ := softPipeline(t, 1.0)
	if _, err := Solve(p); !errors.Is(err, ErrUnsat) {
		t.Errorf("probability-1 target over lossy bus: %v, want ErrUnsat", err)
	}
}

func TestSolveSoftUnreachableTarget(t *testing.T) {
	p, _ := softPipeline(t, 0.9999999)
	p.SoftStat = glossy.BernoulliSoft{PerTX: 0.3}
	p.MaxNTX = 2
	if _, err := Solve(p); !errors.Is(err, ErrUnsat) {
		t.Errorf("unreachable target: %v, want ErrUnsat", err)
	}
}

func whPipeline(t testing.TB, target wh.MissConstraint) (*Problem, *dag.Graph) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &Problem{
		App:      g,
		Params:   glossy.DefaultParams(),
		Diameter: 3,
		Mode:     WeaklyHard,
		WHStat:   glossy.SyntheticWH{},
		WHCons:   map[dag.TaskID]wh.MissConstraint{last.ID: target},
	}
	return p, g
}

func TestSolveWeaklyHardPipeline(t *testing.T) {
	// (10 misses, 40 window)~ is reachable with the eq. 13 statistic.
	p, g := whPipeline(t, wh.MissConstraint{Misses: 10, Window: 40})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("schedule fails its feasibility audit: %v", err)
	}
	last, _ := g.TaskByName("stage2")
	g10, ok, err := SatisfiedWH(p, s, last.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stage2 has networked predecessors")
	}
	if !wh.SufficientlyImpliesMiss(g10, wh.MissConstraint{Misses: 10, Window: 40}) {
		t.Errorf("guarantee %v does not imply the requirement", g10)
	}
}

func TestSolveWeaklyHardStricterCostsMore(t *testing.T) {
	// Tightening the miss budget raises χ and therefore makespan (the
	// fig. 2 mechanism).
	pLoose, _ := whPipeline(t, wh.MissConstraint{Misses: 16, Window: 40})
	pTight, _ := whPipeline(t, wh.MissConstraint{Misses: 8, Window: 40})
	sLoose, err := Solve(pLoose)
	if err != nil {
		t.Fatal(err)
	}
	sTight, err := Solve(pTight)
	if err != nil {
		t.Fatal(err)
	}
	if sTight.Makespan < sLoose.Makespan {
		t.Errorf("tighter weakly-hard target reduced makespan: %d vs %d", sTight.Makespan, sLoose.Makespan)
	}
	if sTight.BusTime < sLoose.BusTime {
		t.Errorf("tighter weakly-hard target reduced bus time")
	}
}

func TestSolveWeaklyHardWindowUnreachable(t *testing.T) {
	// Requiring a 10000-wide window exceeds what MaxNTX=3 can provide
	// (eq. 13 windows are 20n).
	p, _ := whPipeline(t, wh.MissConstraint{Misses: 5, Window: 10000})
	p.MaxNTX = 3
	if _, err := Solve(p); !errors.Is(err, ErrUnsat) {
		t.Errorf("unreachable window: %v, want ErrUnsat", err)
	}
}

func TestSolveMIMOWeaklyHard(t *testing.T) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = wh.MissConstraint{Misses: 20, Window: 40}
	}
	p := &Problem{
		App:       g,
		Params:    glossy.DefaultParams(),
		Diameter:  4,
		Mode:      WeaklyHard,
		WHStat:    glossy.SyntheticWH{},
		WHCons:    cons,
		GreedyChi: true, // MIMO has ~14 floods; keep the test fast
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("MIMO schedule invalid: %v", err)
	}
	for _, a := range apps.Actuators(g) {
		guar, ok, err := SatisfiedWH(p, s, a)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("actuator %d has no networked predecessors", a)
		}
		if !wh.SufficientlyImpliesMiss(guar, cons[a]) {
			t.Errorf("actuator %d guarantee %v misses requirement %v", a, guar, cons[a])
		}
	}
}

func TestSolveMessageFreeApp(t *testing.T) {
	g := dag.New()
	g.MustAddTask("only", "n0", 750)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 1,
		Mode: Soft, SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 0 || s.Makespan != 750 {
		t.Errorf("message-free app: rounds=%d makespan=%d", len(s.Rounds), s.Makespan)
	}
}

func TestSolveStructureValidation(t *testing.T) {
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := g.TaskByName("stage0")
	second, _ := g.TaskByName("stage1")
	p := &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{
			first.ID:  0.5, // upstream weaker than downstream: invalid
			second.ID: 0.9,
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrStructure) {
		t.Errorf("structure violation: %v, want ErrStructure", err)
	}
}

func TestSolveWHStructureValidation(t *testing.T) {
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := g.TaskByName("stage0")
	second, _ := g.TaskByName("stage1")
	p := &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode:   WeaklyHard,
		WHStat: glossy.SyntheticWH{},
		WHCons: map[dag.TaskID]wh.MissConstraint{
			first.ID:  {Misses: 10, Window: 20}, // weaker than downstream
			second.ID: {Misses: 1, Window: 20},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrStructure) {
		t.Errorf("WH structure violation: %v, want ErrStructure", err)
	}
}

func TestSolveRejectsBadInputs(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("nil app accepted")
	}
	g, _ := apps.Pipeline(2, 100, 4)
	p := &Problem{App: g, Params: glossy.DefaultParams(), Diameter: 0, Mode: Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9}}
	if _, err := Solve(p); err == nil {
		t.Error("zero diameter accepted")
	}
	p2 := &Problem{App: g, Params: glossy.DefaultParams(), Diameter: 2, Mode: Soft}
	if _, err := Solve(p2); !errors.Is(err, ErrNoStatistic) {
		t.Errorf("missing statistic: %v", err)
	}
	p3 := &Problem{App: g, Params: glossy.DefaultParams(), Diameter: 2, Mode: Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{dag.TaskID(0): 1.5}}
	if _, err := Solve(p3); !errors.Is(err, ErrBadConstraint) {
		t.Errorf("bad probability: %v", err)
	}
}

func TestSolveRejectsMaxRoundsBelowMinimum(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	p.MaxRounds = 1 // pipeline needs 2 rounds
	if _, err := Solve(p); err == nil {
		t.Error("MaxRounds below the line-graph minimum accepted")
	}
}

func TestSolveTinySolverBudget(t *testing.T) {
	// A 1-node timing budget may still find a feasible (suboptimal)
	// placement — the pipeline's earliest schedule happens to resolve
	// all disjunctions — but whatever comes back must pass the audit and
	// never beat the unbounded optimum.
	p, g := softPipeline(t, 0.9)
	ref, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := softPipeline(t, 0.9)
	p2.SolverNodes = 1
	s, err := Solve(p2)
	if err != nil {
		return // running out of budget is an acceptable outcome
	}
	if auditErr := s.Validate(g); auditErr != nil {
		t.Fatalf("budget-limited schedule fails audit: %v", auditErr)
	}
	if s.Makespan < ref.Makespan {
		t.Errorf("budget-limited makespan %d beats the proven optimum %d", s.Makespan, ref.Makespan)
	}
}

func TestSatisfiedSoftMatchesManualProduct(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	// Manual product over both message slots and both beacons.
	prod := 1.0
	for _, r := range s.Rounds {
		prod *= p.SoftStat.SuccessProb(r.BeaconNTX)
		for _, sl := range r.Slots {
			prod *= p.SoftStat.SuccessProb(sl.NTX)
		}
	}
	got, err := SatisfiedSoft(p, s, last.ID)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-prod) > 1e-12 {
		t.Errorf("SatisfiedSoft = %v, manual product %v", got, prod)
	}
}

func TestScheduleStringRenders(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	if len(out) == 0 {
		t.Error("empty schedule rendering")
	}
}

func TestMinMakespan(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	m, err := MinMakespan(p)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Solve(p)
	if m != s.Makespan {
		t.Errorf("MinMakespan %d != Solve makespan %d", m, s.Makespan)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// Makespan is at least critical-path WCET plus all bus time (rounds
	// are global blackouts on a pipeline's single path).
	p, g := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan < g.CriticalPathWCET()+s.BusTime {
		t.Errorf("makespan %d below critical path %d + bus %d",
			s.Makespan, g.CriticalPathWCET(), s.BusTime)
	}
}
