package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// sameSchedule fails the test unless a and b are byte-identical in every
// observable field — the parallel search's determinism contract.
func sameSchedule(t *testing.T, label string, a, b *Schedule) {
	t.Helper()
	if a.Makespan != b.Makespan || a.BusTime != b.BusTime {
		t.Fatalf("%s: makespan/bus %d/%d vs %d/%d", label, a.Makespan, a.BusTime, b.Makespan, b.BusTime)
	}
	if a.Optimal != b.Optimal || a.Explored != b.Explored || a.Mode != b.Mode {
		t.Fatalf("%s: optimal/explored/mode %v/%d/%v vs %v/%d/%v",
			label, a.Optimal, a.Explored, a.Mode, b.Optimal, b.Explored, b.Mode)
	}
	if len(a.Assign) != len(b.Assign) {
		t.Fatalf("%s: assignment lengths differ", label)
	}
	for m := range a.Assign {
		if a.Assign[m] != b.Assign[m] {
			t.Fatalf("%s: message %d assigned to round %d vs %d", label, m, a.Assign[m], b.Assign[m])
		}
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("%s: %d rounds vs %d", label, len(a.Rounds), len(b.Rounds))
	}
	for r := range a.Rounds {
		ra, rb := a.Rounds[r], b.Rounds[r]
		if ra.Start != rb.Start || ra.Duration != rb.Duration || ra.BeaconNTX != rb.BeaconNTX {
			t.Fatalf("%s: round %d %+v vs %+v", label, r, ra, rb)
		}
		if len(ra.Slots) != len(rb.Slots) {
			t.Fatalf("%s: round %d slot counts differ", label, r)
		}
		for i := range ra.Slots {
			if ra.Slots[i] != rb.Slots[i] {
				t.Fatalf("%s: round %d slot %d %+v vs %+v", label, r, i, ra.Slots[i], rb.Slots[i])
			}
		}
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("%s: task counts differ", label)
	}
	for id, ta := range a.Tasks {
		if tb, ok := b.Tasks[id]; !ok || ta != tb {
			t.Fatalf("%s: task %d timing %+v vs %+v", label, id, ta, b.Tasks[id])
		}
	}
}

// TestParallelSolveMatchesSequential is the determinism property test:
// over a corpus of random layered applications in both modes, solving
// with Workers = 1 and Workers = 4 must produce byte-identical schedules
// (or the same error class), and every schedule must pass the audit.
func TestParallelSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7031))
	solved := 0
	for trial := 0; trial < 25; trial++ {
		layers := 2 + rng.Intn(2)
		width := 1 + rng.Intn(3)
		g, err := apps.RandomLayered(layers, width, 2, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		sinks := g.Sinks()
		mk := func(workers int) *Problem {
			p := &Problem{
				App:       g,
				Params:    glossy.DefaultParams(),
				Diameter:  1 + rng.Intn(4),
				MaxNTX:    4 + rng.Intn(5),
				GreedyChi: rng.Intn(2) == 0,
				Workers:   workers,
			}
			if rng.Intn(2) == 0 {
				p.Mode = Soft
				p.SoftStat = glossy.BernoulliSoft{PerTX: 0.6 + 0.35*rng.Float64()}
				p.SoftCons = map[dag.TaskID]float64{}
				for _, s := range sinks {
					p.SoftCons[s] = 0.5 + 0.45*rng.Float64()
				}
			} else {
				p.Mode = WeaklyHard
				p.WHStat = glossy.SyntheticWH{}
				p.WHCons = map[dag.TaskID]wh.MissConstraint{}
				for _, s := range sinks {
					p.WHCons[s] = wh.MissConstraint{Misses: 10 + rng.Intn(25), Window: 40}
				}
			}
			return p
		}
		// The rng draws inside mk must be identical for both problems:
		// freeze them by building the sequential problem first and copying.
		seq := mk(1)
		par := &Problem{}
		*par = *seq
		par.Workers = 4

		sSeq, errSeq := Solve(seq)
		sPar, errPar := Solve(par)
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("trial %d: sequential err %v, parallel err %v", trial, errSeq, errPar)
		}
		if errSeq != nil {
			if errSeq.Error() != errPar.Error() {
				t.Fatalf("trial %d: error text diverged: %q vs %q", trial, errSeq, errPar)
			}
			continue
		}
		solved++
		sameSchedule(t, "trial", sSeq, sPar)
		if err := sSeq.Validate(g); err != nil {
			t.Fatalf("trial %d: audit failed: %v", trial, err)
		}
	}
	if solved == 0 {
		t.Fatal("no random instance was solvable; generator parameters degenerate")
	}
	t.Logf("determinism corpus: %d solved", solved)
}

// TestParallelSolveMatchesSequentialMIMO pins the paper-scale instance:
// the MIMO application has enough assignments for real contention on the
// incumbent, so any unsound pruning shows up here.
func TestParallelSolveMatchesSequentialMIMO(t *testing.T) {
	mk := func(workers, extraRounds int) *Problem {
		g, err := apps.MIMO(apps.DefaultMIMO())
		if err != nil {
			t.Fatal(err)
		}
		cons := make(map[dag.TaskID]wh.MissConstraint)
		for _, a := range apps.Actuators(g) {
			cons[a] = wh.MissConstraint{Misses: 24, Window: 40}
		}
		p := &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 4,
			Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
			GreedyChi: true, Workers: workers,
		}
		if extraRounds > 0 {
			lg, err := dag.NewLineGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			p.MaxRounds = lg.MinRounds() + extraRounds
		}
		return p
	}
	for _, extra := range []int{0, 1} {
		ref, err := Solve(mk(1, extra))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := Solve(mk(workers, extra))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			sameSchedule(t, "mimo", ref, got)
		}
	}
}

// TestParallelExploredCountsAllAssignments: pruned assignments still
// count, so Explored equals the full enumeration size regardless of
// worker count or pruning luck.
func TestParallelExploredCountsAllAssignments(t *testing.T) {
	g, err := apps.Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage3")
	mk := func(workers int) *Problem {
		return &Problem{
			App: g, Params: glossy.DefaultParams(), Diameter: 3,
			Mode:     Soft,
			SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
			SoftCons: map[dag.TaskID]float64{last.ID: 0.9},
			Workers:  workers,
		}
	}
	ref, err := Solve(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	lg, err := dag.NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	lg.EnumerateAssignments(lg.MinRounds()+DefaultExtraRounds, func([]int) bool { count++; return true })
	if ref.Explored != count {
		t.Fatalf("sequential Explored = %d, enumeration size %d", ref.Explored, count)
	}
	par, err := Solve(mk(6))
	if err != nil {
		t.Fatal(err)
	}
	if par.Explored != count {
		t.Errorf("parallel Explored = %d, enumeration size %d", par.Explored, count)
	}
}

// TestSolveRejectsNegativeWorkers: the knob is validated like the rest
// of the Problem.
func TestSolveRejectsNegativeWorkers(t *testing.T) {
	p, _ := softPipeline(t, 0.9)
	p.Workers = -2
	if _, err := Solve(p); err == nil {
		t.Error("negative Workers accepted")
	}
}

// TestSatisfiedAuditMismatchedSchedule is the regression test for the
// χ=0 panic: auditing a task whose predecessor messages the schedule
// does not cover must return ErrScheduleMismatch, not panic.
func TestSatisfiedAuditMismatchedSchedule(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")

	// A foreign (larger) application: its message IDs are absent from
	// the pipeline schedule.
	big, err := apps.Pipeline(5, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	bigLast, _ := big.TaskByName("stage4")
	pBig := &Problem{
		App: big, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{bigLast.ID: 0.9},
	}
	if _, err := SatisfiedSoft(pBig, s, bigLast.ID); !errors.Is(err, ErrScheduleMismatch) {
		t.Errorf("soft audit of mismatched schedule: %v, want ErrScheduleMismatch", err)
	}
	pBig.Mode = WeaklyHard
	pBig.WHStat = glossy.SyntheticWH{}
	if _, _, err := SatisfiedWH(pBig, s, bigLast.ID); !errors.Is(err, ErrScheduleMismatch) {
		t.Errorf("WH audit of mismatched schedule: %v, want ErrScheduleMismatch", err)
	}

	// A schedule with the right Assign vector but gutted rounds: the slot
	// lookup fails even though the assignment looks plausible.
	gutted := &Schedule{
		Mode:   s.Mode,
		Assign: append([]int(nil), s.Assign...),
		Tasks:  s.Tasks,
	}
	if _, err := SatisfiedSoft(p, gutted, last.ID); !errors.Is(err, ErrScheduleMismatch) {
		t.Errorf("soft audit of slotless schedule: %v, want ErrScheduleMismatch", err)
	}
	pWH, _ := whPipeline(t, wh.MissConstraint{Misses: 10, Window: 40})
	if _, _, err := SatisfiedWH(pWH, gutted, last.ID); !errors.Is(err, ErrScheduleMismatch) {
		t.Errorf("WH audit of slotless schedule: %v, want ErrScheduleMismatch", err)
	}
}
