package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netdag/netdag/internal/dag"
)

// Slot is one contention-free slot of a communication round: the Glossy
// flood carrying one unique-source message.
type Slot struct {
	Msg      dag.MsgID
	NTX      int   // χ(e)
	Width    int   // payload bytes
	Duration int64 // reserved duration, eq. (3) per-message term
}

// Round is one LWB communication round of the schedule: a beacon flood
// followed by the round's slots. Its reserved duration is the eq. (3)
// sum; during [Start, Start+Duration) no task may execute (eq. 5).
type Round struct {
	Index     int
	Start     int64
	Duration  int64
	BeaconNTX int // χ(r)
	Slots     []Slot
}

// TaskTime is the placement of one task in the timeline.
type TaskTime struct {
	Task   dag.TaskID
	Start  int64
	Finish int64 // Start + WCET; ζ(τ) in the paper's deadline reading
}

// Schedule is a complete NETDAG schedule — the tuple (ζ, χ, l) plus
// derived bookkeeping.
type Schedule struct {
	Mode     Mode
	Rounds   []Round // indexed by round (the assignment l)
	Tasks    map[dag.TaskID]TaskTime
	Assign   []int // l: message ID -> round index
	Makespan int64
	Optimal  bool  // the timing search proved makespan optimality for this (χ, l)
	BusTime  int64 // total time reserved for communication
	// EnergyPC is the per-node radio charge of one schedule execution in
	// picocoulombs under the problem's EnergyParams: every flood's
	// on-time charge plus sleep leakage over the rest of the makespan.
	// Exact integer accounting — the scalar the energy objective
	// minimizes — computed for every schedule regardless of objective.
	EnergyPC int64
	Explored int // round assignments examined by the outer search
	// SolverNodes is the branch-and-bound node count of the timing search
	// that produced the winning placement — an observability figure (the
	// netdag-serve metrics export it), not part of the schedule identity:
	// under a shared incumbent bound it varies with worker interleaving.
	SolverNodes int
}

// SlotNTX returns χ(e) for a message.
func (s *Schedule) SlotNTX(m dag.MsgID) (int, bool) {
	for _, r := range s.Rounds {
		for _, sl := range r.Slots {
			if sl.Msg == m {
				return sl.NTX, true
			}
		}
	}
	return 0, false
}

// RoundOf returns the round carrying message m.
func (s *Schedule) RoundOf(m dag.MsgID) (Round, bool) {
	if int(m) < 0 || int(m) >= len(s.Assign) {
		return Round{}, false
	}
	return s.Rounds[s.Assign[m]], true
}

// String renders a human-readable timeline.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s schedule: makespan %d µs, %d rounds, bus %d µs\n",
		s.Mode, s.Makespan, len(s.Rounds), s.BusTime)
	type event struct {
		start, end int64
		label      string
	}
	var evs []event
	for _, r := range s.Rounds {
		label := fmt.Sprintf("round %d (beacon χ=%d", r.Index, r.BeaconNTX)
		for _, sl := range r.Slots {
			label += fmt.Sprintf(", msg%d χ=%d", sl.Msg, sl.NTX)
		}
		label += ")"
		evs = append(evs, event{r.Start, r.Start + r.Duration, label})
	}
	for id, tt := range s.Tasks {
		evs = append(evs, event{tt.Start, tt.Finish, fmt.Sprintf("task %d", id)})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].start != evs[j].start {
			return evs[i].start < evs[j].start
		}
		return evs[i].label < evs[j].label
	})
	for _, e := range evs {
		fmt.Fprintf(&b, "  [%8d, %8d) %s\n", e.start, e.end, e.label)
	}
	return b.String()
}

// Validate re-checks the schedule against the paper's feasibility
// conditions (eq. 4 and 5) for the given application — an independent
// audit of the solver's output used by tests and the validation harness.
func (s *Schedule) Validate(app *dag.Graph) error {
	// (4a) task precedence.
	for _, t := range app.Tasks() {
		tt, ok := s.Tasks[t.ID]
		if !ok {
			return fmt.Errorf("core: task %q missing from schedule", t.Name)
		}
		if tt.Finish-tt.Start != t.WCET {
			return fmt.Errorf("core: task %q scheduled for %d µs, WCET %d", t.Name, tt.Finish-tt.Start, t.WCET)
		}
		for _, succ := range app.Succs(t.ID) {
			st := s.Tasks[succ]
			if st.Start < tt.Finish+1 {
				return fmt.Errorf("core: precedence violated: %q finishes %d, successor starts %d",
					t.Name, tt.Finish, st.Start)
			}
		}
	}
	// (4b) rounds are totally ordered by index.
	for i := 1; i < len(s.Rounds); i++ {
		prev, cur := s.Rounds[i-1], s.Rounds[i]
		if cur.Start < prev.Start+prev.Duration+1 {
			return fmt.Errorf("core: rounds %d and %d out of order or overlapping", i-1, i)
		}
	}
	// (4c) message producers finish before their round; consumers start
	// after it.
	for _, m := range app.Messages() {
		if int(m.ID) >= len(s.Assign) {
			return fmt.Errorf("core: message %d unassigned", m.ID)
		}
		r := s.Rounds[s.Assign[m.ID]]
		prod := s.Tasks[m.Source]
		if r.Start < prod.Finish+1 {
			return fmt.Errorf("core: message %d's round starts %d before producer finishes %d",
				m.ID, r.Start, prod.Finish)
		}
		for _, c := range m.Dests {
			ct := s.Tasks[c]
			if ct.Start < r.Start+r.Duration+1 {
				return fmt.Errorf("core: consumer of message %d starts %d inside/before round ending %d",
					m.ID, ct.Start, r.Start+r.Duration)
			}
		}
	}
	// (5) no task overlaps any round.
	for id, tt := range s.Tasks {
		for _, r := range s.Rounds {
			if tt.Start < r.Start+r.Duration+1 && r.Start < tt.Finish+1 {
				return fmt.Errorf("core: task %d [%d,%d) overlaps round %d [%d,%d)",
					id, tt.Start, tt.Finish, r.Index, r.Start, r.Start+r.Duration)
			}
		}
	}
	// Makespan covers everything.
	for _, tt := range s.Tasks {
		if tt.Finish > s.Makespan {
			return fmt.Errorf("core: task finishing %d exceeds makespan %d", tt.Finish, s.Makespan)
		}
	}
	for _, r := range s.Rounds {
		if r.Start+r.Duration > s.Makespan {
			return fmt.Errorf("core: round %d ends %d past makespan %d", r.Index, r.Start+r.Duration, s.Makespan)
		}
	}
	return nil
}
