package core

import (
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// paretoProblem builds an instance whose front genuinely trades: two
// independent sense→act chains with the second sensor released late.
// Merging both messages into one round saves a beacon (less charge) but
// makes the early chain wait out the late release; splitting into two
// rounds pipelines the early chain at the price of a second beacon.
func paretoProblem(t testing.TB, workers int) *Problem {
	t.Helper()
	g := dag.New()
	s0 := g.MustAddTask("sense0", "n0", 400)
	a0 := g.MustAddTask("act0", "n1", 5000)
	s1 := g.MustAddTask("sense1", "n2", 400)
	a1 := g.MustAddTask("act1", "n3", 300)
	g.MustConnect(s0, a0, 8)
	g.MustConnect(s1, a1, 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{},
		WHCons: map[dag.TaskID]wh.MissConstraint{
			a0: {Misses: 12, Window: 40},
			a1: {Misses: 12, Window: 40},
		},
		ReleaseTimes: map[dag.TaskID]int64{s1: 8000},
		MaxRounds:    2,
		Objective:    ObjectivePareto,
		Workers:      workers,
	}
}

// assertValidFront checks the structural invariants every front must
// satisfy: non-empty, strictly ascending makespan, strictly descending
// energy (the O(n²) non-domination check), feasible schedules.
func assertValidFront(t *testing.T, p *Problem, front []ParetoPoint) {
	t.Helper()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i, pt := range front {
		if pt.Sched == nil {
			t.Fatalf("point %d has no schedule", i)
		}
		if err := pt.Sched.Validate(p.App); err != nil {
			t.Errorf("point %d fails feasibility audit: %v", i, err)
		}
		if pt.Makespan != pt.Sched.Makespan || pt.EnergyPC != pt.Sched.EnergyPC {
			t.Errorf("point %d (%d, %d) disagrees with its schedule (%d, %d)",
				i, pt.Makespan, pt.EnergyPC, pt.Sched.Makespan, pt.Sched.EnergyPC)
		}
	}
	// O(n²) non-domination: no point is weakly dominated by another.
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			if b.Makespan <= a.Makespan && b.EnergyPC <= a.EnergyPC {
				t.Errorf("point %d (%d, %d) dominated by point %d (%d, %d)",
					i, a.Makespan, a.EnergyPC, j, b.Makespan, b.EnergyPC)
			}
		}
	}
	for i := 1; i < len(front); i++ {
		if front[i].Makespan <= front[i-1].Makespan {
			t.Errorf("front not in ascending makespan order: %d then %d",
				front[i-1].Makespan, front[i].Makespan)
		}
	}
}

func TestParetoFrontEndpoints(t *testing.T) {
	p := paretoProblem(t, 1)
	front, err := ParetoFront(p)
	if err != nil {
		t.Fatal(err)
	}
	assertValidFront(t, p, front)
	if len(front) < 2 {
		t.Fatalf("front has %d point(s); the staggered instance is built to trade", len(front))
	}

	// Left end: the makespan optimum.
	pm := paretoProblem(t, 1)
	pm.Objective = ObjectiveMakespan
	sm, err := Solve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if front[0].Makespan != sm.Makespan {
		t.Errorf("front's left end %d is not the makespan optimum %d", front[0].Makespan, sm.Makespan)
	}
	// Right end: the energy optimum.
	pe := paretoProblem(t, 1)
	pe.Objective = ObjectiveEnergy
	se, err := Solve(pe)
	if err != nil {
		t.Fatal(err)
	}
	last := front[len(front)-1]
	if last.EnergyPC != se.EnergyPC || last.Makespan != se.Makespan {
		t.Errorf("front's right end (%d, %d) is not the energy optimum (%d, %d)",
			last.Makespan, last.EnergyPC, se.Makespan, se.EnergyPC)
	}
	t.Logf("front: %d points, makespan [%d, %d], energy [%d, %d] pC",
		len(front), front[0].Makespan, last.Makespan, last.EnergyPC, front[0].EnergyPC)
}

func TestParetoFrontDeterministicAcrossWorkers(t *testing.T) {
	ref, err := ParetoFront(paretoProblem(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		front, err := ParetoFront(paretoProblem(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(front) != len(ref) {
			t.Fatalf("workers=%d: %d points, sequential reference %d", workers, len(front), len(ref))
		}
		for i := range front {
			if front[i].Makespan != ref[i].Makespan || front[i].EnergyPC != ref[i].EnergyPC {
				t.Errorf("workers=%d point %d: (%d, %d), reference (%d, %d)", workers, i,
					front[i].Makespan, front[i].EnergyPC, ref[i].Makespan, ref[i].EnergyPC)
			}
			for m := range front[i].Sched.Assign {
				if front[i].Sched.Assign[m] != ref[i].Sched.Assign[m] {
					t.Errorf("workers=%d point %d: message %d in round %d, reference %d", workers, i,
						m, front[i].Sched.Assign[m], ref[i].Sched.Assign[m])
				}
			}
		}
	}
}

func TestParetoFrontHonorsMakespanCap(t *testing.T) {
	full, err := ParetoFront(paretoProblem(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("front has %d point(s); the staggered instance is built to trade", len(full))
	}
	// Capping at the second point's makespan must drop the points above it
	// and keep the rest, unchanged.
	p := paretoProblem(t, 1)
	p.MakespanCap = full[1].Makespan
	capped, err := ParetoFront(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("capped front has %d points, want 2", len(capped))
	}
	for i := range capped {
		if capped[i].Makespan != full[i].Makespan || capped[i].EnergyPC != full[i].EnergyPC {
			t.Errorf("capped point %d (%d, %d) differs from full front's (%d, %d)", i,
				capped[i].Makespan, capped[i].EnergyPC, full[i].Makespan, full[i].EnergyPC)
		}
	}
}

func TestParetoFrontSinglePointInstance(t *testing.T) {
	// A single-message pipeline has one round in every schedule: the
	// energy and makespan optima coincide and the front is one point.
	g, err := apps.Pipeline(2, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage1")
	p := &Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode: Soft, SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons:  map[dag.TaskID]float64{last.ID: 0.9},
		Objective: ObjectivePareto,
	}
	front, err := ParetoFront(p)
	if err != nil {
		t.Fatal(err)
	}
	assertValidFront(t, p, front)
	if len(front) != 1 {
		t.Errorf("single-round instance should have a one-point front, got %d points", len(front))
	}
}
