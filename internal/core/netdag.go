package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/portfolio"
	"github.com/netdag/netdag/internal/solver"
	"github.com/netdag/netdag/internal/wh"
)

// Schedule computes a feasible (soft or weakly-hard) real-time schedule
// minimizing makespan. The search decomposes as the paper's SMT encoding
// does implicitly:
//
//  1. enumerate admissible assignments l of messages to rounds
//     (topological partial orders of the line graph, eq. 2);
//  2. per assignment, choose χ minimizing total reserved bus time
//     subject to the task-level constraints (eq. 6 / eq. 10);
//  3. per (l, χ), place tasks and rounds exactly (branch and bound over
//     the eq. 4/5 conditions) and keep the best makespan.
//
// Rounds act as global blackout windows, so total bus time dominates the
// communication contribution to makespan; step 2's objective makes the
// decomposition makespan-minimal in all but adversarial corner cases
// (the A3 ablation quantifies this against exhaustive search on small
// instances).
func Solve(p *Problem) (*Schedule, error) {
	return SolveContext(context.Background(), p)
}

// ErrCanceled reports that SolveContext's context expired before the
// search completed. When any feasible schedule had already been found,
// SolveContext returns it alongside ErrCanceled with Optimal = false —
// the incumbent is usable, just not proven makespan-minimal — so
// deadline-bound callers (the -deadline CLI flags, netdag-serve) can
// still act on the best-so-far.
var ErrCanceled = errors.New("core: solve canceled before the search completed")

// SolveContext is Solve with cooperative cancellation: the context is
// polled in the outer enumeration over round assignments (both the
// sequential loop and the parallel producer/workers) and inside the
// per-assignment branch-and-bound timing search. On expiry it returns
// (incumbent, ErrCanceled) — the incumbent being the best schedule found
// so far with Optimal = false, or nil when none was reached in time.
//
// A canceled run forfeits the determinism guarantee of the complete
// search: which incumbent is in hand when the deadline strikes depends
// on timing. Everything the incumbent claims about itself (feasibility,
// constraint satisfaction) still holds.
func SolveContext(ctx context.Context, p *Problem) (*Schedule, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	lg, err := dag.NewLineGraph(p.App)
	if err != nil {
		return nil, err
	}
	maxRounds := p.MaxRounds
	if maxRounds == 0 {
		maxRounds = lg.MinRounds() + DefaultExtraRounds
	}
	if maxRounds < lg.MinRounds() {
		return nil, fmt.Errorf("core: MaxRounds %d below the line graph's minimum %d", maxRounds, lg.MinRounds())
	}
	s := newSearch(ctx, p, lg, maxRounds)
	workers := p.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var best *candidate
	var explored int
	var firstErr *searchErr
	if workers <= 1 {
		best, explored, firstErr = s.runSequential()
	} else {
		best, explored, firstErr = s.runParallel(workers)
	}
	// A solve is canceled only if the expiry actually cut the search short
	// (s.interrupted). Re-polling ctx here would misreport a search that
	// ran to completion just before its deadline as canceled — demoting a
	// proven-optimal schedule to a non-cacheable incumbent.
	canceled := s.interrupted.Load()
	if best == nil && !canceled && p.WarmMakespan > 0 {
		// The warm hint excluded every assignment: either the delta'd
		// optimum regressed past the previous makespan, or the instance is
		// infeasible. The answer (schedule or error) must not depend on the
		// hint, so redo the whole search cold — WarmMakespan is an
		// optimization, never a constraint.
		s = newSearch(ctx, p, lg, maxRounds)
		s.warm = 0
		if workers <= 1 {
			best, explored, firstErr = s.runSequential()
		} else {
			best, explored, firstErr = s.runParallel(workers)
		}
		canceled = s.interrupted.Load()
	}
	if best == nil {
		if canceled {
			return nil, ErrCanceled
		}
		if firstErr != nil {
			return nil, firstErr.err
		}
		return nil, fmt.Errorf("%w: no admissible round assignment", ErrUnsat)
	}
	best.sched.Explored = explored
	if canceled {
		best.sched.Optimal = false
		return best.sched, ErrCanceled
	}
	return best.sched, nil
}

// search carries the state shared by the sequential and parallel outer
// searches over round assignments: the problem, the line graph, and the
// precomputed per-message χ floors that tighten the admissibility lower
// bound.
type search struct {
	ctx       context.Context
	p         *Problem
	lg        *dag.LineGraph
	maxRounds int
	cpWCET    int64
	// interrupted records that the context's expiry was actually observed
	// at a poll point — the enumeration or a timing search was cut short.
	// A search that ran to completion stays uninterrupted even if the
	// context expires at the finish line.
	interrupted atomic.Bool
	// chiFloor[m] is a lower bound on χ for message m's slot in any
	// feasible schedule. In weakly-hard mode it comes from the per-flood
	// guarantee-window requirements (minNTXForWindow over every
	// constrained task the message feeds); in soft mode it is 1.
	chiFloor []int
	// slotFloor is the assignment-independent part of the bus-time lower
	// bound: every message slot at its χ floor.
	slotFloor int64
	// chargeFloor is the assignment-independent part of the energy lower
	// bound: every message flood's charge at its χ floor (the same floors
	// that make slotFloor admissible make chargeFloor admissible, since
	// flood charge is strictly increasing in χ).
	chargeFloor int64
	// warm is Problem.WarmMakespan: a virtual incumbent (warm, idx +∞)
	// active until the first real schedule is found. SolveContext clears
	// it for the cold redo when the hint excluded every assignment.
	warm int64
}

// candidate is a schedule paired with its position in the deterministic
// enumeration order, the tie-break of the parallel reduction.
type candidate struct {
	sched *Schedule
	idx   int
}

// searchErr is an error paired with its enumeration position so the
// parallel search reports the same "first" error the sequential one does.
type searchErr struct {
	idx int
	err error
}

func newSearch(ctx context.Context, p *Problem, lg *dag.LineGraph, maxRounds int) *search {
	s := &search{
		ctx:       ctx,
		p:         p,
		lg:        lg,
		maxRounds: maxRounds,
		cpWCET:    p.App.CriticalPathWCET(),
		chiFloor:  make([]int, p.App.NumMessages()),
		warm:      p.WarmMakespan,
	}
	for m := range s.chiFloor {
		s.chiFloor[m] = p.MinNTX
	}
	if p.Mode == WeaklyHard && !p.NoChiFloors {
		// chiFloor[m] must be the strongest window floor demanded by any
		// constrained task m can affect. Instead of one ancestor walk per
		// constrained task — O(K·graph), and a rate-r unrolling multiplies
		// K by r — a single reverse-topological DP computes up[t], the
		// maximum floor over constrained tasks reachable from t via data
		// edges (t included), and each message takes the max over its
		// consumers. Identical floors to the per-task walks: m is an
		// ancestor of τ exactly when some consumer of m reaches τ over
		// data edges.
		up := make([]int, p.App.NumTasks())
		for _, t := range p.App.Tasks() {
			target, has := p.WHCons[t.ID]
			if !has || target.Trivial() {
				continue
			}
			minN := p.windowFloor[target.Window]
			if minN < 0 {
				// The instance is unsat; scheduleForAssignment reports it
				// with the offending task. Clamp so the bound stays valid.
				minN = p.MaxNTX
			}
			up[t.ID] = minN
		}
		// The application validated, so a topological order exists.
		order, _ := p.App.TopoOrder()
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			for _, succ := range p.App.Succs(id) {
				if p.App.OrderOnly(id, succ) {
					continue
				}
				if up[succ] > up[id] {
					up[id] = up[succ]
				}
			}
		}
		for _, m := range p.App.Messages() {
			for _, d := range m.Dests {
				if up[d] > s.chiFloor[m.ID] {
					s.chiFloor[m.ID] = up[d]
				}
			}
		}
	}
	for _, m := range p.App.Messages() {
		s.slotFloor += p.Params.SlotDuration(s.chiFloor[m.ID], m.Width, p.Diameter)
		s.chargeFloor += p.chargeByWidth[m.Width][s.chiFloor[m.ID]-1]
	}
	return s
}

// lowerBound is the cheap per-assignment makespan bound: rounds are
// global blackouts, so the makespan is at least the critical-path WCET
// plus the cheapest possible bus time, with every flood at its χ floor.
// Beacons inherit the floor of the messages sharing their round, since
// the weakly-hard window requirement applies to every predecessor flood
// (eq. 10), beacons included.
func (s *search) lowerBound(assign []int) int64 {
	rounds := 0
	for _, r := range assign {
		if r+1 > rounds {
			rounds = r + 1
		}
	}
	lb := s.cpWCET + s.slotFloor
	beacon := make([]int, rounds)
	for m, r := range assign {
		if s.chiFloor[m] > beacon[r] {
			beacon[r] = s.chiFloor[m]
		}
	}
	for r := 0; r < rounds; r++ {
		n := beacon[r]
		if n < s.p.MinNTX {
			n = s.p.MinNTX
		}
		lb += s.p.Params.BeaconDuration(n, s.p.Diameter)
	}
	return lb
}

// energyLowerBound is the cheap per-assignment energy bound, the
// admissibility counterpart of lowerBound under ObjectiveEnergy: every
// message flood at its χ-floor charge (chargeFloor), every round beacon
// at the floor inherited from the messages sharing its round, plus sleep
// leakage over the critical-path WCET — rounds are global blackouts, so
// at least cpWCET µs of computation happen with the radio off. Flood
// charge is strictly increasing in χ (see floodChargePC), so raising any
// flood above its floor only adds charge: the bound never exceeds the
// energy of any feasible schedule for this assignment.
func (s *search) energyLowerBound(assign []int) int64 {
	rounds := 0
	for _, r := range assign {
		if r+1 > rounds {
			rounds = r + 1
		}
	}
	lb := s.chargeFloor + s.cpWCET*s.p.EnergyParams.SleepCurrentUA
	beacon := make([]int, rounds)
	for m, r := range assign {
		if s.chiFloor[m] > beacon[r] {
			beacon[r] = s.chiFloor[m]
		}
	}
	beaconCharge := s.p.chargeByWidth[s.p.Params.BeaconWidth]
	for r := 0; r < rounds; r++ {
		n := beacon[r]
		if n < s.p.MinNTX {
			n = s.p.MinNTX
		}
		lb += beaconCharge[n-1]
	}
	return lb
}

// prunable reports whether an assignment with the given lower bound and
// enumeration index provably cannot beat the incumbent under the total
// order (makespan, then enumeration index): its bound exceeds the
// incumbent makespan, or matches it without winning the index tie.
func prunable(lb int64, idx int, incMakespan int64, incIdx int) bool {
	return lb > incMakespan || (lb >= incMakespan && idx > incIdx)
}

// assignBound is the shared outer prune point: it decides whether the
// assignment can be skipped outright — its makespan bound exceeds the
// hard MakespanCap, or it provably cannot beat the incumbent under the
// objective's total order — and otherwise returns the incumbent scalar
// (makespan under ObjectiveMakespan, energy pC under ObjectiveEnergy) to
// feed the timing search as scheduleForAssignment's bound (-1 for none).
//
// Under ObjectiveEnergy the incumbent prune must be strict on energy
// alone: an equal-energy candidate can still win on smaller makespan, so
// the index tie-break only applies when both bounds match the incumbent.
// The NoEnergyBound ablation skips the incumbent-derived pruning
// entirely (the cap, being a hard constraint, always applies).
func (s *search) assignBound(assign []int, idx int, inc *incumbentRec) (prune bool, bound int64) {
	if inc == nil && s.p.MakespanCap <= 0 {
		return false, -1
	}
	mlb := s.lowerBound(assign)
	if s.p.MakespanCap > 0 && mlb > s.p.MakespanCap {
		return true, -1
	}
	if inc == nil {
		return false, -1
	}
	if s.p.Objective == ObjectiveEnergy {
		if s.p.NoEnergyBound {
			return false, -1
		}
		elb := s.energyLowerBound(assign)
		if elb > inc.energy ||
			(elb >= inc.energy && (mlb > inc.makespan || (mlb >= inc.makespan && idx > inc.idx))) {
			return true, -1
		}
		return false, inc.energy
	}
	if prunable(mlb, idx, inc.makespan, inc.idx) {
		return true, -1
	}
	return false, inc.makespan
}

// runSequential is the Workers = 1 search: enumerate assignments in
// order, prune against the running best, and keep the first schedule
// achieving the minimum makespan.
func (s *search) runSequential() (*candidate, int, *searchErr) {
	var best *candidate
	explored := 0
	var firstErr *searchErr
	s.lg.EnumerateAssignments(s.maxRounds, func(l []int) bool {
		if s.ctx.Err() != nil {
			s.interrupted.Store(true)
			return false // canceled: stop enumerating, keep the incumbent
		}
		idx := explored
		explored++
		var inc *incumbentRec
		if best != nil {
			inc = &incumbentRec{energy: best.sched.EnergyPC, makespan: best.sched.Makespan, idx: best.idx}
		} else if s.warm > 0 {
			// Virtual incumbent (warm, +∞): prune exactly what a real
			// incumbent at the warm makespan would (the index tie-break
			// never fires against +∞), and cap the timing search likewise.
			// Everything pruned here has optimum > warm ≥ the previous
			// schedule, so it cannot win a cold search whose optimum is
			// ≤ warm; when no assignment survives, SolveContext redoes the
			// search cold. (Warm hints only exist under ObjectiveMakespan;
			// normalize clears them otherwise.)
			inc = &incumbentRec{energy: math.MaxInt64, makespan: s.warm, idx: math.MaxInt}
		}
		prune, bound := s.assignBound(l, idx, inc)
		if prune {
			return true
		}
		assign := append([]int(nil), l...)
		sched, err := s.p.scheduleForAssignment(s.ctx, assign, bound)
		if err != nil {
			if errors.Is(err, solver.ErrCanceled) {
				s.interrupted.Store(true)
			}
			if !skippableSearchErr(err) && firstErr == nil {
				firstErr = &searchErr{idx: idx, err: err}
			}
			return true
		}
		if !sched.Optimal && s.ctx.Err() != nil {
			// The timing search kept an incumbent but was cut short.
			s.interrupted.Store(true)
		}
		if best == nil || s.p.betterCand(sched.EnergyPC, sched.Makespan, idx,
			best.sched.EnergyPC, best.sched.Makespan, best.idx) {
			best = &candidate{sched: sched, idx: idx}
		}
		return true
	})
	return best, explored, firstErr
}

// predFloods returns, for a task's cached ancestor messages, the flood
// indices of pred(τ): the messages plus the beacons of the rounds
// carrying them. Flood indexing: messages occupy 0..M-1 (by MsgID),
// beacons occupy M..M+R-1 (by round index). The list is canonical —
// messages in MsgID order, then beacons in round order — NOT in the
// interleaved order a MsgAncestors walk would visit them. Canonicality
// matters for the symmetry machinery: the χ solver breaks score ties by
// list position, and under the interleaved order two round assignments
// in the same interchange orbit would render the same constraint with
// its beacons in different positions, letting the solver pick different
// χ vectors for instances that are identical as sets. With the
// canonical order the orbit's χ instances are literally identical, so
// the solved vector is too — the fact dominatedAssignment and the
// per-orbit χ memo rely on.
func predFloods(msgs []dag.MsgID, assign []int, nMsgs int) []int {
	floods := make([]int, len(msgs), 2*len(msgs))
	for i, m := range msgs {
		floods[i] = int(m)
	}
	var rounds []int
	for _, m := range msgs {
		r := assign[m]
		dup := false
		for _, seen := range rounds {
			if seen == r {
				dup = true
				break
			}
		}
		if !dup {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		floods = append(floods, nMsgs+r)
	}
	return floods
}

// errBoundPruned reports that the timing search was cut off by the
// incumbent makespan bound: the assignment provably cannot beat the best
// schedule already found. This is a pruning outcome, not a failure, and
// must never surface to Solve's caller.
var errBoundPruned = errors.New("core: assignment pruned by the incumbent makespan bound")

// errDominated reports that the assignment is a symmetry duplicate of an
// earlier-enumerated one (see dominatedAssignment). Like errBoundPruned
// it is a pruning outcome internal to the search.
var errDominated = errors.New("core: assignment dominated under flood-slot interchange")

// skippableSearchErr reports whether a per-assignment error must not be
// recorded as the search's first error: bound prunes and symmetry skips
// are normal search outcomes, and a cancellation that struck before the
// assignment yielded any schedule is reported once at the SolveContext
// level, not per assignment (its position in the enumeration is
// timing-dependent).
func skippableSearchErr(err error) bool {
	return err == errBoundPruned || err == errDominated || errors.Is(err, solver.ErrCanceled)
}

// scheduleForAssignment runs steps 2 and 3 for one round assignment.
// bound, when >= 0, is the makespan of the best schedule found so far; it
// is fed to the timing search as an upper bound so hopeless branches are
// cut early. A bound-induced dead end returns errBoundPruned.
func (p *Problem) scheduleForAssignment(ctx context.Context, assign []int, bound int64) (*Schedule, error) {
	app := p.App
	msgs := p.msgs
	nMsgs := len(msgs)
	rounds := 0
	for _, r := range assign {
		if r+1 > rounds {
			rounds = r + 1
		}
	}
	nFloods := nMsgs + rounds

	// Per-orbit χ memo: with canonical predFloods ordering, every member
	// of an interchange orbit builds the literally identical χ instance
	// (see symmetry.go), so the solved vector — or the solve's error — is
	// a pure function of the orbit. The orbit is keyed by the canonical
	// assignment; a non-representative member that finds the entry skips
	// the χ search entirely, which is the dominant per-assignment cost on
	// multi-rate instances. The sequential search always hits (the
	// representative enumerates earlier and the admissibility bound is
	// orbit-invariant, so it was solved first); a parallel worker that
	// races ahead of the representative just misses and solves the same
	// instance itself — identical results either way.
	var memoKey string
	if p.chiMemo != nil {
		if key, rep, ok := p.canonicalAssignKey(assign); ok {
			memoKey = key
			if !rep {
				if v, hit := p.chiMemo.Load(key); hit {
					ent := v.(chiMemoEntry)
					if ent.err != nil {
						return nil, ent.err
					}
					if p.dominatedAssignment(assign, ent.chi) {
						return nil, errDominated
					}
					return p.place(ctx, assign, ent.chi, rounds, bound)
				}
			}
		}
	}

	// Per-flood tables alias the normalize-time caches: the deficit
	// column is flood-independent and the cost column depends only on
	// width, so one solve's assignments share the same few read-only
	// slices instead of allocating O(floods × MaxNTX) per assignment.
	// The χ covering search minimizes the objective's scalarization of
	// bus reservations: slot durations under ObjectiveMakespan, exact
	// flood charges under ObjectiveEnergy (both columns are increasing
	// in χ, which the covering solver requires).
	costTab := p.costByWidth
	if p.Objective == ObjectiveEnergy {
		costTab = p.chargeByWidth
	}
	ci := &chiInstance{
		n:     nFloods,
		upper: p.MaxNTX,
		lower: make([]int, nFloods),
		def:   make([][]float64, nFloods),
		cost:  make([][]int64, nFloods),
	}
	ci.cons = make([]chiConstraint, 0, len(p.SoftCons)+len(p.WHCons))
	beaconCost := costTab[p.Params.BeaconWidth]
	for f := 0; f < nFloods; f++ {
		ci.lower[f] = p.MinNTX
		ci.def[f] = p.defCol
		if f < nMsgs {
			ci.cost[f] = costTab[msgs[f].Width]
		} else {
			ci.cost[f] = beaconCost
		}
	}

	// Task-level constraints become covering constraints; weakly-hard
	// constraints additionally impose per-flood window lower bounds.
	// Iterate tasks in ID order (not map order) so the covering
	// constraints — and therefore any cost ties inside the χ search —
	// are deterministic across runs.
	switch p.Mode {
	case Soft:
		for _, task := range app.Tasks() {
			id := task.ID
			target, has := p.SoftCons[id]
			if !has {
				continue
			}
			floods := predFloods(p.ancestors[id], assign, nMsgs)
			if len(floods) == 0 || target <= 0 {
				continue // trivially satisfied: no networked dependencies
			}
			if target >= 1 {
				return nil, fmt.Errorf("%w: task %q demands probability 1 over a lossy bus",
					ErrUnsat, app.Task(id).Name)
			}
			ci.cons = append(ci.cons, chiConstraint{
				task:   app.Task(id).Name,
				floods: floods,
				budget: -math.Log(target),
			})
		}
	case WeaklyHard:
		for _, task := range app.Tasks() {
			id := task.ID
			target, has := p.WHCons[id]
			if !has {
				continue
			}
			floods := predFloods(p.ancestors[id], assign, nMsgs)
			if len(floods) == 0 || target.Trivial() {
				continue
			}
			// Window bound: every predecessor flood's guarantee window
			// must cover the requirement's (the ⊕ window is the minimum
			// over predecessors, and eq. 10 needs it >= F.Window).
			minN := p.windowFloor[target.Window]
			if minN < 0 {
				return nil, fmt.Errorf("%w: task %q needs a %d-round guarantee window; statistic cannot provide it within MaxNTX=%d",
					ErrUnsat, app.Task(id).Name, target.Window, p.MaxNTX)
			}
			for _, f := range floods {
				if minN > ci.lower[f] {
					ci.lower[f] = minN
				}
			}
			ci.cons = append(ci.cons, chiConstraint{
				task:   app.Task(id).Name,
				floods: floods,
				budget: float64(target.Misses),
			})
		}
	}

	chi, err := ci.solve(p.GreedyChi)
	if memoKey != "" {
		p.chiMemo.LoadOrStore(memoKey, chiMemoEntry{chi: chi, err: err})
	}
	if err != nil {
		return nil, err
	}

	if len(p.iclasses) > 0 && p.dominatedAssignment(assign, chi) {
		return nil, errDominated
	}

	return p.place(ctx, assign, chi, rounds, bound)
}

// minNTXForWindow returns the smallest n with λ_WH(n).Window >= w.
func (p *Problem) minNTXForWindow(w int) (int, bool) {
	for n := 1; n <= p.MaxNTX; n++ {
		if p.WHStat.MissConstraint(n).Window >= w {
			return n, true
		}
	}
	return 0, false
}

// place runs the exact timing search for fixed (l, χ) and assembles the
// Schedule. bound, when >= 0, is the incumbent's scalar under the active
// objective — a makespan under ObjectiveMakespan (applied directly via
// solver.MakespanBound), an energy in pC under ObjectiveEnergy (translated
// into a derived makespan cap below) — so the branch-and-bound is cut off
// by schedules already found for other assignments; a search the bound
// renders infeasible returns errBoundPruned. Problem.MakespanCap, the hard
// feasibility cap the Pareto sweep constrains with, is applied on top.
// When the node budget truncates a search under the *incumbent-derived*
// bound, the search is redone without it: the bound value depends on which
// worker found the incumbent first, and a truncated result must not, or
// parallel runs would stop being reproducible (MakespanCap is part of the
// problem, not a racing artifact, so the redo keeps it). A canceled search
// is never redone; its incumbent (if any) is returned as a non-optimal
// schedule.
func (p *Problem) place(ctx context.Context, assign, chi []int, rounds int, bound int64) (*Schedule, error) {
	app := p.App
	msgs := p.msgs
	nMsgs := len(msgs)

	// Round durations per eq. (3): beacon term + slot terms.
	roundDur := make([]int64, rounds)
	roundSlots := make([][]Slot, rounds)
	for r := 0; r < rounds; r++ {
		roundDur[r] = p.Params.BeaconDuration(chi[nMsgs+r], p.Diameter)
	}
	for _, m := range msgs {
		r := assign[m.ID]
		d := p.Params.SlotDuration(chi[m.ID], m.Width, p.Diameter)
		roundDur[r] += d
		roundSlots[r] = append(roundSlots[r], Slot{
			Msg: m.ID, NTX: chi[m.ID], Width: m.Width, Duration: d,
		})
	}

	// The timing search minimizes makespan. Under ObjectiveEnergy that is
	// still the right inner objective: for fixed (l, χ) the radio-on
	// charge onCharge is a constant, so energy = onCharge +
	// SleepCurrentUA·(makespan − onUS) is monotone non-decreasing in
	// makespan and the makespan-minimal placement is the energy-minimal
	// one. The incumbent energy bound translates into a derived makespan
	// cap: energy ≤ bound ⇔ makespan ≤ onUS + (bound − onCharge)/sleep
	// (floor division keeps the cap inclusive-safe: any makespan at or
	// under it has energy ≤ bound).
	mk := bound // incumbent-derived makespan cap; -1 for none
	if bound >= 0 && p.Objective == ObjectiveEnergy {
		var onUS, onCharge int64
		for r := 0; r < rounds; r++ {
			onUS += roundDur[r]
			onCharge += p.floodChargePC(chi[nMsgs+r], p.Params.BeaconWidth)
		}
		for _, m := range msgs {
			onCharge += p.floodChargePC(chi[m.ID], m.Width)
		}
		switch {
		case onCharge > bound:
			// Radio-on charge alone already exceeds the incumbent energy:
			// no placement of this (l, χ) can win.
			return nil, errBoundPruned
		case p.EnergyParams.SleepCurrentUA > 0:
			mk = onUS + (bound-onCharge)/p.EnergyParams.SleepCurrentUA
		default:
			// Zero sleep current: every placement of this (l, χ) costs
			// exactly onCharge ≤ bound — nothing to cut on makespan.
			mk = -1
		}
	}
	eff := mk
	if p.MakespanCap > 0 && (eff < 0 || p.MakespanCap < eff) {
		eff = p.MakespanCap
	}

	prob := solver.NewProblem(1)
	// TaskIDs are dense indices, so a slice beats a map on the
	// per-assignment hot path (place runs once per enumerated round
	// assignment, and every precedence/disjunction below consults it).
	taskAct := make([]solver.ActID, app.NumTasks())
	for _, t := range app.Tasks() {
		taskAct[t.ID] = prob.AddActivity(t.Name, t.WCET)
	}
	roundAct := make([]solver.ActID, rounds)
	for r := 0; r < rounds; r++ {
		roundAct[r] = prob.AddActivity(fmt.Sprintf("round%d", r), roundDur[r])
	}
	// (4a) task precedence.
	for _, t := range app.Tasks() {
		for _, s := range app.Succs(t.ID) {
			prob.Precede(taskAct[t.ID], taskAct[s])
		}
	}
	// (4b) rounds totally ordered.
	for r := 1; r < rounds; r++ {
		prob.Precede(roundAct[r-1], roundAct[r])
	}
	// (4c) producers before the round; consumers after.
	for _, m := range msgs {
		r := assign[m.ID]
		prob.Precede(taskAct[m.Source], roundAct[r])
		for _, c := range m.Dests {
			prob.Precede(roundAct[r], taskAct[c])
		}
	}
	// (5) tasks never overlap communication.
	for _, t := range app.Tasks() {
		for r := 0; r < rounds; r++ {
			prob.Disjoint(taskAct[t.ID], roundAct[r])
		}
	}
	// Task-level deadlines and release times (ζ constraints).
	for id, d := range p.Deadlines {
		prob.Deadline(taskAct[id], d)
	}
	for id, rel := range p.ReleaseTimes {
		prob.Release(taskAct[id], rel)
	}
	if eff >= 0 {
		prob.MakespanBound(eff)
	}
	var res solver.Result
	var err error
	if p.GreedyPlacement {
		res, err = prob.Greedy()
		if errors.Is(err, solver.ErrBounded) {
			return nil, errBoundPruned
		}
	} else {
		if p.Portfolio {
			// Race the strategy portfolio instead of the single canonical
			// search. The rounds form the blackout chain the path-based
			// bound reasons over, and the deterministic reconstruction
			// inside portfolio.Minimize keeps the result — including
			// Starts and Nodes — bit-identical to MinimizeContext's, so
			// everything downstream (error mapping, redo-without-bound,
			// schedule assembly) is shared with the single-strategy path.
			prob.SetBlackoutChain(roundAct)
			res, _, err = portfolio.Minimize(ctx, prob, p.SolverNodes, portfolio.Options{
				Seed:      p.PortfolioSeed,
				PathBound: true,
			})
		} else {
			res, err = prob.MinimizeContext(ctx, p.SolverNodes)
		}
		canceled := errors.Is(err, solver.ErrCanceled)
		if canceled && res.Makespan >= 0 {
			// Cancellation struck after a feasible placement was found:
			// keep the incumbent (Optimal is already false). Within a
			// bound it genuinely competes against the shared incumbent.
			err = nil
		}
		if eff >= 0 && errors.Is(err, solver.ErrBounded) {
			return nil, errBoundPruned
		}
		if mk >= 0 && !canceled && (errors.Is(err, solver.ErrBudget) || (err == nil && !res.Optimal)) {
			// Redo without the incumbent-derived bound only: the
			// MakespanCap, being deterministic, stays via eff.
			return p.place(ctx, assign, chi, rounds, -1)
		}
	}
	if errors.Is(err, solver.ErrCanceled) {
		return nil, err
	}
	if err != nil {
		return nil, fmt.Errorf("core: timing search failed: %w", err)
	}

	sched := &Schedule{
		Mode:   p.Mode,
		Tasks:  make(map[dag.TaskID]TaskTime, app.NumTasks()),
		Assign: append([]int(nil), assign...),
	}
	for _, t := range app.Tasks() {
		st := res.Starts[taskAct[t.ID]]
		sched.Tasks[t.ID] = TaskTime{Task: t.ID, Start: st, Finish: st + t.WCET}
	}
	for r := 0; r < rounds; r++ {
		sched.Rounds = append(sched.Rounds, Round{
			Index:     r,
			Start:     res.Starts[roundAct[r]],
			Duration:  roundDur[r],
			BeaconNTX: chi[nMsgs+r],
			Slots:     roundSlots[r],
		})
		sched.BusTime += roundDur[r]
	}
	sched.Makespan = res.Makespan
	sched.Optimal = res.Optimal
	sched.SolverNodes = res.Nodes
	sched.EnergyPC = p.scheduleEnergyPC(sched)
	return sched, nil
}

// MinMakespan returns only the optimal makespan for the problem — the
// "minimum feasible latency" query of §IV-B that drives figs. 2 and 4.
func MinMakespan(p *Problem) (int64, error) {
	s, err := Solve(p)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// ErrScheduleMismatch reports that a schedule does not cover the
// application it is being audited against — e.g. a message the
// application defines has no slot in any round. The guarantee auditors
// return it instead of feeding an out-of-domain χ = 0 into the network
// statistic (which panics).
var ErrScheduleMismatch = errors.New("core: schedule does not match the application")

// predRound returns the round index carrying message m, checking that
// the schedule actually covers it.
func predRound(s *Schedule, m dag.MsgID) (int, error) {
	if int(m) < 0 || int(m) >= len(s.Assign) {
		return 0, fmt.Errorf("%w: message %d has no round assignment", ErrScheduleMismatch, m)
	}
	r := s.Assign[m]
	if r < 0 || r >= len(s.Rounds) {
		return 0, fmt.Errorf("%w: message %d assigned to round %d of %d", ErrScheduleMismatch, m, r, len(s.Rounds))
	}
	return r, nil
}

// SatisfiedSoft reports the success probability the schedule guarantees
// for the given task under the problem's statistic (the left side of
// eq. 6), or 1 when it has no networked dependencies. Auditing a schedule
// that does not cover the task's predecessor messages returns
// ErrScheduleMismatch.
func SatisfiedSoft(p *Problem, s *Schedule, id dag.TaskID) (float64, error) {
	prob := 1.0
	msgs := p.App.MsgAncestors(id)
	roundSeen := make(map[int]bool)
	for _, m := range msgs {
		ntx, ok := s.SlotNTX(m)
		if !ok {
			return 0, fmt.Errorf("%w: message %d has no slot", ErrScheduleMismatch, m)
		}
		prob *= p.SoftStat.SuccessProb(ntx)
		r, err := predRound(s, m)
		if err != nil {
			return 0, err
		}
		if !roundSeen[r] {
			roundSeen[r] = true
			prob *= p.SoftStat.SuccessProb(s.Rounds[r].BeaconNTX)
		}
	}
	return prob, nil
}

// SatisfiedWH returns the ⊕-folded guarantee the schedule provides for
// the given task (the left side of eq. 9/10) and whether the task has
// networked dependencies at all. Auditing a schedule that does not cover
// the task's predecessor messages returns ErrScheduleMismatch.
func SatisfiedWH(p *Problem, s *Schedule, id dag.TaskID) (wh.MissConstraint, bool, error) {
	msgs := p.App.MsgAncestors(id)
	if len(msgs) == 0 {
		return wh.MissConstraint{}, false, nil
	}
	var gs []wh.MissConstraint
	roundSeen := make(map[int]bool)
	for _, m := range msgs {
		ntx, ok := s.SlotNTX(m)
		if !ok {
			return wh.MissConstraint{}, false, fmt.Errorf("%w: message %d has no slot", ErrScheduleMismatch, m)
		}
		gs = append(gs, p.WHStat.MissConstraint(ntx))
		r, err := predRound(s, m)
		if err != nil {
			return wh.MissConstraint{}, false, err
		}
		if !roundSeen[r] {
			roundSeen[r] = true
			gs = append(gs, p.WHStat.MissConstraint(s.Rounds[r].BeaconNTX))
		}
	}
	return wh.OplusAll(gs...), true, nil
}
