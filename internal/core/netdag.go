package core

import (
	"fmt"
	"math"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/solver"
	"github.com/netdag/netdag/internal/wh"
)

// Schedule computes a feasible (soft or weakly-hard) real-time schedule
// minimizing makespan. The search decomposes as the paper's SMT encoding
// does implicitly:
//
//  1. enumerate admissible assignments l of messages to rounds
//     (topological partial orders of the line graph, eq. 2);
//  2. per assignment, choose χ minimizing total reserved bus time
//     subject to the task-level constraints (eq. 6 / eq. 10);
//  3. per (l, χ), place tasks and rounds exactly (branch and bound over
//     the eq. 4/5 conditions) and keep the best makespan.
//
// Rounds act as global blackout windows, so total bus time dominates the
// communication contribution to makespan; step 2's objective makes the
// decomposition makespan-minimal in all but adversarial corner cases
// (the A3 ablation quantifies this against exhaustive search on small
// instances).
func Solve(p *Problem) (*Schedule, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	lg, err := dag.NewLineGraph(p.App)
	if err != nil {
		return nil, err
	}
	maxRounds := p.MaxRounds
	if maxRounds == 0 {
		maxRounds = lg.MinRounds() + DefaultExtraRounds
	}
	if maxRounds < lg.MinRounds() {
		return nil, fmt.Errorf("core: MaxRounds %d below the line graph's minimum %d", maxRounds, lg.MinRounds())
	}
	var best *Schedule
	explored := 0
	var firstErr error
	cpWCET := p.App.CriticalPathWCET()
	msgs := p.App.Messages()
	lg.EnumerateAssignments(maxRounds, func(l []int) bool {
		explored++
		assign := append([]int(nil), l...)
		// Cheap lower bound: rounds are global blackouts, so the
		// makespan is at least the critical-path WCET plus the cheapest
		// possible bus time for this assignment (all floods at χ = 1).
		if best != nil {
			rounds := 0
			for _, r := range assign {
				if r+1 > rounds {
					rounds = r + 1
				}
			}
			lb := cpWCET + int64(rounds)*p.Params.BeaconDuration(1, p.Diameter)
			for _, m := range msgs {
				lb += p.Params.SlotDuration(1, m.Width, p.Diameter)
			}
			if lb >= best.Makespan {
				return true
			}
		}
		sched, err := p.scheduleForAssignment(assign)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return true
		}
		if best == nil || sched.Makespan < best.Makespan {
			best = sched
		}
		return true
	})
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("%w: no admissible round assignment", ErrUnsat)
	}
	best.Explored = explored
	return best, nil
}

// predFloods returns, for a task, the flood indices of pred(τ): its
// ancestor messages plus the beacons of the rounds carrying them. Flood
// indexing: messages occupy 0..M-1 (by MsgID), beacons occupy M..M+R-1
// (by round index).
func predFloods(app *dag.Graph, assign []int, nMsgs int, id dag.TaskID) []int {
	msgs := app.MsgAncestors(id)
	var floods []int
	roundSeen := make(map[int]bool)
	for _, m := range msgs {
		floods = append(floods, int(m))
		r := assign[m]
		if !roundSeen[r] {
			roundSeen[r] = true
			floods = append(floods, nMsgs+r)
		}
	}
	return floods
}

// scheduleForAssignment runs steps 2 and 3 for one round assignment.
func (p *Problem) scheduleForAssignment(assign []int) (*Schedule, error) {
	app := p.App
	msgs := app.Messages()
	nMsgs := len(msgs)
	rounds := 0
	for _, r := range assign {
		if r+1 > rounds {
			rounds = r + 1
		}
	}
	nFloods := nMsgs + rounds

	ci := &chiInstance{
		n:     nFloods,
		upper: p.MaxNTX,
		lower: make([]int, nFloods),
		def:   make([][]float64, nFloods),
		cost:  make([][]int64, nFloods),
	}
	for f := 0; f < nFloods; f++ {
		ci.lower[f] = 1
		ci.def[f] = make([]float64, p.MaxNTX)
		ci.cost[f] = make([]int64, p.MaxNTX)
		width := p.Params.BeaconWidth
		if f < nMsgs {
			width = msgs[f].Width
		}
		for n := 1; n <= p.MaxNTX; n++ {
			ci.cost[f][n-1] = p.Params.SlotDuration(n, width, p.Diameter)
			switch p.Mode {
			case Soft:
				lam := p.SoftStat.SuccessProb(n)
				if lam <= 0 {
					ci.def[f][n-1] = math.Inf(1)
				} else {
					ci.def[f][n-1] = -math.Log(lam)
				}
			case WeaklyHard:
				ci.def[f][n-1] = float64(p.WHStat.MissConstraint(n).Misses)
			}
		}
	}

	// Task-level constraints become covering constraints; weakly-hard
	// constraints additionally impose per-flood window lower bounds.
	// Iterate tasks in ID order (not map order) so the covering
	// constraints — and therefore any cost ties inside the χ search —
	// are deterministic across runs.
	switch p.Mode {
	case Soft:
		for _, task := range app.Tasks() {
			id := task.ID
			target, has := p.SoftCons[id]
			if !has {
				continue
			}
			floods := predFloods(app, assign, nMsgs, id)
			if len(floods) == 0 || target <= 0 {
				continue // trivially satisfied: no networked dependencies
			}
			if target >= 1 {
				return nil, fmt.Errorf("%w: task %q demands probability 1 over a lossy bus",
					ErrUnsat, app.Task(id).Name)
			}
			ci.cons = append(ci.cons, chiConstraint{
				task:   app.Task(id).Name,
				floods: floods,
				budget: -math.Log(target),
			})
		}
	case WeaklyHard:
		for _, task := range app.Tasks() {
			id := task.ID
			target, has := p.WHCons[id]
			if !has {
				continue
			}
			floods := predFloods(app, assign, nMsgs, id)
			if len(floods) == 0 || target.Trivial() {
				continue
			}
			// Window bound: every predecessor flood's guarantee window
			// must cover the requirement's (the ⊕ window is the minimum
			// over predecessors, and eq. 10 needs it >= F.Window).
			minN, ok := p.minNTXForWindow(target.Window)
			if !ok {
				return nil, fmt.Errorf("%w: task %q needs a %d-round guarantee window; statistic cannot provide it within MaxNTX=%d",
					ErrUnsat, app.Task(id).Name, target.Window, p.MaxNTX)
			}
			for _, f := range floods {
				if minN > ci.lower[f] {
					ci.lower[f] = minN
				}
			}
			ci.cons = append(ci.cons, chiConstraint{
				task:   app.Task(id).Name,
				floods: floods,
				budget: float64(target.Misses),
			})
		}
	}

	chi, err := ci.solve(p.GreedyChi)
	if err != nil {
		return nil, err
	}

	return p.place(assign, chi, rounds)
}

// minNTXForWindow returns the smallest n with λ_WH(n).Window >= w.
func (p *Problem) minNTXForWindow(w int) (int, bool) {
	for n := 1; n <= p.MaxNTX; n++ {
		if p.WHStat.MissConstraint(n).Window >= w {
			return n, true
		}
	}
	return 0, false
}

// place runs the exact timing search for fixed (l, χ) and assembles the
// Schedule.
func (p *Problem) place(assign, chi []int, rounds int) (*Schedule, error) {
	app := p.App
	msgs := app.Messages()
	nMsgs := len(msgs)

	// Round durations per eq. (3): beacon term + slot terms.
	roundDur := make([]int64, rounds)
	roundSlots := make([][]Slot, rounds)
	for r := 0; r < rounds; r++ {
		roundDur[r] = p.Params.BeaconDuration(chi[nMsgs+r], p.Diameter)
	}
	for _, m := range msgs {
		r := assign[m.ID]
		d := p.Params.SlotDuration(chi[m.ID], m.Width, p.Diameter)
		roundDur[r] += d
		roundSlots[r] = append(roundSlots[r], Slot{
			Msg: m.ID, NTX: chi[m.ID], Width: m.Width, Duration: d,
		})
	}

	prob := solver.NewProblem(1)
	taskAct := make(map[dag.TaskID]solver.ActID)
	for _, t := range app.Tasks() {
		taskAct[t.ID] = prob.AddActivity(t.Name, t.WCET)
	}
	roundAct := make([]solver.ActID, rounds)
	for r := 0; r < rounds; r++ {
		roundAct[r] = prob.AddActivity(fmt.Sprintf("round%d", r), roundDur[r])
	}
	// (4a) task precedence.
	for _, t := range app.Tasks() {
		for _, s := range app.Succs(t.ID) {
			prob.Precede(taskAct[t.ID], taskAct[s])
		}
	}
	// (4b) rounds totally ordered.
	for r := 1; r < rounds; r++ {
		prob.Precede(roundAct[r-1], roundAct[r])
	}
	// (4c) producers before the round; consumers after.
	for _, m := range msgs {
		r := assign[m.ID]
		prob.Precede(taskAct[m.Source], roundAct[r])
		for _, c := range m.Dests {
			prob.Precede(roundAct[r], taskAct[c])
		}
	}
	// (5) tasks never overlap communication.
	for _, t := range app.Tasks() {
		for r := 0; r < rounds; r++ {
			prob.Disjoint(taskAct[t.ID], roundAct[r])
		}
	}
	// Task-level deadlines and release times (ζ constraints).
	for id, d := range p.Deadlines {
		prob.Deadline(taskAct[id], d)
	}
	for id, rel := range p.ReleaseTimes {
		prob.Release(taskAct[id], rel)
	}
	var res solver.Result
	var err error
	if p.GreedyPlacement {
		res, err = prob.Greedy()
	} else {
		res, err = prob.Minimize(p.SolverNodes)
	}
	if err != nil {
		return nil, fmt.Errorf("core: timing search failed: %w", err)
	}

	sched := &Schedule{
		Mode:   p.Mode,
		Tasks:  make(map[dag.TaskID]TaskTime, app.NumTasks()),
		Assign: append([]int(nil), assign...),
	}
	for _, t := range app.Tasks() {
		st := res.Starts[taskAct[t.ID]]
		sched.Tasks[t.ID] = TaskTime{Task: t.ID, Start: st, Finish: st + t.WCET}
	}
	for r := 0; r < rounds; r++ {
		sched.Rounds = append(sched.Rounds, Round{
			Index:     r,
			Start:     res.Starts[roundAct[r]],
			Duration:  roundDur[r],
			BeaconNTX: chi[nMsgs+r],
			Slots:     roundSlots[r],
		})
		sched.BusTime += roundDur[r]
	}
	sched.Makespan = res.Makespan
	sched.Optimal = res.Optimal
	return sched, nil
}

// MinMakespan returns only the optimal makespan for the problem — the
// "minimum feasible latency" query of §IV-B that drives figs. 2 and 4.
func MinMakespan(p *Problem) (int64, error) {
	s, err := Solve(p)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// SatisfiedSoft reports the success probability the schedule guarantees
// for the given task under the problem's statistic (the left side of
// eq. 6), or 1 when it has no networked dependencies.
func SatisfiedSoft(p *Problem, s *Schedule, id dag.TaskID) float64 {
	prob := 1.0
	msgs := p.App.MsgAncestors(id)
	roundSeen := make(map[int]bool)
	for _, m := range msgs {
		ntx, _ := s.SlotNTX(m)
		prob *= p.SoftStat.SuccessProb(ntx)
		r := s.Assign[m]
		if !roundSeen[r] {
			roundSeen[r] = true
			prob *= p.SoftStat.SuccessProb(s.Rounds[r].BeaconNTX)
		}
	}
	return prob
}

// SatisfiedWH returns the ⊕-folded guarantee the schedule provides for
// the given task (the left side of eq. 9/10) and whether the task has
// networked dependencies at all.
func SatisfiedWH(p *Problem, s *Schedule, id dag.TaskID) (wh.MissConstraint, bool) {
	msgs := p.App.MsgAncestors(id)
	if len(msgs) == 0 {
		return wh.MissConstraint{}, false
	}
	var gs []wh.MissConstraint
	roundSeen := make(map[int]bool)
	for _, m := range msgs {
		ntx, _ := s.SlotNTX(m)
		gs = append(gs, p.WHStat.MissConstraint(ntx))
		r := s.Assign[m]
		if !roundSeen[r] {
			roundSeen[r] = true
			gs = append(gs, p.WHStat.MissConstraint(s.Rounds[r].BeaconNTX))
		}
	}
	return wh.OplusAll(gs...), true
}
