package core

import (
	"fmt"
	"math"
)

// Objective selects what the solver minimizes.
//
// The search decomposition (enumerate round assignments l, cover with χ,
// place exactly) is objective-agnostic; the objective changes the cost
// columns the χ solver minimizes, the scalar the shared incumbent
// carries, and the admissibility bounds at both prune points. See
// DESIGN.md §15 for the energy bound derivation.
type Objective int

const (
	// ObjectiveMakespan minimizes end-to-end latency (the paper's
	// objective). The zero value, so existing callers are unchanged.
	ObjectiveMakespan Objective = iota
	// ObjectiveEnergy minimizes per-node radio charge (EnergyPC), with
	// makespan and enumeration order as deterministic tie-breaks: the
	// total order is (energy, makespan, enumeration index).
	ObjectiveEnergy
	// ObjectivePareto asks for the full energy/latency tradeoff rather
	// than a single schedule. Solve rejects it — use ParetoFront, which
	// runs an epsilon-constraint sweep of ObjectiveEnergy solves over
	// makespan caps.
	ObjectivePareto
)

// String renders the objective in the spelling the -objective CLI flags
// and the spec's "objective" field accept.
func (o Objective) String() string {
	switch o {
	case ObjectiveMakespan:
		return "makespan"
	case ObjectiveEnergy:
		return "energy"
	case ObjectivePareto:
		return "pareto"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// ParseObjective maps the CLI/spec spelling to an Objective. The empty
// string selects ObjectiveMakespan, so omitting the knob keeps the
// paper's behavior.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "makespan":
		return ObjectiveMakespan, nil
	case "energy":
		return ObjectiveEnergy, nil
	case "pareto":
		return ObjectivePareto, nil
	default:
		return 0, fmt.Errorf("core: unknown objective %q (want makespan, energy or pareto)", s)
	}
}

// EnergyParams are the radio currents the energy objective optimizes
// under, in integer microamps. Charge is accounted in picocoulombs
// (µs × µA = pC exactly), so the scalarized cost — and therefore every
// prune decision and tie-break — is exact integer arithmetic: no float
// rounding can make results depend on summation order across workers.
// The float model in internal/lwb remains the reporting surface; these
// integer defaults are the same CC2420-class profile.
type EnergyParams struct {
	RXCurrentUA    int64 // radio listening current (µA)
	TXCurrentUA    int64 // radio transmitting current (µA)
	SleepCurrentUA int64 // radio off / MCU sleep current (µA)
}

// DefaultEnergyParams mirrors lwb.DefaultEnergyModel: RX 18.8 mA,
// TX 17.4 mA, 20 µA asleep.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{RXCurrentUA: 18800, TXCurrentUA: 17400, SleepCurrentUA: 20}
}

// zero reports the zero value, which normalize replaces with the default
// profile.
func (e EnergyParams) zero() bool {
	return e == EnergyParams{}
}

// Validate checks the currents.
func (e EnergyParams) Validate() error {
	if e.RXCurrentUA <= 0 || e.TXCurrentUA <= 0 || e.SleepCurrentUA < 0 {
		return fmt.Errorf("core: invalid energy params %+v", e)
	}
	return nil
}

// floodChargePC is the exact per-node radio charge of one Glossy flood at
// the given retransmission level, in picocoulombs: the node transmits for
// its χ hop slots of airtime and listens for the rest of the flood's
// eq. (3) reservation. Strictly increasing in χ — each level adds one TX
// hop slot and two reserved hop slots, Δq = (C + D·w)(I_TX + I_RX) > 0 —
// which is what makes χ-floor-based lower bounds admissible and the χ
// covering search's cost columns well-formed under the energy objective.
func (p *Problem) floodChargePC(ntx, width int) int64 {
	dur := p.Params.SlotDuration(ntx, width, p.Diameter)
	tx := int64(ntx) * (p.Params.C + p.Params.D*int64(width))
	if tx > dur {
		tx = dur // unreachable for valid Params; mirror lwb's defensive clamp
	}
	return tx*p.EnergyParams.TXCurrentUA + (dur-tx)*p.EnergyParams.RXCurrentUA
}

// scheduleEnergyPC computes a schedule's total per-node radio charge in
// picocoulombs: every flood's on-time charge plus sleep leakage over the
// rest of the makespan. Matches lwb.EnergyModel.Evaluate (which reports
// float µC) by construction: per-flood TX time and round durations are
// the same quantities.
func (p *Problem) scheduleEnergyPC(s *Schedule) int64 {
	var total int64
	var onUS int64
	for _, r := range s.Rounds {
		onUS += r.Duration
		total += p.floodChargePC(r.BeaconNTX, p.Params.BeaconWidth)
		for _, sl := range r.Slots {
			total += p.floodChargePC(sl.NTX, sl.Width)
		}
	}
	if sleep := s.Makespan - onUS; sleep > 0 {
		total += sleep * p.EnergyParams.SleepCurrentUA
	}
	return total
}

// betterCand reports whether candidate a = (aE, aM, aIdx) strictly
// precedes b under the objective's total order: (makespan, index) for
// ObjectiveMakespan, (energy, makespan, index) for ObjectiveEnergy. This
// single comparator drives the sequential best, the parallel reduction
// and the shared-incumbent publication, so all three agree on the winner
// regardless of worker interleaving.
func (p *Problem) betterCand(aE, aM int64, aIdx int, bE, bM int64, bIdx int) bool {
	if p.Objective == ObjectiveEnergy && aE != bE {
		return aE < bE
	}
	if aM != bM {
		return aM < bM
	}
	return aIdx < bIdx
}

// GuaranteeSlack reports the schedule's tightest guarantee margin over
// the problem's task-level constraints: in soft mode the minimum of
// (scheduled success probability − target) over constrained tasks, in
// weakly-hard mode the minimum spare miss budget (target misses −
// guaranteed misses). Positive infinity when no constraint binds. The
// DSE Pareto fronts report it per point: trading latency for energy
// never touches feasibility, but it can consume slack.
func GuaranteeSlack(p *Problem, s *Schedule) (float64, error) {
	slack := math.Inf(1)
	switch p.Mode {
	case Soft:
		for id, target := range p.SoftCons {
			got, err := SatisfiedSoft(p, s, id)
			if err != nil {
				return 0, err
			}
			if m := got - target; m < slack {
				slack = m
			}
		}
	case WeaklyHard:
		for id, target := range p.WHCons {
			if target.Trivial() {
				continue
			}
			got, networked, err := SatisfiedWH(p, s, id)
			if err != nil {
				return 0, err
			}
			if !networked {
				continue
			}
			if m := float64(target.Misses - got.Misses); m < slack {
				slack = m
			}
		}
	}
	return slack, nil
}
