package core

import (
	"testing"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/multirate"
	"github.com/netdag/netdag/internal/wh"
)

// avHeavyProblem is the benchmark's multi-rate AV application at
// realistic period ratios: three identical cameras and a
// fusion/detection stage at rate 2, a lidar and a planner at rate 1, a
// control loop at rate 10 and a monitor at rate 1, with weakly-hard
// constraints on every control instance and the monitor, plus a pure-sink
// visualization subscriber and two identical telemetry streams into a
// shared logger. The cameras unroll into three identical two-phase
// instance chains (one 3-member interchange class) and the telemetry
// producers form a 2-member singleton class on an unconstrained path —
// their floods are pinned in the χ search, so they compound the
// symmetry orbit without spending the exact-χ constrained-flood budget.
// MaxRounds is pinned to the line graph's minimum (5) to keep the
// enumeration at a CI-friendly size; the optimum is the same as with
// the default extra round.
func avHeavyProblem(tb testing.TB, noSym, noFloors bool) *Problem {
	tb.Helper()
	g := dag.New()
	cams := make([]dag.TaskID, 3)
	for i := range cams {
		cams[i] = g.MustAddTask("cam"+string(rune('0'+i)), "ncam"+string(rune('0'+i)), 450)
	}
	lidar := g.MustAddTask("lidar", "nlidar", 800)
	fuse := g.MustAddTask("fuse", "nfuse", 1100)
	detect := g.MustAddTask("detect", "ndetect", 1500)
	plan := g.MustAddTask("plan", "nplan", 2000)
	ctrl := g.MustAddTask("ctrl", "nctrl", 150)
	monitor := g.MustAddTask("monitor", "nmon", 300)
	for _, c := range cams {
		g.MustConnect(c, fuse, 8)
	}
	g.MustConnect(lidar, fuse, 12)
	g.MustConnect(fuse, detect, 10)
	g.MustConnect(detect, plan, 6)
	g.MustConnect(plan, ctrl, 4)
	g.MustConnect(ctrl, monitor, 2)
	// Pure-sink subscribers on their own nodes: extra destinations on
	// already-emitted messages, so they enlarge the placement instance
	// (more task-vs-round disjunctions) without adding floods or
	// enumeration work — the realistic "many consumers per stream" shape.
	viz := g.MustAddTask("viz", "nviz", 1800)
	g.MustConnect(fuse, viz, 10)
	// Two identical telemetry streams into a shared logger: pure
	// producers on an unconstrained path, so their floods are pinned in
	// the χ search (no constrained-flood budget spent) while their
	// interchange class compounds with the camera chains' orbit.
	logger := g.MustAddTask("logger", "nlog", 700)
	for i := 0; i < 2; i++ {
		tele := g.MustAddTask("tele"+string(rune('0'+i)), "ntele"+string(rune('0'+i)), 500)
		g.MustConnect(tele, logger, 6)
	}
	res, err := multirate.Unroll(multirate.Spec{App: g, Rates: map[dag.TaskID]int{
		cams[0]: 2, cams[1]: 2, cams[2]: 2, fuse: 2, detect: 2, ctrl: 10,
		viz: 2,
	}})
	if err != nil {
		tb.Fatal(err)
	}
	cons := multirate.SpreadConstraints(res, map[dag.TaskID]wh.MissConstraint{
		ctrl:    {Misses: 24, Window: 40},
		monitor: {Misses: 28, Window: 40},
	})
	return &Problem{
		App:            res.Graph,
		Params:         glossy.DefaultParams(),
		Diameter:       3,
		MaxNTX:         10,
		MaxRounds:      5,
		Mode:           WeaklyHard,
		WHStat:         glossy.SyntheticWH{},
		WHCons:         cons,
		InstanceChains: res.Chains(),
		NoSymmetry:     noSym,
		NoChiFloors:    noFloors,
	}
}

// BenchmarkMultiRateAVHeavy compares the solver with the multi-rate
// optimizations on (instance-chain symmetry breaking + chi floors)
// against the ablated configuration. The ns/node metric is *effective*
// node throughput: wall time per solve divided by the canonical
// (ablated) search's node count, so the on/off ratio of ns/node equals
// the wall-time speedup on the same proven-optimal answer.
func BenchmarkMultiRateAVHeavy(b *testing.B) {
	canon, err := Solve(avHeavyProblem(b, true, true))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name            string
		noSym, noFloors bool
	}{
		{"full", false, false},
		{"nofloors", false, true},
		{"nosym", true, false},
		{"disabled", true, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := Solve(avHeavyProblem(b, cfg.noSym, cfg.noFloors))
				if err != nil {
					b.Fatal(err)
				}
				if !s.Optimal || s.Makespan != canon.Makespan {
					b.Fatalf("makespan %d optimal %v, want %d (ablated reference)",
						s.Makespan, s.Optimal, canon.Makespan)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(canon.SolverNodes), "ns/node")
		})
	}
}
