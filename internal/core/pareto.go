package core

import (
	"context"
	"errors"
	"fmt"
)

// ParetoPoint is one point of the energy/latency front: a schedule
// together with the two objective values it trades between.
type ParetoPoint struct {
	Makespan int64
	EnergyPC int64
	Sched    *Schedule
}

// ParetoFront computes the exact Pareto front of (makespan, energy) for
// the problem. See ParetoFrontContext.
func ParetoFront(p *Problem) ([]ParetoPoint, error) {
	return ParetoFrontContext(context.Background(), p)
}

// ParetoFrontContext runs the epsilon-constraint sweep behind
// ObjectivePareto: first the makespan-minimal schedule fixes the front's
// left end M0, then repeated ObjectiveEnergy solves under tightening
// MakespanCap constraints walk the front right to left — uncapped first
// (the energy-minimal point), then capped one microsecond under the
// previous point's makespan. Each solve is a lexicographic minimum over
// (energy, makespan, enumeration index), so successive points have
// strictly smaller makespan and strictly larger energy: the sweep emits
// no dominated points by construction, and terminates when it reaches M0
// or the cap becomes infeasible. Points return in ascending makespan
// (descending energy) order.
//
// The input problem is not mutated; each solve runs on a shallow copy.
// Objective may be ObjectivePareto or unset (any existing MakespanCap is
// honored as the front's right end). On cancellation the points gathered
// so far return alongside ErrCanceled — a valid (possibly truncated)
// prefix of the front from the energy-minimal end, except that the
// canceled solve's own incumbent is discarded (it is not proven optimal,
// so its membership in the front is unknown).
func ParetoFrontContext(ctx context.Context, p *Problem) ([]ParetoPoint, error) {
	if p.Objective != ObjectiveMakespan && p.Objective != ObjectivePareto {
		return nil, fmt.Errorf("core: ParetoFront needs ObjectivePareto (or unset), got %v", p.Objective)
	}

	// Left end of the front: the minimum feasible makespan, under the
	// caller's cap if any. Only its makespan is used — the energy-optimal
	// schedule AT that makespan falls out of the sweep's last step.
	mp := *p
	mp.Objective = ObjectiveMakespan
	minSched, err := SolveContext(ctx, &mp)
	if err != nil {
		return nil, err
	}
	m0 := minSched.Makespan

	var front []ParetoPoint
	cap := p.MakespanCap // 0 = unconstrained: start at the energy-minimal point
	for {
		ep := *p
		ep.Objective = ObjectiveEnergy
		ep.MakespanCap = cap
		sched, err := SolveContext(ctx, &ep)
		if err != nil {
			if errors.Is(err, ErrUnsat) {
				// The cap undercut the feasible region — the previous point
				// was the makespan-minimal end of the front. Possible even
				// before reaching m0 exactly, when no schedule exists
				// strictly between two front points.
				break
			}
			if errors.Is(err, ErrCanceled) {
				return reverseFront(front), err
			}
			return nil, err
		}
		front = append(front, ParetoPoint{
			Makespan: sched.Makespan,
			EnergyPC: sched.EnergyPC,
			Sched:    sched,
		})
		if sched.Makespan <= m0 {
			break
		}
		cap = sched.Makespan - 1
	}
	front = reverseFront(front)
	return filterDominated(front), nil
}

// reverseFront flips the sweep's right-to-left emission into ascending
// makespan order.
func reverseFront(front []ParetoPoint) []ParetoPoint {
	for i, j := 0, len(front)-1; i < j; i, j = i+1, j-1 {
		front[i], front[j] = front[j], front[i]
	}
	return front
}

// filterDominated drops dominated points. The sweep's strict
// monotonicity argument makes this a no-op; it stands as a defensive
// guarantee that callers never see a dominated point even if a solver
// regression breaks the argument.
func filterDominated(front []ParetoPoint) []ParetoPoint {
	out := front[:0]
	for i, pt := range front {
		dominated := false
		for j, other := range front {
			if i == j {
				continue
			}
			if other.Makespan <= pt.Makespan && other.EnergyPC <= pt.EnergyPC &&
				(other.Makespan < pt.Makespan || other.EnergyPC < pt.EnergyPC) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, pt)
		}
	}
	return out
}
