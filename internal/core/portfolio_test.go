package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// portfolioCorpus builds the differential corpus: the examples-style
// applications under both modes, mirroring what examples/ and the
// figures drive.
func portfolioCorpus(t *testing.T) map[string]*Problem {
	t.Helper()
	corpus := make(map[string]*Problem)

	mimo, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	whCons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(mimo) {
		whCons[a] = wh.MissConstraint{Misses: 24, Window: 40}
	}
	corpus["mimo-wh"] = &Problem{
		App: mimo, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: whCons,
	}

	pipe, err := apps.Pipeline(4, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	corpus["pipeline-soft"] = &Problem{
		App: pipe, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{pipe.Sinks()[0]: 0.9},
	}

	// Switched control: the sensors are interchangeable floods (equal
	// WCET, identical destination sets), so this instance exercises the
	// symmetry skip.
	sw, err := apps.Switched(apps.DefaultSwitched())
	if err != nil {
		t.Fatal(err)
	}
	corpus["switched-soft"] = &Problem{
		App: sw, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{sw.Sinks()[0]: 0.85},
	}

	rl, err := apps.RandomLayered(3, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	soft := make(map[dag.TaskID]float64)
	for _, s := range rl.Sinks() {
		soft[s] = 0.9
	}
	corpus["layered-soft"] = &Problem{
		App: rl, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: soft,
	}
	return corpus
}

func clearedCopy(p *Problem) *Problem {
	q := *p
	q.iclasses = nil
	return &q
}

// TestPortfolioMatchesSingleStrategy is the differential exactness test:
// on every corpus instance the portfolio must return the same schedule
// the single-strategy exact search does — makespan, bus time, round
// assignment, and the placement itself. Only SolverNodes may differ (the
// portfolio reports its deterministic reconstruction pass).
func TestPortfolioMatchesSingleStrategy(t *testing.T) {
	for name, p := range portfolioCorpus(t) {
		single := clearedCopy(p)
		sSingle, err := Solve(single)
		if err != nil {
			t.Fatalf("%s: single-strategy solve: %v", name, err)
		}
		port := clearedCopy(p)
		port.Portfolio = true
		port.PortfolioSeed = 42
		sPort, err := Solve(port)
		if err != nil {
			t.Fatalf("%s: portfolio solve: %v", name, err)
		}
		if sPort.Makespan != sSingle.Makespan {
			t.Errorf("%s: portfolio makespan %d != single-strategy %d",
				name, sPort.Makespan, sSingle.Makespan)
		}
		if sPort.BusTime != sSingle.BusTime || sPort.Optimal != sSingle.Optimal {
			t.Errorf("%s: bustime/optimal (%d,%v) != (%d,%v)",
				name, sPort.BusTime, sPort.Optimal, sSingle.BusTime, sSingle.Optimal)
		}
		if !reflect.DeepEqual(sPort.Assign, sSingle.Assign) {
			t.Errorf("%s: winning assignment %v != %v", name, sPort.Assign, sSingle.Assign)
		}
		if !reflect.DeepEqual(sPort.Tasks, sSingle.Tasks) {
			t.Errorf("%s: task placement diverged:\n%v\n%v", name, sPort.Tasks, sSingle.Tasks)
		}
		if !reflect.DeepEqual(sPort.Rounds, sSingle.Rounds) {
			t.Errorf("%s: round placement diverged:\n%v\n%v", name, sPort.Rounds, sSingle.Rounds)
		}
		if sPort.Explored != sSingle.Explored {
			// Dominated assignments are still enumerated and counted, so
			// the explored count is part of the determinism contract.
			t.Errorf("%s: explored %d != %d", name, sPort.Explored, sSingle.Explored)
		}
	}
}

// TestPortfolioDeterministicAcrossWorkers: with a fixed seed the
// portfolio's schedule is bit-identical across runs and worker counts,
// including SolverNodes (the reconstruction pass) and Explored.
func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	for name, p := range portfolioCorpus(t) {
		var ref *Schedule
		for _, workers := range []int{1, 2, 4, 1} {
			q := clearedCopy(p)
			q.Portfolio = true
			q.PortfolioSeed = 7
			q.Workers = workers
			s, err := Solve(q)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if ref == nil {
				ref = s
				continue
			}
			if !reflect.DeepEqual(s, ref) {
				t.Errorf("%s workers=%d: schedule differs from the workers=1 reference:\n%+v\n%+v",
					name, workers, s, ref)
			}
		}
	}
}

// TestPortfolioCanceledContext: an expired outer context surfaces as
// core.ErrCanceled, exactly like the single-strategy path — never as a
// bounded/unsat artifact of the internal race cancellation.
func TestPortfolioCanceledContext(t *testing.T) {
	p := portfolioCorpus(t)["mimo-wh"]
	q := clearedCopy(p)
	q.Portfolio = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := SolveContext(ctx, q)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if s != nil && s.Optimal {
		t.Error("canceled solve claims optimality")
	}
}

// countdownCtx reports a live context for its first flipAfter Err()
// polls and a canceled one afterwards, pinning exactly *when* during a
// solve the expiry becomes observable.
type countdownCtx struct {
	context.Context
	calls     atomic.Int64
	flipAfter int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.flipAfter {
		return context.Canceled
	}
	return nil
}

// TestFinishLineExpiryKeepsOptimality is the finish-line regression: a
// search that ran to completion must stay optimal (and cacheable) even
// when the context expires the instant it finishes. The old SolveContext
// re-polled ctx after the search and demoted the proven schedule to a
// canceled incumbent.
func TestFinishLineExpiryKeepsOptimality(t *testing.T) {
	base := portfolioCorpus(t)["pipeline-soft"]
	for _, usePortfolio := range []bool{false, true} {
		p := clearedCopy(base)
		p.Portfolio = usePortfolio
		// First pass: count how many times a successful solve polls the
		// context. The sequential path is deterministic, so the count is too.
		counter := &countdownCtx{Context: context.Background(), flipAfter: math.MaxInt64}
		ref, err := SolveContext(counter, p)
		if err != nil || !ref.Optimal {
			t.Fatalf("portfolio=%v: reference solve: optimal=%v err=%v", usePortfolio, ref != nil && ref.Optimal, err)
		}
		polls := counter.calls.Load()

		// Second pass: the context dies exactly after the search's last
		// poll — every in-search poll saw it alive, so nothing was cut
		// short and the result must remain a proven optimum.
		q := clearedCopy(base)
		q.Portfolio = usePortfolio
		late := &countdownCtx{Context: context.Background(), flipAfter: polls}
		s, err := SolveContext(late, q)
		if err != nil {
			t.Fatalf("portfolio=%v: finish-line expiry misreported a completed search: %v", usePortfolio, err)
		}
		if !s.Optimal || s.Makespan != ref.Makespan {
			t.Errorf("portfolio=%v: optimal=%v makespan=%d, want true, %d",
				usePortfolio, s.Optimal, s.Makespan, ref.Makespan)
		}
	}
}

// TestInterchangeClasses pins the symmetry detection on the switched
// app: the sensors form one interchange class; the controller messages
// (distinct WCETs upstream, distinct destination sets) form none.
func TestInterchangeClasses(t *testing.T) {
	sw, err := apps.Switched(apps.DefaultSwitched())
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		App: sw, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:      Soft,
		SoftStat:  glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons:  map[dag.TaskID]float64{sw.Sinks()[0]: 0.85},
		Portfolio: true,
	}
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(p.iclasses) != 1 {
		t.Fatalf("iclasses = %v, want exactly one class (the sensors)", p.iclasses)
	}
	cls := p.iclasses[0]
	if len(cls) != 2 {
		t.Fatalf("sensor class = %v, want 2 members", cls)
	}
	for _, tup := range cls {
		if len(tup) != 1 {
			t.Fatalf("sensor member %v, want a singleton tuple", tup)
		}
		src := sw.Task(sw.Message(tup[0]).Source)
		if src.WCET != 500 {
			t.Errorf("class member %d sourced by %q (wcet %d), want a sensor", tup[0], src.Name, src.WCET)
		}
	}
	m0, m1 := cls[0][0], cls[1][0]

	// Descending rounds with equal chi: dominated. Unequal chi: not.
	assign := make([]int, sw.NumMessages())
	chi := make([]int, sw.NumMessages()+2)
	for i := range chi {
		chi[i] = 2
	}
	assign[m0], assign[m1] = 1, 0
	if !p.dominatedAssignment(assign, chi) {
		t.Error("descending class rounds with equal chi not flagged as dominated")
	}
	chi[m0] = 3
	if p.dominatedAssignment(assign, chi) {
		t.Error("asymmetric chi tie-break must disable the symmetry skip")
	}
	assign[m0], assign[m1] = 0, 1
	if p.dominatedAssignment(assign, chi) {
		t.Error("ascending class rounds flagged as dominated")
	}

	// A release time on one sensor breaks the interchangeability.
	p2 := &Problem{
		App: sw, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:         Soft,
		SoftStat:     glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons:     map[dag.TaskID]float64{sw.Sinks()[0]: 0.85},
		ReleaseTimes: map[dag.TaskID]int64{sw.Message(m0).Source: 100},
		Portfolio:    true,
	}
	if err := p2.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(p2.iclasses) != 0 {
		t.Errorf("iclasses = %v despite a release time distinguishing the sensors", p2.iclasses)
	}
}
