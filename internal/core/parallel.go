package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"github.com/netdag/netdag/internal/solver"
)

// This file is the parallel outer search over round assignments. A
// producer goroutine enumerates admissible assignments in the canonical
// deterministic order, tagging each with its enumeration index, and
// batches them onto a channel; a pool of workers runs the per-assignment
// (χ, ζ) search, sharing the best-known makespan through an atomic
// incumbent that feeds both prune points — the cheap admissibility lower
// bound and the timing search's MakespanBound.
//
// Determinism: the reduction is a total order — the objective's scalar
// first (energy under ObjectiveEnergy), then makespan, then enumeration
// index (see Problem.betterCand) — and an assignment is only ever pruned
// when it provably cannot win under that order (see assignBound), so the
// final winner is independent of worker interleaving and identical to the
// sequential search's result. The per-assignment timing result is also
// incumbent-independent: a bounded search that completes is exact within
// the bound (hence equal to the unbounded optimum whenever one exists
// under the bound), and a bounded search the node budget truncates is
// redone without the incumbent-derived bound (see place).

// assignmentBatchSize is how many assignments the producer hands over
// per channel send. Assignments are cheap to enumerate and expensive to
// schedule, so small batches keep workers busy without starving the
// reduction of parallelism on small instances.
const assignmentBatchSize = 8

// incumbentRec is the shared best-known outcome: the best scalarized
// cost published so far — (energy, makespan) under the objective's total
// order — and the enumeration index of the assignment that achieved it.
// Under ObjectiveMakespan the energy field is ignored by the comparator
// (and set to MaxInt64 for virtual warm incumbents).
type incumbentRec struct {
	energy   int64
	makespan int64
	idx      int
}

// job is one round assignment tagged with its enumeration index.
type job struct {
	idx    int
	assign []int
}

// runParallel evaluates round assignments on `workers` goroutines and
// reduces their local bests under the (makespan, enumeration index)
// order. It returns the same winner, explored count, and first error the
// sequential search would.
func (s *search) runParallel(workers int) (*candidate, int, *searchErr) {
	jobs := make(chan []job, workers)
	done := make(chan struct{})
	defer close(done)

	go func() {
		defer close(jobs)
		next := 0
		s.lg.EnumerateBatches(s.maxRounds, assignmentBatchSize, func(batch [][]int) bool {
			if s.ctx.Err() != nil {
				s.interrupted.Store(true)
				return false // canceled: stop producing, workers drain out
			}
			bjobs := make([]job, len(batch))
			for i, a := range batch {
				bjobs[i] = job{idx: next, assign: a}
				next++
			}
			select {
			case jobs <- bjobs:
				return true
			case <-s.ctx.Done():
				s.interrupted.Store(true)
				return false
			case <-done:
				return false
			}
		})
	}()

	var inc atomic.Pointer[incumbentRec]
	if s.warm > 0 {
		// Warm start: a virtual incumbent at the previous schedule's
		// makespan with an infinite enumeration index, so it prunes and
		// bounds exactly as the sequential warm path does and loses every
		// tie-break to a real schedule. See Problem.WarmMakespan. (Warm
		// hints only exist under ObjectiveMakespan; normalize clears them
		// otherwise, so the MaxInt64 energy is never consulted.)
		inc.Store(&incumbentRec{energy: math.MaxInt64, makespan: s.warm, idx: math.MaxInt})
	}
	// publish installs (energy, makespan, idx) as the incumbent unless a
	// better one (under the objective's total order) is already in place.
	publish := func(energy, makespan int64, idx int) {
		rec := &incumbentRec{energy: energy, makespan: makespan, idx: idx}
		for {
			cur := inc.Load()
			if cur != nil && !s.p.betterCand(energy, makespan, idx, cur.energy, cur.makespan, cur.idx) {
				return
			}
			if inc.CompareAndSwap(cur, rec) {
				return
			}
		}
	}

	type workerOut struct {
		best     *candidate
		explored int
		firstErr *searchErr
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(out *workerOut) {
			defer wg.Done()
			for batch := range jobs {
				if s.ctx.Err() != nil {
					s.interrupted.Store(true)
					return // canceled: stop scheduling, keep the local best
				}
				for _, j := range batch {
					out.explored++
					prune, bound := s.assignBound(j.assign, j.idx, inc.Load())
					if prune {
						continue
					}
					sched, err := s.p.scheduleForAssignment(s.ctx, j.assign, bound)
					if err != nil {
						if errors.Is(err, solver.ErrCanceled) {
							s.interrupted.Store(true)
						}
						if !skippableSearchErr(err) && (out.firstErr == nil || j.idx < out.firstErr.idx) {
							out.firstErr = &searchErr{idx: j.idx, err: err}
						}
						continue
					}
					if !sched.Optimal && s.ctx.Err() != nil {
						s.interrupted.Store(true)
					}
					publish(sched.EnergyPC, sched.Makespan, j.idx)
					if out.best == nil || s.p.betterCand(sched.EnergyPC, sched.Makespan, j.idx,
						out.best.sched.EnergyPC, out.best.sched.Makespan, out.best.idx) {
						out.best = &candidate{sched: sched, idx: j.idx}
					}
				}
			}
		}(&outs[w])
	}
	wg.Wait()

	var best *candidate
	explored := 0
	var firstErr *searchErr
	for i := range outs {
		o := &outs[i]
		explored += o.explored
		if o.best != nil && (best == nil || s.p.betterCand(
			o.best.sched.EnergyPC, o.best.sched.Makespan, o.best.idx,
			best.sched.EnergyPC, best.sched.Makespan, best.idx)) {
			best = o.best
		}
		if o.firstErr != nil && (firstErr == nil || o.firstErr.idx < firstErr.idx) {
			firstErr = o.firstErr
		}
	}
	return best, explored, firstErr
}
