package core

import "fmt"

// This file solves the χ-assignment subproblem: given a round assignment
// l, pick the retransmission parameter N_TX for every flood (message
// slots and round beacons) so that every task-level constraint holds,
// minimizing the total reserved bus time. Both paradigms reduce to the
// same covering structure:
//
//   - soft (eq. 6):  Π_{x∈pred(τ)} λ_s(χ(x)) >= F_s(τ)
//     ⇔ Σ_{x∈pred(τ)} −log λ_s(χ(x)) <= −log F_s(τ)
//   - weakly hard (eq. 10 via ⊕): Σ_{x∈pred(τ)} misses(λ_WH(χ(x)))
//     <= F_WH(τ).Misses, plus per-flood window lower bounds on χ.
//
// Each flood has a non-increasing per-level "deficit" and an increasing
// per-level cost; each constrained task imposes a budget on the sum of
// deficits over its predecessor floods. The feasible χ vectors form an
// upward-closed set (statistics are monotone), searched exactly by branch
// and bound on small instances and greedily otherwise.

// chiInstance is the covering problem over floods 0..n-1.
type chiInstance struct {
	n     int
	upper int
	lower []int       // per-flood minimum χ (window bounds etc.), >= 1
	def   [][]float64 // def[f][i] = deficit of flood f at χ = i+1, non-increasing
	cost  [][]int64   // cost[f][i] = reserved duration at χ = i+1, increasing
	cons  []chiConstraint
}

type chiConstraint struct {
	task   string // for error messages
	floods []int
	budget float64
}

const chiEps = 1e-9

// solve picks exact or greedy search. The exact search runs when the
// number of floods that actually appear in constraints is small
// (unconstrained floods are pinned to their lower bounds and never
// branched on); both return the chosen χ per flood.
func (ci *chiInstance) solve(forceGreedy bool) ([]int, error) {
	if err := ci.checkFeasibleAtUpper(); err != nil {
		return nil, err
	}
	if !forceGreedy && ci.numConstrained() <= exactChiFloodLimit {
		return ci.solveExact()
	}
	return ci.solveGreedy()
}

// numConstrained counts floods referenced by at least one constraint.
func (ci *chiInstance) numConstrained() int {
	seen := make([]bool, ci.n)
	cnt := 0
	for _, c := range ci.cons {
		for _, f := range c.floods {
			if !seen[f] {
				seen[f] = true
				cnt++
			}
		}
	}
	return cnt
}

// checkFeasibleAtUpper verifies the instance is satisfiable with every
// flood at MaxNTX — if not, no χ vector works and the caller reports
// ErrUnsat with the violated task.
func (ci *chiInstance) checkFeasibleAtUpper() error {
	for f := 0; f < ci.n; f++ {
		if ci.lower[f] > ci.upper {
			return fmt.Errorf("%w: flood %d needs χ >= %d but MaxNTX is %d",
				ErrUnsat, f, ci.lower[f], ci.upper)
		}
	}
	for _, c := range ci.cons {
		sum := 0.0
		for _, f := range c.floods {
			sum += ci.def[f][ci.upper-1]
		}
		if sum > c.budget+chiEps {
			return fmt.Errorf("%w: task %s unreachable even at MaxNTX (deficit %.4g > budget %.4g)",
				ErrUnsat, c.task, sum, c.budget)
		}
	}
	return nil
}

// violated returns the index of a violated constraint under chi, or -1.
func (ci *chiInstance) violated(chi []int) int {
	for i, c := range ci.cons {
		sum := 0.0
		for _, f := range c.floods {
			sum += ci.def[f][chi[f]-1]
		}
		if sum > c.budget+chiEps {
			return i
		}
	}
	return -1
}

// totalCost sums the per-flood costs.
func (ci *chiInstance) totalCost(chi []int) int64 {
	var t int64
	for f, v := range chi {
		t += ci.cost[f][v-1]
	}
	return t
}

// solveGreedy starts every flood at its lower bound and repeatedly bumps
// the flood with the best deficit-reduction per cost among a violated
// constraint's floods.
func (ci *chiInstance) solveGreedy() ([]int, error) {
	chi := make([]int, ci.n)
	copy(chi, ci.lower)
	for {
		vi := ci.violated(chi)
		if vi < 0 {
			return chi, nil
		}
		c := ci.cons[vi]
		bestF, bestScore := -1, 0.0
		for _, f := range c.floods {
			if chi[f] >= ci.upper {
				continue
			}
			drop := ci.def[f][chi[f]-1] - ci.def[f][chi[f]]
			inc := float64(ci.cost[f][chi[f]] - ci.cost[f][chi[f]-1])
			if inc <= 0 {
				inc = 1
			}
			score := drop / inc
			if bestF < 0 || score > bestScore {
				bestF, bestScore = f, score
			}
		}
		if bestF < 0 {
			// Cannot raise anything further; checkFeasibleAtUpper rules
			// this out unless deficits are flat, in which case the
			// budget is genuinely unreachable.
			return nil, fmt.Errorf("%w: task %s (greedy dead end)", ErrUnsat, c.task)
		}
		chi[bestF]++
	}
}

// solveExact is a branch-and-bound over χ vectors minimizing total cost.
// Floods outside every constraint are pinned to their lower bounds; for
// branching floods only Pareto-optimal levels are considered (a level
// whose deficit equals a cheaper level's is pure cost); the incumbent is
// seeded with the greedy solution so the cost bound prunes from the
// start. The bound combines committed cost with remaining lower-bound
// costs, and a per-constraint feasibility prune assumes unassigned
// floods go to MaxNTX.
func (ci *chiInstance) solveExact() ([]int, error) {
	chi := make([]int, ci.n)
	copy(chi, ci.lower)
	// Branch order: constrained floods only.
	inCons := make([]bool, ci.n)
	for _, c := range ci.cons {
		for _, f := range c.floods {
			inCons[f] = true
		}
	}
	var order []int
	for f := 0; f < ci.n; f++ {
		if inCons[f] {
			order = append(order, f)
		}
	}
	// Pareto level sets per branching flood.
	levels := make([][]int, ci.n)
	for _, f := range order {
		lv := []int{ci.lower[f]}
		for v := ci.lower[f] + 1; v <= ci.upper; v++ {
			if ci.def[f][v-1] < ci.def[f][lv[len(lv)-1]-1]-chiEps {
				lv = append(lv, v)
			}
		}
		levels[f] = lv
	}
	best := make([]int, ci.n)
	bestCost := int64(-1)
	// Seed with greedy: any feasible incumbent makes the cost bound
	// active immediately.
	if g, err := ci.solveGreedy(); err == nil {
		copy(best, g)
		bestCost = ci.totalCost(g)
	}
	// pinnedCost: cost of all non-branching floods at lower bound.
	var pinnedCost int64
	for f := 0; f < ci.n; f++ {
		if !inCons[f] {
			pinnedCost += ci.cost[f][ci.lower[f]-1]
		}
	}
	// minRemCost[i] = Σ over order[i:] of cost at lower bound.
	minRemCost := make([]int64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		f := order[i]
		minRemCost[i] = minRemCost[i+1] + ci.cost[f][ci.lower[f]-1]
	}
	// assigned[f] reports whether flood f's level is final in the
	// current partial assignment.
	assigned := make([]bool, ci.n)
	for f := 0; f < ci.n; f++ {
		assigned[f] = !inCons[f]
	}
	// The search is exact while the node budget lasts; beyond it the
	// incumbent (at worst the greedy solution) is returned. This keeps
	// the scheduler's worst case polynomial while giving true optima on
	// paper-scale instances.
	const nodeBudget = 300000
	nodes := 0
	var rec func(i int, committed int64)
	rec = func(i int, committed int64) {
		nodes++
		if nodes > nodeBudget {
			return
		}
		if bestCost >= 0 && committed+minRemCost[i] >= bestCost {
			return
		}
		if i == len(order) {
			if ci.violated(chi) >= 0 {
				return
			}
			bestCost = committed
			copy(best, chi)
			return
		}
		// Feasibility prune: optimistic deficit per constraint, with
		// unassigned floods at MaxNTX.
		for _, c := range ci.cons {
			sum := 0.0
			for _, fl := range c.floods {
				if assigned[fl] {
					sum += ci.def[fl][chi[fl]-1]
				} else {
					sum += ci.def[fl][ci.upper-1]
				}
			}
			if sum > c.budget+chiEps {
				return
			}
		}
		f := order[i]
		assigned[f] = true
		for _, v := range levels[f] {
			chi[f] = v
			rec(i+1, committed+ci.cost[f][v-1])
		}
		chi[f] = ci.lower[f]
		assigned[f] = false
	}
	rec(0, pinnedCost)
	if bestCost < 0 {
		return nil, fmt.Errorf("%w: exact χ search found no assignment", ErrUnsat)
	}
	return best, nil
}
