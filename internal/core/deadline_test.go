package core

import (
	"errors"
	"testing"

	"github.com/netdag/netdag/internal/dag"
)

func TestDeadlineRestrictsSchedules(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	free, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	// A deadline at the unconstrained completion time is feasible.
	p2, _ := softPipeline(t, 0.9)
	p2.Deadlines = map[dag.TaskID]int64{last.ID: free.Tasks[last.ID].Finish}
	s2, err := Solve(p2)
	if err != nil {
		t.Fatalf("deadline at optimum rejected: %v", err)
	}
	if s2.Tasks[last.ID].Finish > free.Tasks[last.ID].Finish {
		t.Errorf("deadline not honored: finish %d > %d", s2.Tasks[last.ID].Finish, free.Tasks[last.ID].Finish)
	}
	// A deadline strictly inside the minimum makespan is infeasible.
	p3, _ := softPipeline(t, 0.9)
	p3.Deadlines = map[dag.TaskID]int64{last.ID: free.Makespan / 2}
	if _, err := Solve(p3); err == nil {
		t.Error("impossible deadline accepted")
	}
}

func TestDeadlineBelowWCETRejected(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	first, _ := g.TaskByName("stage0")
	p.Deadlines = map[dag.TaskID]int64{first.ID: g.Task(first.ID).WCET - 1}
	if _, err := Solve(p); !errors.Is(err, ErrBadConstraint) {
		t.Errorf("deadline below WCET: %v, want ErrBadConstraint", err)
	}
}

func TestReleaseTimeShiftsTask(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	first, _ := g.TaskByName("stage0")
	p.ReleaseTimes = map[dag.TaskID]int64{first.ID: 5000}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks[first.ID].Start < 5000 {
		t.Errorf("release time ignored: start %d", s.Tasks[first.ID].Start)
	}
	if err := s.Validate(g); err != nil {
		t.Errorf("released schedule invalid: %v", err)
	}
	p2, _ := softPipeline(t, 0.9)
	p2.ReleaseTimes = map[dag.TaskID]int64{first.ID: -1}
	if _, err := Solve(p2); !errors.Is(err, ErrBadConstraint) {
		t.Errorf("negative release: %v, want ErrBadConstraint", err)
	}
}

func TestDeadlineAppliesToBaseline(t *testing.T) {
	p, g := softPipeline(t, 0.9)
	base, err := GlobalNTXBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p2, _ := softPipeline(t, 0.9)
	p2.Deadlines = map[dag.TaskID]int64{last.ID: base.Makespan / 2}
	if _, err := GlobalNTXBaseline(p2); err == nil {
		t.Error("baseline ignored an impossible deadline")
	}
}
