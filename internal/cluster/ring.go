// Package cluster shards the netdag-serve solution cache across peers.
//
// A consistent-hash ring maps every spec fingerprint to exactly one
// owning peer. All peers build the ring from the same membership list
// and the ring's hash is derived only from peer names (SHA-256, no
// process-local state), so every instance computes the same owner for
// the same key without coordination — routing is a pure function of
// (membership, key). When a peer joins or leaves, only the keys whose
// arc it covered move (≈1/N of the keyspace), which is what keeps the
// cache tier warm through membership churn.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of virtual nodes per peer. 128 points
// per peer keeps the maximum/mean load skew under ~1.35 for 3–16 peers
// (see TestRingDistribution) at a memory cost of one (uint64, index)
// pair per point.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over named peers. The zero value is
// not usable; construct with NewRing. Ring is not safe for concurrent
// mutation; build it once at startup (membership is static per process
// in the serve tier) or guard it externally.
type Ring struct {
	replicas int
	peers    []string // sorted unique member names
	points   []point  // sorted by hash
}

// point is one virtual node: a position on the ring owned by a peer.
type point struct {
	hash uint64
	peer int // index into peers
}

// NewRing builds a ring with the given virtual-node count per peer
// (replicas <= 0 selects DefaultReplicas) over the given members.
// Duplicate names collapse to one membership.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// Add inserts a peer. Adding an existing member is a no-op.
func (r *Ring) Add(name string) {
	i := sort.SearchStrings(r.peers, name)
	if i < len(r.peers) && r.peers[i] == name {
		return
	}
	r.peers = append(r.peers, "")
	copy(r.peers[i+1:], r.peers[i:])
	r.peers[i] = name
	r.rebuild()
}

// Remove deletes a peer; removing a non-member is a no-op.
func (r *Ring) Remove(name string) {
	i := sort.SearchStrings(r.peers, name)
	if i >= len(r.peers) || r.peers[i] != name {
		return
	}
	r.peers = append(r.peers[:i], r.peers[i+1:]...)
	r.rebuild()
}

// rebuild recomputes the point list from the membership. Peer indices
// change when membership changes, so the whole list is rebuilt; at 128
// replicas × tens of peers this is microseconds, and membership changes
// are rare (process start, peer loss).
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for pi, name := range r.peers {
		for v := 0; v < r.replicas; v++ {
			r.points = append(r.points, point{hash: ringHash(name + "#" + strconv.Itoa(v)), peer: pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full SHA-256 collision between distinct vnode labels is not
		// expected; break ties by peer index anyway so the order — and
		// therefore ownership — never depends on sort internals.
		return r.points[i].peer < r.points[j].peer
	})
}

// Len reports the number of member peers.
func (r *Ring) Len() int { return len(r.peers) }

// Peers returns the sorted member names (a copy).
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// Owner maps a key to the peer owning it: the first virtual node at or
// clockwise after the key's hash. Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) { // wrap past the highest point
		i = 0
	}
	return r.peers[r.points[i].peer]
}

// ringHash is the ring's position function: the first 8 bytes of
// SHA-256, big-endian. SHA-256 rather than a seeded fast hash so every
// process — and every language reimplementation of the router — agrees
// on placement with no shared seed.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Config describes this process's place in a serve cluster. The zero
// value means "not clustered".
type Config struct {
	// Self is this instance's peer name; it must appear in Peers.
	Self string
	// Peers maps peer name → base URL (e.g. "http://10.0.0.2:8080").
	// The map must be identical (same names) on every instance; the
	// ring is derived from the sorted names only, so URL differences
	// (internal vs external addresses) do not affect placement.
	Peers map[string]string
	// Replicas is the virtual-node count per peer (0 = DefaultReplicas).
	Replicas int
}

// Enabled reports whether the config describes a multi-peer cluster.
func (c Config) Enabled() bool { return len(c.Peers) > 0 }

// Validate checks the config describes a coherent membership.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Self == "" {
		return fmt.Errorf("cluster: peers configured but no self name")
	}
	if _, ok := c.Peers[c.Self]; !ok {
		return fmt.Errorf("cluster: self %q not in the peer map", c.Self)
	}
	for name, url := range c.Peers {
		if name == "" {
			return fmt.Errorf("cluster: empty peer name")
		}
		if url == "" && name != c.Self {
			return fmt.Errorf("cluster: peer %q has no URL", name)
		}
	}
	return nil
}

// Ring builds the membership ring for this config.
func (c Config) Ring() *Ring {
	names := make([]string, 0, len(c.Peers))
	for name := range c.Peers {
		names = append(names, name)
	}
	return NewRing(c.Replicas, names...)
}

// ParsePeers parses the CLI peer-list syntax
// "name=url,name=url,..." into a peer map.
func ParsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		entry := s[start:i]
		start = i + 1
		if entry == "" {
			continue
		}
		eq := -1
		for j := 0; j < len(entry); j++ {
			if entry[j] == '=' {
				eq = j
				break
			}
		}
		if eq <= 0 {
			return nil, fmt.Errorf("cluster: peer entry %q is not name=url", entry)
		}
		name, url := entry[:eq], entry[eq+1:]
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", name)
		}
		peers[name] = url
	}
	return peers, nil
}
