package cluster

import (
	"fmt"
	"testing"
)

// keys returns n distinct fingerprint-shaped keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("spec-fingerprint-%06d", i)
	}
	return out
}

func peerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("peer%d", i)
	}
	return out
}

// TestRingDistribution: across 3–16 peers at the default replica count,
// the busiest peer carries at most 1.6× the mean load and the idlest at
// least half of it — the skew bound that makes per-peer cache capacity
// planning possible.
func TestRingDistribution(t *testing.T) {
	const nKeys = 20000
	ks := keys(nKeys)
	for _, peers := range []int{3, 4, 5, 8, 12, 16} {
		t.Run(fmt.Sprintf("%dpeers", peers), func(t *testing.T) {
			r := NewRing(0, peerNames(peers)...)
			load := make(map[string]int, peers)
			for _, k := range ks {
				load[r.Owner(k)]++
			}
			if len(load) != peers {
				t.Fatalf("keys landed on %d of %d peers", len(load), peers)
			}
			mean := float64(nKeys) / float64(peers)
			for p, n := range load {
				ratio := float64(n) / mean
				if ratio > 1.6 || ratio < 0.5 {
					t.Errorf("%s holds %d keys (%.2fx mean %.0f); skew bound violated", p, n, ratio, mean)
				}
			}
		})
	}
}

// TestRingMinimalMovement: adding or removing one peer moves only the
// keys whose arc changed — roughly 1/N of the keyspace — and every
// moved key involves the changed peer (no unrelated reshuffling).
func TestRingMinimalMovement(t *testing.T) {
	const nKeys = 20000
	ks := keys(nKeys)
	for _, peers := range []int{3, 4, 8, 16} {
		t.Run(fmt.Sprintf("join%d", peers), func(t *testing.T) {
			before := NewRing(0, peerNames(peers)...)
			owners := make([]string, nKeys)
			for i, k := range ks {
				owners[i] = before.Owner(k)
			}
			after := NewRing(0, peerNames(peers)...)
			joined := "joiner"
			after.Add(joined)
			moved := 0
			for i, k := range ks {
				now := after.Owner(k)
				if now == owners[i] {
					continue
				}
				moved++
				if now != joined {
					t.Fatalf("key %s moved %s → %s, but only moves to the joiner are minimal", k, owners[i], now)
				}
			}
			frac := float64(moved) / nKeys
			want := 1 / float64(peers+1)
			if frac > 2*want || frac == 0 {
				t.Errorf("join moved %.1f%% of keys; want ≈%.1f%% (<2x)", 100*frac, 100*want)
			}
		})
		t.Run(fmt.Sprintf("leave%d", peers), func(t *testing.T) {
			names := peerNames(peers)
			before := NewRing(0, names...)
			owners := make([]string, nKeys)
			for i, k := range ks {
				owners[i] = before.Owner(k)
			}
			gone := names[peers/2]
			after := NewRing(0, names...)
			after.Remove(gone)
			moved := 0
			for i, k := range ks {
				now := after.Owner(k)
				if now == owners[i] {
					continue
				}
				moved++
				if owners[i] != gone {
					t.Fatalf("key %s moved off surviving peer %s", k, owners[i])
				}
			}
			frac := float64(moved) / nKeys
			want := 1 / float64(peers)
			if frac > 2*want || frac == 0 {
				t.Errorf("leave moved %.1f%% of keys; want ≈%.1f%% (<2x)", 100*frac, 100*want)
			}
		})
	}
}

// TestRingDeterministic: ownership is a pure function of membership —
// insertion order, duplicate adds and independent ring instances all
// agree. This is the property the serve tier leans on: peers route
// without coordinating.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(0, "alpha", "beta", "gamma")
	b := NewRing(0, "gamma", "alpha", "beta")
	b.Add("alpha") // duplicate add is a no-op
	for _, k := range keys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("rings disagree on %s: %s vs %s", k, ao, bo)
		}
	}
	if got := a.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(4)
	if r.Owner("anything") != "" {
		t.Error("empty ring owns keys")
	}
	r.Add("solo")
	if r.Owner("anything") != "solo" {
		t.Error("single-peer ring must own everything")
	}
	r.Remove("ghost") // non-member: no-op
	if r.Len() != 1 {
		t.Errorf("Len = %d after removing non-member, want 1", r.Len())
	}
	r.Remove("solo")
	if r.Owner("anything") != "" || r.Len() != 0 {
		t.Error("emptied ring still owns keys")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"zero is unclustered", Config{}, false},
		{"valid", Config{Self: "a", Peers: map[string]string{"a": "http://x", "b": "http://y"}}, false},
		{"self without URL ok", Config{Self: "a", Peers: map[string]string{"a": "", "b": "http://y"}}, false},
		{"missing self", Config{Peers: map[string]string{"a": "http://x"}}, true},
		{"self not a member", Config{Self: "z", Peers: map[string]string{"a": "http://x"}}, true},
		{"peer without URL", Config{Self: "a", Peers: map[string]string{"a": "http://x", "b": ""}}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://x:1,b=http://y:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["a"] != "http://x:1" || peers["b"] != "http://y:2" {
		t.Errorf("parsed %v", peers)
	}
	if p, err := ParsePeers(""); err != nil || p != nil {
		t.Errorf("empty list: %v %v", p, err)
	}
	// URLs may themselves contain '=' (query strings); only the first
	// one splits.
	peers, err = ParsePeers("a=http://x/?k=v")
	if err != nil || peers["a"] != "http://x/?k=v" {
		t.Errorf("url with '=': %v %v", peers, err)
	}
	for _, bad := range []string{"nourl", "=http://x", "a=1,a=2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}
