package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rec(i int) Record {
	return Record{
		Key:        fmt.Sprintf("key-%03d", i),
		Struct:     fmt.Sprintf("struct-%d", i%3),
		MakespanUS: int64(1000 + i),
		Body:       json.RawMessage(fmt.Sprintf(`{"makespanUS":%d,"rounds":[%d]}`, 1000+i, i)),
	}
}

// collect replays path into a slice.
func collect(t *testing.T, path string) ([]Record, Stats) {
	t.Helper()
	var got []Record
	stats, err := Replay(path, func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, stats, err := OpenReplay(path, func(Record) { t.Error("fresh journal replayed records") })
	if err != nil {
		t.Fatal(err)
	}
	if stats != (Stats{}) {
		t.Errorf("fresh journal stats = %+v", stats)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, path)
	if len(got) != n || stats.Replayed != n || stats.Skipped != 0 || stats.Truncated {
		t.Fatalf("replayed %d records, stats %+v", len(got), stats)
	}
	for i, r := range got {
		want := rec(i)
		if r.Key != want.Key || r.Struct != want.Struct || r.MakespanUS != want.MakespanUS ||
			string(r.Body) != string(want.Body) {
			t.Errorf("record %d mismatch: %+v", i, r)
		}
	}
	if err := j.Append(rec(99)); err != ErrClosed {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
}

// TestTruncatedTailHealed: a crash mid-append leaves a torn final
// record. Replay keeps every whole record, reports Truncated, and
// OpenReplay truncates the tail so subsequent appends produce a log
// that replays clean — and the replayed state is byte-identical to the
// pre-crash state.
func TestTruncatedTailHealed(t *testing.T) {
	for _, cut := range []int{1, 4, 7, 9, 11} { // into header and into payload
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cache.journal")
			j, _, err := OpenReplay(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := j.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			whole, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Append(rec(3)); err != nil {
				t.Fatal(err)
			}
			j.Close()
			// Crash: the 4th record only partially reached disk.
			if err := os.Truncate(path, whole.Size()+int64(cut)); err != nil {
				t.Fatal(err)
			}

			var replayed []Record
			j2, stats, err := OpenReplay(path, func(r Record) { replayed = append(replayed, r) })
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Truncated || stats.Replayed != 3 || stats.Skipped != 0 {
				t.Fatalf("stats after torn tail = %+v, want Truncated with 3 replayed", stats)
			}
			for i, r := range replayed {
				if want := rec(i); string(r.Body) != string(want.Body) || r.Key != want.Key {
					t.Errorf("pre-crash record %d not byte-identical: %+v", i, r)
				}
			}
			// The healed log accepts appends and replays clean.
			if err := j2.Append(rec(4)); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			got, stats := collect(t, path)
			if stats.Truncated || stats.Skipped != 0 || len(got) != 4 {
				t.Fatalf("healed log: %d records, stats %+v", len(got), stats)
			}
			if got[3].Key != rec(4).Key {
				t.Errorf("appended record lost after heal: %+v", got[3])
			}
		})
	}
}

// TestCorruptEntrySkipped: a checksum-failing record in the middle of
// the log is skipped — counted, not fatal — and every other record
// survives bit-exact.
func TestCorruptEntrySkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, _, err := OpenReplay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{0}
	for i := 0; i < 5; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		offsets = append(offsets, st.Size())
	}
	j.Close()

	// Flip a byte inside record 2's payload (past its 8-byte header).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, offsets[2]+8+5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, stats := collect(t, path)
	if stats.Skipped != 1 || stats.Truncated || stats.Replayed != 4 {
		t.Fatalf("stats = %+v, want 1 skipped / 4 replayed", stats)
	}
	wantKeys := []string{"key-000", "key-001", "key-003", "key-004"}
	for i, r := range got {
		if r.Key != wantKeys[i] {
			t.Errorf("survivor %d = %s, want %s", i, r.Key, wantKeys[i])
		}
	}
}

// TestZeroLengthTailStops: a zeroed header (preallocated-but-unwritten
// tail, as after some filesystem crashes) reads as truncation, not an
// infinite loop or a giant allocation.
func TestZeroLengthTailStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, _, err := OpenReplay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(rec(0))
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write(make([]byte, 64)) // zero-filled garbage tail
	f.Close()
	got, stats := collect(t, path)
	if len(got) != 1 || !stats.Truncated {
		t.Fatalf("zero tail: %d records, stats %+v", len(got), stats)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, _, err := OpenReplay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		j.Append(rec(i))
	}
	// Compact to the "live" subset, then keep appending.
	if err := j.Rewrite([]Record{rec(7), rec(9)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(11)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, stats := collect(t, path)
	if stats.Skipped != 0 || stats.Truncated {
		t.Fatalf("compacted log stats = %+v", stats)
	}
	wantKeys := []string{"key-007", "key-009", "key-011"}
	if len(got) != len(wantKeys) {
		t.Fatalf("compacted log has %d records, want %d", len(got), len(wantKeys))
	}
	for i, r := range got {
		if r.Key != wantKeys[i] {
			t.Errorf("record %d = %s, want %s", i, r.Key, wantKeys[i])
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	stats, err := Replay(filepath.Join(t.TempDir(), "nope.journal"), nil)
	if err != nil || stats != (Stats{}) {
		t.Fatalf("missing file: stats %+v err %v", stats, err)
	}
}

func TestAppendRejectsKeylessRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, _, err := OpenReplay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Body: json.RawMessage(`{}`)}); err == nil {
		t.Error("keyless record accepted")
	}
}
