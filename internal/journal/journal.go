// Package journal persists the serve tier's solution cache across
// restarts: an append-only file of checksummed records that is replayed
// at startup, so a restarted instance serves its corpus from disk
// instead of re-solving it.
//
// Format: each record is framed as
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC32 (IEEE) of the payload
//	payload — the JSON rendering of Record
//
// The framing is what makes replay crash-safe without fsync-per-write
// discipline:
//
//   - a torn tail (the process died mid-append) shows up as a record
//     whose header or payload runs past EOF; replay stops there,
//     reports Stats.Truncated, and OpenReplay truncates the file back
//     to the last whole record so the next append continues a valid
//     log;
//   - a corrupt record in the middle (bit rot, partial page write that
//     later appends ran past) fails its CRC; replay skips exactly that
//     record — the length field still frames it — and counts it in
//     Stats.Skipped.
//
// Replay is sequential and idempotent: applying records in order onto
// an empty cache reproduces the pre-crash cache byte for byte (callers
// re-put each record; last write wins, exactly like the live path).
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Record is one journaled cache entry: the canonical spec fingerprint,
// the structural fingerprint (warm-start index), the schedule's
// makespan (the warm hint), and the cached response body verbatim.
type Record struct {
	Key        string          `json:"key"`
	Struct     string          `json:"struct,omitempty"`
	MakespanUS int64           `json:"makespanUS,omitempty"`
	Body       json.RawMessage `json:"body"`
}

// Stats summarizes one replay pass.
type Stats struct {
	// Replayed counts records delivered to the callback.
	Replayed int
	// Skipped counts records whose checksum failed; they were dropped
	// and replay continued at the next frame.
	Skipped int
	// Truncated reports a torn tail: the file ended inside a record.
	// OpenReplay heals it by truncating back to the last whole record.
	Truncated bool
}

// maxRecordBytes bounds a single record. A length field above it is
// treated as a torn/corrupt tail rather than an instruction to allocate
// gigabytes: replay stops there.
const maxRecordBytes = 64 << 20

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Journal is an open, append-positioned log. Safe for concurrent
// Append from multiple goroutines.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// OpenReplay opens (creating if absent) the journal at path, replays
// every intact record into fn in append order, heals a torn tail, and
// returns the journal positioned for appending. fn must not retain
// rec.Body past the call unless it copies it (the replay loop reuses
// no buffers today, but the contract keeps that an implementation
// detail).
func OpenReplay(path string, fn func(rec Record)) (*Journal, Stats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Stats{}, err
	}
	stats, good, err := replay(f, fn)
	if err != nil {
		f.Close()
		return nil, stats, err
	}
	// Heal a torn tail so subsequent appends extend a valid log rather
	// than burying new records behind garbage no replay will pass.
	if stats.Truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, stats, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, stats, err
	}
	return &Journal{f: f, path: path}, stats, nil
}

// Replay reads the journal at path without opening it for writing —
// the inspection/testing entry point. A missing file replays empty.
func Replay(path string, fn func(rec Record)) (Stats, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return Stats{}, nil
	}
	if err != nil {
		return Stats{}, err
	}
	defer f.Close()
	stats, _, err := replay(f, fn)
	return stats, err
}

// replay scans f from the start, returning the offset just past the
// last whole frame (the truncation point for healing).
func replay(f *os.File, fn func(rec Record)) (Stats, int64, error) {
	var stats Stats
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return stats, 0, err
	}
	var good int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return stats, good, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				stats.Truncated = true
				return stats, good, nil // torn header
			}
			return stats, good, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			// A zeroed or absurd length is indistinguishable from a torn
			// write; there is no trustworthy frame to skip over.
			stats.Truncated = true
			return stats, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				stats.Truncated = true
				return stats, good, nil // torn payload
			}
			return stats, good, err
		}
		good += int64(8 + n)
		if crc32.ChecksumIEEE(payload) != sum {
			stats.Skipped++
			continue // the frame was whole, only its content rotted
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
			// Checksummed-but-unparseable means a writer bug or a foreign
			// file; treat like corruption rather than failing the whole
			// replay.
			stats.Skipped++
			continue
		}
		stats.Replayed++
		if fn != nil {
			fn(rec)
		}
	}
}

// Append writes one record durably enough for the crash model above:
// the frame is written with a single Write call, so a crash leaves
// either no trace or a torn tail that the next OpenReplay heals.
func (j *Journal) Append(rec Record) error {
	frame, err := encode(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	_, err = j.f.Write(frame)
	return err
}

// Rewrite atomically replaces the journal's contents with exactly recs
// (write to a temp file in the same directory, fsync, rename) — the
// compaction path: a restarted server rewrites the log to its live
// cache, dropping evicted and superseded entries accumulated across
// previous runs.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	tmp, err := os.CreateTemp(dirOf(j.path), ".journal-compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	for _, rec := range recs {
		frame, err := encode(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return err
	}
	// Swap the append handle onto the new file.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	j.f = f
	return nil
}

// Sync flushes the log to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.f.Sync()
}

// Close syncs and closes the log. Further Appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

func encode(rec Record) ([]byte, error) {
	if rec.Key == "" {
		return nil, fmt.Errorf("journal: record without key")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds the %d byte frame limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
