package stn

// The seed implementation of this package computed the least solution
// from scratch with Bellman-Ford on every Earliest call. That batch
// algorithm is retained here as the differential-testing oracle: the
// incremental engine must agree with it — on distances and on
// consistency — after every AddMin/AddMax/NewVar/Mark/Reset, including
// sequences that pass through inconsistent states.

import (
	"errors"
	"math/rand"
	"testing"
)

// batchEarliest is the seed Bellman-Ford longest-path relaxation over the
// network's current constraint set, O(V·E), independent of the
// incremental engine's maintained state.
func batchEarliest(s *STN) ([]int64, error) {
	n := len(s.vs)
	type bedge struct {
		u, v VarID
		w    int64
	}
	var edges []bedge
	for u := range s.out {
		for _, a := range s.out[u] {
			edges = append(edges, bedge{u: VarID(u), v: a.v, w: a.w})
		}
	}
	const neg = int64(-1) << 62
	d := make([]int64, n)
	for i := 1; i < n; i++ {
		d[i] = neg
	}
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range edges {
			if d[e.u] == neg {
				continue
			}
			if nd := d[e.u] + e.w; nd > d[e.v] {
				d[e.v] = nd
				changed = true
			}
		}
		if !changed {
			return d, nil
		}
	}
	return nil, ErrInconsistent
}

// checkAgainstOracle asserts that the incremental engine and the batch
// oracle agree on consistency and, when consistent, on every distance
// (via Dist, Earliest and EarliestInto).
func checkAgainstOracle(t *testing.T, s *STN, buf []int64) []int64 {
	t.Helper()
	want, wantErr := batchEarliest(s)
	got, gotErr := s.Earliest()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("consistency disagreement: oracle err=%v, engine err=%v", wantErr, gotErr)
	}
	if s.Consistent() != (wantErr == nil) {
		t.Fatalf("Consistent() = %v but oracle err = %v", s.Consistent(), wantErr)
	}
	if wantErr != nil {
		if !errors.Is(gotErr, ErrInconsistent) {
			t.Fatalf("engine error = %v, want ErrInconsistent", gotErr)
		}
		return buf
	}
	if len(got) != len(want) {
		t.Fatalf("Earliest length %d, oracle %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("Earliest[%d] = %d, oracle %d", v, got[v], want[v])
		}
		if dv := s.Dist(VarID(v)); dv != want[v] {
			t.Fatalf("Dist(%d) = %d, oracle %d", v, dv, want[v])
		}
	}
	buf, err := s.EarliestInto(buf)
	if err != nil {
		t.Fatalf("EarliestInto: %v", err)
	}
	for v := range want {
		if buf[v] != want[v] {
			t.Fatalf("EarliestInto[%d] = %d, oracle %d", v, buf[v], want[v])
		}
	}
	return buf
}

// TestDifferentialRandomSequences drives long random
// NewVar/AddMin/AddMax/Mark/Reset sequences — deliberately including
// inconsistent systems and Resets across NewVar — and asserts the
// incremental engine matches the batch oracle after every single
// operation.
func TestDifferentialRandomSequences(t *testing.T) {
	const (
		trials = 150
		ops    = 80
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := New()
		var buf []int64
		type savepoint struct {
			mark  int
			nvars int
		}
		var marks []savepoint
		for op := 0; op < ops; op++ {
			switch r := rng.Float64(); {
			case r < 0.15:
				s.NewVar("v")
			case r < 0.60:
				u := VarID(rng.Intn(s.NumVars()))
				v := VarID(rng.Intn(s.NumVars()))
				w := int64(rng.Intn(61) - 30)
				if rng.Float64() < 0.5 {
					s.AddMin(v, u, w)
				} else {
					s.AddMax(v, u, w)
				}
			case r < 0.75:
				marks = append(marks, savepoint{mark: s.Mark(), nvars: s.NumVars()})
			default:
				if len(marks) == 0 {
					continue
				}
				// Reset to a random saved mark (dropping the deeper ones),
				// then check the variable count rolled back too.
				i := rng.Intn(len(marks))
				sp := marks[i]
				marks = marks[:i]
				s.Reset(sp.mark)
				if s.NumVars() != sp.nvars {
					t.Fatalf("trial %d op %d: NumVars after Reset = %d, want %d",
						trial, op, s.NumVars(), sp.nvars)
				}
			}
			buf = checkAgainstOracle(t, s, buf)
		}
		// Unwind everything: the network must return to its pristine state.
		s.Reset(0)
		if s.NumVars() != 1 || !s.Consistent() {
			t.Fatalf("trial %d: Reset(0) left %d vars, consistent=%v", trial, s.NumVars(), s.Consistent())
		}
		if s.Dist(Zero) != 0 {
			t.Fatalf("trial %d: Reset(0) left Dist(Zero)=%d", trial, s.Dist(Zero))
		}
	}
}

// TestDifferentialInconsistentRecovery focuses the differential check on
// the trail's hardest job: restoring exact distances after the engine
// passed through an inconsistent state, repeatedly.
func TestDifferentialInconsistentRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		vars := make([]VarID, 6)
		for i := range vars {
			vars[i] = s.NewVar("v")
		}
		// A consistent base: a random chain.
		for i := 1; i < len(vars); i++ {
			s.AddMin(vars[i], vars[i-1], int64(rng.Intn(20)))
		}
		var buf []int64
		buf = checkAgainstOracle(t, s, buf)
		for round := 0; round < 20; round++ {
			mark := s.Mark()
			// Push constraints until the system (usually) breaks.
			for k := 0; k < 4; k++ {
				u := vars[rng.Intn(len(vars))]
				v := vars[rng.Intn(len(vars))]
				s.AddMax(v, u, int64(rng.Intn(10)-5))
				buf = checkAgainstOracle(t, s, buf)
			}
			s.Reset(mark)
			if !s.Consistent() {
				t.Fatalf("trial %d round %d: inconsistent after Reset", trial, round)
			}
			buf = checkAgainstOracle(t, s, buf)
		}
	}
}
