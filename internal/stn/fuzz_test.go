package stn

import (
	"testing"
)

// FuzzOps interprets the fuzz input as a program of network operations —
// NewVar, AddMin, AddMax, Mark, Reset — and cross-checks the incremental
// engine against the batch Bellman-Ford oracle after every step. It
// exercises exactly the state machine the branch-and-bound search drives:
// interleaved growth, propagation, inconsistency, and trail unwinding.
//
// Each operation consumes three bytes: opcode, variable selector(s), and
// a signed weight. Variable counts and program length are bounded so a
// single input stays cheap.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 5, 1, 16, 250})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 0, 0, 1, 2, 7, 4, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 200, 2, 1, 200}) // saturating weights
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 192 {
			data = data[:192]
		}
		s := New()
		var marks []struct {
			mark  int
			nvars int
		}
		for i := 0; i+2 < len(data); i += 3 {
			op, sel, wb := data[i], data[i+1], int64(int8(data[i+2]))
			switch op % 5 {
			case 0:
				if s.NumVars() < 12 {
					s.NewVar("v")
				}
			case 1:
				n := s.NumVars()
				u := VarID(int(sel) % n)
				v := VarID(int(sel>>4) % n)
				w := wb
				if wb == 127 { // probe the saturation path too
					w = int64(1) << 62
				}
				s.AddMin(v, u, w)
			case 2:
				n := s.NumVars()
				u := VarID(int(sel) % n)
				v := VarID(int(sel>>4) % n)
				s.AddMax(v, u, wb)
			case 3:
				marks = append(marks, struct {
					mark  int
					nvars int
				}{s.Mark(), s.NumVars()})
			case 4:
				if len(marks) == 0 {
					continue
				}
				j := int(sel) % len(marks)
				sp := marks[j]
				marks = marks[:j]
				s.Reset(sp.mark)
				if s.NumVars() != sp.nvars {
					t.Fatalf("op %d: NumVars after Reset = %d, want %d", i/3, s.NumVars(), sp.nvars)
				}
			}
			want, wantErr := batchEarliest(s)
			if s.Consistent() != (wantErr == nil) {
				t.Fatalf("op %d: Consistent()=%v, oracle err=%v", i/3, s.Consistent(), wantErr)
			}
			if wantErr != nil {
				continue
			}
			for v := range want {
				if got := s.Dist(VarID(v)); got != want[v] {
					t.Fatalf("op %d: Dist(%d)=%d, oracle %d", i/3, v, got, want[v])
				}
			}
		}
		// Full unwind must always recover the pristine single-variable net.
		s.Reset(0)
		if s.NumVars() != 1 || !s.Consistent() || s.Dist(Zero) != 0 {
			t.Fatalf("Reset(0): NumVars=%d consistent=%v dist0=%d", s.NumVars(), s.Consistent(), s.Dist(Zero))
		}
	})
}
