package stn

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEarliestSimpleChain(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	c := s.NewVar("c")
	s.AddMin(b, a, 10) // b >= a + 10
	s.AddMin(c, b, 5)  // c >= b + 5
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[Zero] != 0 || d[a] != 0 || d[b] != 10 || d[c] != 15 {
		t.Errorf("earliest = %v, want [0 0 10 15]", d)
	}
}

func TestEarliestTakesMaxOverPredecessors(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	join := s.NewVar("join")
	s.AddMin(a, Zero, 3)
	s.AddMin(b, Zero, 8)
	s.AddMin(join, a, 2)
	s.AddMin(join, b, 2)
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[join] != 10 {
		t.Errorf("join = %d, want 10 (max over predecessors)", d[join])
	}
}

func TestInconsistencyDetected(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(b, a, 5) // b >= a + 5
	s.AddMax(b, a, 3) // b <= a + 3
	if _, err := s.Earliest(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("Earliest = %v, want ErrInconsistent", err)
	}
	if s.Consistent() {
		t.Error("Consistent returned true on a contradictory system")
	}
}

func TestAddMaxAsDeadline(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	end := s.NewVar("end")
	s.AddMin(a, Zero, 4)
	s.AddMin(end, a, 10)
	s.AddMax(end, Zero, 20) // deadline: end <= 20
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[end] != 14 {
		t.Errorf("end = %d, want 14", d[end])
	}
	// Tighten the deadline past feasibility.
	s.AddMax(end, Zero, 13)
	if _, err := s.Earliest(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("over-tight deadline not detected: %v", err)
	}
}

func TestMarkReset(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(b, a, 7)
	mark := s.Mark()
	s.AddMin(a, Zero, 100)
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[b] != 107 {
		t.Errorf("with extra constraint b = %d, want 107", d[b])
	}
	s.Reset(mark)
	d, err = s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[b] != 7 {
		t.Errorf("after Reset b = %d, want 7", d[b])
	}
}

func TestResetBounds(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("Reset with bad mark did not panic")
		}
	}()
	s.Reset(99)
}

func TestNames(t *testing.T) {
	s := New()
	a := s.NewVar("alpha")
	if s.Name(a) != "alpha" || s.Name(Zero) != "zero" {
		t.Errorf("names wrong: %q, %q", s.Name(a), s.Name(Zero))
	}
	if s.Name(VarID(99)) == "" {
		t.Error("out-of-range name should still render")
	}
	if s.NumVars() != 2 {
		t.Errorf("NumVars = %d, want 2", s.NumVars())
	}
}

func TestAddMinUnknownVarPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("AddMin with unknown var did not panic")
		}
	}()
	s.AddMin(VarID(5), Zero, 1)
}

// Property: Earliest is the least solution — every reported time
// satisfies all constraints, and lowering any single variable violates
// one (checked via satisfaction only, on random DAG-like systems).
func TestQuickEarliestSatisfiesAllConstraints(t *testing.T) {
	f := func(weights []int8) bool {
		s := New()
		const nv = 6
		vars := make([]VarID, nv)
		for i := range vars {
			vars[i] = s.NewVar("v")
		}
		// Use weights to build forward edges (i < j keeps it acyclic, so
		// always consistent).
		wi := 0
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if wi >= len(weights) {
					break
				}
				w := int64(weights[wi])
				wi++
				if w < 0 {
					continue
				}
				s.AddMin(vars[j], vars[i], w)
			}
		}
		d, err := s.Earliest()
		if err != nil {
			return false
		}
		// Re-check every constraint by replaying the same construction.
		wi = 0
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if wi >= len(weights) {
					break
				}
				w := int64(weights[wi])
				wi++
				if w < 0 {
					continue
				}
				if d[vars[j]] < d[vars[i]]+w {
					return false
				}
			}
		}
		for _, v := range vars {
			if d[v] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
