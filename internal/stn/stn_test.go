package stn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEarliestSimpleChain(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	c := s.NewVar("c")
	s.AddMin(b, a, 10) // b >= a + 10
	s.AddMin(c, b, 5)  // c >= b + 5
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[Zero] != 0 || d[a] != 0 || d[b] != 10 || d[c] != 15 {
		t.Errorf("earliest = %v, want [0 0 10 15]", d)
	}
}

func TestEarliestTakesMaxOverPredecessors(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	join := s.NewVar("join")
	s.AddMin(a, Zero, 3)
	s.AddMin(b, Zero, 8)
	s.AddMin(join, a, 2)
	s.AddMin(join, b, 2)
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[join] != 10 {
		t.Errorf("join = %d, want 10 (max over predecessors)", d[join])
	}
}

func TestInconsistencyDetected(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(b, a, 5) // b >= a + 5
	s.AddMax(b, a, 3) // b <= a + 3
	if _, err := s.Earliest(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("Earliest = %v, want ErrInconsistent", err)
	}
	if s.Consistent() {
		t.Error("Consistent returned true on a contradictory system")
	}
}

func TestAddMaxAsDeadline(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	end := s.NewVar("end")
	s.AddMin(a, Zero, 4)
	s.AddMin(end, a, 10)
	s.AddMax(end, Zero, 20) // deadline: end <= 20
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[end] != 14 {
		t.Errorf("end = %d, want 14", d[end])
	}
	// Tighten the deadline past feasibility.
	s.AddMax(end, Zero, 13)
	if _, err := s.Earliest(); !errors.Is(err, ErrInconsistent) {
		t.Errorf("over-tight deadline not detected: %v", err)
	}
}

func TestMarkReset(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(b, a, 7)
	mark := s.Mark()
	s.AddMin(a, Zero, 100)
	d, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[b] != 107 {
		t.Errorf("with extra constraint b = %d, want 107", d[b])
	}
	s.Reset(mark)
	d, err = s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	if d[b] != 7 {
		t.Errorf("after Reset b = %d, want 7", d[b])
	}
}

func TestResetBounds(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("Reset with bad mark did not panic")
		}
	}()
	s.Reset(99)
}

func TestNames(t *testing.T) {
	s := New()
	a := s.NewVar("alpha")
	if s.Name(a) != "alpha" || s.Name(Zero) != "zero" {
		t.Errorf("names wrong: %q, %q", s.Name(a), s.Name(Zero))
	}
	if s.Name(VarID(99)) == "" {
		t.Error("out-of-range name should still render")
	}
	if s.NumVars() != 2 {
		t.Errorf("NumVars = %d, want 2", s.NumVars())
	}
}

func TestAddMinUnknownVarPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("AddMin with unknown var did not panic")
		}
	}()
	s.AddMin(VarID(5), Zero, 1)
}

func TestResetAcrossNewVarRollsBackVariable(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	s.AddMin(a, Zero, 5)
	mark := s.Mark()
	b := s.NewVar("b")
	c := s.NewVar("c")
	s.AddMin(b, a, 10)
	s.AddMin(c, b, 3)
	if s.NumVars() != 4 || s.Dist(c) != 18 {
		t.Fatalf("before Reset: NumVars=%d Dist(c)=%d", s.NumVars(), s.Dist(c))
	}
	s.Reset(mark)
	if s.NumVars() != 2 {
		t.Fatalf("Reset did not remove variables: NumVars=%d, want 2", s.NumVars())
	}
	if s.Dist(a) != 5 || !s.Consistent() {
		t.Fatalf("after Reset: Dist(a)=%d consistent=%v", s.Dist(a), s.Consistent())
	}
	// The rolled-back IDs are invalid again: constraining them must panic,
	// not silently corrupt the network (the seed's footgun).
	defer func() {
		if recover() == nil {
			t.Error("AddMin on a rolled-back variable did not panic")
		}
	}()
	s.AddMin(b, a, 1)
}

func TestResetAcrossNewVarThenRecreate(t *testing.T) {
	s := New()
	mark := s.Mark()
	for round := 0; round < 3; round++ {
		v := s.NewVar("v")
		w := s.NewVar("w")
		s.AddMin(w, v, int64(10*(round+1)))
		if s.Dist(w) != int64(10*(round+1)) {
			t.Fatalf("round %d: Dist(w)=%d", round, s.Dist(w))
		}
		s.Reset(mark)
		if s.NumVars() != 1 {
			t.Fatalf("round %d: NumVars=%d after Reset", round, s.NumVars())
		}
	}
}

func TestWeightSaturation(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	// A weight beyond MaxWeight saturates instead of wrapping later sums.
	s.AddMin(b, a, math.MaxInt64)
	if !s.Consistent() {
		t.Fatal("saturated weight made the system inconsistent")
	}
	if s.Dist(b) != MaxWeight {
		t.Errorf("Dist(b) = %d, want MaxWeight (%d)", s.Dist(b), MaxWeight)
	}
	// Negative saturation: a huge deadline is harmless, not wrapped into a
	// positive cycle.
	s.AddMax(a, Zero, math.MaxInt64)
	if !s.Consistent() || s.Dist(a) != 0 {
		t.Errorf("after huge AddMax: consistent=%v Dist(a)=%d", s.Consistent(), s.Dist(a))
	}
}

func TestOverflowChainDeclaredInconsistent(t *testing.T) {
	// Chaining saturated weights cannot wrap int64: once a distance would
	// cross distCap the system is declared inconsistent (no schedule that
	// far in the future is usable), and distances stay non-negative
	// throughout. 2^60 / 2^52 = 256 links suffice; use a few more.
	s := New()
	prev := s.NewVar("v0")
	s.AddMin(prev, Zero, MaxWeight)
	for i := 0; i < 300 && s.Consistent(); i++ {
		v := s.NewVar("v")
		s.AddMin(v, prev, math.MaxInt64)
		if d := s.Dist(v); s.Consistent() && d < 0 {
			t.Fatalf("link %d: distance wrapped negative: %d", i, d)
		}
		prev = v
	}
	if s.Consistent() {
		t.Fatal("saturated chain never tripped the distance cap")
	}
	if _, err := s.Earliest(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("Earliest = %v, want ErrInconsistent", err)
	}
	// The guard is an undoable outcome like any other inconsistency.
	s.Reset(0)
	if !s.Consistent() || s.NumVars() != 1 {
		t.Fatalf("after Reset(0): consistent=%v NumVars=%d", s.Consistent(), s.NumVars())
	}
}

func TestAddWhileBrokenThenReset(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(b, a, 7)
	mark := s.Mark()
	s.AddMin(a, b, 1) // positive cycle: broken
	if s.Consistent() {
		t.Fatal("positive cycle not detected")
	}
	// Constraints added while broken are recorded for undo only.
	c := s.NewVar("c")
	s.AddMin(c, b, 100)
	s.AddMin(b, a, 50)
	if s.Consistent() {
		t.Fatal("system became consistent while broken")
	}
	s.Reset(mark)
	if !s.Consistent() {
		t.Fatal("Reset below the breaking constraint did not restore consistency")
	}
	if s.NumVars() != 3 || s.Dist(b) != 7 || s.Dist(a) != 0 {
		t.Fatalf("after Reset: NumVars=%d Dist(a)=%d Dist(b)=%d", s.NumVars(), s.Dist(a), s.Dist(b))
	}
}

func TestResetAboveBreakStaysBroken(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(b, a, 5)
	s.AddMax(b, a, 3) // broken here
	mark := s.Mark()
	s.AddMin(b, a, 9)
	s.Reset(mark)
	if s.Consistent() {
		t.Error("Reset above the breaking constraint must leave the system inconsistent")
	}
}

func TestLongPositiveCycle(t *testing.T) {
	s := New()
	vars := make([]VarID, 5)
	for i := range vars {
		vars[i] = s.NewVar("v")
	}
	for i := 1; i < len(vars); i++ {
		s.AddMin(vars[i], vars[i-1], 1)
	}
	if !s.Consistent() {
		t.Fatal("chain alone should be consistent")
	}
	s.AddMin(vars[0], vars[len(vars)-1], 0) // closes a +4 cycle
	if s.Consistent() {
		t.Error("long positive cycle not detected")
	}
}

func TestEarliestIntoReusesBuffer(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	b := s.NewVar("b")
	s.AddMin(a, Zero, 3)
	s.AddMin(b, a, 4)
	buf := make([]int64, 0, 16)
	got, err := s.EarliestInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("EarliestInto allocated despite sufficient capacity")
	}
	if got[a] != 3 || got[b] != 7 {
		t.Errorf("EarliestInto = %v, want [0 3 7]", got)
	}
	// Undersized buffers are grown, not truncated.
	small, err := s.EarliestInto(make([]int64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != s.NumVars() || small[b] != 7 {
		t.Errorf("grown buffer = %v", small)
	}
}

func TestEarliestSnapshotIsACopy(t *testing.T) {
	s := New()
	a := s.NewVar("a")
	d1, err := s.Earliest()
	if err != nil {
		t.Fatal(err)
	}
	s.AddMin(a, Zero, 42)
	if d1[a] != 0 {
		t.Error("Earliest snapshot aliased the live distance array")
	}
	d2, _ := s.Earliest()
	if d2[a] != 42 {
		t.Errorf("Dist after AddMin = %d, want 42", d2[a])
	}
}

// Property: Earliest is the least solution — every reported time
// satisfies all constraints, and lowering any single variable violates
// one (checked via satisfaction only, on random DAG-like systems).
func TestQuickEarliestSatisfiesAllConstraints(t *testing.T) {
	f := func(weights []int8) bool {
		s := New()
		const nv = 6
		vars := make([]VarID, nv)
		for i := range vars {
			vars[i] = s.NewVar("v")
		}
		// Use weights to build forward edges (i < j keeps it acyclic, so
		// always consistent).
		wi := 0
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if wi >= len(weights) {
					break
				}
				w := int64(weights[wi])
				wi++
				if w < 0 {
					continue
				}
				s.AddMin(vars[j], vars[i], w)
			}
		}
		d, err := s.Earliest()
		if err != nil {
			return false
		}
		// Re-check every constraint by replaying the same construction.
		wi = 0
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if wi >= len(weights) {
					break
				}
				w := int64(weights[wi])
				wi++
				if w < 0 {
					continue
				}
				if d[vars[j]] < d[vars[i]]+w {
					return false
				}
			}
		}
		for _, v := range vars {
			if d[v] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
