package stn

import "testing"

func BenchmarkEarliestChain(b *testing.B) {
	s := New()
	prev := s.NewVar("v0")
	for i := 1; i < 50; i++ {
		v := s.NewVar("v")
		s.AddMin(v, prev, 10)
		prev = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Earliest(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEarliestDense(b *testing.B) {
	s := New()
	const n = 30
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = s.NewVar("v")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddMin(vars[j], vars[i], int64(j-i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Earliest(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddMinMarkReset is the branch-and-bound inner step: push one
// constraint whose delta ripples down a chain, read a distance, pop.
// This is the operation the incremental engine exists for; it must not
// allocate.
func BenchmarkAddMinMarkReset(b *testing.B) {
	b.ReportAllocs()
	s := New()
	prev := s.NewVar("v0")
	head := prev
	for i := 1; i < 50; i++ {
		v := s.NewVar("v")
		s.AddMin(v, prev, 10)
		prev = v
	}
	tail := prev
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := s.Mark()
		s.AddMin(head, Zero, 100) // shifts the whole chain
		if s.Dist(tail) != 590 {
			b.Fatalf("Dist(tail) = %d", s.Dist(tail))
		}
		s.Reset(mark)
	}
}

// BenchmarkAddMinNoEffect measures the fast path: a constraint already
// satisfied by the maintained distances (the common case deep in a
// search, where most orderings are already implied).
func BenchmarkAddMinNoEffect(b *testing.B) {
	b.ReportAllocs()
	s := New()
	a := s.NewVar("a")
	z := s.NewVar("b")
	s.AddMin(z, a, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := s.Mark()
		s.AddMin(z, a, 50) // implied: no propagation
		s.Reset(mark)
	}
}

// BenchmarkInconsistentPushPop measures detecting a positive cycle and
// recovering from it — the failure half of every disjunction branch.
func BenchmarkInconsistentPushPop(b *testing.B) {
	b.ReportAllocs()
	s := New()
	a := s.NewVar("a")
	z := s.NewVar("b")
	s.AddMin(z, a, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := s.Mark()
		s.AddMin(a, z, 1) // closes a positive cycle
		if s.Consistent() {
			b.Fatal("cycle undetected")
		}
		s.Reset(mark)
	}
}

// BenchmarkEarliestInto measures the zero-allocation snapshot read.
func BenchmarkEarliestInto(b *testing.B) {
	b.ReportAllocs()
	s := New()
	prev := s.NewVar("v0")
	for i := 1; i < 50; i++ {
		v := s.NewVar("v")
		s.AddMin(v, prev, 10)
		prev = v
	}
	buf := make([]int64, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.EarliestInto(buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}
