package stn

import "testing"

func BenchmarkEarliestChain(b *testing.B) {
	s := New()
	prev := s.NewVar("v0")
	for i := 1; i < 50; i++ {
		v := s.NewVar("v")
		s.AddMin(v, prev, 10)
		prev = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Earliest(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEarliestDense(b *testing.B) {
	s := New()
	const n = 30
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = s.NewVar("v")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddMin(vars[j], vars[i], int64(j-i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Earliest(); err != nil {
			b.Fatal(err)
		}
	}
}
