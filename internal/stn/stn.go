// Package stn implements simple temporal networks: systems of difference
// constraints s(v) >= s(u) + w over integer time variables. They are the
// decidable fragment underlying the paper's scheduling conditions (eq. 4
// and the makespan objective are difference constraints; the non-overlap
// condition eq. 5 is a disjunction of two difference constraints, handled
// by the branch-and-bound layer in internal/solver).
//
// The solver computes the least solution (earliest times) by longest-path
// relaxation from a distinguished zero variable and detects inconsistency
// (positive cycles) — the role an SMT solver's difference-logic theory
// plays in the paper's implementation.
package stn

import (
	"errors"
	"fmt"
)

// VarID identifies a time variable. Zero is the distinguished origin
// variable, fixed at time 0.
type VarID int

// Zero is the origin variable present in every network.
const Zero VarID = 0

// ErrInconsistent is returned by Earliest when the constraints admit no
// solution (a positive cycle exists in the precedence graph).
var ErrInconsistent = errors.New("stn: inconsistent temporal constraints")

type edge struct {
	u, v VarID // s(v) >= s(u) + w
	w    int64
}

// STN is a growable system of difference constraints. Constraints are
// append-only; Mark and Reset give the cheap trail semantics a
// branch-and-bound search needs.
type STN struct {
	names []string
	edges []edge
}

// New returns a network containing only the Zero origin variable.
func New() *STN {
	return &STN{names: []string{"zero"}}
}

// NewVar adds a time variable constrained to s(v) >= 0 and returns its
// ID.
func (s *STN) NewVar(name string) VarID {
	id := VarID(len(s.names))
	s.names = append(s.names, name)
	s.edges = append(s.edges, edge{u: Zero, v: id, w: 0})
	return id
}

// NumVars returns the variable count including Zero.
func (s *STN) NumVars() int { return len(s.names) }

// Name returns the variable's name.
func (s *STN) Name(v VarID) string {
	if v < 0 || int(v) >= len(s.names) {
		return fmt.Sprintf("var%d", v)
	}
	return s.names[v]
}

// AddMin imposes s(v) >= s(u) + w.
func (s *STN) AddMin(v, u VarID, w int64) {
	s.checkVar(u)
	s.checkVar(v)
	s.edges = append(s.edges, edge{u: u, v: v, w: w})
}

// AddMax imposes s(v) <= s(u) + w (equivalently s(u) >= s(v) − w).
func (s *STN) AddMax(v, u VarID, w int64) { s.AddMin(u, v, -w) }

func (s *STN) checkVar(v VarID) {
	if v < 0 || int(v) >= len(s.names) {
		panic(fmt.Sprintf("stn: unknown variable %d", v))
	}
}

// Mark returns a trail position; Reset(mark) removes every constraint
// added after the corresponding Mark. Variables are never removed.
func (s *STN) Mark() int { return len(s.edges) }

// Reset truncates the constraint trail to a previous Mark, undoing every
// AddMin/AddMax since. Callers must not Reset across a NewVar call: the
// variable's defining s(v) >= 0 edge would be dropped while the variable
// remains, leaving it unbounded below in Earliest.
func (s *STN) Reset(mark int) {
	if mark < 0 || mark > len(s.edges) {
		panic(fmt.Sprintf("stn: bad mark %d", mark))
	}
	s.edges = s.edges[:mark]
}

// Earliest returns the least non-negative solution of the constraint
// system — the earliest feasible time of every variable — or
// ErrInconsistent. Complexity O(V·E) (Bellman-Ford longest path from
// Zero).
func (s *STN) Earliest() ([]int64, error) {
	n := len(s.names)
	const neg = int64(-1) << 62
	d := make([]int64, n)
	for i := 1; i < n; i++ {
		d[i] = neg
	}
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range s.edges {
			if d[e.u] == neg {
				continue
			}
			if nd := d[e.u] + e.w; nd > d[e.v] {
				d[e.v] = nd
				changed = true
			}
		}
		if !changed {
			return d, nil
		}
	}
	// Still relaxing after n rounds: positive cycle.
	return nil, ErrInconsistent
}

// Consistent reports whether the system admits any solution.
func (s *STN) Consistent() bool {
	_, err := s.Earliest()
	return err == nil
}
