// Package stn implements simple temporal networks: systems of difference
// constraints s(v) >= s(u) + w over integer time variables. They are the
// decidable fragment underlying the paper's scheduling conditions (eq. 4
// and the makespan objective are difference constraints; the non-overlap
// condition eq. 5 is a disjunction of two difference constraints, handled
// by the branch-and-bound layer in internal/solver).
//
// The engine is incremental, the way real difference-logic theory solvers
// (the role Z3 plays in the paper's implementation) are built: the least
// solution — the earliest feasible time of every variable — is maintained
// persistently in a distance array. AddMin propagates only the delta of
// the new constraint through per-variable adjacency lists with a work
// queue (SPFA-style longest-path relaxation), so the cost of one
// constraint is O(affected subgraph), not O(V·E). Every distance change
// is recorded on an undo trail, so the Mark/Reset pair a branch-and-bound
// search leans on restores the exact previous state in O(changes since
// the mark). Positive cycles (inconsistent systems) are detected during
// propagation: an increase that flows back into the source of the
// constraint being added closes a strictly-improving cycle, and a
// per-variable relaxation path-length counter bounds the propagation
// defensively.
//
// Adjacency lists keep arcs contiguous per variable (the propagation
// loop is a sequential scan), with their initial capacity carved from a
// preallocated arena so that building a paper-scale instance performs
// only a handful of allocations; a branch-and-bound search that pushes
// and pops constraints at a stable depth allocates nothing at all.
//
// Reads are zero-allocation: Dist returns one maintained distance,
// EarliestInto snapshots into a caller-owned buffer, and Consistent is
// O(1). The batch Earliest remains as an allocating snapshot wrapper for
// callers that want the seed API.
package stn

import (
	"errors"
	"fmt"
)

// VarID identifies a time variable. Zero is the distinguished origin
// variable, fixed at time 0.
type VarID int

// Zero is the origin variable present in every network.
const Zero VarID = 0

// ErrInconsistent is returned by Earliest when the constraints admit no
// solution (a positive cycle exists in the precedence graph).
var ErrInconsistent = errors.New("stn: inconsistent temporal constraints")

// MaxWeight bounds the magnitude of a single constraint weight. AddMin
// saturates weights beyond it instead of letting later distance sums wrap
// int64: with |w| <= 2^52 and distances capped at distCap = 2^60, no sum
// computed by the engine can overflow. 2^52 µs is over a century, far
// beyond any WCET or deadline a schedule can mention.
const MaxWeight = int64(1) << 52

// distCap is the divergence guard: a distance reaching it is declared
// inconsistent. A genuine least solution stays far below it (it would
// take ~2^8 chained MaxWeight constraints to approach), so in practice
// only a positive cycle — whose relaxations grow without bound — or a
// pathological saturated-weight chain trips it; both are correctly
// reported as having no usable schedule.
const distCap = int64(1) << 60

// Arena sizing: Zero accumulates an arc per variable (the s(v) >= 0
// edges) plus releases/deadlines/bounds, so it gets a large initial
// capacity; ordinary variables start with room for a typical fan-out.
// Variables that outgrow their carve fall back to regular slice growth.
const (
	zeroChunk = 64
	varChunk  = 8
	arenaSize = zeroChunk + 24*varChunk
)

// arc is one outgoing constraint edge: s(v) >= s(from) + w, stored in the
// adjacency list of "from".
type arc struct {
	v VarID
	w int64
}

// varState is the per-variable hot state: the maintained earliest time
// plus the propagation scratch (queue membership and relaxation path
// length for the cycle guard).
type varState struct {
	dist int64
	plen int32
	inQ  bool
}

// conRec records one constraint on the undo trail: which adjacency list
// grew, where the distance-change trail stood before its propagation, and
// whether it is the defining s(v) >= 0 edge of a NewVar (in which case
// Reset rolls the variable itself back too).
type conRec struct {
	u        VarID
	trailLen int
	newVar   bool
}

// distChange is one undo-trail entry: v's distance before the change.
type distChange struct {
	v   VarID
	old int64
}

// STN is a growable system of difference constraints. Constraints are
// append-only; Mark and Reset give the cheap trail semantics a
// branch-and-bound search needs, and — unlike the seed implementation —
// Reset across a NewVar properly rolls the variable back instead of
// leaving it unbounded.
type STN struct {
	names []string
	out   [][]arc
	vs    []varState
	cons  []conRec
	trail []distChange
	queue []VarID // propagation work queue, reused across AddMin calls
	arena []arc   // backing store carved into initial adjacency capacities
	used  int     // arena prefix already carved
	// broken is the index into cons of the constraint that made the
	// system inconsistent, or -1. While broken, distances are stale and
	// AddMin merely records constraints for undo; Reset below the
	// breaking constraint restores full consistency from the trail.
	broken int
}

// New returns a network containing only the Zero origin variable.
// Capacities are preallocated for a paper-scale instance so that
// building and solving one performs only a handful of allocations.
func New() *STN {
	s := &STN{
		names:  make([]string, 1, 24),
		out:    make([][]arc, 1, 24),
		vs:     make([]varState, 1, 24),
		cons:   make([]conRec, 0, 128),
		trail:  make([]distChange, 0, 256),
		queue:  make([]VarID, 0, 24),
		arena:  make([]arc, arenaSize),
		broken: -1,
	}
	s.names[0] = "zero"
	s.out[0] = s.carve(zeroChunk)
	return s
}

// carve hands out a zero-length arc slice with capacity n from the arena,
// falling back to a fresh allocation once the arena is exhausted. The
// three-index slice pins the capacity so appends can never spill into a
// neighbor's carve.
func (s *STN) carve(n int) []arc {
	if s.used+n <= len(s.arena) {
		c := s.arena[s.used : s.used : s.used+n]
		s.used += n
		return c
	}
	return make([]arc, 0, n)
}

// NewVar adds a time variable constrained to s(v) >= 0 and returns its
// ID.
func (s *STN) NewVar(name string) VarID {
	id := VarID(len(s.vs))
	s.names = append(s.names, name)
	s.out = append(s.out, s.carve(varChunk))
	s.vs = append(s.vs, varState{})
	s.cons = append(s.cons, conRec{u: Zero, trailLen: len(s.trail), newVar: true})
	s.out[Zero] = append(s.out[Zero], arc{v: id, w: 0})
	// d[id] = 0 = d[Zero] + 0 already holds; no propagation needed.
	return id
}

// NumVars returns the variable count including Zero.
func (s *STN) NumVars() int { return len(s.vs) }

// Name returns the variable's name.
func (s *STN) Name(v VarID) string {
	if v < 0 || int(v) >= len(s.names) {
		return fmt.Sprintf("var%d", v)
	}
	return s.names[v]
}

// AddMin imposes s(v) >= s(u) + w and propagates its consequences through
// the maintained distances. Weights outside [-MaxWeight, MaxWeight] are
// saturated (see MaxWeight). If the constraint closes a positive cycle
// the network becomes inconsistent: Consistent turns false and stays
// false until a Reset below this constraint.
func (s *STN) AddMin(v, u VarID, w int64) {
	s.checkVar(u)
	s.checkVar(v)
	if w > MaxWeight {
		w = MaxWeight
	} else if w < -MaxWeight {
		w = -MaxWeight
	}
	s.cons = append(s.cons, conRec{u: u, trailLen: len(s.trail)})
	s.out[u] = append(s.out[u], arc{v: v, w: w})
	if s.broken >= 0 {
		return // already inconsistent; recorded for undo only
	}
	s.propagate(u, v, w)
}

// AddMax imposes s(v) <= s(u) + w (equivalently s(u) >= s(v) − w).
func (s *STN) AddMax(v, u VarID, w int64) { s.AddMin(u, v, -w) }

func (s *STN) checkVar(v VarID) {
	if v < 0 || int(v) >= len(s.vs) {
		panic(fmt.Sprintf("stn: unknown variable %d", v))
	}
}

// propagate relaxes the consequences of the just-added edge src -> v with
// weight w through the affected subgraph. Invariant on entry: dist is the
// least solution of all constraints except the new edge. On consistent
// exit dist is the least solution including it; on a positive cycle the
// network is flagged broken (distances then stale until Reset).
//
// Cycle detection is twofold. The exact check: the only new edge is
// src -> v, so any positive cycle the system now contains passes through
// src via that edge; if the propagation ever wants to *increase*
// dist[src], the increase has flowed v -> … -> src around a
// strictly-improving cycle, which is exactly a positive cycle. The
// defensive check: plen counts the relaxation path length (in edges) from
// src; a strictly-improving path longer than the variable count must
// revisit a variable, which again closes a positive cycle. The second
// check also bounds the work of a single propagation.
func (s *STN) propagate(src, v VarID, w int64) {
	vs := s.vs
	nd := vs[src].dist + w
	if nd <= vs[v].dist {
		return // constraint already satisfied: nothing to do
	}
	if v == src || nd >= distCap {
		s.markBroken(0)
		return
	}
	start := len(s.trail)
	s.trail = append(s.trail, distChange{v: v, old: vs[v].dist})
	vs[v].dist = nd
	vs[v].plen = 1
	vs[v].inQ = true
	s.queue = append(s.queue[:0], v)
	maxLen := int32(len(vs))
	for head := 0; head < len(s.queue); head++ {
		x := s.queue[head]
		vs[x].inQ = false
		dx := vs[x].dist
		px := vs[x].plen
		for _, a := range s.out[x] {
			nd := dx + a.w
			if nd <= vs[a.v].dist {
				continue
			}
			if a.v == src || nd >= distCap || px >= maxLen {
				s.markBroken(head + 1)
				s.resetScratch(start)
				return
			}
			s.trail = append(s.trail, distChange{v: a.v, old: vs[a.v].dist})
			vs[a.v].dist = nd
			vs[a.v].plen = px + 1
			if !vs[a.v].inQ {
				vs[a.v].inQ = true
				s.queue = append(s.queue, a.v)
			}
		}
	}
	s.resetScratch(start)
}

// markBroken flags the network inconsistent at the constraint currently
// being added and clears queue membership for the unprocessed tail of the
// work queue.
func (s *STN) markBroken(head int) {
	s.broken = len(s.cons) - 1
	for _, x := range s.queue[head:] {
		s.vs[x].inQ = false
	}
}

// resetScratch zeroes the per-variable path lengths touched by the last
// propagation (the touched set is exactly the trail suffix) and empties
// the work queue, leaving the scratch ready for the next AddMin.
func (s *STN) resetScratch(trailStart int) {
	for _, tc := range s.trail[trailStart:] {
		s.vs[tc.v].plen = 0
	}
	s.queue = s.queue[:0]
}

// Mark returns a trail position; Reset(mark) removes every constraint —
// and every variable — added after the corresponding Mark.
func (s *STN) Mark() int { return len(s.cons) }

// Reset rolls the network back to a previous Mark, undoing every
// AddMin/AddMax since in O(changes): recorded distance changes are
// replayed from the undo trail, appended arcs are popped from their
// adjacency lists, and variables created after the mark are removed
// entirely (their IDs become invalid again). A network made inconsistent
// after the mark becomes consistent again, with distances restored
// exactly.
func (s *STN) Reset(mark int) {
	if mark < 0 || mark > len(s.cons) {
		panic(fmt.Sprintf("stn: bad mark %d", mark))
	}
	for i := len(s.cons) - 1; i >= mark; i-- {
		c := s.cons[i]
		for len(s.trail) > c.trailLen {
			tc := s.trail[len(s.trail)-1]
			s.trail = s.trail[:len(s.trail)-1]
			s.vs[tc.v].dist = tc.old
		}
		s.out[c.u] = s.out[c.u][:len(s.out[c.u])-1]
		if c.newVar {
			last := len(s.vs) - 1
			s.names = s.names[:last]
			s.out = s.out[:last]
			s.vs = s.vs[:last]
		}
	}
	s.cons = s.cons[:mark]
	if s.broken >= mark {
		s.broken = -1
	}
}

// Dist returns the maintained earliest time of v — the zero-allocation,
// O(1) read path for the branch-and-bound hot loop. The value is only
// meaningful while Consistent() is true; after an inconsistency it is
// stale until the next Reset below the breaking constraint.
func (s *STN) Dist(v VarID) int64 { return s.vs[v].dist }

// Consistent reports in O(1) whether the system admits any solution.
func (s *STN) Consistent() bool { return s.broken < 0 }

// Earliest returns the least non-negative solution of the constraint
// system — the earliest feasible time of every variable — or
// ErrInconsistent. It is a snapshot wrapper over the maintained distances
// (one allocation for the copy); hot paths use Dist or EarliestInto
// instead.
func (s *STN) Earliest() ([]int64, error) {
	if s.broken >= 0 {
		return nil, ErrInconsistent
	}
	return s.snapshot(make([]int64, len(s.vs))), nil
}

// EarliestInto is Earliest into a caller-owned buffer: it writes the
// current distances into buf (reallocating only when too small) and
// returns the result, so steady-state callers never allocate. The
// returned slice is the caller's copy and reflects the state at call
// time only.
func (s *STN) EarliestInto(buf []int64) ([]int64, error) {
	if s.broken >= 0 {
		return nil, ErrInconsistent
	}
	if cap(buf) < len(s.vs) {
		buf = make([]int64, len(s.vs))
	}
	return s.snapshot(buf[:len(s.vs)]), nil
}

func (s *STN) snapshot(buf []int64) []int64 {
	for i := range buf {
		buf[i] = s.vs[i].dist
	}
	return buf
}
