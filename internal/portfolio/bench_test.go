package portfolio

import (
	"context"
	"testing"
)

// BenchmarkPortfolioLWBLikeHeavy is the portfolio counterpart of the
// solver's BenchmarkMinimizeLWBLikeHeavy: the same (14 tasks, 4 rounds)
// instance, solved to a proven optimum by the race plus the
// deterministic reconstruction pass. The ns/node metric is *effective*
// node throughput — wall time per solve divided by the canonical
// single-strategy tree size — so it is directly comparable to the
// single-strategy ns/node: it measures how fast the proven-optimal
// answer is delivered relative to the work the canonical search would
// have to do, crediting the portfolio's pruning (path bound,
// most-constrained branching, shared incumbents) and charging its
// overhead (clones, losers, reconstruction).
func BenchmarkPortfolioLWBLikeHeavy(b *testing.B) {
	canon, err := lwbLikeInstance(14, 4).Minimize(100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := lwbLikeInstance(14, 4)
		res, _, err := Minimize(context.Background(), p, 100000, Options{PathBound: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Optimal || res.Makespan != canon.Makespan {
			b.Fatalf("portfolio returned makespan %d optimal %v, want %d", res.Makespan, res.Optimal, canon.Makespan)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(canon.Nodes), "ns/node")
}

// BenchmarkPortfolioStrategyNodes reports the raw per-strategy node
// counts of one race (not wall time), for visibility into where the
// pruning comes from.
func BenchmarkPortfolioStrategyNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := lwbLikeInstance(14, 4)
		_, stats, err := Minimize(context.Background(), p, 100000, Options{PathBound: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(stats.TotalNodes), "total-nodes")
			b.ReportMetric(float64(stats.ReconNodes), "recon-nodes")
		}
	}
}
