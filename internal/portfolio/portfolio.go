// Package portfolio races heterogeneous exact strategies over one
// disjunctive scheduling instance: canonical cyclic branch-and-bound, a
// greedy-seeded variant that starts from the heuristic's makespan as an
// upper bound, a most-constrained-first restart, and seeded random
// restarts. All strategies publish feasible makespans to — and prune
// strictly against — one shared atomic incumbent, and the first strategy
// to complete its search proves the optimum and cancels the rest through
// the solver's MinimizeContext plumbing.
//
// Determinism contract: the race itself is timing-nondeterministic (who
// wins, how many nodes each loser burns), but the *returned schedule* is
// not. Once any strategy proves the optimal makespan m*, a fresh clone
// replays the canonical cyclic search under MakespanBound(m*) and stops
// at the first feasible leaf; because a makespan bound never perturbs
// the STN's earliest times while the network stays consistent, that
// reconstruction visits a prefix of the canonical search's nodes and
// lands on the *same first optimal leaf* the single-strategy search
// would return — without re-paying for the optimality proof the race
// already delivered. Result.Starts, Makespan, and
// Nodes are therefore bit-identical across runs, worker counts, and
// strategy subsets — the (makespan, enumeration index) total order of
// the outer search is untouched. Only an outer-context cancellation
// forfeits determinism: the best incumbent found so far rides back with
// ErrCanceled, exactly as in the single-strategy path.
package portfolio

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/netdag/netdag/internal/solver"
)

// Strategy describes one racing search.
type Strategy struct {
	Name string
	// Order is the violated-disjunction ordering of the underlying B&B.
	Order solver.Order
	// Seed drives solver.OrderRandom.
	Seed int64
	// GreedySeed runs solver.Greedy first and, when it succeeds, publishes
	// its makespan and imposes it as the strategy's MakespanBound. A failed
	// greedy run (the heuristic is incomplete and can dead-end on feasible
	// instances) publishes nothing and falls back to the unseeded search,
	// so it can never poison exactness.
	GreedySeed bool
}

// DefaultStrategies is the portfolio raced when Options.Strategies is
// nil: most-constrained branching, the greedy-seeded search, the
// canonical search, and a seeded random restart. The order is a static
// priority: on LWB-like instances most-constrained branching with the
// path bound prunes hardest, and greedy seeding publishes a tight shared
// bound early — so they lead. Minimize runs the first strategy inline on
// the calling goroutine, so on a single-P runtime this priority order
// *is* the sequential execution order; the returned schedule is
// order-independent either way (see the determinism contract above).
func DefaultStrategies(seed int64) []Strategy {
	return []Strategy{
		{Name: "most-constrained", Order: solver.OrderMostConstrained},
		{Name: "greedy-seeded", Order: solver.OrderCyclic, GreedySeed: true},
		{Name: "exact", Order: solver.OrderCyclic},
		{Name: "random", Order: solver.OrderRandom, Seed: seed},
	}
}

// Options configures a portfolio run.
type Options struct {
	// Strategies to race; nil means DefaultStrategies(Seed).
	Strategies []Strategy
	// Seed is the seed for DefaultStrategies' random-order strategy.
	Seed int64
	// PathBound enables the path-based lower bound in every strategy and
	// in the reconstruction pass. It only takes effect when the problem
	// declared a blackout chain via SetBlackoutChain.
	PathBound bool
}

// StrategyOutcome records how one racing strategy ended, for Stats.
type StrategyOutcome struct {
	Name     string
	Nodes    int
	Makespan int64 // local best (-1 when none)
	Proved   bool  // completed its search (optimality or infeasibility proof)
	Err      error
}

// Stats reports the work done by a portfolio run.
type Stats struct {
	Outcomes   []StrategyOutcome
	Winner     string // first strategy to prove; "" when none did
	ReconNodes int    // nodes of the deterministic reconstruction pass
	TotalNodes int    // all strategy nodes plus reconstruction
	Fallback   bool   // no proof in the race; plain canonical search ran
}

// proved reports whether a strategy outcome constitutes a completed
// proof. Greedy-seeded strategies are excluded from *infeasibility*
// proofs: their self-imposed bound makes ErrBounded meaningless to the
// outer problem, and per the exactness contract a greedy artifact must
// never masquerade as proof.
func proved(st Strategy, res solver.Result, err error) bool {
	if err == nil {
		return res.Optimal
	}
	if st.GreedySeed {
		return false
	}
	return errors.Is(err, solver.ErrInfeasible) || errors.Is(err, solver.ErrBounded)
}

// Minimize races the portfolio on p and returns the deterministic
// optimal schedule. Error semantics mirror solver.MinimizeContext
// exactly: ErrInfeasible / ErrBounded only from completed proofs on the
// original instance, ErrBudget when no strategy found a schedule within
// the node budget, ErrCanceled (with the best incumbent attached) only
// when ctx itself expired — never because a losing strategy was
// canceled by the winner. maxNodes bounds each strategy individually.
func Minimize(ctx context.Context, p *solver.Problem, maxNodes int, opts Options) (solver.Result, Stats, error) {
	strategies := opts.Strategies
	if strategies == nil {
		strategies = DefaultStrategies(opts.Seed)
	}
	stats := Stats{Outcomes: make([]StrategyOutcome, len(strategies))}
	if len(strategies) == 0 {
		res, err := p.Clone().MinimizeContext(ctx, maxNodes)
		stats.Fallback = true
		stats.ReconNodes = res.Nodes
		stats.TotalNodes = res.Nodes
		return res, stats, err
	}

	shared := solver.NewIncumbent()
	raceCtx, cancelRace := context.WithCancel(ctx)
	defer cancelRace()

	type outcome struct {
		res solver.Result
		err error
	}
	outs := make([]outcome, len(strategies))
	var winner atomic.Int32
	winner.Store(-1)
	run := func(k int, st Strategy) {
		if raceCtx.Err() != nil {
			// The race is already over (a rival proved, or the outer
			// context expired) — skip the clone and the greedy warm-up;
			// this is what MinimizeRace would return at its first poll.
			outs[k] = outcome{solver.Result{Makespan: -1}, solver.ErrCanceled}
			return
		}
		q := p.Clone()
		if st.GreedySeed {
			if g, gerr := q.Greedy(); gerr == nil && g.Makespan >= 0 {
				shared.Publish(g.Makespan)
				q.MakespanBound(g.Makespan)
			}
		}
		res, err := q.MinimizeRace(raceCtx, maxNodes, solver.RaceOpts{
			Order:     st.Order,
			Seed:      st.Seed,
			Shared:    shared,
			PathBound: opts.PathBound,
		})
		outs[k] = outcome{res, err}
		if proved(st, res, err) && winner.CompareAndSwap(-1, int32(k)) {
			cancelRace() // first proof wins; stop the losers
		}
	}
	// The highest-priority strategy runs inline on this goroutine, the
	// rest on their own. The caller holds its P until it blocks, so a
	// single-P runtime executes the priority order sequentially — the
	// lead strategy finishes (and cancels the race) before any rival
	// burns nodes — while multi-P runtimes race all strategies at once.
	var wg sync.WaitGroup
	for k := 1; k < len(strategies); k++ {
		wg.Add(1)
		go func(k int, st Strategy) {
			defer wg.Done()
			run(k, st)
		}(k, strategies[k])
	}
	run(0, strategies[0])
	wg.Wait()

	for k, st := range strategies {
		stats.Outcomes[k] = StrategyOutcome{
			Name:     st.Name,
			Nodes:    outs[k].res.Nodes,
			Makespan: outs[k].res.Makespan,
			Proved:   proved(st, outs[k].res, outs[k].err),
			Err:      outs[k].err,
		}
		stats.TotalNodes += outs[k].res.Nodes
	}

	w := int(winner.Load())
	if w < 0 {
		if ctx.Err() != nil {
			// The outer context expired before any proof: surface the best
			// incumbent across strategies, as the single-strategy path does.
			best := solver.Result{Makespan: -1}
			for _, o := range outs {
				if o.res.Makespan >= 0 && (best.Makespan < 0 || o.res.Makespan < best.Makespan) {
					best = o.res
				}
			}
			best.Optimal = false
			best.Nodes = stats.TotalNodes
			return best, stats, solver.ErrCanceled
		}
		// Every strategy exhausted its budget without a proof. Fall back to
		// the plain canonical search so the budget-truncation contract —
		// and the result itself — stays deterministic.
		stats.Fallback = true
		res, err := p.Clone().MinimizeContext(ctx, maxNodes)
		stats.ReconNodes = res.Nodes
		stats.TotalNodes += res.Nodes
		return res, stats, err
	}
	stats.Winner = strategies[w].Name
	if err := outs[w].err; err != nil {
		// A completed proof of infeasibility on the original instance:
		// ErrBounded iff the instance carried an external MakespanBound,
		// exactly as MinimizeContext reports it.
		return outs[w].res, stats, err
	}

	// Optimal makespan: the winner's local best capped by anything a rival
	// published. Every published value is a feasible makespan and the
	// winner's completed search proves nothing below min(local, shared)
	// exists, so mstar is *the* optimum.
	mstar := outs[w].res.Makespan
	if s := shared.Load(); s < mstar {
		mstar = s
	}

	// Deterministic reconstruction: canonical order under the proven
	// bound, stopping at the first feasible leaf. Under MakespanBound(m*)
	// every feasible leaf achieves exactly m*, and the bound only removes
	// subtrees the canonical search would visit *after* that leaf's
	// ancestors, so the dive lands on the same schedule the single-strategy
	// search returns — at a fraction of its node count, since the
	// optimality proof already happened in the race.
	rq := p.Clone()
	rq.MakespanBound(mstar)
	res, err := rq.MinimizeRace(ctx, maxNodes, solver.RaceOpts{
		PathBound:     opts.PathBound,
		FirstFeasible: true,
	})
	stats.ReconNodes = res.Nodes
	stats.TotalNodes += res.Nodes
	if err == nil && res.Makespan == mstar {
		res.Optimal = true // proven by the race, not by this truncated dive
	}
	if err != nil || !res.Optimal || res.Makespan != mstar {
		if errors.Is(err, solver.ErrCanceled) {
			return res, stats, err
		}
		// Reconstruction under a proven-feasible bound cannot legitimately
		// fail; treat any disagreement as a budget artifact and fall back
		// to the deterministic canonical search.
		stats.Fallback = true
		res, err = p.Clone().MinimizeContext(ctx, maxNodes)
		stats.TotalNodes += res.Nodes
		return res, stats, err
	}
	return res, stats, nil
}
