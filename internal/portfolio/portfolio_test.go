package portfolio

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/netdag/netdag/internal/solver"
)

// lwbLikeInstance mirrors the structure core generates: a layered task
// DAG plus a chain of round blackouts, every task disjoint from every
// round (same construction as the solver benchmarks).
func lwbLikeInstance(tasks, rounds int) *solver.Problem {
	p := solver.NewProblem(1)
	rng := rand.New(rand.NewSource(3))
	taskIDs := make([]solver.ActID, tasks)
	for i := range taskIDs {
		taskIDs[i] = p.AddActivity("t", int64(rng.Intn(1000)+100))
		if i > 0 && rng.Float64() < 0.5 {
			p.Precede(taskIDs[rng.Intn(i)], taskIDs[i])
		}
	}
	roundIDs := make([]solver.ActID, rounds)
	for r := range roundIDs {
		roundIDs[r] = p.AddActivity("round", int64(5000+1000*r))
		if r > 0 {
			p.Precede(roundIDs[r-1], roundIDs[r])
		}
	}
	for _, t := range taskIDs {
		for _, r := range roundIDs {
			p.Disjoint(t, r)
		}
	}
	p.SetBlackoutChain(roundIDs)
	return p
}

// greedyTrapInstance is feasible, but the chronological-dispatch
// heuristic dead-ends on it: greedy orders A (earliest start 0) before B,
// pushing B past its deadline, while the exact search backtracks to the
// B-before-A order. Optimal makespan: B at 1..3, A at 4..14.
func greedyTrapInstance() *solver.Problem {
	p := solver.NewProblem(1)
	a := p.AddActivity("A", 10)
	b := p.AddActivity("B", 2)
	p.Release(b, 1)
	p.Deadline(b, 12)
	p.Disjoint(a, b)
	return p
}

func TestGreedyTrapIsATrap(t *testing.T) {
	p := greedyTrapInstance()
	if _, err := p.Greedy(); !errors.Is(err, solver.ErrInfeasible) {
		t.Fatalf("greedy err = %v, want ErrInfeasible (the instance must trap the heuristic)", err)
	}
	res, err := p.Clone().Minimize(0)
	if err != nil || res.Makespan != 14 {
		t.Fatalf("exact search: makespan %d err %v, want 14, nil", res.Makespan, err)
	}
}

// TestGreedyFailureDoesNotPoisonExactness is the warm-start regression:
// a failed Greedy must publish nothing and the portfolio must still
// return the exact optimum with no error — including when only the
// greedy-seeded strategy runs.
func TestGreedyFailureDoesNotPoisonExactness(t *testing.T) {
	for _, strategies := range [][]Strategy{
		nil, // full default portfolio
		{{Name: "greedy-seeded", Order: solver.OrderCyclic, GreedySeed: true}},
	} {
		p := greedyTrapInstance()
		res, stats, err := Minimize(context.Background(), p, 0, Options{Strategies: strategies})
		if err != nil {
			t.Fatalf("strategies=%v: err = %v (greedy failure leaked)", strategies, err)
		}
		if res.Makespan != 14 || !res.Optimal {
			t.Errorf("strategies=%v: makespan=%d optimal=%v, want 14, true (stats %+v)",
				strategies, res.Makespan, res.Optimal, stats)
		}
	}
}

// TestErrorContract: infeasibility and boundedness must be distinguished
// exactly as in the single-strategy path.
func TestErrorContract(t *testing.T) {
	// Unbounded infeasible: two disjoint activities whose deadlines cannot
	// both be met.
	p := solver.NewProblem(1)
	a := p.AddActivity("A", 5)
	b := p.AddActivity("B", 5)
	p.Deadline(a, 6)
	p.Deadline(b, 6)
	p.Disjoint(a, b)
	if _, _, err := Minimize(context.Background(), p, 0, Options{}); !errors.Is(err, solver.ErrInfeasible) {
		t.Errorf("infeasible instance: err = %v, want ErrInfeasible", err)
	}

	// Bounded infeasible: the trap instance is feasible at 14 but bounded
	// at 5, so the portfolio must report ErrBounded, not ErrInfeasible.
	q := greedyTrapInstance()
	q.MakespanBound(5)
	if _, _, err := Minimize(context.Background(), q, 0, Options{}); !errors.Is(err, solver.ErrBounded) {
		t.Errorf("bounded instance: err = %v, want ErrBounded", err)
	}

	// Canceled outer context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Minimize(ctx, lwbLikeInstance(10, 3), 0, Options{}); !errors.Is(err, solver.ErrCanceled) {
		t.Errorf("canceled context: err = %v, want ErrCanceled", err)
	}
}

// TestDeterministicAcrossStrategySubsets: the reconstruction pass makes
// the result — Starts, Makespan, Nodes — a function of the proven
// optimum only, so every strategy subset returns the identical Result.
func TestDeterministicAcrossStrategySubsets(t *testing.T) {
	subsets := [][]Strategy{
		nil,
		{{Name: "exact", Order: solver.OrderCyclic}},
		{{Name: "most-constrained", Order: solver.OrderMostConstrained}},
		{{Name: "random", Order: solver.OrderRandom, Seed: 99}},
		{
			{Name: "greedy-seeded", Order: solver.OrderCyclic, GreedySeed: true},
			{Name: "random", Order: solver.OrderRandom, Seed: 5},
		},
	}
	var ref solver.Result
	for i, strategies := range subsets {
		for run := 0; run < 3; run++ {
			p := lwbLikeInstance(10, 3)
			res, _, err := Minimize(context.Background(), p, 0, Options{Strategies: strategies, PathBound: true})
			if err != nil {
				t.Fatalf("subset %d run %d: %v", i, run, err)
			}
			if i == 0 && run == 0 {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("subset %d run %d: result %+v differs from reference %+v", i, run, res, ref)
			}
		}
	}
	// And the reference must match the plain single-strategy optimum.
	single, err := lwbLikeInstance(10, 3).Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	if single.Makespan != ref.Makespan || !reflect.DeepEqual(single.Starts, ref.Starts) {
		t.Errorf("portfolio result (makespan %d) != single-strategy (makespan %d)",
			ref.Makespan, single.Makespan)
	}
}

// TestBudgetFallbackDeterministic: when no strategy can prove within the
// node budget, the deterministic canonical fallback runs and the budget
// contract (ErrBudget with no schedule, truncated incumbent otherwise)
// is preserved.
func TestBudgetFallbackDeterministic(t *testing.T) {
	var ref solver.Result
	for run := 0; run < 3; run++ {
		p := lwbLikeInstance(14, 4)
		res, stats, err := Minimize(context.Background(), p, 50, Options{})
		if err != nil && !errors.Is(err, solver.ErrBudget) {
			t.Fatalf("run %d: err = %v", run, err)
		}
		if res.Optimal {
			t.Fatalf("run %d: 50-node budget cannot prove optimality", run)
		}
		if !stats.Fallback {
			t.Fatalf("run %d: expected the canonical fallback to run", run)
		}
		if run == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("run %d: truncated result %+v differs from %+v", run, res, ref)
		}
	}
}

// TestGreedySeedRespectsExternalBound: with an externally imposed bound
// tighter than anything greedy could produce on its own, the seeded
// strategy must not relax or poison it — the portfolio returns the exact
// optimum within the bound.
func TestGreedySeedRespectsExternalBound(t *testing.T) {
	p := lwbLikeInstance(10, 3)
	opt, err := p.Clone().Minimize(0)
	if err != nil {
		t.Fatal(err)
	}
	p.MakespanBound(opt.Makespan) // exactly the optimum: still feasible
	res, _, err := Minimize(context.Background(), p, 0, Options{})
	if err != nil {
		t.Fatalf("bounded-at-optimum: %v", err)
	}
	if res.Makespan != opt.Makespan || !res.Optimal {
		t.Errorf("makespan=%d optimal=%v, want %d, true", res.Makespan, res.Optimal, opt.Makespan)
	}

	q := lwbLikeInstance(10, 3)
	q.MakespanBound(opt.Makespan - 1) // just below: provably bounded-out
	if _, _, err := Minimize(context.Background(), q, 0, Options{}); !errors.Is(err, solver.ErrBounded) {
		t.Errorf("bounded-below-optimum: err = %v, want ErrBounded", err)
	}
}
