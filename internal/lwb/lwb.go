// Package lwb executes NETDAG schedules over the Low-Power Wireless Bus:
// a time-triggered sequence of communication rounds, each a beacon flood
// followed by contention-free slots carrying one unique-source message
// each (Ferrari et al., SenSys 2012). The executor drives the Glossy
// flood simulator over a lossy topology and records, per application
// task, a hit/miss sequence across independent runs — the end-to-end
// counterpart of the paper's §IV-A statistical validation.
package lwb

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/wh"
)

// Deployment binds an application and its schedule to a concrete
// topology.
type Deployment struct {
	App    *dag.Graph
	Sched  *core.Schedule
	Topo   *network.Topology
	Params glossy.Params
	// NodeIndex maps the application's node names to topology indices.
	NodeIndex map[string]int
	// Host is the topology index of the LWB host initiating beacons.
	Host int
}

// NewDeployment builds a deployment with the canonical node mapping: the
// application's sorted node names are assigned topology indices 0, 1,
// ... in order, and the host is index 0. The topology must have at least
// as many nodes as the application uses.
func NewDeployment(app *dag.Graph, sched *core.Schedule, topo *network.Topology, params glossy.Params) (*Deployment, error) {
	if app == nil || sched == nil || topo == nil {
		return nil, errors.New("lwb: nil deployment component")
	}
	names := app.Nodes()
	if topo.NumNodes() < len(names) {
		return nil, fmt.Errorf("lwb: topology has %d nodes, application needs %d", topo.NumNodes(), len(names))
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return &Deployment{
		App: app, Sched: sched, Topo: topo, Params: params,
		NodeIndex: idx, Host: 0,
	}, nil
}

// RunResult is the outcome of one bus execution.
type RunResult struct {
	// TaskOK[id] reports whether the task executed with all its inbound
	// data fresh this run.
	TaskOK map[dag.TaskID]bool
	// MsgOK[id] reports whether the message flood delivered to every
	// consumer (and its producer heard the round beacon).
	MsgOK map[dag.MsgID]bool
	// BeaconOK[r] reports whether round r's beacon reached every node.
	BeaconOK []bool
}

// RunOnce executes the schedule once. A message delivery succeeds when
// the round's beacon reached the producer node (it must know the slot
// layout to transmit), the slot flood reached each consumer's node, and
// the producer task itself succeeded. A task succeeds when every direct
// predecessor task succeeded and its message was delivered to this
// task's node — the conjunction semantics ω_τ = ∧_x ω_x of §IV-A, grounded
// in simulated floods instead of sampled sequences.
func (d *Deployment) RunOnce(rng *rand.Rand) (RunResult, error) {
	if rng == nil {
		return RunResult{}, errors.New("lwb: RunOnce requires a non-nil rng")
	}
	diam, err := d.Topo.Diameter()
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		TaskOK:   make(map[dag.TaskID]bool, d.App.NumTasks()),
		MsgOK:    make(map[dag.MsgID]bool, d.App.NumMessages()),
		BeaconOK: make([]bool, len(d.Sched.Rounds)),
	}
	// Beacon receptions per node, per round.
	beaconHeard := make([][]bool, len(d.Sched.Rounds))
	for _, r := range d.Sched.Rounds {
		maxSlots := int(d.Params.HopSlots(r.BeaconNTX, diam))
		fr, err := glossy.SimulateFlood(d.Topo, d.Host, r.BeaconNTX, maxSlots, rng)
		if err != nil {
			return RunResult{}, err
		}
		beaconHeard[r.Index] = fr.Received
		res.BeaconOK[r.Index] = fr.All
	}
	// Message floods, in round order.
	msgDelivered := make(map[dag.MsgID][]bool) // per topology node
	for _, r := range d.Sched.Rounds {
		for _, slot := range r.Slots {
			m := d.App.Message(slot.Msg)
			src := d.NodeIndex[d.App.Task(m.Source).Node]
			if !beaconHeard[r.Index][src] {
				// The producer never heard the round layout: slot unused.
				msgDelivered[m.ID] = make([]bool, d.Topo.NumNodes())
				continue
			}
			maxSlots := int(d.Params.HopSlots(slot.NTX, diam))
			fr, err := glossy.SimulateFlood(d.Topo, src, slot.NTX, maxSlots, rng)
			if err != nil {
				return RunResult{}, err
			}
			msgDelivered[m.ID] = fr.Received
		}
	}
	// Task success in dependency order.
	order, err := d.App.TopoOrder()
	if err != nil {
		return RunResult{}, err
	}
	for _, id := range order {
		ok := true
		node := d.NodeIndex[d.App.Task(id).Node]
		for _, p := range d.App.Preds(id) {
			if d.App.OrderOnly(p, id) {
				continue // pure serialization: no data at stake
			}
			if !res.TaskOK[p] {
				ok = false
				break
			}
			if !d.App.ConsumesMessage(p, id) {
				continue
			}
			m, _ := d.App.MessageOf(p)
			if got := msgDelivered[m.ID]; got == nil || !got[node] {
				ok = false
				break
			}
		}
		res.TaskOK[id] = ok
	}
	// Message-level bookkeeping for reporting.
	for _, m := range d.App.Messages() {
		got := msgDelivered[m.ID]
		ok := got != nil
		if ok {
			for _, c := range m.Dests {
				if !got[d.NodeIndex[d.App.Task(c).Node]] {
					ok = false
					break
				}
			}
		}
		res.MsgOK[m.ID] = ok && res.TaskOK[m.Source]
	}
	return res, nil
}

// Run executes the schedule `runs` times and returns the per-task hit
// sequences (independent runs of the application, §IV-A).
func (d *Deployment) Run(runs int, rng *rand.Rand) (map[dag.TaskID]wh.Seq, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("lwb: runs must be positive, got %d", runs)
	}
	out := make(map[dag.TaskID]wh.Seq, d.App.NumTasks())
	for _, t := range d.App.Tasks() {
		out[t.ID] = make(wh.Seq, runs)
	}
	for i := 0; i < runs; i++ {
		r, err := d.RunOnce(rng)
		if err != nil {
			return nil, err
		}
		for id, ok := range r.TaskOK {
			out[id][i] = ok
		}
	}
	return out, nil
}
