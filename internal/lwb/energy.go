package lwb

import (
	"errors"
	"fmt"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/glossy"
)

// EnergyModel converts a NETDAG schedule into per-node radio charge — the
// currency of the power/latency tradeoff the paper's §IV-D explores.
// During an LWB round every participating node keeps its radio on for the
// whole round (that is what makes Glossy's constructive interference
// work); a node spends its flood time split between transmitting (its
// N_TX transmissions, each one hop slot of airtime) and listening.
// Outside rounds the radio is off and only leakage flows.
type EnergyModel struct {
	RXCurrentMA    float64 // radio listening current
	TXCurrentMA    float64 // radio transmitting current
	SleepCurrentMA float64 // radio off / MCU sleep current
	VoltageV       float64
}

// DefaultEnergyModel is a CC2420-class profile (the radio family Glossy
// was characterized on): RX 18.8 mA, TX 17.4 mA at 0 dBm, ~20 µA asleep,
// 3 V supply.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		RXCurrentMA:    18.8,
		TXCurrentMA:    17.4,
		SleepCurrentMA: 0.02,
		VoltageV:       3.0,
	}
}

// Validate checks the model's parameters.
func (m EnergyModel) Validate() error {
	if m.RXCurrentMA <= 0 || m.TXCurrentMA <= 0 || m.SleepCurrentMA < 0 || m.VoltageV <= 0 {
		return fmt.Errorf("lwb: invalid energy model %+v", m)
	}
	return nil
}

// EnergyReport is the per-node radio cost of executing one schedule
// instance. LWB radio time is identical across nodes (all nodes
// participate in every flood), so the report is per node.
type EnergyReport struct {
	// TXTimeUS is the worst-case time spent transmitting per schedule
	// execution (every flood's full N_TX budget).
	TXTimeUS int64
	// RXTimeUS is the remaining radio-on time across all rounds.
	RXTimeUS int64
	// SleepTimeUS is the radio-off time inside the makespan.
	SleepTimeUS int64
	// ChargeUC is the total charge in microcoulombs per execution.
	ChargeUC float64
	// AvgPowerMW is the average power over the makespan.
	AvgPowerMW float64
	// RadioDutyCycle is radio-on time divided by makespan — the metric
	// low-power MAC papers report.
	RadioDutyCycle float64
}

// Evaluate computes the worst-case per-node energy of one execution of
// the schedule under the given Glossy constants and diameter bound.
func (m EnergyModel) Evaluate(s *core.Schedule, p glossy.Params, diameter int) (EnergyReport, error) {
	if err := m.Validate(); err != nil {
		return EnergyReport{}, err
	}
	if s == nil {
		return EnergyReport{}, errors.New("lwb: nil schedule")
	}
	if diameter < 1 {
		return EnergyReport{}, fmt.Errorf("lwb: diameter %d must be >= 1", diameter)
	}
	var txUS, onUS int64
	hopAirtime := func(width int) int64 { return p.C + p.D*int64(width) }
	for _, r := range s.Rounds {
		onUS += r.Duration
		txUS += int64(r.BeaconNTX) * hopAirtime(p.BeaconWidth)
		for _, sl := range r.Slots {
			txUS += int64(sl.NTX) * hopAirtime(sl.Width)
		}
	}
	if txUS > onUS {
		// The reservation always covers the TX budget (eq. 3 reserves
		// 2χ+D-1+BHW hop slots per flood); guard against degenerate
		// hand-built schedules.
		txUS = onUS
	}
	rxUS := onUS - txUS
	sleepUS := s.Makespan - onUS
	if sleepUS < 0 {
		sleepUS = 0
	}
	// charge[µC] = t[µs] × I[mA] / 1000.
	charge := (float64(txUS)*m.TXCurrentMA + float64(rxUS)*m.RXCurrentMA +
		float64(sleepUS)*m.SleepCurrentMA) / 1000.0
	rep := EnergyReport{
		TXTimeUS:    txUS,
		RXTimeUS:    rxUS,
		SleepTimeUS: sleepUS,
		ChargeUC:    charge,
	}
	if s.Makespan > 0 {
		// P[mW] = Q[µC] × V[V] / t[µs] × 1000.
		rep.AvgPowerMW = charge * m.VoltageV / float64(s.Makespan) * 1000.0
		rep.RadioDutyCycle = float64(onUS) / float64(s.Makespan)
	}
	return rep, nil
}

// LifetimeHours estimates node lifetime when the schedule repeats with
// the given period (µs, at least the makespan) on a battery of the given
// capacity (mAh). Between executions the node sleeps.
func (m EnergyModel) LifetimeHours(rep EnergyReport, periodUS int64, batteryMAH float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if batteryMAH <= 0 {
		return 0, fmt.Errorf("lwb: battery capacity %v must be positive", batteryMAH)
	}
	if periodUS <= 0 {
		return 0, fmt.Errorf("lwb: period %d µs must be positive", periodUS)
	}
	active := rep.TXTimeUS + rep.RXTimeUS + rep.SleepTimeUS
	if periodUS < active {
		return 0, fmt.Errorf("lwb: period %d µs shorter than the schedule's %d µs", periodUS, active)
	}
	extraSleep := float64(periodUS-active) * m.SleepCurrentMA / 1000.0
	chargePerPeriodUC := rep.ChargeUC + extraSleep
	if chargePerPeriodUC <= 0 {
		return 0, errors.New("lwb: degenerate zero-charge period")
	}
	// battery[µC] = mAh × 3600 × 1000.
	batteryUC := batteryMAH * 3.6e6
	periods := batteryUC / chargePerPeriodUC
	return periods * float64(periodUS) / 3.6e9, nil
}
