package lwb

import (
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/network"
)

// deployPipeline schedules a 3-stage pipeline and deploys it on a
// topology with the given uniform link PRR.
func deployPipeline(t testing.TB, prr float64) (*Deployment, *core.Problem) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App:      g,
		Params:   glossy.DefaultParams(),
		Diameter: 2,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 1 - (1 - prr)}, // aligned with topology
		SoftCons: map[dag.TaskID]float64{last.ID: 0.8},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	topo := network.Line(3, prr)
	d, err := NewDeployment(g, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestNewDeploymentValidation(t *testing.T) {
	g, _ := apps.Pipeline(3, 500, 8)
	if _, err := NewDeployment(nil, nil, nil, glossy.DefaultParams()); err == nil {
		t.Error("nil components accepted")
	}
	// Topology smaller than the application's node set.
	p := &core.Problem{App: g, Params: glossy.DefaultParams(), Diameter: 2,
		Mode: core.Soft, SoftStat: glossy.BernoulliSoft{PerTX: 0.9}}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeployment(g, s, network.Line(2, 0.9), p.Params); err == nil {
		t.Error("undersized topology accepted")
	}
}

func TestRunOncePerfectLinks(t *testing.T) {
	d, _ := deployPipeline(t, 1)
	rng := rand.New(rand.NewSource(9))
	res, err := d.RunOnce(rng)
	if err != nil {
		t.Fatal(err)
	}
	for id, ok := range res.TaskOK {
		if !ok {
			t.Errorf("task %d failed under perfect links", id)
		}
	}
	for r, ok := range res.BeaconOK {
		if !ok {
			t.Errorf("beacon %d failed under perfect links", r)
		}
	}
	for m, ok := range res.MsgOK {
		if !ok {
			t.Errorf("message %d failed under perfect links", m)
		}
	}
}

func TestRunHitRateTracksTarget(t *testing.T) {
	d, p := deployPipeline(t, 0.8)
	rng := rand.New(rand.NewSource(10))
	seqs, err := d.Run(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := d.App.TaskByName("stage2")
	rate := seqs[last.ID].HitRate()
	// The scheduler targeted 0.8 using its statistic; the end-to-end
	// simulated rate should be in the same regime (not a proof, a sanity
	// band: the flood simulator is more forgiving than the per-flood
	// Bernoulli model on a 2-hop line with relaying).
	if rate < 0.6 {
		t.Errorf("end-to-end hit rate %v far below the 0.8 target", rate)
	}
	if tgt := p.SoftCons[last.ID]; rate < tgt-0.25 {
		t.Errorf("hit rate %v more than 0.25 below target %v", rate, tgt)
	}
}

func TestRunSourceTaskAlwaysSucceeds(t *testing.T) {
	d, _ := deployPipeline(t, 0.5)
	rng := rand.New(rand.NewSource(11))
	seqs, err := d.Run(500, rng)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := d.App.TaskByName("stage0")
	if seqs[first.ID].HitRate() != 1 {
		t.Errorf("source task hit rate %v, want 1 (no inbound dependencies)", seqs[first.ID].HitRate())
	}
}

func TestRunMonotoneInDependencyDepth(t *testing.T) {
	d, _ := deployPipeline(t, 0.75)
	rng := rand.New(rand.NewSource(12))
	seqs, err := d.Run(4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := d.App.TaskByName("stage0")
	s1, _ := d.App.TaskByName("stage1")
	s2, _ := d.App.TaskByName("stage2")
	r0, r1, r2 := seqs[s0.ID].HitRate(), seqs[s1.ID].HitRate(), seqs[s2.ID].HitRate()
	if !(r0 >= r1 && r1 >= r2) {
		t.Errorf("hit rates not monotone along the pipeline: %v %v %v", r0, r1, r2)
	}
}

func TestRunValidation(t *testing.T) {
	d, _ := deployPipeline(t, 0.9)
	if _, err := d.Run(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := d.RunOnce(nil); err == nil {
		t.Error("nil rng accepted")
	}
}
