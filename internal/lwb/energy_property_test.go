package lwb

import (
	"math"
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/glossy"
)

// randSchedule builds a random but internally consistent schedule: every
// flood's duration is its eq. (3) reservation under params/diameter, so
// the reservation always covers the TX budget and the clamp never fires.
func randSchedule(rng *rand.Rand, params glossy.Params, diameter int) *core.Schedule {
	s := &core.Schedule{}
	nRounds := 1 + rng.Intn(5)
	var t int64
	for r := 0; r < nRounds; r++ {
		round := core.Round{
			Index:     r,
			Start:     t,
			BeaconNTX: 1 + rng.Intn(5),
		}
		round.Duration = params.BeaconDuration(round.BeaconNTX, diameter)
		for i := 0; i < rng.Intn(4); i++ {
			sl := core.Slot{
				Msg:   0,
				NTX:   1 + rng.Intn(5),
				Width: 1 + rng.Intn(64),
			}
			sl.Duration = params.SlotDuration(sl.NTX, sl.Width, diameter)
			round.Duration += sl.Duration
			round.Slots = append(round.Slots, sl)
		}
		s.Rounds = append(s.Rounds, round)
		s.BusTime += round.Duration
		t += round.Duration + int64(rng.Intn(5000)) // inter-round gap
	}
	s.Makespan = t + int64(rng.Intn(10000)) // trailing computation
	return s
}

// rebuildDurations recomputes every flood duration and the derived
// aggregates after an NTX mutation, keeping the schedule consistent.
func rebuildDurations(s *core.Schedule, params glossy.Params, diameter int) {
	var t int64
	s.BusTime = 0
	for r := range s.Rounds {
		round := &s.Rounds[r]
		round.Start = t
		round.Duration = params.BeaconDuration(round.BeaconNTX, diameter)
		for i := range round.Slots {
			round.Slots[i].Duration = params.SlotDuration(round.Slots[i].NTX, round.Slots[i].Width, diameter)
			round.Duration += round.Slots[i].Duration
		}
		s.BusTime += round.Duration
		t = round.Start + round.Duration + 1000
	}
	if s.Makespan < t {
		s.Makespan = t
	}
}

func TestEnergyEvaluateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := DefaultEnergyModel()
	params := glossy.DefaultParams()
	for trial := 0; trial < 200; trial++ {
		diameter := 1 + rng.Intn(4)
		s := randSchedule(rng, params, diameter)
		rep, err := m.Evaluate(s, params, diameter)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.ChargeUC < 0 || rep.TXTimeUS < 0 || rep.RXTimeUS < 0 || rep.SleepTimeUS < 0 {
			t.Fatalf("trial %d: negative component in %+v", trial, rep)
		}
		// Radio-on partition: TX + RX time equals total round duration.
		var onUS int64
		for _, r := range s.Rounds {
			onUS += r.Duration
		}
		if rep.TXTimeUS+rep.RXTimeUS != onUS {
			t.Fatalf("trial %d: TX %d + RX %d != on-time %d", trial, rep.TXTimeUS, rep.RXTimeUS, onUS)
		}
		if rep.RadioDutyCycle < 0 || rep.RadioDutyCycle > 1 {
			t.Fatalf("trial %d: duty cycle %v outside [0,1]", trial, rep.RadioDutyCycle)
		}

		// Monotone in a slot's NTX (durations rebuilt consistently: each
		// extra transmission adds airtime AND reservation, so charge grows
		// even though I_TX < I_RX).
		bumped := randSchedule(rng, params, diameter)
		*bumped = *s
		bumped.Rounds = append([]core.Round(nil), s.Rounds...)
		for r := range bumped.Rounds {
			bumped.Rounds[r].Slots = append([]core.Slot(nil), s.Rounds[r].Slots...)
		}
		bumpedAny := false
		for r := range bumped.Rounds {
			if len(bumped.Rounds[r].Slots) > 0 {
				bumped.Rounds[r].Slots[rng.Intn(len(bumped.Rounds[r].Slots))].NTX++
				bumpedAny = true
				break
			}
		}
		if !bumpedAny {
			bumped.Rounds[rng.Intn(len(bumped.Rounds))].BeaconNTX++
		}
		rebuildDurations(bumped, params, diameter)
		repB, err := m.Evaluate(bumped, params, diameter)
		if err != nil {
			t.Fatalf("trial %d: bumped: %v", trial, err)
		}
		if repB.ChargeUC < rep.ChargeUC {
			t.Fatalf("trial %d: charge decreased after raising NTX: %v -> %v", trial, rep.ChargeUC, repB.ChargeUC)
		}
		if repB.TXTimeUS <= rep.TXTimeUS {
			t.Fatalf("trial %d: TX time did not grow after raising NTX: %d -> %d", trial, rep.TXTimeUS, repB.TXTimeUS)
		}

		// Monotone in round count: appending a round adds charge.
		grown := &core.Schedule{Rounds: append([]core.Round(nil), s.Rounds...)}
		extra := core.Round{Index: len(grown.Rounds), Start: s.Makespan + 1, BeaconNTX: 1}
		extra.Duration = params.BeaconDuration(extra.BeaconNTX, diameter)
		grown.Rounds = append(grown.Rounds, extra)
		grown.BusTime = s.BusTime + extra.Duration
		grown.Makespan = extra.Start + extra.Duration
		repG, err := m.Evaluate(grown, params, diameter)
		if err != nil {
			t.Fatalf("trial %d: grown: %v", trial, err)
		}
		if repG.ChargeUC <= rep.ChargeUC {
			t.Fatalf("trial %d: charge did not grow with an extra round: %v -> %v", trial, rep.ChargeUC, repG.ChargeUC)
		}
	}
}

// TestEnergyEvaluateClampRegression pins the txUS > onUS defensive clamp
// with a hand-built degenerate schedule whose reserved duration undercuts
// its own TX budget.
func TestEnergyEvaluateClampRegression(t *testing.T) {
	m := DefaultEnergyModel()
	params := glossy.DefaultParams()
	s := &core.Schedule{
		Rounds: []core.Round{{
			Index:     0,
			Start:     0,
			Duration:  10, // far below the beacon's real reservation
			BeaconNTX: 5,
		}},
		BusTime:  10,
		Makespan: 100,
	}
	rep, err := m.Evaluate(s, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TXTimeUS != 10 || rep.RXTimeUS != 0 {
		t.Errorf("clamp should pin TX to on-time: TX %d RX %d, want 10/0", rep.TXTimeUS, rep.RXTimeUS)
	}
	if rep.SleepTimeUS != 90 {
		t.Errorf("sleep time %d, want 90", rep.SleepTimeUS)
	}
	if rep.ChargeUC <= 0 {
		t.Errorf("clamped charge %v should stay positive", rep.ChargeUC)
	}
}

func TestLifetimeEdgeCases(t *testing.T) {
	m := DefaultEnergyModel()
	// A realistic report to reuse across cases.
	active := EnergyReport{TXTimeUS: 1000, RXTimeUS: 4000, SleepTimeUS: 5000, ChargeUC: 100}
	for _, tc := range []struct {
		name     string
		rep      EnergyReport
		periodUS int64
		battery  float64
		wantErr  bool
	}{
		{"zero period", active, 0, 2000, true},
		{"negative period", active, -5, 2000, true},
		{"period equals active time", active, 10000, 2000, false},
		{"zero-makespan schedule", EnergyReport{}, 1_000_000, 2000, false},
		{"huge battery no overflow", active, 1_000_000, 1e12, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, err := m.LifetimeHours(tc.rep, tc.periodUS, tc.battery)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %v hours", h)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if h <= 0 || math.IsInf(h, 0) || math.IsNaN(h) {
				t.Fatalf("implausible lifetime %v", h)
			}
		})
	}

	// The non-positive-period error must be the explicit rejection, not
	// the misleading "period shorter than schedule" message.
	_, err := m.LifetimeHours(active, 0, 2000)
	if err == nil {
		t.Fatal("zero period accepted")
	}
	if got := err.Error(); got != "lwb: period 0 µs must be positive" {
		t.Errorf("zero-period error %q, want the explicit positivity rejection", got)
	}

	// Zero-makespan schedule under a zero-sleep model: no charge flows at
	// all, which is degenerate (infinite lifetime) and must error.
	noSleep := EnergyModel{RXCurrentMA: 18.8, TXCurrentMA: 17.4, SleepCurrentMA: 0, VoltageV: 3}
	if _, err := noSleep.LifetimeHours(EnergyReport{}, 1_000_000, 2000); err == nil {
		t.Error("zero-charge period accepted")
	}
}
