package lwb

import (
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
)

func solvedSoftPipeline(t testing.TB, target float64) (*core.Problem, *core.Schedule) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: target},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestEnergyEvaluateBasics(t *testing.T) {
	p, s := solvedSoftPipeline(t, 0.9)
	m := DefaultEnergyModel()
	rep, err := m.Evaluate(s, p.Params, p.Diameter)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TXTimeUS <= 0 || rep.RXTimeUS <= 0 {
		t.Errorf("degenerate radio times: %+v", rep)
	}
	if rep.TXTimeUS+rep.RXTimeUS != s.BusTime {
		t.Errorf("radio-on time %d != bus time %d", rep.TXTimeUS+rep.RXTimeUS, s.BusTime)
	}
	if rep.SleepTimeUS != s.Makespan-s.BusTime {
		t.Errorf("sleep time %d != makespan-bus %d", rep.SleepTimeUS, s.Makespan-s.BusTime)
	}
	if rep.ChargeUC <= 0 || rep.AvgPowerMW <= 0 {
		t.Errorf("degenerate energy: %+v", rep)
	}
	if rep.RadioDutyCycle <= 0 || rep.RadioDutyCycle > 1 {
		t.Errorf("duty cycle %v outside (0,1]", rep.RadioDutyCycle)
	}
}

func TestEnergyGrowsWithReliability(t *testing.T) {
	// The paper's central tradeoff: a stricter real-time target costs
	// radio energy.
	m := DefaultEnergyModel()
	pLoose, sLoose := solvedSoftPipeline(t, 0.5)
	pTight, sTight := solvedSoftPipeline(t, 0.999)
	rLoose, err := m.Evaluate(sLoose, pLoose.Params, pLoose.Diameter)
	if err != nil {
		t.Fatal(err)
	}
	rTight, err := m.Evaluate(sTight, pTight.Params, pTight.Diameter)
	if err != nil {
		t.Fatal(err)
	}
	if rTight.ChargeUC <= rLoose.ChargeUC {
		t.Errorf("0.999 target charge %v not above 0.5 target charge %v",
			rTight.ChargeUC, rLoose.ChargeUC)
	}
	if rTight.TXTimeUS <= rLoose.TXTimeUS {
		t.Errorf("TX time did not grow with reliability")
	}
}

func TestEnergyModelValidation(t *testing.T) {
	_, s := solvedSoftPipeline(t, 0.9)
	bad := EnergyModel{RXCurrentMA: -1, TXCurrentMA: 17, SleepCurrentMA: 0, VoltageV: 3}
	if _, err := bad.Evaluate(s, glossy.DefaultParams(), 3); err == nil {
		t.Error("invalid model accepted")
	}
	good := DefaultEnergyModel()
	if _, err := good.Evaluate(nil, glossy.DefaultParams(), 3); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := good.Evaluate(s, glossy.DefaultParams(), 0); err == nil {
		t.Error("zero diameter accepted")
	}
}

func TestLifetime(t *testing.T) {
	p, s := solvedSoftPipeline(t, 0.9)
	m := DefaultEnergyModel()
	rep, err := m.Evaluate(s, p.Params, p.Diameter)
	if err != nil {
		t.Fatal(err)
	}
	// 1-second period, 2000 mAh battery.
	h1, err := m.LifetimeHours(rep, 1_000_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if h1 <= 0 {
		t.Fatalf("non-positive lifetime %v", h1)
	}
	// A slower period (10 s) must extend lifetime.
	h10, err := m.LifetimeHours(rep, 10_000_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if h10 <= h1 {
		t.Errorf("10s period lifetime %v not above 1s period %v", h10, h1)
	}
	// Sanity: a duty-cycled CC2420 node on 2000 mAh at a 10 s period
	// should live weeks, not hours or centuries.
	if h10 < 24 || h10 > 24*365*20 {
		t.Errorf("implausible lifetime %v hours", h10)
	}
	if _, err := m.LifetimeHours(rep, 10, 2000); err == nil {
		t.Error("period shorter than schedule accepted")
	}
	if _, err := m.LifetimeHours(rep, 1_000_000, 0); err == nil {
		t.Error("zero battery accepted")
	}
}
