package network

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestAddLinkValidation(t *testing.T) {
	topo := NewTopology(3)
	if err := topo.AddLink(0, 0, 0.5); err == nil {
		t.Error("self-link accepted")
	}
	if err := topo.AddLink(0, 3, 0.5); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := topo.AddLink(0, 1, 0); err == nil {
		t.Error("zero PRR accepted")
	}
	if err := topo.AddLink(0, 1, 1.5); err == nil {
		t.Error("PRR > 1 accepted")
	}
	if err := topo.AddLink(0, 1, 0.9); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	if topo.PRR(0, 1) != 0.9 || topo.PRR(1, 0) != 0.9 {
		t.Error("link not symmetric")
	}
}

func TestLineDiameter(t *testing.T) {
	topo := Line(5, 0.9)
	d, err := topo.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Errorf("line-5 diameter = %d, want 4", d)
	}
	if !topo.Connected() {
		t.Error("line should be connected")
	}
}

func TestStarDiameter(t *testing.T) {
	topo := Star(6, 0.9)
	d, err := topo.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}
}

func TestGridDiameter(t *testing.T) {
	topo := Grid(3, 3, 0.9)
	d, err := topo.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 { // Manhattan distance corner to corner
		t.Errorf("3x3 grid diameter = %d, want 4", d)
	}
}

func TestCliqueDiameter(t *testing.T) {
	topo := Clique(7, 1)
	d, err := topo.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("clique diameter = %d, want 1", d)
	}
}

func TestDisconnected(t *testing.T) {
	topo := NewTopology(4)
	if err := topo.AddLink(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(2, 3, 0.9); err != nil {
		t.Fatal(err)
	}
	if topo.Connected() {
		t.Error("two components reported connected")
	}
	if _, err := topo.Diameter(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("Diameter on disconnected topology: %v, want ErrDisconnected", err)
	}
}

func TestNeighbors(t *testing.T) {
	topo := Star(4, 0.8)
	hub := topo.Neighbors(0)
	if len(hub) != 3 {
		t.Errorf("hub neighbors = %v", hub)
	}
	leaf := topo.Neighbors(2)
	if len(leaf) != 1 || leaf[0] != 0 {
		t.Errorf("leaf neighbors = %v, want [0]", leaf)
	}
}

func TestMeanPRR(t *testing.T) {
	topo := NewTopology(3)
	_ = topo.AddLink(0, 1, 0.8)
	_ = topo.AddLink(1, 2, 0.6)
	if got := topo.MeanPRR(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("MeanPRR = %v, want 0.7", got)
	}
	if got := NewTopology(2).MeanPRR(); got != 0 {
		t.Errorf("edgeless MeanPRR = %v, want 0", got)
	}
}

func TestSignalStrengthModel(t *testing.T) {
	a := Point{0, 0}
	// Distance 0.5 -> r^2 = 0.25 -> SS = Q*4.
	b := Point{0.5, 0}
	if got := SignalStrength(0.25, a, b); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("SignalStrength = %v, want 1.0", got)
	}
	// Saturation at 2.
	if fss, ok := FilteredSS(1.0, a, Point{0.1, 0}); !ok || fss != SSMax {
		t.Errorf("FilteredSS near = (%v,%v), want saturation at %v", fss, ok, SSMax)
	}
	// Out of range at SS <= 0.5.
	if _, ok := FilteredSS(0.125, a, b); ok {
		t.Error("FilteredSS should cut at SS <= 0.5")
	}
	// Exactly at the boundary: excluded (paper: "at or below 0.5").
	if _, ok := FilteredSS(0.125, a, Point{0.5, 0}); ok {
		t.Error("boundary SS = 0.5 must be out of range")
	}
	// Coincident points saturate rather than overflow.
	if fss, ok := FilteredSS(0.5, a, a); !ok || fss != SSMax {
		t.Errorf("coincident FilteredSS = (%v,%v)", fss, ok)
	}
}

func TestPRRFromFSSMonotone(t *testing.T) {
	prev := 0.0
	for fss := 0.6; fss <= 2.0; fss += 0.1 {
		prr := PRRFromFSS(fss)
		if prr <= prev {
			t.Fatalf("PRRFromFSS not strictly increasing at %v", fss)
		}
		if prr <= 0 || prr > 1 {
			t.Fatalf("PRRFromFSS(%v) = %v outside (0,1]", fss, prr)
		}
		prev = prr
	}
	if PRRFromFSS(SSMax) != 1 {
		t.Error("saturated signal should give PRR 1")
	}
}

func TestFromPlacement(t *testing.T) {
	pts := Placement{{0, 0}, {0.3, 0}, {1, 1}}
	topo := FromPlacement(pts, 0.2)
	// 0-1: r^2 = 0.09, SS = 2.22 -> in range (saturated).
	if topo.PRR(0, 1) != 1 {
		t.Errorf("close pair PRR = %v, want 1", topo.PRR(0, 1))
	}
	// 0-2: r^2 = 2, SS = 0.1 -> out of range.
	if topo.PRR(0, 2) != 0 {
		t.Errorf("far pair PRR = %v, want 0", topo.PRR(0, 2))
	}
}

func TestMeanFSSIncreasesWithPower(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := RandomPlacement(10, rng)
	prev := -1.0
	for _, q := range []float64{0.1, 0.2, 0.4, 0.8, 1.0} {
		fss := MeanFSS(pts, q)
		if fss < prev {
			t.Fatalf("MeanFSS decreased when power rose to %v", q)
		}
		prev = fss
	}
}

func TestFromPlacementShadowed(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := RandomPlacement(12, rng)
	// sigma = 0 reproduces the deterministic model exactly.
	plain := FromPlacement(pts, 0.4)
	shadowZero, err := FromPlacementShadowed(pts, 0.4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if plain.PRR(i, j) != shadowZero.PRR(i, j) {
				t.Fatalf("sigma=0 shadowing differs from FromPlacement at %d-%d", i, j)
			}
		}
	}
	// Strong shadowing changes the link set (with overwhelming
	// probability over 66 pairs).
	shadowed, err := FromPlacementShadowed(pts, 0.4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			a := plain.PRR(i, j) > 0
			b := shadowed.PRR(i, j) > 0
			if a != b {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("6 dB shadowing changed no link")
	}
	if _, err := FromPlacementShadowed(pts, 0.4, -1, rng); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := FromPlacementShadowed(pts, 0.4, 3, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	orig := Grid(3, 2, 0.85)
	var buf strings.Builder
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != orig.NumNodes() {
		t.Fatalf("nodes %d, want %d", back.NumNodes(), orig.NumNodes())
	}
	for i := 0; i < orig.NumNodes(); i++ {
		for j := 0; j < orig.NumNodes(); j++ {
			if back.PRR(i, j) != orig.PRR(i, j) {
				t.Fatalf("PRR(%d,%d) = %v, want %v", i, j, back.PRR(i, j), orig.PRR(i, j))
			}
		}
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := map[string]string{
		"bad json":    `{`,
		"zero nodes":  `{"nodes":0,"links":[]}`,
		"bad index":   `{"nodes":2,"links":[{"a":0,"b":5,"prr":0.5}]}`,
		"bad prr":     `{"nodes":2,"links":[{"a":0,"b":1,"prr":2}]}`,
		"unknown key": `{"nodes":2,"links":[],"bogus":1}`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	topo, pts, err := RandomGeometric(8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() {
		t.Error("RandomGeometric returned a disconnected topology")
	}
	if len(pts) != 8 {
		t.Errorf("placement size = %d", len(pts))
	}
	if _, _, err := RandomGeometric(3, 0.5, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
