package network

import (
	"errors"
	"fmt"
	"math/rand"
)

// Mobility support for the design-space exploration of §IV-D: nodes are
// "mobile within the unit square"; the system designer profiles the
// worst-case average pairwise signal strength and network diameter along
// a mobility trace for each transmission-power setting.

// Walker generates a mobility trace: a sequence of placements of the same
// node set inside the unit square.
type Walker interface {
	// Walk returns a trace of the given number of snapshots.
	Walk(steps int) []Placement
}

// RandomWaypoint is the classic random-waypoint mobility model: each node
// picks a uniform destination and moves toward it at its speed; on
// arrival it picks a new destination.
type RandomWaypoint struct {
	rng   *rand.Rand
	pos   Placement
	dst   Placement
	Speed float64 // distance per step
}

// NewRandomWaypoint starts n nodes at uniform positions with the given
// per-step speed. rng must be non-nil.
func NewRandomWaypoint(n int, speed float64, rng *rand.Rand) (*RandomWaypoint, error) {
	if rng == nil {
		return nil, errors.New("network: NewRandomWaypoint requires a non-nil rng")
	}
	if n <= 0 {
		return nil, fmt.Errorf("network: need at least one node, got %d", n)
	}
	if speed <= 0 || speed > 1 {
		return nil, fmt.Errorf("network: speed %v outside (0,1]", speed)
	}
	return &RandomWaypoint{
		rng:   rng,
		pos:   RandomPlacement(n, rng),
		dst:   RandomPlacement(n, rng),
		Speed: speed,
	}, nil
}

// Walk advances the model and returns the trace including the initial
// positions (steps snapshots in total).
func (w *RandomWaypoint) Walk(steps int) []Placement {
	trace := make([]Placement, 0, steps)
	for s := 0; s < steps; s++ {
		snap := make(Placement, len(w.pos))
		copy(snap, w.pos)
		trace = append(trace, snap)
		w.step()
	}
	return trace
}

func (w *RandomWaypoint) step() {
	for i := range w.pos {
		d := Distance(w.pos[i], w.dst[i])
		if d <= w.Speed {
			w.pos[i] = w.dst[i]
			w.dst[i] = Point{X: w.rng.Float64(), Y: w.rng.Float64()}
			continue
		}
		frac := w.Speed / d
		w.pos[i].X += (w.dst[i].X - w.pos[i].X) * frac
		w.pos[i].Y += (w.dst[i].Y - w.pos[i].Y) * frac
	}
}

// PowerProfile is one row of the fig. 4 profiling panels: the worst-case
// statistics observed along a mobility trace under transmission power Q.
type PowerProfile struct {
	Q        float64 // transmission power setting Q_i in (0, 1]
	WorstFSS float64 // worst-case (minimum over snapshots) mean pairwise fSS
	Diameter int     // worst-case (maximum over snapshots) hop diameter
	AlwaysOK bool    // true when every snapshot was connected
}

// ErrEmptyTrace reports a profiling request over zero mobility
// snapshots. It is a named error rather than a zero-valued profile
// because a 0-hop "worst-case diameter" is not conservative — fed into
// the scheduler it silently legalizes round lengths no real network
// could meet.
var ErrEmptyTrace = errors.New("network: mobility trace has no snapshots")

// Profile computes the worst-case mean fSS and diameter over a trace for
// one power setting. Disconnected snapshots clear AlwaysOK and are skipped
// for the diameter maximum (the paper's designer would reject such a
// power setting; callers inspect AlwaysOK). An empty trace returns
// ErrEmptyTrace: there is no worst case to report.
func Profile(trace []Placement, q float64) (PowerProfile, error) {
	if len(trace) == 0 {
		return PowerProfile{}, fmt.Errorf("%w (power setting %v)", ErrEmptyTrace, q)
	}
	p := PowerProfile{Q: q, AlwaysOK: true}
	first := true
	for _, pts := range trace {
		fss := MeanFSS(pts, q)
		if first || fss < p.WorstFSS {
			p.WorstFSS = fss
		}
		first = false
		topo := FromPlacement(pts, q)
		d, err := topo.Diameter()
		if err != nil {
			p.AlwaysOK = false
			continue
		}
		if d > p.Diameter {
			p.Diameter = d
		}
	}
	return p, nil
}

// ProfileSweep profiles a trace across several power settings, the left
// two panels of fig. 4. Like Profile it rejects an empty trace with
// ErrEmptyTrace.
func ProfileSweep(trace []Placement, qs []float64) ([]PowerProfile, error) {
	out := make([]PowerProfile, len(qs))
	for i, q := range qs {
		p, err := Profile(trace, q)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
