package network

import (
	"errors"
	"math/rand"
	"testing"
)

func TestRandomWaypointValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandomWaypoint(5, 0.1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewRandomWaypoint(0, 0.1, rng); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewRandomWaypoint(5, 0, rng); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := NewRandomWaypoint(5, 2, rng); err == nil {
		t.Error("speed > 1 accepted")
	}
}

func TestRandomWaypointStaysInSquareAndMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := NewRandomWaypoint(6, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	trace := w.Walk(200)
	if len(trace) != 200 {
		t.Fatalf("trace length = %d", len(trace))
	}
	moved := false
	for s, pts := range trace {
		if len(pts) != 6 {
			t.Fatalf("snapshot %d has %d nodes", s, len(pts))
		}
		for _, p := range pts {
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				t.Fatalf("node left the unit square at snapshot %d: %+v", s, p)
			}
		}
		if s > 0 && Distance(trace[s][0], trace[s-1][0]) > 1e-9 {
			moved = true
		}
	}
	if !moved {
		t.Error("nodes never moved")
	}
	// Per-step displacement is bounded by speed.
	for s := 1; s < len(trace); s++ {
		for i := range trace[s] {
			if d := Distance(trace[s][i], trace[s-1][i]); d > 0.05+1e-9 {
				t.Fatalf("node %d moved %v in one step, speed is 0.05", i, d)
			}
		}
	}
}

func TestProfileEmptyTraceIsNamedError(t *testing.T) {
	if _, err := Profile(nil, 0.5); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("Profile(nil) err = %v, want ErrEmptyTrace", err)
	}
	if _, err := Profile([]Placement{}, 0.5); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("Profile(empty) err = %v, want ErrEmptyTrace", err)
	}
	if _, err := ProfileSweep(nil, []float64{0.5}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("ProfileSweep(nil) err = %v, want ErrEmptyTrace", err)
	}
	// Zero power settings over a real trace is fine — there is simply
	// nothing to profile.
	if out, err := ProfileSweep([]Placement{{{0.1, 0.1}}}, nil); err != nil || len(out) != 0 {
		t.Errorf("ProfileSweep(trace, nil) = %v, %v; want empty, nil", out, err)
	}
}

func TestProfileWorstCaseSemantics(t *testing.T) {
	// A hand-built 2-snapshot trace: nodes close together, then spread.
	near := Placement{{0.1, 0.1}, {0.2, 0.1}, {0.15, 0.2}}
	far := Placement{{0, 0}, {0.5, 0.5}, {1, 1}}
	trace := []Placement{near, far}
	p, err := Profile(trace, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Worst fSS must equal the spread snapshot's mean.
	if want := MeanFSS(far, 0.3); p.WorstFSS != want {
		t.Errorf("WorstFSS = %v, want %v (the worse snapshot)", p.WorstFSS, want)
	}
	// Worst diameter is the max over connected snapshots.
	dNear, err := FromPlacement(near, 0.3).Diameter()
	if err != nil {
		t.Fatal(err)
	}
	dFar, errFar := FromPlacement(far, 0.3).Diameter()
	wantD := dNear
	if errFar == nil && dFar > wantD {
		wantD = dFar
	}
	if p.Diameter != wantD {
		t.Errorf("Diameter = %d, want %d", p.Diameter, wantD)
	}
	if errFar != nil && p.AlwaysOK {
		t.Error("AlwaysOK should be false when a snapshot is disconnected")
	}
}

func TestProfileSweepShapes(t *testing.T) {
	// The fig. 4 shapes: raising transmission power cannot decrease the
	// worst-case mean fSS, and for settings where every snapshot is
	// connected, higher power cannot increase the worst-case diameter.
	rng := rand.New(rand.NewSource(3))
	w, err := NewRandomWaypoint(8, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	trace := w.Walk(50)
	qs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	profiles, err := ProfileSweep(trace, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(profiles); i++ {
		if profiles[i].WorstFSS < profiles[i-1].WorstFSS-1e-12 {
			t.Errorf("WorstFSS decreased from Q=%v to Q=%v", qs[i-1], qs[i])
		}
		if profiles[i-1].AlwaysOK && profiles[i].AlwaysOK &&
			profiles[i].Diameter > profiles[i-1].Diameter {
			t.Errorf("diameter increased with power from Q=%v to Q=%v", qs[i-1], qs[i])
		}
	}
}
