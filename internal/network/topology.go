// Package network models the physical wireless network N = (P, C) under
// a NETDAG deployment: node placements, pairwise signal strength under a
// transmission-power setting, the induced connectivity graph with
// per-link packet reception ratios, hop-count diameter D(N), and the
// mobility traces and power profiling used by the paper's design-space
// exploration (§IV-D, fig. 4).
package network

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Topology is an undirected connectivity graph over n nodes with a
// packet reception ratio (PRR) per link. It is the input to the Glossy
// flood simulator: a transmission is heard by each neighbor
// independently with the link's PRR.
type Topology struct {
	n   int
	prr [][]float64 // 0 = no link; symmetric
}

// ErrDisconnected is returned by operations requiring a connected
// topology.
var ErrDisconnected = errors.New("network: topology is disconnected")

// NewTopology returns an edgeless topology over n nodes. n must be
// positive.
func NewTopology(n int) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("network: topology needs at least one node, got %d", n))
	}
	prr := make([][]float64, n)
	for i := range prr {
		prr[i] = make([]float64, n)
	}
	return &Topology{n: n, prr: prr}
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return t.n }

// AddLink installs a symmetric link between a and b with the given packet
// reception ratio in (0, 1]. Adding a link twice overwrites the PRR.
func (t *Topology) AddLink(a, b int, prr float64) error {
	if a < 0 || a >= t.n || b < 0 || b >= t.n || a == b {
		return fmt.Errorf("network: invalid link %d-%d in %d-node topology", a, b, t.n)
	}
	if prr <= 0 || prr > 1 {
		return fmt.Errorf("network: link PRR %v outside (0,1]", prr)
	}
	t.prr[a][b] = prr
	t.prr[b][a] = prr
	return nil
}

// PRR returns the packet reception ratio of the a-b link, or 0 when no
// link exists.
func (t *Topology) PRR(a, b int) float64 {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		return 0
	}
	return t.prr[a][b]
}

// Neighbors returns the nodes adjacent to i, in increasing order.
func (t *Topology) Neighbors(i int) []int {
	var out []int
	for j := 0; j < t.n; j++ {
		if t.prr[i][j] > 0 {
			out = append(out, j)
		}
	}
	return out
}

// hopDistances runs BFS from src and returns hop counts (-1 for
// unreachable nodes).
func (t *Topology) hopDistances(src int) []int {
	dist := make([]int, t.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for j := 0; j < t.n; j++ {
			if t.prr[v][j] > 0 && dist[j] < 0 {
				dist[j] = dist[v] + 1
				queue = append(queue, j)
			}
		}
	}
	return dist
}

// Connected reports whether every node can reach every other node.
func (t *Topology) Connected() bool {
	for _, d := range t.hopDistances(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns D(N), the maximum over node pairs of the shortest hop
// count, or ErrDisconnected.
func (t *Topology) Diameter() (int, error) {
	best := 0
	for src := 0; src < t.n; src++ {
		for _, d := range t.hopDistances(src) {
			if d < 0 {
				return 0, ErrDisconnected
			}
			if d > best {
				best = d
			}
		}
	}
	return best, nil
}

// MeanPRR returns the average PRR over existing links, or 0 for an
// edgeless topology.
func (t *Topology) MeanPRR() float64 {
	sum, cnt := 0.0, 0
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if t.prr[i][j] > 0 {
				sum += t.prr[i][j]
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Line returns a path topology 0-1-2-...-n-1 with uniform link PRR.
func Line(n int, prr float64) *Topology {
	t := NewTopology(n)
	for i := 0; i+1 < n; i++ {
		if err := t.AddLink(i, i+1, prr); err != nil {
			panic(err)
		}
	}
	return t
}

// Star returns a hub-and-spoke topology with node 0 as hub.
func Star(n int, prr float64) *Topology {
	t := NewTopology(n)
	for i := 1; i < n; i++ {
		if err := t.AddLink(0, i, prr); err != nil {
			panic(err)
		}
	}
	return t
}

// Grid returns a w×h 4-neighbor mesh with uniform link PRR.
func Grid(w, h int, prr float64) *Topology {
	t := NewTopology(w * h)
	idx := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := t.AddLink(idx(x, y), idx(x+1, y), prr); err != nil {
					panic(err)
				}
			}
			if y+1 < h {
				if err := t.AddLink(idx(x, y), idx(x, y+1), prr); err != nil {
					panic(err)
				}
			}
		}
	}
	return t
}

// Clique returns a fully connected topology with uniform link PRR.
func Clique(n int, prr float64) *Topology {
	t := NewTopology(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := t.AddLink(i, j, prr); err != nil {
				panic(err)
			}
		}
	}
	return t
}

// RandomGeometric places n nodes uniformly in the unit square and links
// pairs whose filtered signal strength under power q is in range,
// retrying until the topology is connected (up to 1000 attempts).
func RandomGeometric(n int, q float64, rng *rand.Rand) (*Topology, Placement, error) {
	if rng == nil {
		return nil, nil, errors.New("network: RandomGeometric requires a non-nil rng")
	}
	for attempt := 0; attempt < 1000; attempt++ {
		pts := RandomPlacement(n, rng)
		t := FromPlacement(pts, q)
		if t.Connected() {
			return t, pts, nil
		}
	}
	return nil, nil, fmt.Errorf("network: could not draw a connected geometric topology (n=%d, q=%v)", n, q)
}

// Point is a position in the unit square.
type Point struct{ X, Y float64 }

// Placement assigns a position to every node.
type Placement []Point

// RandomPlacement draws n positions uniformly in the unit square.
func RandomPlacement(n int, rng *rand.Rand) Placement {
	pts := make(Placement, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// Distance returns the Euclidean distance between two points.
func Distance(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Signal-strength model of §IV-D: SS_i(x,y) = Q_i / r(x,y)^2, saturating
// at SSMax; nodes with SS at or below SSMin are out of range. The
// filtered signal strength fSS therefore has co-domain (SSMin, SSMax].
const (
	SSMin = 0.5
	SSMax = 2.0
)

// SignalStrength returns the raw (unfiltered) signal strength between two
// points under transmission power q. Coincident points get +Inf (then
// saturated by FilteredSS).
func SignalStrength(q float64, a, b Point) float64 {
	r := Distance(a, b)
	if r == 0 {
		return math.Inf(1)
	}
	return q / (r * r)
}

// FilteredSS returns the saturation- and out-of-range-filtered signal
// strength fSS and whether the pair is in range.
func FilteredSS(q float64, a, b Point) (float64, bool) {
	ss := SignalStrength(q, a, b)
	if ss <= SSMin {
		return 0, false
	}
	if ss > SSMax {
		ss = SSMax
	}
	return ss, true
}

// PRRFromFSS maps a filtered signal strength in (SSMin, SSMax] to a
// per-link packet reception ratio in (0.25, 1]. The paper profiles
// testbed hardware here; we substitute the linear map fSS/SSMax, which
// preserves the property the experiments need — reception improves
// monotonically with signal strength and saturates at 1.
func PRRFromFSS(fss float64) float64 {
	prr := fss / SSMax
	if prr > 1 {
		prr = 1
	}
	return prr
}

// FromPlacement builds the connectivity topology induced by positions and
// power q: in-range pairs get links with PRRFromFSS quality.
func FromPlacement(pts Placement, q float64) *Topology {
	t := NewTopology(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if fss, ok := FilteredSS(q, pts[i], pts[j]); ok {
				if err := t.AddLink(i, j, PRRFromFSS(fss)); err != nil {
					panic(err)
				}
			}
		}
	}
	return t
}

// FromPlacementShadowed builds the connectivity topology with log-normal
// shadowing: each pair's signal strength is Q/r² scaled by 10^(X/10)
// with X ~ N(0, sigmaDB) drawn once per link — the standard radio
// irregularity model. sigmaDB = 0 reduces exactly to FromPlacement.
// Shadowing can both create marginal long links and kill nominal short
// ones, which is what makes real deployments need the worst-case
// profiling of §IV-D.
func FromPlacementShadowed(pts Placement, q, sigmaDB float64, rng *rand.Rand) (*Topology, error) {
	if rng == nil {
		return nil, errors.New("network: FromPlacementShadowed requires a non-nil rng")
	}
	if sigmaDB < 0 {
		return nil, fmt.Errorf("network: negative shadowing sigma %v", sigmaDB)
	}
	t := NewTopology(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			ss := SignalStrength(q, pts[i], pts[j])
			if sigmaDB > 0 {
				ss *= math.Pow(10, rng.NormFloat64()*sigmaDB/10)
			}
			if ss <= SSMin {
				continue
			}
			if ss > SSMax {
				ss = SSMax
			}
			if err := t.AddLink(i, j, PRRFromFSS(ss)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// MeanFSS returns the average filtered signal strength over all node
// pairs, counting out-of-range pairs as 0 — the paper's per-snapshot
// average pairwise fSS statistic.
func MeanFSS(pts Placement, q float64) float64 {
	if len(pts) < 2 {
		return 0
	}
	sum, cnt := 0.0, 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			fss, ok := FilteredSS(q, pts[i], pts[j])
			if ok {
				sum += fss
			}
			cnt++
		}
	}
	return sum / float64(cnt)
}
