package network

import (
	"encoding/json"
	"fmt"
	"io"
)

// TopologyFile is the JSON serialization of a topology, for CLI tools
// that deploy schedules on user-described networks.
type TopologyFile struct {
	Nodes int        `json:"nodes"`
	Links []LinkSpec `json:"links"`
}

// LinkSpec is one symmetric link.
type LinkSpec struct {
	A   int     `json:"a"`
	B   int     `json:"b"`
	PRR float64 `json:"prr"`
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	f := TopologyFile{Nodes: t.n}
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if t.prr[i][j] > 0 {
				f.Links = append(f.Links, LinkSpec{A: i, B: j, PRR: t.prr[i][j]})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON parses a topology from JSON, validating node indices and PRR
// ranges.
func ReadJSON(r io.Reader) (*Topology, error) {
	var f TopologyFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("network: parsing topology: %w", err)
	}
	if f.Nodes <= 0 {
		return nil, fmt.Errorf("network: topology needs at least one node, got %d", f.Nodes)
	}
	t := NewTopology(f.Nodes)
	for _, l := range f.Links {
		if err := t.AddLink(l.A, l.B, l.PRR); err != nil {
			return nil, err
		}
	}
	return t, nil
}
