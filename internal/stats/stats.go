// Package stats provides the small statistical toolkit behind the
// paper's §IV-A validation: one-sided binomial hypothesis tests for the
// soft test statistic v >= F_s(τ), Wilson confidence intervals for
// success rates, and summary helpers. Implemented from scratch on the
// standard library (erf-based normal CDF).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), via the Acklam
// rational approximation refined with one Newton step (absolute error
// well under 1e-9 across the domain).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile of p=%v outside (0,1)", p)
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement: f(x) = Φ(x) − p.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// BinomialTest is a one-sided test of H0: p >= p0 against H1: p < p0
// given k successes in n trials — the §IV-A check that a task's
// empirical success rate has not fallen below its soft target. A small
// p-value is evidence the deployed system misses its target.
type BinomialTest struct {
	Successes int
	Trials    int
	Target    float64 // p0
	PValue    float64 // P(K <= k | p = p0)
	Reject    bool    // PValue < alpha
	Alpha     float64
}

// TestBelowTarget runs the one-sided binomial test at significance
// alpha. For n·p0·(1−p0) >= 9 it uses the normal approximation with
// continuity correction, otherwise the exact binomial sum.
func TestBelowTarget(successes, trials int, target, alpha float64) (BinomialTest, error) {
	if trials <= 0 || successes < 0 || successes > trials {
		return BinomialTest{}, fmt.Errorf("stats: invalid counts %d/%d", successes, trials)
	}
	if target <= 0 || target >= 1 {
		return BinomialTest{}, fmt.Errorf("stats: target %v outside (0,1)", target)
	}
	if alpha <= 0 || alpha >= 1 {
		return BinomialTest{}, fmt.Errorf("stats: alpha %v outside (0,1)", alpha)
	}
	t := BinomialTest{Successes: successes, Trials: trials, Target: target, Alpha: alpha}
	nf := float64(trials)
	if nf*target*(1-target) >= 9 {
		mu := nf * target
		sigma := math.Sqrt(nf * target * (1 - target))
		z := (float64(successes) + 0.5 - mu) / sigma
		t.PValue = NormalCDF(z)
	} else {
		t.PValue = binomialCDF(successes, trials, target)
	}
	t.Reject = t.PValue < alpha
	return t, nil
}

// binomialCDF returns P(K <= k) for K ~ Binomial(n, p), computed in log
// space for stability.
func binomialCDF(k, n int, p float64) float64 {
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += math.Exp(logChoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p))
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// WilsonInterval returns the Wilson score confidence interval for a
// success probability given k successes in n trials at the given
// confidence level (e.g. 0.95).
func WilsonInterval(successes, trials int, confidence float64) (lo, hi float64, err error) {
	if trials <= 0 || successes < 0 || successes > trials {
		return 0, 0, fmt.Errorf("stats: invalid counts %d/%d", successes, trials)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	z, err := NormalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return 0, 0, err
	}
	n := float64(trials)
	phat := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// Mean returns the arithmetic mean; it errors on empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation (n−1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: stddev needs at least two samples")
	}
	mu, _ := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1)), nil
}
