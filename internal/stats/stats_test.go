package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-2.5, 0.0062096653},
	}
	for _, tc := range cases {
		if got := NormalCDF(tc.x); math.Abs(got-tc.want) > 1e-8 {
			t.Errorf("NormalCDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := NormalCDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if _, err := NormalQuantile(0); err == nil {
		t.Error("quantile of 0 accepted")
	}
	if _, err := NormalQuantile(1); err == nil {
		t.Error("quantile of 1 accepted")
	}
}

func TestBinomialTestDetectsShortfall(t *testing.T) {
	// 800 successes of 1000 at target 0.9: clearly below.
	res, err := TestBelowTarget(800, 1000, 0.9, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Errorf("80%% observed vs 90%% target not rejected: p = %v", res.PValue)
	}
	// 900/1000 at target 0.9: consistent with H0.
	res2, err := TestBelowTarget(900, 1000, 0.9, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reject {
		t.Errorf("on-target rate rejected: p = %v", res2.PValue)
	}
}

func TestBinomialTestExactSmallN(t *testing.T) {
	// n = 10, p0 = 0.5, k = 1: exact P(K <= 1) = 11/1024.
	res, err := TestBelowTarget(1, 10, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 11.0 / 1024.0
	if math.Abs(res.PValue-want) > 1e-12 {
		t.Errorf("exact p-value = %v, want %v", res.PValue, want)
	}
	if !res.Reject {
		t.Error("p ~ 0.0107 at alpha 0.05 must reject")
	}
}

func TestBinomialTestFalsePositiveRate(t *testing.T) {
	// Under H0 the rejection rate at alpha = 0.05 must be ~5%.
	rng := rand.New(rand.NewSource(12))
	const trials = 2000
	rejects := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < 500; j++ {
			if rng.Float64() < 0.9 {
				k++
			}
		}
		res, err := TestBelowTarget(k, 500, 0.9, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.08 {
		t.Errorf("false positive rate %v far above alpha 0.05", rate)
	}
}

func TestBinomialTestValidation(t *testing.T) {
	if _, err := TestBelowTarget(-1, 10, 0.5, 0.05); err == nil {
		t.Error("negative successes accepted")
	}
	if _, err := TestBelowTarget(11, 10, 0.5, 0.05); err == nil {
		t.Error("successes > trials accepted")
	}
	if _, err := TestBelowTarget(5, 10, 1.0, 0.05); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := TestBelowTarget(5, 10, 0.5, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi, err := WilsonInterval(90, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 0.9 && 0.9 < hi) {
		t.Errorf("interval [%v, %v] should contain the point estimate", lo, hi)
	}
	if hi-lo > 0.15 {
		t.Errorf("interval [%v, %v] implausibly wide for n=100", lo, hi)
	}
	// Wider confidence -> wider interval.
	lo99, hi99, _ := WilsonInterval(90, 100, 0.99)
	if hi99-lo99 <= hi-lo {
		t.Error("99% interval not wider than 95%")
	}
	// Edge counts stay in [0,1].
	lo0, _, _ := WilsonInterval(0, 50, 0.95)
	if lo0 < 0 {
		t.Errorf("lower bound %v below 0", lo0)
	}
	_, hiAll, _ := WilsonInterval(50, 50, 0.95)
	if hiAll > 1 {
		t.Errorf("upper bound %v above 1", hiAll)
	}
	if _, _, err := WilsonInterval(5, 0, 0.95); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Empirical coverage of the 95% interval should be near 95%.
	rng := rand.New(rand.NewSource(5))
	const trials = 2000
	covered := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < 200; j++ {
			if rng.Float64() < 0.7 {
				k++
			}
		}
		lo, hi, err := WilsonInterval(k, 200, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if lo <= 0.7 && 0.7 <= hi {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.92 || cov > 0.98 {
		t.Errorf("coverage %v far from 0.95", cov)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mu, err := Mean(xs)
	if err != nil || mu != 5 {
		t.Errorf("Mean = %v (%v), want 5", mu, err)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v, want ~2.138", sd)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty mean accepted")
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Error("single-sample stddev accepted")
	}
}
