// Package multirate unrolls multi-rate networked applications into the
// single-shot task graphs NETDAG schedules. The paper's §IV-B notes that
// designers "can leverage our scheduler to freely configure how often
// each control output is required (and by which actuation task)"; this
// package provides that configuration surface, in the style of
// time-triggered wireless designs (TTW, Jacob et al., DATE 2018): each
// task runs an integer number of times per hyperperiod, instances of a
// producer feed the rate-appropriate instances of its consumers, and
// same-node instances are serialized with order-only edges so the
// unrolled graph still satisfies the paper's eq. (1).
package multirate

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/netdag/netdag/internal/dag"
)

// Spec is a multi-rate application: a base graph plus per-task rates
// (executions per hyperperiod). Tasks absent from Rates run once.
type Spec struct {
	App   *dag.Graph
	Rates map[dag.TaskID]int
}

// Result is the unrolled application.
type Result struct {
	// Graph is the unrolled single-hyperperiod task graph.
	Graph *dag.Graph
	// Instances maps each original task to its instance IDs in
	// execution order.
	Instances map[dag.TaskID][]dag.TaskID
}

// Chains returns the instance metadata in a deterministic, plumbable
// form: one chain per base task, instances in phase (execution) order,
// chains ordered by base task ID. This is what downstream consumers —
// core.Problem.InstanceChains in particular — take: which unrolled
// tasks are phase-shifted copies of one base task, so the scheduler can
// break the symmetry between identical job instances.
func (r *Result) Chains() [][]dag.TaskID {
	bases := make([]dag.TaskID, 0, len(r.Instances))
	for id := range r.Instances {
		bases = append(bases, id)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	chains := make([][]dag.TaskID, 0, len(bases))
	for _, id := range bases {
		chains = append(chains, append([]dag.TaskID(nil), r.Instances[id]...))
	}
	return chains
}

// ErrBadRate is returned for non-positive rates.
var ErrBadRate = errors.New("multirate: rates must be positive")

// ErrReservedName is returned when a base task name contains the '#'
// instance separator: a base task literally named "a#1" would collide
// with the unrolled instance a#1 of a task named "a", silently aliasing
// two distinct tasks onto one name.
var ErrReservedName = errors.New("multirate: base task names must not contain '#'")

// InstanceName is the naming convention for unrolled instances:
// "<task>#<i>".
func InstanceName(base string, i int) string { return fmt.Sprintf("%s#%d", base, i) }

// Unroll expands the spec into a single-hyperperiod graph:
//
//   - task τ with rate r becomes instances τ#0..τ#(r−1) on τ's node;
//   - for each message edge τ -> μ, instance μ#j consumes the freshest
//     producer instance available at its phase: τ#⌊j·r(τ)/r(μ)⌋ — the
//     standard rate-transition rule (an undersampling consumer skips
//     instances; an oversampling consumer reuses the latest sample);
//   - instances sharing a physical node are serialized by phase
//     (instance index divided by rate, ties broken by dependency order)
//     with order-only edges, which keeps eq. (1) satisfied without
//     fabricating bus traffic.
func Unroll(s Spec) (*Result, error) {
	if s.App == nil {
		return nil, errors.New("multirate: nil application")
	}
	if err := s.App.Validate(); err != nil {
		return nil, err
	}
	rate := func(id dag.TaskID) int {
		if r, ok := s.Rates[id]; ok {
			return r
		}
		return 1
	}
	for id, r := range s.Rates {
		if r <= 0 {
			return nil, fmt.Errorf("%w: task %q has rate %d", ErrBadRate, s.App.Task(id).Name, r)
		}
	}
	for _, t := range s.App.Tasks() {
		if strings.Contains(t.Name, "#") {
			return nil, fmt.Errorf("%w: task %q", ErrReservedName, t.Name)
		}
	}
	out := dag.New()
	res := &Result{Graph: out, Instances: make(map[dag.TaskID][]dag.TaskID)}
	// Create instances.
	for _, t := range s.App.Tasks() {
		r := rate(t.ID)
		ids := make([]dag.TaskID, r)
		for i := 0; i < r; i++ {
			id, err := out.AddTask(InstanceName(t.Name, i), t.Node, t.WCET)
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		res.Instances[t.ID] = ids
	}
	// Message edges with rate transitions.
	for _, m := range s.App.Messages() {
		srcRate := rate(m.Source)
		for _, dstTask := range m.Dests {
			dstRate := rate(dstTask)
			for j := 0; j < dstRate; j++ {
				i := j * srcRate / dstRate
				src := res.Instances[m.Source][i]
				dst := res.Instances[dstTask][j]
				if err := out.Connect(src, dst, m.Width); err != nil {
					return nil, err
				}
			}
		}
	}
	// Order-only edges replicate original order-only semantics per
	// phase-matched instances.
	for _, t := range s.App.Tasks() {
		for _, succ := range s.App.Succs(t.ID) {
			if !s.App.OrderOnly(t.ID, succ) {
				continue
			}
			srcRate, dstRate := rate(t.ID), rate(succ)
			for j := 0; j < dstRate; j++ {
				i := j * srcRate / dstRate
				if err := out.ConnectOrder(res.Instances[t.ID][i], res.Instances[succ][j]); err != nil {
					return nil, err
				}
			}
		}
	}
	// Serialize same-node instances by phase so eq. (1) holds.
	if err := serializeNodes(s, res, rate); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("multirate: unrolled graph invalid: %w", err)
	}
	return res, nil
}

// serializeNodes chains, per physical node, all instances in phase order
// with order-only edges. Phase of instance i of a rate-r task is the
// rational i/r, compared exactly by cross-multiplication — never through
// float64, whose rounding can declare two distinct rationals equal (or
// tie-break two equal ones inconsistently) and hand the ordering to the
// topological tie-break in cases that are not ties. Real ties are broken
// by the original dependency order (producers first), then instance
// index, which matches any legal single-rate schedule.
func serializeNodes(s Spec, res *Result, rate func(dag.TaskID) int) error {
	order, err := s.App.TopoOrder()
	if err != nil {
		return err
	}
	topoPos := make(map[dag.TaskID]int, len(order))
	for i, id := range order {
		topoPos[id] = i
	}
	type inst struct {
		id   dag.TaskID // instance ID in the unrolled graph
		orig dag.TaskID
		idx  int
		rate int
	}
	byNode := make(map[string][]inst)
	for _, t := range s.App.Tasks() {
		r := rate(t.ID)
		for i, id := range res.Instances[t.ID] {
			byNode[t.Node] = append(byNode[t.Node], inst{
				id: id, orig: t.ID, idx: i, rate: r,
			})
		}
	}
	for _, insts := range byNode {
		// Sorting by (phase, topological position, instance index) is a
		// total order consistent with every data edge: a producer
		// instance's phase never exceeds its consumer's (the freshest
		// producer ⌊j·r(τ)/r(μ)⌋ has ⌊j·r(τ)/r(μ)⌋/r(τ) ≤ j/r(μ) by the
		// floor), and within equal phases topological position puts
		// producers first.
		sort.Slice(insts, func(a, b int) bool {
			ia, ib := insts[a], insts[b]
			// ia.idx/ia.rate vs ib.idx/ib.rate, exactly.
			pa, pb := int64(ia.idx)*int64(ib.rate), int64(ib.idx)*int64(ia.rate)
			if pa != pb {
				return pa < pb
			}
			if topoPos[ia.orig] != topoPos[ib.orig] {
				return topoPos[ia.orig] < topoPos[ib.orig]
			}
			return ia.idx < ib.idx
		})
		for k := 1; k < len(insts); k++ {
			if err := res.Graph.ConnectOrder(insts[k-1].id, insts[k].id); err != nil {
				return err
			}
		}
	}
	return nil
}

// SpreadConstraints maps a per-task constraint table onto every instance
// of each task — the common case where a requirement like "the actuator
// output holds (m, K)" applies to each actuation instance.
func SpreadConstraints[T any](res *Result, cons map[dag.TaskID]T) map[dag.TaskID]T {
	out := make(map[dag.TaskID]T)
	for orig, c := range cons {
		for _, inst := range res.Instances[orig] {
			out[inst] = c
		}
	}
	return out
}
